// The batched ingest pipeline end to end:
//
//   1. IngestPipeline::AnalyzeBatch — a whole epoch of raw texts becomes
//      weighted term vectors in one pass (shared analysis scratch).
//   2. ContinuousSearchServer::IngestBatch — the epoch's expirations and
//      arrivals are processed as one unit; the result listener fires at
//      most once per query per epoch, with the epoch-final top-k.
//
// Results are identical to one-at-a-time ingestion (see
// tests/property/batch_equivalence_property_test.cc); only the cadence
// of work and notifications changes.
//
// Build & run:   ./build/examples/batch_pipeline

#include <cstdio>
#include <vector>

#include "core/ita_server.h"
#include "pipeline/ingest_pipeline.h"

int main() {
  ita::IngestPipeline pipeline;
  ita::ItaServer server{ita::ServerOptions{ita::WindowSpec::CountBased(6)}};

  const auto query = pipeline.AnalyzeQuery("database streams", /*k=*/2);
  if (!query.ok()) {
    std::fprintf(stderr, "bad query: %s\n", query.status().ToString().c_str());
    return 1;
  }
  const auto qid = server.RegisterQuery(*query);
  if (!qid.ok()) {
    std::fprintf(stderr, "register failed: %s\n", qid.status().ToString().c_str());
    return 1;
  }

  // One notification per changed query per epoch — not per document.
  server.SetResultListener([](ita::QueryId q, const std::vector<ita::ResultEntry>& top) {
    std::printf("  [epoch] query %u top-k changed:", q);
    for (const ita::ResultEntry& e : top) {
      std::printf("  doc %llu (%.3f)", static_cast<unsigned long long>(e.doc), e.score);
    }
    std::printf("\n");
  });

  const std::vector<std::vector<ita::RawDocument>> epochs = {
      {{"A new database engine ships with vectorized execution", 1000},
       {"Cooking tips: caramelize onions without burning them", 2000},
       {"Streams of sensor data overwhelm the ingestion database", 3000}},
      {{"Financial streams require low latency database writes", 4000},
       {"Gardening in small spaces: balcony herbs for beginners", 5000},
       {"Benchmarking databases on streams of user events", 6000}},
      {{"A database outage disrupted streams of payment events", 7000},
       {"Migrating bird streams tracked by volunteer databases", 8000},
       {"Weather report: clear skies and light winds tomorrow", 9000}},
  };

  for (std::size_t e = 0; e < epochs.size(); ++e) {
    std::printf("epoch %zu: ingesting %zu documents as one batch\n", e,
                epochs[e].size());
    // 1. Analyze the whole epoch in one pass.
    std::vector<ita::Document> docs = pipeline.AnalyzeBatch(epochs[e]);
    // 2. Stream it as one epoch: expirations + arrivals + one flush.
    const auto ids = server.IngestBatch(std::move(docs));
    if (!ids.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", ids.status().ToString().c_str());
      return 1;
    }
  }

  const auto final_result = server.Result(*qid);
  std::printf("final top-k:");
  for (const ita::ResultEntry& e : *final_result) {
    std::printf("  doc %llu (%.3f)", static_cast<unsigned long long>(e.doc), e.score);
  }
  std::printf("\n%llu documents in %llu epochs; %llu expired\n",
              static_cast<unsigned long long>(server.stats().documents_ingested),
              static_cast<unsigned long long>(server.stats().batches_ingested),
              static_cast<unsigned long long>(server.stats().documents_expired));
  return 0;
}
