// Scenario simulator demo: pick a scenario from the catalog, stream it
// through the sequential ITA server and the sharded engine side by side
// with the brute-force oracle, and let the online differential checker
// validate every engine mid-run. Prints the catalog when invoked without
// arguments.
//
//   ./scenario_sim                      # list the catalog
//   ./scenario_sim flash_crowd          # default seed/events
//   ./scenario_sim mixed_stress 7 50000 # scenario, seed, events

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/runner.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cout << "usage: " << argv[0] << " <scenario> [seed] [events]\n\n"
              << "scenario catalog:\n";
    for (const ita::sim::ScenarioFactory& factory :
         ita::sim::ScenarioCatalog()) {
      std::cout << "  " << factory.name << "\n";
    }
    return 0;
  }

  const ita::sim::ScenarioFactory* factory =
      ita::sim::FindScenario(argv[1]);
  if (factory == nullptr) {
    std::cerr << "unknown scenario '" << argv[1] << "'\n";
    return 1;
  }
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  ita::sim::ScenarioSpec spec = factory->make(seed);
  if (argc > 3) {
    spec.events =
        static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10));
  }

  ita::sim::RunOptions options;
  options.shard_counts = {2, 4};
  options.checker.differential_interval_epochs = 4;
  options.progress_every_epochs = 64;

  std::cout << "scenario '" << spec.name << "', seed " << spec.seed << ", "
            << spec.events << " events, window " << spec.window.ToString()
            << "\nfleet: sequential ita, sharded S=2, S=4, vs oracle\n";

  ita::sim::ScenarioRunner runner(spec, options);
  const auto report = runner.Run();
  if (!report.ok()) {
    std::cerr << "FAILED: " << report.status().ToString() << "\n";
    return 1;
  }
  std::cout << "clean: " << report->epochs << " epochs, " << report->events
            << " events, " << report->notifications << " notifications, "
            << report->differential_checks << " oracle differentials, "
            << report->invariant_checks << " invariant passes\n"
            << "stream fingerprint: " << std::hex << report->fingerprint
            << std::dec << "\nfinal window " << report->final_window_size
            << " docs, " << report->final_query_count << " live queries\n";
  return 0;
}
