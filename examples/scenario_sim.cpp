// Scenario simulator demo: pick a scenario from the catalog, stream it
// through the sequential ITA server and the sharded engine side by side
// with the brute-force oracle, and let the online differential checker
// validate every engine mid-run. Prints the catalog when invoked without
// arguments.
//
//   ./scenario_sim                      # list the catalog
//   ./scenario_sim flash_crowd          # default seed/events
//   ./scenario_sim mixed_stress 7 50000 # scenario, seed, events
//
// --metrics=<path> additionally enables epoch phase tracing and hot-term
// tracking on the whole fleet and, after a clean run, writes the metrics
// snapshot as JSON at <path> plus the Prometheus text rendition next to
// it (foo.json -> foo.prom). CI's metrics-smoke job drives this flag.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  // Split --flags from the positional scenario/seed/events arguments.
  std::string metrics_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string metrics_flag = "--metrics=";
    if (arg.rfind(metrics_flag, 0) == 0) {
      metrics_path = arg.substr(metrics_flag.size());
      if (metrics_path.empty()) {
        std::cerr << "--metrics= needs a path\n";
        return 1;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << arg << "'\n";
      return 1;
    } else {
      positional.push_back(argv[i]);
    }
  }

  if (positional.empty()) {
    std::cout << "usage: " << argv[0]
              << " <scenario> [seed] [events] [--metrics=<path>]\n\n"
              << "scenario catalog:\n";
    for (const ita::sim::ScenarioFactory& factory :
         ita::sim::ScenarioCatalog()) {
      std::cout << "  " << factory.name << "\n";
    }
    return 0;
  }

  const ita::sim::ScenarioFactory* factory =
      ita::sim::FindScenario(positional[0]);
  if (factory == nullptr) {
    std::cerr << "unknown scenario '" << positional[0] << "'\n";
    return 1;
  }
  const std::uint64_t seed =
      positional.size() > 1 ? std::strtoull(positional[1], nullptr, 10) : 1;
  ita::sim::ScenarioSpec spec = factory->make(seed);
  if (positional.size() > 2) {
    spec.events =
        static_cast<std::size_t>(std::strtoull(positional[2], nullptr, 10));
  }

  ita::sim::RunOptions options;
  options.shard_counts = {2, 4};
  options.checker.differential_interval_epochs = 4;
  options.progress_every_epochs = 64;
  options.metrics_path = metrics_path;

  std::cout << "scenario '" << spec.name << "', seed " << spec.seed << ", "
            << spec.events << " events, window " << spec.window.ToString()
            << "\nfleet: sequential ita, sharded S=2, S=4, vs oracle\n";

  ita::sim::ScenarioRunner runner(spec, options);
  const auto report = runner.Run();
  if (!report.ok()) {
    std::cerr << "FAILED: " << report.status().ToString() << "\n";
    return 1;
  }
  std::cout << "clean: " << report->epochs << " epochs, " << report->events
            << " events, " << report->notifications << " notifications, "
            << report->differential_checks << " oracle differentials, "
            << report->invariant_checks << " invariant passes\n"
            << "stream fingerprint: " << std::hex << report->fingerprint
            << std::dec << "\nfinal window " << report->final_window_size
            << " docs, " << report->final_query_count << " live queries\n";
  if (!metrics_path.empty()) {
    std::cout << "metrics snapshot written to " << metrics_path
              << " (+ Prometheus rendition alongside)\n";
  }
  return 0;
}
