// Quickstart: the smallest complete use of the library.
//
//   1. Create an Analyzer (raw text -> weighted composition lists).
//   2. Create an ItaServer with a sliding window.
//   3. Register a continuous query.
//   4. Stream documents; read the continuously-maintained top-k.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "core/ita_server.h"
#include "text/analyzer.h"

int main() {
  // 1. The analyzer: tokenization, stopword removal, cosine weighting.
  ita::Analyzer analyzer;

  // 2. A server that monitors the 5 most recent documents.
  ita::ItaServer server{ita::ServerOptions{ita::WindowSpec::CountBased(5)}};

  // 3. A standing query: "continuously report the top-2 documents among
  //    the 5 most recent ones that best match {database streams}".
  const auto query = analyzer.MakeQuery("database streams", /*k=*/2);
  if (!query.ok()) {
    std::fprintf(stderr, "bad query: %s\n", query.status().ToString().c_str());
    return 1;
  }
  const auto qid = server.RegisterQuery(*query);
  if (!qid.ok()) {
    std::fprintf(stderr, "register failed: %s\n", qid.status().ToString().c_str());
    return 1;
  }

  // 4. Stream documents and watch the result evolve.
  const char* stream[] = {
      "A new database engine ships with vectorized execution.",
      "Cooking tips: how to caramelize onions without burning them.",
      "Streams of sensor data overwhelm the ingestion database.",
      "Financial streams require low latency database writes.",
      "Gardening in small spaces: balcony herbs for beginners.",
      "Benchmarking databases on streams of user events.",
      "A database outage disrupted streams of payment events.",
  };

  ita::Timestamp now = 0;
  for (const char* text : stream) {
    const auto doc_id = server.Ingest(analyzer.MakeDocument(text, now += 1000));
    if (!doc_id.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", doc_id.status().ToString().c_str());
      return 1;
    }
    std::printf("ingested doc %llu: %.48s...\n",
                static_cast<unsigned long long>(*doc_id), text);

    const auto result = server.Result(*qid);
    for (const ita::ResultEntry& entry : *result) {
      std::printf("    top: doc %llu  score %.4f\n",
                  static_cast<unsigned long long>(entry.doc), entry.score);
    }
  }

  std::printf("\nserver processed %llu documents, expired %llu; "
              "ITA scored only %llu candidate/query pairs\n",
              static_cast<unsigned long long>(server.stats().documents_ingested),
              static_cast<unsigned long long>(server.stats().documents_expired),
              static_cast<unsigned long long>(server.stats().scores_computed));
  return 0;
}
