// Email threat monitoring (the paper's security-analyst scenario): "a
// security analyst who monitors email traffic for potential terror threats
// would register several standing queries to identify recent emails that
// most closely fit certain threat profiles".
//
// Demonstrates: count-based windows, multiple threat-profile queries,
// Porter stemming for recall across inflections, and the incremental
// maintenance statistics that explain why ITA keeps up with traffic.
//
// Build & run:   ./build/examples/email_threat_monitor

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "core/ita_server.h"
#include "text/analyzer.h"

namespace {

// Simulated email traffic: overwhelmingly benign, a few hits.
const char* kEmails[] = {
    "Minutes from the quarterly budget meeting are attached for review.",
    "Lunch on Friday? The new noodle place downtown has great reviews.",
    "Shipment of laboratory chemicals delayed at customs, new invoice attached.",
    "Reminder: the fire drill scheduled for Monday morning at nine.",
    "The conference keynote on explosive growth in cloud spending was great.",
    "Can you forward the slide deck from yesterday's design review?",
    "Procurement update: detonator assemblies flagged in the cargo manifest.",
    "Your subscription renewal is due; no action needed if enrolled.",
    "Security advisory: phishing attempts impersonating the help desk.",
    "Team offsite agenda: hiking, barbecue, and the annual trivia night.",
    "Customs flagged ammonium nitrate quantities exceeding the permit.",
    "Happy birthday! Cake in the kitchen at three this afternoon.",
    "Updated threat assessment for the embassy district attached.",
    "Weekly metrics dashboard refreshed; conversion is up two percent.",
    "The chemistry department ordered nitrate reagents for the semester.",
    "Draft press release for the product launch, comments welcome.",
};

}  // namespace

int main() {
  // Stemming folds inflections ("explosives" ~ "explosive"), buying recall
  // for profile matching.
  ita::AnalyzerOptions aopts;
  aopts.stem = true;
  ita::Analyzer analyzer(aopts);

  // Monitor the 10 most recent emails.
  ita::ItaServer server{ita::ServerOptions{ita::WindowSpec::CountBased(10)}};

  struct Profile {
    const char* name;
    const char* terms;
    int k;
  };
  const Profile profiles[] = {
      {"explosives", "explosive detonator ammonium nitrate", 3},
      {"chemical-precursors", "chemicals laboratory nitrate customs", 3},
      {"threat-reports", "threat assessment security advisory", 2},
  };

  std::vector<std::pair<ita::QueryId, std::string>> registered;
  for (const Profile& p : profiles) {
    const auto query = analyzer.MakeQuery(p.terms, p.k);
    if (!query.ok()) {
      std::fprintf(stderr, "bad profile '%s': %s\n", p.name,
                   query.status().ToString().c_str());
      return 1;
    }
    const auto qid = server.RegisterQuery(*query);
    if (!qid.ok()) {
      std::fprintf(stderr, "register failed: %s\n", qid.status().ToString().c_str());
      return 1;
    }
    registered.emplace_back(*qid, p.name);
    std::printf("profile '%s' installed as query %u: {%s}, k=%d\n", p.name,
                *qid, p.terms, p.k);
  }

  std::printf("\n--- streaming %zu emails ---\n",
              sizeof(kEmails) / sizeof(kEmails[0]));
  ita::Timestamp t = 0;
  for (const char* text : kEmails) {
    const auto id = server.Ingest(analyzer.MakeDocument(text, t += 500'000));
    if (!id.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
  }

  std::printf("\n--- current matches per profile (over the last 10 emails) ---\n");
  for (const auto& [qid, name] : registered) {
    std::printf("%s:\n", name.c_str());
    const auto result = server.Result(qid);
    if (result->empty()) {
      std::printf("  (no matching email in the window)\n");
      continue;
    }
    for (const ita::ResultEntry& e : *result) {
      const auto doc = server.documents().Get(e.doc);
      const std::string_view text = doc ? doc->text : "<expired>";
      std::printf("  score %.3f  email #%llu  %.*s\n", e.score,
                  static_cast<unsigned long long>(e.doc),
                  static_cast<int>(std::min<std::size_t>(text.size(), 58)),
                  text.data());
    }
  }

  const ita::ServerStats& stats = server.stats();
  std::printf(
      "\nwhy this scales: of %llu emails x %zu profiles, ITA computed only "
      "%llu similarity scores (threshold trees pruned the rest)\n",
      static_cast<unsigned long long>(stats.documents_ingested),
      registered.size(),
      static_cast<unsigned long long>(stats.scores_computed));
  return 0;
}
