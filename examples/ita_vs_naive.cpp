// ITA versus Naive, side by side, on the paper's synthetic-WSJ workload —
// a miniature, human-readable version of the Figure 3 experiments: stream
// the same documents into both servers, verify they report identical
// results, and compare the work they performed.
//
// Build & run:   ./build/examples/ita_vs_naive [num_queries] [window]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/stopwatch.h"
#include "core/ita_server.h"
#include "core/naive_server.h"
#include "stream/corpus.h"

int main(int argc, char** argv) {
  const std::size_t n_queries =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1000;
  const std::size_t window =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 1000;
  const std::size_t events = 2000;

  // WSJ-shaped synthetic corpus (DESIGN.md §3), scaled for a demo.
  ita::SyntheticCorpusOptions copts;
  copts.dictionary_size = 50'000;
  copts.length_lognormal_mu = 4.3;
  copts.seed = 7;
  ita::SyntheticCorpusGenerator corpus(copts);

  ita::QueryWorkloadOptions qopts;
  qopts.terms_per_query = 10;
  qopts.k = 10;
  qopts.seed = 99;
  ita::QueryWorkloadGenerator queries(copts.dictionary_size, qopts);

  ita::ServerOptions sopts{ita::WindowSpec::CountBased(window)};
  ita::ItaServer ita_server{sopts};
  ita::NaiveServer naive_server{sopts};

  std::printf("workload: %zu queries, window %zu, %zu stream events\n\n",
              n_queries, window, events);

  std::vector<ita::QueryId> ids;
  for (std::size_t i = 0; i < n_queries; ++i) {
    const ita::Query q = queries.NextQuery();
    const auto a = ita_server.RegisterQuery(q);
    const auto b = naive_server.RegisterQuery(q);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "registration failed\n");
      return 1;
    }
    ids.push_back(*a);
  }

  // Warm the window, then measure.
  ita::Timestamp t = 0;
  for (std::size_t i = 0; i < window; ++i) {
    const ita::Document doc = corpus.NextDocument(t += 5000);
    (void)ita_server.Ingest(doc);
    (void)naive_server.Ingest(doc);
  }
  ita_server.ResetStats();
  naive_server.ResetStats();

  double ita_ms = 0.0, naive_ms = 0.0;
  for (std::size_t i = 0; i < events; ++i) {
    const ita::Document doc = corpus.NextDocument(t += 5000);
    {
      ita::Document copy = doc;
      ita::Stopwatch timer;
      (void)ita_server.Ingest(std::move(copy));
      ita_ms += timer.ElapsedMillis();
    }
    {
      ita::Document copy = doc;
      ita::Stopwatch timer;
      (void)naive_server.Ingest(std::move(copy));
      naive_ms += timer.ElapsedMillis();
    }
  }

  // The two servers must agree on every result.
  std::size_t checked = 0;
  for (const ita::QueryId id : ids) {
    const auto a = ita_server.Result(id);
    const auto b = naive_server.Result(id);
    if (a->size() != b->size()) {
      std::fprintf(stderr, "MISMATCH on query %u\n", id);
      return 1;
    }
    for (std::size_t i = 0; i < a->size(); ++i) {
      if ((*a)[i].score != (*b)[i].score) {
        std::fprintf(stderr, "SCORE MISMATCH on query %u rank %zu\n", id, i);
        return 1;
      }
    }
    ++checked;
  }
  std::printf("results identical across both servers for all %zu queries\n\n",
              checked);

  const ita::ServerStats& ia = ita_server.stats();
  const ita::ServerStats& na = naive_server.stats();
  std::printf("                         %12s %12s\n", "ITA", "Naive");
  std::printf("avg time per event (ms)  %12.4f %12.4f\n",
              ita_ms / events, naive_ms / events);
  std::printf("similarity scores        %12llu %12llu\n",
              static_cast<unsigned long long>(ia.scores_computed),
              static_cast<unsigned long long>(na.scores_computed));
  std::printf("queries touched          %12llu %12llu\n",
              static_cast<unsigned long long>(ia.queries_probed),
              static_cast<unsigned long long>(na.membership_checks +
                                              na.scores_computed));
  std::printf("full window rescans      %12llu %12llu\n",
              static_cast<unsigned long long>(ia.full_rescans),
              static_cast<unsigned long long>(na.full_rescans));
  std::printf("threshold roll-ups       %12llu %12s\n",
              static_cast<unsigned long long>(ia.rollup_steps), "-");
  std::printf("\nspeedup: %.1fx\n", naive_ms / (ita_ms > 0.0 ? ita_ms : 1e-9));
  return 0;
}
