// Live telemetry over the sharded parallel execution engine (DESIGN.md
// §6, §11): for each shard count S the monitor streams a synthetic
// workload with epoch phase tracing and hot-term tracking enabled, then
// prints
//
//   1. the per-shard phase-latency table — p50/p99 of each epoch phase
//      (plan, expire, arrive, notify-flush, barrier-wait) straight from
//      the obs::EpochTrace histograms, plus the epoch wall distribution;
//   2. the shard-imbalance gauge (max/mean shard phase work; 1.0 means
//      the partition is balanced, S means one shard did everything),
//      followed by the placement and storage-tier churn it provoked —
//      queries the load-aware rebalancer migrated, per-shard query
//      counts, and term tier promotions/demotions;
//   3. the hottest terms by postings + probe work (space-saving sketch);
//   4. the engine's metrics-registry snapshot (the same series the
//      scenario runner's --metrics dump and CI's metrics-smoke job
//      export), rendered as name = value lines.
//
// By default the monitor sweeps S in {1, 2, 4, 8} over the identical
// stream so the tables line up; --shards pins a single count.
//
// Build & run:   ./build/examples/sharded_monitor [--shards 4]
//                [--threads 2] [--queries 500] [--window 2000]
//                [--batch 128] [--docs 4096]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "exec/sharded_server.h"
#include "obs/epoch_trace.h"
#include "sim/metrics_export.h"
#include "sim/sim_engine.h"
#include "stream/corpus.h"

namespace {

std::size_t FlagOr(int argc, char** argv, const char* name, std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

struct MonitorConfig {
  std::size_t threads = 0;
  std::size_t queries = 500;
  std::size_t window = 2'000;
  std::size_t batch = 128;
  std::size_t docs = 4'096;
};

/// One full drive at shard count `shards`: identical corpus and query
/// seeds across calls, so the phase tables are comparable down the sweep.
int RunOne(std::size_t shards, const MonitorConfig& config) {
  auto engine = ita::sim::MakeShardedEngine(
      ita::WindowSpec::CountBased(config.window), shards, config.threads);
  engine->EnableTracing(/*capacity=*/512);
  engine->EnableHotTermTracking(/*capacity=*/32);

  // A hot query population over the Zipf head, so per-query work dominates
  // the replicated index maintenance — the regime sharding targets.
  ita::SyntheticCorpusOptions copts;
  copts.dictionary_size = 50'000;
  copts.seed = 7;
  ita::SyntheticCorpusGenerator corpus(copts);

  ita::QueryWorkloadOptions qopts;
  qopts.terms_per_query = 5;
  qopts.k = 10;
  qopts.max_term = 200;
  qopts.seed = 11;
  ita::QueryWorkloadGenerator queries(copts.dictionary_size, qopts);
  for (std::size_t i = 0; i < config.queries; ++i) {
    const auto id = engine->RegisterQuery(queries.NextQuery());
    if (!id.ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }

  ita::Timestamp now = 0;
  std::size_t streamed = 0;
  while (streamed < config.docs) {
    std::vector<ita::Document> epoch;
    epoch.reserve(config.batch);
    for (std::size_t i = 0; i < config.batch && streamed + i < config.docs;
         ++i) {
      epoch.push_back(corpus.NextDocument(now += 5'000));
    }
    streamed += epoch.size();
    const auto ids = engine->IngestBatch(std::move(epoch));
    if (!ids.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   ids.status().ToString().c_str());
      return 1;
    }
  }

  std::printf("\n=== %s: %zu queries, window %zu, %zu docs ===\n",
              engine->name().c_str(), engine->query_count(), config.window,
              streamed);

  const ita::obs::EpochTrace* trace = engine->trace();
  if (trace == nullptr) {
    std::printf("(built with ITA_OBS=OFF — no phase trace; counters only)\n");
  } else {
    // 1. The per-shard phase-latency table, microseconds p50/p99.
    std::printf("per-shard phase latency, us p50/p99 over %llu epochs:\n",
                static_cast<unsigned long long>(trace->epochs()));
    std::printf("  %-6s", "shard");
    for (std::size_t p = 0; p < ita::obs::kPhaseCount; ++p) {
      std::printf(" %16s",
                  ita::obs::PhaseName(static_cast<ita::obs::Phase>(p)));
    }
    std::printf("\n");
    for (std::size_t s = 0; s < trace->shards(); ++s) {
      std::printf("  %-6zu", s);
      for (std::size_t p = 0; p < ita::obs::kPhaseCount; ++p) {
        const ita::obs::Histogram& hist =
            trace->phase_hist(s, static_cast<ita::obs::Phase>(p));
        std::printf(" %7.1f/%8.1f", hist.Quantile(0.50) / 1e3,
                    hist.Quantile(0.99) / 1e3);
      }
      std::printf("\n");
    }
    const ita::obs::Histogram& wall = trace->wall_hist();
    std::printf("  epoch wall us p50/p99: %.1f / %.1f  (mean %.1f)\n",
                wall.Quantile(0.50) / 1e3, wall.Quantile(0.99) / 1e3,
                wall.Mean() / 1e3);

    // 2. The shard-imbalance gauge.
    std::printf("  shard imbalance (max/mean phase work): last %.2f, "
                "worst %.2f  [1.00 = balanced, %zu.00 = one shard]\n",
                trace->last_imbalance(), trace->max_imbalance(),
                trace->shards());
  }

  // 2b. Placement-map and storage-tier churn, right beside the imbalance
  // gauge it reacts to: how many queries the rebalancer moved (and over
  // how many epochs), plus the term-tier migrations the per-shard
  // catalogs performed at the same barriers.
  const ita::exec::ShardedServer* sharded = std::as_const(*engine).sharded();
  const ita::ServerStats totals = engine->stats();
  if (sharded != nullptr) {
    std::printf("  placement churn: %llu queries migrated across %llu "
                "rebalancing epochs (last epoch %zu); per-shard queries:",
                static_cast<unsigned long long>(
                    sharded->rebalance_stats().queries_migrated),
                static_cast<unsigned long long>(
                    sharded->rebalance_stats().rebalance_events),
                sharded->last_epoch_migrations());
    for (std::size_t s = 0; s < sharded->shard_count(); ++s) {
      std::printf(" %zu", sharded->shard_query_count(s));
    }
    std::printf("\n");
  }
  std::printf("  tier churn: %llu promotions, %llu demotions, %llu terms "
              "hot now\n",
              static_cast<unsigned long long>(totals.tier_promotions),
              static_cast<unsigned long long>(totals.tier_demotions),
              static_cast<unsigned long long>(totals.hot_tier_terms));

  // 3. Hot terms by postings + probe work (upper-bound counts).
  const ita::obs::SpaceSavingSketch hot = engine->HotTerms();
  if (hot.total_weight() > 0) {
    std::printf("  hottest terms (postings + probe steps, upper bounds):");
    std::size_t shown = 0;
    for (const auto& entry : hot.TopK(8)) {
      std::printf("%s t%u=%llu", shown++ == 0 ? "" : ",", entry.term,
                  static_cast<unsigned long long>(entry.count));
    }
    std::printf("  (of %llu total)\n",
                static_cast<unsigned long long>(hot.total_weight()));
  }

  // 4. The registry snapshot — the exact series an external scrape sees.
  ita::obs::MetricsRegistry registry;
  const ita::Status exported = ita::sim::ExportEngineMetrics(
      *engine, {ita::obs::Label{"engine", engine->name()}}, &registry);
  if (!exported.ok()) {
    std::fprintf(stderr, "metrics export failed: %s\n",
                 exported.ToString().c_str());
    return 1;
  }
  std::printf("  registry snapshot (%zu counters, %zu gauges, %zu "
              "histograms):\n",
              registry.counters().size(), registry.gauges().size(),
              registry.histograms().size());
  for (const auto& counter : registry.counters()) {
    if (counter.value == 0) continue;  // keep the listing to live series
    if (counter.name == "ita_hot_term_load") continue;  // shown above
    std::printf("    %-34s %llu\n", counter.name.c_str(),
                static_cast<unsigned long long>(counter.value));
  }
  for (const auto& gauge : registry.gauges()) {
    if (gauge.value == 0.0) continue;
    std::printf("    %-34s %.2f\n", gauge.name.c_str(), gauge.value);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  MonitorConfig config;
  config.threads = FlagOr(argc, argv, "--threads", 0);  // 0 = auto
  config.queries = FlagOr(argc, argv, "--queries", 500);
  config.window = FlagOr(argc, argv, "--window", 2'000);
  config.batch = FlagOr(argc, argv, "--batch", 128);
  config.docs = FlagOr(argc, argv, "--docs", 4'096);

  const std::size_t pinned = FlagOr(argc, argv, "--shards", 0);
  std::vector<std::size_t> sweep;
  if (pinned != 0) {
    sweep.push_back(pinned);
  } else {
    sweep = {1, 2, 4, 8};
  }
  for (const std::size_t shards : sweep) {
    const int rc = RunOne(shards, config);
    if (rc != 0) return rc;
  }
  return 0;
}
