// The sharded parallel execution engine end to end (DESIGN.md §6):
//
//   1. Documents are analyzed ONCE by the pipeline (AnalyzeEpoch) and the
//      weighted vectors broadcast to every shard.
//   2. exec::ShardedServer partitions the registered queries across S
//      shards, each a private ItaServer, and drives every epoch's expire
//      and arrive phases in parallel with a barrier in between.
//   3. Results are exact — identical to one sequential server (see
//      tests/property/sharded_equivalence_property_test.cc).
//
// Prints per-shard busy time and the epoch critical path (max over
// shards), the quantity that becomes wall-clock latency once every shard
// has its own core — plus the memory-footprint gauges of the unified
// per-term catalog (DESIGN.md §7), per shard and aggregated.
//
// Build & run:   ./build/examples/sharded_monitor --shards 4 --threads 2
//                [--queries 500] [--window 2000] [--batch 128] [--docs 4096]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/sharded_server.h"
#include "stream/corpus.h"

namespace {

std::size_t FlagOr(int argc, char** argv, const char* name, std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t shards = FlagOr(argc, argv, "--shards", 4);
  const std::size_t threads = FlagOr(argc, argv, "--threads", 0);  // 0 = auto
  const std::size_t n_queries = FlagOr(argc, argv, "--queries", 500);
  const std::size_t window = FlagOr(argc, argv, "--window", 2'000);
  const std::size_t batch = FlagOr(argc, argv, "--batch", 128);
  const std::size_t docs = FlagOr(argc, argv, "--docs", 4'096);

  ita::exec::ShardedServerOptions options;
  options.window = ita::WindowSpec::CountBased(window);
  options.shards = shards;
  options.threads = threads;
  ita::exec::ShardedServer server(options);
  std::printf("engine %s, %zu scheduler thread(s)\n", server.name().c_str(),
              server.thread_count());

  // A hot query population over the Zipf head, so per-query work dominates
  // the replicated index maintenance — the regime sharding targets.
  ita::SyntheticCorpusOptions copts;
  copts.dictionary_size = 50'000;
  copts.seed = 7;
  ita::SyntheticCorpusGenerator corpus(copts);

  ita::QueryWorkloadOptions qopts;
  qopts.terms_per_query = 5;
  qopts.k = 10;
  qopts.max_term = 200;
  qopts.seed = 11;
  ita::QueryWorkloadGenerator queries(copts.dictionary_size, qopts);
  for (std::size_t i = 0; i < n_queries; ++i) {
    const auto id = server.RegisterQuery(queries.NextQuery());
    if (!id.ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("%zu queries partitioned over %zu shard(s): ",
              server.query_count(), server.shard_count());
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    std::printf("%s%zu", s == 0 ? "" : " / ", server.shard_query_count(s));
  }
  std::printf("\n");

  ita::Timestamp now = 0;
  std::size_t streamed = 0;
  while (streamed < docs) {
    std::vector<ita::Document> epoch;
    epoch.reserve(batch);
    for (std::size_t i = 0; i < batch && streamed + i < docs; ++i) {
      epoch.push_back(corpus.NextDocument(now += 5'000));
    }
    streamed += epoch.size();
    const auto ids = server.IngestBatch(std::move(epoch));
    if (!ids.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   ids.status().ToString().c_str());
      return 1;
    }
  }

  const ita::ServerStats stats = server.stats();
  std::printf("streamed %llu docs in %llu epochs, window holds %zu\n",
              static_cast<unsigned long long>(stats.documents_ingested),
              static_cast<unsigned long long>(server.epochs_processed()),
              server.window_size());
  std::printf("aggregated work: %llu scores, %llu result insertions\n",
              static_cast<unsigned long long>(stats.scores_computed),
              static_cast<unsigned long long>(stats.result_insertions));

  std::uint64_t critical = 0;
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    const std::uint64_t busy = server.shard_busy_micros(s);
    if (busy > critical) critical = busy;
    std::printf("  shard %zu: busy %8.1f ms, %zu queries, %llu scores\n", s,
                busy / 1e3, server.shard_query_count(s),
                static_cast<unsigned long long>(
                    server.shard_stats(s).scores_computed));
  }
  std::printf("epoch critical path (max shard busy): %.1f ms total — the\n"
              "wall cost of the stream once every shard has its own core\n",
              critical / 1e3);

  // Memory footprint of the per-term catalogs and query-state slabs
  // (DESIGN.md §7). Per-shard structures are private and real — the
  // document broadcast replicates postings per shard by design — so the
  // aggregate (summed by ServerStats::Add) is the engine's total memory.
  std::printf("memory footprint (catalog slab + postings + query slots):\n");
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    const ita::ServerStats& ss = server.shard_stats(s);
    std::printf("  shard %zu: %8.2f MiB slab, %8.2f MiB postings, "
                "%llu threshold entries, %llu query slots\n",
                s, ss.catalog_slab_bytes / (1024.0 * 1024.0),
                ss.postings_bytes / (1024.0 * 1024.0),
                static_cast<unsigned long long>(ss.threshold_entries),
                static_cast<unsigned long long>(ss.query_state_slots));
  }
  std::printf("  total:   %8.2f MiB slab, %8.2f MiB postings, "
              "%llu threshold entries, %llu query slots\n",
              stats.catalog_slab_bytes / (1024.0 * 1024.0),
              stats.postings_bytes / (1024.0 * 1024.0),
              static_cast<unsigned long long>(stats.threshold_entries),
              static_cast<unsigned long long>(stats.query_state_slots));

  // The shared window arena (DESIGN.md §8): document bytes live ONCE in
  // the engine, whatever the shard count — per-shard stores would pay
  // this figure S times. The duplication factor is total document memory
  // across engine + shards over one window copy; the shared arena pins it
  // at 1.0 (shards report 0 document bytes).
  const double window_mib = stats.document_bytes / (1024.0 * 1024.0);
  std::uint64_t shard_doc_bytes = 0;
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    shard_doc_bytes += server.shard_stats(s).document_bytes;
  }
  const double duplication =
      stats.document_bytes == 0
          ? 0.0
          : static_cast<double>(stats.document_bytes + shard_doc_bytes) /
                static_cast<double>(stats.document_bytes);
  std::printf("window arena: %8.2f MiB documents in %llu segments, "
              "shared by %zu shard(s) — duplication x%.2f\n",
              window_mib,
              static_cast<unsigned long long>(stats.arena_segments),
              server.shard_count(), duplication);
  return 0;
}
