// An interactive text-monitoring shell over the library — type documents
// and standing queries, watch results update live. Reads commands from
// stdin, so it can also be scripted:
//
//   printf 'query 2 oil prices\ndoc oil prices rallied today\nresults\n' |
//     ./build/examples/interactive_monitor
//
// Commands:
//   query <k> <terms...>     install a continuous query, prints its id
//   drop <qid>               terminate a query
//   doc <text...>            stream one document
//   load <path>              stream a file (one document per line)
//   results                  print every query's current top-k
//   inspect <qid>            thresholds/candidates of one query (ITA gut)
//   stats                    server operation counters
//   help, quit

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>

#include "core/ita_server.h"
#include "stream/corpus.h"
#include "text/analyzer.h"

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  query <k> <terms...>   install a continuous query\n"
      "  drop <qid>             terminate a query\n"
      "  doc <text...>          stream one document\n"
      "  load <path>            stream a file (one document per line)\n"
      "  results                current top-k of every query\n"
      "  inspect <qid>          thresholds & candidates of a query\n"
      "  stats                  server operation counters\n"
      "  help | quit\n");
}

}  // namespace

int main() {
  ita::Analyzer analyzer;
  ita::ItaServer server{ita::ServerOptions{ita::WindowSpec::CountBased(1000)}};
  std::map<ita::QueryId, std::string> query_texts;
  ita::Timestamp now = 0;

  std::printf("ITA interactive monitor — window: last 1000 documents. "
              "Type 'help' for commands.\n");

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "help") {
      PrintHelp();

    } else if (cmd == "query") {
      int k = 0;
      in >> k;
      std::string terms;
      std::getline(in, terms);
      const auto query = analyzer.MakeQuery(terms, k);
      if (!query.ok()) {
        std::printf("error: %s\n", query.status().ToString().c_str());
        continue;
      }
      const auto qid = server.RegisterQuery(*query);
      if (!qid.ok()) {
        std::printf("error: %s\n", qid.status().ToString().c_str());
        continue;
      }
      query_texts[*qid] = terms;
      std::printf("query %u installed (k=%d):%s\n", *qid, k, terms.c_str());

    } else if (cmd == "drop") {
      ita::QueryId qid = 0;
      in >> qid;
      const ita::Status status = server.UnregisterQuery(qid);
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
      } else {
        query_texts.erase(qid);
        std::printf("query %u terminated\n", qid);
      }

    } else if (cmd == "doc") {
      std::string text;
      std::getline(in, text);
      const auto id = server.Ingest(analyzer.MakeDocument(text, now += 1000));
      if (!id.ok()) {
        std::printf("error: %s\n", id.status().ToString().c_str());
      } else {
        std::printf("doc %llu ingested (window now %zu)\n",
                    static_cast<unsigned long long>(*id), server.window_size());
      }

    } else if (cmd == "load") {
      std::string path;
      in >> path;
      const auto docs = ita::TextFileCorpusReader::ReadAll(path, &analyzer);
      if (!docs.ok()) {
        std::printf("error: %s\n", docs.status().ToString().c_str());
        continue;
      }
      std::size_t n = 0;
      for (const ita::Document& doc : *docs) {
        ita::Document copy = doc;
        copy.arrival_time = now += 1000;
        if (server.Ingest(std::move(copy)).ok()) ++n;
      }
      std::printf("streamed %zu documents from %s (window now %zu)\n", n,
                  path.c_str(), server.window_size());

    } else if (cmd == "results") {
      if (query_texts.empty()) std::printf("(no queries installed)\n");
      for (const auto& [qid, text] : query_texts) {
        std::printf("query %u:%s\n", qid, text.c_str());
        const auto result = server.Result(qid);
        if (!result.ok() || result->empty()) {
          std::printf("  (no matching document in the window)\n");
          continue;
        }
        for (const ita::ResultEntry& e : *result) {
          const auto doc = server.documents().Get(e.doc);
          const std::string_view text = doc ? doc->text : "";
          std::printf("  %.4f  doc %llu  %.*s\n", e.score,
                      static_cast<unsigned long long>(e.doc),
                      static_cast<int>(std::min<std::size_t>(text.size(), 60)),
                      text.data());
        }
      }

    } else if (cmd == "inspect") {
      ita::QueryId qid = 0;
      in >> qid;
      const auto tau = server.InfluenceThreshold(qid);
      if (!tau.ok()) {
        std::printf("error: %s\n", tau.status().ToString().c_str());
        continue;
      }
      const auto candidates = server.Candidates(qid);
      std::printf("query %u: tau=%.6f, |R|=%zu candidates\n", qid, *tau,
                  candidates->size());

    } else if (cmd == "stats") {
      std::printf("%s", server.stats().ToString().c_str());

    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
