// News monitoring (the paper's investment-manager scenario): an
// "investment manager who is interested in a portfolio of industries and
// companies" monitors newsflashes; words related to the industries of
// interest are standing text queries over the stream.
//
// Demonstrates: time-based sliding windows, Poisson arrivals on virtual
// time, result listeners (alerts), several concurrent portfolio queries.
//
// Build & run:   ./build/examples/news_monitoring

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/ita_server.h"
#include "stream/arrival_process.h"
#include "text/analyzer.h"

namespace {

// A synthetic newsflash wire: a rotating mix of sector stories.
const char* kNewsWire[] = {
    "Crude oil futures climbed after producers signaled deeper supply cuts.",
    "The semiconductor giant unveiled a new chip fabrication process.",
    "Gold steadied while investors weighed central bank rate signals.",
    "Electric vehicle deliveries hit a record as battery costs fell.",
    "Refinery outages tightened gasoline supply across the region.",
    "A chip shortage continues to squeeze automotive production lines.",
    "The airline reported strong bookings despite higher fuel prices.",
    "Battery recycling startups attract fresh venture funding rounds.",
    "Oil demand forecasts were trimmed on slowing industrial activity.",
    "Foundries race to expand semiconductor capacity in new fabs.",
    "Utilities add grid scale batteries to absorb solar generation.",
    "Jet fuel hedging cushioned the carrier from crude price swings.",
};

}  // namespace

int main() {
  ita::Analyzer analyzer;

  // Keep the last 20 (virtual) seconds of newsflashes.
  ita::ItaServer server{
      ita::ServerOptions{ita::WindowSpec::TimeBased(20 * ita::kMicrosPerSecond)}};

  // The manager's portfolio, registered as standing queries.
  struct Portfolio {
    const char* name;
    const char* terms;
  };
  const Portfolio portfolio[] = {
      {"energy", "oil crude refinery fuel"},
      {"chips", "semiconductor chip fabrication foundry"},
      {"ev-batteries", "electric vehicle battery"},
  };

  std::map<ita::QueryId, std::string> names;
  for (const Portfolio& p : portfolio) {
    const auto query = analyzer.MakeQuery(p.terms, /*k=*/3);
    if (!query.ok()) {
      std::fprintf(stderr, "bad query '%s': %s\n", p.terms,
                   query.status().ToString().c_str());
      return 1;
    }
    const auto qid = server.RegisterQuery(*query);
    if (!qid.ok()) {
      std::fprintf(stderr, "register failed: %s\n", qid.status().ToString().c_str());
      return 1;
    }
    names[*qid] = p.name;
    std::printf("registered portfolio query '%s' (id %u): {%s}\n", p.name, *qid,
                p.terms);
  }

  // Alert whenever any portfolio's top-3 changes.
  std::size_t alerts = 0;
  server.SetResultListener(
      [&](ita::QueryId qid, const std::vector<ita::ResultEntry>& result) {
        ++alerts;
        if (result.empty()) {
          std::printf("  ALERT [%s] no matching story left in the window\n",
                      names[qid].c_str());
          return;
        }
        std::printf("  ALERT [%s] top story now doc %llu (score %.3f, %zu hits)\n",
                    names[qid].c_str(),
                    static_cast<unsigned long long>(result.front().doc),
                    result.front().score, result.size());
      });

  // Newsflashes arrive as a Poisson process, ~1 story per virtual second.
  ita::PoissonProcess arrivals(/*rate_per_second=*/1.0, /*seed=*/2026);
  std::printf("\n--- streaming 36 newsflashes over ~36s of virtual time ---\n");
  const int kFlashes = 36;
  for (int i = 0; i < kFlashes; ++i) {
    const char* text = kNewsWire[i % (sizeof(kNewsWire) / sizeof(kNewsWire[0]))];
    const ita::Timestamp t = arrivals.Next();
    const auto id = server.Ingest(analyzer.MakeDocument(text, t));
    if (!id.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
    std::printf("[t=%6.1fs] doc %llu: %.60s\n",
                static_cast<double>(t) / ita::kMicrosPerSecond,
                static_cast<unsigned long long>(*id), text);
  }

  std::printf("\n--- final portfolio views ---\n");
  for (const auto& [qid, name] : names) {
    std::printf("%s:\n", name.c_str());
    const auto result = server.Result(qid);
    for (const ita::ResultEntry& e : *result) {
      const auto doc = server.documents().Get(e.doc);
      const std::string_view text = doc ? doc->text : "<expired>";
      std::printf("  %.3f  doc %llu  %.*s\n", e.score,
                  static_cast<unsigned long long>(e.doc),
                  static_cast<int>(std::min<std::size_t>(text.size(), 56)),
                  text.data());
    }
  }

  const ita::ServerStats& stats = server.stats();
  std::printf("\n%zu alerts; %llu arrivals, %llu expirations, "
              "%llu threshold roll-ups, %llu refills\n",
              alerts,
              static_cast<unsigned long long>(stats.documents_ingested),
              static_cast<unsigned long long>(stats.documents_expired),
              static_cast<unsigned long long>(stats.rollup_steps),
              static_cast<unsigned long long>(stats.refills));

  // The wire goes quiet: advancing virtual time expires the whole window
  // (time-based windows need no arrival to age documents out).
  const ita::Timestamp idle = arrivals.Now() + 25 * ita::kMicrosPerSecond;
  if (!server.AdvanceTime(idle).ok()) return 1;
  std::printf("after 25s of silence the window holds %zu documents and "
              "every portfolio view is empty\n",
              server.window_size());
  return 0;
}
