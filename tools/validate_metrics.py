#!/usr/bin/env python3
"""Validate a metrics JSON snapshot against docs/metrics_schema.json.

Usage: tools/validate_metrics.py <snapshot.json> [schema.json]

Dependency-free: implements the subset of JSON Schema the checked-in
schema actually uses (type, required, properties, additionalProperties,
items, enum, minimum, pattern), then applies the semantic checks a
structural schema cannot express:

  * no duplicate (name, labels) series across counters/gauges/histograms,
  * each histogram's bucket counts sum to its `count`,
  * bucket `le` bounds strictly increase,
  * min <= p50 <= p90 <= p99 <= max on every non-empty histogram.

Exit code 0 = valid, 1 = invalid (every violation printed), 2 = usage.
"""

import json
import re
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; exclude it explicitly.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def check(schema, value, path, errors):
    """Structural validation of the supported schema subset."""
    expected = schema.get("type")
    if expected is not None and not TYPE_CHECKS[expected](value):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if "pattern" in schema and isinstance(value, str) \
            and re.search(schema["pattern"], value) is None:
        errors.append(f"{path}: {value!r} does not match {schema['pattern']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, child in value.items():
            if key in properties:
                check(properties[key], child, f"{path}.{key}", errors)
            elif isinstance(additional, dict):
                check(additional, child, f"{path}.{key}", errors)
            elif additional is False:
                errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            check(schema["items"], item, f"{path}[{i}]", errors)


def semantic_checks(snapshot, errors):
    """The invariants the schema subset cannot express."""
    seen = set()
    for kind in ("counters", "gauges", "histograms"):
        for i, series in enumerate(snapshot.get(kind, [])):
            if not isinstance(series, dict):
                continue
            labels = series.get("labels", {})
            if not isinstance(labels, dict):
                continue
            key = (series.get("name"), tuple(sorted(labels.items())))
            if key in seen:
                errors.append(f"{kind}[{i}]: duplicate series {key}")
            seen.add(key)

    for i, hist in enumerate(snapshot.get("histograms", [])):
        if not isinstance(hist, dict):
            continue
        path = f"histograms[{i}]"
        buckets = hist.get("buckets", [])
        bucket_total = sum(b.get("count", 0) for b in buckets
                           if isinstance(b, dict))
        if bucket_total != hist.get("count"):
            errors.append(f"{path}: bucket counts sum to {bucket_total}, "
                          f"count is {hist.get('count')}")
        bounds = [b.get("le") for b in buckets if isinstance(b, dict)]
        if bounds != sorted(set(bounds)):
            errors.append(f"{path}: bucket le bounds not strictly increasing")
        if hist.get("count", 0) > 0:
            chain = [hist.get(k, 0) for k in ("min", "p50", "p90", "p99", "max")]
            if chain != sorted(chain):
                errors.append(f"{path}: min<=p50<=p90<=p99<=max violated: "
                              f"{chain}")


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    snapshot_path = argv[1]
    schema_path = argv[2] if len(argv) == 3 else "docs/metrics_schema.json"
    with open(snapshot_path, encoding="utf-8") as f:
        snapshot = json.load(f)
    with open(schema_path, encoding="utf-8") as f:
        schema = json.load(f)

    errors = []
    check(schema, snapshot, "$", errors)
    semantic_checks(snapshot, errors)
    if errors:
        for error in errors:
            print(f"INVALID {error}")
        return 1
    counters = len(snapshot.get("counters", []))
    gauges = len(snapshot.get("gauges", []))
    hists = len(snapshot.get("histograms", []))
    print(f"OK {snapshot_path}: {counters} counters, {gauges} gauges, "
          f"{hists} histograms")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
