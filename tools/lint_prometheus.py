#!/usr/bin/env python3
"""Lint a Prometheus text exposition file.

Usage: tools/lint_prometheus.py <exposition.prom>

Mirrors obs::LintPrometheus (src/obs/metrics.cc): every sample line must
parse as `name[{key="value",...}] value`, metric names must match
[a-zA-Z_:][a-zA-Z0-9_:]*, label keys [a-zA-Z_][a-zA-Z0-9_]*, and no
(name, labels) series may repeat. Additionally checks the HELP/TYPE
discipline the registry renderer guarantees: at most one HELP and one
TYPE comment per metric family.

Exit code 0 = clean, 1 = violations (all printed), 2 = usage.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_KEY = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[^{\s]+)"
    r"(?:\{(?P<labels>(?:[^\"}]+=\"(?:[^\"\\]|\\.)*\",?)*)\})?"
    r" (?P<value>\S+)$"
)
LABEL = re.compile(r'(?P<key>[^=,]+)="(?P<value>(?:[^"\\]|\\.)*)"')
VALUE = re.compile(r"^[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|Inf|NaN)$")


def lint(path):
    errors = []
    seen_series = set()
    seen_comments = set()
    with open(path, encoding="utf-8") as f:
        for number, raw in enumerate(f, start=1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("#"):
                match = re.match(r"^# (HELP|TYPE) (\S+)", line)
                if match:
                    key = (match.group(1), match.group(2))
                    if key in seen_comments:
                        errors.append(
                            f"{path}:{number}: repeated {match.group(1)} for "
                            f"family {match.group(2)}")
                    seen_comments.add(key)
                continue
            match = SAMPLE.match(line)
            if match is None:
                errors.append(f"{path}:{number}: unparsable sample line: "
                              f"{line!r}")
                continue
            name = match.group("name")
            if METRIC_NAME.match(name) is None:
                errors.append(f"{path}:{number}: invalid metric name {name!r}")
            labels = []
            if match.group("labels"):
                for label in LABEL.finditer(match.group("labels")):
                    key = label.group("key").lstrip(",")
                    if LABEL_KEY.match(key) is None:
                        errors.append(
                            f"{path}:{number}: invalid label key {key!r}")
                    labels.append((key, label.group("value")))
            if VALUE.match(match.group("value")) is None:
                errors.append(f"{path}:{number}: non-numeric value "
                              f"{match.group('value')!r}")
            series = (name, tuple(sorted(labels)))
            if series in seen_series:
                errors.append(f"{path}:{number}: duplicate series {series}")
            seen_series.add(series)
    return errors, len(seen_series)


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors, samples = lint(argv[1])
    if errors:
        for error in errors:
            print(f"INVALID {error}")
        return 1
    print(f"OK {argv[1]}: {samples} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
