// ThreadPool contract tests: every submitted task runs exactly once,
// exceptions travel through the returned future without killing workers,
// and shutdown drains the queue before joining. The suite doubles as the
// ThreadSanitizer workout for the pool's queue synchronization.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ita {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);

  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&executed] { ++executed; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPoolTest, FutureDeliversTaskException) {
  ThreadPool pool(2);

  auto throwing = pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(throwing.get(), std::runtime_error);

  // The worker that ran the throwing task must survive it.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ExceptionInOneTaskDoesNotAffectOthers) {
  ThreadPool pool(3);
  std::atomic<int> succeeded{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(pool.Submit([i, &succeeded] {
      if (i % 3 == 0) throw std::logic_error("boom");
      ++succeeded;
    }));
  }
  int failures = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const std::logic_error&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 10);
  EXPECT_EQ(succeeded.load(), 20);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    // One worker, many tasks: most are still queued when Shutdown (via the
    // destructor) begins, and all of them must still run.
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++executed;
      });
    }
  }
  EXPECT_EQ(executed.load(), 50);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  pool.Submit([&executed] { ++executed; });
  pool.Shutdown();
  pool.Shutdown();  // second call must be a no-op, destructor a third
  EXPECT_EQ(executed.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};

  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futures(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &executed, &futures, t] {
      for (int i = 0; i < 25; ++i) {
        futures[t].push_back(pool.Submit([&executed] { ++executed; }));
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) f.get();
  }
  EXPECT_EQ(executed.load(), 100);
}

}  // namespace
}  // namespace ita
