#include "common/status.h"

#include <gtest/gtest.h>

namespace ita {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nothing");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 5);
}

Status Fails() { return Status::OutOfRange("boom"); }
Status Propagates() {
  ITA_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Propagates().IsOutOfRange());
}

StatusOr<int> MakeSeven() { return 7; }
StatusOr<int> MakeError() { return Status::Internal("no"); }

Status UseAssignOrReturn(bool fail, int* out) {
  ITA_ASSIGN_OR_RETURN(const int v, fail ? MakeError() : MakeSeven());
  *out = v;
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(UseAssignOrReturn(true, &out).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ita
