#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace ita {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoublePositiveNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_GT(rng.NextDoublePositive(), 0.0);
  }
}

TEST(RngTest, UniformIntRespectsBoundsAndCoversRange) {
  Rng rng(99);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.UniformInt(3, 12);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 12u);
    ++hits[v - 3];
  }
  for (const int h : hits) {
    // Each of the 10 values should receive ~10000 hits.
    EXPECT_GT(h, 9000);
    EXPECT_LT(h, 11000);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(42, 42), 42u);
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const double rate = 200.0;  // the paper's arrival rate
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(rate);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0 / rate, 0.1 / rate);
}

TEST(RngTest, NormalMomentsAreSane) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(RngTest, LogNormalMedianIsExpMu) {
  Rng rng(17);
  const double mu = 5.56;
  const int n = 100001;
  std::vector<double> values;
  values.reserve(n);
  for (int i = 0; i < n; ++i) values.push_back(rng.LogNormal(mu, 0.6));
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  const double median = values[n / 2];
  EXPECT_NEAR(median, std::exp(mu), std::exp(mu) * 0.05);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(1000, 1.0);
  double sum = 0.0;
  for (std::size_t r = 0; r < zipf.n(); ++r) sum += zipf.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsMonotoneDecreasing) {
  ZipfDistribution zipf(500, 1.2);
  for (std::size_t r = 1; r < zipf.n(); ++r) {
    ASSERT_LT(zipf.Pmf(r), zipf.Pmf(r - 1));
  }
}

TEST(ZipfTest, SampleFrequenciesTrackPmf) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(23);
  std::vector<int> hits(100, 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++hits[zipf.Sample(&rng)];
  // Spot-check the head ranks against the analytic pmf.
  for (const std::size_t r : {0u, 1u, 2u, 5u, 10u}) {
    const double expected = zipf.Pmf(r) * n;
    EXPECT_NEAR(hits[r], expected, expected * 0.1 + 30.0) << "rank " << r;
  }
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  ZipfDistribution zipf(50, 0.0);
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_NEAR(zipf.Pmf(r), 1.0 / 50.0, 1e-12);
  }
}

TEST(ZipfTest, SamplesStayInRange) {
  ZipfDistribution zipf(10, 1.5);
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(zipf.Sample(&rng), 10u);
  }
}

}  // namespace
}  // namespace ita
