#include "common/clock.h"

#include <gtest/gtest.h>

namespace ita {
namespace {

TEST(ClockTest, StartsAtGivenTime) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
}

TEST(ClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  clock.Advance(5);
  clock.Advance(7);
  EXPECT_EQ(clock.Now(), 12);
}

TEST(ClockTest, AdvanceToJumps) {
  VirtualClock clock;
  clock.AdvanceTo(1'000'000);
  EXPECT_EQ(clock.Now(), kMicrosPerSecond);
}

TEST(ClockTest, SecondsConversion) {
  EXPECT_EQ(SecondsToMicros(1.0), 1'000'000);
  EXPECT_EQ(SecondsToMicros(0.5), 500'000);
  EXPECT_EQ(SecondsToMicros(0.000001), 1);
}

}  // namespace
}  // namespace ita
