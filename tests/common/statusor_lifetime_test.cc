// Regression coverage for the dangling-StatusOr footgun documented at
// ContinuousSearchServer::Result(): the accessors of a *temporary*
// StatusOr return references that die with the temporary at the end of the
// full expression. These tests pin down the SAFE patterns — bind to a
// named variable, or copy/move the value out — and exercise them end to
// end against a live server so a lifetime regression shows up under ASan.
//
// The unsafe form `for (auto& e : *server.Result(id))` is rejected at
// compile time on Clang via ITA_LIFETIME_BOUND (see common/status.h); it
// cannot appear here because this file must also compile with GCC, where
// the annotation is a no-op.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "../testing/builders.h"
#include "common/status.h"
#include "core/ita_server.h"

namespace ita {
namespace {

ItaServer& PopulatedServer(QueryId* qid) {
  static ItaServer* server = [] {
    auto* s = new ItaServer{ServerOptions{WindowSpec::CountBased(10)}};
    return s;
  }();
  static QueryId id = [] {
    const auto got =
        server->RegisterQuery(testing::MakeQuery(2, {{1, 1.0}, {2, 0.5}}));
    ITA_CHECK_OK(got.status());
    ITA_CHECK_OK(server->Ingest(testing::MakeDoc({{1, 0.9}}, 100)).status());
    ITA_CHECK_OK(server->Ingest(testing::MakeDoc({{2, 0.8}}, 200)).status());
    ITA_CHECK_OK(server->Ingest(testing::MakeDoc({{3, 0.7}}, 300)).status());
    return *got;
  }();
  *qid = id;
  return *server;
}

// Safe pattern 1: bind the StatusOr to a named variable, then iterate.
TEST(StatusOrLifetimeTest, NamedBindingThenIterate) {
  QueryId qid;
  ItaServer& server = PopulatedServer(&qid);

  const auto result = server.Result(qid);
  ASSERT_TRUE(result.ok());
  std::size_t seen = 0;
  double prev = 2.0;
  for (const ResultEntry& entry : *result) {
    EXPECT_GT(entry.score, 0.0);
    EXPECT_LE(entry.score, prev);
    prev = entry.score;
    ++seen;
  }
  EXPECT_EQ(seen, result->size());
  EXPECT_EQ(seen, 2u);
}

// Safe pattern 2: move the value out of the rvalue StatusOr in the same
// full expression; the vector owns its storage afterwards.
TEST(StatusOrLifetimeTest, MoveValueOutOfTemporary) {
  QueryId qid;
  ItaServer& server = PopulatedServer(&qid);

  const std::vector<ResultEntry> entries = *server.Result(qid);
  ASSERT_EQ(entries.size(), 2u);
  for (const ResultEntry& entry : entries) {
    EXPECT_GT(entry.score, 0.0);
  }
}

// Safe pattern 3: value_or copies out with a fallback for the error case.
TEST(StatusOrLifetimeTest, ValueOrCopiesOut) {
  QueryId qid;
  ItaServer& server = PopulatedServer(&qid);

  const std::vector<ResultEntry> entries =
      server.Result(qid).value_or(std::vector<ResultEntry>{});
  EXPECT_EQ(entries.size(), 2u);

  const std::vector<ResultEntry> missing =
      server.Result(9999).value_or(std::vector<ResultEntry>{});
  EXPECT_TRUE(missing.empty());
}

// status() of a named error StatusOr stays valid while the object lives.
TEST(StatusOrLifetimeTest, ErrorStatusAccessibleFromNamedBinding) {
  QueryId qid;
  ItaServer& server = PopulatedServer(&qid);

  const auto missing = server.Result(9999);
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
  EXPECT_FALSE(missing.status().message().empty());
}

// Status and StatusOr are [[nodiscard]]: returns must be consumed. This
// cannot be asserted at runtime, but the explicit void casts below are the
// sanctioned discard idiom and must stay compilable.
TEST(StatusOrLifetimeTest, ExplicitDiscardIdiomCompiles) {
  QueryId qid;
  ItaServer& server = PopulatedServer(&qid);
  (void)server.Result(qid);
  (void)server.AdvanceTime(server.last_arrival_time());
  SUCCEED();
}

}  // namespace
}  // namespace ita
