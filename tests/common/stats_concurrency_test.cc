// The per-shard statistics scheme (common/stats.h): each shard owns a
// private ServerStats written by exactly one worker at a time, and the
// driver aggregates them on read with Add(). These tests pin down (a) that
// Add() covers every counter, so aggregation cannot silently drop a field
// added later, and (b) that the scheme is race-free when counters are
// bumped from concurrent shard workers — the ThreadSanitizer CI job runs
// this suite to prove it.

#include "common/stats.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace ita {
namespace {

// Fills every byte of the struct through a distinct per-field value so a
// counter missed by Add() shows up as a mismatch.
ServerStats DistinctStats(std::uint64_t base) {
  ServerStats s;
  s.documents_ingested = base + 1;
  s.documents_expired = base + 2;
  s.batches_ingested = base + 3;
  s.index_entries_inserted = base + 4;
  s.index_entries_erased = base + 5;
  s.scores_computed = base + 6;
  s.queries_probed = base + 7;
  s.membership_checks = base + 8;
  s.result_insertions = base + 9;
  s.result_removals = base + 10;
  s.threshold_probe_steps = base + 11;
  s.list_entries_read = base + 12;
  s.rollup_steps = base + 13;
  s.rollup_evictions = base + 14;
  s.refills = base + 15;
  s.full_rescans = base + 16;
  s.catalog_slab_bytes = base + 17;
  s.postings_bytes = base + 18;
  s.threshold_entries = base + 19;
  s.query_state_slots = base + 20;
  s.arena_segments = base + 21;
  s.document_bytes = base + 22;
  return s;
}

TEST(StatsConcurrencyTest, AddCoversEveryCounter) {
  // ServerStats is a plain aggregate of uint64 counters; if a new counter
  // is added without extending Add(), the byte-wise comparison of "a + b"
  // against the field-wise expectation below fails for it.
  static_assert(sizeof(ServerStats) % sizeof(std::uint64_t) == 0,
                "ServerStats must stay an aggregate of uint64 counters");

  const ServerStats a = DistinctStats(100);
  const ServerStats b = DistinctStats(2000);
  ServerStats sum = a;
  sum.Add(b);

  const auto* words_a = reinterpret_cast<const std::uint64_t*>(&a);
  const auto* words_b = reinterpret_cast<const std::uint64_t*>(&b);
  const auto* words_sum = reinterpret_cast<const std::uint64_t*>(&sum);
  const std::size_t n = sizeof(ServerStats) / sizeof(std::uint64_t);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(words_sum[i], words_a[i] + words_b[i]) << "counter index " << i;
  }
}

TEST(StatsConcurrencyTest, PerShardCountersAggregateUnderConcurrentUpdates) {
  // The sharded engine's exact pattern: one ServerStats per shard, each
  // hammered by its own worker thread only, aggregated after the join
  // (the join is the barrier that orders writes against the read).
  constexpr std::size_t kShards = 8;
  constexpr std::uint64_t kBumpsPerShard = 100'000;

  std::vector<ServerStats> per_shard(kShards);
  std::vector<std::thread> workers;
  workers.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    workers.emplace_back([&per_shard, s] {
      ServerStats& mine = per_shard[s];
      for (std::uint64_t i = 0; i < kBumpsPerShard; ++i) {
        ++mine.scores_computed;
        ++mine.queries_probed;
        mine.threshold_probe_steps += 3;
      }
    });
  }
  for (auto& w : workers) w.join();

  ServerStats aggregated;
  for (const ServerStats& shard : per_shard) aggregated.Add(shard);
  EXPECT_EQ(aggregated.scores_computed, kShards * kBumpsPerShard);
  EXPECT_EQ(aggregated.queries_probed, kShards * kBumpsPerShard);
  EXPECT_EQ(aggregated.threshold_probe_steps, 3 * kShards * kBumpsPerShard);
  EXPECT_EQ(aggregated.documents_ingested, 0u);
}

TEST(StatsConcurrencyTest, ResetClearsEveryCounter) {
  ServerStats s = DistinctStats(7);
  s.Reset();
  const auto* words = reinterpret_cast<const std::uint64_t*>(&s);
  for (std::size_t i = 0; i < sizeof(ServerStats) / sizeof(std::uint64_t); ++i) {
    EXPECT_EQ(words[i], 0u) << "counter index " << i;
  }
}

}  // namespace
}  // namespace ita
