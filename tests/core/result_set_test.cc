#include "core/result_set.h"

#include <gtest/gtest.h>

namespace ita {
namespace {

TEST(ResultSetTest, EmptySet) {
  ResultSet r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.KthScore(1), 0.0);
  EXPECT_EQ(r.KthScore(5), 0.0);
  EXPECT_TRUE(r.TopK(3).empty());
  EXPECT_FALSE(r.Contains(1));
  EXPECT_FALSE(r.ScoreOf(1).has_value());
  EXPECT_FALSE(r.Worst().has_value());
  EXPECT_FALSE(r.Erase(1));
}

TEST(ResultSetTest, OrderedByScoreDescending) {
  ResultSet r;
  r.Insert(1, 0.3);
  r.Insert(2, 0.9);
  r.Insert(3, 0.5);
  const auto top = r.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].doc, 2u);
  EXPECT_EQ(top[1].doc, 3u);
  EXPECT_EQ(top[2].doc, 1u);
}

TEST(ResultSetTest, TiesNewestFirst) {
  ResultSet r;
  r.Insert(5, 0.5);
  r.Insert(9, 0.5);
  r.Insert(2, 0.5);
  const auto top = r.TopK(3);
  EXPECT_EQ(top[0].doc, 9u);
  EXPECT_EQ(top[1].doc, 5u);
  EXPECT_EQ(top[2].doc, 2u);
}

TEST(ResultSetTest, KthScore) {
  ResultSet r;
  r.Insert(1, 0.9);
  r.Insert(2, 0.7);
  r.Insert(3, 0.5);
  EXPECT_DOUBLE_EQ(r.KthScore(1), 0.9);
  EXPECT_DOUBLE_EQ(r.KthScore(2), 0.7);
  EXPECT_DOUBLE_EQ(r.KthScore(3), 0.5);
  EXPECT_EQ(r.KthScore(4), 0.0);  // fewer than 4 docs
  EXPECT_EQ(r.KthScore(0), 0.0);
}

TEST(ResultSetTest, TopKTruncates) {
  ResultSet r;
  for (DocId d = 1; d <= 10; ++d) r.Insert(d, 0.1 * static_cast<double>(d));
  const auto top = r.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].doc, 10u);
  EXPECT_DOUBLE_EQ(top[0].score, 1.0);
}

TEST(ResultSetTest, EraseRemovesBothViews) {
  ResultSet r;
  r.Insert(1, 0.4);
  r.Insert(2, 0.6);
  EXPECT_TRUE(r.Erase(1));
  EXPECT_FALSE(r.Contains(1));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.KthScore(1), 0.6);
  EXPECT_FALSE(r.Erase(1));
}

TEST(ResultSetTest, ScoreOfReturnsExactStored) {
  ResultSet r;
  r.Insert(7, 0.123456789);
  ASSERT_TRUE(r.ScoreOf(7).has_value());
  EXPECT_DOUBLE_EQ(*r.ScoreOf(7), 0.123456789);
}

TEST(ResultSetTest, InTopK) {
  ResultSet r;
  r.Insert(1, 0.9);
  r.Insert(2, 0.8);
  r.Insert(3, 0.7);
  EXPECT_TRUE(r.InTopK(1, 2));
  EXPECT_TRUE(r.InTopK(2, 2));
  EXPECT_FALSE(r.InTopK(3, 2));
  EXPECT_TRUE(r.InTopK(3, 3));
  EXPECT_FALSE(r.InTopK(99, 3));
}

TEST(ResultSetTest, InTopKWithTies) {
  ResultSet r;
  r.Insert(1, 0.5);
  r.Insert(2, 0.5);
  r.Insert(3, 0.5);
  // Ties rank newest first: top-2 = {3, 2}.
  EXPECT_TRUE(r.InTopK(3, 2));
  EXPECT_TRUE(r.InTopK(2, 2));
  EXPECT_FALSE(r.InTopK(1, 2));
}

TEST(ResultSetTest, WorstIsLowestOldest) {
  ResultSet r;
  r.Insert(1, 0.5);
  r.Insert(2, 0.3);
  r.Insert(3, 0.3);
  const auto worst = r.Worst();
  ASSERT_TRUE(worst.has_value());
  EXPECT_EQ(worst->doc, 2u);  // tied at 0.3, older doc ranks last
  EXPECT_DOUBLE_EQ(worst->score, 0.3);
}

TEST(ResultSetTest, ClearEmpties) {
  ResultSet r;
  r.Insert(1, 0.5);
  r.Clear();
  EXPECT_TRUE(r.empty());
  r.Insert(1, 0.7);  // reusable, same doc id OK after Clear
  EXPECT_DOUBLE_EQ(*r.ScoreOf(1), 0.7);
}

TEST(ResultSetTest, IterationIsSorted) {
  ResultSet r;
  for (DocId d = 1; d <= 100; ++d) {
    r.Insert(d, static_cast<double>((d * 37) % 50));
  }
  double prev = 1e300;
  for (const auto& e : r) {
    ASSERT_LE(e.score, prev);
    prev = e.score;
  }
}

}  // namespace
}  // namespace ita
