// Tests of the shared server machinery (window mechanics, registration,
// time advancement, listeners) — run against all three implementations via
// a typed parameterization.

#include <gtest/gtest.h>

#include <memory>

#include "../testing/builders.h"
#include "core/ita_server.h"
#include "core/naive_server.h"
#include "core/oracle_server.h"

namespace ita {
namespace {

using testing::Ids;
using testing::MakeDoc;
using testing::MakeQuery;

enum class Kind { kIta, kNaive, kOracle };

std::unique_ptr<ContinuousSearchServer> MakeServer(Kind kind, ServerOptions opts) {
  switch (kind) {
    case Kind::kIta: return std::make_unique<ItaServer>(opts);
    case Kind::kNaive: return std::make_unique<NaiveServer>(opts);
    case Kind::kOracle: return std::make_unique<OracleServer>(opts);
  }
  return nullptr;
}

class ServerCommonTest : public ::testing::TestWithParam<Kind> {
 protected:
  std::unique_ptr<ContinuousSearchServer> NewServer(ServerOptions opts) {
    return MakeServer(GetParam(), opts);
  }
};

TEST_P(ServerCommonTest, CountWindowEvictsOldest) {
  auto server = NewServer({WindowSpec::CountBased(3)});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, i)).ok());
  }
  EXPECT_EQ(server->window_size(), 3u);
  EXPECT_EQ(server->documents().Oldest().id, 3u);
  EXPECT_EQ(server->stats().documents_ingested, 5u);
  EXPECT_EQ(server->stats().documents_expired, 2u);
}

TEST_P(ServerCommonTest, TimeWindowEvictsByAge) {
  auto server = NewServer({WindowSpec::TimeBased(100)});
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 0)).ok());
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 50)).ok());
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 99)).ok());
  EXPECT_EQ(server->window_size(), 3u);
  // t=100: the t=0 document is exactly 100us old -> expired.
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 100)).ok());
  EXPECT_EQ(server->window_size(), 3u);
  // A quiet period then a late arrival expires several at once.
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 250)).ok());
  EXPECT_EQ(server->window_size(), 1u);
}

TEST_P(ServerCommonTest, AdvanceTimeExpiresWithoutArrival) {
  auto server = NewServer({WindowSpec::TimeBased(100)});
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 0)).ok());
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 60)).ok());
  ASSERT_TRUE(server->AdvanceTime(120).ok());
  EXPECT_EQ(server->window_size(), 1u);
  ASSERT_TRUE(server->AdvanceTime(200).ok());
  EXPECT_EQ(server->window_size(), 0u);
}

TEST_P(ServerCommonTest, AdvanceTimeIsNoOpForCountWindows) {
  auto server = NewServer({WindowSpec::CountBased(10)});
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 5)).ok());
  ASSERT_TRUE(server->AdvanceTime(1'000'000).ok());
  EXPECT_EQ(server->window_size(), 1u);
}

TEST_P(ServerCommonTest, OutOfOrderArrivalRejected) {
  auto server = NewServer({WindowSpec::CountBased(10)});
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 100)).ok());
  const auto result = server->Ingest(MakeDoc({{1, 0.5}}, 99));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_FALSE(server->AdvanceTime(50).ok());
}

TEST_P(ServerCommonTest, RegisterRejectsInvalidQueries) {
  auto server = NewServer({WindowSpec::CountBased(10)});
  EXPECT_FALSE(server->RegisterQuery(MakeQuery(0, {{1, 0.5}})).ok());
  EXPECT_FALSE(server->RegisterQuery(MakeQuery(3, {})).ok());
  EXPECT_FALSE(server->RegisterQuery(MakeQuery(3, {{1, -1.0}})).ok());
}

TEST_P(ServerCommonTest, QueryIdsAreSequential) {
  auto server = NewServer({WindowSpec::CountBased(10)});
  const auto a = server->RegisterQuery(MakeQuery(1, {{1, 1.0}}));
  const auto b = server->RegisterQuery(MakeQuery(1, {{2, 1.0}}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a + 1, *b);
  EXPECT_EQ(server->query_count(), 2u);
}

TEST_P(ServerCommonTest, UnregisterRemovesQuery) {
  auto server = NewServer({WindowSpec::CountBased(10)});
  const auto id = server->RegisterQuery(MakeQuery(1, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(server->UnregisterQuery(*id).ok());
  EXPECT_EQ(server->query_count(), 0u);
  EXPECT_TRUE(server->UnregisterQuery(*id).IsNotFound());
  EXPECT_FALSE(server->Result(*id).ok());
  // The stream continues to work with no queries.
  EXPECT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 1)).ok());
}

TEST_P(ServerCommonTest, ResultForUnknownQueryIsNotFound) {
  auto server = NewServer({WindowSpec::CountBased(10)});
  EXPECT_TRUE(server->Result(42).status().IsNotFound());
}

TEST_P(ServerCommonTest, RegistrationComputesInitialResultOverWindow) {
  auto server = NewServer({WindowSpec::CountBased(10)});
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.9}}, 0)).ok());   // doc 1
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.4}}, 1)).ok());   // doc 2
  ASSERT_TRUE(server->Ingest(MakeDoc({{2, 0.8}}, 2)).ok());   // doc 3 (no term 1)
  const auto id = server->RegisterQuery(MakeQuery(2, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  const auto result = server->Result(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Ids(*result), (std::vector<DocId>{1, 2}));
}

TEST_P(ServerCommonTest, ResultShrinksWithWindow) {
  auto server = NewServer({WindowSpec::CountBased(2)});
  const auto id = server->RegisterQuery(MakeQuery(5, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.9}}, 0)).ok());
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.8}}, 1)).ok());
  ASSERT_TRUE(server->Ingest(MakeDoc({{2, 0.7}}, 2)).ok());  // pushes doc 1 out
  const auto result = server->Result(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Ids(*result), (std::vector<DocId>{2}));
}

TEST_P(ServerCommonTest, ListenerFiresOnTopKChange) {
  if (GetParam() == Kind::kOracle) {
    GTEST_SKIP() << "the oracle recomputes on read and cannot track changes";
  }
  auto server = NewServer({WindowSpec::CountBased(10)});
  const auto id = server->RegisterQuery(MakeQuery(1, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());

  int notifications = 0;
  std::vector<ResultEntry> last;
  server->SetResultListener([&](QueryId q, const std::vector<ResultEntry>& r) {
    EXPECT_EQ(q, *id);
    ++notifications;
    last = r;
  });

  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 0)).ok());
  EXPECT_EQ(notifications, 1);
  ASSERT_EQ(last.size(), 1u);

  // A weaker document does not change the top-1.
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.2}}, 1)).ok());
  EXPECT_EQ(notifications, 1);

  // A stronger one does.
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.9}}, 2)).ok());
  EXPECT_EQ(notifications, 2);
  EXPECT_EQ(last[0].doc, 3u);

  // A document with an unrelated term never notifies.
  ASSERT_TRUE(server->Ingest(MakeDoc({{9, 0.9}}, 3)).ok());
  EXPECT_EQ(notifications, 2);
}

TEST_P(ServerCommonTest, StatsResetClearsCounters) {
  auto server = NewServer({WindowSpec::CountBased(2)});
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 0)).ok());
  EXPECT_GT(server->stats().documents_ingested, 0u);
  server->ResetStats();
  EXPECT_EQ(server->stats().documents_ingested, 0u);
}

TEST_P(ServerCommonTest, EqualTimestampsAllowed) {
  auto server = NewServer({WindowSpec::CountBased(10)});
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.5}}, 7)).ok());
  ASSERT_TRUE(server->Ingest(MakeDoc({{1, 0.6}}, 7)).ok());  // burst
  EXPECT_EQ(server->window_size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllServers, ServerCommonTest,
                         ::testing::Values(Kind::kIta, Kind::kNaive, Kind::kOracle),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           switch (info.param) {
                             case Kind::kIta: return "Ita";
                             case Kind::kNaive: return "Naive";
                             case Kind::kOracle: return "Oracle";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace ita
