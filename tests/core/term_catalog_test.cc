// TermCatalog subsumes the former index/InvertedIndex: the document- and
// epoch-granular posting maintenance must behave identically (these
// suites port the InvertedIndex tests), and the colocated TermState adds
// the per-term threshold tree plus the memory-footprint gauges.

#include "core/term_catalog.h"

#include <gtest/gtest.h>

#include <vector>

#include "../testing/builders.h"

namespace ita {
namespace {

Document MakeDoc(DocId id, Composition composition) {
  Document doc;
  doc.id = id;
  doc.composition = std::move(composition);
  return doc;
}

TEST(TermCatalogTest, AddCreatesListsPerTerm) {
  TermCatalog catalog;
  EXPECT_EQ(catalog.AddDocument(MakeDoc(1, {{2, 0.3}, {5, 0.7}})), 2u);
  EXPECT_EQ(catalog.materialized_lists(), 2u);
  EXPECT_EQ(catalog.total_postings(), 2u);
  ASSERT_NE(catalog.List(2), nullptr);
  ASSERT_NE(catalog.List(5), nullptr);
  // Terms without a posting expose no list — whether inside the slab (3)
  // or beyond it (9999).
  EXPECT_EQ(catalog.List(3), nullptr);
  EXPECT_EQ(catalog.List(9999), nullptr);
  EXPECT_EQ(catalog.List(2)->size(), 1u);
}

TEST(TermCatalogTest, SharedTermsAccumulate) {
  TermCatalog catalog;
  catalog.AddDocument(MakeDoc(1, {{7, 0.4}}));
  catalog.AddDocument(MakeDoc(2, {{7, 0.9}}));
  catalog.AddDocument(MakeDoc(3, {{7, 0.1}}));
  ASSERT_NE(catalog.List(7), nullptr);
  EXPECT_EQ(catalog.List(7)->size(), 3u);
  EXPECT_DOUBLE_EQ(*catalog.List(7)->TopWeight(), 0.9);
}

TEST(TermCatalogTest, RemoveInvertsAdd) {
  TermCatalog catalog;
  const Document d1 = MakeDoc(1, {{2, 0.3}, {5, 0.7}});
  const Document d2 = MakeDoc(2, {{5, 0.2}});
  catalog.AddDocument(d1);
  catalog.AddDocument(d2);
  EXPECT_EQ(catalog.RemoveDocument(d1), 2u);
  EXPECT_EQ(catalog.total_postings(), 1u);
  EXPECT_TRUE(catalog.List(2)->empty());
  EXPECT_EQ(catalog.List(5)->size(), 1u);
  EXPECT_EQ(catalog.RemoveDocument(d2), 1u);
  EXPECT_EQ(catalog.total_postings(), 0u);
}

TEST(TermCatalogTest, ListContentsSurviveSlabGrowth) {
  // The slab stores TermState by value, so growing it past a term MOVES
  // the state (pointers are documented non-stable across Ensure of a
  // larger term); the contents and identities must survive the move.
  TermCatalog catalog;
  catalog.AddDocument(MakeDoc(1, {{0, 0.5}}));
  catalog.AddDocument(MakeDoc(2, {{100000, 0.5}}));
  ASSERT_NE(catalog.List(0), nullptr);
  EXPECT_EQ(catalog.List(0)->size(), 1u);
  EXPECT_EQ(catalog.List(0)->begin()->doc, 1u);
  EXPECT_EQ(catalog.term_count(), 100001u);
}

TEST(TermCatalogTest, ChurnKeepsCountsConsistent) {
  TermCatalog catalog;
  std::vector<Document> window;
  std::size_t expected = 0;
  for (DocId id = 1; id <= 500; ++id) {
    Composition comp;
    for (TermId t = static_cast<TermId>(id % 7); t < 20; t += 7) {
      comp.push_back({t, 0.1 + static_cast<double>(id % 13) / 13.0});
    }
    Document doc = MakeDoc(id, comp);
    catalog.AddDocument(doc);
    expected += comp.size();
    window.push_back(std::move(doc));
    if (window.size() > 50) {
      expected -= window.front().composition.size();
      catalog.RemoveDocument(window.front());
      window.erase(window.begin());
    }
  }
  EXPECT_EQ(catalog.total_postings(), expected);
  EXPECT_EQ(catalog.postings_bytes(), expected * sizeof(ImpactEntry));
}

TEST(TermCatalogTest, ColocatedTreeLivesBesideList) {
  // The tentpole property: one Ensure yields both halves of a term's
  // state, and tree registrations do not fake list materialization.
  TermCatalog catalog;
  TermState& ts = catalog.Ensure(42);
  EXPECT_TRUE(ts.tree.Insert(0.25, 7));
  EXPECT_EQ(catalog.List(42), nullptr);  // no posting yet

  EXPECT_TRUE(catalog.InsertPosting(ts, 1, 0.5));
  ASSERT_NE(catalog.List(42), nullptr);
  EXPECT_EQ(catalog.List(42)->size(), 1u);
  EXPECT_EQ(catalog.materialized_lists(), 1u);

  std::vector<QueryId> hits;
  catalog.Find(42)->tree.ProbeLessEqual(0.5, [&](QueryId q) { hits.push_back(q); });
  EXPECT_EQ(hits, (std::vector<QueryId>{7}));
}

TEST(TermCatalogTest, SlabBytesTrackCapacity) {
  TermCatalog catalog;
  EXPECT_EQ(catalog.slab_bytes(), 0u);
  catalog.Ensure(9);
  EXPECT_GE(catalog.slab_bytes(), 10 * sizeof(TermState));
}

// --- ported epoch-granular suite (AddBatch / RemoveBatch / runs) -------

Document WithId(Document doc, DocId id) {
  doc.id = id;
  return doc;
}

std::vector<Document> SampleDocs() {
  using testing::MakeDoc;
  return {
      WithId(MakeDoc({{1, 0.9}, {2, 0.2}, {7, 0.4}}), 1),
      WithId(MakeDoc({{1, 0.5}, {3, 0.8}}), 2),
      WithId(MakeDoc({{1, 0.5}, {2, 0.2}, {3, 0.1}, {9, 1.0}}), 3),
      WithId(MakeDoc({{7, 0.4}}), 4),
  };
}

void ExpectSameLists(const TermCatalog& got, const TermCatalog& want,
                     TermId max_term) {
  for (TermId t = 0; t <= max_term; ++t) {
    const InvertedList* g = got.List(t);
    const InvertedList* w = want.List(t);
    const std::size_t gn = g == nullptr ? 0 : g->size();
    const std::size_t wn = w == nullptr ? 0 : w->size();
    ASSERT_EQ(gn, wn) << "term " << t;
    if (gn == 0) continue;
    auto gi = g->begin();
    for (const ImpactEntry& we : *w) {
      EXPECT_EQ(gi->doc, we.doc) << "term " << t;
      EXPECT_EQ(gi->weight, we.weight) << "term " << t;
      ++gi;
    }
  }
}

TEST(TermCatalogBatchTest, AddBatchMatchesAddDocument) {
  const std::vector<Document> docs = SampleDocs();
  TermCatalog batched, sequential;
  std::vector<const Document*> ptrs;
  for (const Document& d : docs) ptrs.push_back(&d);

  std::size_t want_postings = 0;
  for (const Document& d : docs) want_postings += sequential.AddDocument(d);
  EXPECT_EQ(batched.AddBatch(ptrs), want_postings);
  EXPECT_EQ(batched.total_postings(), sequential.total_postings());
  ExpectSameLists(batched, sequential, 9);
}

TEST(TermCatalogBatchTest, RemoveBatchMatchesRemoveDocument) {
  const std::vector<Document> docs = SampleDocs();
  TermCatalog batched, sequential;
  std::vector<const Document*> ptrs;
  for (const Document& d : docs) ptrs.push_back(&d);
  (void)batched.AddBatch(ptrs);
  for (const Document& d : docs) (void)sequential.AddDocument(d);

  // Remove the middle two as one epoch.
  const std::vector<Document> epoch = {docs[1], docs[2]};
  const std::size_t removed = batched.RemoveBatch(epoch);
  EXPECT_EQ(removed, docs[1].composition.size() + docs[2].composition.size());
  (void)sequential.RemoveDocument(docs[1]);
  (void)sequential.RemoveDocument(docs[2]);
  EXPECT_EQ(batched.total_postings(), sequential.total_postings());
  ExpectSameLists(batched, sequential, 9);
}

TEST(TermCatalogBatchTest, EmptyBatchIsNoOp) {
  TermCatalog catalog;
  EXPECT_EQ(catalog.AddBatch({}), 0u);
  EXPECT_EQ(catalog.RemoveBatch({}), 0u);
  EXPECT_EQ(catalog.total_postings(), 0u);
}

TEST(TermCatalogBatchTest, InsertRunEraseRunRoundTrip) {
  TermCatalog catalog;
  const std::vector<ImpactEntry> run = {{0.9, 3}, {0.9, 1}, {0.2, 2}};
  EXPECT_EQ(catalog.InsertRun(5, run.begin(), run.end()), run.size());
  ASSERT_NE(catalog.List(5), nullptr);
  EXPECT_EQ(catalog.List(5)->size(), 3u);
  EXPECT_EQ(catalog.total_postings(), 3u);

  EXPECT_EQ(catalog.EraseRun(5, run.begin(), run.end()), run.size());
  EXPECT_TRUE(catalog.List(5)->empty());
  EXPECT_EQ(catalog.total_postings(), 0u);
  // Erasing from a never-materialized term is a no-op.
  EXPECT_EQ(catalog.EraseRun(4242, run.begin(), run.end()), 0u);
}

}  // namespace
}  // namespace ita
