#include "core/threshold_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.h"

namespace ita {
namespace {

std::vector<QueryId> Probe(const ThresholdTree& tree, double w) {
  std::vector<QueryId> hits;
  tree.ProbeLessEqual(w, [&](QueryId q) { hits.push_back(q); });
  std::sort(hits.begin(), hits.end());
  return hits;
}

TEST(ThresholdTreeTest, EmptyTreeProbesNothing) {
  ThresholdTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(Probe(tree, 1.0).empty());
}

TEST(ThresholdTreeTest, ProbeSelectsThetaLessEqual) {
  ThresholdTree tree;
  tree.Insert(0.10, 1);
  tree.Insert(0.20, 2);
  tree.Insert(0.30, 3);
  EXPECT_EQ(Probe(tree, 0.05), (std::vector<QueryId>{}));
  EXPECT_EQ(Probe(tree, 0.10), (std::vector<QueryId>{1}));  // inclusive
  EXPECT_EQ(Probe(tree, 0.25), (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(Probe(tree, 0.30), (std::vector<QueryId>{1, 2, 3}));
  EXPECT_EQ(Probe(tree, 9.99), (std::vector<QueryId>{1, 2, 3}));
}

TEST(ThresholdTreeTest, ProbeCountsVisitedEntries) {
  ThresholdTree tree;
  tree.Insert(0.1, 1);
  tree.Insert(0.2, 2);
  tree.Insert(0.9, 3);
  std::size_t count = tree.ProbeLessEqual(0.5, [](QueryId) {});
  EXPECT_EQ(count, 2u);
}

TEST(ThresholdTreeTest, EqualThetasForDifferentQueries) {
  ThresholdTree tree;
  tree.Insert(0.5, 10);
  tree.Insert(0.5, 20);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(Probe(tree, 0.5), (std::vector<QueryId>{10, 20}));
  EXPECT_TRUE(tree.Erase(0.5, 10));
  EXPECT_EQ(Probe(tree, 0.5), (std::vector<QueryId>{20}));
}

TEST(ThresholdTreeTest, UpdateMovesThreshold) {
  ThresholdTree tree;
  tree.Insert(0.10, 7);
  tree.Update(0.10, 0.40, 7);  // roll-up
  EXPECT_TRUE(Probe(tree, 0.2).empty());
  EXPECT_EQ(Probe(tree, 0.4), (std::vector<QueryId>{7}));
  tree.Update(0.40, 0.05, 7);  // refill lowers it again
  EXPECT_EQ(Probe(tree, 0.07), (std::vector<QueryId>{7}));
}

TEST(ThresholdTreeTest, EraseMissingReturnsFalse) {
  ThresholdTree tree;
  tree.Insert(0.5, 1);
  EXPECT_FALSE(tree.Erase(0.4, 1));   // wrong theta
  EXPECT_FALSE(tree.Erase(0.5, 99));  // wrong query
  EXPECT_TRUE(tree.Erase(0.5, 1));
  EXPECT_TRUE(tree.empty());
}

TEST(ThresholdTreeTest, InfinityThresholdIsInvisible) {
  ThresholdTree tree;
  tree.Insert(std::numeric_limits<double>::infinity(), 3);
  EXPECT_TRUE(Probe(tree, 1e308).empty());
  EXPECT_TRUE(tree.Erase(std::numeric_limits<double>::infinity(), 3));
}

TEST(ThresholdTreeTest, ZeroThresholdMatchesEverything) {
  ThresholdTree tree;
  tree.Insert(0.0, 4);
  EXPECT_EQ(Probe(tree, 0.0000001), (std::vector<QueryId>{4}));
  EXPECT_EQ(Probe(tree, 0.0), (std::vector<QueryId>{4}));
}

TEST(ThresholdTreeTest, ManyQueriesProbeScalesWithHits) {
  ThresholdTree tree;
  for (QueryId q = 0; q < 1000; ++q) {
    tree.Insert(0.001 * static_cast<double>(q), q);
  }
  const auto hits = Probe(tree, 0.0095);
  EXPECT_EQ(hits.size(), 10u);  // thetas 0.000 .. 0.009
  EXPECT_EQ(hits.front(), 0u);
  EXPECT_EQ(hits.back(), 9u);
}

// --- flat-layout specifics (DESIGN.md §7) ------------------------------

TEST(FlatThresholdTreeTest, DuplicateInsertIsRejected) {
  FlatThresholdTree tree;
  EXPECT_TRUE(tree.Insert(0.5, 1));
  EXPECT_FALSE(tree.Insert(0.5, 1));  // exact duplicate: no insertion
  EXPECT_EQ(tree.size(), 1u);
  // Same query at a different theta IS a distinct entry (the caller is
  // responsible for the one-threshold-per-query invariant).
  EXPECT_TRUE(tree.Insert(0.6, 1));
  EXPECT_EQ(tree.size(), 2u);
}

TEST(FlatThresholdTreeTest, EntriesStayPackedAndSorted) {
  FlatThresholdTree tree;
  tree.Insert(0.5, 2);
  tree.Insert(0.1, 9);
  tree.Insert(0.5, 1);
  tree.Insert(0.3, 5);
  ASSERT_EQ(tree.size(), 4u);
  EXPECT_DOUBLE_EQ(tree.At(0).theta, 0.1);
  EXPECT_DOUBLE_EQ(tree.At(1).theta, 0.3);
  // Equal thetas order by query id — the tie rule the probe scan relies on.
  EXPECT_DOUBLE_EQ(tree.At(2).theta, 0.5);
  EXPECT_EQ(tree.At(2).query, 1u);
  EXPECT_EQ(tree.At(3).query, 2u);
}

TEST(FlatThresholdTreeTest, BoundaryTieProbeTakesWholeRun) {
  // A probe exactly at a tie run's theta must report every member of the
  // run (<=, not <) and nothing beyond it.
  FlatThresholdTree tree;
  tree.Insert(0.2, 1);
  tree.Insert(0.3, 2);
  tree.Insert(0.3, 3);
  tree.Insert(0.3, 4);
  tree.Insert(0.30000001, 5);
  EXPECT_EQ(Probe(tree, 0.3), (std::vector<QueryId>{1, 2, 3, 4}));
  EXPECT_EQ(tree.ProbeLessEqual(0.3, [](QueryId) {}), 4u);
  // Just below the run: only the entry beneath it.
  EXPECT_EQ(Probe(tree, 0.29999999), (std::vector<QueryId>{1}));
}

TEST(FlatThresholdTreeTest, UpdateMovesAcrossTieRuns) {
  FlatThresholdTree tree;
  tree.Insert(0.5, 1);
  tree.Insert(0.5, 2);
  tree.Insert(0.5, 3);
  tree.Update(0.5, 0.5, 2);  // no-op move must be harmless
  EXPECT_EQ(Probe(tree, 0.5), (std::vector<QueryId>{1, 2, 3}));
  tree.Update(0.5, 0.1, 2);  // down, past its tie peers
  tree.Update(0.5, 0.9, 3);  // up
  EXPECT_EQ(Probe(tree, 0.1), (std::vector<QueryId>{2}));
  EXPECT_EQ(Probe(tree, 0.5), (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(Probe(tree, 0.9), (std::vector<QueryId>{1, 2, 3}));
}

std::vector<FlatThresholdTree::Entry> Entries(const FlatThresholdTree& tree) {
  std::vector<FlatThresholdTree::Entry> entries;
  entries.reserve(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) entries.push_back(tree.At(i));
  return entries;
}

TEST(FlatThresholdTreeTest, BulkRethetaMatchesSingles) {
  // Random trees, random move sets: ApplyMoves must leave the tree
  // byte-identical to the same moves applied one Update at a time.
  Rng rng(0xBEEF);
  for (int round = 0; round < 50; ++round) {
    FlatThresholdTree bulk, singles;
    const std::size_t n = 1 + rng.Next() % 64;
    std::vector<double> theta(n);
    for (QueryId q = 0; q < n; ++q) {
      // Coarse grid so tie runs are common.
      theta[q] = (rng.Next() % 16) / 16.0;
      bulk.Insert(theta[q], q);
      singles.Insert(theta[q], q);
    }

    // At most one move per query, mixing ups, downs, ties and no-ops —
    // the shape one epoch's roll-up/refill produces.
    std::vector<FlatThresholdTree::ThetaMove> moves;
    for (QueryId q = 0; q < n; ++q) {
      if (rng.Next() % 2 == 0) continue;
      const double target = (rng.Next() % 16) / 16.0;
      moves.push_back({theta[q], target, q});
    }
    std::vector<FlatThresholdTree::ThetaMove> singles_moves = moves;

    bulk.ApplyMoves(moves);
    for (const auto& m : singles_moves) {
      singles.Update(m.old_theta, m.new_theta, m.query);
    }

    const auto got = Entries(bulk);
    const auto want = Entries(singles);
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[i].theta, want[i].theta) << "round " << round;
      EXPECT_EQ(got[i].query, want[i].query) << "round " << round;
    }
  }
}

TEST(FlatThresholdTreeTest, ApplyMovesHandlesInfinityAndEmptySets) {
  FlatThresholdTree tree;
  const double inf = std::numeric_limits<double>::infinity();
  tree.Insert(inf, 1);
  tree.Insert(inf, 2);

  std::vector<FlatThresholdTree::ThetaMove> none;
  EXPECT_EQ(tree.ApplyMoves(none), 0u);

  // Registration-to-first-search: both entries drop from +inf at once.
  std::vector<FlatThresholdTree::ThetaMove> moves = {
      {inf, 0.4, 1}, {inf, 0.2, 2}};
  EXPECT_EQ(tree.ApplyMoves(moves), 2u);
  EXPECT_EQ(Probe(tree, 1.0), (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(Probe(tree, 0.3), (std::vector<QueryId>{2}));
}

TEST(FlatThresholdTreeTest, MinThetaTracksEveryMutation) {
  // The cached probe gate (DESIGN.md §10) must equal the smallest live
  // theta after any mutation, and +inf on an empty tree.
  const double inf = std::numeric_limits<double>::infinity();
  FlatThresholdTree tree;
  EXPECT_EQ(tree.MinTheta(), inf);
  tree.Insert(0.5, 1);
  EXPECT_DOUBLE_EQ(tree.MinTheta(), 0.5);
  tree.Insert(0.2, 2);
  EXPECT_DOUBLE_EQ(tree.MinTheta(), 0.2);
  tree.Update(0.2, 0.8, 2);  // the minimum moves away
  EXPECT_DOUBLE_EQ(tree.MinTheta(), 0.5);
  std::vector<FlatThresholdTree::ThetaMove> moves = {{0.5, 0.05, 1},
                                                     {0.8, 0.6, 2}};
  tree.ApplyMoves(moves);
  EXPECT_DOUBLE_EQ(tree.MinTheta(), 0.05);
  EXPECT_TRUE(tree.Erase(0.05, 1));
  EXPECT_DOUBLE_EQ(tree.MinTheta(), 0.6);
  EXPECT_TRUE(tree.Erase(0.6, 2));
  EXPECT_EQ(tree.MinTheta(), inf);
}

TEST(FlatThresholdTreeTest, MinThetaMatchesFrontUnderRandomChurn) {
  Rng rng(0xFEED);
  FlatThresholdTree tree;
  std::vector<double> position;  // query q's live theta (index = q)
  for (int step = 0; step < 2000; ++step) {
    const QueryId q = static_cast<QueryId>(rng.Next() % 48);
    if (q >= position.size()) {
      position.resize(q + 1, -1.0);
    }
    const double target = (rng.Next() % 64) / 64.0;
    if (position[q] < 0.0) {
      ASSERT_TRUE(tree.Insert(target, q));
      position[q] = target;
    } else if (rng.Next() % 4 == 0) {
      ASSERT_TRUE(tree.Erase(position[q], q));
      position[q] = -1.0;
    } else {
      tree.Update(position[q], target, q);
      position[q] = target;
    }
    const double want = tree.empty()
                            ? std::numeric_limits<double>::infinity()
                            : tree.At(0).theta;
    ASSERT_EQ(tree.MinTheta(), want) << "step " << step;
  }
}

TEST(FlatThresholdTreeTest, ShrinksAsQueriesLeave) {
  FlatThresholdTree tree;
  for (QueryId q = 0; q < 100; ++q) tree.Insert(q * 0.01, q);
  for (QueryId q = 0; q < 100; ++q) EXPECT_TRUE(tree.Erase(q * 0.01, q));
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.ProbeLessEqual(1.0, [](QueryId) {}), 0u);
}

}  // namespace
}  // namespace ita
