#include "core/threshold_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ita {
namespace {

std::vector<QueryId> Probe(const ThresholdTree& tree, double w) {
  std::vector<QueryId> hits;
  tree.ProbeLessEqual(w, [&](QueryId q) { hits.push_back(q); });
  std::sort(hits.begin(), hits.end());
  return hits;
}

TEST(ThresholdTreeTest, EmptyTreeProbesNothing) {
  ThresholdTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(Probe(tree, 1.0).empty());
}

TEST(ThresholdTreeTest, ProbeSelectsThetaLessEqual) {
  ThresholdTree tree;
  tree.Insert(0.10, 1);
  tree.Insert(0.20, 2);
  tree.Insert(0.30, 3);
  EXPECT_EQ(Probe(tree, 0.05), (std::vector<QueryId>{}));
  EXPECT_EQ(Probe(tree, 0.10), (std::vector<QueryId>{1}));  // inclusive
  EXPECT_EQ(Probe(tree, 0.25), (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(Probe(tree, 0.30), (std::vector<QueryId>{1, 2, 3}));
  EXPECT_EQ(Probe(tree, 9.99), (std::vector<QueryId>{1, 2, 3}));
}

TEST(ThresholdTreeTest, ProbeCountsVisitedEntries) {
  ThresholdTree tree;
  tree.Insert(0.1, 1);
  tree.Insert(0.2, 2);
  tree.Insert(0.9, 3);
  std::size_t count = tree.ProbeLessEqual(0.5, [](QueryId) {});
  EXPECT_EQ(count, 2u);
}

TEST(ThresholdTreeTest, EqualThetasForDifferentQueries) {
  ThresholdTree tree;
  tree.Insert(0.5, 10);
  tree.Insert(0.5, 20);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(Probe(tree, 0.5), (std::vector<QueryId>{10, 20}));
  EXPECT_TRUE(tree.Erase(0.5, 10));
  EXPECT_EQ(Probe(tree, 0.5), (std::vector<QueryId>{20}));
}

TEST(ThresholdTreeTest, UpdateMovesThreshold) {
  ThresholdTree tree;
  tree.Insert(0.10, 7);
  tree.Update(0.10, 0.40, 7);  // roll-up
  EXPECT_TRUE(Probe(tree, 0.2).empty());
  EXPECT_EQ(Probe(tree, 0.4), (std::vector<QueryId>{7}));
  tree.Update(0.40, 0.05, 7);  // refill lowers it again
  EXPECT_EQ(Probe(tree, 0.07), (std::vector<QueryId>{7}));
}

TEST(ThresholdTreeTest, EraseMissingReturnsFalse) {
  ThresholdTree tree;
  tree.Insert(0.5, 1);
  EXPECT_FALSE(tree.Erase(0.4, 1));   // wrong theta
  EXPECT_FALSE(tree.Erase(0.5, 99));  // wrong query
  EXPECT_TRUE(tree.Erase(0.5, 1));
  EXPECT_TRUE(tree.empty());
}

TEST(ThresholdTreeTest, InfinityThresholdIsInvisible) {
  ThresholdTree tree;
  tree.Insert(std::numeric_limits<double>::infinity(), 3);
  EXPECT_TRUE(Probe(tree, 1e308).empty());
  EXPECT_TRUE(tree.Erase(std::numeric_limits<double>::infinity(), 3));
}

TEST(ThresholdTreeTest, ZeroThresholdMatchesEverything) {
  ThresholdTree tree;
  tree.Insert(0.0, 4);
  EXPECT_EQ(Probe(tree, 0.0000001), (std::vector<QueryId>{4}));
  EXPECT_EQ(Probe(tree, 0.0), (std::vector<QueryId>{4}));
}

TEST(ThresholdTreeTest, ManyQueriesProbeScalesWithHits) {
  ThresholdTree tree;
  for (QueryId q = 0; q < 1000; ++q) {
    tree.Insert(0.001 * static_cast<double>(q), q);
  }
  const auto hits = Probe(tree, 0.0095);
  EXPECT_EQ(hits.size(), 10u);  // thetas 0.000 .. 0.009
  EXPECT_EQ(hits.front(), 0u);
  EXPECT_EQ(hits.back(), 9u);
}

}  // namespace
}  // namespace ita
