#include "core/ita_server.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../testing/builders.h"

namespace ita {
namespace {

using testing::Ids;
using testing::MakeDoc;
using testing::MakeQuery;

constexpr TermId kTower = 11;
constexpr TermId kWhite = 20;
// Query "white white tower" (Figure 1): f_white=2, f_tower=1, cosine-
// normalized.
const double kWq = 1.0 / std::sqrt(5.0);

Query WhiteWhiteTower(int k) {
  return MakeQuery(k, {{kTower, kWq}, {kWhite, 2.0 * kWq}});
}

// The running example of Figures 1-2, with self-consistent compositions:
// single-term documents whose weights mirror the inverted lists
//   L_tower: (0.10,d7) (0.08,d1) (0.07,d5) (0.05,d8)
//   L_white: (0.08,d6) (0.06,d2) (0.04,d4) (0.03,d3)
class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<ItaServer>(ServerOptions{WindowSpec::CountBased(100)});
    // Ingest in id order d1..d8.
    ASSERT_TRUE(server_->Ingest(MakeDoc({{kTower, 0.08}}, 1)).ok());  // d1
    ASSERT_TRUE(server_->Ingest(MakeDoc({{kWhite, 0.06}}, 2)).ok());  // d2
    ASSERT_TRUE(server_->Ingest(MakeDoc({{kWhite, 0.03}}, 3)).ok());  // d3
    ASSERT_TRUE(server_->Ingest(MakeDoc({{kWhite, 0.04}}, 4)).ok());  // d4
    ASSERT_TRUE(server_->Ingest(MakeDoc({{kTower, 0.07}}, 5)).ok());  // d5
    ASSERT_TRUE(server_->Ingest(MakeDoc({{kWhite, 0.08}}, 6)).ok());  // d6
    ASSERT_TRUE(server_->Ingest(MakeDoc({{kTower, 0.10}}, 7)).ok());  // d7
    ASSERT_TRUE(server_->Ingest(MakeDoc({{kTower, 0.05}}, 8)).ok());  // d8
    const auto id = server_->RegisterQuery(WhiteWhiteTower(2));
    ASSERT_TRUE(id.ok());
    query_ = *id;
  }

  std::unique_ptr<ItaServer> server_;
  QueryId query_ = kInvalidQueryId;
};

TEST_F(PaperExampleTest, InitialTopKMatchesFigure1) {
  const auto result = server_->Result(query_);
  ASSERT_TRUE(result.ok());
  // {d6, d2}: S(d6) = 2/sqrt(5)*0.08 ~ 0.0716, S(d2) ~ 0.0537.
  EXPECT_EQ(Ids(*result), (std::vector<DocId>{6, 2}));
  EXPECT_NEAR((*result)[0].score, 0.16 * kWq, 1e-12);
  EXPECT_NEAR((*result)[1].score, 0.12 * kWq, 1e-12);
}

TEST_F(PaperExampleTest, InfluenceThresholdDoesNotExceedSk) {
  const auto tau = server_->InfluenceThreshold(query_);
  ASSERT_TRUE(tau.ok());
  const auto result = server_->Result(query_);
  ASSERT_TRUE(result.ok());
  const double sk = result->back().score;
  EXPECT_LE(*tau, sk * (1.0 + 1e-12));
  EXPECT_GT(*tau, 0.0);
}

TEST_F(PaperExampleTest, LocalThresholdsFinalizeAtLastReadWeights) {
  // The search descends both lists until tau <= S_k; with this data it
  // stops after reading tower down to 0.05 and white down to 0.03.
  const auto theta_tower = server_->LocalThreshold(query_, kTower);
  const auto theta_white = server_->LocalThreshold(query_, kWhite);
  ASSERT_TRUE(theta_tower.ok());
  ASSERT_TRUE(theta_white.ok());
  EXPECT_DOUBLE_EQ(*theta_tower, 0.05);
  EXPECT_DOUBLE_EQ(*theta_white, 0.03);
}

TEST_F(PaperExampleTest, UnknownTermIsOutOfRange) {
  EXPECT_TRUE(server_->LocalThreshold(query_, 999).status().IsOutOfRange());
  EXPECT_TRUE(server_->LocalThreshold(12345, kTower).status().IsNotFound());
}

TEST_F(PaperExampleTest, ArrivalTriggersRollUpAndEviction) {
  // d9 arrives with a strong tower weight (Figure 2), entering the top-2.
  ASSERT_TRUE(server_->Ingest(MakeDoc({{kTower, 0.18}}, 9)).ok());  // d9

  const auto result = server_->Result(query_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Ids(*result), (std::vector<DocId>{9, 6}));

  // Roll-up lifted the tower threshold from 0.05 to at least 0.08 (the
  // two cheap lifts are well within the new S_k).
  const auto theta_tower = server_->LocalThreshold(query_, kTower);
  ASSERT_TRUE(theta_tower.ok());
  EXPECT_GE(*theta_tower, 0.08 - 1e-12);
  EXPECT_GT(server_->stats().rollup_steps, 0u);

  // Documents that fell below every local threshold left R (d8 at tower
  // 0.05 and d5 at tower 0.07 are now de-monitored).
  const auto candidates = server_->Candidates(query_);
  ASSERT_TRUE(candidates.ok());
  const auto ids = Ids(*candidates);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), 8u), 0);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), 5u), 0);
  EXPECT_GT(server_->stats().rollup_evictions, 0u);

  // tau <= S_k still holds after the roll-up.
  const auto tau = server_->InfluenceThreshold(query_);
  ASSERT_TRUE(tau.ok());
  EXPECT_LE(*tau, (*result)[1].score * (1.0 + 1e-12));
}

TEST_F(PaperExampleTest, IrrelevantArrivalIsNotProcessed) {
  server_->ResetStats();
  ASSERT_TRUE(server_->Ingest(MakeDoc({{777, 0.9}}, 9)).ok());
  EXPECT_EQ(server_->stats().queries_probed, 0u);
  EXPECT_EQ(server_->stats().scores_computed, 0u);
}

TEST_F(PaperExampleTest, BelowThresholdArrivalAfterRollUpIsIgnored) {
  ASSERT_TRUE(server_->Ingest(MakeDoc({{kTower, 0.18}}, 9)).ok());  // rolls up
  server_->ResetStats();
  // Tower threshold is now >= 0.08; an arrival at 0.02 falls below it (and
  // below no other list's threshold), so ITA must not even score it.
  ASSERT_TRUE(server_->Ingest(MakeDoc({{kTower, 0.02}}, 10)).ok());
  EXPECT_EQ(server_->stats().queries_probed, 0u);
  EXPECT_EQ(server_->stats().scores_computed, 0u);
}

TEST(ItaServerTest, ExpirationOfTopDocumentRefills) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(3)}};
  const auto id = server.RegisterQuery(MakeQuery(1, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.9}}, 0)).ok());  // doc 1 (top)
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}}, 1)).ok());  // doc 2
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.7}}, 2)).ok());  // doc 3

  ASSERT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{1}));

  // Doc 4 pushes doc 1 (the top-1) out of the window.
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.2}}, 3)).ok());
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{3}));

  // And again: doc 5 pushes doc 2 out (not in the top-1: no refill needed).
  const auto refills_before = server.stats().refills;
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.1}}, 4)).ok());
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{3}));
  EXPECT_EQ(server.stats().refills, refills_before);
}

TEST(ItaServerTest, FewerMatchersThanK) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(10)}};
  const auto id = server.RegisterQuery(MakeQuery(5, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.4}}, 0)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{2, 0.4}}, 1)).ok());  // not a matcher
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.6}}, 2)).ok());
  const auto result = server.Result(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Ids(*result), (std::vector<DocId>{3, 1}));
  // tau must be 0: every matching document is already in R.
  EXPECT_DOUBLE_EQ(*server.InfluenceThreshold(*id), 0.0);
}

TEST(ItaServerTest, EmptyWindowRegistration) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(10)}};
  const auto id = server.RegisterQuery(MakeQuery(3, {{1, 0.5}, {2, 0.5}}));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(server.Result(*id)->empty());
  EXPECT_DOUBLE_EQ(*server.InfluenceThreshold(*id), 0.0);
  // First matching arrival becomes the top-1 immediately.
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.3}}, 0)).ok());
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{1}));
}

TEST(ItaServerTest, UnregisterCleansThresholdTrees) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(10)}};
  const auto id = server.RegisterQuery(MakeQuery(1, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}}, 0)).ok());
  ASSERT_TRUE(server.UnregisterQuery(*id).ok());
  server.ResetStats();
  // Arrivals touching the term no longer probe anything.
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.9}}, 1)).ok());
  EXPECT_EQ(server.stats().queries_probed, 0u);
}

TEST(ItaServerTest, MidStreamRegistrationSeesOnlyWindowContents) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(2)}};
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.9}}, 0)).ok());  // doc 1
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}}, 1)).ok());  // doc 2
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.7}}, 2)).ok());  // doc 3; doc 1 expired
  const auto id = server.RegisterQuery(MakeQuery(2, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{3, 2}));
}

TEST(ItaServerTest, SharedTermsAcrossQueries) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(10)}};
  const auto q1 = server.RegisterQuery(MakeQuery(1, {{1, 1.0}}));
  const auto q2 = server.RegisterQuery(MakeQuery(1, {{1, 0.5}, {2, 0.5}}));
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.6}, {2, 0.8}}, 0)).ok());
  EXPECT_EQ(Ids(*server.Result(*q1)), (std::vector<DocId>{1}));
  EXPECT_EQ(Ids(*server.Result(*q2)), (std::vector<DocId>{1}));
  EXPECT_NEAR((*server.Result(*q2))[0].score, 0.5 * 0.6 + 0.5 * 0.8, 1e-12);
}

TEST(ItaServerTest, TieHeavyWeightsDrainCorrectly) {
  // Many identical weights force the boundary-tie drain logic.
  ItaServer server{ServerOptions{WindowSpec::CountBased(20)}};
  const auto id = server.RegisterQuery(MakeQuery(3, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}}, i)).ok());
  }
  const auto result = server.Result(*id);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  // Ties resolve newest-first: docs 10, 9, 8.
  EXPECT_EQ(Ids(*result), (std::vector<DocId>{10, 9, 8}));
}

TEST(ItaServerTest, RollupDisabledStillCorrect) {
  ItaTuning tuning;
  tuning.enable_rollup = false;
  ItaServer server{ServerOptions{WindowSpec::CountBased(5)}, tuning};
  const auto id = server.RegisterQuery(MakeQuery(2, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.1 * i}}, i)).ok());
  }
  EXPECT_EQ(server.stats().rollup_steps, 0u);
  // Window holds docs 4..8 with weights 0.4..0.8.
  const auto result = server.Result(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Ids(*result), (std::vector<DocId>{8, 7}));
}

TEST(ItaServerTest, MultiTermDocumentProcessedOncePerQuery) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(10)}};
  const auto id = server.RegisterQuery(MakeQuery(1, {{1, 0.6}, {2, 0.8}}));
  ASSERT_TRUE(id.ok());
  server.ResetStats();
  // Document above both local thresholds (both 0: empty lists) — must be
  // scored exactly once.
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}, {2, 0.5}}, 0)).ok());
  EXPECT_EQ(server.stats().queries_probed, 1u);
  EXPECT_EQ(server.stats().scores_computed, 1u);
}

TEST(ItaServerTest, WindowOfOne) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(1)}};
  const auto id = server.RegisterQuery(MakeQuery(1, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.1 * (i + 1)}}, i)).ok());
    const auto result = server.Result(*id);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 1u);
    EXPECT_EQ((*result)[0].doc, static_cast<DocId>(i + 1));
  }
}

}  // namespace
}  // namespace ita
