// Regression pin for the notification-order contract of core/notifier.h:
// after every ingest/advance epoch the result listener fires at most once
// per changed query, in ASCENDING QueryId order — on the sequential
// server (including sparse, out-of-order-registered ids via
// RegisterQueryWithId) and on the sharded engine, whose merge must stay
// deterministic however its shard tasks interleave.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../testing/builders.h"
#include "core/ita_server.h"
#include "exec/sharded_server.h"

namespace ita {
namespace {

using testing::MakeDoc;
using testing::MakeQuery;

TEST(NotificationOrderTest, SequentialFiresAscendingAcrossSparseIds) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(16)}};

  // Register ids deliberately out of ascending order; all match term 1,
  // so every epoch changes every query.
  const std::vector<QueryId> ids = {50, 3, 77, 12, 31};
  for (const QueryId id : ids) {
    ASSERT_TRUE(server.RegisterQueryWithId(id, MakeQuery(3, {{1, 1.0}})).ok());
  }

  std::vector<QueryId> fired;
  server.SetResultListener(
      [&fired](QueryId q, const std::vector<ResultEntry>&) {
        fired.push_back(q);
      });

  std::vector<QueryId> want = ids;
  std::sort(want.begin(), want.end());
  for (int epoch = 0; epoch < 4; ++epoch) {
    fired.clear();
    std::vector<Document> batch;
    batch.push_back(MakeDoc({{1, 1.0 + epoch}}, 100 * (epoch + 1)));
    batch.push_back(MakeDoc({{1, 2.0 + epoch}}, 100 * (epoch + 1) + 1));
    ASSERT_TRUE(server.IngestBatch(std::move(batch)).ok());
    // One callback per changed query, ascending — never registration
    // order, never per-document duplicates.
    ASSERT_EQ(fired, want) << "epoch " << epoch;
  }
}

TEST(NotificationOrderTest, SequentialPerEventPathAlsoAscends) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(8)}};
  ASSERT_TRUE(server.RegisterQueryWithId(9, MakeQuery(2, {{1, 1.0}})).ok());
  ASSERT_TRUE(server.RegisterQueryWithId(2, MakeQuery(2, {{1, 1.0}})).ok());

  std::vector<QueryId> fired;
  server.SetResultListener(
      [&fired](QueryId q, const std::vector<ResultEntry>&) {
        fired.push_back(q);
      });
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 5.0}}, 10)).ok());
  EXPECT_EQ(fired, (std::vector<QueryId>{2, 9}));
}

TEST(NotificationOrderTest, ShardedMergeFiresAscending) {
  // 4 shards, 2 worker threads: queries land on different shards
  // (id % shards) and their phase tasks interleave nondeterministically,
  // yet the merged flush must stay ascending and complete.
  exec::ShardedServerOptions options;
  options.window = WindowSpec::CountBased(16);
  options.shards = 4;
  options.threads = 2;
  exec::ShardedServer server{options};

  std::vector<QueryId> ids;
  for (int i = 0; i < 9; ++i) {
    const auto id = server.RegisterQuery(MakeQuery(3, {{1, 1.0}}));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  std::vector<QueryId> fired;
  server.SetResultListener(
      [&fired](QueryId q, const std::vector<ResultEntry>&) {
        fired.push_back(q);
      });

  std::vector<QueryId> want = ids;
  std::sort(want.begin(), want.end());
  for (int epoch = 0; epoch < 6; ++epoch) {
    fired.clear();
    std::vector<Document> batch;
    for (int d = 0; d < 3; ++d) {
      batch.push_back(
          MakeDoc({{1, 1.0 + epoch + d}}, 100 * (epoch + 1) + d));
    }
    ASSERT_TRUE(server.IngestBatch(std::move(batch)).ok());
    ASSERT_EQ(fired, want) << "epoch " << epoch;
  }
}

TEST(NotificationOrderTest, OnlyChangedQueriesFire) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(16)}};
  // Query 4 watches term 1, query 8 watches term 2.
  ASSERT_TRUE(server.RegisterQueryWithId(8, MakeQuery(2, {{2, 1.0}})).ok());
  ASSERT_TRUE(server.RegisterQueryWithId(4, MakeQuery(2, {{1, 1.0}})).ok());

  std::vector<QueryId> fired;
  server.SetResultListener(
      [&fired](QueryId q, const std::vector<ResultEntry>&) {
        fired.push_back(q);
      });

  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 1.0}}, 10)).ok());
  EXPECT_EQ(fired, (std::vector<QueryId>{4}));

  fired.clear();
  ASSERT_TRUE(server.Ingest(MakeDoc({{2, 1.0}}, 20)).ok());
  EXPECT_EQ(fired, (std::vector<QueryId>{8}));

  fired.clear();
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 2.0}, {2, 2.0}}, 30)).ok());
  EXPECT_EQ(fired, (std::vector<QueryId>{4, 8}));
}

}  // namespace
}  // namespace ita
