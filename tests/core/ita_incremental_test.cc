// Deep white-box scenarios for ITA's incremental machinery: the interplay
// of roll-up evictions and refill rediscovery, threshold trajectories over
// scripted streams, and correct accounting of the work counters — the
// counters the benchmark harness reports must be trustworthy.

#include <gtest/gtest.h>

#include "../testing/builders.h"
#include "core/ita_server.h"

namespace ita {
namespace {

using testing::Ids;
using testing::MakeDoc;
using testing::MakeQuery;

constexpr TermId kA = 1;

// The core incremental claim end to end: documents evicted from R by a
// roll-up are *rediscovered* by the downward refill once the top of the
// result expires — without ever rescanning the window.
TEST(ItaIncrementalTest, RollUpEvictionThenRefillRediscovery) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(4)}};
  const auto id = server.RegisterQuery(MakeQuery(1, {{kA, 1.0}}));
  ASSERT_TRUE(id.ok());

  // Window fills: d1(0.9), d2(0.5), d3(0.7).
  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.9}}, 1)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.5}}, 2)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.7}}, 3)).ok());
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{1}));

  // (d1's own arrival already rolled theta up to 0.9 — tau == S_k is
  // allowed — so d2/d3 were never even scored.)
  EXPECT_DOUBLE_EQ(*server.LocalThreshold(*id, kA), 0.9);

  // d4(0.95) takes the top; roll-up lifts theta to 0.95, evicting d1.
  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.95}}, 4)).ok());
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{4}));
  EXPECT_DOUBLE_EQ(*server.LocalThreshold(*id, kA), 0.95);
  EXPECT_GE(server.stats().rollup_evictions, 1u);
  EXPECT_EQ(server.Candidates(*id)->size(), 1u);  // R = {d4} only

  // Low-impact traffic below theta: ITA must not even probe the query.
  server.ResetStats();
  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.2}}, 5)).ok());  // d5; d1 expires
  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.3}}, 6)).ok());  // d6; d2 expires
  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.1}}, 7)).ok());  // d7; d3 expires
  EXPECT_EQ(server.stats().queries_probed, 0u);
  EXPECT_EQ(server.stats().scores_computed, 0u);
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{4}));

  // d8 pushes d4 (the top-1) out. The refill resumes *downward from
  // theta = 0.95* and rediscovers d6 (0.3) — the documents the roll-up
  // evicted earlier come back through list reads, not a window scan.
  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.05}}, 8)).ok());
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{6}));
  EXPECT_EQ(server.stats().refills, 1u);
  EXPECT_GT(server.stats().list_entries_read, 0u);
  // Thresholds descended to the verification boundary.
  EXPECT_DOUBLE_EQ(*server.LocalThreshold(*id, kA), 0.2);
  EXPECT_DOUBLE_EQ(*server.InfluenceThreshold(*id), 0.2);
  // R now holds the rediscovered candidates d6 and d5 — but not d8/d7
  // (below the final threshold).
  EXPECT_EQ(Ids(*server.Candidates(*id)), (std::vector<DocId>{6, 5}));
}

TEST(ItaIncrementalTest, ThresholdTrajectoryAcrossScript) {
  // theta starts at the initial-search stop, rolls up on strong arrivals,
  // descends on refills; tau == w_Q * theta throughout for a single-term
  // query.
  ItaServer server{ServerOptions{WindowSpec::CountBased(10)}};
  const auto id = server.RegisterQuery(MakeQuery(2, {{kA, 1.0}}));
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ(*server.InfluenceThreshold(*id), 0.0);  // empty window

  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.4}}, 1)).ok());
  // One matcher < k: theta must stay 0 (tau must stay 0 while R is
  // under-filled).
  EXPECT_DOUBLE_EQ(*server.LocalThreshold(*id, kA), 0.0);
  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.6}}, 2)).ok());
  // With k documents present, d2's arrival rolls theta up to the S_k
  // boundary (tau = 0.4 == S_k is permitted).
  EXPECT_DOUBLE_EQ(*server.LocalThreshold(*id, kA), 0.4);

  // A strong pair arrives: top-2 becomes {0.9, 0.8}; roll-up can lift
  // theta to 0.6 (tau = 0.6 <= Sk = 0.8) but no further (0.8 <= 0.8 ok —
  // boundary: lifting to 0.8 keeps tau <= Sk, so it lifts twice).
  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.9}}, 3)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.8}}, 4)).ok());
  const double theta = *server.LocalThreshold(*id, kA);
  EXPECT_DOUBLE_EQ(theta, 0.8);  // tau = 0.8 == Sk allowed (<=)
  EXPECT_DOUBLE_EQ(*server.InfluenceThreshold(*id), theta);
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{3, 4}));
}

TEST(ItaIncrementalTest, StatsLedgerExactForScriptedRun) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(2)}};
  const auto q1 = server.RegisterQuery(MakeQuery(1, {{1, 1.0}}));
  const auto q2 = server.RegisterQuery(MakeQuery(1, {{2, 1.0}}));
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  server.ResetStats();

  // d1 carries both terms: probes and scores exactly both queries; 2
  // postings inserted.
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}, {2, 0.6}}, 1)).ok());
  EXPECT_EQ(server.stats().documents_ingested, 1u);
  EXPECT_EQ(server.stats().index_entries_inserted, 2u);
  EXPECT_EQ(server.stats().queries_probed, 2u);
  EXPECT_EQ(server.stats().scores_computed, 2u);
  EXPECT_EQ(server.stats().result_insertions, 2u);

  // d2 carries only term 1: probes/scores exactly one query.
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.7}}, 2)).ok());
  EXPECT_EQ(server.stats().queries_probed, 3u);
  EXPECT_EQ(server.stats().scores_computed, 3u);

  // d3 (term 3 only): expires d1. d2's arrival had already rolled q1's
  // threshold above d1's weight and evicted it from R(q1), so only q2 is
  // probed by the expiry.
  ASSERT_TRUE(server.Ingest(MakeDoc({{3, 0.9}}, 3)).ok());
  EXPECT_EQ(server.stats().documents_expired, 1u);
  EXPECT_EQ(server.stats().index_entries_erased, 2u);
  EXPECT_EQ(server.stats().queries_probed, 4u);
  EXPECT_EQ(server.stats().result_removals, 2u);  // 1 roll-up + 1 expiry
  // q2 lost its only result; lists for term 2 are empty, so the refill
  // finds nothing and tau drops to 0.
  EXPECT_DOUBLE_EQ(*server.InfluenceThreshold(*q2), 0.0);
  EXPECT_TRUE(server.Result(*q2)->empty());
  EXPECT_EQ(Ids(*server.Result(*q1)), (std::vector<DocId>{2}));
}

TEST(ItaIncrementalTest, ReregistrationAfterChurnIsClean) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(5)}};
  for (int round = 0; round < 20; ++round) {
    const auto id = server.RegisterQuery(MakeQuery(2, {{kA, 1.0}}));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.1 * (round % 9 + 1)}}, round)).ok());
    ASSERT_TRUE(server.Result(*id).ok());
    ASSERT_TRUE(server.UnregisterQuery(*id).ok());
  }
  // No queries left: arrivals must not probe anything.
  server.ResetStats();
  ASSERT_TRUE(server.Ingest(MakeDoc({{kA, 0.5}}, 99)).ok());
  EXPECT_EQ(server.stats().queries_probed, 0u);
}

TEST(ItaIncrementalTest, IdenticalQueriesEvolveIdentically) {
  // Two registrations of the same query must stay in lock-step — threshold
  // trees keep per-query entries independent.
  ItaServer server{ServerOptions{WindowSpec::CountBased(4)}};
  const Query q = MakeQuery(2, {{1, 0.6}, {2, 0.8}});
  const auto a = server.RegisterQuery(q);
  const auto b = server.RegisterQuery(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Rng rng(12);
  for (int i = 0; i < 60; ++i) {
    Composition comp;
    if (rng.NextBool(0.6)) comp.push_back({1, rng.NextDouble()});
    if (rng.NextBool(0.6)) comp.push_back({2, rng.NextDouble()});
    if (comp.empty()) comp.push_back({3, 0.5});
    Document doc;
    doc.arrival_time = i;
    doc.composition = comp;
    ASSERT_TRUE(server.Ingest(std::move(doc)).ok());
    const auto ra = server.Result(*a);
    const auto rb = server.Result(*b);
    ASSERT_EQ(Ids(*ra), Ids(*rb)) << "event " << i;
    ASSERT_EQ(*server.InfluenceThreshold(*a), *server.InfluenceThreshold(*b));
  }
}

TEST(ItaIncrementalTest, CandidateSetStaysBoundedUnderRollup) {
  // With roll-up on, R should track the verification boundary rather than
  // accumulate the whole window.
  ItaServer with{ServerOptions{WindowSpec::CountBased(200)}};
  ItaTuning off_tuning;
  off_tuning.enable_rollup = false;
  ItaServer without{ServerOptions{WindowSpec::CountBased(200)}, off_tuning};

  const Query q = MakeQuery(3, {{kA, 1.0}});
  const auto wa = with.RegisterQuery(q);
  const auto wb = without.RegisterQuery(q);
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wb.ok());

  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const double weight = rng.NextDoublePositive();
    ASSERT_TRUE(with.Ingest(MakeDoc({{kA, weight}}, i)).ok());
    ASSERT_TRUE(without.Ingest(MakeDoc({{kA, weight}}, i)).ok());
    ASSERT_EQ(Ids(*with.Result(*wa)), Ids(*without.Result(*wb)));
  }
  const std::size_t with_candidates = with.Candidates(*wa)->size();
  const std::size_t without_candidates = without.Candidates(*wb)->size();
  // Without roll-up every matching document stays in R (the whole window
  // matches here); with roll-up the candidate set hugs the top.
  EXPECT_EQ(without_candidates, 200u);
  EXPECT_LT(with_candidates, 40u);
  EXPECT_GT(with.stats().rollup_steps, 0u);
}

}  // namespace
}  // namespace ita
