// Death tests for the CHECK-disabled public stream mutators of a
// shared-arena server (DESIGN.md §8): a ContinuousSearchServer
// constructed over ServerOptions::shared_arena never mutates the window —
// its epoch driver owns every pop/append — so Ingest, IngestBatch and
// AdvanceTime must abort rather than corrupt the driver's arena. The
// read side (queries, results, window inspection) must stay fully live.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../testing/builders.h"
#include "core/ita_server.h"
#include "core/naive_server.h"
#include "core/oracle_server.h"
#include "stream/document_arena.h"

namespace ita {
namespace {

ServerOptions SharedOptions(DocumentArena* arena) {
  ServerOptions options;
  options.window = WindowSpec::CountBased(8);
  options.shared_arena = arena;
  return options;
}

using testing::MakeDoc;
using testing::MakeQuery;

TEST(SharedArenaDeathTest, IngestAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DocumentArena arena;
  ItaServer server{SharedOptions(&arena)};
  EXPECT_DEATH(
      { (void)server.Ingest(MakeDoc({{1, 1.0}}, 10)); },
      "streamed by their epoch driver");
}

TEST(SharedArenaDeathTest, IngestBatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DocumentArena arena;
  ItaServer server{SharedOptions(&arena)};
  std::vector<Document> batch;
  batch.push_back(MakeDoc({{1, 1.0}}, 10));
  EXPECT_DEATH({ (void)server.IngestBatch(batch); },
               "streamed by their epoch driver");
}

TEST(SharedArenaDeathTest, AdvanceTimeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DocumentArena arena;
  ServerOptions options;
  options.window = WindowSpec::TimeBased(1'000);
  options.shared_arena = &arena;
  ItaServer server{options};
  EXPECT_DEATH({ (void)server.AdvanceTime(50); },
               "streamed by their epoch driver");
}

TEST(SharedArenaDeathTest, EveryStrategyAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DocumentArena arena;
  NaiveServer naive{SharedOptions(&arena)};
  OracleServer oracle{SharedOptions(&arena)};
  EXPECT_DEATH({ (void)naive.Ingest(MakeDoc({{1, 1.0}}, 10)); },
               "streamed by their epoch driver");
  EXPECT_DEATH({ (void)oracle.Ingest(MakeDoc({{1, 1.0}}, 10)); },
               "streamed by their epoch driver");
}

// The read-side API of a shared-arena server stays live: registration
// computes the initial result over whatever the driver has streamed.
TEST(SharedArenaDeathTest, ReadSideStaysLive) {
  DocumentArena arena;
  ItaServer server{SharedOptions(&arena)};

  const auto qid = server.RegisterQuery(MakeQuery(2, {{1, 1.0}}));
  ASSERT_TRUE(qid.ok());
  const auto result = server.Result(*qid);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(server.window_size(), 0u);
  EXPECT_TRUE(server.UnregisterQuery(*qid).ok());
}

}  // namespace
}  // namespace ita
