#include "core/naive_server.h"

#include <gtest/gtest.h>

#include "../testing/builders.h"

namespace ita {
namespace {

using testing::Ids;
using testing::MakeDoc;
using testing::MakeQuery;

TEST(NaiveServerTest, KMaxScalesWithFactor) {
  NaiveServer def{ServerOptions{WindowSpec::CountBased(10)}};
  EXPECT_EQ(def.KMaxFor(10), 20u);

  NaiveTuning plain;
  plain.kmax_factor = 1.0;
  NaiveServer one{ServerOptions{WindowSpec::CountBased(10)}, plain};
  EXPECT_EQ(one.KMaxFor(10), 10u);

  NaiveTuning half;
  half.kmax_factor = 0.5;  // never below k
  NaiveServer floor{ServerOptions{WindowSpec::CountBased(10)}, half};
  EXPECT_EQ(floor.KMaxFor(10), 10u);

  NaiveTuning frac;
  frac.kmax_factor = 1.5;
  NaiveServer f{ServerOptions{WindowSpec::CountBased(10)}, frac};
  EXPECT_EQ(f.KMaxFor(3), 5u);  // ceil(4.5)
}

TEST(NaiveServerTest, UnregisterBeforeFlushDropsPendingNotification) {
  // Registration over a non-empty window marks the query changed (the
  // initial refill); unregistering before the next event must drop that
  // pending mark instead of letting the flush resolve a dead query.
  NaiveServer server{ServerOptions{WindowSpec::CountBased(5)}};
  std::vector<QueryId> fired;
  server.SetResultListener([&fired](QueryId q, const std::vector<ResultEntry>&) {
    fired.push_back(q);
  });

  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.8}}, 0)).ok());
  const auto doomed = server.RegisterQuery(MakeQuery(1, {{1, 1.0}}));
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(server.UnregisterQuery(*doomed).ok());

  fired.clear();
  ASSERT_TRUE(server.Ingest(MakeDoc({{2, 0.5}}, 1)).ok());
  EXPECT_TRUE(fired.empty());
}

TEST(NaiveServerTest, EveryQueryScoredOnEveryArrival) {
  NaiveServer server{ServerOptions{WindowSpec::CountBased(10)}};
  ASSERT_TRUE(server.RegisterQuery(MakeQuery(1, {{1, 1.0}})).ok());
  ASSERT_TRUE(server.RegisterQuery(MakeQuery(1, {{2, 1.0}})).ok());
  ASSERT_TRUE(server.RegisterQuery(MakeQuery(1, {{3, 1.0}})).ok());
  server.ResetStats();
  // The document matches none of the queries — Naive pays anyway.
  ASSERT_TRUE(server.Ingest(MakeDoc({{99, 0.5}}, 0)).ok());
  EXPECT_EQ(server.stats().scores_computed, 3u);
}

TEST(NaiveServerTest, EveryQueryMembershipCheckedOnExpiry) {
  NaiveServer server{ServerOptions{WindowSpec::CountBased(1)}};
  ASSERT_TRUE(server.RegisterQuery(MakeQuery(1, {{1, 1.0}})).ok());
  ASSERT_TRUE(server.RegisterQuery(MakeQuery(1, {{2, 1.0}})).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{99, 0.5}}, 0)).ok());
  server.ResetStats();
  ASSERT_TRUE(server.Ingest(MakeDoc({{98, 0.5}}, 1)).ok());  // forces expiry
  EXPECT_EQ(server.stats().membership_checks, 2u);
}

TEST(NaiveServerTest, UnderflowTriggersFullRescan) {
  NaiveServer server{ServerOptions{WindowSpec::CountBased(6)}};
  const auto id = server.RegisterQuery(MakeQuery(2, {{1, 1.0}}));  // kmax=4
  ASSERT_TRUE(id.ok());
  // Six matchers; view = top-4 {0.6 0.5 0.4 0.3}, incomplete.
  for (const double w : {0.6, 0.5, 0.4, 0.3, 0.1, 0.2}) {
    ASSERT_TRUE(server.Ingest(MakeDoc({{1, w}}, 0)).ok());
  }
  EXPECT_EQ(server.stats().full_rescans, 0u);

  // Expire 0.6 and 0.5 (view members): view 4->3->2, still >= k.
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.15}}, 1)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.05}}, 2)).ok());
  EXPECT_EQ(server.stats().full_rescans, 0u);

  // Expire 0.4: view {0.3} underflows below k=2 -> rescan to top-kmax.
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.07}}, 3)).ok());
  EXPECT_EQ(server.stats().full_rescans, 1u);

  const auto result = server.Result(*id);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_DOUBLE_EQ((*result)[0].score, 0.3);
  EXPECT_DOUBLE_EQ((*result)[1].score, 0.2);
}

TEST(NaiveServerTest, CompleteViewRescansByDefault) {
  // Paper-faithful baseline: a query with fewer matchers than k rescans D
  // on every matching expiry, even though the scan cannot find anything.
  NaiveServer server{ServerOptions{WindowSpec::CountBased(4)}};
  const auto id = server.RegisterQuery(MakeQuery(3, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}}, 0)).ok());  // one matcher
  ASSERT_TRUE(server.Ingest(MakeDoc({{9, 0.1}}, 1)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{9, 0.1}}, 2)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{9, 0.1}}, 3)).ok());
  server.ResetStats();
  // The matcher expires; |view| = 0 < k triggers the (futile) rescan.
  ASSERT_TRUE(server.Ingest(MakeDoc({{9, 0.1}}, 4)).ok());
  EXPECT_EQ(server.stats().full_rescans, 1u);
  EXPECT_TRUE(server.Result(*id)->empty());
}

TEST(NaiveServerTest, CompleteViewSkipsRescansWhenTuned) {
  NaiveTuning tuning;
  tuning.skip_complete_rescans = true;
  NaiveServer server{ServerOptions{WindowSpec::CountBased(5)}, tuning};
  const auto id = server.RegisterQuery(MakeQuery(2, {{1, 1.0}}));  // kmax=4
  ASSERT_TRUE(id.ok());
  // Only 3 matchers exist — the view holds all of them (complete).
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}}, 0)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.7}}, 1)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.3}}, 2)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{9, 0.9}}, 3)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{9, 0.9}}, 4)).ok());
  server.ResetStats();
  // Expiring the matchers one by one never triggers a rescan: the view
  // provably holds every matcher.
  for (int i = 5; i < 10; ++i) {
    ASSERT_TRUE(server.Ingest(MakeDoc({{9, 0.1}}, i)).ok());
  }
  EXPECT_EQ(server.stats().full_rescans, 0u);
  EXPECT_TRUE(server.Result(*id)->empty());
}

TEST(NaiveServerTest, LowScoringArrivalAdmittedWhileComplete) {
  NaiveServer server{ServerOptions{WindowSpec::CountBased(10)}};
  const auto id = server.RegisterQuery(MakeQuery(2, {{1, 1.0}}));  // kmax=4
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.9}}, 0)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.8}}, 1)).ok());
  // Lower than both, but the view is complete -> must be admitted so that
  // later deletions expose it without a rescan.
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.1}}, 2)).ok());
  // Expire nothing yet; check via the k=2 result after the strong docs age
  // out of a smaller window — here simply verify it is tracked: take the
  // top-3 by registering k=3... instead verify by expiring in a new stream.
  const auto result = server.Result(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Ids(*result), (std::vector<DocId>{1, 2}));
}

TEST(NaiveServerTest, ArrivalDisplacesWorstWhenSaturated) {
  NaiveTuning tuning;
  tuning.kmax_factor = 1.0;  // kmax == k: plain Naive of Section II
  NaiveServer server{ServerOptions{WindowSpec::CountBased(10)}, tuning};
  const auto id = server.RegisterQuery(MakeQuery(2, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}}, 0)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.6}}, 1)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.7}}, 2)).ok());  // kicks 0.5
  const auto result = server.Result(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Ids(*result), (std::vector<DocId>{3, 2}));
}

TEST(NaiveServerTest, RegistrationScansExistingWindow) {
  NaiveServer server{ServerOptions{WindowSpec::CountBased(10)}};
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.4}}, 0)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.8}}, 1)).ok());
  server.ResetStats();
  const auto id = server.RegisterQuery(MakeQuery(1, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(server.stats().scores_computed, 2u);  // scanned both docs
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{2}));
}

TEST(NaiveServerTest, PlainNaiveMatchesEnhancedResults) {
  // kmax_factor 1.0 and 2.0 must produce identical *answers* (the factor
  // only changes maintenance cost).
  NaiveTuning plain;
  plain.kmax_factor = 1.0;
  NaiveServer a{ServerOptions{WindowSpec::CountBased(4)}, plain};
  NaiveServer b{ServerOptions{WindowSpec::CountBased(4)}};
  const auto qa = a.RegisterQuery(MakeQuery(2, {{1, 1.0}}));
  const auto qb = b.RegisterQuery(MakeQuery(2, {{1, 1.0}}));
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  const double weights[] = {0.5, 0.9, 0.2, 0.7, 0.4, 0.8, 0.1, 0.3, 0.6};
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(a.Ingest(MakeDoc({{1, weights[i]}}, i)).ok());
    ASSERT_TRUE(b.Ingest(MakeDoc({{1, weights[i]}}, i)).ok());
    EXPECT_EQ(Ids(*a.Result(*qa)), Ids(*b.Result(*qb))) << "event " << i;
  }
}

}  // namespace
}  // namespace ita
