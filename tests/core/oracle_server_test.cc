// Direct validation of OracleServer against hand-computed answers. The
// oracle is the ground truth for the equivalence property suites, so its
// own correctness rests on explicit, human-verifiable cases.

#include "core/oracle_server.h"

#include <gtest/gtest.h>

#include "../testing/builders.h"

namespace ita {
namespace {

using testing::Ids;
using testing::MakeDoc;
using testing::MakeQuery;

TEST(OracleServerTest, HandComputedScores) {
  OracleServer server{ServerOptions{WindowSpec::CountBased(10)}};
  // Q = {t1: 0.6, t2: 0.8}, k = 2.
  const auto id = server.RegisterQuery(MakeQuery(2, {{1, 0.6}, {2, 0.8}}));
  ASSERT_TRUE(id.ok());

  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}}, 0)).ok());           // S = 0.30
  ASSERT_TRUE(server.Ingest(MakeDoc({{2, 0.5}}, 1)).ok());           // S = 0.40
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.3}, {2, 0.2}}, 2)).ok()); // S = 0.34
  ASSERT_TRUE(server.Ingest(MakeDoc({{3, 0.9}}, 3)).ok());           // S = 0

  const auto result = server.Result(*id);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].doc, 2u);
  EXPECT_DOUBLE_EQ((*result)[0].score, 0.8 * 0.5);
  EXPECT_EQ((*result)[1].doc, 3u);
  EXPECT_DOUBLE_EQ((*result)[1].score, 0.6 * 0.3 + 0.8 * 0.2);
}

TEST(OracleServerTest, ZeroScoresNeverReported) {
  OracleServer server{ServerOptions{WindowSpec::CountBased(10)}};
  const auto id = server.RegisterQuery(MakeQuery(5, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{2, 0.9}}, 0)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{3, 0.9}}, 1)).ok());
  EXPECT_TRUE(server.Result(*id)->empty());
}

TEST(OracleServerTest, TiesRankNewestFirst) {
  OracleServer server{ServerOptions{WindowSpec::CountBased(10)}};
  const auto id = server.RegisterQuery(MakeQuery(2, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}}, 0)).ok());  // doc 1
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}}, 1)).ok());  // doc 2
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.5}}, 2)).ok());  // doc 3
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{3, 2}));
}

TEST(OracleServerTest, RecomputesOnEveryRead) {
  OracleServer server{ServerOptions{WindowSpec::CountBased(2)}};
  const auto id = server.RegisterQuery(MakeQuery(1, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.9}}, 0)).ok());
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{1}));
  // The strong document slides out; the oracle must not remember it.
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.2}}, 1)).ok());
  ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.3}}, 2)).ok());
  EXPECT_EQ(Ids(*server.Result(*id)), (std::vector<DocId>{3}));
}

TEST(OracleServerTest, KLargerThanMatchers) {
  OracleServer server{ServerOptions{WindowSpec::CountBased(10)}};
  const auto id = server.RegisterQuery(MakeQuery(100, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.Ingest(MakeDoc({{1, 0.1 * (i + 1)}}, i)).ok());
  }
  EXPECT_EQ(server.Result(*id)->size(), 5u);
}

}  // namespace
}  // namespace ita
