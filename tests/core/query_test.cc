#include "core/query.h"

#include <gtest/gtest.h>

#include "../testing/builders.h"

namespace ita {
namespace {

using testing::MakeDoc;
using testing::MakeQuery;

TEST(ValidateQueryTest, AcceptsWellFormed) {
  EXPECT_TRUE(ValidateQuery(MakeQuery(5, {{1, 0.3}, {4, 0.7}})).ok());
}

TEST(ValidateQueryTest, RejectsBadK) {
  EXPECT_TRUE(ValidateQuery(MakeQuery(0, {{1, 0.3}})).IsInvalidArgument());
  EXPECT_FALSE(ValidateQuery(MakeQuery(-1, {{1, 0.3}})).ok());
}

TEST(ValidateQueryTest, RejectsEmptyTerms) {
  EXPECT_FALSE(ValidateQuery(MakeQuery(3, {})).ok());
}

TEST(ValidateQueryTest, RejectsNonPositiveWeights) {
  EXPECT_FALSE(ValidateQuery(MakeQuery(3, {{1, 0.0}})).ok());
  EXPECT_FALSE(ValidateQuery(MakeQuery(3, {{1, -0.5}})).ok());
}

TEST(ValidateQueryTest, RejectsDuplicateTerms) {
  Query q;
  q.k = 3;
  q.terms = {{1, 0.5}, {1, 0.5}};
  EXPECT_FALSE(ValidateQuery(q).ok());
}

TEST(ValidateQueryTest, RejectsUnsortedTerms) {
  Query q;
  q.k = 3;
  q.terms = {{5, 0.5}, {1, 0.5}};
  EXPECT_FALSE(ValidateQuery(q).ok());
}

TEST(ScoreDocumentTest, SumsSharedTermProducts) {
  const Document doc = MakeDoc({{1, 0.5}, {3, 0.2}, {8, 0.1}});
  const Query q = MakeQuery(1, {{1, 0.4}, {8, 0.6}});
  EXPECT_DOUBLE_EQ(ScoreDocument(doc.composition, q.terms),
                   0.4 * 0.5 + 0.6 * 0.1);
}

TEST(ScoreDocumentTest, DisjointIsZero) {
  const Document doc = MakeDoc({{1, 0.5}});
  const Query q = MakeQuery(1, {{2, 1.0}});
  EXPECT_EQ(ScoreDocument(doc.composition, q.terms), 0.0);
}

TEST(ScoreDocumentTest, EmptyComposition) {
  const Query q = MakeQuery(1, {{2, 1.0}});
  EXPECT_EQ(ScoreDocument({}, q.terms), 0.0);
}

TEST(ScoreDocumentTest, QuerySupersetOfDocument) {
  const Document doc = MakeDoc({{5, 0.3}});
  const Query q = MakeQuery(1, {{1, 0.1}, {5, 0.2}, {9, 0.7}});
  EXPECT_DOUBLE_EQ(ScoreDocument(doc.composition, q.terms), 0.2 * 0.3);
}

TEST(ScoreDocumentTest, ManyTermsMergeCorrectly) {
  Composition comp;
  std::vector<TermWeight> qterms;
  double expected = 0.0;
  for (TermId t = 0; t < 100; ++t) {
    comp.push_back({t, 0.01 * (t + 1)});
    if (t % 3 == 0) {
      qterms.push_back({t, 0.02 * (t + 1)});
      expected += 0.01 * (t + 1) * 0.02 * (t + 1);
    }
  }
  EXPECT_NEAR(ScoreDocument(comp, qterms), expected, 1e-12);
}

TEST(CompositionWeightTest, FindsExactTerm) {
  const Document doc = MakeDoc({{2, 0.4}, {7, 0.6}});
  EXPECT_DOUBLE_EQ(CompositionWeight(doc.composition, 2), 0.4);
  EXPECT_DOUBLE_EQ(CompositionWeight(doc.composition, 7), 0.6);
  EXPECT_EQ(CompositionWeight(doc.composition, 5), 0.0);
  EXPECT_EQ(CompositionWeight({}, 5), 0.0);
}

}  // namespace
}  // namespace ita
