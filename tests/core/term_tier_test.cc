// Frequency-adaptive term tiering (DESIGN.md §12): the TierPolicy EMA
// with its hysteresis band, the epoch-boundary migration budget, and the
// representation swap itself — hot terms carry denser block-max metadata
// and the wide threshold-tree probe, and both representations answer
// identically (probes, bounds, prefix counts), which is what lets the
// equivalence suites run unmodified with tiering on.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/term_catalog.h"
#include "core/threshold_tree.h"
#include "index/inverted_list.h"

namespace ita {
namespace {

TierPolicy TightPolicy() {
  TierPolicy policy;
  policy.promote_ema = 100.0;
  policy.demote_ema = 25.0;
  policy.alpha = 0.5;
  policy.max_migrations_per_epoch = 8;
  policy.hot_block_bits = 4;
  return policy;
}

/// One epoch: record `work` for the term, migrate at the boundary.
TermCatalog::TierMigrations Epoch(TermCatalog& catalog, TermId term,
                                  std::size_t work) {
  catalog.NoteTermWork(term, work);
  return catalog.ApplyTierMigrations();
}

TEST(TermTierTest, PromotionRequiresSustainedWork) {
  TermCatalog catalog;
  catalog.SetTierPolicy(TightPolicy());
  catalog.Ensure(7);

  // One 150-work epoch: EMA = 0.5 * 150 = 75 < 100 — no promotion; a
  // single spike must not migrate the term.
  auto done = Epoch(catalog, 7, 150);
  EXPECT_EQ(done.promotions, 0u);
  EXPECT_FALSE(catalog.Find(7)->hot_tier);

  // A second identical epoch lifts the EMA to 112.5 — promoted.
  done = Epoch(catalog, 7, 150);
  EXPECT_EQ(done.promotions, 1u);
  EXPECT_TRUE(catalog.Find(7)->hot_tier);
  EXPECT_EQ(catalog.hot_tier_terms(), 1u);
  EXPECT_EQ(catalog.Find(7)->list.block_bits(), TightPolicy().hot_block_bits);
  EXPECT_TRUE(catalog.Find(7)->tree.wide_probe());
  EXPECT_TRUE(catalog.ValidateTiers());
}

TEST(TermTierTest, HysteresisBandHoldsTheTier) {
  TermCatalog catalog;
  catalog.SetTierPolicy(TightPolicy());
  catalog.Ensure(3);
  Epoch(catalog, 3, 400);  // EMA 200 — straight past promote_ema
  ASSERT_TRUE(catalog.Find(3)->hot_tier);

  // Work inside the band (EMA decays 200 -> 100 -> 50 -> ... but stays
  // above demote_ema = 25): the term must stay hot — no thrash.
  auto done = Epoch(catalog, 3, 0);  // EMA 100
  EXPECT_EQ(done.demotions, 0u);
  done = Epoch(catalog, 3, 0);  // EMA 50
  EXPECT_EQ(done.demotions, 0u);
  EXPECT_TRUE(catalog.Find(3)->hot_tier);

  // Two more idle epochs sink the EMA to 12.5 <= 25 — demoted, cold
  // representation restored exactly.
  Epoch(catalog, 3, 0);          // EMA 25 — boundary: <= demotes
  const TermState& ts = *catalog.Find(3);
  EXPECT_FALSE(ts.hot_tier);
  EXPECT_EQ(catalog.hot_tier_terms(), 0u);
  EXPECT_EQ(ts.list.block_bits(), InvertedList::kBlockBits);
  EXPECT_FALSE(ts.tree.wide_probe());
  EXPECT_TRUE(catalog.ValidateTiers());
}

TEST(TermTierTest, BoundaryValuesPromoteAndDemoteInclusively) {
  TermCatalog catalog;
  TierPolicy policy = TightPolicy();
  policy.alpha = 1.0;  // EMA == the epoch's work, exact boundary control
  catalog.SetTierPolicy(policy);
  catalog.Ensure(1);

  // EMA exactly promote_ema promotes (>= threshold).
  auto done = Epoch(catalog, 1, 100);
  EXPECT_EQ(done.promotions, 1u);
  // EMA just above demote_ema stays hot; exactly demote_ema demotes.
  done = Epoch(catalog, 1, 26);
  EXPECT_EQ(done.demotions, 0u);
  done = Epoch(catalog, 1, 25);
  EXPECT_EQ(done.demotions, 1u);
  EXPECT_FALSE(catalog.Find(1)->hot_tier);
}

TEST(TermTierTest, MigrationBudgetBoundsOneEpoch) {
  TermCatalog catalog;
  TierPolicy policy = TightPolicy();
  policy.alpha = 1.0;
  policy.max_migrations_per_epoch = 2;
  catalog.SetTierPolicy(policy);

  for (TermId t = 0; t < 5; ++t) {
    catalog.Ensure(t);
    catalog.NoteTermWork(t, 500);
  }
  // Five terms over the threshold, budget 2: exactly two promote now…
  auto done = catalog.ApplyTierMigrations();
  EXPECT_EQ(done.promotions, 2u);
  EXPECT_EQ(catalog.hot_tier_terms(), 2u);
  // …and the rest follow in later epochs as their (already-high) EMAs
  // are touched again.
  for (TermId t = 0; t < 5; ++t) catalog.NoteTermWork(t, 500);
  done = catalog.ApplyTierMigrations();
  EXPECT_EQ(done.promotions, 2u);
  for (TermId t = 0; t < 5; ++t) catalog.NoteTermWork(t, 500);
  done = catalog.ApplyTierMigrations();
  EXPECT_EQ(done.promotions, 1u);
  EXPECT_EQ(catalog.hot_tier_terms(), 5u);
  EXPECT_TRUE(catalog.ValidateTiers());
}

TEST(TermTierTest, DisabledPolicyNeverMigrates) {
  TermCatalog catalog;
  TierPolicy policy = TightPolicy();
  policy.enabled = false;
  catalog.SetTierPolicy(policy);
  catalog.Ensure(9);
  for (int i = 0; i < 10; ++i) {
    const auto done = Epoch(catalog, 9, 10'000);
    EXPECT_EQ(done.promotions + done.demotions, 0u);
  }
  EXPECT_FALSE(catalog.Find(9)->hot_tier);
  EXPECT_EQ(catalog.hot_tier_terms(), 0u);
}

TEST(TermTierTest, HotListAnswersIdenticallyToCold) {
  // The representation swap is metadata-only: bounds and block maxima
  // must agree between granularities, across inserts and erases that
  // straddle the migration.
  InvertedList cold;
  InvertedList hot;
  for (DocId d = 1; d <= 200; ++d) {
    const double w = 1.0 / static_cast<double>(d);
    cold.Insert(d, w);
    hot.Insert(d, w);
  }
  hot.SetBlockBits(4);
  ASSERT_TRUE(cold.ValidateBlockMax());
  ASSERT_TRUE(hot.ValidateBlockMax());
  for (DocId d = 50; d < 60; ++d) {
    const double w = 1.0 / static_cast<double>(d);
    ASSERT_TRUE(cold.Erase(d, w));
    ASSERT_TRUE(hot.Erase(d, w));
  }
  cold.Insert(500, 0.31);
  hot.Insert(500, 0.31);
  ASSERT_TRUE(cold.ValidateBlockMax());
  ASSERT_TRUE(hot.ValidateBlockMax());
  ASSERT_EQ(cold.size(), hot.size());
  for (double bound : {0.9, 0.31, 0.1, 0.013, 0.0}) {
    EXPECT_EQ(cold.FirstBelow(bound) - cold.begin(),
              hot.FirstBelow(bound) - hot.begin())
        << "bound " << bound;
    EXPECT_EQ(cold.FirstAtOrBelow(bound) - cold.begin(),
              hot.FirstAtOrBelow(bound) - hot.begin())
        << "bound " << bound;
  }
  // Migrating back restores the cold metadata exactly.
  hot.SetBlockBits(InvertedList::kBlockBits);
  ASSERT_TRUE(hot.ValidateBlockMax());
  EXPECT_EQ(cold.FirstBelow(0.1) - cold.begin(),
            hot.FirstBelow(0.1) - hot.begin());
}

TEST(TermTierTest, WideProbeCountsMatchTheLinearScan) {
  // ProbeLessEqual must report the same prefix length (and visit the
  // same queries) through the galloping wide layout as through the
  // kernel scan — probe-step counters stay bit-identical across tiers.
  FlatThresholdTree linear;
  FlatThresholdTree wide;
  wide.SetWideProbe(true);
  for (QueryId q = 1; q <= 64; ++q) {
    const double theta = static_cast<double>(q % 17) * 0.125;
    linear.Insert(theta, q);
    wide.Insert(theta, q);
  }
  for (double w : {-1.0, 0.0, 0.124, 0.125, 1.0, 1.999, 2.0, 100.0}) {
    std::vector<QueryId> a;
    std::vector<QueryId> b;
    const std::size_t na =
        linear.ProbeLessEqual(w, [&a](QueryId q) { a.push_back(q); });
    const std::size_t nb =
        wide.ProbeLessEqual(w, [&b](QueryId q) { b.push_back(q); });
    EXPECT_EQ(na, nb) << "w=" << w;
    EXPECT_EQ(a, b) << "w=" << w;
  }
}

}  // namespace
}  // namespace ita
