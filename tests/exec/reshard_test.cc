// Live resharding S→S′ at the epoch barrier (DESIGN.md §14): results
// before and after a mid-stream Reshard are bit-identical to a
// sequential server over the same stream, placement bookkeeping rebuilds
// at the new width, telemetry (tracing lanes, hot-term sketches)
// re-arms, the reshard counters account every remap, and the
// shard-lifecycle edges (zero width, unchanged width, dead-id
// unregister) behave as documented.

#include "exec/sharded_server.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "../testing/builders.h"
#include "core/ita_server.h"
#include "obs/phase_recorder.h"

namespace ita::exec {
namespace {

ShardedServerOptions SmallOptions(std::size_t shards) {
  ShardedServerOptions options;
  options.window = WindowSpec::CountBased(48);
  options.shards = shards;
  options.threads = 2;
  options.rebalance.mode = RebalanceMode::kOff;
  return options;
}

/// Registers `n` queries mixing stream terms (3, 7, 11) so every epoch
/// perturbs several top-k sets.
void RegisterMixedPopulation(ShardedServer& server, int n) {
  for (int i = 0; i < n; ++i) {
    const TermId extra = static_cast<TermId>(3 + 4 * (i % 3));  // 3, 7, 11
    ASSERT_TRUE(
        server.RegisterQuery(testing::MakeQuery(3, {{extra, 1.0}, {5, 0.4}}))
            .ok());
  }
}

std::vector<Document> Epoch(Timestamp t0, int salt) {
  std::vector<Document> batch;
  for (int i = 0; i < 6; ++i) {
    const double w = 0.15 + 0.05 * static_cast<double>((salt + i) % 11);
    batch.push_back(testing::MakeDoc({{3, w}, {7, 1.0 - w}, {11, 0.3 + w}},
                                     t0 + static_cast<Timestamp>(i) * 10));
  }
  return batch;
}

void ExpectResultsMatchSequential(ShardedServer& server, ItaServer& reference,
                                  int queries) {
  for (QueryId id = 1; id <= static_cast<QueryId>(queries); ++id) {
    const auto got = server.Result(id);
    const auto want = reference.Result(id);
    ASSERT_TRUE(got.ok() && want.ok()) << "query " << id;
    ASSERT_EQ(got->size(), want->size()) << "query " << id;
    for (std::size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].doc, (*want)[i].doc) << "query " << id;
      EXPECT_DOUBLE_EQ((*got)[i].score, (*want)[i].score) << "query " << id;
    }
  }
}

TEST(ReshardTest, ZeroShardsIsInvalidArgument) {
  ShardedServer server(SmallOptions(2));
  const Status status = server.Reshard(0);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_EQ(server.shard_count(), 2u);  // untouched
}

TEST(ReshardTest, UnchangedWidthIsANoOp) {
  ShardedServer server(SmallOptions(3));
  RegisterMixedPopulation(server, 5);
  ASSERT_TRUE(server.IngestBatch(Epoch(0, 0)).ok());
  const auto before = server.Result(1);
  ASSERT_TRUE(server.Reshard(3).ok());
  EXPECT_EQ(server.shard_count(), 3u);
  EXPECT_EQ(server.reshard_stats().reshards, 0u);
  EXPECT_EQ(server.reshard_stats().queries_remapped, 0u);
  const auto after = server.Result(1);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_TRUE(*before == *after);
}

TEST(ReshardTest, GrowAndShrinkStayExactMidStream) {
  // 2 → 5 → 1 across a continuous stream; the sequential reference never
  // reshards, and every epoch's results must match it bit for bit.
  ShardedServer server(SmallOptions(2));
  ItaServer reference({.window = WindowSpec::CountBased(48)});
  constexpr int kQueries = 9;
  RegisterMixedPopulation(server, kQueries);
  for (int i = 0; i < kQueries; ++i) {
    const TermId extra = static_cast<TermId>(3 + 4 * (i % 3));
    ASSERT_TRUE(
        reference.RegisterQuery(testing::MakeQuery(3, {{extra, 1.0}, {5, 0.4}}))
            .ok());
  }

  const std::size_t widths[] = {5, 1};
  std::size_t next_width = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    const Timestamp t0 = static_cast<Timestamp>(epoch) * 1'000;
    ASSERT_TRUE(server.IngestBatch(Epoch(t0, epoch)).ok());
    ASSERT_TRUE(reference.IngestBatch(Epoch(t0, epoch)).ok());
    ExpectResultsMatchSequential(server, reference, kQueries);
    if (epoch == 3 || epoch == 7) {
      ASSERT_TRUE(server.Reshard(widths[next_width]).ok());
      EXPECT_EQ(server.shard_count(), widths[next_width]);
      ++next_width;
      // The remap itself must not move any result.
      ExpectResultsMatchSequential(server, reference, kQueries);
      EXPECT_TRUE(server.ValidatePruningMetadata().ok());
    }
  }
  EXPECT_EQ(server.reshard_stats().reshards, 2u);
  EXPECT_EQ(server.reshard_stats().queries_remapped,
            2u * static_cast<std::uint64_t>(kQueries));
  EXPECT_GT(server.reshard_stats().last_pause_nanos, 0u);
  EXPECT_GE(server.reshard_stats().total_pause_nanos,
            server.reshard_stats().last_pause_nanos);
}

TEST(ReshardTest, PlacementRebuildsAtTheNewWidth) {
  ShardedServer server(SmallOptions(4));
  constexpr int kQueries = 11;
  RegisterMixedPopulation(server, kQueries);
  ASSERT_TRUE(server.IngestBatch(Epoch(0, 1)).ok());

  ASSERT_TRUE(server.Reshard(3).ok());
  EXPECT_EQ(server.placement_size(), static_cast<std::size_t>(kQueries));
  std::size_t total = 0;
  for (QueryId id = 1; id <= static_cast<QueryId>(kQueries); ++id) {
    EXPECT_EQ(server.ShardOf(id), id % 3) << "query " << id;
  }
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    total += server.shard_query_count(s);
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kQueries));
  EXPECT_EQ(server.stats().registered_queries,
            static_cast<std::uint64_t>(kQueries));
  // Rebalancer load state restarted; lifetime reshard counters advanced.
  for (const double ema : server.load_ema()) EXPECT_EQ(ema, 0.0);
  EXPECT_EQ(server.last_epoch_migrations(), 0u);
}

TEST(ReshardTest, NotificationsResumeWithoutASpuriousFlush) {
  ShardedServer server(SmallOptions(2));
  RegisterMixedPopulation(server, 6);
  std::size_t deliveries = 0;
  server.SetResultListener(
      [&deliveries](QueryId, const std::vector<ResultEntry>&) {
        ++deliveries;
      });
  ASSERT_TRUE(server.IngestBatch(Epoch(0, 2)).ok());
  const std::size_t before = deliveries;
  ASSERT_GT(before, 0u);

  // The remap re-registers every query (which recomputes identical
  // results) — no listener call may escape the barrier.
  ASSERT_TRUE(server.Reshard(5).ok());
  EXPECT_EQ(deliveries, before);

  // The next epoch notifies normally at the new width.
  ASSERT_TRUE(server.IngestBatch(Epoch(1'000, 3)).ok());
  EXPECT_GT(deliveries, before);
}

TEST(ReshardTest, TracingAndHotTermsReArmAtTheNewWidth) {
  ShardedServer server(SmallOptions(2));
  RegisterMixedPopulation(server, 6);
  server.EnableTracing(/*capacity=*/32);
  server.EnableHotTermTracking(/*capacity=*/16);
  ASSERT_TRUE(server.IngestBatch(Epoch(0, 4)).ok());

  ASSERT_TRUE(server.Reshard(4).ok());
#if ITA_OBS_ENABLED
  ASSERT_NE(server.trace(), nullptr);
  EXPECT_EQ(server.trace()->shards(), 4u);
  // The reshard itself is one synthetic trace row on lane 0.
  EXPECT_EQ(server.trace()->epochs(), 1u);
  EXPECT_GT(server.trace()->cumulative_phase_nanos(0, obs::Phase::kReshard),
            0u);
#endif

  // Post-reshard epochs land in the recreated trace and the re-armed
  // sketches.
  ASSERT_TRUE(server.IngestBatch(Epoch(1'000, 5)).ok());
#if ITA_OBS_ENABLED
  EXPECT_EQ(server.trace()->epochs(), 2u);
  EXPECT_FALSE(server.AggregateHotTerms().TopK().empty());
#endif
  EXPECT_EQ(server.shard_count(), 4u);
}

TEST(ReshardTest, UnregisterDropsPlacementEvenOnNotFound) {
  ShardedServer server(SmallOptions(2));
  RegisterMixedPopulation(server, 4);
  EXPECT_EQ(server.placement_size(), 4u);

  ASSERT_TRUE(server.UnregisterQuery(2).ok());
  EXPECT_EQ(server.placement_size(), 3u);
  // Double unregister: NotFound, and the map must not regain or retain
  // an entry for the dead id.
  EXPECT_TRUE(server.UnregisterQuery(2).IsNotFound());
  EXPECT_EQ(server.placement_size(), 3u);
  // Unknown id: NotFound, placement untouched.
  EXPECT_TRUE(server.UnregisterQuery(999).IsNotFound());
  EXPECT_EQ(server.placement_size(), 3u);

  // A reshard right after churn extracts exactly the live population.
  ASSERT_TRUE(server.IngestBatch(Epoch(0, 6)).ok());
  ASSERT_TRUE(server.Reshard(3).ok());
  EXPECT_EQ(server.placement_size(), 3u);
  EXPECT_EQ(server.reshard_stats().queries_remapped, 3u);
  EXPECT_EQ(server.query_count(), 3u);
}

TEST(ReshardTest, ResetStatsClearsReshardCounters) {
  ShardedServer server(SmallOptions(2));
  RegisterMixedPopulation(server, 4);
  ASSERT_TRUE(server.IngestBatch(Epoch(0, 7)).ok());
  ASSERT_TRUE(server.Reshard(3).ok());
  ASSERT_EQ(server.reshard_stats().reshards, 1u);
  server.ResetStats();
  EXPECT_EQ(server.reshard_stats().reshards, 0u);
  EXPECT_EQ(server.reshard_stats().queries_remapped, 0u);
  EXPECT_EQ(server.reshard_stats().total_pause_nanos, 0u);
}

}  // namespace
}  // namespace ita::exec
