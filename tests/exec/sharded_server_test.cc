// ShardedServer unit tests: query routing and lifecycle, epoch semantics
// (ids, window, transients, atomic rejection), the deterministic
// notification merge, stats aggregation, and strategy-agnostic shard
// factories. The cross-checking of sharded results against sequential
// servers over randomized streams lives in
// tests/property/sharded_equivalence_property_test.cc.

#include "exec/sharded_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../testing/builders.h"
#include "core/naive_server.h"
#include "core/oracle_server.h"

namespace ita::exec {
namespace {

ShardedServerOptions SmallOptions(std::size_t shards,
                                  std::size_t window = 10) {
  ShardedServerOptions options;
  options.window = WindowSpec::CountBased(window);
  options.shards = shards;
  options.threads = 2;
  return options;
}

TEST(ShardedServerTest, RegistersAndRoutesQueriesAcrossShards) {
  ShardedServer server(SmallOptions(3));
  EXPECT_EQ(server.shard_count(), 3u);

  std::vector<QueryId> ids;
  for (int i = 0; i < 9; ++i) {
    const auto id = server.RegisterQuery(
        testing::MakeQuery(2, {{static_cast<TermId>(i), 1.0}}));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_EQ(server.query_count(), 9u);

  // Ids are assigned globally and sequentially, partitioned id -> id % S.
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_EQ(ids[i], ids[0] + i);
  for (const QueryId id : ids) {
    EXPECT_EQ(server.ShardOf(id), id % server.shard_count());
    const auto result = server.Result(id);
    EXPECT_TRUE(result.ok());
  }

  // Every shard received its slice (9 queries over 3 shards, round-robin
  // over sequential ids = 3 each).
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    EXPECT_EQ(server.shard_stats(s).documents_ingested, 0u);
  }
}

TEST(ShardedServerTest, UnregisterRoutesToOwningShard) {
  ShardedServer server(SmallOptions(4));
  const auto id = server.RegisterQuery(testing::MakeQuery(1, {{1, 1.0}}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(server.query_count(), 1u);

  EXPECT_TRUE(server.UnregisterQuery(*id).ok());
  EXPECT_EQ(server.query_count(), 0u);
  EXPECT_TRUE(server.UnregisterQuery(*id).IsNotFound());
  EXPECT_TRUE(server.Result(*id).status().IsNotFound());
}

TEST(ShardedServerTest, IngestBroadcastsToEveryShard) {
  ShardedServer server(SmallOptions(3, /*window=*/4));

  const auto d1 = server.Ingest(testing::MakeDoc({{1, 0.5}}, 100));
  const auto d2 = server.Ingest(testing::MakeDoc({{2, 0.7}}, 200));
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(*d1, 1u);
  EXPECT_EQ(*d2, 2u);
  EXPECT_EQ(server.window_size(), 2u);
  EXPECT_EQ(server.last_arrival_time(), 200);

  // Every shard saw the whole stream.
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    EXPECT_EQ(server.shard_stats(s).documents_ingested, 2u);
  }
  // The aggregate reports the stream once, not once per shard.
  EXPECT_EQ(server.stats().documents_ingested, 2u);
}

TEST(ShardedServerTest, EpochMatchesSequentialIdsAndWindow) {
  ShardedServer server(SmallOptions(2, /*window=*/3));

  // A batch larger than the window: the two oldest batch documents are
  // transient, ids must still be dense and sequential.
  std::vector<Document> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(testing::MakeDoc({{static_cast<TermId>(i), 0.9}},
                                     100 * (i + 1)));
  }
  const auto ids = server.IngestBatch(std::move(batch));
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<DocId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(server.window_size(), 3u);
  EXPECT_EQ(server.stats().documents_ingested, 5u);
  EXPECT_EQ(server.stats().documents_expired, 2u);
  EXPECT_EQ(server.stats().batches_ingested, 1u);
  EXPECT_EQ(server.epochs_processed(), 1u);
}

TEST(ShardedServerTest, EmptyBatchIsANoOp) {
  ShardedServer server(SmallOptions(2));
  const auto ids = server.IngestBatch(std::vector<Document>{});
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(ids->empty());
  EXPECT_EQ(server.epochs_processed(), 0u);
}

TEST(ShardedServerTest, NonMonotoneBatchRejectedAtomically) {
  ShardedServer server(SmallOptions(3));
  std::vector<Document> batch;
  batch.push_back(testing::MakeDoc({{1, 0.5}}, 200));
  batch.push_back(testing::MakeDoc({{2, 0.5}}, 100));
  const auto ids = server.IngestBatch(std::move(batch));
  ASSERT_FALSE(ids.ok());
  EXPECT_TRUE(ids.status().IsInvalidArgument());
  // No shard mutated: the plan failed before any phase ran.
  EXPECT_EQ(server.window_size(), 0u);
  EXPECT_EQ(server.stats().documents_ingested, 0u);
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    EXPECT_EQ(server.shard_stats(s).documents_ingested, 0u);
  }
}

TEST(ShardedServerTest, QueriesSeeExactTopKAcrossShards) {
  ShardedServer server(SmallOptions(4, /*window=*/10));

  // Two queries landing on different shards, same term space.
  const auto q1 = server.RegisterQuery(testing::MakeQuery(2, {{7, 1.0}}));
  const auto q2 = server.RegisterQuery(testing::MakeQuery(1, {{7, 0.5}}));
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_NE(server.ShardOf(*q1), server.ShardOf(*q2));

  ASSERT_TRUE(server.Ingest(testing::MakeDoc({{7, 0.3}}, 100)).ok());
  ASSERT_TRUE(server.Ingest(testing::MakeDoc({{7, 0.9}}, 200)).ok());
  ASSERT_TRUE(server.Ingest(testing::MakeDoc({{5, 0.9}}, 300)).ok());

  const auto r1 = server.Result(*q1);
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1->size(), 2u);
  EXPECT_EQ((*r1)[0].doc, 2u);
  EXPECT_DOUBLE_EQ((*r1)[0].score, 0.9);
  EXPECT_EQ((*r1)[1].doc, 1u);

  const auto r2 = server.Result(*q2);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->size(), 1u);
  EXPECT_EQ((*r2)[0].doc, 2u);
  EXPECT_DOUBLE_EQ((*r2)[0].score, 0.45);
}

TEST(ShardedServerTest, ListenerMergeIsDeterministicAndOncePerEpoch) {
  ShardedServer server(SmallOptions(3, /*window=*/20));

  std::vector<QueryId> queries;
  for (int t = 0; t < 6; ++t) {
    const auto id = server.RegisterQuery(
        testing::MakeQuery(3, {{static_cast<TermId>(t % 2), 1.0}}));
    ASSERT_TRUE(id.ok());
    queries.push_back(*id);
  }

  std::vector<QueryId> fired;
  server.SetResultListener(
      [&fired](QueryId q, const std::vector<ResultEntry>& result) {
        fired.push_back(q);
        EXPECT_FALSE(result.empty());
      });

  // One epoch touching both terms: every query's top-k changes, and the
  // merged flush must fire once per query, ascending — regardless of how
  // the three shards' tasks interleaved.
  std::vector<Document> batch;
  batch.push_back(testing::MakeDoc({{0, 0.8}}, 100));
  batch.push_back(testing::MakeDoc({{1, 0.6}}, 200));
  ASSERT_TRUE(server.IngestBatch(std::move(batch)).ok());

  ASSERT_EQ(fired.size(), queries.size());
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LT(fired[i - 1], fired[i]);
  }

  // An epoch touching nothing the queries monitor fires nothing.
  fired.clear();
  ASSERT_TRUE(server.Ingest(testing::MakeDoc({{40, 0.9}}, 300)).ok());
  EXPECT_TRUE(fired.empty());
}

TEST(ShardedServerTest, UnregisterBeforeFlushDropsPendingNotification) {
  // A strategy may mark a query at registration time (Naive's initial
  // refill does); terminating the query before the next epoch must drop
  // the pending mark instead of flushing a dead query (which used to
  // CHECK-crash the merged flush).
  ShardedServerOptions options = SmallOptions(2, /*window=*/5);
  ShardedServer server(
      options, [](const ServerOptions& server_options)
                   -> std::unique_ptr<ServerStrategy> {
        return std::make_unique<NaiveServer>(server_options);
      });

  std::vector<QueryId> fired;
  server.SetResultListener(
      [&fired](QueryId q, const std::vector<ResultEntry>&) {
        fired.push_back(q);
      });

  ASSERT_TRUE(server.Ingest(testing::MakeDoc({{1, 0.8}}, 10)).ok());
  const auto doomed = server.RegisterQuery(testing::MakeQuery(1, {{1, 1.0}}));
  const auto kept = server.RegisterQuery(testing::MakeQuery(1, {{1, 0.5}}));
  ASSERT_TRUE(doomed.ok() && kept.ok());
  ASSERT_TRUE(server.UnregisterQuery(*doomed).ok());

  fired.clear();
  ASSERT_TRUE(server.Ingest(testing::MakeDoc({{1, 0.9}}, 20)).ok());
  EXPECT_EQ(fired, std::vector<QueryId>{*kept});
}

TEST(ShardedServerTest, AdvanceTimeExpiresOnEveryShard) {
  ShardedServerOptions options;
  options.window = WindowSpec::TimeBased(1000);
  options.shards = 2;
  options.threads = 2;
  ShardedServer server(options);

  const auto q = server.RegisterQuery(testing::MakeQuery(1, {{3, 1.0}}));
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(server.Ingest(testing::MakeDoc({{3, 0.4}}, 100)).ok());
  ASSERT_EQ(server.Result(*q)->size(), 1u);

  std::vector<QueryId> fired;
  server.SetResultListener(
      [&fired](QueryId id, const std::vector<ResultEntry>&) {
        fired.push_back(id);
      });

  EXPECT_TRUE(server.AdvanceTime(5000).ok());
  EXPECT_EQ(server.window_size(), 0u);
  EXPECT_EQ(server.stats().documents_expired, 1u);
  EXPECT_EQ(server.Result(*q)->size(), 0u);
  EXPECT_EQ(fired, std::vector<QueryId>{*q});

  EXPECT_TRUE(server.AdvanceTime(4000).IsInvalidArgument());
}

TEST(ShardedServerTest, StatsAggregateAndReset) {
  ShardedServer server(SmallOptions(2, /*window=*/50));
  const auto q = server.RegisterQuery(testing::MakeQuery(1, {{1, 1.0}}));
  ASSERT_TRUE(q.ok());

  std::vector<Document> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(testing::MakeDoc({{1, 0.5}}, 100 + i));
  }
  ASSERT_TRUE(server.IngestBatch(std::move(batch)).ok());

  const ServerStats aggregated = server.stats();
  EXPECT_EQ(aggregated.documents_ingested, 8u);
  // Only the owning shard scored the documents; the aggregate equals the
  // sum over shards.
  std::uint64_t scores = 0;
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    scores += server.shard_stats(s).scores_computed;
  }
  EXPECT_EQ(aggregated.scores_computed, scores);
  EXPECT_GT(scores, 0u);

  server.ResetStats();
  EXPECT_EQ(server.stats().documents_ingested, 0u);
  EXPECT_EQ(server.epochs_processed(), 0u);
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    EXPECT_EQ(server.shard_busy_micros(s), 0u);
  }
}

TEST(ShardedServerTest, ShardsCustomStrategies) {
  // The engine is strategy-agnostic: shard the Naive comparator and the
  // brute-force oracle through the same seam.
  for (const std::string kind : {"naive", "oracle"}) {
    ShardedServerOptions options = SmallOptions(2, /*window=*/5);
    ShardedServer server(
        options, [&kind](const ServerOptions& server_options)
                     -> std::unique_ptr<ServerStrategy> {
          if (kind == "naive") {
            return std::make_unique<NaiveServer>(server_options);
          }
          return std::make_unique<OracleServer>(server_options);
        });
    EXPECT_EQ(server.name(), "sharded(" + kind + ",2)");

    const auto q = server.RegisterQuery(testing::MakeQuery(1, {{2, 1.0}}));
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(server.Ingest(testing::MakeDoc({{2, 0.8}}, 10)).ok());
    const auto result = server.Result(*q);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 1u);
    EXPECT_DOUBLE_EQ((*result)[0].score, 0.8);
  }
}

TEST(ShardedServerTest, SingleShardDegeneratesToSequential) {
  ShardedServer server(SmallOptions(1, /*window=*/6));
  const auto q = server.RegisterQuery(testing::MakeQuery(2, {{1, 1.0}}));
  ASSERT_TRUE(q.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        server.Ingest(testing::MakeDoc({{1, 0.1 * (i + 1)}}, 10 * i)).ok());
  }
  EXPECT_EQ(server.window_size(), 6u);
  const auto result = server.Result(*q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_DOUBLE_EQ((*result)[0].score, 1.0);
  EXPECT_DOUBLE_EQ((*result)[1].score, 0.9);
}

TEST(ShardedServerTest, AnalyzedBatchHandoff) {
  // End-to-end: analysis happens once in the pipeline, the weighted
  // vectors are broadcast to all shards.
  IngestPipeline pipeline;
  ShardedServer server(SmallOptions(2, /*window=*/10));

  const auto query = pipeline.AnalyzeQuery("stream monitoring", /*k=*/2);
  ASSERT_TRUE(query.ok());
  const auto qid = server.RegisterQuery(*query);
  ASSERT_TRUE(qid.ok());

  std::vector<RawDocument> raw;
  raw.push_back({"continuous stream monitoring of text", 100});
  raw.push_back({"unrelated cooking recipe", 200});
  AnalyzedBatch epoch = pipeline.AnalyzeEpoch(raw);
  ASSERT_EQ(epoch.size(), 2u);
  EXPECT_EQ(epoch.epoch_end(), 200);

  const auto ids = server.IngestBatch(std::move(epoch));
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 2u);

  const auto result = server.Result(*qid);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].doc, 1u);
}

}  // namespace
}  // namespace ita::exec
