// The load-aware placement layer (DESIGN.md §12): a workload skewed onto
// one shard triggers bounded query migrations at epoch barriers —
// results stay exact (bit-identical to a sequential server over the same
// stream), placement bookkeeping (ShardOf, shard query counts, the
// registered_queries gauge) tracks every move, hysteresis delays the
// first move, kOff never moves, and ITA_REBALANCE overrides the mode.

#include "exec/sharded_server.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "../testing/builders.h"
#include "core/ita_server.h"

namespace ita::exec {
namespace {

ShardedServerOptions SkewOptions(RebalanceMode mode) {
  ShardedServerOptions options;
  options.window = WindowSpec::CountBased(64);
  options.shards = 2;
  options.threads = 2;
  options.rebalance.mode = mode;
  return options;
}

/// `pairs` hot/cold query pairs: ids alternate 1, 2, 3, ... so with S=2
/// every hot query (term 7, matched by the whole stream) lands on shard
/// 1 and every cold query (a term the stream never emits) on shard 0 —
/// all probe/score work concentrates on shard 1.
void RegisterSkewedPopulation(ShardedServer& server, std::size_t pairs) {
  for (std::size_t i = 0; i < pairs; ++i) {
    ASSERT_TRUE(server.RegisterQuery(
        testing::MakeQuery(4, {{7, 1.0}, {11, 0.5}})).ok());
    ASSERT_TRUE(server.RegisterQuery(
        testing::MakeQuery(4, {{static_cast<TermId>(1'000 + i), 1.0}})).ok());
  }
}

/// One epoch of 8 hot documents (terms 7 and 11), arrival times striding
/// from `t0`.
std::vector<Document> HotEpoch(Timestamp t0, int salt) {
  std::vector<Document> batch;
  for (int i = 0; i < 8; ++i) {
    const double w = 0.1 + 0.05 * static_cast<double>((salt + i) % 13);
    batch.push_back(testing::MakeDoc({{7, w}, {11, 1.0 - w}},
                                     t0 + static_cast<Timestamp>(i) * 10));
  }
  return batch;
}

TEST(ShardedRebalanceTest, SkewedLoadMigratesAndStaysExact) {
  ShardedServer server(SkewOptions(RebalanceMode::kAggressive));
  ItaServer reference(
      {.window = WindowSpec::CountBased(64)});
  RegisterSkewedPopulation(server, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(reference.RegisterQuery(
        testing::MakeQuery(4, {{7, 1.0}, {11, 0.5}})).ok());
    ASSERT_TRUE(reference.RegisterQuery(
        testing::MakeQuery(4, {{static_cast<TermId>(1'000 + i), 1.0}})).ok());
  }

  for (int epoch = 0; epoch < 8; ++epoch) {
    const Timestamp t0 = static_cast<Timestamp>(epoch) * 1'000;
    ASSERT_TRUE(server.IngestBatch(HotEpoch(t0, epoch)).ok());
    ASSERT_TRUE(reference.IngestBatch(HotEpoch(t0, epoch)).ok());
    // Exactness across migrations: every query's top-k matches the
    // sequential server's, every epoch.
    for (QueryId id = 1; id <= 8; ++id) {
      const auto got = server.Result(id);
      const auto want = reference.Result(id);
      ASSERT_TRUE(got.ok() && want.ok());
      ASSERT_EQ(got->size(), want->size()) << "query " << id;
      for (std::size_t i = 0; i < got->size(); ++i) {
        EXPECT_EQ((*got)[i].doc, (*want)[i].doc) << "query " << id;
        EXPECT_DOUBLE_EQ((*got)[i].score, (*want)[i].score) << "query " << id;
      }
    }
  }

  // The skew must have provoked migrations off the hot shard…
  EXPECT_GT(server.rebalance_stats().queries_migrated, 0u);
  EXPECT_GT(server.rebalance_stats().rebalance_events, 0u);

  // …and every piece of placement bookkeeping must agree: ShardOf vs the
  // per-shard populations, their sum, and the per-shard gauge.
  std::vector<std::size_t> by_shard(server.shard_count(), 0);
  for (QueryId id = 1; id <= 8; ++id) ++by_shard[server.ShardOf(id)];
  std::size_t total = 0;
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    EXPECT_EQ(server.shard_query_count(s), by_shard[s]) << "shard " << s;
    EXPECT_EQ(server.shard_stats(s).registered_queries, by_shard[s])
        << "shard " << s;
    total += by_shard[s];
  }
  EXPECT_EQ(total, 8u);
  EXPECT_EQ(server.stats().registered_queries, 8u);
  EXPECT_TRUE(server.ValidatePruningMetadata().ok());
}

TEST(ShardedRebalanceTest, OffModeNeverMigrates) {
  ShardedServer server(SkewOptions(RebalanceMode::kOff));
  RegisterSkewedPopulation(server, 4);
  for (int epoch = 0; epoch < 8; ++epoch) {
    ASSERT_TRUE(
        server.IngestBatch(HotEpoch(static_cast<Timestamp>(epoch) * 1'000,
                                    epoch)).ok());
  }
  EXPECT_EQ(server.rebalance_stats().queries_migrated, 0u);
  for (QueryId id = 1; id <= 8; ++id) {
    EXPECT_EQ(server.ShardOf(id), id % server.shard_count());
  }
}

TEST(ShardedRebalanceTest, HysteresisDelaysTheFirstMove) {
  ShardedServerOptions options = SkewOptions(RebalanceMode::kOn);
  options.rebalance.hysteresis_epochs = 3;
  options.rebalance.imbalance_trigger = 1.05;
  ShardedServer server(options);
  RegisterSkewedPopulation(server, 4);

  // Two over-trigger epochs: the streak (1, then 2) stays below the
  // hysteresis requirement of 3 — no move yet.
  for (int epoch = 0; epoch < 2; ++epoch) {
    ASSERT_TRUE(
        server.IngestBatch(HotEpoch(static_cast<Timestamp>(epoch) * 1'000,
                                    epoch)).ok());
  }
  EXPECT_EQ(server.rebalance_stats().queries_migrated, 0u);

  // The third consecutive epoch reaches the streak and migrates.
  ASSERT_TRUE(server.IngestBatch(HotEpoch(2'000, 2)).ok());
  EXPECT_GT(server.rebalance_stats().queries_migrated, 0u);
  EXPECT_EQ(server.last_epoch_migrations(),
            server.rebalance_stats().queries_migrated);
}

TEST(ShardedRebalanceTest, ResetStatsClearsRebalanceState) {
  ShardedServer server(SkewOptions(RebalanceMode::kAggressive));
  RegisterSkewedPopulation(server, 4);
  for (int epoch = 0; epoch < 6; ++epoch) {
    ASSERT_TRUE(
        server.IngestBatch(HotEpoch(static_cast<Timestamp>(epoch) * 1'000,
                                    epoch)).ok());
  }
  ASSERT_GT(server.rebalance_stats().queries_migrated, 0u);
  server.ResetStats();
  EXPECT_EQ(server.rebalance_stats().queries_migrated, 0u);
  EXPECT_EQ(server.rebalance_stats().rebalance_events, 0u);
  EXPECT_EQ(server.last_epoch_migrations(), 0u);
  // The gauge survives the reset: it tracks live placement, not history.
  EXPECT_EQ(server.stats().registered_queries, 8u);
}

TEST(ShardedRebalanceTest, EnvOverrideWins) {
  ASSERT_EQ(setenv("ITA_REBALANCE", "off", /*overwrite=*/1), 0);
  ShardedServer off(SkewOptions(RebalanceMode::kAggressive));
  EXPECT_EQ(off.rebalance_options().mode, RebalanceMode::kOff);

  ASSERT_EQ(setenv("ITA_REBALANCE", "aggressive", /*overwrite=*/1), 0);
  ShardedServer aggressive(SkewOptions(RebalanceMode::kOff));
  EXPECT_EQ(aggressive.rebalance_options().mode, RebalanceMode::kAggressive);
  // The aggressive knob tightening applies regardless of the mode's
  // origin.
  EXPECT_LE(aggressive.rebalance_options().imbalance_trigger, 1.05);
  EXPECT_EQ(aggressive.rebalance_options().hysteresis_epochs, 1u);
  ASSERT_EQ(unsetenv("ITA_REBALANCE"), 0);
}

}  // namespace
}  // namespace ita::exec
