// EpochScheduler contract: RunPhase runs every task exactly once and is a
// barrier (no task still running when it returns), exceptions surface
// after all tasks finished, and phases sequence correctly even with fewer
// threads than tasks.

#include "exec/epoch_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace ita::exec {
namespace {

TEST(EpochSchedulerTest, RunsEveryTaskExactlyOnce) {
  EpochScheduler scheduler(4);
  std::vector<std::atomic<int>> hits(64);
  scheduler.RunPhase(64, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(EpochSchedulerTest, RunPhaseIsABarrier) {
  EpochScheduler scheduler(3);
  std::atomic<int> running{0};
  std::atomic<int> completed{0};
  for (int phase = 0; phase < 10; ++phase) {
    scheduler.RunPhase(7, [&running, &completed](std::size_t) {
      ++running;
      ++completed;
      --running;
    });
    // The barrier: once RunPhase returns, nothing is still executing and
    // every task of the phase has finished.
    EXPECT_EQ(running.load(), 0);
    EXPECT_EQ(completed.load(), (phase + 1) * 7);
  }
}

TEST(EpochSchedulerTest, MoreTasksThanThreads) {
  EpochScheduler scheduler(2);
  std::atomic<int> count{0};
  scheduler.RunPhase(100, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(EpochSchedulerTest, ZeroTasksIsANoOp) {
  EpochScheduler scheduler(2);
  scheduler.RunPhase(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(EpochSchedulerTest, ExceptionPropagatesAfterAllTasksFinished) {
  EpochScheduler scheduler(4);
  std::atomic<int> finished{0};
  EXPECT_THROW(scheduler.RunPhase(16,
                                  [&finished](std::size_t i) {
                                    if (i == 5) throw std::runtime_error("shard failed");
                                    ++finished;
                                  }),
               std::runtime_error);
  // Every non-throwing task still ran to completion before the rethrow.
  EXPECT_EQ(finished.load(), 15);

  // The scheduler remains usable after a failed phase.
  std::atomic<int> after{0};
  scheduler.RunPhase(4, [&after](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 4);
}

}  // namespace
}  // namespace ita::exec
