// Epoch phase tracing under the parallel scheduler: every shard's
// PhaseRecorder is written by whichever worker thread runs that shard's
// phase task and drained by the driver after the phase barrier with no
// atomics — this suite drives that aggregation with real worker threads
// so the "exec"-labeled ThreadSanitizer CI job validates the
// barrier-ordering discipline (DESIGN.md §11). The content assertions
// double as the spans-sum-vs-wall consistency check for the sharded
// driver: every lane's phase spans nest inside the epoch, so their sum
// cannot exceed the driver's wall measurement.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exec/sharded_server.h"
#include "obs/epoch_trace.h"
#include "obs/phase_recorder.h"
#include "stream/corpus.h"

namespace ita::exec {
namespace {

ShardedServerOptions TraceOptions(std::size_t shards) {
  ShardedServerOptions options;
  options.window = WindowSpec::CountBased(256);
  options.shards = shards;
  options.threads = shards;  // real parallelism across shard tasks
  return options;
}

/// Streams `epochs` synthetic batches through `server` with a hot query
/// population registered first.
void DriveTracedStream(ShardedServer& server, std::size_t epochs,
                       std::size_t batch = 64) {
  SyntheticCorpusOptions copts;
  copts.dictionary_size = 5'000;
  copts.seed = 21;
  SyntheticCorpusGenerator corpus(copts);

  QueryWorkloadOptions qopts;
  qopts.terms_per_query = 4;
  qopts.k = 5;
  qopts.max_term = 100;
  qopts.seed = 12;
  QueryWorkloadGenerator queries(copts.dictionary_size, qopts);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(server.RegisterQuery(queries.NextQuery()).ok());
  }

  Timestamp now = 0;
  for (std::size_t e = 0; e < epochs; ++e) {
    std::vector<Document> docs;
    docs.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      docs.push_back(corpus.NextDocument(now += 1'000));
    }
    ASSERT_TRUE(server.IngestBatch(std::move(docs)).ok());
  }
}

TEST(PhaseTraceParallelTest, RecordersAggregateAcrossTheBarrier) {
  ShardedServer server(TraceOptions(/*shards=*/4));
  server.EnableTracing(/*capacity=*/16);
  server.EnableHotTermTracking(/*capacity=*/16);
#if !ITA_OBS_ENABLED
  EXPECT_EQ(server.trace(), nullptr)
      << "ITA_OBS=OFF must keep tracing a no-op";
  GTEST_SKIP() << "telemetry compiled out (ITA_OBS=OFF)";
#else
  const std::size_t kEpochs = 24;
  DriveTracedStream(server, kEpochs);

  const obs::EpochTrace* trace = server.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->shards(), 4u);
  EXPECT_EQ(trace->epochs(), kEpochs);
  EXPECT_EQ(trace->size(), trace->capacity());  // 24 epochs > capacity 16

  // Every shard's expire and arrive span fired every epoch, and the
  // driver recorded a barrier-wait for every lane.
  for (std::size_t s = 0; s < trace->shards(); ++s) {
    EXPECT_EQ(trace->phase_hist(s, obs::Phase::kExpire).count(), kEpochs);
    EXPECT_EQ(trace->phase_hist(s, obs::Phase::kArrive).count(), kEpochs);
    EXPECT_EQ(trace->phase_hist(s, obs::Phase::kBarrierWait).count(), kEpochs);
    EXPECT_GT(trace->cumulative_phase_nanos(s, obs::Phase::kArrive), 0u);
    // ITA sub-spans reached the per-shard strategies.
    EXPECT_GT(trace->cumulative_sub_nanos(s, obs::SubSpan::kProbe), 0u);
  }
  // Driver spans live on lane 0 only.
  EXPECT_GT(trace->cumulative_phase_nanos(0, obs::Phase::kPlan), 0u);
  for (std::size_t s = 1; s < trace->shards(); ++s) {
    EXPECT_EQ(trace->cumulative_phase_nanos(s, obs::Phase::kPlan), 0u);
    EXPECT_EQ(trace->cumulative_phase_nanos(s, obs::Phase::kNotifyFlush), 0u);
  }

  // Span-sum consistency: per lane, the recorded spans nest inside the
  // epoch, so plan + expire + arrive + barrier-wait + notify-flush can
  // never exceed the epoch wall (tiny slack for clock granularity).
  for (std::size_t i = 0; i < trace->size(); ++i) {
    const auto sample = trace->Sample(i);
    EXPECT_GT(sample.wall_nanos, 0u);
    for (std::size_t s = 0; s < trace->shards(); ++s) {
      std::uint64_t lane_total = 0;
      for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
        lane_total += sample.Phase(s, static_cast<obs::Phase>(p));
      }
      EXPECT_LE(lane_total, sample.wall_nanos + 2'000u)
          << "lane " << s << " spans exceed the epoch wall at sample " << i;
    }
  }

  // The imbalance gauge saw real shard work.
  EXPECT_GE(trace->last_imbalance(), 1.0);
  EXPECT_GE(trace->max_imbalance(), trace->last_imbalance());

  // The per-shard sketches fold into one aggregate with real weight.
  const obs::SpaceSavingSketch hot = server.AggregateHotTerms();
  EXPECT_GT(hot.total_weight(), 0u);
  EXPECT_FALSE(hot.TopK(4).empty());
#endif
}

TEST(PhaseTraceParallelTest, UntracedServerStaysUntraced) {
  ShardedServer server(TraceOptions(/*shards=*/2));
  EXPECT_EQ(server.trace(), nullptr);
  DriveTracedStream(server, /*epochs=*/4);
  EXPECT_EQ(server.trace(), nullptr);
  EXPECT_EQ(server.AggregateHotTerms().total_weight(), 0u);
}

TEST(PhaseTraceParallelTest, TraceResetKeepsRecording) {
  ShardedServer server(TraceOptions(/*shards=*/2));
  server.EnableTracing(/*capacity=*/8);
  DriveTracedStream(server, /*epochs=*/4);
#if ITA_OBS_ENABLED
  ASSERT_NE(server.trace(), nullptr);
  EXPECT_EQ(server.trace()->epochs(), 4u);
  server.mutable_trace()->Reset();
  EXPECT_EQ(server.trace()->epochs(), 0u);
  // The recorder wiring survives a Reset: further epochs keep tracing.
  ASSERT_TRUE(
      server
          .IngestBatch({SyntheticCorpusGenerator(SyntheticCorpusOptions{})
                            .NextDocument(1'000'000'000)})
          .ok());
  EXPECT_EQ(server.trace()->epochs(), 1u);
#endif
}

}  // namespace
}  // namespace ita::exec
