// The shared-arena aliasing contract under real concurrency (DESIGN.md
// §8): the engine mutates the arena strictly between phases, and during a
// phase any number of shard workers read views of the same single copy.
// These tests drive that pattern with raw threads (and through the full
// sharded engine) so the ThreadSanitizer CI job — which runs the exec/
// label — can prove the reads are race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/ita_server.h"
#include "exec/sharded_server.h"
#include "stream/document.h"
#include "stream/document_arena.h"

namespace ita {
namespace {

std::vector<Document> SyntheticBatch(std::size_t n, Timestamp start_at) {
  std::vector<Document> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Document doc;
    doc.arrival_time = start_at + static_cast<Timestamp>(i);
    doc.composition = {{static_cast<TermId>(i % 7), 0.25},
                       {static_cast<TermId>(100 + i % 11), 0.5}};
    doc.text = "payload-" + std::to_string(i);
    doc.token_count = 2;
    batch.push_back(std::move(doc));
  }
  return batch;
}

// The raw pattern: one writer thread-of-record (this test) alternates
// epoch mutations with barriered parallel read phases, exactly like the
// engine. Every reader walks all valid views and the expired span.
TEST(DocumentArenaParallelTest, ShardWorkersReadViewsConcurrently) {
  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kEpochs = 20;
  constexpr std::size_t kBatch = 64;
  constexpr std::size_t kWindow = 256;

  DocumentArena arena;
  const WindowSpec window = WindowSpec::CountBased(kWindow);
  Timestamp now = 0;

  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    auto batch = SyntheticBatch(kBatch, now);
    now += kBatch;
    const auto plan = arena.PlanEpoch(window, now - kBatch, batch);
    ASSERT_TRUE(plan.ok());

    std::vector<DocumentView> expired;
    arena.PopExpiredInto(plan->expiring, expired);
    arena.AppendEpoch(std::move(batch), plan->first_survivor);
    std::vector<DocumentView> arrived;
    arena.TailViewsInto(plan->arriving, arrived);

    // "Phase": kReaders concurrent shard-like readers over the one copy.
    std::atomic<std::uint64_t> checksum{0};
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (std::size_t r = 0; r < kReaders; ++r) {
      readers.emplace_back([&arena, &expired, &arrived, &checksum] {
        std::uint64_t local = 0;
        for (const DocumentView& doc : expired) {
          local += doc.id + doc.composition.size() + doc.text.size();
        }
        for (const DocumentView& doc : arrived) {
          local += doc.id + static_cast<std::uint64_t>(
                                doc.composition.front().weight * 100);
        }
        for (const DocumentView doc : arena) {
          local += doc.id;
          const auto direct = arena.Get(doc.id);
          if (!direct.has_value() || direct->text != doc.text) return;
        }
        checksum.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (auto& t : readers) t.join();  // the phase barrier

    arena.ReclaimExpired();  // only after every reader is done

    // All readers saw the identical window: checksum must be an exact
    // multiple of one reader's sum (and nonzero once documents exist).
    const std::uint64_t total = checksum.load();
    ASSERT_EQ(total % kReaders, 0u);
    ASSERT_GT(total, 0u);
  }
  EXPECT_EQ(arena.size(), kWindow);
}

// The same contract through the production path: a sharded engine whose
// shards all rescan the shared arena (Naive-style registration refills
// and ITA threshold searches read it) while epochs stream.
TEST(DocumentArenaParallelTest, ShardedEngineSharesOneArena) {
  exec::ShardedServerOptions options;
  options.window = WindowSpec::CountBased(128);
  options.shards = 4;
  options.threads = 4;
  exec::ShardedServer server(options);

  for (QueryId i = 0; i < 16; ++i) {
    Query query;
    query.k = 3;
    query.terms = {{static_cast<TermId>(i % 7), 1.0},
                   {static_cast<TermId>(100 + i % 11), 0.5}};
    ASSERT_TRUE(server.RegisterQuery(std::move(query)).ok());
  }

  Timestamp now = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    auto batch = SyntheticBatch(48, now);
    now += 48;
    ASSERT_TRUE(server.IngestBatch(std::move(batch)).ok());
  }

  // One shared window store: the engine's document bytes, not S times.
  EXPECT_EQ(server.window_size(), 128u);
  const ServerStats stats = server.stats();
  EXPECT_GT(stats.document_bytes, 0u);
  EXPECT_GT(stats.arena_segments, 0u);
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    EXPECT_EQ(server.shard_stats(s).document_bytes, 0u)
        << "shard " << s << " must not own window memory";
  }
}

}  // namespace
}  // namespace ita
