// Snapshotting a live ShardedServer at the epoch barrier while reader
// threads are active: Checkpoint is read-only and the engine's contract
// allows any number of concurrent readers BETWEEN epoch mutations, so a
// checkpoint taken at the barrier must race with neither Result() nor
// window lookups. Run under ThreadSanitizer by the `exec`-labeled CI
// job — a lock added to the read path or a sneaky mutation inside
// Checkpoint would surface here.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "exec/sharded_server.h"
#include "stream/window.h"
#include "testing/builders.h"

namespace ita::exec {
namespace {

using ::ita::testing::MakeDoc;
using ::ita::testing::MakeQuery;

TEST(ShardedSnapshotConcurrencyTest, CheckpointRacesNoReader) {
  ShardedServerOptions options;
  options.window = WindowSpec::CountBased(32);
  options.shards = 3;
  options.threads = 3;
  ShardedServer server(options);

  std::vector<QueryId> ids;
  for (int i = 0; i < 9; ++i) {
    const auto id = server.RegisterQuery(
        MakeQuery(2, {{TermId(1 + i % 5), 1.0}, {TermId(9), 0.5}}));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  std::string last_snapshot;
  for (int epoch = 0; epoch < 20; ++epoch) {
    // Mutate: one ingest epoch (single-writer, no readers active).
    std::vector<Document> batch;
    for (int i = 0; i < 4; ++i) {
      batch.push_back(MakeDoc({{TermId(1 + (epoch + i) % 6), 0.3 + 0.05 * i},
                               {TermId(9), 0.8}},
                              Timestamp(10 * epoch + i)));
    }
    ASSERT_TRUE(server.IngestBatch(std::move(batch)).ok());

    // Barrier reached: readers go live on every shard while the main
    // thread checkpoints the whole engine.
    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
      readers.emplace_back([&server, &ids, &stop] {
        while (!stop.load(std::memory_order_acquire)) {
          for (const QueryId id : ids) {
            const auto result = server.Result(id);
            ASSERT_TRUE(result.ok());
          }
          (void)server.window_size();
          (void)server.query_count();
        }
      });
    }
    std::string bytes;
    ASSERT_TRUE(server.Checkpoint(&bytes).ok());
    ASSERT_TRUE(server.Checkpoint(&bytes).ok());  // twice: reread under load
    stop.store(true, std::memory_order_release);
    for (std::thread& reader : readers) reader.join();
    last_snapshot = std::move(bytes);
  }

  // The snapshot taken under reader load restores to the same answers.
  ShardedServer restored(options);
  ASSERT_TRUE(restored.Restore(last_snapshot).ok());
  for (const QueryId id : ids) {
    const auto got = restored.Result(id);
    const auto want = server.Result(id);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(*got, *want) << "query " << id;
  }
}

}  // namespace
}  // namespace ita::exec
