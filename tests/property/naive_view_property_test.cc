// White-box invariants of the Naive baseline's materialized top-k_max
// view (Yi et al. [6]), verified after every stream event on randomized
// workloads:
//
//   V1  k <= |view| <= k_max between events (unless fewer matchers exist);
//   V2  the view is exactly the top-|view| of the valid matching
//       documents (score-for-score against a brute-force scan);
//   V3  when `complete` is set, the view holds *every* valid matcher;
//   V4  stored scores are exact.
//
// These invariants are what make the baseline's answers trustworthy — and
// hence what makes the Figure 3 cost comparison meaningful.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "../testing/builders.h"
#include "core/naive_server.h"
#include "stream/corpus.h"

namespace ita {
namespace {

struct NaiveScenario {
  std::string label;
  std::uint64_t seed = 1;
  std::size_t dictionary = 100;
  std::size_t n_queries = 8;
  std::size_t terms_per_query = 4;
  int k = 4;
  double kmax_factor = 2.0;
  bool skip_complete_rescans = false;
  std::size_t window = 25;
  std::size_t events = 300;
};

std::ostream& operator<<(std::ostream& os, const NaiveScenario& s) {
  return os << s.label;
}

class NaiveViewInvariantTest : public ::testing::TestWithParam<NaiveScenario> {};

void CheckViewInvariants(const NaiveServer& server,
                         const std::unordered_map<QueryId, Query>& queries,
                         std::size_t event) {
  for (const auto& [qid, query] : queries) {
    const auto view_or = server.View(qid);
    ASSERT_TRUE(view_or.ok());
    const auto& view = *view_or;
    const auto complete_or = server.ViewComplete(qid);
    ASSERT_TRUE(complete_or.ok());

    // Brute-force matcher list, ranked like the server ranks.
    std::vector<ResultEntry> matchers;
    for (const DocumentView doc : server.documents()) {
      const double score = ScoreDocument(doc.composition, query.terms);
      if (score > 0.0) matchers.push_back(ResultEntry{doc.id, score});
    }
    std::sort(matchers.begin(), matchers.end(),
              [](const ResultEntry& a, const ResultEntry& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc > b.doc;
              });

    const std::size_t k = static_cast<std::size_t>(query.k);
    const std::size_t kmax = server.KMaxFor(query.k);

    // V1: size bounds.
    ASSERT_LE(view.size(), kmax) << "query " << qid << ", event " << event;
    ASSERT_GE(view.size(), std::min(k, matchers.size()))
        << "view underflow left unrepaired, query " << qid << ", event "
        << event;

    // V2: exact top-|view| (score sequences match; ties may permute ids).
    for (std::size_t i = 0; i < view.size(); ++i) {
      ASSERT_NEAR(view[i].score, matchers[i].score, 1e-12)
          << "view rank " << i << " wrong, query " << qid << ", event "
          << event;
    }

    // V3: completeness soundness.
    if (*complete_or) {
      ASSERT_EQ(view.size(), matchers.size())
          << "complete view missing matchers, query " << qid << ", event "
          << event;
    }

    // V4: stored scores are exact for the documents they cite.
    for (const ResultEntry& e : view) {
      const auto doc = server.documents().Get(e.doc);
      ASSERT_TRUE(doc.has_value()) << "view cites expired doc " << e.doc;
      ASSERT_NEAR(e.score, ScoreDocument(doc->composition, query.terms), 1e-12);
    }
  }
}

TEST_P(NaiveViewInvariantTest, HoldAfterEveryEvent) {
  const NaiveScenario& s = GetParam();

  SyntheticCorpusOptions copts;
  copts.dictionary_size = s.dictionary;
  copts.min_length = 3;
  copts.max_length = 20;
  copts.length_lognormal_mu = 2.0;
  copts.seed = s.seed;
  SyntheticCorpusGenerator corpus(copts);

  QueryWorkloadOptions qopts;
  qopts.terms_per_query = s.terms_per_query;
  qopts.k = s.k;
  qopts.seed = s.seed + 77;
  QueryWorkloadGenerator generator(s.dictionary, qopts);

  NaiveTuning tuning;
  tuning.kmax_factor = s.kmax_factor;
  tuning.skip_complete_rescans = s.skip_complete_rescans;
  NaiveServer server{ServerOptions{WindowSpec::CountBased(s.window)}, tuning};

  std::unordered_map<QueryId, Query> queries;
  for (std::size_t i = 0; i < s.n_queries; ++i) {
    const Query q = generator.NextQuery();
    const auto id = server.RegisterQuery(q);
    ASSERT_TRUE(id.ok());
    queries.emplace(*id, q);
  }
  CheckViewInvariants(server, queries, 0);

  for (std::size_t event = 1; event <= s.events; ++event) {
    ASSERT_TRUE(
        server.Ingest(corpus.NextDocument(static_cast<Timestamp>(event))).ok());
    CheckViewInvariants(server, queries, event);
  }
}

std::vector<NaiveScenario> MakeNaiveScenarios() {
  std::vector<NaiveScenario> all;
  NaiveScenario base;
  base.label = "base";
  all.push_back(base);
  for (const std::uint64_t seed : {3ull, 9ull}) {
    NaiveScenario s = base;
    s.seed = seed;
    s.label = "seed_" + std::to_string(seed);
    all.push_back(s);
  }
  {
    NaiveScenario s = base;
    s.label = "plain_naive_kmax1";
    s.kmax_factor = 1.0;
    all.push_back(s);
  }
  {
    NaiveScenario s = base;
    s.label = "kmax4";
    s.kmax_factor = 4.0;
    all.push_back(s);
  }
  {
    NaiveScenario s = base;
    s.label = "skip_complete_rescans";
    s.skip_complete_rescans = true;
    all.push_back(s);
  }
  {
    NaiveScenario s = base;
    s.label = "rare_matchers";
    s.dictionary = 2000;  // queries rarely match: views mostly complete
    s.events = 250;
    all.push_back(s);
  }
  return all;
}

INSTANTIATE_TEST_SUITE_P(Scenarios, NaiveViewInvariantTest,
                         ::testing::ValuesIn(MakeNaiveScenarios()),
                         [](const ::testing::TestParamInfo<NaiveScenario>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace ita
