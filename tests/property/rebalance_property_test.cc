// The rebalancing exactness property (DESIGN.md §12): switching the
// load-aware placement map on — aggressively, so migrations actually
// fire mid-stream — must not change a single observable of the run.
// Scenario streams with churn (churn_storm), topic drift (zipf_drift)
// and guaranteed skew (hot_term_flood) drive sequential ITA + sharded
// S ∈ {2, 4, 7} fleets through the ScenarioRunner with the brute-force
// oracle differential layer and the cross-engine notification check
// (ascending QueryId order, identical sequences) active throughout; the
// report must come back clean while recording real migrations, and the
// whole run must be bit-reproducible.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec/sharded_server.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace ita::sim {
namespace {

RunOptions RebalancingFleet() {
  RunOptions options;
  options.shard_counts = {2, 4, 7};
  // Aggressive: trigger ~1.05, hysteresis 1, wide move budget — the
  // point is to force migrations into the checked window, not to tune.
  options.rebalance.mode = exec::RebalanceMode::kAggressive;
  options.checker.differential_interval_epochs = 2;
  return options;
}

TEST(RebalancePropertyTest, ActiveRebalancingStaysOracleEquivalent) {
  const struct {
    const char* name;
    ScenarioSpec (*make)(std::uint64_t seed);
    std::uint64_t seed;
  } scenarios[] = {
      {"churn_storm", ChurnStormScenario, 101},
      {"zipf_drift", ZipfDriftScenario, 211},
      {"hot_term_flood", HotTermFloodScenario, 307},
  };

  std::uint64_t migrated_total = 0;
  for (const auto& scenario : scenarios) {
    ScenarioSpec spec = scenario.make(scenario.seed);
    spec.events = 1'500;
    ScenarioRunner runner(spec, RebalancingFleet());
    const auto report = runner.Run();
    ASSERT_TRUE(report.ok()) << scenario.name << ": "
                             << report.status().ToString();
    EXPECT_EQ(report->events, spec.events) << scenario.name;
    EXPECT_GT(report->differential_checks, 0u) << scenario.name;
    EXPECT_GT(report->notifications, 0u) << scenario.name;
    migrated_total += report->queries_migrated;
  }
  // The fleet as a whole must have rebalanced somewhere — a property run
  // where aggressive mode never moves a query is vacuous.
  EXPECT_GT(migrated_total, 0u);
}

TEST(RebalancePropertyTest, RebalancedRunsAreReproducible) {
  ScenarioSpec spec = HotTermFloodScenario(307);
  spec.events = 1'000;
  ScenarioRunner first(spec, RebalancingFleet());
  ScenarioRunner second(spec, RebalancingFleet());
  const auto a = first.Run();
  const auto b = second.Run();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // Migration decisions feed off deterministic work counters, so even
  // the placement churn itself must replay exactly.
  EXPECT_EQ(a->fingerprint, b->fingerprint);
  EXPECT_EQ(a->notifications, b->notifications);
  EXPECT_EQ(a->queries_migrated, b->queries_migrated);
}

}  // namespace
}  // namespace ita::sim
