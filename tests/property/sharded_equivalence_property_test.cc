// The sharding exactness property (DESIGN.md §6): the sharded parallel
// engine must be semantically identical to one sequential server — query
// for query, epoch for epoch. A ShardedServer with S ∈ {1, 2, 4, 7}
// shards, a sequential ItaServer and a brute-force OracleServer consume
// the same randomized stream with the same query population; after every
// epoch all three must report identical results (same sizes, same score
// sequences), identical document ids, and identical stream statistics.
// This extends the PR 1 batch-equivalence property to the concurrency
// layer: partitioning queries across shards, running the epoch phases on
// a thread pool with barriers, and merging notifications must not change
// a single reported score.
//
// Scenarios sweep the shard count, batch size (including batches larger
// than the window — the transient path — and single-document epochs),
// window kind, weighting scheme, roll-up ablation, hot (dense-matching)
// queries, and mid-stream query registration/unregistration churn.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "../testing/builders.h"
#include "core/ita_server.h"
#include "core/oracle_server.h"
#include "exec/sharded_server.h"
#include "stream/corpus.h"

namespace ita {
namespace {

struct ShardScenario {
  std::string label;
  std::size_t shards = 2;
  std::uint64_t seed = 1;
  std::size_t dictionary = 300;
  std::size_t n_queries = 12;
  std::size_t terms_per_query = 4;
  int k = 5;
  WindowSpec window = WindowSpec::CountBased(40);
  std::size_t events = 320;
  std::size_t batch_size = 16;
  WeightingScheme scheme = WeightingScheme::kCosine;
  bool rollup = true;
  std::size_t hot_max_term = 0;
  bool advance_time_between_epochs = false;  // time-based windows only
  bool churn_queries = false;  // unregister/register mid-stream
};

std::ostream& operator<<(std::ostream& os, const ShardScenario& s) {
  return os << s.label;
}

class ShardedEquivalenceTest : public ::testing::TestWithParam<ShardScenario> {};

void ExpectSameAnswer(const std::vector<ResultEntry>& got,
                      const std::vector<ResultEntry>& want,
                      const std::string& who, QueryId q, std::size_t epoch) {
  ASSERT_EQ(got.size(), want.size())
      << who << " result size mismatch, query " << q << ", epoch " << epoch;
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Ties permute only equal scores, so the score sequences must match
    // exactly position by position.
    ASSERT_NEAR(got[i].score, want[i].score, 1e-12)
        << who << " score mismatch at rank " << i << ", query " << q
        << ", epoch " << epoch;
  }
}

TEST_P(ShardedEquivalenceTest, ShardedMatchesSequentialAndOracle) {
  const ShardScenario& s = GetParam();

  SyntheticCorpusOptions copts;
  copts.dictionary_size = s.dictionary;
  copts.min_length = 3;
  copts.max_length = 30;
  copts.length_lognormal_mu = 2.3;
  copts.length_lognormal_sigma = 0.5;
  copts.scheme = s.scheme;
  copts.seed = s.seed;
  SyntheticCorpusGenerator corpus(copts);

  QueryWorkloadOptions qopts;
  qopts.terms_per_query = s.terms_per_query;
  qopts.k = s.k;
  qopts.scheme = s.scheme;
  qopts.seed = s.seed * 7919 + 17;
  qopts.max_term = s.hot_max_term;
  QueryWorkloadGenerator query_gen(s.dictionary, qopts);

  ItaTuning tuning;
  tuning.enable_rollup = s.rollup;

  exec::ShardedServerOptions sharded_options;
  sharded_options.window = s.window;
  sharded_options.shards = s.shards;
  sharded_options.threads = 3;  // deliberately != shards: phases must queue
  sharded_options.tuning = tuning;
  exec::ShardedServer sharded(sharded_options);

  ItaServer sequential{ServerOptions{s.window}, tuning};
  OracleServer oracle{ServerOptions{s.window}};

  std::vector<QueryId> active;
  const auto register_one = [&]() {
    const Query q = query_gen.NextQuery();
    const auto a = sharded.RegisterQuery(q);
    const auto b = sequential.RegisterQuery(q);
    const auto c = oracle.RegisterQuery(q);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    ASSERT_EQ(*a, *b);
    ASSERT_EQ(*a, *c);
    active.push_back(*a);
  };
  for (std::size_t i = 0; i < s.n_queries; ++i) register_one();

  Timestamp now = 0;
  std::size_t epoch = 0;
  for (std::size_t done = 0; done < s.events; ++epoch) {
    const std::size_t n = std::min(s.batch_size, s.events - done);
    std::vector<Document> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(corpus.NextDocument(now += 100));
    }
    done += n;

    std::vector<DocId> sequential_ids;
    for (const Document& doc : batch) {
      const auto id = sequential.Ingest(doc);
      ASSERT_TRUE(id.ok());
      sequential_ids.push_back(*id);
      ASSERT_TRUE(oracle.Ingest(doc).ok());
    }
    const auto sharded_ids = sharded.IngestBatch(std::move(batch));
    ASSERT_TRUE(sharded_ids.ok());
    ASSERT_EQ(*sharded_ids, sequential_ids)
        << "id sequence diverged at epoch " << epoch;

    if (s.advance_time_between_epochs && epoch % 3 == 2) {
      now += s.window.duration / 2;
      ASSERT_TRUE(sharded.AdvanceTime(now).ok());
      ASSERT_TRUE(sequential.AdvanceTime(now).ok());
      ASSERT_TRUE(oracle.AdvanceTime(now).ok());
    }

    if (s.churn_queries && epoch % 4 == 3 && !active.empty()) {
      // Retire the oldest active query everywhere and install a fresh one;
      // registration mid-stream must compute the same initial result on
      // the owning shard as sequentially.
      const QueryId victim = active.front();
      active.erase(active.begin());
      ASSERT_TRUE(sharded.UnregisterQuery(victim).ok());
      ASSERT_TRUE(sequential.UnregisterQuery(victim).ok());
      ASSERT_TRUE(oracle.UnregisterQuery(victim).ok());
      register_one();
    }

    ASSERT_EQ(sharded.window_size(), sequential.window_size());
    for (const QueryId q : active) {
      const auto want = oracle.Result(q);
      ASSERT_TRUE(want.ok());
      const auto seq_got = sequential.Result(q);
      ASSERT_TRUE(seq_got.ok());
      const auto shard_got = sharded.Result(q);
      ASSERT_TRUE(shard_got.ok());
      ExpectSameAnswer(*seq_got, *want, "sequential", q, epoch);
      ExpectSameAnswer(*shard_got, *want, "sharded", q, epoch);
      ASSERT_EQ(testing::Ids(*shard_got).size(), testing::Ids(*seq_got).size());
    }
  }

  // The stream must actually have exercised expirations, and the sharded
  // stream accounting must match the sequential server's exactly.
  if (s.window.kind == WindowSpec::Kind::kCountBased &&
      s.events > s.window.count) {
    EXPECT_GT(sharded.stats().documents_expired, 0u);
  }
  EXPECT_EQ(sharded.stats().documents_ingested,
            sequential.stats().documents_ingested);
  EXPECT_EQ(sharded.stats().documents_expired,
            sequential.stats().documents_expired);
  EXPECT_EQ(sharded.query_count(), sequential.query_count());
}

// The merged notification stream must be equivalent to the sequential
// server's: same changed-query set per epoch, epoch-final payloads.
TEST(ShardedNotificationTest, MergedFlushMatchesSequential) {
  SyntheticCorpusOptions copts;
  copts.dictionary_size = 60;
  copts.min_length = 3;
  copts.max_length = 12;
  copts.length_lognormal_mu = 1.8;
  copts.seed = 21;
  SyntheticCorpusGenerator corpus(copts);

  QueryWorkloadOptions qopts;
  qopts.terms_per_query = 3;
  qopts.k = 3;
  qopts.seed = 99;
  QueryWorkloadGenerator query_gen(60, qopts);

  exec::ShardedServerOptions options;
  options.window = WindowSpec::CountBased(25);
  options.shards = 4;
  options.threads = 2;
  exec::ShardedServer sharded(options);
  ItaServer sequential{ServerOptions{options.window}};

  for (int i = 0; i < 8; ++i) {
    const Query q = query_gen.NextQuery();
    const auto a = sharded.RegisterQuery(q);
    const auto b = sequential.RegisterQuery(q);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(*a, *b);
  }

  std::vector<QueryId> sharded_fired;
  std::vector<QueryId> sequential_fired;
  sharded.SetResultListener(
      [&sharded_fired](QueryId q, const std::vector<ResultEntry>& result) {
        sharded_fired.push_back(q);
        // The notified payload is the epoch-final result.
        (void)result;
      });
  sequential.SetResultListener(
      [&sequential_fired](QueryId q, const std::vector<ResultEntry>&) {
        sequential_fired.push_back(q);
      });

  Timestamp now = 0;
  for (int epoch = 0; epoch < 15; ++epoch) {
    std::vector<Document> batch;
    for (int i = 0; i < 6; ++i) {
      batch.push_back(corpus.NextDocument(now += 100));
    }
    sharded_fired.clear();
    sequential_fired.clear();
    ASSERT_TRUE(sequential.IngestBatch(batch).ok());
    ASSERT_TRUE(sharded.IngestBatch(std::move(batch)).ok());

    // Both flush ascending and dedup'd through the shared ResultNotifier,
    // so the sequences must be identical, not merely equal as sets.
    ASSERT_EQ(sharded_fired, sequential_fired) << "epoch " << epoch;
    for (const QueryId q : sharded_fired) {
      const auto a = sharded.Result(q);
      const auto b = sequential.Result(q);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->size(), b->size());
    }
  }
}

std::vector<ShardScenario> MakeShardScenarios() {
  std::vector<ShardScenario> all;

  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    ShardScenario s;
    s.shards = shards;
    s.label = "shards_" + std::to_string(shards);
    all.push_back(s);
  }
  {
    ShardScenario s;
    s.label = "single_doc_epochs";
    s.shards = 4;
    s.batch_size = 1;
    s.events = 120;
    all.push_back(s);
  }
  {
    ShardScenario s;
    s.label = "batch_overflows_window";
    s.shards = 4;
    s.batch_size = 130;
    s.window = WindowSpec::CountBased(40);
    all.push_back(s);
  }
  {
    ShardScenario s;
    s.label = "more_shards_than_queries";
    s.shards = 7;
    s.n_queries = 3;
    s.events = 200;
    all.push_back(s);
  }
  {
    ShardScenario s;
    s.label = "time_window_with_advances";
    s.shards = 4;
    s.window = WindowSpec::TimeBased(3500);
    s.advance_time_between_epochs = true;
    all.push_back(s);
  }
  {
    ShardScenario s;
    s.label = "raw_tf_tie_storm";
    s.shards = 2;
    s.scheme = WeightingScheme::kRawTf;
    s.dictionary = 30;
    s.terms_per_query = 3;
    s.window = WindowSpec::CountBased(25);
    s.events = 250;
    all.push_back(s);
  }
  {
    ShardScenario s;
    s.label = "bm25_hot_queries";
    s.shards = 4;
    s.scheme = WeightingScheme::kBm25;
    s.dictionary = 500;
    s.hot_max_term = 20;
    s.events = 280;
    all.push_back(s);
  }
  {
    ShardScenario s;
    s.label = "no_rollup_ablation";
    s.shards = 4;
    s.rollup = false;
    all.push_back(s);
  }
  {
    ShardScenario s;
    s.label = "query_churn";
    s.shards = 4;
    s.churn_queries = true;
    all.push_back(s);
  }
  {
    ShardScenario s;
    s.label = "seed_sweep";
    s.shards = 4;
    s.seed = 3;
    all.push_back(s);
  }
  return all;
}

INSTANTIATE_TEST_SUITE_P(ShardScenarios, ShardedEquivalenceTest,
                         ::testing::ValuesIn(MakeShardScenarios()),
                         [](const ::testing::TestParamInfo<ShardScenario>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace ita
