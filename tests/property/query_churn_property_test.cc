// Heavy query churn over the slab-allocated query states (DESIGN.md §7):
// register/unregister storms interleaved with ingest epochs, on both the
// sequential ItaServer and the sharded engine, validated against the
// brute-force oracle. Beyond result equivalence the suite pins down the
// churn-specific invariants of the new layout:
//   * slot reuse   — the query-state slab never grows past the high-water
//     mark of concurrently live queries, however many queries churn
//     through (the free list recycles slots);
//   * tree shrinkage — threshold trees release their entries on
//     unregistration (the threshold_entries gauge returns to zero when
//     the population empties, and tracks the live population otherwise);
//   * no stale notifications — the result listener only ever fires for
//     queries registered at flush time, even when queries die mid-epoch.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/ita_server.h"
#include "core/oracle_server.h"
#include "exec/sharded_server.h"
#include "stream/corpus.h"

namespace ita {
namespace {

void ExpectSameAnswer(const std::vector<ResultEntry>& got,
                      const std::vector<ResultEntry>& want, QueryId q,
                      std::size_t epoch) {
  ASSERT_EQ(got.size(), want.size())
      << "result size mismatch, query " << q << ", epoch " << epoch;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i].score, want[i].score, 1e-12)
        << "score mismatch at rank " << i << ", query " << q << ", epoch "
        << epoch;
  }
}

TEST(QueryChurnPropertyTest, StormsMatchOracleAndRecycleSlots) {
  SyntheticCorpusOptions copts;
  copts.dictionary_size = 150;
  copts.min_length = 3;
  copts.max_length = 20;
  copts.length_lognormal_mu = 2.0;
  copts.length_lognormal_sigma = 0.5;
  copts.seed = 99;
  SyntheticCorpusGenerator corpus(copts);

  QueryWorkloadOptions qopts;
  qopts.terms_per_query = 4;
  qopts.k = 4;
  qopts.seed = 1234;
  QueryWorkloadGenerator queries(copts.dictionary_size, qopts);

  const ServerOptions options{WindowSpec::CountBased(30)};
  ItaServer ita(options);
  OracleServer oracle(options);
  exec::ShardedServerOptions sharded_options;
  sharded_options.window = options.window;
  sharded_options.shards = 3;
  exec::ShardedServer sharded(sharded_options);

  // Listeners must never resolve a dead query: every callback id has to
  // be live at flush time (stale slot/QueryId reuse would surface here).
  std::set<QueryId> live;
  std::size_t ita_notifications = 0;
  ita.SetResultListener(
      [&live, &ita_notifications](QueryId id, const std::vector<ResultEntry>&) {
        EXPECT_TRUE(live.count(id) > 0) << "stale notification for query " << id;
        ++ita_notifications;
      });
  std::size_t sharded_notifications = 0;
  sharded.SetResultListener([&live, &sharded_notifications](
                                QueryId id, const std::vector<ResultEntry>&) {
    EXPECT_TRUE(live.count(id) > 0) << "stale notification for query " << id;
    ++sharded_notifications;
  });

  std::map<QueryId, std::size_t> terms_of;  // live id -> term count
  const auto register_one = [&] {
    const Query q = queries.NextQuery();
    const auto a = ita.RegisterQuery(q);
    const auto b = oracle.RegisterQuery(q);
    const auto c = sharded.RegisterQuery(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    // All engines assign ids from the same sequence.
    ASSERT_EQ(*a, *b);
    ASSERT_EQ(*a, *c);
    live.insert(*a);
    terms_of[*a] = q.terms.size();
  };
  const auto unregister_one = [&](QueryId id) {
    ASSERT_TRUE(ita.UnregisterQuery(id).ok());
    ASSERT_TRUE(oracle.UnregisterQuery(id).ok());
    ASSERT_TRUE(sharded.UnregisterQuery(id).ok());
    live.erase(id);
    terms_of.erase(id);
  };

  for (int i = 0; i < 16; ++i) register_one();
  std::size_t high_water = live.size();

  Timestamp now = 0;
  Rng rng(0x5107);
  for (std::size_t epoch = 0; epoch < 60; ++epoch) {
    // Churn before the epoch: every 10th epoch a full storm (unregister
    // everything, re-register a fresh population — slots and tree entries
    // must fully recycle), otherwise a random partial rotation.
    if (epoch % 10 == 9) {
      while (!live.empty()) unregister_one(*live.begin());
      ASSERT_EQ(ita.stats().threshold_entries, 0u)
          << "threshold trees retained entries after a full storm";
      for (int i = 0; i < 16; ++i) register_one();
    } else {
      const std::size_t rotate = rng.Next() % 6;
      for (std::size_t r = 0; r < rotate && !live.empty(); ++r) {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.Next() % live.size()));
        unregister_one(*it);
      }
      for (std::size_t r = rng.Next() % 6; r > 0; --r) register_one();
    }
    high_water = std::max(high_water, live.size());

    std::vector<Document> batch;
    const std::size_t batch_size = 1 + rng.Next() % 12;
    batch.reserve(batch_size);
    for (std::size_t d = 0; d < batch_size; ++d) {
      batch.push_back(corpus.NextDocument(now += 1000));
    }
    std::vector<Document> copy1 = batch;
    std::vector<Document> copy2 = batch;
    ASSERT_TRUE(ita.IngestBatch(std::move(batch)).ok());
    ASSERT_TRUE(oracle.IngestBatch(std::move(copy1)).ok());
    ASSERT_TRUE(sharded.IngestBatch(std::move(copy2)).ok());

    for (const QueryId id : live) {
      const auto want = oracle.Result(id);
      const auto got_ita = ita.Result(id);
      const auto got_sharded = sharded.Result(id);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got_ita.ok());
      ASSERT_TRUE(got_sharded.ok());
      ExpectSameAnswer(*got_ita, *want, id, epoch);
      ExpectSameAnswer(*got_sharded, *want, id, epoch);
    }

    // Live-population gauges track the churn exactly.
    std::size_t live_terms = 0;
    for (const auto& [id, n_terms] : terms_of) live_terms += n_terms;
    ASSERT_EQ(ita.stats().threshold_entries, live_terms);
  }

  // Slot reuse: hundreds of queries churned through, but the slab is
  // bounded by the most that were ever alive at once.
  EXPECT_LE(ita.query_state_slots(), high_water);
  EXPECT_EQ(ita.stats().query_state_slots, ita.query_state_slots());
  EXPECT_GT(ita_notifications, 0u);
  EXPECT_GT(sharded_notifications, 0u);
}

TEST(QueryChurnPropertyTest, ReregistrationAfterStormKeepsExactness) {
  // A tiny deterministic storm: the same query re-registered into a
  // recycled slot must see exactly the current window, with thresholds
  // rebuilt from scratch.
  ItaServer server{ServerOptions{WindowSpec::CountBased(4)}};
  Query q;
  q.k = 2;
  q.terms = {{1, 1.0}};

  for (int round = 0; round < 20; ++round) {
    const auto id = server.RegisterQuery(q);
    ASSERT_TRUE(id.ok());
    Document doc;
    doc.arrival_time = round;
    doc.composition = {{1, 0.1 * (round % 9 + 1)}};
    ASSERT_TRUE(server.Ingest(std::move(doc)).ok());
    const auto result = server.Result(*id);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->empty());
    ASSERT_TRUE(server.UnregisterQuery(*id).ok());
  }
  EXPECT_LE(server.query_state_slots(), 1u);
  EXPECT_EQ(server.stats().threshold_entries, 0u);
}

}  // namespace
}  // namespace ita
