// Block-max metadata invariants under randomized churn (DESIGN.md §10).
//
// InvertedList keeps one cached maximum per 64-entry block of its
// impact-ordered postings array; the boundary searches (FirstBelow /
// FirstAtOrBelow) binary-search that dense sampled array first and
// settle the answer with one SIMD scan inside a single candidate block.
// Every mutation path — single Insert/Erase, InsertOrdered merges,
// EraseOrdered compactions — must leave the metadata coherent, or a
// later boundary search silently lands in the wrong block.
//
// This suite churns one list through randomized interleavings of all
// four mutation paths against a naive sorted-vector model and asserts,
// after EVERY operation:
//   * ValidateBlockMax() — the white-box coherence hook (also wired into
//     the sim soak tier through ItaServer::ValidatePruningMetadata);
//   * the postings equal the model bit-for-bit in ImpactOrder;
//   * FirstBelow/FirstAtOrBelow match naive linear scans at adversarial
//     thetas (exact tie values and their neighborhoods) — the observable
//     behavior the metadata accelerates.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "index/inverted_list.h"

namespace ita {
namespace {

/// First index with weight < theta (strictly), scanning the model.
std::size_t NaiveFirstBelow(const std::vector<ImpactEntry>& v, double theta) {
  std::size_t i = 0;
  while (i < v.size() && v[i].weight >= theta) ++i;
  return i;
}

/// First index with weight <= theta, scanning the model.
std::size_t NaiveFirstAtOrBelow(const std::vector<ImpactEntry>& v,
                                double theta) {
  std::size_t i = 0;
  while (i < v.size() && v[i].weight > theta) ++i;
  return i;
}

class BlockMaxPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockMaxPropertyTest, MetadataAndBoundariesSurviveChurn) {
  std::mt19937_64 rng(GetParam());
  // A small discrete weight pool forces long tie runs — the adversarial
  // case for both the block boundary searches and the doc-tie walks.
  const auto random_weight = [&rng]() {
    return 0.25 * static_cast<double>(1 + rng() % 8);
  };
  const auto random_doc = [&rng]() {
    return static_cast<DocId>(rng() % 4'096);
  };

  InvertedList list;
  std::vector<ImpactEntry> model;  // sorted by ImpactOrder
  std::set<std::pair<double, DocId>> present;

  const auto model_insert = [&](const ImpactEntry& e) {
    const auto it =
        std::lower_bound(model.begin(), model.end(), e, ImpactOrder{});
    model.insert(it, e);
  };

  const auto check = [&](std::size_t step) {
    ASSERT_TRUE(list.ValidateBlockMax()) << "step " << step;
    ASSERT_EQ(list.size(), model.size()) << "step " << step;
    for (std::size_t i = 0; i < model.size(); ++i) {
      ASSERT_EQ(list.begin()[i].doc, model[i].doc) << "step " << step;
      ASSERT_EQ(list.begin()[i].weight, model[i].weight) << "step " << step;
    }
    // Boundary searches at every distinct weight (exact ties) and just
    // off them, plus the extremes.
    for (double theta : {0.0, 0.25, 1.0, 2.0, 2.25, 1.125, 0.24, 1e9}) {
      ASSERT_EQ(static_cast<std::size_t>(list.FirstBelow(theta) - list.begin()),
                NaiveFirstBelow(model, theta))
          << "step " << step << " theta " << theta;
      ASSERT_EQ(
          static_cast<std::size_t>(list.FirstAtOrBelow(theta) - list.begin()),
          NaiveFirstAtOrBelow(model, theta))
          << "step " << step << " theta " << theta;
    }
  };

  for (std::size_t step = 0; step < 600; ++step) {
    switch (rng() % 4) {
      case 0: {  // single insert
        const ImpactEntry e{random_weight(), random_doc()};
        if (!present.insert({e.weight, e.doc}).second) break;
        ASSERT_TRUE(list.Insert(e.doc, e.weight));
        model_insert(e);
        break;
      }
      case 1: {  // single erase of a present posting
        if (model.empty()) break;
        const ImpactEntry e = model[rng() % model.size()];
        ASSERT_TRUE(list.Erase(e.doc, e.weight));
        model.erase(std::find_if(model.begin(), model.end(),
                                 [&](const ImpactEntry& m) {
                                   return m.doc == e.doc &&
                                          m.weight == e.weight;
                                 }));
        present.erase({e.weight, e.doc});
        break;
      }
      case 2: {  // ordered bulk insert (fresh postings only)
        std::vector<ImpactEntry> run;
        const std::size_t want = 1 + rng() % 96;  // crosses block edges
        while (run.size() < want) {
          const ImpactEntry e{random_weight(), random_doc()};
          if (present.insert({e.weight, e.doc}).second) run.push_back(e);
        }
        std::sort(run.begin(), run.end(), ImpactOrder{});
        ASSERT_EQ(list.InsertOrdered(run.begin(), run.end()), run.size());
        for (const ImpactEntry& e : run) model_insert(e);
        break;
      }
      default: {  // ordered bulk erase of a random sample
        if (model.empty()) break;
        std::set<std::size_t> picks;
        const std::size_t want = 1 + rng() % std::min<std::size_t>(96, model.size());
        while (picks.size() < want) picks.insert(rng() % model.size());
        std::vector<ImpactEntry> run;
        for (const std::size_t i : picks) run.push_back(model[i]);
        // picks ascend in model order == ImpactOrder already.
        ASSERT_EQ(list.EraseOrdered(run.begin(), run.end()), run.size());
        for (auto it = picks.rbegin(); it != picks.rend(); ++it) {
          present.erase({model[*it].weight, model[*it].doc});
          model.erase(model.begin() + static_cast<std::ptrdiff_t>(*it));
        }
        break;
      }
    }
    check(step);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockMaxPropertyTest,
                         ::testing::Values(1u, 42u, 1337u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed_" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace ita
