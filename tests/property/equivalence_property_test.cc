// The central correctness property of the reproduction: after EVERY stream
// event, for EVERY registered query, the results maintained incrementally
// by ItaServer and NaiveServer must equal the brute-force OracleServer's
// recomputed top-k — same size, same score sequence (ties may permute
// equal-scored documents, so scores are compared, and membership is
// checked for every strictly-above-S_k document).
//
// Scenarios sweep window kind/size, k, query length, dictionary size and
// weighting scheme, with small dictionaries to force heavy term collisions
// and (for raw-tf) massive score/weight ties.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "../testing/builders.h"
#include "core/ita_server.h"
#include "core/naive_server.h"
#include "core/oracle_server.h"
#include "stream/corpus.h"

namespace ita {
namespace {

struct Scenario {
  std::string label;
  std::uint64_t seed = 1;
  std::size_t dictionary = 300;
  std::size_t n_queries = 12;
  std::size_t terms_per_query = 4;
  int k = 5;
  WindowSpec window = WindowSpec::CountBased(40);
  std::size_t events = 400;
  WeightingScheme scheme = WeightingScheme::kCosine;
  bool churn_queries = false;  // register/unregister queries mid-stream
  bool rollup = true;
  std::size_t hot_max_term = 0;     // restrict query terms to Zipf head
  bool naive_skip_rescans = false;  // Naive futile-rescan optimization
};

std::ostream& operator<<(std::ostream& os, const Scenario& s) {
  return os << s.label;
}

class EquivalenceTest : public ::testing::TestWithParam<Scenario> {};

void ExpectSameAnswer(const std::vector<ResultEntry>& got,
                      const std::vector<ResultEntry>& want,
                      const std::string& who, QueryId q, std::size_t event) {
  ASSERT_EQ(got.size(), want.size())
      << who << " result size mismatch, query " << q << ", event " << event;
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Scores must match exactly position by position (ties permute only
    // equal scores, leaving the score sequence unchanged). Both sides
    // compute scores with the same ScoreDocument, so exact comparison is
    // appropriate; 1e-12 absorbs nothing but accidental reordering.
    ASSERT_NEAR(got[i].score, want[i].score, 1e-12)
        << who << " score mismatch at rank " << i << ", query " << q
        << ", event " << event;
  }
  // Scores must be correctly ordered.
  for (std::size_t i = 1; i < got.size(); ++i) {
    ASSERT_GE(got[i - 1].score, got[i].score);
  }
}

TEST_P(EquivalenceTest, ItaAndNaiveMatchOracleAfterEveryEvent) {
  const Scenario& s = GetParam();

  SyntheticCorpusOptions copts;
  copts.dictionary_size = s.dictionary;
  copts.min_length = 3;
  copts.max_length = 30;
  copts.length_lognormal_mu = 2.3;  // median ~10 distinct terms
  copts.length_lognormal_sigma = 0.5;
  copts.scheme = s.scheme;
  copts.seed = s.seed;
  SyntheticCorpusGenerator corpus(copts);

  QueryWorkloadOptions qopts;
  qopts.terms_per_query = s.terms_per_query;
  qopts.k = s.k;
  qopts.scheme = s.scheme;
  qopts.seed = s.seed * 7919 + 17;
  qopts.max_term = s.hot_max_term;
  QueryWorkloadGenerator queries(s.dictionary, qopts);

  ItaTuning tuning;
  tuning.enable_rollup = s.rollup;
  ItaServer ita_server{ServerOptions{s.window}, tuning};
  NaiveTuning naive_tuning;
  naive_tuning.skip_complete_rescans = s.naive_skip_rescans;
  NaiveServer naive{ServerOptions{s.window}, naive_tuning};
  OracleServer oracle{ServerOptions{s.window}};
  std::vector<ContinuousSearchServer*> servers = {&ita_server, &naive, &oracle};

  std::vector<QueryId> active;
  const auto register_one = [&] {
    const Query q = queries.NextQuery();
    QueryId id = kInvalidQueryId;
    for (ContinuousSearchServer* server : servers) {
      const auto got = server->RegisterQuery(q);
      ASSERT_TRUE(got.ok());
      if (id == kInvalidQueryId) {
        id = *got;
      } else {
        ASSERT_EQ(id, *got);  // identical registration order -> same ids
      }
    }
    active.push_back(id);
  };

  for (std::size_t i = 0; i < s.n_queries; ++i) register_one();

  Rng churn_rng(s.seed * 31 + 5);
  for (std::size_t event = 0; event < s.events; ++event) {
    const Document doc = corpus.NextDocument(static_cast<Timestamp>(event * 100));
    for (ContinuousSearchServer* server : servers) {
      ASSERT_TRUE(server->Ingest(doc).ok());
    }

    if (s.churn_queries && event % 37 == 36 && !active.empty()) {
      // Unregister a random active query everywhere, then add a new one.
      const std::size_t victim = churn_rng.UniformInt(0, active.size() - 1);
      for (ContinuousSearchServer* server : servers) {
        ASSERT_TRUE(server->UnregisterQuery(active[victim]).ok());
      }
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(victim));
      register_one();
    }

    for (const QueryId q : active) {
      const auto want = oracle.Result(q);
      ASSERT_TRUE(want.ok());
      const auto ita_got = ita_server.Result(q);
      ASSERT_TRUE(ita_got.ok());
      ExpectSameAnswer(*ita_got, *want, "ita", q, event);
      const auto naive_got = naive.Result(q);
      ASSERT_TRUE(naive_got.ok());
      ExpectSameAnswer(*naive_got, *want, "naive", q, event);
    }
  }

  // Sanity: the stream actually exercised expirations and (for ITA) the
  // threshold machinery.
  if (s.window.kind == WindowSpec::Kind::kCountBased && s.events > s.window.count) {
    EXPECT_GT(ita_server.stats().documents_expired, 0u);
  }
}

std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> all;

  Scenario base;
  base.label = "baseline_cosine";
  all.push_back(base);

  for (const std::uint64_t seed : {2ull, 3ull, 4ull}) {
    Scenario s = base;
    s.seed = seed;
    s.label = "seed_" + std::to_string(seed);
    all.push_back(s);
  }

  {
    Scenario s = base;
    s.label = "tiny_window";
    s.window = WindowSpec::CountBased(5);
    s.events = 300;
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "window_of_one";
    s.window = WindowSpec::CountBased(1);
    s.events = 150;
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "large_window_short_run";
    s.window = WindowSpec::CountBased(200);
    s.events = 320;
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "time_window";
    s.window = WindowSpec::TimeBased(3500);  // ~35 documents at 100us spacing
    s.events = 350;
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "k1";
    s.k = 1;
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "k_large_vs_window";
    s.k = 60;  // often exceeds matcher count
    s.window = WindowSpec::CountBased(30);
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "single_term_queries";
    s.terms_per_query = 1;
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "long_queries";
    s.terms_per_query = 12;
    s.n_queries = 8;
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "tiny_dictionary_collisions";
    s.dictionary = 40;
    s.events = 300;
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "raw_tf_tie_storm";
    s.scheme = WeightingScheme::kRawTf;
    s.dictionary = 30;
    s.terms_per_query = 3;
    s.events = 250;
    s.window = WindowSpec::CountBased(25);
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "bm25";
    s.scheme = WeightingScheme::kBm25;
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "query_churn";
    s.churn_queries = true;
    s.events = 450;
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "no_rollup_ablation";
    s.rollup = false;
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "no_rollup_tiny_dict";
    s.rollup = false;
    s.dictionary = 40;
    all.push_back(s);
  }
  {
    // Queries over the Zipf head: every document matches several queries,
    // stressing the roll-up / refill interplay at high density.
    Scenario s = base;
    s.label = "hot_queries";
    s.dictionary = 500;
    s.hot_max_term = 20;
    s.events = 300;
    all.push_back(s);
  }
  {
    Scenario s = base;
    s.label = "hot_queries_no_rollup";
    s.dictionary = 500;
    s.hot_max_term = 20;
    s.rollup = false;
    s.events = 300;
    all.push_back(s);
  }
  {
    // The Naive futile-rescan optimization must never change answers.
    Scenario s = base;
    s.label = "naive_skip_rescans";
    s.naive_skip_rescans = true;
    all.push_back(s);
  }
  return all;
}

INSTANTIATE_TEST_SUITE_P(Scenarios, EquivalenceTest,
                         ::testing::ValuesIn(MakeScenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace ita
