// Time-based windows with arbitrary AdvanceTime interleavings: arrivals
// and pure clock ticks (quiet periods, bursts at one instant, ticks that
// expire many documents at once) must keep ITA and Naive exactly
// equivalent to the oracle. This is the paper's "can be easily adapted to
// time-based windows" claim under adversarial schedules.

#include <gtest/gtest.h>

#include <vector>

#include "../testing/builders.h"
#include "core/ita_server.h"
#include "core/naive_server.h"
#include "core/oracle_server.h"
#include "stream/corpus.h"

namespace ita {
namespace {

class TimeWindowScheduleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimeWindowScheduleTest, TickArrivalInterleavingsStayExact) {
  const std::uint64_t seed = GetParam();

  SyntheticCorpusOptions copts;
  copts.dictionary_size = 150;
  copts.min_length = 3;
  copts.max_length = 20;
  copts.length_lognormal_mu = 2.0;
  copts.seed = seed;
  SyntheticCorpusGenerator corpus(copts);

  QueryWorkloadOptions qopts;
  qopts.terms_per_query = 4;
  qopts.k = 4;
  qopts.seed = seed + 5;
  QueryWorkloadGenerator generator(150, qopts);

  const ServerOptions options{WindowSpec::TimeBased(700)};
  ItaServer ita_server{options};
  NaiveServer naive{options};
  OracleServer oracle{options};
  std::vector<ContinuousSearchServer*> servers = {&ita_server, &naive, &oracle};

  std::vector<QueryId> ids;
  for (int i = 0; i < 8; ++i) {
    const Query q = generator.NextQuery();
    QueryId id = kInvalidQueryId;
    for (auto* server : servers) {
      const auto got = server->RegisterQuery(q);
      ASSERT_TRUE(got.ok());
      id = *got;
    }
    ids.push_back(id);
  }

  Rng rng(seed * 13 + 1);
  Timestamp now = 0;
  for (int event = 0; event < 400; ++event) {
    const int action = static_cast<int>(rng.UniformInt(0, 9));
    if (action < 6) {
      // Arrival; sometimes several documents share one instant (burst).
      if (!rng.NextBool(0.2)) now += rng.UniformInt(1, 120);
      const Document doc = corpus.NextDocument(now);
      for (auto* server : servers) ASSERT_TRUE(server->Ingest(doc).ok());
    } else if (action < 9) {
      // Quiet tick; occasionally a long silence that clears everything.
      now += rng.NextBool(0.15) ? 2000 : rng.UniformInt(1, 300);
      for (auto* server : servers) ASSERT_TRUE(server->AdvanceTime(now).ok());
    } else {
      // Zero-length tick (no-op).
      for (auto* server : servers) ASSERT_TRUE(server->AdvanceTime(now).ok());
    }

    ASSERT_EQ(ita_server.window_size(), oracle.window_size());
    ASSERT_EQ(naive.window_size(), oracle.window_size());
    for (const QueryId id : ids) {
      const auto want = oracle.Result(id);
      const auto got_ita = ita_server.Result(id);
      const auto got_naive = naive.Result(id);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got_ita.ok());
      ASSERT_TRUE(got_naive.ok());
      ASSERT_EQ(got_ita->size(), want->size()) << "event " << event;
      ASSERT_EQ(got_naive->size(), want->size()) << "event " << event;
      for (std::size_t i = 0; i < want->size(); ++i) {
        ASSERT_NEAR((*got_ita)[i].score, (*want)[i].score, 1e-12)
            << "ita, event " << event << ", rank " << i;
        ASSERT_NEAR((*got_naive)[i].score, (*want)[i].score, 1e-12)
            << "naive, event " << event << ", rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeWindowScheduleTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ita
