// White-box invariant checks on ItaServer (DESIGN.md §2), verified after
// every stream event on randomized workloads:
//
//   I1  R(Q) contains exactly the valid documents with some composition
//       weight >= the corresponding local threshold, each with its exact
//       score;
//   I2  tau(Q) = sum_t w_{Q,t} * theta_{Q,t} <= S_k(Q) whenever |R| >= k,
//       and tau = 0 whenever |R| < k (lists exhausted);
//   I3  the reported top-k is a prefix of R ordered by (score desc, doc
//       desc), and every valid document outside R scores strictly below
//       tau.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "../testing/builders.h"
#include "core/ita_server.h"
#include "stream/corpus.h"

namespace ita {
namespace {

struct InvariantScenario {
  std::string label;
  std::uint64_t seed = 1;
  std::size_t dictionary = 120;
  std::size_t n_queries = 8;
  std::size_t terms_per_query = 4;
  int k = 4;
  WindowSpec window = WindowSpec::CountBased(30);
  std::size_t events = 300;
  bool rollup = true;
};

std::ostream& operator<<(std::ostream& os, const InvariantScenario& s) {
  return os << s.label;
}

class ItaInvariantTest : public ::testing::TestWithParam<InvariantScenario> {};

void CheckInvariants(const ItaServer& server,
                     const std::unordered_map<QueryId, Query>& queries,
                     std::size_t event) {
  for (const auto& [qid, query] : queries) {
    const auto candidates = server.Candidates(qid);
    ASSERT_TRUE(candidates.ok());
    const auto tau_or = server.InfluenceThreshold(qid);
    ASSERT_TRUE(tau_or.ok());
    const double tau = *tau_or;

    // Gather thresholds and check tau consistency.
    double tau_check = 0.0;
    std::vector<double> theta(query.terms.size());
    for (std::size_t i = 0; i < query.terms.size(); ++i) {
      const auto t = server.LocalThreshold(qid, query.terms[i].term);
      ASSERT_TRUE(t.ok());
      theta[i] = *t;
      ASSERT_TRUE(std::isfinite(theta[i]));
      ASSERT_GE(theta[i], 0.0);
      tau_check += query.terms[i].weight * theta[i];
    }
    ASSERT_NEAR(tau, tau_check, 1e-12) << "tau cache drifted, query " << qid;

    std::unordered_map<DocId, double> in_r;
    for (const ResultEntry& e : *candidates) in_r.emplace(e.doc, e.score);

    // I1 over every valid document + the "outside R scores < tau" bound.
    for (const DocumentView doc : server.documents()) {
      bool monitored = false;
      for (std::size_t i = 0; i < query.terms.size(); ++i) {
        // Only terms the document actually contains have impact entries;
        // absent terms (weight 0) are never "ahead of the threshold".
        const double w = CompositionWeight(doc.composition, query.terms[i].term);
        if (w > 0.0 && w >= theta[i]) {
          monitored = true;
          break;
        }
      }
      const auto it = in_r.find(doc.id);
      const double score = ScoreDocument(doc.composition, query.terms);
      if (monitored) {
        ASSERT_NE(it, in_r.end())
            << "I1: monitored doc " << doc.id << " missing from R, query "
            << qid << ", event " << event;
        ASSERT_NEAR(it->second, score, 1e-12)
            << "I1: stale score for doc " << doc.id;
      } else {
        ASSERT_EQ(it, in_r.end())
            << "I1: unmonitored doc " << doc.id << " retained in R, query "
            << qid << ", event " << event;
        ASSERT_LT(score, tau + 1e-12)
            << "I3: missing doc " << doc.id << " could outscore tau";
      }
    }

    // I2: tau <= S_k when k candidates exist; tau == 0 otherwise.
    const std::size_t k = static_cast<std::size_t>(query.k);
    if (candidates->size() >= k) {
      const double sk = (*candidates)[k - 1].score;
      ASSERT_LE(tau, sk + 1e-12)
          << "I2 violated: tau " << tau << " > S_k " << sk << ", query " << qid;
    } else {
      ASSERT_EQ(tau, 0.0)
          << "I2 violated: under-filled R with positive tau, query " << qid;
    }

    // I3: the reported result is the top-k prefix of the candidates.
    const auto result = server.Result(qid);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), std::min(k, candidates->size()));
    for (std::size_t i = 0; i < result->size(); ++i) {
      ASSERT_EQ((*result)[i].doc, (*candidates)[i].doc);
      if (i > 0) {
        ASSERT_GE((*result)[i - 1].score, (*result)[i].score);
      }
    }
  }
}

TEST_P(ItaInvariantTest, HoldAfterEveryEvent) {
  const InvariantScenario& s = GetParam();

  SyntheticCorpusOptions copts;
  copts.dictionary_size = s.dictionary;
  copts.min_length = 3;
  copts.max_length = 25;
  copts.length_lognormal_mu = 2.2;
  copts.seed = s.seed;
  SyntheticCorpusGenerator corpus(copts);

  QueryWorkloadOptions qopts;
  qopts.terms_per_query = s.terms_per_query;
  qopts.k = s.k;
  qopts.seed = s.seed + 1000;
  QueryWorkloadGenerator generator(s.dictionary, qopts);

  ItaTuning tuning;
  tuning.enable_rollup = s.rollup;
  ItaServer server{ServerOptions{s.window}, tuning};

  std::unordered_map<QueryId, Query> queries;
  for (std::size_t i = 0; i < s.n_queries; ++i) {
    const Query q = generator.NextQuery();
    const auto id = server.RegisterQuery(q);
    ASSERT_TRUE(id.ok());
    queries.emplace(*id, q);
  }
  CheckInvariants(server, queries, 0);

  for (std::size_t event = 1; event <= s.events; ++event) {
    const Document doc = corpus.NextDocument(static_cast<Timestamp>(event * 50));
    ASSERT_TRUE(server.Ingest(doc).ok());
    CheckInvariants(server, queries, event);
  }
}

std::vector<InvariantScenario> MakeInvariantScenarios() {
  std::vector<InvariantScenario> all;
  InvariantScenario base;
  base.label = "base";
  all.push_back(base);
  for (const std::uint64_t seed : {7ull, 11ull, 13ull}) {
    InvariantScenario s = base;
    s.seed = seed;
    s.label = "seed_" + std::to_string(seed);
    all.push_back(s);
  }
  {
    InvariantScenario s = base;
    s.label = "no_rollup";
    s.rollup = false;
    all.push_back(s);
  }
  {
    InvariantScenario s = base;
    s.label = "collision_heavy";
    s.dictionary = 30;
    s.events = 250;
    all.push_back(s);
  }
  {
    InvariantScenario s = base;
    s.label = "time_window";
    s.window = WindowSpec::TimeBased(1300);
    all.push_back(s);
  }
  {
    InvariantScenario s = base;
    s.label = "k1";
    s.k = 1;
    all.push_back(s);
  }
  return all;
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ItaInvariantTest,
                         ::testing::ValuesIn(MakeInvariantScenarios()),
                         [](const ::testing::TestParamInfo<InvariantScenario>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace ita
