// The crash-recovery property (DESIGN.md §13), fuzzed across the whole
// scenario catalog: kill the engine at RANDOMIZED epoch boundaries and
// mid-log positions — every crash phase, sequential and sharded S ∈
// {2, 4} with aggressive rebalancing — and the recovered run must be
// observably identical to an uninterrupted twin: byte-equal
// notification fingerprints, equal final results, and a clean forced
// oracle differential (which re-validates the I1/I2 threshold
// invariants on the restored ITA state). Failures print the
// crash-restore repro line (--scenario= --seed= --crash-epoch=
// --phase=) for direct replay.
//
// Soak tier: tests/CMakeLists.txt wires this suite into the `soak`
// ctest label.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "exec/sharded_server.h"
#include "sim/crash_restore.h"
#include "sim/event_stream.h"
#include "sim/scenario.h"

namespace ita::sim {
namespace {

constexpr CrashPhase kAllPhases[] = {
    CrashPhase::kBeforeLogAppend,
    CrashPhase::kTornLogAppend,
    CrashPhase::kAfterLogAppend,
    CrashPhase::kAfterApply,
};

/// Epochs the preset's stream produces at the trimmed event count —
/// needed to place random kills strictly inside the stream.
std::uint64_t EpochCountOf(const ScenarioSpec& spec) {
  EventStreamGenerator generator(spec);
  while (generator.NextEpoch().has_value()) {
  }
  return generator.epochs_generated();
}

/// Runs `kills` randomized kill/restore cycles for one preset at one
/// shard count. `rng` drives every random choice, so a failing draw
/// reproduces from the test's fixed master seed plus the printed line.
void FuzzPreset(const ScenarioFactory& factory, std::size_t shards, Rng& rng,
                std::size_t kills) {
  ScenarioSpec spec = factory.make(/*seed=*/0x5EED0 + shards);
  spec.events = 2'500;
  const std::uint64_t epochs = EpochCountOf(spec);
  ASSERT_GT(epochs, 4u) << factory.name;

  for (std::size_t kill = 0; kill < kills; ++kill) {
    CrashRestoreOptions options;
    options.shards = shards;
    options.rebalance.mode = exec::RebalanceMode::kAggressive;
    // Random snapshot cadence and kill point: crashes land before the
    // first snapshot, right on cadence boundaries, and mid-log alike.
    options.snapshot_every_epochs = 1 + rng.Next() % 9;
    options.crash_epoch = rng.Next() % epochs;
    options.crash_phase = kAllPhases[rng.Next() % 4];
    options.torn_cut_bytes = 1 + rng.Next() % 64;  // mid-log tear positions

    CrashRestoreRunner runner(spec, options);
    const auto report = runner.Run();
    ASSERT_TRUE(report.ok())
        << factory.name << ": " << report.status().ToString() << "\n  rerun: "
        << CrashRestoreRunner::ReproLine(spec, options);
    EXPECT_GT(report->live_queries, 0u) << factory.name;
  }
}

TEST(CrashRestorePropertyTest, SequentialSurvivesRandomKillsAcrossCatalog) {
  Rng rng(20260808);
  for (const ScenarioFactory& factory : ScenarioCatalog()) {
    FuzzPreset(factory, /*shards=*/0, rng, /*kills=*/4);
  }
}

TEST(CrashRestorePropertyTest, ShardedSurvivesRandomKillsAcrossCatalog) {
  Rng rng(80806202);
  for (const ScenarioFactory& factory : ScenarioCatalog()) {
    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      FuzzPreset(factory, shards, rng, /*kills=*/2);
    }
  }
}

TEST(CrashRestorePropertyTest, EveryPhaseAtTheSameBoundaryConverges) {
  // Same stream, same kill epoch, all four phases: each recovery shape
  // must land on the same notification fingerprint — the phase of the
  // crash is unobservable downstream.
  ScenarioSpec spec = MixedStressScenario(424242);
  spec.events = 2'000;
  const std::uint64_t epochs = EpochCountOf(spec);

  std::uint64_t want_fp = 0;
  bool first = true;
  for (const CrashPhase phase : kAllPhases) {
    CrashRestoreOptions options;
    options.shards = 2;
    options.snapshot_every_epochs = 5;
    options.crash_epoch = epochs / 2;
    options.crash_phase = phase;
    const auto report = CrashRestoreRunner(spec, options).Run();
    ASSERT_TRUE(report.ok())
        << CrashPhaseName(phase) << ": " << report.status().ToString();
    if (first) {
      want_fp = report->notification_fingerprint;
      first = false;
    } else {
      EXPECT_EQ(report->notification_fingerprint, want_fp)
          << CrashPhaseName(phase);
    }
  }
}

}  // namespace
}  // namespace ita::sim
