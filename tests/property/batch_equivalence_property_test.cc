// The batch-ingest exactness property: IngestBatch must be semantically
// identical to one-at-a-time Ingest. For every strategy (ITA with its real
// batch hooks, Naive and Oracle through the default per-document loops), a
// batched server and a sequential server consume the same randomized
// stream; after every epoch all registered queries must report identical
// results (same sizes, same score sequences), the assigned document ids
// must match, and both must agree with a brute-force OracleServer.
//
// Scenarios sweep batch size (including batches larger than the window,
// which exercises the transient-document path), window kind, weighting
// scheme and the roll-up ablation.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "../testing/builders.h"
#include "core/ita_server.h"
#include "core/naive_server.h"
#include "core/oracle_server.h"
#include "stream/corpus.h"

namespace ita {
namespace {

struct BatchScenario {
  std::string label;
  std::uint64_t seed = 1;
  std::size_t dictionary = 300;
  std::size_t n_queries = 10;
  std::size_t terms_per_query = 4;
  int k = 5;
  WindowSpec window = WindowSpec::CountBased(40);
  std::size_t events = 360;
  std::size_t batch_size = 16;
  WeightingScheme scheme = WeightingScheme::kCosine;
  bool rollup = true;
  std::size_t hot_max_term = 0;
  bool advance_time_between_epochs = false;  // time-based windows only
};

std::ostream& operator<<(std::ostream& os, const BatchScenario& s) {
  return os << s.label;
}

class BatchEquivalenceTest : public ::testing::TestWithParam<BatchScenario> {};

using ServerFactory =
    std::function<std::unique_ptr<ContinuousSearchServer>(const BatchScenario&)>;

std::vector<std::pair<std::string, ServerFactory>> Strategies() {
  return {
      {"ita",
       [](const BatchScenario& s) -> std::unique_ptr<ContinuousSearchServer> {
         ItaTuning tuning;
         tuning.enable_rollup = s.rollup;
         return std::make_unique<ItaServer>(ServerOptions{s.window}, tuning);
       }},
      {"naive",
       [](const BatchScenario& s) -> std::unique_ptr<ContinuousSearchServer> {
         return std::make_unique<NaiveServer>(ServerOptions{s.window});
       }},
      {"oracle",
       [](const BatchScenario& s) -> std::unique_ptr<ContinuousSearchServer> {
         return std::make_unique<OracleServer>(ServerOptions{s.window});
       }},
  };
}

void ExpectSameAnswer(const std::vector<ResultEntry>& got,
                      const std::vector<ResultEntry>& want,
                      const std::string& who, QueryId q, std::size_t epoch) {
  ASSERT_EQ(got.size(), want.size())
      << who << " result size mismatch, query " << q << ", epoch " << epoch;
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Ties permute only equal scores, so the score sequences must match
    // exactly position by position.
    ASSERT_NEAR(got[i].score, want[i].score, 1e-12)
        << who << " score mismatch at rank " << i << ", query " << q
        << ", epoch " << epoch;
  }
}

TEST_P(BatchEquivalenceTest, BatchMatchesSequentialAndOracle) {
  const BatchScenario& s = GetParam();

  for (const auto& [name, make_server] : Strategies()) {
    SCOPED_TRACE(name);

    SyntheticCorpusOptions copts;
    copts.dictionary_size = s.dictionary;
    copts.min_length = 3;
    copts.max_length = 30;
    copts.length_lognormal_mu = 2.3;
    copts.length_lognormal_sigma = 0.5;
    copts.scheme = s.scheme;
    copts.seed = s.seed;
    SyntheticCorpusGenerator corpus(copts);

    QueryWorkloadOptions qopts;
    qopts.terms_per_query = s.terms_per_query;
    qopts.k = s.k;
    qopts.scheme = s.scheme;
    qopts.seed = s.seed * 7919 + 17;
    qopts.max_term = s.hot_max_term;
    QueryWorkloadGenerator query_gen(s.dictionary, qopts);

    std::unique_ptr<ContinuousSearchServer> sequential = make_server(s);
    std::unique_ptr<ContinuousSearchServer> batched = make_server(s);
    OracleServer oracle{ServerOptions{s.window}};

    std::vector<QueryId> active;
    for (std::size_t i = 0; i < s.n_queries; ++i) {
      const Query q = query_gen.NextQuery();
      const auto a = sequential->RegisterQuery(q);
      const auto b = batched->RegisterQuery(q);
      const auto c = oracle.RegisterQuery(q);
      ASSERT_TRUE(a.ok() && b.ok() && c.ok());
      ASSERT_EQ(*a, *b);
      ASSERT_EQ(*a, *c);
      active.push_back(*a);
    }

    Timestamp now = 0;
    std::size_t epoch = 0;
    for (std::size_t done = 0; done < s.events; ++epoch) {
      const std::size_t n =
          std::min(s.batch_size, s.events - done);
      std::vector<Document> batch;
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(corpus.NextDocument(now += 100));
      }
      done += n;

      std::vector<DocId> sequential_ids;
      for (const Document& doc : batch) {
        const auto id = sequential->Ingest(doc);
        ASSERT_TRUE(id.ok());
        sequential_ids.push_back(*id);
        ASSERT_TRUE(oracle.Ingest(doc).ok());
      }
      const auto batch_ids = batched->IngestBatch(batch);
      ASSERT_TRUE(batch_ids.ok());
      ASSERT_EQ(*batch_ids, sequential_ids)
          << "id sequence diverged at epoch " << epoch;

      if (s.advance_time_between_epochs && epoch % 3 == 2) {
        // Jump the clock far enough to expire part of the window without
        // an accompanying arrival (time-based windows only).
        now += s.window.duration / 2;
        ASSERT_TRUE(sequential->AdvanceTime(now).ok());
        ASSERT_TRUE(batched->AdvanceTime(now).ok());
        ASSERT_TRUE(oracle.AdvanceTime(now).ok());
      }

      ASSERT_EQ(batched->window_size(), sequential->window_size());
      for (const QueryId q : active) {
        const auto want = oracle.Result(q);
        ASSERT_TRUE(want.ok());
        const auto seq_got = sequential->Result(q);
        ASSERT_TRUE(seq_got.ok());
        const auto bat_got = batched->Result(q);
        ASSERT_TRUE(bat_got.ok());
        ExpectSameAnswer(*seq_got, *want, name + "/sequential", q, epoch);
        ExpectSameAnswer(*bat_got, *want, name + "/batched", q, epoch);
        // Batched and sequential must agree on membership too, not just
        // scores: every strictly-above-S_k document is order-forced.
        ASSERT_EQ(testing::Ids(*bat_got).size(), testing::Ids(*seq_got).size());
      }
    }

    // The stream must actually have exercised expirations.
    if (s.window.kind == WindowSpec::Kind::kCountBased &&
        s.events > s.window.count) {
      EXPECT_GT(batched->stats().documents_expired, 0u);
    }
    EXPECT_EQ(batched->stats().documents_ingested,
              sequential->stats().documents_ingested);
    EXPECT_EQ(batched->stats().documents_expired,
              sequential->stats().documents_expired);
    EXPECT_GT(batched->stats().batches_ingested, 0u);
  }
}

// The epoch notification contract: the listener fires at most once per
// query per epoch, against the epoch-final result.
TEST(BatchNotificationTest, ListenerFlushesOncePerEpoch) {
  SyntheticCorpusOptions copts;
  copts.dictionary_size = 50;
  copts.min_length = 3;
  copts.max_length = 12;
  copts.length_lognormal_mu = 1.8;
  copts.seed = 9;
  SyntheticCorpusGenerator corpus(copts);

  QueryWorkloadOptions qopts;
  qopts.terms_per_query = 3;
  qopts.k = 3;
  qopts.seed = 77;
  QueryWorkloadGenerator query_gen(50, qopts);

  ItaServer server{ServerOptions{WindowSpec::CountBased(20)}};
  std::vector<QueryId> queries;
  for (int i = 0; i < 6; ++i) {
    const auto id = server.RegisterQuery(query_gen.NextQuery());
    ASSERT_TRUE(id.ok());
    queries.push_back(*id);
  }

  std::vector<std::pair<QueryId, std::vector<ResultEntry>>> fired;
  server.SetResultListener(
      [&fired](QueryId q, const std::vector<ResultEntry>& result) {
        fired.emplace_back(q, result);
      });

  Timestamp now = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    std::vector<Document> batch;
    for (int i = 0; i < 8; ++i) batch.push_back(corpus.NextDocument(now += 100));
    fired.clear();
    ASSERT_TRUE(server.IngestBatch(std::move(batch)).ok());

    std::vector<QueryId> seen;
    for (const auto& [q, result] : fired) {
      // At most one notification per query per epoch.
      for (const QueryId prior : seen) ASSERT_NE(prior, q);
      seen.push_back(q);
      // The notified result is the epoch-final result.
      const auto current = server.Result(q);
      ASSERT_TRUE(current.ok());
      ASSERT_EQ(result.size(), current->size());
      for (std::size_t i = 0; i < result.size(); ++i) {
        ASSERT_EQ(result[i].doc, (*current)[i].doc);
        ASSERT_EQ(result[i].score, (*current)[i].score);
      }
    }
  }
}

// Empty batches are well-defined no-ops.
TEST(BatchEdgeCaseTest, EmptyBatchIsNoOp) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(5)}};
  const auto ids = server.IngestBatch({});
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(ids->empty());
  EXPECT_EQ(server.stats().batches_ingested, 0u);
}

// Out-of-order arrival times inside a batch are rejected atomically.
TEST(BatchEdgeCaseTest, NonMonotoneBatchRejected) {
  ItaServer server{ServerOptions{WindowSpec::CountBased(5)}};
  std::vector<Document> batch;
  batch.push_back(testing::MakeDoc({{1, 0.5}}, 200));
  batch.push_back(testing::MakeDoc({{2, 0.5}}, 100));
  const auto ids = server.IngestBatch(std::move(batch));
  ASSERT_FALSE(ids.ok());
  EXPECT_TRUE(ids.status().IsInvalidArgument());
  EXPECT_EQ(server.window_size(), 0u);
  EXPECT_EQ(server.stats().documents_ingested, 0u);
}

std::vector<BatchScenario> MakeBatchScenarios() {
  std::vector<BatchScenario> all;

  BatchScenario base;
  base.label = "baseline_batch16";
  all.push_back(base);

  for (const std::size_t batch : {1u, 3u, 7u, 64u}) {
    BatchScenario s = base;
    s.batch_size = batch;
    s.label = "batch_" + std::to_string(batch);
    all.push_back(s);
  }
  for (const std::uint64_t seed : {2ull, 3ull}) {
    BatchScenario s = base;
    s.seed = seed;
    s.label = "seed_" + std::to_string(seed);
    all.push_back(s);
  }
  {
    // Batch larger than the window: exercises transient documents (arrive
    // and expire inside one epoch).
    BatchScenario s = base;
    s.label = "batch_overflows_window";
    s.batch_size = 130;
    s.window = WindowSpec::CountBased(40);
    all.push_back(s);
  }
  {
    BatchScenario s = base;
    s.label = "window_of_one";
    s.window = WindowSpec::CountBased(1);
    s.batch_size = 8;
    s.events = 160;
    all.push_back(s);
  }
  {
    BatchScenario s = base;
    s.label = "time_window";
    s.window = WindowSpec::TimeBased(3500);
    all.push_back(s);
  }
  {
    BatchScenario s = base;
    s.label = "time_window_with_advances";
    s.window = WindowSpec::TimeBased(3500);
    s.advance_time_between_epochs = true;
    all.push_back(s);
  }
  {
    BatchScenario s = base;
    s.label = "raw_tf_tie_storm";
    s.scheme = WeightingScheme::kRawTf;
    s.dictionary = 30;
    s.terms_per_query = 3;
    s.window = WindowSpec::CountBased(25);
    s.events = 250;
    all.push_back(s);
  }
  {
    BatchScenario s = base;
    s.label = "bm25";
    s.scheme = WeightingScheme::kBm25;
    all.push_back(s);
  }
  {
    BatchScenario s = base;
    s.label = "no_rollup_ablation";
    s.rollup = false;
    all.push_back(s);
  }
  {
    // Dense matching: hot queries over the Zipf head, so every batch
    // bucket probes trees that answer with many candidate queries.
    BatchScenario s = base;
    s.label = "hot_queries";
    s.dictionary = 500;
    s.hot_max_term = 20;
    s.events = 280;
    all.push_back(s);
  }
  {
    BatchScenario s = base;
    s.label = "k1_tiny_dictionary";
    s.k = 1;
    s.dictionary = 40;
    all.push_back(s);
  }
  {
    BatchScenario s = base;
    s.label = "k_exceeds_matchers";
    s.k = 60;
    s.window = WindowSpec::CountBased(30);
    all.push_back(s);
  }
  return all;
}

INSTANTIATE_TEST_SUITE_P(BatchScenarios, BatchEquivalenceTest,
                         ::testing::ValuesIn(MakeBatchScenarios()),
                         [](const ::testing::TestParamInfo<BatchScenario>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace ita
