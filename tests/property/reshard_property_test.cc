// The elasticity property (DESIGN.md §14), swept across the whole
// scenario catalog: switch a sharded engine S→S′ at a randomized epoch
// barrier — live Reshard and the checkpoint/cross-shape-restore path,
// under aggressive rebalancing so the pre-switch placement is maximally
// unlike the id-hash layout — and the run must be observably identical
// to a twin that ran at S′ from the start: byte-equal notification
// fingerprints, equal final results, and a clean forced oracle
// differential (which re-validates the I1/I2 threshold invariants on
// the post-switch ITA state). Failures print the reshard repro line
// (--scenario= --seed= --shards= --new-shards= --reshard-epoch=
// --mode=) for direct replay.
//
// CI runs this suite under ASan/UBSan in the persist job's
// reshard-under-aggressive-rebalancing sweep (ctest -R ReshardProperty
// with ITA_REBALANCE=aggressive).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "exec/sharded_server.h"
#include "sim/event_stream.h"
#include "sim/reshard_runner.h"
#include "sim/scenario.h"

namespace ita::sim {
namespace {

/// The S→S′ pairs the sweep exercises: shrink to fewer shards, grow past
/// the original width, and scale out from a single shard.
constexpr std::pair<std::size_t, std::size_t> kShapes[] = {
    {4, 2},
    {2, 7},
    {1, 4},
};

constexpr ReshardMode kModes[] = {ReshardMode::kLive,
                                  ReshardMode::kCheckpointRestore};

/// Epochs the preset's stream produces at the trimmed event count —
/// needed to place the switch strictly inside the stream.
std::uint64_t EpochCountOf(const ScenarioSpec& spec) {
  EventStreamGenerator generator(spec);
  while (generator.NextEpoch().has_value()) {
  }
  return generator.epochs_generated();
}

TEST(ReshardPropertyTest, EveryShapeAndModeConvergesAcrossCatalog) {
  Rng rng(20260814);
  for (const ScenarioFactory& factory : ScenarioCatalog()) {
    ScenarioSpec spec = factory.make(/*seed=*/0xE1A57);
    spec.events = 1'200;
    const std::uint64_t epochs = EpochCountOf(spec);
    ASSERT_GT(epochs, 4u) << factory.name;

    for (const auto& [from, to] : kShapes) {
      // One randomized switch point per shape; both mechanisms at the
      // same barrier, so a divergence isolates the mechanism.
      const std::uint64_t at = 1 + rng.Next() % (epochs - 2);
      for (const ReshardMode mode : kModes) {
        ReshardOptions options;
        options.initial_shards = from;
        options.new_shards = to;
        options.reshard_epoch = at;
        options.mode = mode;
        options.rebalance.mode = exec::RebalanceMode::kAggressive;
        ReshardRunner runner(spec, options);
        const auto report = runner.Run();
        ASSERT_TRUE(report.ok())
            << factory.name << ": " << report.status().ToString()
            << "\n  rerun: " << ReshardRunner::ReproLine(spec, options);
        EXPECT_GT(report->live_queries, 0u) << factory.name;
      }
    }
  }
}

TEST(ReshardPropertyTest, BackToBackSwitchesAtTheFirstAndLastBarrier) {
  // Edge barriers: a switch after the very first epoch (the window is
  // nearly empty) and after the last (nothing follows the remap but the
  // final equivalence checks).
  ScenarioSpec spec = MixedStressScenario(515151);
  spec.events = 1'000;
  const std::uint64_t epochs = EpochCountOf(spec);
  ASSERT_GT(epochs, 2u);
  for (const std::uint64_t at : {std::uint64_t{0}, epochs - 1}) {
    ReshardOptions options;
    options.initial_shards = 3;
    options.new_shards = 2;
    options.reshard_epoch = at;
    options.rebalance.mode = exec::RebalanceMode::kAggressive;
    const auto report = ReshardRunner(spec, options).Run();
    ASSERT_TRUE(report.ok())
        << "switch at epoch " << at << ": " << report.status().ToString()
        << "\n  rerun: " << ReshardRunner::ReproLine(spec, options);
  }
}

}  // namespace
}  // namespace ita::sim
