#include "stream/window.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace ita {
namespace {

TEST(WindowSpecTest, CountBasedFactory) {
  const WindowSpec w = WindowSpec::CountBased(500);
  EXPECT_EQ(w.kind, WindowSpec::Kind::kCountBased);
  EXPECT_EQ(w.count, 500u);
  EXPECT_TRUE(w.Validate().ok());
  EXPECT_EQ(w.ToString(), "count:500");
}

TEST(WindowSpecTest, TimeBasedFactory) {
  const WindowSpec w = WindowSpec::TimeBased(15 * kMicrosPerMinute);
  EXPECT_EQ(w.kind, WindowSpec::Kind::kTimeBased);
  EXPECT_TRUE(w.Validate().ok());
  EXPECT_EQ(w.ToString(), "time:900000000us");
}

TEST(WindowSpecTest, InvalidSpecsRejected) {
  EXPECT_FALSE(WindowSpec::CountBased(0).Validate().ok());
  EXPECT_FALSE(WindowSpec::TimeBased(0).Validate().ok());
  EXPECT_FALSE(WindowSpec::TimeBased(-5).Validate().ok());
}

TEST(WindowSpecTest, TimeValidityBoundary) {
  const WindowSpec w = WindowSpec::TimeBased(100);
  // Document that arrived at t=50, window 100us.
  EXPECT_TRUE(w.ValidAt(50, 149));   // 99us old: valid
  EXPECT_FALSE(w.ValidAt(50, 150));  // exactly 100us old: expired
  EXPECT_FALSE(w.ValidAt(50, 151));
  EXPECT_TRUE(w.ValidAt(50, 50));    // brand new
}

}  // namespace
}  // namespace ita
