#include "stream/window.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace ita {
namespace {

TEST(WindowSpecTest, CountBasedFactory) {
  const WindowSpec w = WindowSpec::CountBased(500);
  EXPECT_EQ(w.kind, WindowSpec::Kind::kCountBased);
  EXPECT_EQ(w.count, 500u);
  EXPECT_TRUE(w.Validate().ok());
  EXPECT_EQ(w.ToString(), "count:500");
}

TEST(WindowSpecTest, TimeBasedFactory) {
  const WindowSpec w = WindowSpec::TimeBased(15 * kMicrosPerMinute);
  EXPECT_EQ(w.kind, WindowSpec::Kind::kTimeBased);
  EXPECT_TRUE(w.Validate().ok());
  EXPECT_EQ(w.ToString(), "time:900000000us");
}

TEST(WindowSpecTest, InvalidSpecsRejected) {
  EXPECT_FALSE(WindowSpec::CountBased(0).Validate().ok());
  EXPECT_FALSE(WindowSpec::TimeBased(0).Validate().ok());
  EXPECT_FALSE(WindowSpec::TimeBased(-5).Validate().ok());
}

TEST(WindowSpecTest, TimeValidityBoundary) {
  const WindowSpec w = WindowSpec::TimeBased(100);
  // Document that arrived at t=50, window 100us.
  EXPECT_TRUE(w.ValidAt(50, 149));   // 99us old: valid
  EXPECT_FALSE(w.ValidAt(50, 150));  // exactly 100us old: expired
  EXPECT_FALSE(w.ValidAt(50, 151));
  EXPECT_TRUE(w.ValidAt(50, 50));    // brand new
}

// The interval is (now - duration, now]: a document lives for exactly
// `duration` microseconds, and `arrival == now - duration` is the first
// expired instant — pinned here so the half-open choice in
// WindowSpec::ValidAt cannot silently flip.
TEST(WindowSpecTest, TimeBasedBoundaryIsHalfOpen) {
  const WindowSpec w = WindowSpec::TimeBased(1000);
  EXPECT_FALSE(w.ValidAt(/*arrival=*/0, /*now=*/1000));  // == now - duration
  EXPECT_TRUE(w.ValidAt(/*arrival=*/1, /*now=*/1000));   // 1us inside
  EXPECT_TRUE(w.ValidAt(/*arrival=*/1000, /*now=*/1000));  // arrives "now"
}

// `now < duration` reaches past the virtual epoch: `now - duration` goes
// negative (Timestamp is signed — no unsigned wrap-around), so every
// non-negative arrival is valid.
TEST(WindowSpecTest, TimeBasedBoundaryBeforeOneFullWindow) {
  const WindowSpec w = WindowSpec::TimeBased(1'000'000);
  EXPECT_TRUE(w.ValidAt(/*arrival=*/0, /*now=*/0));
  EXPECT_TRUE(w.ValidAt(/*arrival=*/0, /*now=*/999'999));
  EXPECT_TRUE(w.ValidAt(/*arrival=*/500, /*now=*/999'999));
  EXPECT_FALSE(w.ValidAt(/*arrival=*/0, /*now=*/1'000'000));  // window filled
}

}  // namespace
}  // namespace ita
