#include "stream/arrival_process.h"

#include <gtest/gtest.h>

#include <vector>

namespace ita {
namespace {

TEST(PoissonProcessTest, TimestampsStrictlyIncrease) {
  PoissonProcess process(200.0, 1);
  Timestamp prev = process.Now();
  for (int i = 0; i < 10000; ++i) {
    const Timestamp t = process.Next();
    ASSERT_GT(t, prev);
    prev = t;
  }
}

TEST(PoissonProcessTest, MeanRateMatches) {
  // The paper's setting: 200 documents/second.
  PoissonProcess process(200.0, 7);
  const int n = 100000;
  Timestamp last = 0;
  for (int i = 0; i < n; ++i) last = process.Next();
  const double seconds = static_cast<double>(last) / kMicrosPerSecond;
  const double measured_rate = n / seconds;
  EXPECT_NEAR(measured_rate, 200.0, 4.0);
}

TEST(PoissonProcessTest, InterArrivalVarianceIsExponential) {
  PoissonProcess process(50.0, 3);
  std::vector<double> gaps;
  Timestamp prev = 0;
  for (int i = 0; i < 50000; ++i) {
    const Timestamp t = process.Next();
    gaps.push_back(static_cast<double>(t - prev) / kMicrosPerSecond);
    prev = t;
  }
  double mean = 0.0;
  for (const double g : gaps) mean += g;
  mean /= gaps.size();
  double var = 0.0;
  for (const double g : gaps) var += (g - mean) * (g - mean);
  var /= gaps.size();
  // Exponential: variance == mean^2 (coefficient of variation 1).
  EXPECT_NEAR(var / (mean * mean), 1.0, 0.05);
}

TEST(PoissonProcessTest, DeterministicBySeed) {
  PoissonProcess a(100.0, 42), b(100.0, 42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(FixedIntervalProcessTest, ExactSpacing) {
  FixedIntervalProcess process(5000, 100);
  EXPECT_EQ(process.Now(), 100);
  EXPECT_EQ(process.Next(), 5100);
  EXPECT_EQ(process.Next(), 10100);
  EXPECT_EQ(process.Now(), 10100);
}

}  // namespace
}  // namespace ita
