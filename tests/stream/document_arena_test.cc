// The epoch-segmented document arena (stream/document_arena.h): id
// assignment, FIFO semantics and O(1)-style lookup ported from the former
// index/DocumentStore suite, plus the arena-specific machinery — segment
// coalescing and sealing, logical-pop-then-reclaim expiry, segment reuse
// through the free list, transient id gaps, and epoch planning for both
// window kinds.

#include "stream/document_arena.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stream/document.h"

namespace ita {
namespace {

Document MakeDoc(Timestamp at, std::string text = "",
                 Composition comp = {{1, 0.5}}) {
  Document doc;
  doc.arrival_time = at;
  doc.composition = std::move(comp);
  doc.text = std::move(text);
  doc.token_count = 3;
  return doc;
}

std::vector<Document> MakeBatch(std::size_t n, Timestamp start_at = 0) {
  std::vector<Document> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(MakeDoc(start_at + static_cast<Timestamp>(i),
                            "doc" + std::to_string(i)));
  }
  return batch;
}

// --- ported DocumentStore behaviour -----------------------------------

TEST(DocumentArenaTest, AssignsSequentialIdsFromOne) {
  DocumentArena arena;
  EXPECT_EQ(arena.Append(MakeDoc(10)), 1u);
  EXPECT_EQ(arena.Append(MakeDoc(11)), 2u);
  EXPECT_EQ(arena.Append(MakeDoc(12)), 3u);
  EXPECT_EQ(arena.next_id(), 4u);
  EXPECT_EQ(arena.size(), 3u);
}

TEST(DocumentArenaTest, FifoOrder) {
  DocumentArena arena;
  arena.Append(MakeDoc(10, "a"));
  arena.Append(MakeDoc(11, "b"));
  EXPECT_EQ(arena.Oldest().id, 1u);
  EXPECT_EQ(arena.Oldest().text, "a");
  const DocumentView popped = arena.PopOldest();
  EXPECT_EQ(popped.id, 1u);
  EXPECT_EQ(popped.text, "a");  // readable until ReclaimExpired()
  EXPECT_EQ(arena.Oldest().id, 2u);
  EXPECT_EQ(arena.size(), 1u);
}

TEST(DocumentArenaTest, GetById) {
  DocumentArena arena;
  arena.Append(MakeDoc(10, "x", {{3, 0.25}, {7, 0.75}}));
  const auto view = arena.Get(1);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->id, 1u);
  EXPECT_EQ(view->arrival_time, 10);
  EXPECT_EQ(view->token_count, 3u);
  EXPECT_EQ(view->text, "x");
  ASSERT_EQ(view->composition.size(), 2u);
  EXPECT_EQ(view->composition[0].term, 3u);
  EXPECT_DOUBLE_EQ(view->composition[1].weight, 0.75);
}

TEST(DocumentArenaTest, GetRejectsNeverExpiredAndFutureIds) {
  DocumentArena arena;
  for (int i = 0; i < 4; ++i) arena.Append(MakeDoc(i));
  arena.PopOldest();
  arena.PopOldest();
  arena.ReclaimExpired();
  EXPECT_FALSE(arena.Get(0).has_value());  // kInvalidDocId, never assigned
  EXPECT_FALSE(arena.Get(1).has_value());  // expired
  EXPECT_FALSE(arena.Get(2).has_value());  // expired
  EXPECT_TRUE(arena.Get(3).has_value());   // valid
  EXPECT_TRUE(arena.Get(4).has_value());   // valid
  EXPECT_FALSE(arena.Get(5).has_value());  // not yet ingested
  EXPECT_FALSE(arena.Get(999).has_value());
  EXPECT_TRUE(arena.Contains(3));
  EXPECT_FALSE(arena.Contains(5));
}

TEST(DocumentArenaTest, IterationOldestFirst) {
  DocumentArena arena;
  for (int i = 0; i < 5; ++i) arena.Append(MakeDoc(100 + i));
  arena.PopOldest();
  DocId want = 2;
  for (const DocumentView doc : arena) {
    EXPECT_EQ(doc.id, want);
    EXPECT_EQ(doc.arrival_time, 100 + static_cast<Timestamp>(want) - 1);
    ++want;
  }
  EXPECT_EQ(want, 6u);
}

TEST(DocumentArenaTest, EmptyArena) {
  DocumentArena arena;
  EXPECT_TRUE(arena.empty());
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_EQ(arena.next_id(), 1u);
  EXPECT_FALSE(arena.Get(1).has_value());
  EXPECT_TRUE(arena.begin() == arena.end());
  EXPECT_EQ(arena.segment_count(), 0u);
  EXPECT_EQ(arena.document_bytes(), 0u);
}

TEST(DocumentArenaTest, LargeChurnKeepsLookupExact) {
  DocumentArena arena;
  const std::size_t window = 64;
  for (int i = 0; i < 5000; ++i) {
    if (arena.size() >= window) {
      arena.PopOldest();
      arena.ReclaimExpired();
    }
    const DocId id = arena.Append(MakeDoc(i, std::to_string(i)));
    ASSERT_EQ(id, static_cast<DocId>(i) + 1);
    const auto view = arena.Get(id);
    ASSERT_TRUE(view.has_value());
    ASSERT_EQ(view->text, std::to_string(i));
  }
  EXPECT_EQ(arena.size(), window);
}

// --- segments, coalescing, reclamation --------------------------------

TEST(DocumentArenaTest, SmallEpochsCoalesceIntoOneSegment) {
  DocumentArena arena(DocumentArena::Options{/*min_segment_docs=*/8});
  for (int i = 0; i < 8; ++i) arena.Append(MakeDoc(i));
  EXPECT_EQ(arena.segment_count(), 1u);  // 8 singles share one segment
  arena.Append(MakeDoc(9));              // sealed at 8: a new one opens
  EXPECT_EQ(arena.segment_count(), 2u);
}

TEST(DocumentArenaTest, BatchEpochLandsInOneSegment) {
  DocumentArena arena(DocumentArena::Options{/*min_segment_docs=*/4});
  arena.AppendEpoch(MakeBatch(100), /*first_survivor=*/0);
  EXPECT_EQ(arena.segment_count(), 1u);
  arena.AppendEpoch(MakeBatch(100, 100), /*first_survivor=*/0);
  EXPECT_EQ(arena.segment_count(), 2u);
  EXPECT_EQ(arena.size(), 200u);
}

TEST(DocumentArenaTest, ReclaimFreesOnlyFullyExpiredSegments) {
  DocumentArena arena(DocumentArena::Options{/*min_segment_docs=*/4});
  arena.AppendEpoch(MakeBatch(4), 0);      // segment A: ids 1..4
  arena.AppendEpoch(MakeBatch(4, 10), 0);  // segment B: ids 5..8
  ASSERT_EQ(arena.segment_count(), 2u);

  // Pop 3 of segment A: logical only, nothing reclaimable yet.
  std::vector<DocumentView> views;
  arena.PopExpiredInto(3, views);
  arena.ReclaimExpired();
  EXPECT_EQ(arena.segment_count(), 2u);
  EXPECT_EQ(arena.free_segment_count(), 0u);

  // Popping the 4th empties segment A; reclaim parks it on the free list.
  arena.PopOldest();
  arena.ReclaimExpired();
  EXPECT_EQ(arena.segment_count(), 1u);
  EXPECT_EQ(arena.free_segment_count(), 1u);
  EXPECT_EQ(arena.size(), 4u);
  EXPECT_EQ(arena.Oldest().id, 5u);
}

TEST(DocumentArenaTest, SegmentsAreReusedAfterFullWindowExpiry) {
  DocumentArena arena(DocumentArena::Options{/*min_segment_docs=*/4});
  // Fill, fully expire, refill — several times. The ring must recycle
  // parked segments instead of growing: live + free segments stay bounded.
  for (int round = 0; round < 10; ++round) {
    arena.AppendEpoch(MakeBatch(8, round * 100), 0);
    std::vector<DocumentView> views;
    arena.PopExpiredInto(arena.size(), views);
    arena.ReclaimExpired();
    EXPECT_TRUE(arena.empty());
  }
  EXPECT_LE(arena.segment_count() + arena.free_segment_count(), 3u);
  const std::size_t bytes_after_warmup = arena.document_bytes();

  arena.AppendEpoch(MakeBatch(8, 10'000), 0);
  EXPECT_EQ(arena.size(), 8u);
  EXPECT_EQ(arena.Oldest().id, 81u);  // ids keep counting across reuse
  // Reused slabs: no fresh growth needed for the same-shaped epoch.
  EXPECT_LE(arena.document_bytes(), bytes_after_warmup);
}

TEST(DocumentArenaTest, PoppedViewsStayReadableUntilReclaim) {
  DocumentArena arena;
  arena.Append(MakeDoc(1, "first"));
  arena.Append(MakeDoc(2, "second"));
  std::vector<DocumentView> expired;
  arena.PopExpiredInto(2, expired);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].text, "first");
  EXPECT_EQ(expired[1].text, "second");
  EXPECT_TRUE(arena.empty());
  EXPECT_FALSE(arena.Get(1).has_value());  // no longer valid...
  EXPECT_EQ(expired[0].composition.size(), 1u);  // ...but still readable
  arena.ReclaimExpired();
  EXPECT_EQ(arena.segment_count(), 0u);
}

// --- transients --------------------------------------------------------

TEST(DocumentArenaTest, TransientPrefixGetsIdsButIsNeverStored) {
  DocumentArena arena;
  // Batch of 5 into an empty window where only the last 2 survive.
  const DocId first = arena.AppendEpoch(MakeBatch(5), /*first_survivor=*/3);
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(arena.next_id(), 6u);
  EXPECT_EQ(arena.size(), 2u);
  EXPECT_FALSE(arena.Get(1).has_value());
  EXPECT_FALSE(arena.Get(3).has_value());
  ASSERT_TRUE(arena.Get(4).has_value());
  EXPECT_EQ(arena.Get(4)->text, "doc3");
  EXPECT_EQ(arena.Oldest().id, 4u);

  // Iteration skips the id gap.
  std::vector<DocId> seen;
  for (const DocumentView doc : arena) seen.push_back(doc.id);
  EXPECT_EQ(seen, (std::vector<DocId>{4, 5}));
}

TEST(DocumentArenaTest, TailViewsReturnTheNewestSurvivors) {
  DocumentArena arena;
  arena.AppendEpoch(MakeBatch(3), 0);
  arena.AppendEpoch(MakeBatch(4, 10), 0);
  std::vector<DocumentView> views;
  arena.TailViewsInto(4, views);
  ASSERT_EQ(views.size(), 4u);
  EXPECT_EQ(views.front().id, 4u);
  EXPECT_EQ(views.back().id, 7u);
  EXPECT_EQ(views[1].text, "doc1");
}

// --- planning ----------------------------------------------------------

TEST(DocumentArenaPlanTest, RejectsEmptyAndOutOfOrderBatches) {
  DocumentArena arena;
  const WindowSpec window = WindowSpec::CountBased(10);
  EXPECT_FALSE(arena.PlanEpoch(window, 0, {}).ok());

  std::vector<Document> batch;
  batch.push_back(MakeDoc(5));
  batch.push_back(MakeDoc(4));
  EXPECT_FALSE(arena.PlanEpoch(window, 0, batch).ok());

  std::vector<Document> late;
  late.push_back(MakeDoc(5));
  EXPECT_FALSE(arena.PlanEpoch(window, /*last_arrival=*/9, late).ok());
}

TEST(DocumentArenaPlanTest, CountBasedOverflowAndTransients) {
  DocumentArena arena;
  const WindowSpec window = WindowSpec::CountBased(4);
  arena.AppendEpoch(MakeBatch(3), 0);

  // 3 valid + 2 arriving over capacity 4: one expiry, no transients.
  auto plan = arena.PlanEpoch(window, 2, MakeBatch(2, 10));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->expiring, 1u);
  EXPECT_EQ(plan->first_survivor, 0u);
  EXPECT_EQ(plan->arriving, 2u);
  EXPECT_EQ(plan->epoch_end, 11);

  // A batch of 6 alone overflows the window: 2 transients, everything
  // previously valid expires.
  plan = arena.PlanEpoch(window, 2, MakeBatch(6, 10));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->first_survivor, 2u);
  EXPECT_EQ(plan->arriving, 4u);
  EXPECT_EQ(plan->expiring, 3u);
}

TEST(DocumentArenaPlanTest, TimeBasedExpiryAndAdvance) {
  DocumentArena arena;
  const WindowSpec window = WindowSpec::TimeBased(100);
  arena.Append(MakeDoc(0));
  arena.Append(MakeDoc(50));
  arena.Append(MakeDoc(90));

  // Epoch ending at 149: only the t=0 document ages out (0 <= 149-100).
  std::vector<Document> batch;
  batch.push_back(MakeDoc(149));
  auto plan = arena.PlanEpoch(window, 90, batch);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->expiring, 1u);
  EXPECT_EQ(plan->arriving, 1u);

  // The boundary instant: at now=150, arrival 50 == now - duration is
  // expired too (the half-open interval of WindowSpec::ValidAt).
  EXPECT_EQ(arena.PlanAdvance(window, 150).expiring, 2u);
  EXPECT_EQ(arena.PlanAdvance(window, 149).expiring, 1u);
  // Count-based windows never expire on a pure advance.
  EXPECT_EQ(arena.PlanAdvance(WindowSpec::CountBased(1), 1000).expiring, 0u);
}

}  // namespace
}  // namespace ita
