#include "stream/corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

namespace ita {
namespace {

SyntheticCorpusOptions SmallOptions() {
  SyntheticCorpusOptions opts;
  opts.dictionary_size = 5000;
  opts.min_length = 10;
  opts.max_length = 200;
  opts.length_lognormal_mu = 4.0;  // median ~55 tokens
  opts.seed = 7;
  return opts;
}

TEST(SyntheticCorpusTest, DocumentsAreWellFormed) {
  SyntheticCorpusGenerator gen(SmallOptions());
  for (int i = 0; i < 200; ++i) {
    const Document doc = gen.NextDocument(i);
    EXPECT_EQ(doc.arrival_time, i);
    EXPECT_GE(doc.token_count, 10u);
    EXPECT_LE(doc.token_count, 200u);
    ASSERT_FALSE(doc.composition.empty());
    for (std::size_t j = 0; j < doc.composition.size(); ++j) {
      EXPECT_GT(doc.composition[j].weight, 0.0);
      EXPECT_LT(doc.composition[j].term, 5000u);
      if (j > 0) {
        ASSERT_LT(doc.composition[j - 1].term, doc.composition[j].term);
      }
    }
  }
}

TEST(SyntheticCorpusTest, CosineUnitNorm) {
  SyntheticCorpusGenerator gen(SmallOptions());
  for (int i = 0; i < 50; ++i) {
    const Document doc = gen.NextDocument();
    double norm_sq = 0.0;
    for (const TermWeight& tw : doc.composition) {
      norm_sq += tw.weight * tw.weight;
    }
    EXPECT_NEAR(norm_sq, 1.0, 1e-9);
  }
}

TEST(SyntheticCorpusTest, DeterministicBySeed) {
  SyntheticCorpusGenerator a(SmallOptions()), b(SmallOptions());
  for (int i = 0; i < 50; ++i) {
    const Document da = a.NextDocument();
    const Document db = b.NextDocument();
    ASSERT_EQ(da.composition.size(), db.composition.size());
    for (std::size_t j = 0; j < da.composition.size(); ++j) {
      ASSERT_EQ(da.composition[j].term, db.composition[j].term);
      ASSERT_EQ(da.composition[j].weight, db.composition[j].weight);
    }
  }
}

TEST(SyntheticCorpusTest, LowRankTermsDominante) {
  SyntheticCorpusGenerator gen(SmallOptions());
  std::uint64_t head_hits = 0, tail_hits = 0;
  for (int i = 0; i < 300; ++i) {
    const Document doc = gen.NextDocument();
    for (const TermWeight& tw : doc.composition) {
      if (tw.term < 50) ++head_hits;
      if (tw.term >= 4000) ++tail_hits;
    }
  }
  // Zipf skew: the 50 head terms should appear in far more documents than
  // the 1000 tail terms combined.
  EXPECT_GT(head_hits, tail_hits);
}

TEST(SyntheticCorpusTest, CorpusStatsGrow) {
  SyntheticCorpusGenerator gen(SmallOptions());
  for (int i = 0; i < 20; ++i) gen.NextDocument();
  EXPECT_EQ(gen.corpus_stats().total_documents(), 20u);
  EXPECT_GT(gen.corpus_stats().average_length(), 0.0);
}

TEST(SyntheticCorpusTest, Bm25SchemeSupported) {
  SyntheticCorpusOptions opts = SmallOptions();
  opts.scheme = WeightingScheme::kBm25;
  SyntheticCorpusGenerator gen(opts);
  for (int i = 0; i < 20; ++i) {
    const Document doc = gen.NextDocument();
    for (const TermWeight& tw : doc.composition) {
      ASSERT_GT(tw.weight, 0.0);
    }
  }
}

TEST(QueryWorkloadTest, QueriesAreWellFormed) {
  QueryWorkloadOptions opts;
  opts.terms_per_query = 10;
  opts.k = 10;
  QueryWorkloadGenerator gen(5000, opts);
  for (int i = 0; i < 100; ++i) {
    const Query q = gen.NextQuery();
    EXPECT_EQ(q.k, 10);
    EXPECT_TRUE(ValidateQuery(q).ok());
    EXPECT_LE(q.terms.size(), 10u);
    EXPECT_GE(q.terms.size(), 1u);
  }
}

TEST(QueryWorkloadTest, TermsSpreadAcrossDictionary) {
  QueryWorkloadOptions opts;
  opts.terms_per_query = 10;
  QueryWorkloadGenerator gen(100000, opts);
  std::set<TermId> seen;
  for (int i = 0; i < 200; ++i) {
    for (const TermWeight& tw : gen.NextQuery().terms) seen.insert(tw.term);
  }
  // Uniform draws over a large dictionary should rarely repeat.
  EXPECT_GT(seen.size(), 1900u);
}

TEST(QueryWorkloadTest, MakeQueriesBatch) {
  QueryWorkloadGenerator gen(1000, {});
  const auto queries = gen.MakeQueries(25);
  EXPECT_EQ(queries.size(), 25u);
}

TEST(QueryWorkloadTest, MaxTermRestrictsToHotVocabulary) {
  QueryWorkloadOptions opts;
  opts.terms_per_query = 10;
  opts.max_term = 50;
  QueryWorkloadGenerator gen(100000, opts);
  for (int i = 0; i < 100; ++i) {
    for (const TermWeight& tw : gen.NextQuery().terms) {
      ASSERT_LT(tw.term, 50u);
    }
  }
}

TEST(QueryWorkloadTest, MaxTermLargerThanDictionaryIsHarmless) {
  QueryWorkloadOptions opts;
  opts.max_term = 10'000'000;
  QueryWorkloadGenerator gen(100, opts);
  for (int i = 0; i < 50; ++i) {
    for (const TermWeight& tw : gen.NextQuery().terms) {
      ASSERT_LT(tw.term, 100u);
    }
  }
}

TEST(QueryWorkloadTest, DeterministicBySeed) {
  QueryWorkloadOptions opts;
  opts.seed = 99;
  QueryWorkloadGenerator a(1000, opts), b(1000, opts);
  for (int i = 0; i < 20; ++i) {
    const Query qa = a.NextQuery();
    const Query qb = b.NextQuery();
    ASSERT_EQ(qa.terms.size(), qb.terms.size());
    for (std::size_t j = 0; j < qa.terms.size(); ++j) {
      ASSERT_EQ(qa.terms[j].term, qb.terms[j].term);
    }
  }
}

TEST(TextFileCorpusReaderTest, ReadsLinesAsDocuments) {
  const std::string path = ::testing::TempDir() + "/corpus_test.txt";
  {
    std::ofstream out(path);
    out << "The market rallied on strong earnings.\n";
    out << "\n";  // blank line skipped
    out << "Oil prices fell amid supply concerns.\n";
    out << "the of and\n";  // all stopwords: skipped (empty composition)
  }
  Analyzer analyzer;
  const auto docs = TextFileCorpusReader::ReadAll(path, &analyzer);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->size(), 2u);
  EXPECT_FALSE((*docs)[0].composition.empty());
  std::remove(path.c_str());
}

TEST(TextFileCorpusReaderTest, MissingFileIsIoError) {
  Analyzer analyzer;
  const auto docs =
      TextFileCorpusReader::ReadAll("/nonexistent/file.txt", &analyzer);
  ASSERT_FALSE(docs.ok());
  EXPECT_EQ(docs.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace ita
