#include "text/analyzer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ita {
namespace {

TEST(AnalyzerTest, DocumentPipelineEndToEnd) {
  Analyzer analyzer;
  const Document doc = analyzer.MakeDocument(
      "The quick brown fox jumps over the lazy dog; the fox wins.");
  // Stopwords ("the", "over") removed; fox appears twice.
  ASSERT_FALSE(doc.composition.empty());
  const auto fox = analyzer.vocabulary().Lookup("fox");
  ASSERT_TRUE(fox.has_value());
  const double w_fox = CompositionWeight(doc.composition, *fox);
  const auto dog = analyzer.vocabulary().Lookup("dog");
  ASSERT_TRUE(dog.has_value());
  const double w_dog = CompositionWeight(doc.composition, *dog);
  EXPECT_NEAR(w_fox / w_dog, 2.0, 1e-9);
  EXPECT_FALSE(analyzer.vocabulary().Lookup("the").has_value());
}

TEST(AnalyzerTest, CompositionSortedUnique) {
  Analyzer analyzer;
  const Document doc = analyzer.MakeDocument(
      "zebra apple zebra mango apple banana zebra");
  for (std::size_t i = 1; i < doc.composition.size(); ++i) {
    ASSERT_LT(doc.composition[i - 1].term, doc.composition[i].term);
  }
  EXPECT_EQ(doc.composition.size(), 4u);
}

TEST(AnalyzerTest, CosineUnitNorm) {
  Analyzer analyzer;
  const Document doc =
      analyzer.MakeDocument("alpha beta gamma alpha beta alpha");
  double norm_sq = 0.0;
  for (const TermWeight& tw : doc.composition) norm_sq += tw.weight * tw.weight;
  EXPECT_NEAR(norm_sq, 1.0, 1e-12);
}

TEST(AnalyzerTest, KeepsTextWhenAsked) {
  AnalyzerOptions opts;
  opts.keep_text = true;
  Analyzer keeper(opts);
  EXPECT_EQ(keeper.MakeDocument("hello world").text, "hello world");

  opts.keep_text = false;
  Analyzer dropper(opts);
  EXPECT_TRUE(dropper.MakeDocument("hello world").text.empty());
}

TEST(AnalyzerTest, ArrivalTimePassedThrough) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.MakeDocument("x y z", 12345).arrival_time, 12345);
}

TEST(AnalyzerTest, StemmingMergesInflections) {
  AnalyzerOptions opts;
  opts.stem = true;
  Analyzer analyzer(opts);
  const Document doc = analyzer.MakeDocument("monitoring monitored monitors");
  EXPECT_EQ(doc.composition.size(), 1u);  // all stem to "monitor"
}

TEST(AnalyzerTest, StemmingOffKeepsInflections) {
  Analyzer analyzer;
  const Document doc = analyzer.MakeDocument("monitoring monitored monitors");
  EXPECT_EQ(doc.composition.size(), 3u);
}

TEST(AnalyzerTest, QueryHappyPath) {
  Analyzer analyzer;
  const auto q = analyzer.MakeQuery("weapons of mass destruction", 10);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->k, 10);
  // "of" is a stopword: 3 effective terms.
  EXPECT_EQ(q->terms.size(), 3u);
  EXPECT_EQ(q->text, "weapons of mass destruction");
}

TEST(AnalyzerTest, QueryDuplicateTermsAggregate) {
  Analyzer analyzer;
  const auto q = analyzer.MakeQuery("white white tower", 2);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->terms.size(), 2u);
  const auto white = analyzer.vocabulary().Lookup("white");
  ASSERT_TRUE(white.has_value());
  double w_white = 0.0, w_tower = 0.0;
  for (const TermWeight& tw : q->terms) {
    if (tw.term == *white) {
      w_white = tw.weight;
    } else {
      w_tower = tw.weight;
    }
  }
  EXPECT_NEAR(w_white / w_tower, 2.0, 1e-12);  // f_white=2, f_tower=1
  EXPECT_NEAR(w_white, 2.0 / std::sqrt(5.0), 1e-12);
}

TEST(AnalyzerTest, QueryAllStopwordsRejected) {
  Analyzer analyzer;
  const auto q = analyzer.MakeQuery("the of and", 5);
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST(AnalyzerTest, QueryBadKRejected) {
  Analyzer analyzer;
  EXPECT_FALSE(analyzer.MakeQuery("valid terms", 0).ok());
  EXPECT_FALSE(analyzer.MakeQuery("valid terms", -3).ok());
}

TEST(AnalyzerTest, SharedVocabularyAcrossDocsAndQueries) {
  Analyzer analyzer;
  const Document doc = analyzer.MakeDocument("nuclear proliferation report");
  const auto q = analyzer.MakeQuery("nuclear report", 1);
  ASSERT_TRUE(q.ok());
  const double score = ScoreDocument(doc.composition, q->terms);
  EXPECT_GT(score, 0.0);
}

TEST(AnalyzerTest, DisjointTextScoresZero) {
  Analyzer analyzer;
  const Document doc = analyzer.MakeDocument("cats dogs hamsters");
  const auto q = analyzer.MakeQuery("quantum chromodynamics", 1);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ScoreDocument(doc.composition, q->terms), 0.0);
}

TEST(AnalyzerTest, CorpusStatsAccumulate) {
  Analyzer analyzer;
  analyzer.MakeDocument("alpha beta");
  analyzer.MakeDocument("alpha gamma delta");
  EXPECT_EQ(analyzer.corpus_stats().total_documents(), 2u);
  const auto alpha = analyzer.vocabulary().Lookup("alpha");
  ASSERT_TRUE(alpha.has_value());
  EXPECT_EQ(analyzer.corpus_stats().DocumentFrequency(*alpha), 2u);
}

TEST(AnalyzerTest, Bm25SchemeProducesPositiveWeights) {
  AnalyzerOptions opts;
  opts.scheme = WeightingScheme::kBm25;
  Analyzer analyzer(opts);
  analyzer.MakeDocument("seed document to establish statistics");
  const Document doc = analyzer.MakeDocument("unusual zirconium content");
  for (const TermWeight& tw : doc.composition) {
    EXPECT_GT(tw.weight, 0.0);
  }
}

TEST(AnalyzerTest, CustomStopwordSet) {
  const StopwordSet custom = StopwordSet::FromWords({"reuters"});
  AnalyzerOptions opts;
  opts.stopwords = &custom;
  Analyzer analyzer(opts);
  const Document doc = analyzer.MakeDocument("reuters reports the merger");
  EXPECT_FALSE(analyzer.vocabulary().Lookup("reuters").has_value());
  // "the" is NOT filtered under the custom set.
  EXPECT_TRUE(analyzer.vocabulary().Lookup("the").has_value());
  (void)doc;
}

}  // namespace
}  // namespace ita
