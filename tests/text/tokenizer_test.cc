#include "text/tokenizer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ita {
namespace {

std::vector<std::string> Tokens(std::string_view text, TokenizerOptions opts = {}) {
  Tokenizer tokenizer(opts);
  std::vector<std::string> out;
  tokenizer.Tokenize(text, &out);
  return out;
}

TEST(TokenizerTest, SplitsOnWhitespaceAndPunctuation) {
  EXPECT_EQ(Tokens("Hello, world! foo-bar baz."),
            (std::vector<std::string>{"hello", "world", "foo", "bar", "baz"}));
}

TEST(TokenizerTest, Lowercases) {
  EXPECT_EQ(Tokens("WMD Weapons ofMassDestruction"),
            (std::vector<std::string>{"wmd", "weapons", "ofmassdestruction"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokens("").empty());
  EXPECT_TRUE(Tokens("...!?;:--- ***").empty());
}

TEST(TokenizerTest, KeepsDigitsInsideTokens) {
  EXPECT_EQ(Tokens("b2b report2024"),
            (std::vector<std::string>{"b2b", "report2024"}));
}

TEST(TokenizerTest, NumbersKeptByDefault) {
  EXPECT_EQ(Tokens("agenda 2024 item 7"),
            (std::vector<std::string>{"agenda", "2024", "item", "7"}));
}

TEST(TokenizerTest, NumbersDroppedWhenDisabled) {
  TokenizerOptions opts;
  opts.keep_numbers = false;
  EXPECT_EQ(Tokens("agenda 2024 item 7", opts),
            (std::vector<std::string>{"agenda", "item"}));
}

TEST(TokenizerTest, MinLengthFilters) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  EXPECT_EQ(Tokens("a an the cat sat", opts),
            (std::vector<std::string>{"the", "cat", "sat"}));
}

TEST(TokenizerTest, OversizeTokensDropped) {
  TokenizerOptions opts;
  opts.max_token_length = 8;
  const std::string big(100, 'x');
  EXPECT_EQ(Tokens("small " + big + " fine", opts),
            (std::vector<std::string>{"small", "fine"}));
}

TEST(TokenizerTest, NonAsciiBytesSeparate) {
  // UTF-8 bytes outside ASCII act as separators (documented behaviour).
  EXPECT_EQ(Tokens("caf\xC3\xA9 bar"),
            (std::vector<std::string>{"caf", "bar"}));
}

TEST(TokenizerTest, ApostrophesSplitContractions) {
  EXPECT_EQ(Tokens("don't it's o'clock"),
            (std::vector<std::string>{"don", "t", "it", "s", "o", "clock"}));
}

TEST(TokenizerTest, ForEachTokenViewsAreTransient) {
  Tokenizer tokenizer;
  std::vector<std::string> copies;
  tokenizer.ForEachToken("alpha beta gamma", [&](std::string_view t) {
    copies.emplace_back(t);
  });
  EXPECT_EQ(copies, (std::vector<std::string>{"alpha", "beta", "gamma"}));
}

TEST(TokenizerTest, WindowsNewlinesAndTabs) {
  EXPECT_EQ(Tokens("one\r\ntwo\tthree\nfour"),
            (std::vector<std::string>{"one", "two", "three", "four"}));
}

}  // namespace
}  // namespace ita
