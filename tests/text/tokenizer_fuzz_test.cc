// Tokenizer robustness: random byte soup in, well-formed tokens out. The
// invariants every emitted token must satisfy regardless of input:
// lowercase alphanumeric ASCII only, within the configured length bounds,
// and reconstructible (each token appears in the lowercased input as a
// maximal alphanumeric run).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "text/tokenizer.h"

namespace ita {
namespace {

class TokenizerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenizerFuzzTest, TokensAlwaysWellFormed) {
  Rng rng(GetParam());
  TokenizerOptions opts;
  opts.min_token_length = 1 + rng.UniformInt(0, 2);
  opts.max_token_length = 4 + rng.UniformInt(0, 28);
  opts.keep_numbers = rng.NextBool(0.5);
  Tokenizer tokenizer(opts);

  for (int round = 0; round < 200; ++round) {
    // Byte soup: full 0..255 range, including NUL and UTF-8 fragments.
    std::string input;
    const std::size_t len = rng.UniformInt(0, 2000);
    for (std::size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }

    std::vector<std::string> tokens;
    tokenizer.Tokenize(input, &tokens);

    for (const std::string& token : tokens) {
      ASSERT_GE(token.size(), opts.min_token_length);
      ASSERT_LE(token.size(), opts.max_token_length);
      bool all_digits = true;
      for (const char c : token) {
        ASSERT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
            << "byte " << static_cast<int>(c);
        all_digits = all_digits && (c >= '0' && c <= '9');
      }
      if (!opts.keep_numbers) {
        ASSERT_FALSE(all_digits) << "numeric token leaked: " << token;
      }
    }
  }
}

TEST_P(TokenizerFuzzTest, TokenizationIsDeterministic) {
  Rng rng(GetParam() ^ 0xF00D);
  Tokenizer tokenizer;
  std::string input;
  for (int i = 0; i < 5000; ++i) {
    input.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  std::vector<std::string> a, b;
  tokenizer.Tokenize(input, &a);
  tokenizer.Tokenize(input, &b);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerFuzzTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(TokenizerEdgeTest, AllSeparators) {
  Tokenizer tokenizer;
  std::vector<std::string> tokens;
  tokenizer.Tokenize(std::string(1000, '!'), &tokens);
  EXPECT_TRUE(tokens.empty());
}

TEST(TokenizerEdgeTest, SingleGiantToken) {
  TokenizerOptions opts;
  opts.max_token_length = 64;
  Tokenizer tokenizer(opts);
  std::vector<std::string> tokens;
  tokenizer.Tokenize(std::string(100000, 'a'), &tokens);
  EXPECT_TRUE(tokens.empty());  // oversize tokens are dropped, not split
}

TEST(TokenizerEdgeTest, EmbeddedNulByte) {
  Tokenizer tokenizer;
  std::vector<std::string> tokens;
  const std::string input{"abc\0def", 7};
  tokenizer.Tokenize(input, &tokens);
  EXPECT_EQ(tokens, (std::vector<std::string>{"abc", "def"}));
}

}  // namespace
}  // namespace ita
