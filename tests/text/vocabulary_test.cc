#include "text/vocabulary.h"

#include <gtest/gtest.h>

#include <string>

namespace ita {
namespace {

TEST(VocabularyTest, InternAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Intern("alpha"), 0u);
  EXPECT_EQ(vocab.Intern("beta"), 1u);
  EXPECT_EQ(vocab.Intern("gamma"), 2u);
  EXPECT_EQ(vocab.size(), 3u);
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary vocab;
  const TermId a = vocab.Intern("alpha");
  EXPECT_EQ(vocab.Intern("alpha"), a);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(VocabularyTest, LookupFindsInternedOnly) {
  Vocabulary vocab;
  vocab.Intern("alpha");
  ASSERT_TRUE(vocab.Lookup("alpha").has_value());
  EXPECT_EQ(*vocab.Lookup("alpha"), 0u);
  EXPECT_FALSE(vocab.Lookup("beta").has_value());
}

TEST(VocabularyTest, TermTextRoundTrips) {
  Vocabulary vocab;
  const TermId a = vocab.Intern("weapons");
  const TermId b = vocab.Intern("destruction");
  EXPECT_EQ(vocab.TermText(a), "weapons");
  EXPECT_EQ(vocab.TermText(b), "destruction");
}

TEST(VocabularyTest, ManyTermsStayConsistentAcrossRehash) {
  Vocabulary vocab;
  for (int i = 0; i < 50000; ++i) {
    vocab.Intern("term_" + std::to_string(i));
  }
  EXPECT_EQ(vocab.size(), 50000u);
  // Pointers into the hash map keys must have remained stable.
  EXPECT_EQ(vocab.TermText(0), "term_0");
  EXPECT_EQ(vocab.TermText(12345), "term_12345");
  EXPECT_EQ(vocab.TermText(49999), "term_49999");
  EXPECT_EQ(*vocab.Lookup("term_31415"), 31415u);
}

TEST(VocabularyTest, EmptyStringIsAValidTerm) {
  Vocabulary vocab;
  const TermId id = vocab.Intern("");
  EXPECT_EQ(vocab.TermText(id), "");
  EXPECT_TRUE(vocab.Lookup("").has_value());
}

}  // namespace
}  // namespace ita
