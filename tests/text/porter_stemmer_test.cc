#include "text/porter_stemmer.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace ita {
namespace {

struct Case {
  const char* input;
  const char* expected;
};

class PorterVectorTest : public ::testing::TestWithParam<Case> {};

TEST_P(PorterVectorTest, MatchesReference) {
  const Case& c = GetParam();
  EXPECT_EQ(PorterStemmer::Stem(c.input), c.expected) << c.input;
}

// Vectors checked against the reference implementation's voc.txt/output.txt
// (tartarus.org) and the examples in Porter's 1980 paper.
INSTANTIATE_TEST_SUITE_P(
    Step1a, PorterVectorTest,
    ::testing::Values(Case{"caresses", "caress"}, Case{"ponies", "poni"},
                      Case{"ties", "ti"}, Case{"caress", "caress"},
                      Case{"cats", "cat"}));

INSTANTIATE_TEST_SUITE_P(
    Step1b, PorterVectorTest,
    ::testing::Values(Case{"feed", "feed"}, Case{"agreed", "agre"},
                      Case{"plastered", "plaster"}, Case{"bled", "bled"},
                      Case{"motoring", "motor"}, Case{"sing", "sing"},
                      Case{"conflated", "conflat"}, Case{"troubled", "troubl"},
                      Case{"sized", "size"}, Case{"hopping", "hop"},
                      Case{"tanned", "tan"}, Case{"falling", "fall"},
                      Case{"hissing", "hiss"}, Case{"fizzed", "fizz"},
                      Case{"failing", "fail"}, Case{"filing", "file"}));

INSTANTIATE_TEST_SUITE_P(
    Step1c, PorterVectorTest,
    ::testing::Values(Case{"happy", "happi"}, Case{"sky", "sky"}));

INSTANTIATE_TEST_SUITE_P(
    Step2, PorterVectorTest,
    ::testing::Values(Case{"relational", "relat"}, Case{"conditional", "condit"},
                      Case{"rational", "ration"}, Case{"valenci", "valenc"},
                      Case{"hesitanci", "hesit"}, Case{"digitizer", "digit"},
                      Case{"conformabli", "conform"}, Case{"radicalli", "radic"},
                      Case{"differentli", "differ"}, Case{"vileli", "vile"},
                      Case{"analogousli", "analog"},
                      Case{"vietnamization", "vietnam"},
                      Case{"predication", "predic"}, Case{"operator", "oper"},
                      Case{"feudalism", "feudal"},
                      Case{"decisiveness", "decis"},
                      Case{"hopefulness", "hope"},
                      Case{"callousness", "callous"},
                      Case{"formaliti", "formal"},
                      Case{"sensitiviti", "sensit"},
                      Case{"sensibiliti", "sensibl"}));

INSTANTIATE_TEST_SUITE_P(
    Step3, PorterVectorTest,
    ::testing::Values(Case{"triplicate", "triplic"}, Case{"formative", "form"},
                      Case{"formalize", "formal"}, Case{"electriciti", "electr"},
                      Case{"electrical", "electr"}, Case{"hopeful", "hope"},
                      Case{"goodness", "good"}));

INSTANTIATE_TEST_SUITE_P(
    Step4, PorterVectorTest,
    ::testing::Values(Case{"revival", "reviv"}, Case{"allowance", "allow"},
                      Case{"inference", "infer"}, Case{"airliner", "airlin"},
                      Case{"gyroscopic", "gyroscop"},
                      Case{"adjustable", "adjust"}, Case{"defensible", "defens"},
                      Case{"irritant", "irrit"}, Case{"replacement", "replac"},
                      Case{"adjustment", "adjust"}, Case{"dependent", "depend"},
                      Case{"adoption", "adopt"}, Case{"homologou", "homolog"},
                      Case{"communism", "commun"}, Case{"activate", "activ"},
                      Case{"angulariti", "angular"}, Case{"homologous", "homolog"},
                      Case{"effective", "effect"}, Case{"bowdlerize", "bowdler"}));

INSTANTIATE_TEST_SUITE_P(
    Step5, PorterVectorTest,
    ::testing::Values(Case{"probate", "probat"}, Case{"rate", "rate"},
                      Case{"cease", "ceas"}, Case{"controll", "control"},
                      Case{"roll", "roll"}));

INSTANTIATE_TEST_SUITE_P(
    GeneralVocabulary, PorterVectorTest,
    ::testing::Values(Case{"generalizations", "gener"},
                      Case{"oscillators", "oscil"},
                      Case{"monitoring", "monitor"},
                      Case{"weapons", "weapon"},
                      Case{"destruction", "destruct"},
                      Case{"continuous", "continu"},
                      Case{"queries", "queri"},
                      Case{"incremental", "increment"},
                      Case{"threshold", "threshold"}));

INSTANTIATE_TEST_SUITE_P(
    HandTraced, PorterVectorTest,
    ::testing::Values(Case{"flies", "fli"},      // ies->i
                      Case{"dies", "di"},        // ies->i
                      Case{"mules", "mule"},     // s-drop; final e kept (cvc)
                      Case{"denied", "deni"},    // ed-drop, no e-append
                      Case{"owned", "own"},      // ed-drop
                      Case{"meetings", "meet"},  // s then ing
                      Case{"agreement", "agreement"},  // m("agre")=1: kept
                      Case{"replacement", "replac"},   // m>1: ement dropped
                      Case{"dogs", "dog"},
                      Case{"stemming", "stem"},  // doublec undoubles
                      Case{"stems", "stem"}));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStemmer::Stem("a"), "a");
  EXPECT_EQ(PorterStemmer::Stem("at"), "at");
  EXPECT_EQ(PorterStemmer::Stem("is"), "is");
}

TEST(PorterStemmerTest, EmptyString) {
  EXPECT_EQ(PorterStemmer::Stem(""), "");
}

TEST(PorterStemmerTest, InPlaceMatchesCopying) {
  std::string w = "generalizations";
  PorterStemmer::StemInPlace(&w);
  EXPECT_EQ(w, PorterStemmer::Stem("generalizations"));
}

TEST(PorterStemmerTest, IdempotentOnCommonStems) {
  for (const char* word :
       {"relational", "monitoring", "queries", "hopping", "caresses"}) {
    const std::string once = PorterStemmer::Stem(word);
    const std::string twice = PorterStemmer::Stem(once);
    // Porter is not idempotent in general, but these stems are fixpoints.
    EXPECT_EQ(once, twice) << word;
  }
}

}  // namespace
}  // namespace ita
