#include "text/stopwords.h"

#include <gtest/gtest.h>

namespace ita {
namespace {

TEST(StopwordsTest, EnglishListContainsFunctionWords) {
  const StopwordSet& sw = StopwordSet::English();
  for (const char* w : {"the", "a", "an", "and", "or", "of", "is", "are",
                        "was", "with", "that", "this", "not"}) {
    EXPECT_TRUE(sw.Contains(w)) << w;
  }
}

TEST(StopwordsTest, EnglishListDoesNotContainContentWords) {
  const StopwordSet& sw = StopwordSet::English();
  for (const char* w : {"weapons", "destruction", "portfolio", "tower",
                        "white", "explosives", "market", "reuters"}) {
    EXPECT_FALSE(sw.Contains(w)) << w;
  }
}

TEST(StopwordsTest, EmptySetMatchesNothing) {
  StopwordSet sw;
  EXPECT_FALSE(sw.Contains("the"));
  EXPECT_EQ(sw.size(), 0u);
}

TEST(StopwordsTest, CustomAdditions) {
  StopwordSet sw;
  sw.Add("reuters");
  EXPECT_TRUE(sw.Contains("reuters"));
  EXPECT_FALSE(sw.Contains("bloomberg"));
}

TEST(StopwordsTest, FromWordsBuilder) {
  const StopwordSet sw = StopwordSet::FromWords({"alpha", "beta"});
  EXPECT_TRUE(sw.Contains("alpha"));
  EXPECT_TRUE(sw.Contains("beta"));
  EXPECT_FALSE(sw.Contains("gamma"));
  EXPECT_EQ(sw.size(), 2u);
}

TEST(StopwordsTest, EnglishSingletonIsStable) {
  const StopwordSet& a = StopwordSet::English();
  const StopwordSet& b = StopwordSet::English();
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.size(), 150u);
}

TEST(StopwordsTest, ContractionFragments) {
  const StopwordSet& sw = StopwordSet::English();
  // "don't" tokenizes to {don, t}; both must be filtered.
  EXPECT_TRUE(sw.Contains("don"));
  EXPECT_TRUE(sw.Contains("t"));
  EXPECT_TRUE(sw.Contains("ll"));
  EXPECT_TRUE(sw.Contains("ve"));
}

}  // namespace
}  // namespace ita
