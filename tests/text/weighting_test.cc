#include "text/weighting.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ita {
namespace {

TEST(WeightingTest, CosineCompositionIsUnitNorm) {
  const TermCounts counts = {{1, 2}, {5, 1}, {9, 2}};  // f = (2, 1, 2)
  const Composition comp =
      BuildComposition(counts, 5, WeightingScheme::kCosine, nullptr);
  ASSERT_EQ(comp.size(), 3u);
  double norm_sq = 0.0;
  for (const TermWeight& tw : comp) norm_sq += tw.weight * tw.weight;
  EXPECT_NEAR(norm_sq, 1.0, 1e-12);
  EXPECT_NEAR(comp[0].weight, 2.0 / 3.0, 1e-12);  // sqrt(4+1+4) = 3
  EXPECT_NEAR(comp[1].weight, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(comp[2].weight, 2.0 / 3.0, 1e-12);
}

TEST(WeightingTest, CosineWeightsProportionalToFrequency) {
  const TermCounts counts = {{0, 3}, {1, 1}};
  const Composition comp =
      BuildComposition(counts, 4, WeightingScheme::kCosine, nullptr);
  EXPECT_NEAR(comp[0].weight / comp[1].weight, 3.0, 1e-12);
}

TEST(WeightingTest, RawTfPassesCountsThrough) {
  const TermCounts counts = {{2, 7}, {4, 1}};
  const Composition comp =
      BuildComposition(counts, 8, WeightingScheme::kRawTf, nullptr);
  EXPECT_EQ(comp[0].weight, 7.0);
  EXPECT_EQ(comp[1].weight, 1.0);
}

TEST(WeightingTest, EmptyCountsGiveEmptyComposition) {
  const Composition comp =
      BuildComposition({}, 0, WeightingScheme::kCosine, nullptr);
  EXPECT_TRUE(comp.empty());
}

TEST(WeightingTest, QueryVectorCosineNormalized) {
  // "white white tower": f = (2, 1).
  const TermCounts counts = {{11, 1}, {20, 2}};
  const auto terms = BuildQueryVector(counts, WeightingScheme::kCosine);
  ASSERT_EQ(terms.size(), 2u);
  const double norm = std::sqrt(5.0);
  EXPECT_NEAR(terms[0].weight, 1.0 / norm, 1e-12);
  EXPECT_NEAR(terms[1].weight, 2.0 / norm, 1e-12);
}

TEST(CorpusStatsTest, TracksDocumentFrequencies) {
  CorpusStats stats;
  stats.AddDocument({{1, 3}, {2, 1}}, 4);
  stats.AddDocument({{2, 5}, {3, 1}}, 6);
  EXPECT_EQ(stats.total_documents(), 2u);
  EXPECT_DOUBLE_EQ(stats.average_length(), 5.0);
  EXPECT_EQ(stats.DocumentFrequency(1), 1u);
  EXPECT_EQ(stats.DocumentFrequency(2), 2u);
  EXPECT_EQ(stats.DocumentFrequency(3), 1u);
  EXPECT_EQ(stats.DocumentFrequency(99), 0u);
}

TEST(CorpusStatsTest, IdfDecreasesWithDocumentFrequency) {
  CorpusStats stats;
  for (int i = 0; i < 100; ++i) {
    TermCounts counts = {{0, 1}};       // term 0 in every document
    if (i < 5) counts.push_back({1, 1});  // term 1 in 5 documents
    stats.AddDocument(counts, 10);
  }
  EXPECT_GT(stats.Idf(1), stats.Idf(0));
  EXPECT_GE(stats.Idf(0), 0.0);
}

TEST(WeightingTest, Bm25RareTermOutweighsCommonTerm) {
  CorpusStats stats;
  for (int i = 0; i < 100; ++i) {
    TermCounts counts = {{0, 1}};
    if (i == 0) counts.push_back({1, 1});
    stats.AddDocument(counts, 100);
  }
  const TermCounts doc = {{0, 3}, {1, 3}};
  const Composition comp =
      BuildComposition(doc, 100, WeightingScheme::kBm25, &stats);
  ASSERT_EQ(comp.size(), 2u);
  EXPECT_GT(comp[1].weight, comp[0].weight);  // rare term 1 weighs more
}

TEST(WeightingTest, Bm25TermFrequencySaturates) {
  CorpusStats stats;
  stats.AddDocument({{0, 1}, {1, 1}}, 100);
  stats.AddDocument({{2, 1}}, 100);
  const Composition one =
      BuildComposition({{0, 1}}, 100, WeightingScheme::kBm25, &stats);
  const Composition ten =
      BuildComposition({{0, 10}}, 100, WeightingScheme::kBm25, &stats);
  const Composition hundred =
      BuildComposition({{0, 100}}, 100, WeightingScheme::kBm25, &stats);
  ASSERT_EQ(one.size(), 1u);
  // Increasing frequency helps, with diminishing returns bounded by k1+1.
  EXPECT_GT(ten[0].weight, one[0].weight);
  EXPECT_GT(hundred[0].weight, ten[0].weight);
  EXPECT_LT(hundred[0].weight / one[0].weight, 1.0 + 1.2 + 1e-9);
}

TEST(WeightingTest, Bm25QueryVectorIsRawFrequency) {
  const auto terms = BuildQueryVector({{3, 2}, {8, 1}}, WeightingScheme::kBm25);
  EXPECT_EQ(terms[0].weight, 2.0);
  EXPECT_EQ(terms[1].weight, 1.0);
}

TEST(WeightingTest, SchemeNames) {
  EXPECT_STREQ(WeightingSchemeName(WeightingScheme::kCosine), "cosine");
  EXPECT_STREQ(WeightingSchemeName(WeightingScheme::kBm25), "bm25");
  EXPECT_STREQ(WeightingSchemeName(WeightingScheme::kRawTf), "raw_tf");
}

}  // namespace
}  // namespace ita
