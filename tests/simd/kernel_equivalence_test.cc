// Scalar-vs-vector kernel equivalence (DESIGN.md §10). Every kernel in
// simd/ is a pure counting primitive with front-scan semantics — "index
// of the first element failing the predicate, scanning left to right" —
// a contract that is exact for ANY input, sorted or not. So each vector
// variant must match the scalar reference bit-identically on arbitrary
// doubles: ties, denormals (no -ffast-math, so no FTZ/DAZ), signed
// zeros, infinities, NaNes, and every lane-width remainder around the
// 2/4/8-lane vector strides.
//
// The suite cross-checks every variant AvailableKernels() reports for
// this build + CPU (scalar always; sse2/avx2 where supported) against
// independent references reimplemented here, on exhaustive small inputs
// and on randomized storms. A build with -DITA_SIMD=OFF runs the same
// suite with only the scalar entry — the CI matrix runs both.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "simd/simd.h"

namespace ita::simd {
namespace {

// -- Independent references (deliberately naive) --------------------------

std::size_t RefProbePrefixLessEqual(const double* values, std::size_t n,
                                    double w) {
  std::size_t i = 0;
  while (i < n && values[i] <= w) ++i;
  return i;
}

template <bool kOrEqual>
std::size_t RefFirstStride2(const double* base, std::size_t count, double w) {
  for (std::size_t i = 0; i < count; ++i) {
    const double x = base[2 * i];
    if (kOrEqual ? (x <= w) : (x < w)) return i;
  }
  return count;
}

// -- Input synthesis ------------------------------------------------------

/// Adversarial values: boundary magnitudes the predicate must order
/// exactly, plus NaN (compares false both ways — a front scan treats it
/// as "fails <=" / "fails <").
std::vector<double> ValuePool() {
  const double inf = std::numeric_limits<double>::infinity();
  const double eps = std::numeric_limits<double>::epsilon();
  return {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.5,
      1.0 + eps,
      1.0 - eps,
      1e-300,
      -1e-300,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      inf,
      -inf,
      std::numeric_limits<double>::quiet_NaN(),
  };
}

/// A strided {weight, doc} buffer: weight lanes at even doubles, doc
/// lanes filled with raw 64-bit patterns (many of which read as NaN
/// doubles) — the kernels must never interpret them.
std::vector<double> MakeStrided(const std::vector<double>& weights,
                                std::mt19937_64& rng) {
  std::vector<double> buf(2 * weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    buf[2 * i] = weights[i];
    const std::uint64_t bits =
        (i % 3 == 0) ? ~std::uint64_t{0} : rng();  // all-ones = NaN pattern
    std::memcpy(&buf[2 * i + 1], &bits, sizeof(bits));
  }
  return buf;
}

/// Runs `check(kernels)` once per available variant with the variant
/// name traced — a failure names the kernel that diverged.
template <typename Check>
void ForEachKernel(Check&& check) {
  for (const Kernels* k : AvailableKernels()) {
    SCOPED_TRACE(std::string("kernel: ") + k->name);
    check(*k);
  }
}

// -- Dispatch sanity ------------------------------------------------------

TEST(KernelDispatchTest, ScalarIsFirstAndActiveIsListed) {
  const auto& available = AvailableKernels();
  ASSERT_FALSE(available.empty());
  EXPECT_STREQ(available.front()->name, "scalar");
  const Kernels& active = ActiveKernels();
  bool listed = false;
  for (const Kernels* k : available) listed |= (k == &active);
  EXPECT_TRUE(listed) << "active kernel " << active.name
                      << " missing from AvailableKernels()";
}

// -- Probe kernel ---------------------------------------------------------

TEST(KernelEquivalenceTest, ProbeExhaustiveSmallWithTies) {
  // Ascending arrays with 3-long tie runs, every size straddling the
  // 2/4/8-lane strides, probed at each distinct value, between values,
  // and outside the range.
  for (std::size_t n = 0; n <= 35; ++n) {
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = 0.5 * static_cast<double>(i / 3);
    }
    std::vector<double> probes = {-1.0, 0.0, 0.25, 1e9,
                                  std::numeric_limits<double>::infinity()};
    for (const double v : values) {
      probes.push_back(v);
      probes.push_back(v - 1e-9);
      probes.push_back(v + 1e-9);
    }
    ForEachKernel([&](const Kernels& k) {
      for (const double w : probes) {
        ASSERT_EQ(k.probe_prefix_less_equal(values.data(), n, w),
                  RefProbePrefixLessEqual(values.data(), n, w))
            << "n=" << n << " w=" << w;
      }
    });
  }
}

TEST(KernelEquivalenceTest, ProbeRandomStorm) {
  // Arbitrary (unsorted) contents: the counting contract holds for any
  // input, which is exactly what makes vector == scalar provable.
  std::mt19937_64 rng(0x5eed'c0de);
  const std::vector<double> pool = ValuePool();
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  std::uniform_real_distribution<double> uniform(-2.0, 2.0);
  for (int trial = 0; trial < 2'000; ++trial) {
    const std::size_t n = rng() % 300;
    std::vector<double> values(n);
    for (double& v : values) {
      v = (rng() % 2 == 0) ? pool[pick(rng)] : uniform(rng);
    }
    const double w = (rng() % 4 == 0) ? pool[pick(rng)]
                     : (n > 0 && rng() % 2 == 0)
                         ? values[rng() % n]  // exact-tie probes
                         : uniform(rng);
    ForEachKernel([&](const Kernels& k) {
      ASSERT_EQ(k.probe_prefix_less_equal(values.data(), n, w),
                RefProbePrefixLessEqual(values.data(), n, w))
          << "trial=" << trial << " n=" << n << " w=" << w;
    });
  }
}

// -- Strided weight kernels -----------------------------------------------

TEST(KernelEquivalenceTest, Stride2ExhaustiveSmallWithTies) {
  // Descending weights with tie runs — the impact-order shape — across
  // every remainder width, with garbage doc lanes interleaved.
  std::mt19937_64 rng(0xb10c'5);
  for (std::size_t n = 0; n <= 35; ++n) {
    std::vector<double> weights(n);
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] = 0.5 * static_cast<double>((n - i + 2) / 3);
    }
    const std::vector<double> buf = MakeStrided(weights, rng);
    std::vector<double> probes = {-1.0, 0.0, 1e9,
                                  std::numeric_limits<double>::infinity()};
    for (const double v : weights) {
      probes.push_back(v);
      probes.push_back(v - 1e-9);
      probes.push_back(v + 1e-9);
    }
    ForEachKernel([&](const Kernels& k) {
      for (const double w : probes) {
        ASSERT_EQ(k.first_stride2_less(buf.data(), n, w),
                  RefFirstStride2<false>(buf.data(), n, w))
            << "less: n=" << n << " w=" << w;
        ASSERT_EQ(k.first_stride2_less_equal(buf.data(), n, w),
                  RefFirstStride2<true>(buf.data(), n, w))
            << "less_equal: n=" << n << " w=" << w;
      }
    });
  }
}

TEST(KernelEquivalenceTest, Stride2RandomStorm) {
  std::mt19937_64 rng(0xdead'beef);
  const std::vector<double> pool = ValuePool();
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  std::uniform_real_distribution<double> uniform(-2.0, 2.0);
  for (int trial = 0; trial < 2'000; ++trial) {
    const std::size_t n = rng() % 200;
    std::vector<double> weights(n);
    for (double& v : weights) {
      v = (rng() % 2 == 0) ? pool[pick(rng)] : uniform(rng);
    }
    const std::vector<double> buf = MakeStrided(weights, rng);
    const double w = (rng() % 4 == 0) ? pool[pick(rng)]
                     : (n > 0 && rng() % 2 == 0) ? weights[rng() % n]
                                                 : uniform(rng);
    ForEachKernel([&](const Kernels& k) {
      ASSERT_EQ(k.first_stride2_less(buf.data(), n, w),
                RefFirstStride2<false>(buf.data(), n, w))
          << "less: trial=" << trial << " n=" << n << " w=" << w;
      ASSERT_EQ(k.first_stride2_less_equal(buf.data(), n, w),
                RefFirstStride2<true>(buf.data(), n, w))
          << "less_equal: trial=" << trial << " n=" << n << " w=" << w;
    });
  }
}

}  // namespace
}  // namespace ita::simd
