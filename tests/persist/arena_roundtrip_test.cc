// DocumentArena serialization (stream/document_arena.h): the segment
// ring round-trips through SerializeTo/DeserializeFrom — including id
// gaps after expiration, multi-segment rings and popped-but-unreclaimed
// heads — and every structural corruption fails the typed way.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stream/document_arena.h"
#include "testing/builders.h"

namespace ita {
namespace {

using ::ita::testing::MakeDoc;

Document Doc(int i) {
  Document doc = MakeDoc({{TermId(1 + i % 5), 0.25 + 0.05 * i},
                          {TermId(7), 1.0 + 0.01 * i}},
                         Timestamp(100 + i));
  doc.token_count = static_cast<std::size_t>(3 + i % 4);
  doc.text = "doc-" + std::to_string(i);
  return doc;
}

/// Field-wise comparison of every live document in two arenas, via both
/// iteration and positional lookup.
void ExpectSameContents(const DocumentArena& got, const DocumentArena& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.next_id(), want.next_id());
  ASSERT_EQ(got.segment_count(), want.segment_count());
  auto gi = got.begin();
  for (const DocumentView w : want) {
    ASSERT_NE(gi, got.end());
    const DocumentView g = *gi;
    EXPECT_EQ(g.id, w.id);
    EXPECT_EQ(g.arrival_time, w.arrival_time);
    EXPECT_EQ(g.token_count, w.token_count);
    EXPECT_EQ(g.text, w.text);
    ASSERT_EQ(g.composition.size(), w.composition.size());
    for (std::size_t i = 0; i < w.composition.size(); ++i) {
      EXPECT_EQ(g.composition[i].term, w.composition[i].term);
      EXPECT_EQ(g.composition[i].weight, w.composition[i].weight);
    }
    // Positional lookup agrees with iteration.
    ASSERT_TRUE(got.Contains(w.id));
    EXPECT_EQ(got.Get(w.id)->arrival_time, w.arrival_time);
    ++gi;
  }
  EXPECT_EQ(gi, got.end());
}

std::string Serialized(const DocumentArena& arena) {
  std::string bytes;
  arena.SerializeTo(&bytes);
  return bytes;
}

TEST(ArenaRoundTripTest, EmptyArenaRoundTrips) {
  DocumentArena arena;
  DocumentArena restored;
  ASSERT_TRUE(restored.DeserializeFrom(Serialized(arena)).ok());
  EXPECT_TRUE(restored.empty());
  EXPECT_EQ(restored.next_id(), arena.next_id());
}

TEST(ArenaRoundTripTest, MultiSegmentRingRoundTrips) {
  DocumentArena arena({.min_segment_docs = 4});
  for (int i = 0; i < 11; ++i) {
    std::vector<Document> batch = {Doc(3 * i), Doc(3 * i + 1), Doc(3 * i + 2)};
    arena.AppendEpoch(std::move(batch), 0);
  }
  ASSERT_GT(arena.segment_count(), 1u);
  DocumentArena restored;
  ASSERT_TRUE(restored.DeserializeFrom(Serialized(arena)).ok());
  ExpectSameContents(restored, arena);
  // The logical bytes are canonical: re-serializing the restored arena
  // reproduces them exactly (capacities don't leak into the format).
  EXPECT_EQ(Serialized(restored), Serialized(arena));
}

TEST(ArenaRoundTripTest, IdGapsAfterExpirationRoundTrip) {
  DocumentArena arena({.min_segment_docs = 3});
  for (int i = 0; i < 18; ++i) (void)arena.Append(Doc(i));
  // Expire 8: head advances past whole segments (they hit the free
  // list), so the restored ring must start at a nonzero head with id
  // gaps below it.
  for (int i = 0; i < 8; ++i) (void)arena.PopOldest();
  arena.ReclaimExpired();
  ASSERT_GT(arena.free_segment_count() + 1, 1u);

  DocumentArena restored;
  ASSERT_TRUE(restored.DeserializeFrom(Serialized(arena)).ok());
  ExpectSameContents(restored, arena);
  EXPECT_FALSE(restored.Contains(DocId(1)));  // expired — below head
  EXPECT_EQ(Serialized(restored), Serialized(arena));

  // The restored arena keeps working: appends continue the id sequence,
  // expiration keeps popping the true oldest.
  const DocId next = restored.Append(Doc(99));
  EXPECT_EQ(next, arena.next_id());
  EXPECT_EQ(restored.PopOldest().id, arena.Oldest().id);
}

TEST(ArenaRoundTripTest, PoppedButUnreclaimedHeadRoundTrips) {
  // Between PopOldest and ReclaimExpired the popped records still sit in
  // their segment; serialization is defined at that point too (the
  // sharded engine snapshots after reclaim, but the format must not
  // depend on it).
  DocumentArena arena({.min_segment_docs = 4});
  for (int i = 0; i < 10; ++i) (void)arena.Append(Doc(i));
  (void)arena.PopOldest();
  (void)arena.PopOldest();

  DocumentArena restored;
  ASSERT_TRUE(restored.DeserializeFrom(Serialized(arena)).ok());
  ExpectSameContents(restored, arena);
}

TEST(ArenaRoundTripTest, RestoreIntoUsedArenaIsFailedPrecondition) {
  DocumentArena arena;
  (void)arena.Append(Doc(0));
  const std::string bytes = Serialized(arena);

  DocumentArena used;
  (void)used.Append(Doc(1));
  EXPECT_TRUE(used.DeserializeFrom(bytes).IsFailedPrecondition());
}

TEST(ArenaRoundTripTest, StructuralCorruptionFailsClosed) {
  DocumentArena arena({.min_segment_docs = 2});
  for (int i = 0; i < 6; ++i) (void)arena.Append(Doc(i));
  const std::string bytes = Serialized(arena);

  // Truncation at any prefix fails (IoError from the wire layer).
  for (const std::size_t len : {std::size_t{0}, std::size_t{7},
                                bytes.size() / 2, bytes.size() - 1}) {
    DocumentArena fresh;
    const Status status =
        fresh.DeserializeFrom(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(status.ok()) << "prefix " << len;
  }
}

}  // namespace
}  // namespace ita
