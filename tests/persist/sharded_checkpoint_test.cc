// ShardedServer snapshots (exec/sharded_server.h): the epoch-barrier
// checkpoint captures the shared arena, the placement map, the
// rebalancer state and every shard's nested container; a restored
// engine answers identically, keeps the same placement, and continues
// the stream (including future rebalancing decisions) in lockstep.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/sharded_server.h"
#include "stream/window.h"
#include "testing/builders.h"

namespace ita::exec {
namespace {

using ::ita::testing::MakeDoc;
using ::ita::testing::MakeQuery;

ShardedServerOptions TwoShards() {
  ShardedServerOptions options;
  options.window = WindowSpec::CountBased(8);
  options.shards = 2;
  options.threads = 2;
  return options;
}

std::vector<QueryId> Populate(ShardedServer& server) {
  std::vector<QueryId> ids;
  for (int i = 0; i < 5; ++i) {
    const auto id = server.RegisterQuery(
        MakeQuery(2, {{TermId(1 + i % 3), 1.0}, {TermId(5), 0.5 + 0.1 * i}}));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  for (int e = 0; e < 4; ++e) {
    std::vector<Document> batch;
    for (int i = 0; i < 3; ++i) {
      batch.push_back(MakeDoc({{TermId(1 + (e + i) % 4), 0.4 + 0.05 * i},
                               {TermId(5), 0.9}},
                              Timestamp(10 * e + i)));
    }
    EXPECT_TRUE(server.IngestBatch(std::move(batch)).ok());
  }
  return ids;
}

TEST(ShardedCheckpointTest, RoundTripPreservesResultsAndPlacement) {
  ShardedServer original(TwoShards());
  const std::vector<QueryId> ids = Populate(original);
  std::string bytes;
  ASSERT_TRUE(original.Checkpoint(&bytes).ok());

  ShardedServer restored(TwoShards());
  ASSERT_TRUE(restored.Restore(bytes).ok());

  EXPECT_EQ(restored.query_count(), original.query_count());
  EXPECT_EQ(restored.window_size(), original.window_size());
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(restored.shard_query_count(s), original.shard_query_count(s))
        << "shard " << s;
  }
  for (const QueryId id : ids) {
    const auto got = restored.Result(id);
    const auto want = original.Result(id);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(*got, *want) << "query " << id;
  }
  ASSERT_TRUE(restored.ValidatePruningMetadata().ok());
}

TEST(ShardedCheckpointTest, RestoredEngineTracksTheStreamInLockstep) {
  ShardedServer original(TwoShards());
  const std::vector<QueryId> ids = Populate(original);
  std::string bytes;
  ASSERT_TRUE(original.Checkpoint(&bytes).ok());
  ShardedServer restored(TwoShards());
  ASSERT_TRUE(restored.Restore(bytes).ok());

  for (ShardedServer* server : {&original, &restored}) {
    ASSERT_TRUE(server->UnregisterQuery(ids[0]).ok());
    const auto next = server->RegisterQuery(MakeQuery(3, {{TermId(2), 2.0}}));
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(*next, ids.back() + 1);  // persisted next_query_id continues
    for (int e = 0; e < 3; ++e) {
      std::vector<Document> batch = {
          MakeDoc({{TermId(2), 0.7}, {TermId(3), 0.2}}, Timestamp(100 + e))};
      ASSERT_TRUE(server->IngestBatch(std::move(batch)).ok());
    }
  }
  for (QueryId id = ids[1]; id <= ids.back() + 1; ++id) {
    const auto got = restored.Result(id);
    const auto want = original.Result(id);
    ASSERT_TRUE(got.ok() && want.ok()) << "query " << id;
    EXPECT_EQ(*got, *want) << "query " << id;
  }
}

TEST(ShardedCheckpointTest, ShardCountMismatchRemapsInsteadOfFailing) {
  // A snapshot taken at S restores into an S′ engine by remapping every
  // query to its new id-hash home (DESIGN.md §14) — results are
  // bit-identical by placement independence. The dedicated cross-shape
  // suite (cross_shape_restore_test.cc) covers the full contract; this
  // pins that the old shape-mismatch FailedPrecondition is gone.
  ShardedServer original(TwoShards());
  const std::vector<QueryId> ids = Populate(original);
  std::string bytes;
  ASSERT_TRUE(original.Checkpoint(&bytes).ok());

  ShardedServerOptions four = TwoShards();
  four.shards = 4;
  ShardedServer wider(four);
  ASSERT_TRUE(wider.Restore(bytes).ok());
  EXPECT_EQ(wider.shard_count(), 4u);
  EXPECT_EQ(wider.query_count(), original.query_count());
  for (const QueryId id : ids) {
    const auto got = wider.Result(id);
    const auto want = original.Result(id);
    ASSERT_TRUE(got.ok() && want.ok()) << "query " << id;
    EXPECT_EQ(*got, *want) << "query " << id;
  }
}

TEST(ShardedCheckpointTest, RestoreIntoUsedEngineIsFailedPrecondition) {
  ShardedServer original(TwoShards());
  Populate(original);
  std::string bytes;
  ASSERT_TRUE(original.Checkpoint(&bytes).ok());

  ShardedServer used(TwoShards());
  Populate(used);
  EXPECT_TRUE(used.Restore(bytes).IsFailedPrecondition());
}

TEST(ShardedCheckpointTest, CorruptNestedShardSectionFailsRestore) {
  ShardedServer original(TwoShards());
  Populate(original);
  std::string bytes;
  ASSERT_TRUE(original.Checkpoint(&bytes).ok());
  // Damage the container tail — inside the last shard's nested
  // container. The outer checksum localizes it; Restore must refuse.
  bytes[bytes.size() - 3] ^= 0x11;
  ShardedServer restored(TwoShards());
  EXPECT_FALSE(restored.Restore(bytes).ok());
}

}  // namespace
}  // namespace ita::exec
