// The persistence layer's programmer-error contracts die loudly: a null
// output buffer is an ITA_CHECK in every build; the section-name DCHECKs
// fire in debug builds (compiled out under NDEBUG, so those cases are
// guarded — corruption of DATA, by contrast, always returns a typed
// Status and is covered by corruption_test.cc).

#include <gtest/gtest.h>

#include <string>

#include "persist/snapshot.h"

namespace ita::persist {
namespace {

TEST(PersistDeathTest, NullOutputBufferAborts) {
  EXPECT_DEATH({ SnapshotWriter writer(nullptr); }, "Check failed");
}

#ifndef NDEBUG
TEST(PersistDeathTest, EmptySectionNameAborts) {
  EXPECT_DEATH(
      {
        std::string bytes;
        SnapshotWriter writer(&bytes);
        writer.AddSection("", "payload");
      },
      "Check failed");
}
#endif

}  // namespace
}  // namespace ita::persist
