// The persistence bookkeeping layer (persist/checkpoint.h): the
// PersistStats → obs gauge export that puts the snapshot/WAL counters
// on the metrics surface, and the atomic file helpers a durable
// deployment writes snapshots through.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "persist/checkpoint.h"
#include "sim/crash_restore.h"
#include "sim/scenario.h"

namespace ita::persist {
namespace {

TEST(PersistStatsTest, ExportRegistersEveryCounterAsAGauge) {
  PersistStats stats;
  stats.snapshots_written = 3;
  stats.snapshot_bytes = 4096;
  stats.snapshot_write_nanos = 1000;
  stats.restores = 1;
  stats.restore_nanos = 2000;
  stats.log_records_appended = 57;
  stats.log_bytes_appended = 9999;
  stats.replayed_epochs = 5;
  stats.replay_nanos = 3000;

  obs::MetricsRegistry registry;
  ExportPersistStats(stats, &registry);

  ASSERT_EQ(registry.gauges().size(), 9u);
  double sum = 0.0;
  for (const auto& gauge : registry.gauges()) {
    EXPECT_EQ(gauge.name.rfind("ita_persist_", 0), 0u) << gauge.name;
    EXPECT_FALSE(gauge.help.empty()) << gauge.name;
    sum += gauge.value;
  }
  // Every field landed (distinct values, so the sum pins all nine).
  EXPECT_EQ(sum, 3 + 4096 + 1000 + 1 + 2000 + 57 + 9999 + 5 + 3000);
}

TEST(PersistStatsTest, CrashRestoreReportFeedsTheGauges) {
  // The stats block a real kill/restore drive produces exports cleanly
  // — the wiring a serving binary would use after recovery.
  const sim::ScenarioFactory* factory = sim::FindScenario("zipf_drift");
  ASSERT_NE(factory, nullptr);
  sim::ScenarioSpec spec = factory->make(/*seed=*/7);
  spec.events = 400;

  sim::CrashRestoreOptions options;
  options.snapshot_every_epochs = 2;
  options.crash_epoch = 3;
  options.crash_phase = sim::CrashPhase::kAfterApply;
  const auto report = sim::CrashRestoreRunner(spec, options).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  obs::MetricsRegistry registry;
  ExportPersistStats(report->persist, &registry);
  for (const auto& gauge : registry.gauges()) {
    if (gauge.name == "ita_persist_snapshots_written" ||
        gauge.name == "ita_persist_restores" ||
        gauge.name == "ita_persist_log_records_appended") {
      EXPECT_GT(gauge.value, 0.0) << gauge.name;
    }
  }
}

TEST(AtomicFileTest, WriteThenReadRoundTrips) {
  const std::string path = ::testing::TempDir() + "/ita_persist_atomic.bin";
  const std::string payload("snapshot \x00 bytes", 16);
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, payload);

  // Overwrite in place: the rename replaces the old file whole.
  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "second");
  std::remove(path.c_str());
}

TEST(AtomicFileTest, MissingFileIsIoError) {
  std::string out;
  const Status status =
      ReadFileToString(::testing::TempDir() + "/ita_persist_nope", &out);
  EXPECT_TRUE(status.IsIoError()) << status.ToString();
}

TEST(AtomicFileTest, UnwritableDirectoryIsIoError) {
  const Status status =
      WriteFileAtomic("/proc/ita-persist-cannot-write-here", "x");
  EXPECT_TRUE(status.IsIoError()) << status.ToString();
}

}  // namespace
}  // namespace ita::persist
