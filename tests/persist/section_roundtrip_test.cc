// Exact-layout round-trips of the individual snapshot sections: the
// strategy section ("ita/state" — SlotMap occupancy incl. LIFO-reused
// slots, per-slot thresholds, result lists, tier flags) and the arena
// ring ("server/arena") must re-serialize BYTE-IDENTICALLY after a
// restore — the strong form of "same state", immune to behavioral
// coincidence. (The "server/core" section is exempt: its capacity-based
// memory gauges legitimately differ across a rebuild.)

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ita_server.h"
#include "persist/snapshot.h"
#include "stream/window.h"
#include "testing/builders.h"

namespace ita {
namespace {

using ::ita::testing::MakeDoc;
using ::ita::testing::MakeQuery;

std::string CheckpointOf(const ContinuousSearchServer& server) {
  std::string bytes;
  persist::SnapshotWriter writer(&bytes);
  EXPECT_TRUE(server.Checkpoint(writer).ok());
  return bytes;
}

/// Restores a fresh twin from `bytes` and expects the named sections to
/// re-serialize byte-identically.
void ExpectSectionsStable(const std::string& bytes, const ItaTuning& tuning,
                          const WindowSpec& window) {
  auto reader = persist::SnapshotReader::Open(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ItaServer restored({.window = window}, tuning);
  ASSERT_TRUE(restored.Restore(*reader).ok());

  const std::string again = CheckpointOf(restored);
  auto reread = persist::SnapshotReader::Open(again);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  for (const char* section : {"ita/state", "server/arena"}) {
    const auto want = reader->Section(section);
    const auto got = reread->Section(section);
    ASSERT_TRUE(want.ok() && got.ok()) << section;
    EXPECT_EQ(*got, *want) << "section '" << section
                           << "' changed across a restore";
  }
}

TEST(SectionRoundTripTest, SlotMapWithLifoReusedSlotsReserializesExactly) {
  ItaServer server({.window = WindowSpec::CountBased(16)});
  // Build a slab with holes and LIFO reuse: register 6, erase 3 (free
  // list order matters), register 2 more (they pop the most recently
  // freed slots), erase 1 again — the persisted free list must replay
  // this exact layout.
  std::vector<QueryId> ids;
  for (int i = 0; i < 6; ++i) {
    const auto id =
        server.RegisterQuery(MakeQuery(1 + i % 3, {{TermId(1 + i), 1.0}}));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (const int victim : {1, 3, 4}) {
    ASSERT_TRUE(server.UnregisterQuery(ids[victim]).ok());
  }
  for (int i = 0; i < 2; ++i) {
    const auto id = server.RegisterQuery(MakeQuery(2, {{TermId(10 + i), 0.5}}));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(server.UnregisterQuery(ids[0]).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        server.Ingest(MakeDoc({{TermId(1 + i % 8), 0.4}}, Timestamp(i))).ok());
  }
  ExpectSectionsStable(CheckpointOf(server), {}, WindowSpec::CountBased(16));
}

TEST(SectionRoundTripTest, ThresholdStateReserializesExactly) {
  // Multi-term queries with populated result lists: per-slot theta
  // arrays, theta epochs, tau and the best-first result order all live
  // in ita/state and must survive the rebuild of the threshold trees.
  ItaServer server({.window = WindowSpec::CountBased(6)});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server
                    .RegisterQuery(MakeQuery(
                        2, {{TermId(1), 0.5 + 0.1 * i}, {TermId(2 + i), 1.0}}))
                    .ok());
  }
  for (int i = 0; i < 15; ++i) {  // rolls the window: refills + expiries
    ASSERT_TRUE(server
                    .Ingest(MakeDoc({{TermId(1), 0.2 + 0.04 * i},
                                     {TermId(2 + i % 4), 0.9}},
                                    Timestamp(i)))
                    .ok());
  }
  ExpectSectionsStable(CheckpointOf(server), {}, WindowSpec::CountBased(6));
}

TEST(SectionRoundTripTest, HotTierFlagsSurviveTheRoundTrip) {
  // An eager tier policy promotes the flooded term; the restored server
  // must come back with the term still hot (stats gauge + exact bytes).
  ItaTuning tuning;
  tuning.tier.promote_ema = 4.0;
  tuning.tier.alpha = 1.0;
  ItaServer server({.window = WindowSpec::CountBased(32)}, tuning);
  ASSERT_TRUE(server.RegisterQuery(MakeQuery(3, {{TermId(7), 1.0}})).ok());
  // Batch epochs: the tier EMA feeds off per-epoch batch runs (the
  // per-event path records no term work).
  for (int e = 0; e < 8; ++e) {
    std::vector<Document> batch;
    for (int i = 0; i < 6; ++i) {
      batch.push_back(
          MakeDoc({{TermId(7), 0.3 + 0.01 * (6 * e + i)}}, Timestamp(6 * e + i)));
    }
    ASSERT_TRUE(server.IngestBatch(std::move(batch)).ok());
  }
  ASSERT_GT(server.stats().hot_tier_terms, 0u)
      << "tier policy never promoted — the round-trip would be vacuous";

  const std::string bytes = CheckpointOf(server);
  auto reader = persist::SnapshotReader::Open(bytes);
  ASSERT_TRUE(reader.ok());
  ItaServer restored({.window = WindowSpec::CountBased(32)}, tuning);
  ASSERT_TRUE(restored.Restore(*reader).ok());
  EXPECT_EQ(restored.stats().hot_tier_terms, server.stats().hot_tier_terms);
  EXPECT_EQ(restored.stats().tier_promotions, server.stats().tier_promotions);
  ExpectSectionsStable(bytes, tuning, WindowSpec::CountBased(32));
}

TEST(SectionRoundTripTest, ArenaRingWithFreedSegmentsReserializesExactly) {
  // Tiny segments force a multi-segment ring; rolling the window far
  // past the first segments frees them, leaving id gaps below head.
  ItaServer server({.window = WindowSpec::CountBased(4)});
  ASSERT_TRUE(server.RegisterQuery(MakeQuery(2, {{TermId(1), 1.0}})).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(server
                    .Ingest(MakeDoc({{TermId(1 + i % 2), 0.5}, {TermId(3), 0.2}},
                                    Timestamp(i)))
                    .ok());
  }
  ExpectSectionsStable(CheckpointOf(server), {}, WindowSpec::CountBased(4));
}

}  // namespace
}  // namespace ita
