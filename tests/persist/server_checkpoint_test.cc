// The Checkpoint/Restore seam on the sequential servers (core/server.h):
// a restored server answers every query identically, carries the
// persisted counters forward, and keeps tracking the stream in lockstep
// with the original; every precondition violation fails with the typed
// Status the seam documents.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ita_server.h"
#include "core/naive_server.h"
#include "persist/snapshot.h"
#include "stream/window.h"
#include "testing/builders.h"

namespace ita {
namespace {

using ::ita::testing::MakeDoc;
using ::ita::testing::MakeQuery;

/// Registers three queries and streams enough documents to roll the
/// count-based window (expirations included).
template <typename Server>
std::vector<QueryId> Populate(Server& server) {
  std::vector<QueryId> ids;
  for (const Query& query :
       {MakeQuery(2, {{1, 1.0}, {2, 0.5}}), MakeQuery(3, {{2, 1.0}}),
        MakeQuery(1, {{3, 2.0}, {1, 0.25}})}) {
    auto id = server.RegisterQuery(query);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  for (int i = 0; i < 12; ++i) {
    const double w = 0.1 + 0.07 * i;
    // Disjoint term ranges (1..3 and 4..5): a composition must never
    // repeat a term.
    auto id = server.Ingest(
        MakeDoc({{TermId(1 + i % 3), w}, {TermId(4 + i % 2), 1.0 - w / 2}},
                Timestamp(10 + i)));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
  }
  return ids;
}

std::string CheckpointOf(const ContinuousSearchServer& server) {
  std::string bytes;
  persist::SnapshotWriter writer(&bytes);
  EXPECT_TRUE(server.Checkpoint(writer).ok());
  return bytes;
}

Status RestoreFrom(ContinuousSearchServer& server, const std::string& bytes) {
  auto reader = persist::SnapshotReader::Open(bytes);
  if (!reader.ok()) return reader.status();
  return server.Restore(*reader);
}

TEST(ServerCheckpointTest, ItaRoundTripPreservesResultsAndStats) {
  ItaServer original({.window = WindowSpec::CountBased(8)});
  const std::vector<QueryId> ids = Populate(original);
  const std::string bytes = CheckpointOf(original);

  ItaServer restored({.window = WindowSpec::CountBased(8)});
  ASSERT_TRUE(RestoreFrom(restored, bytes).ok());

  EXPECT_EQ(restored.query_count(), original.query_count());
  EXPECT_EQ(restored.window_size(), original.window_size());
  for (const QueryId id : ids) {
    const auto got = restored.Result(id);
    const auto want = original.Result(id);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(*got, *want) << "query " << id;
  }
  // Counters travel with the snapshot (gauges are recomputed).
  const ServerStats a = restored.stats();
  const ServerStats b = original.stats();
  EXPECT_EQ(a.documents_ingested, b.documents_ingested);
  EXPECT_EQ(a.documents_expired, b.documents_expired);
  EXPECT_EQ(a.scores_computed, b.scores_computed);
  EXPECT_EQ(a.index_entries_inserted, b.index_entries_inserted);
  EXPECT_EQ(a.registered_queries, b.registered_queries);
  EXPECT_EQ(a.threshold_entries, b.threshold_entries);
}

TEST(ServerCheckpointTest, RestoredServerTracksTheStreamInLockstep) {
  ItaServer original({.window = WindowSpec::CountBased(8)});
  const std::vector<QueryId> ids = Populate(original);
  ItaServer restored({.window = WindowSpec::CountBased(8)});
  ASSERT_TRUE(RestoreFrom(restored, CheckpointOf(original)).ok());

  // Both servers now consume the identical continuation — including
  // expirations, a fresh registration and an unregistration — and must
  // stay indistinguishable throughout.
  for (ItaServer* server : {&original, &restored}) {
    ASSERT_TRUE(server->UnregisterQuery(ids[1]).ok());
    const auto next = server->RegisterQuery(MakeQuery(2, {{2, 1.5}}));
    ASSERT_TRUE(next.ok());
    // Engine-assigned ids continue from the persisted next_query_id.
    EXPECT_EQ(*next, ids.back() + 1);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(server
                      ->Ingest(MakeDoc({{TermId(1 + i % 4), 0.3 + 0.05 * i}},
                                       Timestamp(100 + i)))
                      .ok());
    }
  }
  for (const QueryId id : {ids[0], ids[2], QueryId(ids.back() + 1)}) {
    const auto got = restored.Result(id);
    const auto want = original.Result(id);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(*got, *want) << "query " << id;
  }
}

TEST(ServerCheckpointTest, NaiveRoundTripsThroughTheDefaultRecomputePath) {
  // NaiveServer has no strategy section: the base-class default restore
  // re-registers every query and recomputes, which for a deterministic
  // strategy lands on the identical observable state.
  NaiveServer original({.window = WindowSpec::CountBased(8)});
  const std::vector<QueryId> ids = Populate(original);
  NaiveServer restored({.window = WindowSpec::CountBased(8)});
  ASSERT_TRUE(RestoreFrom(restored, CheckpointOf(original)).ok());
  for (const QueryId id : ids) {
    const auto got = restored.Result(id);
    const auto want = original.Result(id);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(*got, *want) << "query " << id;
  }
}

TEST(ServerCheckpointTest, RestoreIntoUsedServerIsFailedPrecondition) {
  ItaServer original({.window = WindowSpec::CountBased(8)});
  Populate(original);
  const std::string bytes = CheckpointOf(original);

  ItaServer used({.window = WindowSpec::CountBased(8)});
  ASSERT_TRUE(used.RegisterQuery(MakeQuery(1, {{1, 1.0}})).ok());
  const Status status = RestoreFrom(used, bytes);
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
  EXPECT_NE(status.message().find("freshly constructed"), std::string::npos);
}

TEST(ServerCheckpointTest, StrategyNameMismatchIsFailedPrecondition) {
  ItaServer original({.window = WindowSpec::CountBased(8)});
  Populate(original);
  NaiveServer wrong({.window = WindowSpec::CountBased(8)});
  const Status status = RestoreFrom(wrong, CheckpointOf(original));
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
  EXPECT_NE(status.message().find("'ita'"), std::string::npos);
}

TEST(ServerCheckpointTest, WindowMismatchIsFailedPrecondition) {
  ItaServer original({.window = WindowSpec::CountBased(8)});
  Populate(original);
  const std::string bytes = CheckpointOf(original);

  ItaServer wider({.window = WindowSpec::CountBased(16)});
  EXPECT_TRUE(RestoreFrom(wider, bytes).IsFailedPrecondition());
  ItaServer timed({.window = WindowSpec::TimeBased(100)});
  EXPECT_TRUE(RestoreFrom(timed, bytes).IsFailedPrecondition());
}

TEST(ServerCheckpointTest, MissingStrategySectionIsNotFound) {
  ItaServer original({.window = WindowSpec::CountBased(8)});
  Populate(original);
  const std::string full = CheckpointOf(original);
  const auto reader = persist::SnapshotReader::Open(full);
  ASSERT_TRUE(reader.ok());

  // Rebuild the container without the strategy's own section.
  std::string partial;
  persist::SnapshotWriter writer(&partial);
  for (const std::string& name : reader->SectionNames()) {
    if (name == "ita/state") continue;
    writer.AddSection(name, *reader->Section(name));
  }
  ItaServer restored({.window = WindowSpec::CountBased(8)});
  const Status status = RestoreFrom(restored, partial);
  EXPECT_TRUE(status.IsNotFound()) << status.ToString();
}

}  // namespace
}  // namespace ita
