// The write-ahead epoch log (persist/epoch_log.h): appended SimEpochs
// round-trip byte-exactly through ParseEpochLog, torn tails behave per
// TornTailPolicy, and interior damage fails with the typed Status the
// recovery protocol keys on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "persist/epoch_log.h"
#include "persist/wire.h"
#include "sim/event_stream.h"
#include "testing/builders.h"

namespace ita::persist {
namespace {

using ::ita::testing::MakeDoc;
using ::ita::testing::MakeQuery;

/// A representative epoch exercising every field of the record payload.
sim::SimEpoch FullEpoch(std::uint64_t index) {
  sim::SimEpoch epoch;
  epoch.index = index;
  epoch.unregister = {QueryId(3), QueryId(1)};
  epoch.register_ids = {QueryId(7), QueryId(8)};
  epoch.register_queries = {MakeQuery(2, {{5, 0.5}, {9, 1.25}}),
                            MakeQuery(4, {{2, 0.75}})};
  epoch.batch.push_back(MakeDoc({{5, 0.5}, {11, 2.0}}, Timestamp(100 + index)));
  epoch.batch.push_back(MakeDoc({{9, 1.0}}, Timestamp(101 + index)));
  epoch.batch.back().token_count = 17;
  epoch.has_advance = true;
  epoch.advance_to = Timestamp(200 + index);
  return epoch;
}

/// Equality via the canonical serialization — the same identity the
/// stream fingerprint uses.
std::string Canonical(const sim::SimEpoch& epoch) {
  std::string bytes;
  sim::SerializeEpoch(epoch, &bytes);
  return bytes;
}

TEST(EpochLogTest, RoundTripsRecords) {
  EpochLog log;
  EXPECT_TRUE(log.empty());
  std::vector<sim::SimEpoch> want;
  for (std::uint64_t i = 0; i < 5; ++i) {
    want.push_back(FullEpoch(i));
    log.Append(want.back());
  }
  EXPECT_EQ(log.records(), 5u);
  EXPECT_FALSE(log.empty());

  const auto got = ParseEpochLog(log.bytes(), TornTailPolicy::kFail);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(Canonical((*got)[i]), Canonical(want[i])) << "record " << i;
  }
}

TEST(EpochLogTest, EmptyAndAdvanceOnlyEpochsRoundTrip) {
  EpochLog log;
  sim::SimEpoch empty;
  empty.index = 42;
  log.Append(empty);
  sim::SimEpoch advance_only;
  advance_only.index = 43;
  advance_only.has_advance = true;
  advance_only.advance_to = 999;
  log.Append(advance_only);

  const auto got = ParseEpochLog(log.bytes(), TornTailPolicy::kFail);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ(Canonical((*got)[0]), Canonical(empty));
  EXPECT_EQ(Canonical((*got)[1]), Canonical(advance_only));
}

TEST(EpochLogTest, ClearResetsTheLog) {
  EpochLog log;
  log.Append(FullEpoch(0));
  log.Clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.records(), 0u);
  EXPECT_TRUE(log.bytes().empty());
  const auto got = ParseEpochLog(log.bytes(), TornTailPolicy::kFail);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST(EpochLogTest, TornTailTruncatesOrFailsPerPolicy) {
  EpochLog log;
  log.Append(FullEpoch(0));
  log.Append(FullEpoch(1));
  const std::size_t intact = log.bytes().size();
  log.Append(FullEpoch(2));

  // Tear every possible number of bytes off the final record (tearing
  // ALL of it leaves a valid shorter log, so stop one short): kTruncate
  // always yields exactly the two intact records, kFail always refuses
  // with the torn-record IoError.
  for (std::size_t cut = 1; cut < log.bytes().size() - intact; ++cut) {
    const std::string_view torn =
        std::string_view(log.bytes()).substr(0, log.bytes().size() - cut);
    const auto truncated = ParseEpochLog(torn, TornTailPolicy::kTruncate);
    ASSERT_TRUE(truncated.ok()) << "cut=" << cut;
    EXPECT_EQ(truncated->size(), 2u) << "cut=" << cut;

    const Status failed = ParseEpochLog(torn, TornTailPolicy::kFail).status();
    ASSERT_TRUE(failed.IsIoError()) << "cut=" << cut << ": " << failed.ToString();
    EXPECT_NE(failed.message().find("torn final log record"), std::string::npos);
  }
}

TEST(EpochLogTest, TearTailHelperMatchesManualTruncation) {
  EpochLog log;
  log.Append(FullEpoch(0));
  log.Append(FullEpoch(1));
  const std::size_t before = log.bytes().size();
  log.TearTail(3);
  EXPECT_EQ(log.bytes().size(), before - 3);
  const auto got = ParseEpochLog(log.bytes(), TornTailPolicy::kTruncate);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 1u);
}

TEST(EpochLogTest, ChecksumDamagedFinalRecordIsTorn) {
  // A checksum-failing FINAL record is indistinguishable from a crash
  // mid-payload-write: kTruncate drops it, kFail reports it torn.
  EpochLog log;
  log.Append(FullEpoch(0));
  log.Append(FullEpoch(1));
  std::string bytes(log.bytes());
  bytes[bytes.size() - 1] ^= 0x10;  // inside the final record's payload

  const auto truncated = ParseEpochLog(bytes, TornTailPolicy::kTruncate);
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(truncated->size(), 1u);
  EXPECT_TRUE(ParseEpochLog(bytes, TornTailPolicy::kFail).status().IsIoError());
}

TEST(EpochLogTest, InteriorChecksumDamageIsInternalUnderBothPolicies) {
  EpochLog log;
  log.Append(FullEpoch(0));
  const std::size_t first_record = log.bytes().size();
  log.Append(FullEpoch(1));
  std::string bytes(log.bytes());
  bytes[first_record - 1] ^= 0x10;  // inside the FIRST record's payload

  for (const TornTailPolicy policy :
       {TornTailPolicy::kFail, TornTailPolicy::kTruncate}) {
    const Status status = ParseEpochLog(bytes, policy).status();
    ASSERT_TRUE(status.IsInternal()) << status.ToString();
    EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos);
  }
}

TEST(EpochLogTest, UnknownRecordTypeIsInvalidArgument) {
  EpochLog log;
  log.Append(FullEpoch(0));
  std::string bytes(log.bytes());
  WireWriter w(&bytes);
  w.PutU8(99);  // not kEpochRecordType
  w.PutU64(0);
  w.PutU64(Fnv1a(""));
  const Status status =
      ParseEpochLog(bytes, TornTailPolicy::kTruncate).status();
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(EpochLogTest, MalformedPayloadIsInternal) {
  // A record whose frame and checksum are fine but whose payload is not
  // a SimEpoch: corruption proper, never silently swallowed.
  std::string payload = "not an epoch";
  std::string bytes;
  WireWriter w(&bytes);
  w.PutU8(kEpochRecordType);
  w.PutU64(payload.size());
  w.PutU64(Fnv1a(payload));
  bytes.append(payload);
  // Append a valid record after it so the bad one is interior.
  {
    EpochLog log;
    log.Append(FullEpoch(1));
    bytes.append(log.bytes());
  }
  const Status status = ParseEpochLog(bytes, TornTailPolicy::kFail).status();
  EXPECT_TRUE(status.IsInternal()) << status.ToString();
}

}  // namespace
}  // namespace ita::persist
