// End-to-end corruption detection on real server snapshots and logs:
// every way a snapshot or WAL can be damaged in the wild — truncated
// copy, flipped checksum byte, torn final log record, version-mismatch
// header — must fail the recovery path with the documented typed Status,
// never restore garbage.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ita_server.h"
#include "persist/epoch_log.h"
#include "persist/snapshot.h"
#include "sim/event_stream.h"
#include "sim/scenario.h"
#include "stream/window.h"
#include "testing/builders.h"

namespace ita {
namespace {

using ::ita::testing::MakeDoc;
using ::ita::testing::MakeQuery;

/// A real, populated ItaServer snapshot to corrupt.
std::string RealSnapshot() {
  ItaServer server({.window = WindowSpec::CountBased(8)});
  EXPECT_TRUE(
      server.RegisterQuery(MakeQuery(2, {{TermId(1), 1.0}, {TermId(2), 0.5}}))
          .ok());
  EXPECT_TRUE(server.RegisterQuery(MakeQuery(3, {{TermId(2), 2.0}})).ok());
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(server
                    .Ingest(MakeDoc({{TermId(1 + i % 3), 0.3 + 0.05 * i}},
                                    Timestamp(i)))
                    .ok());
  }
  std::string bytes;
  persist::SnapshotWriter writer(&bytes);
  EXPECT_TRUE(server.Checkpoint(writer).ok());
  return bytes;
}

Status RestoreFrom(std::string_view bytes) {
  auto reader = persist::SnapshotReader::Open(bytes);
  if (!reader.ok()) return reader.status();
  ItaServer server({.window = WindowSpec::CountBased(8)});
  return server.Restore(*reader);
}

TEST(CorruptionTest, TruncatedSnapshotFailsRestore) {
  const std::string bytes = RealSnapshot();
  for (const double fraction : {0.25, 0.5, 0.9, 0.999}) {
    const auto len = static_cast<std::size_t>(bytes.size() * fraction);
    const Status status = RestoreFrom(std::string_view(bytes).substr(0, len));
    ASSERT_FALSE(status.ok()) << "restored from a " << len << "-byte prefix";
    EXPECT_TRUE(status.IsIoError()) << status.ToString();
  }
}

TEST(CorruptionTest, FlippedByteFailsRestore) {
  const std::string pristine = RealSnapshot();
  ASSERT_TRUE(RestoreFrom(pristine).ok());
  // Flip one bit at a spread of offsets past the header: every section
  // is checksummed, so any payload damage must surface as Internal (or a
  // framing IoError if the flip lands in a length field).
  for (const std::size_t at :
       {pristine.size() / 4, pristine.size() / 2, pristine.size() - 2}) {
    std::string bytes = pristine;
    bytes[at] ^= 0x20;
    const Status status = RestoreFrom(bytes);
    ASSERT_FALSE(status.ok()) << "flip at " << at << " restored";
  }
}

TEST(CorruptionTest, VersionMismatchHeaderFailsRestore) {
  std::string bytes = RealSnapshot();
  bytes[sizeof(persist::kSnapshotMagic)] =
      static_cast<char>(persist::kSnapshotVersion + 1);
  const Status status = RestoreFrom(bytes);
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
}

TEST(CorruptionTest, NotASnapshotFailsRestore) {
  EXPECT_TRUE(RestoreFrom("definitely not a snapshot").IsInvalidArgument());
}

TEST(CorruptionTest, TornFinalLogRecordBehavesPerPolicy) {
  // A real scenario stream through the WAL, torn mid-final-record: the
  // kFail policy names the torn record; the recovery policy (kTruncate)
  // yields exactly the intact prefix.
  sim::ScenarioSpec spec = sim::ZipfDriftScenario(11);
  spec.events = 400;
  sim::EventStreamGenerator generator(spec);
  persist::EpochLog log;
  std::size_t appended = 0;
  while (auto epoch = generator.NextEpoch()) {
    log.Append(*epoch);
    ++appended;
  }
  ASSERT_GT(appended, 2u);
  log.TearTail(5);

  const auto intact =
      persist::ParseEpochLog(log.bytes(), persist::TornTailPolicy::kTruncate);
  ASSERT_TRUE(intact.ok()) << intact.status().ToString();
  EXPECT_EQ(intact->size(), appended - 1);

  const Status status =
      persist::ParseEpochLog(log.bytes(), persist::TornTailPolicy::kFail)
          .status();
  EXPECT_TRUE(status.IsIoError()) << status.ToString();
  EXPECT_NE(status.message().find("torn final log record"), std::string::npos);
}

TEST(CorruptionTest, InteriorLogDamageIsNeverSilentlyTruncated) {
  sim::ScenarioSpec spec = sim::ZipfDriftScenario(13);
  spec.events = 200;
  sim::EventStreamGenerator generator(spec);
  persist::EpochLog log;
  while (auto epoch = generator.NextEpoch()) log.Append(*epoch);
  ASSERT_GT(log.records(), 1u);
  std::string bytes(log.bytes());
  // Offset 20 sits inside the FIRST record's payload (the frame header
  // is 17 bytes), so the damage is interior — corruption proper, not a
  // tear — and must fail even under the lenient recovery policy.
  bytes[20] ^= 0x08;

  const Status status =
      persist::ParseEpochLog(bytes, persist::TornTailPolicy::kTruncate)
          .status();
  ASSERT_TRUE(status.IsInternal()) << status.ToString();
}

}  // namespace
}  // namespace ita
