// The snapshot container format (persist/snapshot.h): header + named
// checksummed sections round-trip exactly, and every corruption mode
// maps to the distinct typed Status the header documents — bad magic,
// version mismatch, truncation, checksum damage, duplicates.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "persist/snapshot.h"
#include "persist/wire.h"

namespace ita::persist {
namespace {

std::string TwoSectionContainer() {
  std::string bytes;
  SnapshotWriter writer(&bytes);
  writer.AddSection("alpha", "payload-one");
  writer.AddSection("beta", std::string("\x00\x01\x02", 3));
  return bytes;
}

TEST(SnapshotFormatTest, RoundTripsSections) {
  const std::string bytes = TwoSectionContainer();
  const auto reader = SnapshotReader::Open(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  EXPECT_TRUE(reader->Has("alpha"));
  EXPECT_TRUE(reader->Has("beta"));
  EXPECT_FALSE(reader->Has("gamma"));
  EXPECT_EQ(reader->SectionNames(),
            (std::vector<std::string>{"alpha", "beta"}));

  const auto alpha = reader->Section("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(*alpha, "payload-one");
  const auto beta = reader->Section("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(*beta, std::string_view("\x00\x01\x02", 3));

  EXPECT_TRUE(reader->Section("gamma").status().IsNotFound());
}

TEST(SnapshotFormatTest, EmptyContainerAndEmptyPayloadAreValid) {
  std::string bytes;
  SnapshotWriter writer(&bytes);
  writer.AddSection("empty", "");
  const auto reader = SnapshotReader::Open(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const auto empty = reader->Section("empty");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  std::string header_only;
  { SnapshotWriter w(&header_only); }
  const auto bare = SnapshotReader::Open(header_only);
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  EXPECT_TRUE(bare->SectionNames().empty());
}

TEST(SnapshotFormatTest, BadMagicIsInvalidArgument) {
  std::string bytes = TwoSectionContainer();
  bytes[0] = 'X';
  EXPECT_TRUE(SnapshotReader::Open(bytes).status().IsInvalidArgument());
  EXPECT_TRUE(SnapshotReader::Open("ITA").status().IsInvalidArgument());
  EXPECT_TRUE(SnapshotReader::Open("").status().IsInvalidArgument());
}

TEST(SnapshotFormatTest, VersionMismatchIsFailedPrecondition) {
  std::string bytes = TwoSectionContainer();
  bytes[sizeof(kSnapshotMagic)] = 2;  // little-endian version low byte
  const Status status = SnapshotReader::Open(bytes).status();
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
  EXPECT_NE(status.message().find("version 2"), std::string::npos);
}

TEST(SnapshotFormatTest, TruncationNeverYieldsTheFullSectionSet) {
  const std::string bytes = TwoSectionContainer();
  // Chop at every prefix short of the full container. Cuts that land
  // exactly on a section boundary parse as a valid SHORTER container —
  // the format has section-granular integrity, and a consumer missing a
  // section gets NotFound at restore (pinned by server_checkpoint_test).
  // Every cut INSIDE the header or a section must fail closed with the
  // typed error: InvalidArgument in the magic, IoError after it.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto reader =
        SnapshotReader::Open(std::string_view(bytes).substr(0, len));
    if (reader.ok()) {
      EXPECT_LT(reader->SectionNames().size(), 2u)
          << "a " << len << "-byte prefix yielded the full container";
      continue;
    }
    const Status& status = reader.status();
    ASSERT_TRUE(status.IsIoError() || status.IsInvalidArgument())
        << "prefix " << len << ": " << status.ToString();
  }
}

TEST(SnapshotFormatTest, FlippedPayloadByteIsInternal) {
  std::string bytes = TwoSectionContainer();
  // Flip one byte of the LAST section's payload (the container tail).
  bytes[bytes.size() - 1] ^= 0x40;
  const Status status = SnapshotReader::Open(bytes).status();
  EXPECT_TRUE(status.IsInternal()) << status.ToString();
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
}

TEST(SnapshotFormatTest, FlippedChecksumByteIsInternal) {
  std::string bytes;
  SnapshotWriter writer(&bytes);
  const std::size_t before = bytes.size();
  writer.AddSection("only", "stable-payload");
  // Section layout: name_len u32 | name | payload_len u64 | fnv u64 | payload.
  const std::size_t fnv_at = before + 4 + 4 + 8;
  bytes[fnv_at] ^= 0x01;
  const Status status = SnapshotReader::Open(bytes).status();
  EXPECT_TRUE(status.IsInternal()) << status.ToString();
}

TEST(SnapshotFormatTest, DuplicateSectionIsInternal) {
  std::string bytes;
  SnapshotWriter writer(&bytes);
  writer.AddSection("twice", "a");
  writer.AddSection("twice", "b");
  const Status status = SnapshotReader::Open(bytes).status();
  EXPECT_TRUE(status.IsInternal()) << status.ToString();
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);
}

TEST(SnapshotFormatTest, LyingPayloadLengthIsIoError) {
  std::string bytes;
  SnapshotWriter writer(&bytes);
  writer.AddSection("liar", "short");
  WireWriter w(&bytes);  // splice a section whose length overruns the buffer
  w.PutU32(3);
  bytes.append("bad");
  w.PutU64(1'000'000);
  w.PutU64(0);
  EXPECT_TRUE(SnapshotReader::Open(bytes).status().IsIoError());
}

}  // namespace
}  // namespace ita::persist
