// Cross-shape restore (DESIGN.md §14): a ShardedServer snapshot taken
// at S restores into a freshly constructed S′ engine. The shared window
// arena and the stream clocks carry over verbatim; every persisted
// query is re-registered on its id-hash home at the new width,
// recomputing its exact top-k — bit-identical to the snapshotted
// results by placement independence. Rebalancer load state restarts at
// zero cross-shape (it described a fleet of the old width) but carries
// verbatim same-shape. Every byte-prefix of a snapshot fed through the
// cross-shape path yields a typed error, never a crash or a partially
// restored engine.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "exec/sharded_server.h"
#include "stream/window.h"
#include "testing/builders.h"

namespace ita::exec {
namespace {

using ::ita::testing::MakeDoc;
using ::ita::testing::MakeQuery;

ShardedServerOptions Options(std::size_t shards) {
  ShardedServerOptions options;
  options.window = WindowSpec::CountBased(32);
  options.shards = shards;
  options.threads = 2;
  // Rebalancing on with a hair trigger, so the snapshotted placement is
  // NOT the id-hash layout — exactly what the cross-shape remap absorbs.
  options.rebalance.mode = RebalanceMode::kAggressive;
  return options;
}

std::vector<QueryId> Populate(ShardedServer& server, int queries, int epochs) {
  std::vector<QueryId> ids;
  for (int i = 0; i < queries; ++i) {
    const auto id = server.RegisterQuery(
        MakeQuery(3, {{TermId(1 + i % 4), 1.0}, {TermId(9), 0.3 + 0.1 * i}}));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  for (int e = 0; e < epochs; ++e) {
    std::vector<Document> batch;
    for (int i = 0; i < 4; ++i) {
      batch.push_back(MakeDoc({{TermId(1 + (e + i) % 5), 0.3 + 0.07 * i},
                               {TermId(9), 0.8 - 0.02 * e}},
                              Timestamp(100 * e + i)));
    }
    EXPECT_TRUE(server.IngestBatch(std::move(batch)).ok());
  }
  return ids;
}

void Continue(ShardedServer& server, int epochs, Timestamp t0) {
  for (int e = 0; e < epochs; ++e) {
    std::vector<Document> batch;
    for (int i = 0; i < 3; ++i) {
      batch.push_back(MakeDoc({{TermId(2 + (e + i) % 4), 0.5 + 0.06 * i},
                               {TermId(9), 0.4}},
                              t0 + Timestamp(10 * e + i)));
    }
    ASSERT_TRUE(server.IngestBatch(std::move(batch)).ok());
  }
}

class CrossShapeRoundTrip
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(CrossShapeRoundTrip, ResultsAndContinuationMatch) {
  const auto [from, to] = GetParam();
  ShardedServer original(Options(from));
  const std::vector<QueryId> ids = Populate(original, 9, 6);
  std::string bytes;
  ASSERT_TRUE(original.Checkpoint(&bytes).ok());

  ShardedServer restored(Options(to));
  ASSERT_TRUE(restored.Restore(bytes).ok());
  EXPECT_EQ(restored.shard_count(), to);
  EXPECT_EQ(restored.query_count(), original.query_count());
  EXPECT_EQ(restored.placement_size(), ids.size());
  EXPECT_EQ(restored.window_size(), original.window_size());
  EXPECT_EQ(restored.last_arrival_time(), original.last_arrival_time());
  EXPECT_EQ(restored.epochs_processed(), original.epochs_processed());
  for (const QueryId id : ids) {
    // Remapped to the id-hash home at the new width...
    EXPECT_EQ(restored.ShardOf(id), id % to) << "query " << id;
    // ...with the snapshotted result reproduced exactly.
    const auto got = restored.Result(id);
    const auto want = original.Result(id);
    ASSERT_TRUE(got.ok() && want.ok()) << "query " << id;
    EXPECT_EQ(*got, *want) << "query " << id;
  }
  ASSERT_TRUE(restored.ValidatePruningMetadata().ok());

  // The stream continues in lockstep with a reference engine that ran
  // at the NEW width over the full history — including churn: the
  // persisted next_query_id carries over, so new ids line up.
  ShardedServer reference(Options(to));
  Populate(reference, 9, 6);
  for (ShardedServer* server : {&restored, &reference}) {
    ASSERT_TRUE(server->UnregisterQuery(ids[2]).ok());
    const auto next = server->RegisterQuery(MakeQuery(2, {{TermId(3), 1.5}}));
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(*next, ids.back() + 1);
    Continue(*server, 4, 1'000);
  }
  for (QueryId id : ids) {
    if (id == ids[2]) continue;
    const auto got = restored.Result(id);
    const auto want = reference.Result(id);
    ASSERT_TRUE(got.ok() && want.ok()) << "query " << id;
    EXPECT_EQ(*got, *want) << "query " << id;
  }
  const auto got = restored.Result(ids.back() + 1);
  const auto want = reference.Result(ids.back() + 1);
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(*got, *want);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CrossShapeRoundTrip,
                         ::testing::Values(std::make_pair(2u, 4u),
                                           std::make_pair(4u, 2u),
                                           std::make_pair(1u, 3u)),
                         [](const auto& info) {
                           return std::to_string(info.param.first) + "to" +
                                  std::to_string(info.param.second);
                         });

TEST(CrossShapeRestoreTest, RebalancerStateZeroesCrossShapeCarriesSameShape) {
  ShardedServer original(Options(3));
  Populate(original, 12, 8);  // aggressive rebalance → nonzero EMAs
  bool any_load = false;
  for (const double ema : original.load_ema()) any_load |= ema > 0.0;
  ASSERT_TRUE(any_load) << "population too small to accumulate load";
  std::string bytes;
  ASSERT_TRUE(original.Checkpoint(&bytes).ok());

  // Same shape: the persisted estimates reinstate verbatim.
  ShardedServer same(Options(3));
  ASSERT_TRUE(same.Restore(bytes).ok());
  ASSERT_EQ(same.load_ema().size(), original.load_ema().size());
  for (std::size_t s = 0; s < same.load_ema().size(); ++s) {
    EXPECT_DOUBLE_EQ(same.load_ema()[s], original.load_ema()[s])
        << "shard " << s;
  }
  EXPECT_EQ(same.rebalance_stats().queries_migrated,
            original.rebalance_stats().queries_migrated);

  // Cross shape: the estimates described a 3-wide fleet — a 2-wide
  // engine starts measuring from scratch.
  ShardedServer cross(Options(2));
  ASSERT_TRUE(cross.Restore(bytes).ok());
  ASSERT_EQ(cross.load_ema().size(), 2u);
  for (const double ema : cross.load_ema()) EXPECT_EQ(ema, 0.0);
  EXPECT_EQ(cross.rebalance_stats().queries_migrated, 0u);
  EXPECT_EQ(cross.rebalance_stats().rebalance_events, 0u);
}

TEST(CrossShapeRestoreTest, EveryPrefixFailsTypedNeverPartial) {
  // Small population on purpose: the walk is O(bytes) restores.
  ShardedServerOptions small = Options(3);
  small.window = WindowSpec::CountBased(8);
  ShardedServer original(small);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        original.RegisterQuery(MakeQuery(2, {{TermId(1 + i), 1.0}})).ok());
  }
  Continue(original, 2, 0);
  std::string bytes;
  ASSERT_TRUE(original.Checkpoint(&bytes).ok());

  ShardedServerOptions two = Options(3);
  two.window = WindowSpec::CountBased(8);
  two.shards = 2;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ShardedServer engine(two);
    const Status status = engine.Restore(bytes.substr(0, len));
    ASSERT_FALSE(status.ok()) << "prefix of " << len << " bytes restored";
    ASSERT_TRUE(status.IsIoError() || status.IsInvalidArgument() ||
                status.IsNotFound())
        << "prefix " << len << ": " << status.ToString();
  }
  // The full bytes still restore — the walk didn't corrupt anything.
  ShardedServer engine(two);
  ASSERT_TRUE(engine.Restore(bytes).ok());
}

TEST(CrossShapeRestoreTest, FlippedByteInsideARegistryFailsTyped) {
  ShardedServer original(Options(2));
  Populate(original, 6, 3);
  std::string bytes;
  ASSERT_TRUE(original.Checkpoint(&bytes).ok());
  // Damage a byte in the middle — lands inside a section payload; the
  // container checksum or a registry parse must catch it cross-shape.
  std::string damaged = bytes;
  damaged[damaged.size() / 2] ^= 0x40;
  ShardedServer restored(Options(5));
  const Status status = restored.Restore(damaged);
  EXPECT_FALSE(status.ok());
  // The failed engine is still a valid empty engine, not a partial one.
  EXPECT_EQ(restored.query_count(), 0u);
  EXPECT_EQ(restored.window_size(), 0u);
}

}  // namespace
}  // namespace ita::exec
