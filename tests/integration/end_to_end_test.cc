// End-to-end tests over the full public pipeline: raw text -> Analyzer ->
// server -> results/listeners, exercising the scenarios the paper's
// introduction motivates (news monitoring, email threat profiles).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "../testing/builders.h"
#include "core/ita_server.h"
#include "core/naive_server.h"
#include "core/oracle_server.h"
#include "stream/arrival_process.h"
#include "text/analyzer.h"

namespace ita {
namespace {

using testing::Ids;

const char* kNewsFeed[] = {
    "Oil prices surged after supply cuts were announced by producers.",
    "The central bank kept interest rates unchanged amid inflation fears.",
    "A breakthrough in battery technology boosts electric vehicle range.",
    "Quarterly earnings at the bank beat analyst expectations.",
    "New explosives detection system deployed at major airports.",
    "Electric vehicle maker announces record deliveries this quarter.",
    "Analysts expect oil demand to soften as inventories build.",
    "The merger between the two banks cleared its final regulatory hurdle.",
    "Authorities seized chemicals linked to improvised explosives.",
    "Battery startup raises funding to scale solid state production.",
};

TEST(EndToEndTest, NewsMonitoringScenario) {
  Analyzer analyzer;
  ItaServer server{ServerOptions{WindowSpec::CountBased(8)}};

  const auto oil = server.RegisterQuery(*analyzer.MakeQuery("oil prices demand", 3));
  const auto ev = server.RegisterQuery(
      *analyzer.MakeQuery("electric vehicle battery", 3));
  ASSERT_TRUE(oil.ok());
  ASSERT_TRUE(ev.ok());

  Timestamp t = 0;
  std::vector<DocId> ids;
  for (const char* text : kNewsFeed) {
    const auto id = server.Ingest(analyzer.MakeDocument(text, t += 1000));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  const auto oil_result = server.Result(*oil);
  ASSERT_TRUE(oil_result.ok());
  ASSERT_FALSE(oil_result->empty());
  // Doc 7 ("oil demand ... inventories") and doc 1 ("oil prices surged")
  // are the oil-related stories; doc 1 has left the window (size 8, 10
  // docs streamed), so doc 7 must lead.
  EXPECT_EQ(oil_result->front().doc, ids[6]);

  const auto ev_result = server.Result(*ev);
  ASSERT_TRUE(ev_result.ok());
  ASSERT_GE(ev_result->size(), 2u);
  // Battery/EV stories: docs 3, 6, 10; doc 3 expired (window 8).
  for (const ResultEntry& e : *ev_result) {
    EXPECT_TRUE(e.doc == ids[5] || e.doc == ids[9] || e.doc == ids[2]);
  }
}

TEST(EndToEndTest, ThreatProfileListenerFires) {
  Analyzer analyzer;
  ItaServer server{ServerOptions{WindowSpec::CountBased(20)}};
  const auto threat =
      server.RegisterQuery(*analyzer.MakeQuery("explosives chemicals detection", 2));
  ASSERT_TRUE(threat.ok());

  std::vector<std::vector<DocId>> alerts;
  server.SetResultListener([&](QueryId q, const std::vector<ResultEntry>& r) {
    EXPECT_EQ(q, *threat);
    alerts.push_back(testing::Ids(r));
  });

  Timestamp t = 0;
  for (const char* text : kNewsFeed) {
    ASSERT_TRUE(server.Ingest(analyzer.MakeDocument(text, t += 1000)).ok());
  }
  // Exactly the two threat-related stories (docs 5 and 9) and no others
  // should have triggered alerts.
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].front(), 5u);
  EXPECT_EQ(alerts[1].front(), 9u);
}

TEST(EndToEndTest, TimeBasedWindowWithPoissonArrivals) {
  Analyzer analyzer;
  // 15-minute window over a 200 docs/sec Poisson stream — the paper's
  // example query, scaled down: keep documents from the last 50ms.
  ItaServer server{ServerOptions{WindowSpec::TimeBased(50'000)}};
  const auto id = server.RegisterQuery(*analyzer.MakeQuery("alpha beta", 5));
  ASSERT_TRUE(id.ok());

  PoissonProcess arrivals(200.0, 99);
  int matching = 0;
  for (int i = 0; i < 100; ++i) {
    const Timestamp t = arrivals.Next();
    const std::string text =
        (i % 3 == 0) ? "alpha beta gamma payload" : "unrelated filler content";
    if (i % 3 == 0) ++matching;
    ASSERT_TRUE(server.Ingest(analyzer.MakeDocument(text, t)).ok());
  }
  const auto result = server.Result(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->size(), 5u);
  // Every reported document must still be inside the time window.
  for (const ResultEntry& e : *result) {
    ASSERT_TRUE(server.documents().Get(e.doc).has_value());
  }
  // Idle period expires everything.
  ASSERT_TRUE(server.AdvanceTime(arrivals.Now() + 60'000).ok());
  EXPECT_TRUE(server.Result(*id)->empty());
  EXPECT_EQ(server.window_size(), 0u);
}

TEST(EndToEndTest, StemmingRecallAcrossInflections) {
  AnalyzerOptions opts;
  opts.stem = true;
  Analyzer analyzer(opts);
  ItaServer server{ServerOptions{WindowSpec::CountBased(10)}};
  const auto id = server.RegisterQuery(*analyzer.MakeQuery("monitor queries", 5));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(
      server.Ingest(analyzer.MakeDocument("monitoring continuous query streams", 1))
          .ok());
  const auto result = server.Result(*id);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);  // matched via stems monitor/queri
}

TEST(EndToEndTest, ThreeServersAgreeOnTextWorkload) {
  Analyzer analyzer;
  ServerOptions opts{WindowSpec::CountBased(6)};
  ItaServer ita_server{opts};
  NaiveServer naive{opts};
  OracleServer oracle{opts};

  const Query q = *analyzer.MakeQuery("bank earnings merger", 3);
  const auto a = ita_server.RegisterQuery(q);
  const auto b = naive.RegisterQuery(q);
  const auto c = oracle.RegisterQuery(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());

  Timestamp t = 0;
  for (int round = 0; round < 3; ++round) {
    for (const char* text : kNewsFeed) {
      const Document doc = analyzer.MakeDocument(text, t += 500);
      ASSERT_TRUE(ita_server.Ingest(doc).ok());
      ASSERT_TRUE(naive.Ingest(doc).ok());
      ASSERT_TRUE(oracle.Ingest(doc).ok());
      const auto ra = ita_server.Result(*a);
      const auto rb = naive.Result(*b);
      const auto rc = oracle.Result(*c);
      ASSERT_TRUE(ra.ok());
      ASSERT_TRUE(rb.ok());
      ASSERT_TRUE(rc.ok());
      ASSERT_EQ(Ids(*ra), Ids(*rc));
      ASSERT_EQ(Ids(*rb), Ids(*rc));
    }
  }
}

TEST(EndToEndTest, HeavyChurnSmoke) {
  // A longer mixed workload as a memory-safety / stability smoke test.
  Analyzer analyzer;
  ItaServer server{ServerOptions{WindowSpec::CountBased(50)}};
  std::vector<QueryId> ids;
  const char* query_strings[] = {"alpha beta", "gamma delta epsilon",
                                 "zeta eta", "theta iota kappa", "lambda mu"};
  for (const char* qs : query_strings) {
    const auto id = server.RegisterQuery(*analyzer.MakeQuery(qs, 4));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon", "zeta",
                         "eta",   "theta", "iota", "kappa", "lambda",  "mu",
                         "nu",    "xi",    "omicron"};
  Rng rng(5);
  Timestamp t = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    const int len = 3 + static_cast<int>(rng.UniformInt(0, 8));
    for (int w = 0; w < len; ++w) {
      text += words[rng.UniformInt(0, 14)];
      text += ' ';
    }
    ASSERT_TRUE(server.Ingest(analyzer.MakeDocument(text, t += 100)).ok());
    if (i % 500 == 499) {
      // Rotate a query.
      ASSERT_TRUE(server.UnregisterQuery(ids[0]).ok());
      ids.erase(ids.begin());
      const auto id = server.RegisterQuery(*analyzer.MakeQuery("nu xi omicron", 4));
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
  }
  for (const QueryId id : ids) {
    EXPECT_TRUE(server.Result(id).ok());
  }
  EXPECT_EQ(server.window_size(), 50u);
}

}  // namespace
}  // namespace ita
