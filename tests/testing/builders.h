// Small construction helpers shared by the core/property/integration test
// suites: documents and queries with hand-picked term weights, bypassing
// the analyzer for precise control.

#pragma once

#include <algorithm>
#include <initializer_list>
#include <vector>

#include "core/query.h"
#include "core/result_set.h"
#include "stream/document.h"

namespace ita {
namespace testing {

/// A document with an explicit composition list. Entries are sorted by
/// term id automatically; the id is left unassigned (the server sets it).
inline Document MakeDoc(std::initializer_list<TermWeight> composition,
                        Timestamp arrival_time = 0) {
  Document doc;
  doc.arrival_time = arrival_time;
  doc.composition.assign(composition);
  std::sort(doc.composition.begin(), doc.composition.end(),
            [](const TermWeight& a, const TermWeight& b) { return a.term < b.term; });
  return doc;
}

/// A query with explicit term weights (sorted by term id automatically).
inline Query MakeQuery(int k, std::initializer_list<TermWeight> terms) {
  Query query;
  query.k = k;
  query.terms.assign(terms);
  std::sort(query.terms.begin(), query.terms.end(),
            [](const TermWeight& a, const TermWeight& b) { return a.term < b.term; });
  return query;
}

/// Scores of a result, in reported order.
inline std::vector<double> Scores(const std::vector<ResultEntry>& result) {
  std::vector<double> out;
  out.reserve(result.size());
  for (const ResultEntry& e : result) out.push_back(e.score);
  return out;
}

/// Document ids of a result, in reported order.
inline std::vector<DocId> Ids(const std::vector<ResultEntry>& result) {
  std::vector<DocId> out;
  out.reserve(result.size());
  for (const ResultEntry& e : result) out.push_back(e.doc);
  return out;
}

}  // namespace testing
}  // namespace ita
