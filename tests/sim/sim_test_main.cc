// Custom test main for the sim suites: InitGoogleTest first (it strips
// gtest's own flags), then parse the simulator's replay flags from what
// remains and from the environment. See sim_test_support.h for the
// contract.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/sim_test_support.h"

namespace ita {
namespace sim_test {
namespace {

std::uint64_t g_seed_override = 0;
std::uint64_t g_events_override = 0;

/// Strict decimal parse: the whole token must convert, or the process
/// aborts loudly — a silently mis-parsed replay value (e.g. "1e6" read
/// as 1) would defeat the failing-seed replay loop these flags exist
/// for. (0 remains the "no override" sentinel; scenario defaults use
/// nonzero seeds, so a genuine 0 override is never needed.)
std::uint64_t ParseU64(const char* what, const std::string& text) {
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size()) {
    std::fprintf(stderr,
                 "invalid %s value '%s': expected a decimal integer "
                 "(e.g. --seed=42, ITA_SOAK_EVENTS=1000000)\n",
                 what, text.c_str());
    std::exit(2);
  }
  return value;
}

}  // namespace

std::uint64_t SeedOverride() { return g_seed_override; }
std::uint64_t EventsOverride() { return g_events_override; }
void SetSeedOverride(std::uint64_t seed) { g_seed_override = seed; }
void SetEventsOverride(std::uint64_t events) { g_events_override = events; }

}  // namespace sim_test
}  // namespace ita

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);

  // Environment first, flags second: an explicit --seed= on the command
  // line wins over ITA_SIM_SEED.
  if (const char* env = std::getenv("ITA_SIM_SEED")) {
    ita::sim_test::SetSeedOverride(
        ita::sim_test::ParseU64("ITA_SIM_SEED", env));
  }
  if (const char* env = std::getenv("ITA_SOAK_EVENTS")) {
    ita::sim_test::SetEventsOverride(
        ita::sim_test::ParseU64("ITA_SOAK_EVENTS", env));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      ita::sim_test::SetSeedOverride(
          ita::sim_test::ParseU64("--seed", arg.substr(7)));
    } else if (arg.rfind("--events=", 0) == 0) {
      ita::sim_test::SetEventsOverride(
          ita::sim_test::ParseU64("--events", arg.substr(9)));
    }
  }
  return RUN_ALL_TESTS();
}
