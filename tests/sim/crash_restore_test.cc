// The kill/restore harness itself (sim/crash_restore.h): every crash
// phase on a sequential and a sharded subject must recover to a state
// whose notification stream, final results and oracle differential are
// indistinguishable from an uninterrupted twin; option validation and
// run-to-run reproducibility are pinned alongside.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/crash_restore.h"
#include "sim/scenario.h"
#include "sim/sim_test_support.h"

namespace ita::sim {
namespace {

ScenarioSpec SmallSpec(std::uint64_t fallback_seed) {
  ScenarioSpec spec = ZipfDriftScenario(sim_test::EffectiveSeed(fallback_seed));
  spec.events = 1'200;
  return spec;
}

constexpr CrashPhase kAllPhases[] = {
    CrashPhase::kBeforeLogAppend,
    CrashPhase::kTornLogAppend,
    CrashPhase::kAfterLogAppend,
    CrashPhase::kAfterApply,
};

TEST(CrashRestoreTest, SequentialRecoversAtEveryPhase) {
  for (const CrashPhase phase : kAllPhases) {
    CrashRestoreOptions options;
    options.snapshot_every_epochs = 5;
    options.crash_epoch = 17;
    options.crash_phase = phase;
    CrashRestoreRunner runner(SmallSpec(31), options);
    const auto report = runner.Run();
    ASSERT_TRUE(report.ok())
        << CrashPhaseName(phase) << ": " << report.status().ToString();
    EXPECT_GT(report->epochs, options.crash_epoch);
    EXPECT_EQ(report->events, 1'200u);
    EXPECT_GT(report->persist.snapshots_written, 0u);
    EXPECT_EQ(report->persist.restores, 1u);
    EXPECT_GT(report->persist.log_records_appended, 0u);
    EXPECT_GT(report->persist.log_bytes_appended, 0u);
    // A crash at epoch 17 with cadence 5 always leaves a log tail to
    // replay (except kBeforeLogAppend+torn variants still replay the
    // epochs since the last snapshot).
    EXPECT_GT(report->persist.replayed_epochs, 0u)
        << CrashPhaseName(phase);
  }
}

TEST(CrashRestoreTest, ShardedRecoversAtEveryPhase) {
  for (const CrashPhase phase : kAllPhases) {
    CrashRestoreOptions options;
    options.shards = 2;
    options.snapshot_every_epochs = 6;
    options.crash_epoch = 14;
    options.crash_phase = phase;
    CrashRestoreRunner runner(SmallSpec(47), options);
    const auto report = runner.Run();
    ASSERT_TRUE(report.ok())
        << CrashPhaseName(phase) << ": " << report.status().ToString();
    EXPECT_EQ(report->persist.restores, 1u);
  }
}

TEST(CrashRestoreTest, CrashBeforeFirstSnapshotReplaysFromEmpty) {
  // Crash before the first snapshot exists: recovery is a fresh engine
  // plus a full log replay from epoch zero.
  CrashRestoreOptions options;
  options.snapshot_every_epochs = 1'000;  // never snapshots before the kill
  options.crash_epoch = 7;
  options.crash_phase = CrashPhase::kAfterApply;
  CrashRestoreRunner runner(SmallSpec(59), options);
  const auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->persist.restores, 0u);  // no snapshot to restore
  EXPECT_EQ(report->persist.replayed_epochs, 8u);  // epochs 0..7 from the log
}

TEST(CrashRestoreTest, RunsAreReproducible) {
  CrashRestoreOptions options;
  options.snapshot_every_epochs = 4;
  options.crash_epoch = 9;
  options.crash_phase = CrashPhase::kTornLogAppend;
  CrashRestoreRunner first(SmallSpec(71), options);
  CrashRestoreRunner second(SmallSpec(71), options);
  const auto a = first.Run();
  const auto b = second.Run();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->stream_fingerprint, b->stream_fingerprint);
  EXPECT_EQ(a->notification_fingerprint, b->notification_fingerprint);
  EXPECT_EQ(a->persist.snapshot_bytes, b->persist.snapshot_bytes);
  EXPECT_EQ(a->persist.log_bytes_appended, b->persist.log_bytes_appended);
}

TEST(CrashRestoreTest, RejectsBadOptions) {
  CrashRestoreOptions options;
  options.snapshot_every_epochs = 0;
  EXPECT_TRUE(
      CrashRestoreRunner(SmallSpec(1), options).Run().status().IsInvalidArgument());

  options.snapshot_every_epochs = 4;
  options.crash_epoch = 1'000'000;  // far past the stream's epoch count
  EXPECT_TRUE(
      CrashRestoreRunner(SmallSpec(1), options).Run().status().IsInvalidArgument());
}

TEST(CrashRestoreTest, ReproLineNamesTheRun) {
  ScenarioSpec spec = ZipfDriftScenario(123);
  CrashRestoreOptions options;
  options.shards = 4;
  options.crash_epoch = 5;
  options.crash_phase = CrashPhase::kTornLogAppend;
  const std::string line = CrashRestoreRunner::ReproLine(spec, options);
  EXPECT_NE(line.find("--scenario=zipf_drift"), std::string::npos);
  EXPECT_NE(line.find("--seed=123"), std::string::npos);
  EXPECT_NE(line.find("--crash-epoch=5"), std::string::npos);
  EXPECT_NE(line.find("--phase=torn-log-append"), std::string::npos);
  EXPECT_NE(line.find("--torn-cut="), std::string::npos);
}

}  // namespace
}  // namespace ita::sim
