// Metrics export over the sim fleet: ExportEngineMetrics is the single
// place the snapshot schema lives — the scenario runner's --metrics
// dump, the sharded-monitor example, and CI's metrics-smoke job all
// consume it. These tests pin the exported series for traced and
// untraced engines and the runner's end-to-end JSON + Prometheus dump.

#include "sim/metrics_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/phase_recorder.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/sim_engine.h"
#include "stream/corpus.h"

namespace ita::sim {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Streams a few epochs of synthetic docs through `engine`.
void DriveEngine(SimEngine& engine, std::size_t epochs) {
  SyntheticCorpusOptions copts;
  copts.dictionary_size = 1'000;
  copts.seed = 3;
  SyntheticCorpusGenerator corpus(copts);
  QueryWorkloadOptions qopts;
  qopts.terms_per_query = 3;
  qopts.k = 5;
  qopts.max_term = 50;
  qopts.seed = 4;
  QueryWorkloadGenerator queries(copts.dictionary_size, qopts);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(engine.RegisterQuery(queries.NextQuery()).ok());
  }
  Timestamp now = 0;
  for (std::size_t e = 0; e < epochs; ++e) {
    std::vector<Document> docs;
    for (int i = 0; i < 24; ++i) docs.push_back(corpus.NextDocument(now += 500));
    ASSERT_TRUE(engine.IngestBatch(std::move(docs)).ok());
  }
}

bool HasSeries(const obs::MetricsRegistry& registry, const std::string& name) {
  for (const auto& c : registry.counters()) {
    if (c.name == name) return true;
  }
  for (const auto& g : registry.gauges()) {
    if (g.name == name) return true;
  }
  for (const auto& h : registry.histograms()) {
    if (h.name == name) return true;
  }
  return false;
}

TEST(MetricsExportTest, UntracedEngineExportsCountersOnly) {
  auto engine = MakeSequentialEngine(SequentialStrategy::kIta,
                                     WindowSpec::CountBased(100));
  DriveEngine(*engine, 3);
  obs::MetricsRegistry registry;
  ASSERT_TRUE(ExportEngineMetrics(*engine, {obs::Label{"engine", "ita"}},
                                  &registry)
                  .ok());
  EXPECT_TRUE(HasSeries(registry, "ita_documents_ingested_total"));
  EXPECT_TRUE(HasSeries(registry, "ita_postings_bytes"));
  // No trace, no hot terms: none of the telemetry series appear.
  EXPECT_FALSE(HasSeries(registry, "ita_epochs_traced"));
  EXPECT_FALSE(HasSeries(registry, "ita_epoch_phase_nanos"));
  EXPECT_FALSE(HasSeries(registry, "ita_hot_term_load"));
  EXPECT_TRUE(obs::LintPrometheus(registry.ToPrometheus()).ok());
}

TEST(MetricsExportTest, TracedShardedEngineExportsPhaseSeries) {
  auto engine = MakeShardedEngine(WindowSpec::CountBased(100), /*shards=*/2);
  engine->EnableTracing();
  engine->EnableHotTermTracking();
  DriveEngine(*engine, 4);
  obs::MetricsRegistry registry;
  ASSERT_TRUE(ExportEngineMetrics(*engine, {obs::Label{"engine", "s2"}},
                                  &registry)
                  .ok());
#if ITA_OBS_ENABLED
  EXPECT_TRUE(HasSeries(registry, "ita_epochs_traced"));
  EXPECT_TRUE(HasSeries(registry, "ita_shard_imbalance"));
  EXPECT_TRUE(HasSeries(registry, "ita_epoch_wall_nanos"));
  EXPECT_TRUE(HasSeries(registry, "ita_epoch_phase_nanos"));
  EXPECT_TRUE(HasSeries(registry, "ita_hot_term_load"));
  // Phase histograms carry the shard and phase as labels.
  bool shard1_arrive = false;
  for (const auto& h : registry.histograms()) {
    if (h.name != "ita_epoch_phase_nanos") continue;
    bool s1 = false, arrive = false;
    for (const auto& label : h.labels) {
      s1 = s1 || (label.key == "shard" && label.value == "1");
      arrive = arrive || (label.key == "phase" && label.value == "arrive");
    }
    shard1_arrive = shard1_arrive || (s1 && arrive);
  }
  EXPECT_TRUE(shard1_arrive);
#else
  EXPECT_FALSE(HasSeries(registry, "ita_epochs_traced"));
#endif
  // Whatever was exported renders to a lintable exposition and JSON.
  EXPECT_TRUE(obs::LintPrometheus(registry.ToPrometheus()).ok());
  EXPECT_NE(registry.ToJson().find("\"version\":1"), std::string::npos);
}

TEST(MetricsExportTest, TwoEnginesShareOneRegistryViaLabels) {
  auto a = MakeSequentialEngine(SequentialStrategy::kIta,
                                WindowSpec::CountBased(50));
  auto b = MakeShardedEngine(WindowSpec::CountBased(50), /*shards=*/2);
  DriveEngine(*a, 2);
  DriveEngine(*b, 2);
  obs::MetricsRegistry registry;
  ASSERT_TRUE(
      ExportEngineMetrics(*a, {obs::Label{"engine", a->name()}}, &registry)
          .ok());
  ASSERT_TRUE(
      ExportEngineMetrics(*b, {obs::Label{"engine", b->name()}}, &registry)
          .ok());
  // Same engine label twice would collide on every series.
  EXPECT_FALSE(
      ExportEngineMetrics(*a, {obs::Label{"engine", a->name()}}, &registry)
          .ok());
  EXPECT_TRUE(obs::LintPrometheus(registry.ToPrometheus()).ok());
}

TEST(MetricsExportTest, RunnerWritesJsonAndLintedProm) {
  const ScenarioFactory* factory = FindScenario("zipf_drift");
  ASSERT_NE(factory, nullptr);
  ScenarioSpec spec = factory->make(/*seed=*/3);
  spec.events = 400;

  const std::string json_path =
      ::testing::TempDir() + "/metrics_export_test.json";
  const std::string prom_path =
      ::testing::TempDir() + "/metrics_export_test.prom";
  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());

  RunOptions options;
  options.shard_counts = {2};
  options.checker.differential_interval_epochs = 8;
  options.metrics_path = json_path;
  ScenarioRunner runner(spec, options);
  const auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const std::string json = ReadFile(json_path);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("ita_documents_ingested_total"), std::string::npos);
  // Both fleet engines appear as label sets.
  EXPECT_NE(json.find("\"engine\":\"ita\""), std::string::npos);
  EXPECT_NE(json.find("sharded(ita,2)"), std::string::npos);

  const std::string prom = ReadFile(prom_path);
  ASSERT_FALSE(prom.empty());
  EXPECT_TRUE(obs::LintPrometheus(prom).ok());
  EXPECT_NE(prom.find("# TYPE ita_documents_ingested_total counter"),
            std::string::npos);
#if ITA_OBS_ENABLED
  // A metrics dump implies tracing: the phase series are in the files.
  EXPECT_NE(json.find("ita_epoch_wall_nanos"), std::string::npos);
  EXPECT_NE(prom.find("ita_epoch_wall_nanos_bucket"), std::string::npos);
#endif
}

}  // namespace
}  // namespace ita::sim
