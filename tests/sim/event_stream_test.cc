// Shape checks on the scenario profiles: the generator must actually
// produce the regimes its knobs promise — rate bursts, topic drift,
// hot-term floods, churn storms, heavy-tailed k, ragged epochs, pooled
// steady-state mode — all deterministically.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/event_stream.h"
#include "sim/scenario.h"

namespace ita::sim {
namespace {

std::vector<SimEpoch> Drain(EventStreamGenerator& gen) {
  std::vector<SimEpoch> epochs;
  while (auto e = gen.NextEpoch()) epochs.push_back(*std::move(e));
  return epochs;
}

std::vector<Document> AllDocuments(const std::vector<SimEpoch>& epochs) {
  std::vector<Document> docs;
  for (const SimEpoch& e : epochs) {
    docs.insert(docs.end(), e.batch.begin(), e.batch.end());
  }
  return docs;
}

TEST(EventStreamTest, EmitsExactlySpecEvents) {
  ScenarioSpec spec = ZipfDriftScenario(1);
  spec.events = 1'234;
  spec.batch_size = 100;  // does not divide events: last epoch is ragged
  EventStreamGenerator gen(spec);
  const auto epochs = Drain(gen);
  EXPECT_EQ(AllDocuments(epochs).size(), spec.events);
  EXPECT_EQ(epochs.back().batch.size(), spec.events % spec.batch_size);
  EXPECT_EQ(gen.NextEpoch(), std::nullopt);  // exhausted streams stay exhausted
}

TEST(EventStreamTest, ArrivalTimesNonDecreasing) {
  for (const ScenarioFactory& factory : ScenarioCatalog()) {
    ScenarioSpec spec = factory.make(3);
    spec.events = 1'000;
    EventStreamGenerator gen(spec);
    Timestamp last = 0;
    for (const SimEpoch& e : Drain(gen)) {
      for (const Document& doc : e.batch) {
        ASSERT_GE(doc.arrival_time, last) << factory.name;
        last = doc.arrival_time;
      }
      if (e.has_advance) {
        ASSERT_GE(e.advance_to, last) << factory.name;
        last = e.advance_to;
      }
    }
  }
}

TEST(EventStreamTest, FlashCrowdBurstsRaiseTheRate) {
  ScenarioSpec spec = FlashCrowdScenario(2);
  spec.events = 8'000;
  spec.jitter_batch_size = false;
  EventStreamGenerator gen(spec);
  const auto docs = AllDocuments(Drain(gen));

  // Partition inter-arrival gaps by whether they landed inside a burst
  // window; the burst mean must be well below the baseline mean.
  const double period = spec.arrivals.burst_period_seconds * 1e6;
  const double burst_len = spec.arrivals.burst_duration_seconds * 1e6;
  double burst_sum = 0.0;
  double calm_sum = 0.0;
  std::size_t burst_n = 0;
  std::size_t calm_n = 0;
  for (std::size_t i = 1; i < docs.size(); ++i) {
    const double gap =
        static_cast<double>(docs[i].arrival_time - docs[i - 1].arrival_time);
    const double phase =
        std::fmod(static_cast<double>(docs[i - 1].arrival_time), period);
    if (phase < burst_len) {
      burst_sum += gap;
      ++burst_n;
    } else {
      calm_sum += gap;
      ++calm_n;
    }
  }
  ASSERT_GT(burst_n, 100u);
  ASSERT_GT(calm_n, 100u);
  const double burst_mean = burst_sum / static_cast<double>(burst_n);
  const double calm_mean = calm_sum / static_cast<double>(calm_n);
  // burst_factor = 10: expect at least a 4x gap reduction inside bursts.
  EXPECT_LT(burst_mean * 4.0, calm_mean);
}

TEST(EventStreamTest, ZipfDriftRotatesTheHotSet) {
  ScenarioSpec spec;
  spec.name = "drift_probe";
  spec.events = 6'000;
  spec.batch_size = 50;
  spec.vocabulary.dictionary_size = 500;
  spec.vocabulary.drift_interval_events = 1'000;
  spec.vocabulary.drift_stride = 100;
  spec.queries.initial_queries = 1;
  EventStreamGenerator gen(spec);
  const auto docs = AllDocuments(Drain(gen));

  // The hottest term of the first drift phase is rank 0 -> term 0; by
  // the last phase the mapping has rotated 5 times -> term 500 - er,
  // (5 * 100) % 500 == 0 would alias, so count per-phase modes instead.
  const auto mode_term = [&docs](std::size_t lo, std::size_t hi) {
    std::map<TermId, std::size_t> freq;
    for (std::size_t i = lo; i < hi; ++i) {
      for (const TermWeight& tw : docs[i].composition) ++freq[tw.term];
    }
    TermId best = 0;
    std::size_t best_n = 0;
    for (const auto& [term, n] : freq) {
      if (n > best_n) {
        best = term;
        best_n = n;
      }
    }
    return best;
  };
  // Phase 0 (events 0..999): rank 0 maps to term 0. Phase 1 (events
  // 1000..1999): rank 0 maps to term 100.
  EXPECT_EQ(mode_term(0, 1'000), 0u);
  EXPECT_EQ(mode_term(1'000, 2'000), 100u);
  EXPECT_EQ(mode_term(2'000, 3'000), 200u);
}

TEST(EventStreamTest, HotTermFloodSpikesDocuments) {
  ScenarioSpec spec = HotTermFloodScenario(4);
  spec.events = 1'600;
  EventStreamGenerator gen(spec);
  const auto docs = AllDocuments(Drain(gen));
  const VocabularyProfile& v = spec.vocabulary;

  // Documents inside a flood window carry every flooded term; outside
  // they only sometimes do.
  std::size_t in_flood = 0;
  std::size_t carrying_all = 0;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const bool flooded =
        (i % v.flood_period_events) < v.flood_duration_events;
    if (!flooded) continue;
    ++in_flood;
    bool all = true;
    for (std::size_t r = 0; r < v.flood_terms; ++r) {
      if (CompositionWeight(docs[i].composition, static_cast<TermId>(r)) <=
          0.0) {
        all = false;
        break;
      }
    }
    if (all) ++carrying_all;
  }
  ASSERT_GT(in_flood, 0u);
  EXPECT_EQ(carrying_all, in_flood);
}

TEST(EventStreamTest, HeavyTailedKSkewsSmall) {
  ScenarioSpec spec = DiurnalScenario(6);
  spec.events = 50;
  spec.queries.initial_queries = 400;
  spec.queries.heavy_tailed_k = true;
  spec.queries.k_max = 48;
  EventStreamGenerator gen(spec);
  const auto epochs = Drain(gen);
  ASSERT_FALSE(epochs.empty());
  const auto& population = epochs.front().register_queries;
  ASSERT_EQ(population.size(), 400u);

  std::size_t ones = 0;
  int max_k = 0;
  for (const Query& q : population) {
    ASSERT_GE(q.k, 1);
    ASSERT_LE(q.k, spec.queries.k_max);
    if (q.k == 1) ++ones;
    max_k = std::max(max_k, q.k);
  }
  // Zipf(1.2) over 48 ranks: k=1 dominates, but the tail reaches deep.
  EXPECT_GT(ones, 100u);
  EXPECT_GT(max_k, 8);
}

TEST(EventStreamTest, ChurnStormsRecycleThePopulation) {
  ScenarioSpec spec = ChurnStormScenario(8);
  spec.events = 2'000;
  EventStreamGenerator gen(spec);
  const auto epochs = Drain(gen);

  std::size_t storms = 0;
  for (const SimEpoch& e : epochs) {
    if (e.index == 0) {
      ASSERT_EQ(e.register_queries.size(), spec.queries.initial_queries);
      ASSERT_TRUE(e.unregister.empty());
      continue;
    }
    if (e.unregister.empty()) continue;
    ++storms;
    EXPECT_EQ(e.unregister.size(), spec.queries.storm_size);
    EXPECT_EQ(e.register_queries.size(), spec.queries.storm_size);
    EXPECT_EQ(e.index % spec.queries.storm_period_epochs, 0u);
  }
  EXPECT_GT(storms, 2u);
  // Steady population: every storm replaces exactly what it retires.
  EXPECT_EQ(gen.live_queries().size(), spec.queries.initial_queries);
}

TEST(EventStreamTest, QueryIdsPredictedSequentially) {
  ScenarioSpec spec = ChurnStormScenario(9);
  spec.events = 1'200;
  EventStreamGenerator gen(spec);
  QueryId next = 1;
  for (const SimEpoch& e : Drain(gen)) {
    for (std::size_t i = 0; i < e.register_ids.size(); ++i) {
      ASSERT_EQ(e.register_ids[i], next);
      ++next;
    }
    ASSERT_EQ(e.register_ids.size(), e.register_queries.size());
  }
}

TEST(EventStreamTest, InstallAfterEventsDelaysThePopulation) {
  ScenarioSpec spec = ZipfDriftScenario(10);
  spec.events = 1'000;
  spec.batch_size = 100;
  spec.queries.install_after_events = 350;
  EventStreamGenerator gen(spec);
  const auto epochs = Drain(gen);

  std::size_t events_before = 0;
  bool installed = false;
  for (const SimEpoch& e : epochs) {
    if (!e.register_queries.empty()) {
      EXPECT_GE(events_before, spec.queries.install_after_events);
      installed = true;
      break;
    }
    events_before += e.batch.size();
  }
  EXPECT_TRUE(installed);
}

TEST(EventStreamTest, JitteredEpochsVaryButConserveEvents) {
  ScenarioSpec spec = FlashCrowdScenario(12);
  spec.events = 3'000;
  spec.batch_size = 40;
  spec.jitter_batch_size = true;
  EventStreamGenerator gen(spec);
  const auto epochs = Drain(gen);

  std::size_t total = 0;
  std::size_t min_n = spec.events;
  std::size_t max_n = 0;
  for (const SimEpoch& e : epochs) {
    total += e.batch.size();
    min_n = std::min(min_n, e.batch.size());
    max_n = std::max(max_n, e.batch.size());
    ASSERT_LE(e.batch.size(), 2 * spec.batch_size - 1);
  }
  EXPECT_EQ(total, spec.events);
  EXPECT_LT(min_n, max_n);  // sizes actually vary
}

TEST(EventStreamTest, PooledModeCyclesCompositions) {
  ScenarioSpec spec = ZipfDriftScenario(13);
  spec.events = 600;
  spec.batch_size = 50;
  spec.pool_documents = 100;
  spec.vocabulary.drift_interval_events = 0;  // pooled = steady state
  EventStreamGenerator gen(spec);
  const auto docs = AllDocuments(Drain(gen));
  ASSERT_EQ(docs.size(), 600u);

  for (std::size_t i = 0; i + spec.pool_documents < docs.size(); ++i) {
    ASSERT_EQ(docs[i].composition,
              docs[i + spec.pool_documents].composition)
        << "pool did not cycle at " << i;
    // ... but arrival stamps keep advancing.
    ASSERT_LT(docs[i].arrival_time,
              docs[i + spec.pool_documents].arrival_time);
  }
}

}  // namespace
}  // namespace ita::sim
