// The determinism contract (DESIGN.md §9): a ScenarioSpec plus a seed
// IS the stream. Two generators built from equal specs must emit
// byte-identical epochs — same canonical serialization, same
// fingerprint — and the stream must be independent of whoever consumes
// it. Different seeds must diverge.

#include <gtest/gtest.h>

#include <string>

#include "sim/event_stream.h"
#include "sim/scenario.h"
#include "sim/sim_test_support.h"

namespace ita::sim {
namespace {

TEST(ScenarioCatalogTest, EveryPresetValidates) {
  for (const ScenarioFactory& factory : ScenarioCatalog()) {
    const ScenarioSpec spec = factory.make(7);
    EXPECT_TRUE(spec.Validate().ok()) << factory.name;
    EXPECT_EQ(spec.name, factory.name);
    EXPECT_EQ(FindScenario(factory.name), &factory);
  }
  EXPECT_EQ(FindScenario("no_such_scenario"), nullptr);
}

TEST(ScenarioDeterminismTest, ByteIdenticalAcrossGenerators) {
  for (const ScenarioFactory& factory : ScenarioCatalog()) {
    ScenarioSpec spec = factory.make(sim_test::EffectiveSeed(11));
    spec.events = 2'500;

    EventStreamGenerator a(spec);
    EventStreamGenerator b(spec);
    StreamFingerprint fa;
    StreamFingerprint fb;
    std::size_t epochs = 0;
    while (true) {
      const auto ea = a.NextEpoch();
      const auto eb = b.NextEpoch();
      ASSERT_EQ(ea.has_value(), eb.has_value()) << factory.name;
      if (!ea.has_value()) break;
      std::string bytes_a;
      std::string bytes_b;
      SerializeEpoch(*ea, &bytes_a);
      SerializeEpoch(*eb, &bytes_b);
      // Byte-identical, not merely equivalent: the serialization covers
      // every id, timestamp and IEEE-754 weight bit pattern.
      ASSERT_EQ(bytes_a, bytes_b)
          << factory.name << ", epoch " << ea->index;
      fa.Absorb(*ea);
      fb.Absorb(*eb);
      ++epochs;
    }
    EXPECT_GT(epochs, 0u) << factory.name;
    EXPECT_EQ(fa.digest(), fb.digest()) << factory.name;
    EXPECT_EQ(a.events_generated(), spec.events) << factory.name;
  }
}

TEST(ScenarioDeterminismTest, SeedsDiverge) {
  ScenarioSpec one = MixedStressScenario(1);
  ScenarioSpec two = MixedStressScenario(2);
  one.events = two.events = 500;

  EventStreamGenerator a(one);
  EventStreamGenerator b(two);
  StreamFingerprint fa;
  StreamFingerprint fb;
  while (const auto e = a.NextEpoch()) fa.Absorb(*e);
  while (const auto e = b.NextEpoch()) fb.Absorb(*e);
  EXPECT_NE(fa.digest(), fb.digest());
}

TEST(ScenarioDeterminismTest, FingerprintIsOrderSensitive) {
  ScenarioSpec spec = ZipfDriftScenario(3);
  spec.events = 300;
  EventStreamGenerator gen(spec);
  std::vector<SimEpoch> epochs;
  while (auto e = gen.NextEpoch()) epochs.push_back(*std::move(e));
  ASSERT_GE(epochs.size(), 2u);

  StreamFingerprint forward;
  for (const SimEpoch& e : epochs) forward.Absorb(e);
  StreamFingerprint reversed;
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    reversed.Absorb(*it);
  }
  EXPECT_NE(forward.digest(), reversed.digest());
}

TEST(ScenarioDeterminismTest, SerializationCoversQueryChurn) {
  // A churn scenario's epochs carry registrations/unregistrations; two
  // streams differing only in churned query contents must serialize
  // differently (the query terms are part of the canonical bytes).
  ScenarioSpec spec = ChurnStormScenario(5);
  spec.events = 400;
  EventStreamGenerator gen(spec);
  bool saw_churn = false;
  while (const auto e = gen.NextEpoch()) {
    if (e->index > 0 && !e->unregister.empty()) {
      saw_churn = true;
      std::string with;
      SerializeEpoch(*e, &with);
      SimEpoch stripped = *e;
      stripped.unregister.clear();
      std::string without;
      SerializeEpoch(stripped, &without);
      EXPECT_NE(with, without);
      break;
    }
  }
  EXPECT_TRUE(saw_churn);
}

}  // namespace
}  // namespace ita::sim
