// The scenario runner and the online checker: a healthy fleet passes a
// full differential run (and two identical runs report identical
// fingerprints); an engine that lies about a score is caught by the
// differential layer; failures carry the --seed= reproduction line.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sim/checker.h"
#include "sim/runner.h"
#include "sim/sim_engine.h"
#include "sim/sim_test_support.h"

namespace ita::sim {
namespace {

RunOptions SmallFleet() {
  RunOptions options;
  options.shard_counts = {2};
  options.checker.differential_interval_epochs = 2;
  return options;
}

TEST(ScenarioRunnerTest, HealthyFleetPassesDifferentialRun) {
  for (const ScenarioFactory& factory : ScenarioCatalog()) {
    ScenarioSpec spec = factory.make(sim_test::EffectiveSeed(17));
    spec.events = 1'500;
    ScenarioRunner runner(spec, SmallFleet());
    const auto report = runner.Run();
    ASSERT_TRUE(report.ok()) << factory.name << ": "
                             << report.status().ToString();
    EXPECT_EQ(report->events, spec.events) << factory.name;
    EXPECT_GT(report->epochs, 0u) << factory.name;
    EXPECT_GT(report->differential_checks, 0u) << factory.name;
    EXPECT_GT(report->invariant_checks, 0u) << factory.name;
    EXPECT_GT(report->notifications, 0u) << factory.name;
    EXPECT_GT(report->final_query_count, 0u) << factory.name;
  }
}

TEST(ScenarioRunnerTest, IdenticalRunsReportIdenticalFingerprints) {
  ScenarioSpec spec = MixedStressScenario(sim_test::EffectiveSeed(23));
  spec.events = 1'000;

  ScenarioRunner first(spec, SmallFleet());
  ScenarioRunner second(spec, SmallFleet());
  const auto a = first.Run();
  const auto b = second.Run();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // The stream is engine-independent and the engines are deterministic,
  // so the whole report must reproduce — fingerprint AND side counters.
  EXPECT_EQ(a->fingerprint, b->fingerprint);
  EXPECT_EQ(a->notifications, b->notifications);
  EXPECT_EQ(a->final_window_size, b->final_window_size);
}

TEST(ScenarioRunnerTest, NaiveJoinsTheFleet) {
  ScenarioSpec spec = ZipfDriftScenario(sim_test::EffectiveSeed(29));
  spec.events = 600;
  RunOptions options = SmallFleet();
  options.include_naive = true;
  ScenarioRunner runner(spec, options);
  const auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
}

TEST(ScenarioRunnerTest, InvalidSpecIsRejectedNotChecked) {
  ScenarioSpec spec = ZipfDriftScenario(1);
  spec.batch_size = 0;
  ScenarioRunner runner(spec, SmallFleet());
  const auto report = runner.Run();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioRunnerTest, ReproLineNamesSeedEventsAndScenario) {
  ScenarioSpec spec = FlashCrowdScenario(987654);
  spec.events = 42;
  const std::string line = ScenarioRunner::ReproLine(spec);
  EXPECT_NE(line.find("--seed=987654"), std::string::npos);
  EXPECT_NE(line.find("--events=42"), std::string::npos);
  EXPECT_NE(line.find("flash_crowd"), std::string::npos);
}

/// An engine wrapper that reports a perturbed score for one query — the
/// differential layer must catch it at the next checked epoch.
class LyingEngine final : public SimEngine {
 public:
  LyingEngine(std::unique_ptr<SimEngine> inner, QueryId victim)
      : inner_(std::move(inner)), victim_(victim) {}

  std::string name() const override { return "lying(" + inner_->name() + ")"; }
  StatusOr<QueryId> RegisterQuery(Query query) override {
    return inner_->RegisterQuery(std::move(query));
  }
  Status UnregisterQuery(QueryId id) override {
    return inner_->UnregisterQuery(id);
  }
  StatusOr<std::vector<DocId>> IngestBatch(
      std::vector<Document> batch) override {
    return inner_->IngestBatch(std::move(batch));
  }
  StatusOr<DocId> Ingest(Document document) override {
    return inner_->Ingest(std::move(document));
  }
  Status AdvanceTime(Timestamp now) override {
    return inner_->AdvanceTime(now);
  }
  StatusOr<std::vector<ResultEntry>> Result(QueryId id) const override {
    auto result = inner_->Result(id);
    if (result.ok() && id == victim_ && !result->empty()) {
      (*result)[0].score *= 1.5;  // a wrong top score
    }
    return result;
  }
  void SetResultListener(ResultListener listener) override {
    inner_->SetResultListener(std::move(listener));
  }
  std::size_t window_size() const override { return inner_->window_size(); }
  std::size_t query_count() const override { return inner_->query_count(); }
  ServerStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  std::unique_ptr<SimEngine> inner_;
  QueryId victim_;
};

TEST(DifferentialCheckerTest, CatchesALyingEngine) {
  ScenarioSpec spec = ZipfDriftScenario(31);
  spec.events = 300;

  auto oracle = MakeSequentialEngine(SequentialStrategy::kOracle, spec.window);
  LyingEngine liar(
      MakeSequentialEngine(SequentialStrategy::kIta, spec.window),
      /*victim=*/1);

  EventStreamGenerator gen(spec);
  DifferentialChecker checker(CheckerOptions{}, oracle.get());

  std::vector<Query> queries;
  Status caught = Status::OK();
  while (const auto epoch = gen.NextEpoch()) {
    for (const Query& q : epoch->register_queries) queries.push_back(q);
    ASSERT_TRUE(ApplyEpoch(liar, *epoch).ok());
    ASSERT_TRUE(ApplyEpoch(*oracle, *epoch).ok());

    std::vector<LiveQuery> live;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      live.push_back(LiveQuery{static_cast<QueryId>(i + 1), &queries[i]});
    }
    std::vector<SimEngine*> engines = {&liar};
    caught = checker.CheckEpoch(engines, live, epoch->index);
    if (!caught.ok()) break;
  }
  ASSERT_FALSE(caught.ok()) << "checker missed the perturbed score";
  EXPECT_NE(caught.ToString().find("lying"), std::string::npos);
  EXPECT_NE(caught.ToString().find("query 1"), std::string::npos);
}

TEST(ApplyEpochTest, PerEventAndBatchModesAgree) {
  ScenarioSpec spec = HotTermFloodScenario(37);
  spec.events = 400;
  spec.batch_size = 16;

  auto batch_engine =
      MakeSequentialEngine(SequentialStrategy::kIta, spec.window);
  auto event_engine =
      MakeSequentialEngine(SequentialStrategy::kIta, spec.window);

  EventStreamGenerator gen(spec);
  std::vector<QueryId> live;
  while (const auto epoch = gen.NextEpoch()) {
    for (const QueryId id : epoch->unregister) {
      live.erase(std::remove(live.begin(), live.end(), id), live.end());
    }
    live.insert(live.end(), epoch->register_ids.begin(),
                epoch->register_ids.end());
    const auto a = ApplyEpoch(*batch_engine, *epoch, IngestMode::kBatch);
    const auto b = ApplyEpoch(*event_engine, *epoch, IngestMode::kPerEvent);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(*a, *b) << "assigned ids diverge at epoch " << epoch->index;

    for (const QueryId id : live) {
      const auto ra = batch_engine->Result(id);
      const auto rb = event_engine->Result(id);
      ASSERT_TRUE(ra.ok() && rb.ok());
      ASSERT_EQ(ra->size(), rb->size()) << "query " << id;
      for (std::size_t i = 0; i < ra->size(); ++i) {
        ASSERT_NEAR((*ra)[i].score, (*rb)[i].score, 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace ita::sim
