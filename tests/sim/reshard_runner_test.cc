// The elasticity harness itself (sim/reshard_runner.h): a mid-scenario
// shard-count switch — live Reshard or the checkpoint/cross-shape-
// restore path — must converge to the notification fingerprint of a
// twin that ran at the new width all along; option validation,
// run-to-run reproducibility, and the churn-storm placement regression
// (no stale placement entries across unregister bursts and a reshard)
// ride alongside.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/reshard_runner.h"
#include "sim/scenario.h"
#include "sim/sim_test_support.h"

namespace ita::sim {
namespace {

ScenarioSpec SmallSpec(std::uint64_t fallback_seed) {
  ScenarioSpec spec = ZipfDriftScenario(sim_test::EffectiveSeed(fallback_seed));
  spec.events = 900;
  return spec;
}

TEST(ReshardRunnerTest, LiveSwitchConvergesToTheTwin) {
  ReshardOptions options;
  options.initial_shards = 4;
  options.new_shards = 2;
  options.reshard_epoch = 9;
  options.mode = ReshardMode::kLive;
  ReshardRunner runner(SmallSpec(17), options);
  const auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->epochs, options.reshard_epoch);
  EXPECT_EQ(report->events, 900u);
  EXPECT_NE(report->notification_fingerprint, 0u);
  EXPECT_GT(report->live_queries, 0u);
  EXPECT_GT(report->switch_nanos, 0u);
  EXPECT_EQ(report->reshard.reshards, 1u);
  EXPECT_GT(report->reshard.queries_remapped, 0u);
  EXPECT_EQ(report->reshard.last_pause_nanos, report->reshard.total_pause_nanos);
}

TEST(ReshardRunnerTest, CheckpointRestoreSwitchConvergesToTheTwin) {
  ReshardOptions options;
  options.initial_shards = 2;
  options.new_shards = 5;
  options.reshard_epoch = 7;
  options.mode = ReshardMode::kCheckpointRestore;
  ReshardRunner runner(SmallSpec(29), options);
  const auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->switch_nanos, 0u);
  // The switch replaced the engine — the fresh one never called Reshard.
  EXPECT_EQ(report->reshard.reshards, 0u);
}

TEST(ReshardRunnerTest, BothModesAgreeOnTheFingerprint) {
  // Live and checkpoint-restore are two mechanisms for the same switch;
  // over the identical stream they must deliver the identical
  // notification history.
  std::uint64_t digests[2] = {0, 0};
  const ReshardMode modes[] = {ReshardMode::kLive,
                               ReshardMode::kCheckpointRestore};
  for (int i = 0; i < 2; ++i) {
    ReshardOptions options;
    options.initial_shards = 3;
    options.new_shards = 2;
    options.reshard_epoch = 6;
    options.mode = modes[i];
    options.check_oracle = false;  // the fingerprint compare is the point
    ReshardRunner runner(SmallSpec(43), options);
    const auto report = runner.Run();
    ASSERT_TRUE(report.ok())
        << ReshardModeName(modes[i]) << ": " << report.status().ToString();
    digests[i] = report->notification_fingerprint;
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(ReshardRunnerTest, ChurnStormNeverStrandsAPlacementEntry) {
  // churn_storm unregisters and re-registers queries every epoch;
  // aggressive rebalancing piles migrations on top, then the switch
  // remaps whatever survived. The runner itself asserts
  // placement_size() == live-query count at end of stream — a stale
  // entry for any unregistered id fails the run.
  ScenarioSpec spec = ChurnStormScenario(sim_test::EffectiveSeed(61));
  spec.events = 900;
  ReshardOptions options;
  options.initial_shards = 4;
  options.new_shards = 3;
  options.reshard_epoch = 11;
  options.rebalance.mode = exec::RebalanceMode::kAggressive;
  ReshardRunner runner(spec, options);
  const auto report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->live_queries, 0u);
}

TEST(ReshardRunnerTest, RunsAreReproducible) {
  ReshardOptions options;
  options.initial_shards = 2;
  options.new_shards = 4;
  options.reshard_epoch = 5;
  options.check_oracle = false;
  ReshardRunner first(SmallSpec(83), options);
  ReshardRunner second(SmallSpec(83), options);
  const auto a = first.Run();
  const auto b = second.Run();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->stream_fingerprint, b->stream_fingerprint);
  EXPECT_EQ(a->notification_fingerprint, b->notification_fingerprint);
}

TEST(ReshardRunnerTest, RejectsBadOptions) {
  ReshardOptions options;
  options.initial_shards = 0;
  EXPECT_TRUE(
      ReshardRunner(SmallSpec(1), options).Run().status().IsInvalidArgument());

  options.initial_shards = 2;
  options.new_shards = 0;
  EXPECT_TRUE(
      ReshardRunner(SmallSpec(1), options).Run().status().IsInvalidArgument());

  options.new_shards = 3;
  options.reshard_epoch = 1'000'000;  // far past the stream's epoch count
  EXPECT_TRUE(
      ReshardRunner(SmallSpec(1), options).Run().status().IsInvalidArgument());
}

TEST(ReshardRunnerTest, ReproLineNamesTheRun) {
  ScenarioSpec spec = ZipfDriftScenario(123);
  ReshardOptions options;
  options.initial_shards = 4;
  options.new_shards = 7;
  options.reshard_epoch = 5;
  options.mode = ReshardMode::kCheckpointRestore;
  const std::string line = ReshardRunner::ReproLine(spec, options);
  EXPECT_NE(line.find("--scenario=zipf_drift"), std::string::npos);
  EXPECT_NE(line.find("--seed=123"), std::string::npos);
  EXPECT_NE(line.find("--shards=4"), std::string::npos);
  EXPECT_NE(line.find("--new-shards=7"), std::string::npos);
  EXPECT_NE(line.find("--reshard-epoch=5"), std::string::npos);
  EXPECT_NE(line.find("--mode=checkpoint-restore"), std::string::npos);
}

}  // namespace
}  // namespace ita::sim
