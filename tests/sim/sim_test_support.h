// Shared configuration for the sim test suites (determinism, runner,
// soak, regression replay), populated by the custom test main
// (sim_test_main.cc) from the command line and the environment:
//
//   --seed=N    / ITA_SIM_SEED=N     — override every scenario seed
//   --events=N  / ITA_SOAK_EVENTS=N  — override the soak event count
//
// This is the failing-seed replay loop: a soak/property failure prints
// its `--seed=` line, the developer reruns the test binary with that
// flag, and the identical stream replays byte for byte. The flag wins
// over the environment variable.

#pragma once

#include <cstdint>

namespace ita {
namespace sim_test {

/// Scenario-seed override (0 = use each test's default seed).
std::uint64_t SeedOverride();
/// Soak event-count override (0 = use the soak tier's default).
std::uint64_t EventsOverride();

/// Setters used by sim_test_main.cc only.
void SetSeedOverride(std::uint64_t seed);
void SetEventsOverride(std::uint64_t events);

/// The seed a test should run: the override when present, else `fallback`.
inline std::uint64_t EffectiveSeed(std::uint64_t fallback) {
  return SeedOverride() != 0 ? SeedOverride() : fallback;
}

/// The soak event count: the override when present, else `fallback`.
inline std::uint64_t EffectiveEvents(std::uint64_t fallback) {
  return EventsOverride() != 0 ? EventsOverride() : fallback;
}

}  // namespace sim_test
}  // namespace ita
