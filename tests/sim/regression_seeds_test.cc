// Fast replay of the checked-in failing-seed corpus
// (tests/testing/regression_seeds.txt): every recorded (scenario, seed)
// pair re-runs as a short oracle-differential drive on every build, so
// a stream that once exposed a bug keeps guarding against it. See the
// corpus file for the entry format.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/crash_restore.h"
#include "sim/event_stream.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace ita::sim {
namespace {

constexpr std::size_t kDefaultReplayEvents = 2'000;

struct SeedEntry {
  std::string scenario;
  std::uint64_t seed = 0;
  std::size_t events = kDefaultReplayEvents;
};

std::vector<SeedEntry> LoadCorpus(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open seed corpus: " << path;
  std::vector<SeedEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    SeedEntry entry;
    fields >> entry.scenario >> entry.seed;
    EXPECT_FALSE(fields.fail()) << "malformed corpus line: " << line;
    // Optional third field; on conversion failure C++ writes 0 into the
    // target, so parse into a scratch and only commit a successful read.
    std::size_t events = 0;
    if (fields >> events) {
      entry.events = events;
    } else {
      EXPECT_TRUE(fields.eof())
          << "malformed trailing token in corpus line: " << line;
    }
    entries.push_back(entry);
  }
  return entries;
}

TEST(RegressionSeedsTest, CorpusReplaysClean) {
  const std::vector<SeedEntry> corpus =
      LoadCorpus(std::string(ITA_TESTS_DIR) + "/testing/regression_seeds.txt");
  ASSERT_FALSE(corpus.empty());

  for (const SeedEntry& entry : corpus) {
    const ScenarioFactory* factory = FindScenario(entry.scenario);
    ASSERT_NE(factory, nullptr)
        << "corpus names unknown scenario '" << entry.scenario << "'";
    ScenarioSpec spec = factory->make(entry.seed);
    spec.events = entry.events;

    RunOptions options;
    options.shard_counts = {2};
    options.checker.differential_interval_epochs = 2;
    ScenarioRunner runner(spec, options);
    const auto report = runner.Run();
    EXPECT_TRUE(report.ok())
        << "regression seed regressed: " << report.status().ToString();
  }
}

TEST(RegressionSeedsTest, CorpusReplaysThroughTheRestorePath) {
  // Every corpus stream also replays through a kill/restore cycle — a
  // seed that once exposed an engine bug is exactly the stream most
  // likely to expose a serialization gap. One mid-stream kill per entry,
  // phase and cadence varied deterministically across the corpus.
  const std::vector<SeedEntry> corpus =
      LoadCorpus(std::string(ITA_TESTS_DIR) + "/testing/regression_seeds.txt");
  ASSERT_FALSE(corpus.empty());

  constexpr CrashPhase kPhases[] = {
      CrashPhase::kBeforeLogAppend,
      CrashPhase::kTornLogAppend,
      CrashPhase::kAfterLogAppend,
      CrashPhase::kAfterApply,
  };
  std::size_t at = 0;
  for (const SeedEntry& entry : corpus) {
    const ScenarioFactory* factory = FindScenario(entry.scenario);
    ASSERT_NE(factory, nullptr);
    ScenarioSpec spec = factory->make(entry.seed);
    spec.events = entry.events;

    EventStreamGenerator generator(spec);
    while (generator.NextEpoch().has_value()) {
    }
    const std::uint64_t epochs = generator.epochs_generated();
    ASSERT_GT(epochs, 1u) << entry.scenario;

    CrashRestoreOptions options;
    options.shards = at % 2 == 0 ? 0 : 2;  // alternate sequential/sharded
    options.snapshot_every_epochs = 3 + at % 5;
    options.crash_epoch = epochs / 2;
    options.crash_phase = kPhases[at % 4];
    ++at;

    CrashRestoreRunner runner(spec, options);
    const auto report = runner.Run();
    EXPECT_TRUE(report.ok())
        << "restore path regressed: " << report.status().ToString();
  }
}

}  // namespace
}  // namespace ita::sim
