// The soak tier (ctest label "soak"): long oracle-differential drives
// of the scenario catalog through the full engine fleet — sequential
// ITA plus the sharded engine at S ∈ {1, 2, 4} — with the online
// checker validating results, invariants and notification streams
// mid-run.
//
// Event budget: `--events=N` / ITA_SOAK_EVENTS=N scales each scenario
// (the acceptance drive is >= 10^6 events across the tier under
// ASan/UBSan); the default keeps the tier affordable inside tier-1
// ctest. Failures print the `--seed=` line; replay with
//
//   ./tests/sim_soak_test --gtest_filter='*<scenario>*' --seed=N --events=M
//
// and append the line to tests/testing/regression_seeds.txt so the fast
// replay tier pins the fix.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/sim_test_support.h"

namespace ita::sim {
namespace {

/// Default document events per scenario when no --events= override is
/// given. The full catalog then streams ~120k events through 4 engines
/// + oracle — a few seconds in Release, well inside sanitizer budgets.
constexpr std::uint64_t kDefaultSoakEvents = 20'000;

class SoakTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SoakTest, OracleDifferentialFleetDrive) {
  const ScenarioFactory* factory = FindScenario(GetParam());
  ASSERT_NE(factory, nullptr);
  ScenarioSpec spec = factory->make(sim_test::EffectiveSeed(101));
  spec.events =
      static_cast<std::size_t>(sim_test::EffectiveEvents(kDefaultSoakEvents));

  RunOptions options;
  options.include_sequential_ita = true;
  options.shard_counts = {1, 2, 4};
  options.threads_per_sharded = 3;  // != shards: phases must queue
  options.check_oracle = true;
  // Invariants every epoch; the (more expensive) oracle differential on
  // a coarser cadence, with the final epoch always checked.
  options.checker.invariant_interval_epochs = 1;
  options.checker.differential_interval_epochs = 4;
  options.verify_notifications = true;
  // Telemetry on for the whole fleet drive: the per-shard recorders and
  // hot-term sketches run through every sanitizer soak (no-op when the
  // build has ITA_OBS=OFF).
  options.enable_tracing = true;
  // One progress line roughly every ~64k events on long drives.
  options.progress_every_epochs =
      spec.events > 200'000 ? 64'000 / spec.batch_size : 0;

  ScenarioRunner runner(spec, options);
  const auto report = runner.Run();
  // The Status message ends with the --seed= reproduction line.
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->events, spec.events);
  EXPECT_GT(report->differential_checks, 0u);
  EXPECT_GT(report->invariant_checks, 0u);
  EXPECT_GT(report->notifications, 0u);
  RecordProperty("events", static_cast<int>(report->events));
  RecordProperty("fingerprint", std::to_string(report->fingerprint));
}

INSTANTIATE_TEST_SUITE_P(ScenarioCatalog, SoakTest,
                         ::testing::Values("zipf_drift", "flash_crowd",
                                           "churn_storm", "diurnal",
                                           "hot_term_flood", "mixed_stress"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace ita::sim
