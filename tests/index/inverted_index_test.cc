#include "index/inverted_index.h"

#include <gtest/gtest.h>

namespace ita {
namespace {

Document MakeDoc(DocId id, Composition composition) {
  Document doc;
  doc.id = id;
  doc.composition = std::move(composition);
  return doc;
}

TEST(InvertedIndexTest, AddCreatesListsPerTerm) {
  InvertedIndex index;
  EXPECT_EQ(index.AddDocument(MakeDoc(1, {{2, 0.3}, {5, 0.7}})), 2u);
  EXPECT_EQ(index.materialized_lists(), 2u);
  EXPECT_EQ(index.total_postings(), 2u);
  ASSERT_NE(index.List(2), nullptr);
  ASSERT_NE(index.List(5), nullptr);
  EXPECT_EQ(index.List(3), nullptr);
  EXPECT_EQ(index.List(9999), nullptr);
  EXPECT_EQ(index.List(2)->size(), 1u);
}

TEST(InvertedIndexTest, SharedTermsAccumulate) {
  InvertedIndex index;
  index.AddDocument(MakeDoc(1, {{7, 0.4}}));
  index.AddDocument(MakeDoc(2, {{7, 0.9}}));
  index.AddDocument(MakeDoc(3, {{7, 0.1}}));
  ASSERT_NE(index.List(7), nullptr);
  EXPECT_EQ(index.List(7)->size(), 3u);
  EXPECT_DOUBLE_EQ(*index.List(7)->TopWeight(), 0.9);
}

TEST(InvertedIndexTest, RemoveInvertsAdd) {
  InvertedIndex index;
  const Document d1 = MakeDoc(1, {{2, 0.3}, {5, 0.7}});
  const Document d2 = MakeDoc(2, {{5, 0.2}});
  index.AddDocument(d1);
  index.AddDocument(d2);
  EXPECT_EQ(index.RemoveDocument(d1), 2u);
  EXPECT_EQ(index.total_postings(), 1u);
  EXPECT_TRUE(index.List(2)->empty());
  EXPECT_EQ(index.List(5)->size(), 1u);
  EXPECT_EQ(index.RemoveDocument(d2), 1u);
  EXPECT_EQ(index.total_postings(), 0u);
}

TEST(InvertedIndexTest, ListPointerStableAcrossGrowth) {
  InvertedIndex index;
  index.AddDocument(MakeDoc(1, {{0, 0.5}}));
  const InvertedList* list = index.List(0);
  // Adding a much larger term id grows the dense vector.
  index.AddDocument(MakeDoc(2, {{100000, 0.5}}));
  EXPECT_EQ(index.List(0), list);
  EXPECT_EQ(list->size(), 1u);
}

TEST(InvertedIndexTest, ChurnKeepsCountsConsistent) {
  InvertedIndex index;
  std::vector<Document> window;
  std::size_t expected = 0;
  for (DocId id = 1; id <= 500; ++id) {
    Composition comp;
    for (TermId t = static_cast<TermId>(id % 7); t < 20; t += 7) {
      comp.push_back({t, 0.1 + static_cast<double>(id % 13) / 13.0});
    }
    Document doc = MakeDoc(id, comp);
    index.AddDocument(doc);
    expected += comp.size();
    window.push_back(std::move(doc));
    if (window.size() > 50) {
      expected -= window.front().composition.size();
      index.RemoveDocument(window.front());
      window.erase(window.begin());
    }
  }
  EXPECT_EQ(index.total_postings(), expected);
}

}  // namespace
}  // namespace ita
