#include "index/inverted_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace ita {
namespace {

std::vector<DocId> Docs(const InvertedList& list) {
  std::vector<DocId> out;
  for (const ImpactEntry& e : list) out.push_back(e.doc);
  return out;
}

TEST(InvertedListTest, OrderedByDecreasingWeight) {
  InvertedList list;
  EXPECT_TRUE(list.Insert(1, 0.08));
  EXPECT_TRUE(list.Insert(7, 0.10));
  EXPECT_TRUE(list.Insert(5, 0.07));
  EXPECT_TRUE(list.Insert(8, 0.05));
  EXPECT_EQ(Docs(list), (std::vector<DocId>{7, 1, 5, 8}));
}

TEST(InvertedListTest, TiesOrderNewestFirst) {
  InvertedList list;
  list.Insert(3, 0.5);
  list.Insert(9, 0.5);
  list.Insert(6, 0.5);
  EXPECT_EQ(Docs(list), (std::vector<DocId>{9, 6, 3}));
}

TEST(InvertedListTest, EraseRequiresExactWeight) {
  InvertedList list;
  list.Insert(4, 0.25);
  EXPECT_FALSE(list.Erase(4, 0.30));
  EXPECT_TRUE(list.Erase(4, 0.25));
  EXPECT_TRUE(list.empty());
}

TEST(InvertedListTest, DuplicatePostingRejected) {
  InvertedList list;
  EXPECT_TRUE(list.Insert(4, 0.25));
  EXPECT_FALSE(list.Insert(4, 0.25));
  EXPECT_EQ(list.size(), 1u);
}

TEST(InvertedListTest, FirstBelowSkipsTieRun) {
  InvertedList list;
  list.Insert(1, 0.9);
  list.Insert(2, 0.5);
  list.Insert(3, 0.5);
  list.Insert(4, 0.2);

  auto it = list.FirstBelow(0.5);
  ASSERT_NE(it, list.end());
  EXPECT_EQ(it->doc, 4u);  // both 0.5 entries are at-or-above

  it = list.FirstBelow(0.91);
  ASSERT_NE(it, list.end());
  EXPECT_EQ(it->doc, 1u);

  EXPECT_EQ(list.FirstBelow(0.1), list.end());
}

TEST(InvertedListTest, FirstAtOrBelowIncludesTieRun) {
  InvertedList list;
  list.Insert(1, 0.9);
  list.Insert(2, 0.5);
  list.Insert(3, 0.5);
  list.Insert(4, 0.2);

  auto it = list.FirstAtOrBelow(0.5);
  ASSERT_NE(it, list.end());
  EXPECT_EQ(it->doc, 3u);  // first of the 0.5 run (newest first: 3 then 2)
  EXPECT_EQ(it->weight, 0.5);
}

TEST(InvertedListTest, NextWeightAboveFindsPrecedingEntry) {
  InvertedList list;
  list.Insert(9, 0.16);
  list.Insert(7, 0.10);
  list.Insert(1, 0.08);
  list.Insert(5, 0.07);

  // The paper's roll-up example: threshold at 0.08, preceding entry d7.
  auto w = list.NextWeightAbove(0.08);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(*w, 0.10);

  w = list.NextWeightAbove(0.10);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(*w, 0.16);

  EXPECT_FALSE(list.NextWeightAbove(0.16).has_value());
  EXPECT_FALSE(list.NextWeightAbove(0.99).has_value());

  // From below every entry.
  w = list.NextWeightAbove(0.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(*w, 0.07);
}

TEST(InvertedListTest, NextWeightAboveSkipsTies) {
  InvertedList list;
  list.Insert(1, 0.4);
  list.Insert(2, 0.4);
  list.Insert(3, 0.6);
  const auto w = list.NextWeightAbove(0.4);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(*w, 0.6);  // not 0.4 again
}

TEST(InvertedListTest, TopWeight) {
  InvertedList list;
  EXPECT_FALSE(list.TopWeight().has_value());
  list.Insert(1, 0.3);
  list.Insert(2, 0.8);
  EXPECT_DOUBLE_EQ(*list.TopWeight(), 0.8);
}

TEST(InvertedListTest, EmptyListBoundaries) {
  InvertedList list;
  EXPECT_EQ(list.FirstBelow(0.5), list.end());
  EXPECT_EQ(list.FirstAtOrBelow(0.5), list.end());
  EXPECT_FALSE(list.NextWeightAbove(0.0).has_value());
}

}  // namespace
}  // namespace ita
