#include "index/document_store.h"

#include <gtest/gtest.h>

namespace ita {
namespace {

Document MakeDoc(Timestamp t) {
  Document doc;
  doc.arrival_time = t;
  doc.composition = {{1, 0.5}};
  return doc;
}

TEST(DocumentStoreTest, AssignsSequentialIdsFromOne) {
  DocumentStore store;
  EXPECT_EQ(store.Append(MakeDoc(0)), 1u);
  EXPECT_EQ(store.Append(MakeDoc(1)), 2u);
  EXPECT_EQ(store.Append(MakeDoc(2)), 3u);
  EXPECT_EQ(store.next_id(), 4u);
}

TEST(DocumentStoreTest, FifoOrder) {
  DocumentStore store;
  store.Append(MakeDoc(10));
  store.Append(MakeDoc(20));
  EXPECT_EQ(store.Oldest().arrival_time, 10);
  const Document popped = store.PopOldest();
  EXPECT_EQ(popped.arrival_time, 10);
  EXPECT_EQ(popped.id, 1u);
  EXPECT_EQ(store.Oldest().arrival_time, 20);
}

TEST(DocumentStoreTest, GetById) {
  DocumentStore store;
  const DocId a = store.Append(MakeDoc(1));
  const DocId b = store.Append(MakeDoc(2));
  ASSERT_NE(store.Get(a), nullptr);
  EXPECT_EQ(store.Get(a)->arrival_time, 1);
  ASSERT_NE(store.Get(b), nullptr);
  EXPECT_EQ(store.Get(b)->arrival_time, 2);
  EXPECT_EQ(store.Get(99), nullptr);
  EXPECT_EQ(store.Get(0), nullptr);  // kInvalidDocId
}

TEST(DocumentStoreTest, GetAfterExpirations) {
  DocumentStore store;
  for (int i = 0; i < 10; ++i) store.Append(MakeDoc(i));
  for (int i = 0; i < 4; ++i) store.PopOldest();
  EXPECT_EQ(store.Get(1), nullptr);
  EXPECT_EQ(store.Get(4), nullptr);
  ASSERT_NE(store.Get(5), nullptr);
  EXPECT_EQ(store.Get(5)->arrival_time, 4);
  EXPECT_TRUE(store.Contains(10));
  EXPECT_FALSE(store.Contains(11));
}

TEST(DocumentStoreTest, IterationOldestFirst) {
  DocumentStore store;
  for (int i = 0; i < 5; ++i) store.Append(MakeDoc(i));
  store.PopOldest();
  Timestamp expected = 1;
  for (const Document& doc : store) {
    EXPECT_EQ(doc.arrival_time, expected++);
  }
  EXPECT_EQ(expected, 5);
}

TEST(DocumentStoreTest, EmptyStore) {
  DocumentStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.Get(1), nullptr);
  EXPECT_EQ(store.begin(), store.end());
}

TEST(DocumentStoreTest, LargeChurn) {
  DocumentStore store;
  for (int i = 0; i < 10000; ++i) {
    store.Append(MakeDoc(i));
    if (store.size() > 100) store.PopOldest();
  }
  EXPECT_EQ(store.size(), 100u);
  // The last 100 ids are 9901..10000.
  EXPECT_EQ(store.Oldest().id, 9901u);
  ASSERT_NE(store.Get(10000), nullptr);
  EXPECT_EQ(store.Get(9900), nullptr);
}

}  // namespace
}  // namespace ita
