// AddBatch / RemoveBatch / InsertRun / EraseRun: the epoch-granular index
// maintenance must be exactly equivalent to per-document AddDocument /
// RemoveDocument.

#include <gtest/gtest.h>

#include <vector>

#include "../testing/builders.h"
#include "index/inverted_index.h"

namespace ita {
namespace {

Document WithId(Document doc, DocId id) {
  doc.id = id;
  return doc;
}

std::vector<Document> SampleDocs() {
  using testing::MakeDoc;
  return {
      WithId(MakeDoc({{1, 0.9}, {2, 0.2}, {7, 0.4}}), 1),
      WithId(MakeDoc({{1, 0.5}, {3, 0.8}}), 2),
      WithId(MakeDoc({{1, 0.5}, {2, 0.2}, {3, 0.1}, {9, 1.0}}), 3),
      WithId(MakeDoc({{7, 0.4}}), 4),
  };
}

void ExpectSameLists(const InvertedIndex& got, const InvertedIndex& want,
                     TermId max_term) {
  for (TermId t = 0; t <= max_term; ++t) {
    const InvertedList* g = got.List(t);
    const InvertedList* w = want.List(t);
    const std::size_t gn = g == nullptr ? 0 : g->size();
    const std::size_t wn = w == nullptr ? 0 : w->size();
    ASSERT_EQ(gn, wn) << "term " << t;
    if (gn == 0) continue;
    auto gi = g->begin();
    for (const ImpactEntry& we : *w) {
      EXPECT_EQ(gi->doc, we.doc) << "term " << t;
      EXPECT_EQ(gi->weight, we.weight) << "term " << t;
      ++gi;
    }
  }
}

TEST(InvertedIndexBatchTest, AddBatchMatchesAddDocument) {
  const std::vector<Document> docs = SampleDocs();
  InvertedIndex batched, sequential;
  std::vector<const Document*> ptrs;
  for (const Document& d : docs) ptrs.push_back(&d);

  std::size_t want_postings = 0;
  for (const Document& d : docs) want_postings += sequential.AddDocument(d);
  EXPECT_EQ(batched.AddBatch(ptrs), want_postings);
  EXPECT_EQ(batched.total_postings(), sequential.total_postings());
  ExpectSameLists(batched, sequential, 9);
}

TEST(InvertedIndexBatchTest, RemoveBatchMatchesRemoveDocument) {
  const std::vector<Document> docs = SampleDocs();
  InvertedIndex batched, sequential;
  std::vector<const Document*> ptrs;
  for (const Document& d : docs) ptrs.push_back(&d);
  (void)batched.AddBatch(ptrs);
  for (const Document& d : docs) (void)sequential.AddDocument(d);

  // Remove the middle two as one epoch.
  const std::vector<Document> epoch = {docs[1], docs[2]};
  const std::size_t removed = batched.RemoveBatch(epoch);
  EXPECT_EQ(removed, docs[1].composition.size() + docs[2].composition.size());
  (void)sequential.RemoveDocument(docs[1]);
  (void)sequential.RemoveDocument(docs[2]);
  EXPECT_EQ(batched.total_postings(), sequential.total_postings());
  ExpectSameLists(batched, sequential, 9);
}

TEST(InvertedIndexBatchTest, EmptyBatchIsNoOp) {
  InvertedIndex index;
  EXPECT_EQ(index.AddBatch({}), 0u);
  EXPECT_EQ(index.RemoveBatch({}), 0u);
  EXPECT_EQ(index.total_postings(), 0u);
}

TEST(InvertedIndexBatchTest, InsertRunEraseRunRoundTrip) {
  InvertedIndex index;
  const std::vector<ImpactEntry> run = {{0.9, 3}, {0.9, 1}, {0.2, 2}};
  EXPECT_EQ(index.InsertRun(5, run.begin(), run.end()), run.size());
  ASSERT_NE(index.List(5), nullptr);
  EXPECT_EQ(index.List(5)->size(), 3u);
  EXPECT_EQ(index.total_postings(), 3u);

  EXPECT_EQ(index.EraseRun(5, run.begin(), run.end()), run.size());
  EXPECT_TRUE(index.List(5)->empty());
  EXPECT_EQ(index.total_postings(), 0u);
  // Erasing from a never-materialized term is a no-op.
  EXPECT_EQ(index.EraseRun(4242, run.begin(), run.end()), 0u);
}

}  // namespace
}  // namespace ita
