// The bulk (epoch) maintenance contract of InvertedList: InsertOrdered /
// EraseOrdered must leave the list exactly as the equivalent sequence of
// single Insert / Erase calls would, for runs of any shape — singletons
// (the fast path), interleaved weights, tie runs, runs spanning the whole
// list, and erase runs containing absent targets.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "index/inverted_list.h"

namespace ita {
namespace {

std::vector<ImpactEntry> Entries(const InvertedList& list) {
  return std::vector<ImpactEntry>(list.begin(), list.end());
}

void ExpectSameEntries(const InvertedList& got, const InvertedList& want) {
  ASSERT_EQ(got.size(), want.size());
  auto g = got.begin();
  for (const ImpactEntry& w : want) {
    EXPECT_EQ(g->doc, w.doc);
    EXPECT_EQ(g->weight, w.weight);
    ++g;
  }
}

std::vector<ImpactEntry> SortedRun(std::vector<ImpactEntry> run) {
  std::sort(run.begin(), run.end(),
            [](const ImpactEntry& a, const ImpactEntry& b) {
              return ImpactOrder{}(a, b);
            });
  return run;
}

TEST(InvertedListBulkTest, InsertOrderedMatchesSingles) {
  InvertedList bulk, single;
  for (DocId d = 1; d <= 20; ++d) {
    bulk.Insert(d, 0.05 * static_cast<double>(d));
    single.Insert(d, 0.05 * static_cast<double>(d));
  }
  const std::vector<ImpactEntry> run = SortedRun({
      {0.93, 21}, {0.41, 22}, {0.41, 23}, {0.07, 24}, {0.001, 25}});
  EXPECT_EQ(bulk.InsertOrdered(run.begin(), run.end()), run.size());
  for (const ImpactEntry& e : run) single.Insert(e.doc, e.weight);
  ExpectSameEntries(bulk, single);
}

TEST(InvertedListBulkTest, EraseOrderedMatchesSingles) {
  InvertedList bulk, single;
  Rng rng(11);
  std::vector<ImpactEntry> all;
  for (DocId d = 1; d <= 50; ++d) {
    const double w = rng.NextDouble();
    bulk.Insert(d, w);
    single.Insert(d, w);
    all.push_back({w, d});
  }
  std::vector<ImpactEntry> victims;
  for (std::size_t i = 0; i < all.size(); i += 3) victims.push_back(all[i]);
  const std::vector<ImpactEntry> run = SortedRun(victims);
  EXPECT_EQ(bulk.EraseOrdered(run.begin(), run.end()), run.size());
  for (const ImpactEntry& e : run) single.Erase(e.doc, e.weight);
  ExpectSameEntries(bulk, single);
}

TEST(InvertedListBulkTest, SingletonRunsUseExactSemantics) {
  InvertedList list;
  const std::vector<ImpactEntry> one = {{0.5, 7}};
  EXPECT_EQ(list.InsertOrdered(one.begin(), one.end()), 1u);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.EraseOrdered(one.begin(), one.end()), 1u);
  EXPECT_TRUE(list.empty());
}

TEST(InvertedListBulkTest, EraseOrderedSkipsAbsentTargets) {
  InvertedList list;
  list.Insert(1, 0.9);
  list.Insert(2, 0.5);
  list.Insert(3, 0.1);
  // 0.7/42 and 0.05/99 are absent; 0.5/2 is present.
  const std::vector<ImpactEntry> run =
      SortedRun({{0.7, 42}, {0.5, 2}, {0.05, 99}});
  EXPECT_EQ(list.EraseOrdered(run.begin(), run.end()), 1u);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(list.Erase(2, 0.5));  // already gone
}

TEST(InvertedListBulkTest, EmptyRunsAreNoOps) {
  InvertedList list;
  list.Insert(1, 0.4);
  const std::vector<ImpactEntry> empty;
  EXPECT_EQ(list.InsertOrdered(empty.begin(), empty.end()), 0u);
  EXPECT_EQ(list.EraseOrdered(empty.begin(), empty.end()), 0u);
  EXPECT_EQ(list.size(), 1u);
}

TEST(InvertedListBulkTest, RunIntoEmptyList) {
  InvertedList list;
  const std::vector<ImpactEntry> run = SortedRun({{0.2, 1}, {0.8, 2}});
  EXPECT_EQ(list.InsertOrdered(run.begin(), run.end()), 2u);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.begin()->doc, 2u);  // heaviest first
}

// Randomized churn: bulk epochs vs the same operations applied singly.
TEST(InvertedListBulkTest, RandomizedEpochChurnMatchesSingles) {
  InvertedList bulk, single;
  Rng rng(29);
  std::vector<ImpactEntry> resident;
  DocId next = 1;
  for (int epoch = 0; epoch < 200; ++epoch) {
    // Arrivals: 1..8 new postings.
    std::vector<ImpactEntry> arrive;
    const std::size_t n_in = 1 + rng.UniformInt(0, 7);
    for (std::size_t i = 0; i < n_in; ++i) {
      // Quantized weights force tie runs.
      const double w = static_cast<double>(rng.UniformInt(1, 12)) / 12.0;
      arrive.push_back({w, next++});
    }
    arrive = SortedRun(arrive);
    ASSERT_EQ(bulk.InsertOrdered(arrive.begin(), arrive.end()), arrive.size());
    for (const ImpactEntry& e : arrive) ASSERT_TRUE(single.Insert(e.doc, e.weight));
    resident.insert(resident.end(), arrive.begin(), arrive.end());

    // Expirations: up to half of the residents, oldest-biased.
    std::vector<ImpactEntry> expire;
    for (std::size_t i = 0; i < resident.size();) {
      if (rng.UniformInt(0, 3) == 0) {
        expire.push_back(resident[i]);
        resident.erase(resident.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    expire = SortedRun(expire);
    ASSERT_EQ(bulk.EraseOrdered(expire.begin(), expire.end()), expire.size());
    for (const ImpactEntry& e : expire) ASSERT_TRUE(single.Erase(e.doc, e.weight));

    ASSERT_EQ(bulk.size(), resident.size());
    ExpectSameEntries(bulk, single);
    // Boundary searches agree with the single-op list too.
    const double theta = rng.NextDouble();
    ASSERT_EQ(bulk.FirstBelow(theta) == bulk.end(),
              single.FirstBelow(theta) == single.end());
    ASSERT_EQ(bulk.NextWeightAbove(theta).has_value(),
              single.NextWeightAbove(theta).has_value());
  }
  (void)Entries;
}

}  // namespace
}  // namespace ita
