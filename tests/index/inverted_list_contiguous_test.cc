// Regression suite for the contiguous-input fast path of
// InvertedList::InsertOrdered: runs arriving as ImpactEntry pointers or
// vector iterators merge straight from the caller's buffer (no scratch
// copy), and must produce lists identical to the generic adapting-
// iterator path and to one-at-a-time Insert.

#include "index/inverted_list.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ita {
namespace {

// Mirrors the batch pipeline's posting views: materializes ImpactEntries
// by value, deliberately NOT contiguous-iterator shaped.
struct AdaptingIterator {
  const ImpactEntry* p = nullptr;
  ImpactEntry operator*() const { return *p; }
  AdaptingIterator& operator++() {
    ++p;
    return *this;
  }
  friend bool operator==(AdaptingIterator a, AdaptingIterator b) {
    return a.p == b.p;
  }
  friend bool operator!=(AdaptingIterator a, AdaptingIterator b) {
    return a.p != b.p;
  }
};

static_assert(ContiguousImpactRun<const ImpactEntry*>);
static_assert(ContiguousImpactRun<ImpactEntry*>);
static_assert(ContiguousImpactRun<std::vector<ImpactEntry>::const_iterator>);
static_assert(!ContiguousImpactRun<AdaptingIterator>,
              "adapting iterators must take the materializing path");

std::vector<ImpactEntry> Snapshot(const InvertedList& list) {
  return {list.begin(), list.end()};
}

void ExpectSame(const InvertedList& got, const InvertedList& want) {
  const auto g = Snapshot(got);
  const auto w = Snapshot(want);
  ASSERT_EQ(g.size(), w.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g[i].doc, w[i].doc) << "rank " << i;
    EXPECT_EQ(g[i].weight, w[i].weight) << "rank " << i;
  }
}

TEST(InvertedListContiguousTest, PointerRunMatchesSingles) {
  // Seed both lists with an identical base, then insert the same run via
  // raw pointers (fast path) and via single Inserts.
  std::vector<ImpactEntry> base = {{0.9, 2}, {0.5, 4}, {0.1, 6}};
  std::vector<ImpactEntry> run = {{0.8, 9}, {0.5, 5}, {0.5, 3}, {0.05, 1}};
  std::sort(run.begin(), run.end(), ImpactOrder{});

  InvertedList fast, singles;
  for (const ImpactEntry& e : base) {
    ASSERT_TRUE(fast.Insert(e.doc, e.weight));
    ASSERT_TRUE(singles.Insert(e.doc, e.weight));
  }
  EXPECT_EQ(fast.InsertOrdered(run.data(), run.data() + run.size()),
            run.size());
  for (const ImpactEntry& e : run) ASSERT_TRUE(singles.Insert(e.doc, e.weight));
  ExpectSame(fast, singles);
}

TEST(InvertedListContiguousTest, VectorIteratorsTakeFastPathAndMatchAdapting) {
  std::vector<ImpactEntry> run;
  for (DocId d = 1; d <= 64; ++d) {
    run.push_back({0.1 + static_cast<double>(d % 7) * 0.1, d});
  }
  std::sort(run.begin(), run.end(), ImpactOrder{});

  InvertedList via_vector, via_adapter;
  EXPECT_EQ(via_vector.InsertOrdered(run.begin(), run.end()), run.size());
  EXPECT_EQ(via_adapter.InsertOrdered(
                AdaptingIterator{run.data()},
                AdaptingIterator{run.data() + run.size()}),
            run.size());
  ExpectSame(via_vector, via_adapter);
}

TEST(InvertedListContiguousTest, EmptyAndSingletonRuns) {
  InvertedList list;
  const std::vector<ImpactEntry> none;
  EXPECT_EQ(list.InsertOrdered(none.data(), none.data()), 0u);
  EXPECT_TRUE(list.empty());

  const std::vector<ImpactEntry> one = {{0.7, 11}};
  EXPECT_EQ(list.InsertOrdered(one.data(), one.data() + 1), 1u);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list.begin()->doc, 11u);
}

TEST(InvertedListContiguousTest, InterleavesWithExistingTieRuns) {
  // The merged run lands inside existing equal-weight tie runs; ordering
  // (weight desc, doc desc) must hold across both sources.
  InvertedList list;
  ASSERT_TRUE(list.Insert(4, 0.5));
  ASSERT_TRUE(list.Insert(2, 0.5));
  std::vector<ImpactEntry> run = {{0.5, 5}, {0.5, 3}, {0.5, 1}};
  EXPECT_EQ(list.InsertOrdered(run.data(), run.data() + run.size()),
            run.size());
  const auto snap = Snapshot(list);
  ASSERT_EQ(snap.size(), 5u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].doc, 5u - i);  // docs 5,4,3,2,1 — newest first
  }
}

}  // namespace
}  // namespace ita
