#include "container/skip_list.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"

namespace ita {
namespace {

using IntList = SkipList<int, std::less<int>>;

TEST(SkipListTest, EmptyList) {
  IntList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.begin(), list.end());
  EXPECT_EQ(list.Back(), list.end());
  EXPECT_EQ(list.Find(1), list.end());
  EXPECT_FALSE(list.Erase(1));
}

TEST(SkipListTest, InsertMaintainsSortedOrder) {
  IntList list;
  for (const int v : {5, 1, 9, 3, 7, 2, 8, 4, 6, 0}) {
    EXPECT_TRUE(list.Insert(v).second);
  }
  EXPECT_EQ(list.size(), 10u);
  int expected = 0;
  for (const int v : list) {
    EXPECT_EQ(v, expected++);
  }
}

TEST(SkipListTest, DuplicateInsertRejected) {
  IntList list;
  EXPECT_TRUE(list.Insert(42).second);
  const auto [it, inserted] = list.Insert(42);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*it, 42);
  EXPECT_EQ(list.size(), 1u);
}

TEST(SkipListTest, EraseByValue) {
  IntList list;
  for (int v = 0; v < 100; ++v) list.Insert(v);
  for (int v = 0; v < 100; v += 2) {
    EXPECT_TRUE(list.Erase(v));
  }
  EXPECT_EQ(list.size(), 50u);
  for (const int v : list) {
    EXPECT_EQ(v % 2, 1);
  }
  EXPECT_FALSE(list.Erase(2));  // already gone
}

TEST(SkipListTest, EraseByIteratorReturnsSuccessor) {
  IntList list;
  for (const int v : {1, 2, 3}) list.Insert(v);
  auto it = list.Find(2);
  ASSERT_NE(it, list.end());
  auto next = list.Erase(it);
  ASSERT_NE(next, list.end());
  EXPECT_EQ(*next, 3);
  EXPECT_EQ(list.size(), 2u);
}

TEST(SkipListTest, FindAndContains) {
  IntList list;
  for (int v = 0; v < 50; v += 5) list.Insert(v);
  EXPECT_TRUE(list.Contains(25));
  EXPECT_FALSE(list.Contains(26));
  auto it = list.Find(30);
  ASSERT_NE(it, list.end());
  EXPECT_EQ(*it, 30);
}

TEST(SkipListTest, LowerAndUpperBound) {
  IntList list;
  for (const int v : {10, 20, 30, 40}) list.Insert(v);
  EXPECT_EQ(*list.LowerBound(20), 20);
  EXPECT_EQ(*list.UpperBound(20), 30);
  EXPECT_EQ(*list.LowerBound(21), 30);
  EXPECT_EQ(*list.LowerBound(5), 10);
  EXPECT_EQ(list.LowerBound(41), list.end());
  EXPECT_EQ(list.UpperBound(40), list.end());
}

TEST(SkipListTest, BackwardIteration) {
  IntList list;
  for (int v = 0; v < 20; ++v) list.Insert(v);
  auto it = list.end();
  for (int expected = 19; expected >= 0; --expected) {
    --it;
    EXPECT_EQ(*it, expected);
  }
  EXPECT_EQ(it, list.begin());
}

TEST(SkipListTest, BackTracksLargestElement) {
  IntList list;
  list.Insert(5);
  EXPECT_EQ(*list.Back(), 5);
  list.Insert(9);
  EXPECT_EQ(*list.Back(), 9);
  list.Insert(7);
  EXPECT_EQ(*list.Back(), 9);
  list.Erase(9);
  EXPECT_EQ(*list.Back(), 7);
  list.Erase(7);
  list.Erase(5);
  EXPECT_EQ(list.Back(), list.end());
}

TEST(SkipListTest, HasPrevSemantics) {
  IntList list;
  list.Insert(1);
  list.Insert(2);
  EXPECT_FALSE(list.begin().HasPrev());
  EXPECT_TRUE(list.end().HasPrev());
  auto second = list.Find(2);
  EXPECT_TRUE(second.HasPrev());
}

TEST(SkipListTest, ClearResets) {
  IntList list;
  for (int v = 0; v < 1000; ++v) list.Insert(v);
  list.Clear();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.begin(), list.end());
  // Reusable after Clear.
  list.Insert(3);
  EXPECT_EQ(*list.begin(), 3);
  EXPECT_EQ(*list.Back(), 3);
}

TEST(SkipListTest, CustomComparatorDescending) {
  SkipList<int, std::greater<int>> list;
  for (const int v : {3, 1, 4, 1, 5, 9, 2, 6}) list.Insert(v);
  std::vector<int> out;
  for (const int v : list) out.push_back(v);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(), std::greater<int>()));
}

TEST(SkipListTest, LargeSequentialAndReverseInsert) {
  IntList asc, desc;
  for (int v = 0; v < 20000; ++v) asc.Insert(v);
  for (int v = 19999; v >= 0; --v) desc.Insert(v);
  EXPECT_EQ(asc.size(), desc.size());
  auto a = asc.begin();
  auto d = desc.begin();
  while (a != asc.end()) {
    ASSERT_EQ(*a, *d);
    ++a;
    ++d;
  }
}

// Differential fuzz against std::set: random interleaved inserts, erases
// and bound queries must agree exactly.
class SkipListFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkipListFuzzTest, MatchesStdSet) {
  Rng rng(GetParam());
  IntList list;
  std::set<int> reference;

  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 9));
    const int v = static_cast<int>(rng.UniformInt(0, 499));
    if (op < 5) {
      const bool inserted = list.Insert(v).second;
      EXPECT_EQ(inserted, reference.insert(v).second);
    } else if (op < 8) {
      EXPECT_EQ(list.Erase(v), reference.erase(v) > 0);
    } else if (op == 8) {
      EXPECT_EQ(list.Contains(v), reference.count(v) > 0);
    } else {
      const auto lb = list.LowerBound(v);
      const auto ref_lb = reference.lower_bound(v);
      if (ref_lb == reference.end()) {
        EXPECT_EQ(lb, list.end());
      } else {
        ASSERT_NE(lb, list.end());
        EXPECT_EQ(*lb, *ref_lb);
      }
    }
    ASSERT_EQ(list.size(), reference.size());
  }

  // Final full-order comparison, forward and backward.
  std::vector<int> forward(reference.begin(), reference.end());
  std::vector<int> got;
  for (const int v : list) got.push_back(v);
  EXPECT_EQ(got, forward);

  if (!forward.empty()) {
    std::vector<int> backward;
    auto it = list.end();
    do {
      --it;
      backward.push_back(*it);
    } while (it != list.begin());
    std::reverse(backward.begin(), backward.end());
    EXPECT_EQ(backward, forward);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

struct Pair {
  double weight;
  int id;
};
struct PairOrder {
  bool operator()(const Pair& a, const Pair& b) const {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.id > b.id;
  }
};

TEST(SkipListTest, CompositeKeysWithTies) {
  SkipList<Pair, PairOrder> list;
  list.Insert({0.5, 1});
  list.Insert({0.5, 2});
  list.Insert({0.7, 3});
  list.Insert({0.3, 4});
  std::vector<int> ids;
  for (const Pair& p : list) ids.push_back(p.id);
  // weight desc, id desc within ties.
  EXPECT_EQ(ids, (std::vector<int>{3, 2, 1, 4}));
}

}  // namespace
}  // namespace ita
