#include "container/bounded_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace ita {
namespace {

using MinFirst = std::less<int>;

TEST(BoundedTopKTest, KeepsBestK) {
  BoundedTopK<int, MinFirst> top(3);
  for (const int v : {9, 1, 8, 2, 7, 3}) top.Push(v);
  EXPECT_EQ(top.TakeSorted(), (std::vector<int>{1, 2, 3}));
}

TEST(BoundedTopKTest, FewerThanCapacity) {
  BoundedTopK<int, MinFirst> top(10);
  top.Push(5);
  top.Push(2);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_EQ(top.TakeSorted(), (std::vector<int>{2, 5}));
}

TEST(BoundedTopKTest, ZeroCapacityKeepsNothing) {
  BoundedTopK<int, MinFirst> top(0);
  EXPECT_FALSE(top.Push(1));
  EXPECT_TRUE(top.empty());
}

TEST(BoundedTopKTest, PushReportsKept) {
  BoundedTopK<int, MinFirst> top(2);
  EXPECT_TRUE(top.Push(10));
  EXPECT_TRUE(top.Push(20));
  EXPECT_TRUE(top.Push(5));    // displaces 20
  EXPECT_FALSE(top.Push(30));  // worse than current worst (10)
  EXPECT_EQ(top.TakeSorted(), (std::vector<int>{5, 10}));
}

TEST(BoundedTopKTest, WorstTracksBoundary) {
  BoundedTopK<int, MinFirst> top(3);
  top.Push(4);
  top.Push(2);
  top.Push(6);
  EXPECT_EQ(top.Worst(), 6);
  top.Push(1);
  EXPECT_EQ(top.Worst(), 4);
}

TEST(BoundedTopKTest, RandomAgainstFullSort) {
  Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    const std::size_t capacity = 1 + rng.UniformInt(0, 19);
    std::vector<int> values;
    BoundedTopK<int, MinFirst> top(capacity);
    const int n = static_cast<int>(rng.UniformInt(0, 200));
    for (int i = 0; i < n; ++i) {
      const int v = static_cast<int>(rng.UniformInt(0, 1000));
      values.push_back(v);
      top.Push(v);
    }
    std::sort(values.begin(), values.end());
    if (values.size() > capacity) values.resize(capacity);
    EXPECT_EQ(top.TakeSorted(), values);
  }
}

struct ScoreDesc {
  bool operator()(const std::pair<double, int>& a,
                  const std::pair<double, int>& b) const {
    return a.first > b.first;
  }
};

TEST(BoundedTopKTest, WorksWithDescendingScores) {
  BoundedTopK<std::pair<double, int>, ScoreDesc> top(2);
  top.Push({0.3, 1});
  top.Push({0.9, 2});
  top.Push({0.5, 3});
  const auto out = top.TakeSorted();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].second, 2);
  EXPECT_EQ(out[1].second, 3);
}

}  // namespace
}  // namespace ita
