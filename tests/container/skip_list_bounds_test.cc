// Boundary-search semantics under duplicum-free composite keys and fuzzed
// churn: LowerBound/UpperBound/Back/HasPrev must agree with a std::set
// reference at every step, including around erased boundaries.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "container/skip_list.h"

namespace ita {
namespace {

using IntList = SkipList<int, std::less<int>>;

class SkipListBoundsFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkipListBoundsFuzzTest, BoundsMatchStdSetUnderChurn) {
  Rng rng(GetParam());
  IntList list;
  std::set<int> reference;

  for (int step = 0; step < 15000; ++step) {
    const int v = static_cast<int>(rng.UniformInt(0, 300));
    switch (rng.UniformInt(0, 3)) {
      case 0:
      case 1:
        list.Insert(v);
        reference.insert(v);
        break;
      case 2:
        list.Erase(v);
        reference.erase(v);
        break;
      default: {
        // Probe both bounds at a random pivot.
        const auto lb = list.LowerBound(v);
        const auto ref_lb = reference.lower_bound(v);
        if (ref_lb == reference.end()) {
          ASSERT_EQ(lb, list.end());
        } else {
          ASSERT_NE(lb, list.end());
          ASSERT_EQ(*lb, *ref_lb);
        }
        const auto ub = list.UpperBound(v);
        const auto ref_ub = reference.upper_bound(v);
        if (ref_ub == reference.end()) {
          ASSERT_EQ(ub, list.end());
        } else {
          ASSERT_NE(ub, list.end());
          ASSERT_EQ(*ub, *ref_ub);
        }
        break;
      }
    }
    // Back() must track the maximum at all times.
    if (reference.empty()) {
      ASSERT_EQ(list.Back(), list.end());
    } else {
      ASSERT_NE(list.Back(), list.end());
      ASSERT_EQ(*list.Back(), *reference.rbegin());
    }
  }
}

TEST_P(SkipListBoundsFuzzTest, BackwardWalkMatchesForward) {
  Rng rng(GetParam() * 31 + 7);
  IntList list;
  for (int i = 0; i < 500; ++i) {
    list.Insert(static_cast<int>(rng.UniformInt(0, 100000)));
  }
  std::vector<int> forward;
  for (const int v : list) forward.push_back(v);

  std::vector<int> backward;
  auto it = list.end();
  while (it.HasPrev()) {
    --it;
    backward.push_back(*it);
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(backward, forward);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListBoundsFuzzTest,
                         ::testing::Values(101, 202, 303));

TEST(SkipListBoundsTest, BoundsOnEmptyList) {
  IntList list;
  EXPECT_EQ(list.LowerBound(5), list.end());
  EXPECT_EQ(list.UpperBound(5), list.end());
  EXPECT_FALSE(list.end().HasPrev());
}

TEST(SkipListBoundsTest, BoundsAroundSingleElement) {
  IntList list;
  list.Insert(10);
  EXPECT_EQ(*list.LowerBound(10), 10);
  EXPECT_EQ(*list.LowerBound(9), 10);
  EXPECT_EQ(list.LowerBound(11), list.end());
  EXPECT_EQ(*list.UpperBound(9), 10);
  EXPECT_EQ(list.UpperBound(10), list.end());
}

}  // namespace
}  // namespace ita
