// Skip list with non-trivial value types: verifies that node recycling
// (the per-height free lists) correctly constructs/destroys payloads with
// real destructors, and that iterator invalidation rules hold under churn.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "common/random.h"
#include "container/skip_list.h"

namespace ita {
namespace {

using StringList = SkipList<std::string, std::less<std::string>>;

TEST(SkipListStringTest, OrdersLexicographically) {
  StringList list;
  for (const char* w : {"pear", "apple", "quince", "banana", "fig"}) {
    EXPECT_TRUE(list.Insert(w).second);
  }
  std::vector<std::string> got;
  for (const std::string& s : list) got.push_back(s);
  EXPECT_EQ(got, (std::vector<std::string>{"apple", "banana", "fig", "pear",
                                           "quince"}));
}

TEST(SkipListStringTest, LongStringsSurviveRecycling) {
  // Erase + insert cycles force nodes through the free lists; payloads
  // must be destroyed and re-constructed, never reused raw.
  StringList list;
  Rng rng(3);
  for (int round = 0; round < 200; ++round) {
    const std::string value(200 + rng.UniformInt(0, 300), 'a' + round % 26);
    ASSERT_TRUE(list.Insert(value).second);
    ASSERT_TRUE(list.Contains(value));
    ASSERT_TRUE(list.Erase(value));
  }
  EXPECT_TRUE(list.empty());
}

// shared_ptr payloads make destruction observable.
struct Tracked {
  std::shared_ptr<int> ref;
  int key;
  bool operator<(const Tracked& other) const { return key < other.key; }
};

TEST(SkipListStringTest, ClearDestroysAllPayloads) {
  auto sentinel = std::make_shared<int>(7);
  {
    SkipList<Tracked, std::less<Tracked>> list;
    for (int i = 0; i < 100; ++i) list.Insert(Tracked{sentinel, i});
    EXPECT_EQ(sentinel.use_count(), 101);
    list.Clear();
    EXPECT_EQ(sentinel.use_count(), 1);
    for (int i = 0; i < 50; ++i) list.Insert(Tracked{sentinel, i});
    EXPECT_EQ(sentinel.use_count(), 51);
  }
  EXPECT_EQ(sentinel.use_count(), 1);  // destructor drains free lists too
}

TEST(SkipListStringTest, EraseByIteratorDuringScan) {
  StringList list;
  for (int i = 0; i < 100; ++i) {
    list.Insert("key_" + std::to_string(1000 + i));
  }
  // Remove every other element via Erase(iterator).
  auto it = list.begin();
  bool drop = true;
  while (it != list.end()) {
    if (drop) {
      it = list.Erase(it);
    } else {
      ++it;
    }
    drop = !drop;
  }
  EXPECT_EQ(list.size(), 50u);
}

TEST(SkipListStringTest, ChurnFuzzAgainstStdSet) {
  StringList list;
  std::set<std::string> reference;
  Rng rng(17);
  for (int step = 0; step < 8000; ++step) {
    const std::string v = "v" + std::to_string(rng.UniformInt(0, 200));
    if (rng.NextBool(0.5)) {
      EXPECT_EQ(list.Insert(v).second, reference.insert(v).second);
    } else {
      EXPECT_EQ(list.Erase(v), reference.erase(v) > 0);
    }
  }
  std::vector<std::string> got, want(reference.begin(), reference.end());
  for (const std::string& s : list) got.push_back(s);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace ita
