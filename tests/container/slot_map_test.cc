#include "container/slot_map.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ita {
namespace {

TEST(SlotMapTest, InsertAssignsDenseSlots) {
  SlotMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Insert(10), 0u);
  EXPECT_EQ(map.Insert(11), 1u);
  EXPECT_EQ(map.Insert(12), 2u);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.slot_count(), 3u);
  EXPECT_EQ(map[0], 10);
  EXPECT_EQ(map[1], 11);
  EXPECT_EQ(map[2], 12);
}

TEST(SlotMapTest, EraseVacatesAndGetReturnsNull) {
  SlotMap<std::string> map;
  const auto a = map.Insert("a");
  const auto b = map.Insert("b");
  EXPECT_TRUE(map.Erase(a));
  EXPECT_EQ(map.Get(a), nullptr);
  EXPECT_FALSE(map.Contains(a));
  ASSERT_NE(map.Get(b), nullptr);
  EXPECT_EQ(*map.Get(b), "b");
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.free_count(), 1u);
  // Double erase and out-of-range erase are rejected.
  EXPECT_FALSE(map.Erase(a));
  EXPECT_FALSE(map.Erase(999));
}

TEST(SlotMapTest, FreedSlotsAreReusedLifo) {
  SlotMap<int> map;
  (void)map.Insert(1);
  const auto s1 = map.Insert(2);
  const auto s2 = map.Insert(3);
  EXPECT_TRUE(map.Erase(s1));
  EXPECT_TRUE(map.Erase(s2));
  // LIFO: the most recently freed slot comes back first.
  EXPECT_EQ(map.Insert(30), s2);
  EXPECT_EQ(map.Insert(20), s1);
  EXPECT_EQ(map.slot_count(), 3u);  // no growth under churn
  EXPECT_EQ(map[s1], 20);
  EXPECT_EQ(map[s2], 30);
}

TEST(SlotMapTest, ChurnStormKeepsSlabBounded) {
  SlotMap<int> map;
  std::vector<SlotMap<int>::SlotIndex> live;
  for (int i = 0; i < 64; ++i) live.push_back(map.Insert(i));
  // 1000 rounds of full unregister/re-register churn: the slab must not
  // grow past the high-water mark of concurrently live values.
  for (int round = 0; round < 1000; ++round) {
    for (const auto slot : live) EXPECT_TRUE(map.Erase(slot));
    live.clear();
    for (int i = 0; i < 64; ++i) live.push_back(map.Insert(i));
  }
  EXPECT_EQ(map.size(), 64u);
  EXPECT_EQ(map.slot_count(), 64u);
}

TEST(SlotMapTest, SlotsStayStableAcrossGrowth) {
  SlotMap<int> map;
  const auto first = map.Insert(42);
  for (int i = 0; i < 1000; ++i) (void)map.Insert(i);
  EXPECT_EQ(map[first], 42);  // the slot survives arbitrary growth
}

TEST(SlotMapTest, ForEachVisitsOccupiedSlotsInOrder) {
  SlotMap<int> map;
  const auto a = map.Insert(1);
  const auto b = map.Insert(2);
  const auto c = map.Insert(3);
  EXPECT_TRUE(map.Erase(b));

  std::vector<std::pair<SlotMap<int>::SlotIndex, int>> seen;
  map.ForEach([&](SlotMap<int>::SlotIndex slot, int value) {
    seen.emplace_back(slot, value);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_pair(a, 1));
  EXPECT_EQ(seen[1], std::make_pair(c, 3));
}

TEST(SlotMapTest, MoveOnlyValues) {
  SlotMap<std::unique_ptr<int>> map;
  const auto slot = map.Insert(std::make_unique<int>(7));
  ASSERT_NE(map.Get(slot), nullptr);
  EXPECT_EQ(**map.Get(slot), 7);
  EXPECT_TRUE(map.Erase(slot));
}

TEST(SlotMapTest, SlabBytesReflectCapacity) {
  SlotMap<double> map;
  EXPECT_EQ(map.slab_bytes(), 0u);
  (void)map.Insert(1.0);
  EXPECT_GE(map.slab_bytes(), sizeof(std::optional<double>));
}

}  // namespace
}  // namespace ita
