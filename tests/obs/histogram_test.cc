#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.h"

namespace ita::obs {
namespace {

TEST(HistogramTest, BucketIndexLayout) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 1u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(7), 2u);
  EXPECT_EQ(Histogram::BucketIndex(8), 3u);
  EXPECT_EQ(Histogram::BucketIndex(std::uint64_t{1} << 62), 62u);
  EXPECT_EQ(Histogram::BucketIndex(std::uint64_t{1} << 63), 63u);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<std::uint64_t>::max()),
            63u);
}

TEST(HistogramTest, BucketBoundsContainTheirValues) {
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t lo = Histogram::BucketLowerBound(i);
    const std::uint64_t hi = Histogram::BucketUpperBound(i);
    EXPECT_LE(lo, hi);
    EXPECT_EQ(Histogram::BucketIndex(lo), i);
    EXPECT_EQ(Histogram::BucketIndex(hi), i);
  }
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 0u);
  EXPECT_EQ(hist.Quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(hist.Mean(), 0.0);
}

TEST(HistogramTest, RecordUpdatesSummary) {
  Histogram hist;
  hist.Record(10);
  hist.Record(100);
  hist.Record(3);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.sum(), 113u);
  EXPECT_EQ(hist.min(), 3u);
  EXPECT_EQ(hist.max(), 100u);
  EXPECT_DOUBLE_EQ(hist.Mean(), 113.0 / 3.0);
}

TEST(HistogramTest, QuantileBoundaryBehaviorIsPinned) {
  // Empty: every p, including the extremes and garbage, answers 0.
  Histogram empty;
  for (const double p : {0.0, 0.5, 1.0, -1.0, 2.0}) {
    EXPECT_EQ(empty.Quantile(p), 0u) << "p=" << p;
  }
  EXPECT_EQ(empty.Quantile(std::numeric_limits<double>::quiet_NaN()), 0u);

  // Single sample: every quantile IS that sample.
  Histogram single;
  single.Record(42);
  for (const double p : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_EQ(single.Quantile(p), 42u) << "p=" << p;
  }

  // All mass in one bucket (values 8..15 share bucket 3): p=0 is the
  // observed min, p=1 the observed max — never a synthetic bucket bound.
  Histogram one_bucket;
  for (const std::uint64_t v : {9u, 11u, 14u}) one_bucket.Record(v);
  EXPECT_EQ(one_bucket.Quantile(0.0), 9u);
  EXPECT_EQ(one_bucket.Quantile(1.0), 14u);

  // NaN cannot poison the rank arithmetic: it resolves like p = 0.
  EXPECT_EQ(one_bucket.Quantile(std::numeric_limits<double>::quiet_NaN()), 9u);
}

TEST(HistogramTest, QuantileExactAtExtremes) {
  Histogram hist;
  for (const std::uint64_t v : {7u, 19u, 250u, 1000u, 40000u}) hist.Record(v);
  EXPECT_EQ(hist.Quantile(0.0), 7u);
  EXPECT_EQ(hist.Quantile(1.0), 40000u);
  // Out-of-range p clamps rather than reading out of bounds.
  EXPECT_EQ(hist.Quantile(-3.0), 7u);
  EXPECT_EQ(hist.Quantile(2.0), 40000u);
}

TEST(HistogramTest, OverflowBucketHoldsHugeSamples) {
  Histogram hist;
  const std::uint64_t huge = std::uint64_t{1} << 63;
  hist.Record(huge);
  hist.Record(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(hist.buckets()[Histogram::kBucketCount - 1], 2u);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.min(), huge);
  EXPECT_EQ(hist.max(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(hist.Quantile(1.0), std::numeric_limits<std::uint64_t>::max());
  // Any mid quantile stays inside the overflow bucket.
  EXPECT_GE(hist.Quantile(0.5), huge);
}

// The documented accuracy contract: the returned value lives in the
// bucket holding the true (nearest-rank) quantile, clamped to the
// observed range — so it is within 2x of the sorted-reference answer.
TEST(HistogramTest, QuantileWithinBucketOfSortedReference) {
  Rng rng(1234);
  std::vector<std::uint64_t> samples;
  Histogram hist;
  for (int i = 0; i < 5'000; ++i) {
    // Mixed magnitudes: log-uniform over [1, 2^40).
    const int shift = static_cast<int>(rng.Next() % 40);
    const std::uint64_t value = (std::uint64_t{1} << shift) | (rng.Next() & 7);
    samples.push_back(value);
    hist.Record(value);
  }
  std::sort(samples.begin(), samples.end());
  for (const double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    // Nearest-rank reference on the exact samples.
    std::size_t rank = static_cast<std::size_t>(p * samples.size());
    rank = std::min(rank, samples.size() - 1);
    const std::uint64_t reference = samples[rank];
    const std::uint64_t answer = hist.Quantile(p);
    // Same power-of-two bucket => within a factor of 2 either way.
    EXPECT_LE(answer, 2 * reference + 1) << "p=" << p;
    EXPECT_LE(reference, 2 * answer + 1) << "p=" << p;
  }
}

TEST(HistogramTest, MergeMatchesConcatenatedRecording) {
  Rng rng(7);
  Histogram a, b, combined;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t value = rng.Next() % 1'000'000;
    if (i % 2 == 0) {
      a.Record(value);
    } else {
      b.Record(value);
    }
    combined.Record(value);
  }
  Histogram merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_EQ(merged.sum(), combined.sum());
  EXPECT_EQ(merged.min(), combined.min());
  EXPECT_EQ(merged.max(), combined.max());
  EXPECT_EQ(merged.buckets(), combined.buckets());
}

TEST(HistogramTest, MergeIsCommutativeAndAssociative) {
  Rng rng(99);
  Histogram parts[3];
  for (int i = 0; i < 300; ++i) {
    parts[i % 3].Record(rng.Next() % (std::uint64_t{1} << (1 + i % 50)));
  }

  Histogram ab = parts[0];
  ab.Merge(parts[1]);
  Histogram ba = parts[1];
  ba.Merge(parts[0]);
  EXPECT_EQ(ab.buckets(), ba.buckets());
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.sum(), ba.sum());
  EXPECT_EQ(ab.min(), ba.min());
  EXPECT_EQ(ab.max(), ba.max());

  Histogram left = ab;  // (a + b) + c
  left.Merge(parts[2]);
  Histogram bc = parts[1];
  bc.Merge(parts[2]);
  Histogram right = parts[0];  // a + (b + c)
  right.Merge(bc);
  EXPECT_EQ(left.buckets(), right.buckets());
  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram hist, empty;
  hist.Record(17);
  hist.Record(42);
  Histogram merged = hist;
  merged.Merge(empty);
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.min(), 17u);
  EXPECT_EQ(merged.max(), 42u);
  Histogram other = empty;
  other.Merge(hist);
  EXPECT_EQ(other.count(), 2u);
  EXPECT_EQ(other.min(), 17u);
  EXPECT_EQ(other.max(), 42u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram hist;
  hist.Record(1'000);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 0u);
  for (const std::uint64_t bucket : hist.buckets()) EXPECT_EQ(bucket, 0u);
}

}  // namespace
}  // namespace ita::obs
