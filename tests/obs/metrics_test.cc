#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

#include "common/stats.h"
#include "obs/histogram.h"

namespace ita::obs {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(MetricsNamesTest, MetricNameGrammar) {
  EXPECT_TRUE(IsValidMetricName("ita_documents_ingested_total"));
  EXPECT_TRUE(IsValidMetricName("a:b_c9"));
  EXPECT_TRUE(IsValidMetricName("_x"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("9lives"));
  EXPECT_FALSE(IsValidMetricName("has-dash"));
  EXPECT_FALSE(IsValidMetricName("has space"));
}

TEST(MetricsNamesTest, LabelKeyGrammar) {
  EXPECT_TRUE(IsValidLabelKey("shard"));
  EXPECT_TRUE(IsValidLabelKey("_hidden9"));
  EXPECT_FALSE(IsValidLabelKey("with:colon"));  // colons are name-only
  EXPECT_FALSE(IsValidLabelKey("9shard"));
  EXPECT_FALSE(IsValidLabelKey(""));
}

TEST(MetricsRegistryTest, RejectsInvalidNamesAndKeys) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.AddCounter("bad-name", "h", {}, 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.AddGauge("ok_name", "h", {Label{"bad-key", "v"}}, 1.0)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(registry.counters().empty());
  EXPECT_TRUE(registry.gauges().empty());
}

TEST(MetricsRegistryTest, RejectsDuplicateSeriesAcrossKinds) {
  MetricsRegistry registry;
  ASSERT_TRUE(registry.AddCounter("ita_x", "h", {Label{"a", "1"}}, 5).ok());
  // Same (name, labels) again — as any kind — is a duplicate.
  EXPECT_EQ(registry.AddCounter("ita_x", "h", {Label{"a", "1"}}, 6).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.AddGauge("ita_x", "h", {Label{"a", "1"}}, 6.0).code(),
            StatusCode::kAlreadyExists);
  // A different label set on the same name is a new series.
  EXPECT_TRUE(registry.AddCounter("ita_x", "h", {Label{"a", "2"}}, 7).ok());
  // Label order must not matter for identity.
  ASSERT_TRUE(registry
                  .AddCounter("ita_y", "h",
                              {Label{"a", "1"}, Label{"b", "2"}}, 1)
                  .ok());
  EXPECT_EQ(registry
                .AddCounter("ita_y", "h",
                            {Label{"b", "2"}, Label{"a", "1"}}, 1)
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(MetricsRegistryTest, JsonCarriesVersionAndSeries) {
  MetricsRegistry registry;
  ASSERT_TRUE(
      registry.AddCounter("ita_c", "docs", {Label{"engine", "ita"}}, 42).ok());
  ASSERT_TRUE(registry.AddGauge("ita_g", "bytes", {}, 2.5).ok());
  Histogram hist;
  hist.Record(3);
  hist.Record(1'000);
  ASSERT_TRUE(registry.AddHistogram("ita_h", "lat", {}, hist).ok());

  const std::string json = registry.ToJson();
  EXPECT_TRUE(Contains(json, "\"version\":1")) << json;
  EXPECT_TRUE(Contains(json, "\"name\":\"ita_c\"")) << json;
  EXPECT_TRUE(Contains(json, "\"engine\":\"ita\"")) << json;
  EXPECT_TRUE(Contains(json, "\"value\":42")) << json;
  EXPECT_TRUE(Contains(json, "\"name\":\"ita_h\"")) << json;
  EXPECT_TRUE(Contains(json, "\"count\":2")) << json;
  EXPECT_TRUE(Contains(json, "\"min\":3")) << json;
  EXPECT_TRUE(Contains(json, "\"max\":1000")) << json;
  EXPECT_TRUE(Contains(json, "\"p50\"")) << json;
  EXPECT_TRUE(Contains(json, "\"buckets\"")) << json;
}

TEST(MetricsRegistryTest, PrometheusRenditionPassesOwnLint) {
  MetricsRegistry registry;
  ASSERT_TRUE(
      registry.AddCounter("ita_c_total", "docs", {Label{"engine", "ita"}}, 42)
          .ok());
  ASSERT_TRUE(registry
                  .AddCounter("ita_c_total", "docs",
                              {Label{"engine", "sharded(ita,4)"}}, 99)
                  .ok());
  ASSERT_TRUE(registry.AddGauge("ita_g", "level", {}, -1.5).ok());
  Histogram hist;
  hist.Record(3);
  hist.Record(900);
  hist.Record(1'000);
  ASSERT_TRUE(registry.AddHistogram("ita_h", "lat", {Label{"shard", "0"}}, hist)
                  .ok());

  const std::string text = registry.ToPrometheus();
  EXPECT_TRUE(LintPrometheus(text).ok()) << text;

  // One HELP/TYPE header per family even with two series.
  std::size_t first = text.find("# TYPE ita_c_total counter");
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find("# TYPE ita_c_total counter", first + 1),
            std::string::npos);
  EXPECT_TRUE(Contains(text, "# TYPE ita_h histogram")) << text;
  // Histogram expansion: cumulative buckets, +Inf, _sum, _count.
  EXPECT_TRUE(Contains(text, "ita_h_bucket{shard=\"0\",le=\"+Inf\"} 3"))
      << text;
  EXPECT_TRUE(Contains(text, "ita_h_sum{shard=\"0\"} 1903")) << text;
  EXPECT_TRUE(Contains(text, "ita_h_count{shard=\"0\"} 3")) << text;
  // 900 and 1000 share bucket [512, 1024): its cumulative count is 3.
  EXPECT_TRUE(Contains(text, "le=\"1023\"} 3")) << text;
}

TEST(LintPrometheusTest, AcceptsCommentsBlanksAndSpecialValues) {
  EXPECT_TRUE(LintPrometheus("# HELP x y\n# TYPE x gauge\nx 1\n").ok());
  EXPECT_TRUE(LintPrometheus("\n# orphan comment\nx{a=\"b\"} -2.5e3\n").ok());
  EXPECT_TRUE(LintPrometheus("x 1\ny +Inf\nz NaN\n").ok());
}

TEST(LintPrometheusTest, RejectsMalformedExpositions) {
  // Invalid metric name.
  EXPECT_FALSE(LintPrometheus("9bad 1\n").ok());
  // Invalid label key.
  EXPECT_FALSE(LintPrometheus("x{9k=\"v\"} 1\n").ok());
  // Unterminated label set.
  EXPECT_FALSE(LintPrometheus("x{a=\"v\" 1\n").ok());
  // Missing / non-numeric value.
  EXPECT_FALSE(LintPrometheus("x\n").ok());
  EXPECT_FALSE(LintPrometheus("x{a=\"v\"} fast\n").ok());
  // Trailing garbage after the value.
  EXPECT_FALSE(LintPrometheus("x 1 2 3\n").ok());
  // Duplicate (name, labels) series.
  EXPECT_FALSE(LintPrometheus("x{a=\"v\"} 1\nx{a=\"v\"} 2\n").ok());
}

TEST(ExportServerStatsTest, RegistersCanonicalSeries) {
  ServerStats stats;
  stats.documents_ingested = 123;
  stats.scores_computed = 456;
  stats.postings_bytes = 789;
  MetricsRegistry registry;
  ASSERT_TRUE(
      ExportServerStats(stats, {Label{"engine", "ita"}}, &registry).ok());

  bool found_counter = false;
  for (const auto& counter : registry.counters()) {
    if (counter.name == "ita_documents_ingested_total") {
      found_counter = true;
      EXPECT_EQ(counter.value, 123u);
      ASSERT_EQ(counter.labels.size(), 1u);
      EXPECT_EQ(counter.labels[0].value, "ita");
    }
  }
  EXPECT_TRUE(found_counter);
  bool found_gauge = false;
  for (const auto& gauge : registry.gauges()) {
    if (gauge.name == "ita_postings_bytes") {
      found_gauge = true;
      EXPECT_DOUBLE_EQ(gauge.value, 789.0);
    }
  }
  EXPECT_TRUE(found_gauge);
  // Exporting twice with the same labels is a duplicate-series error.
  EXPECT_FALSE(
      ExportServerStats(stats, {Label{"engine", "ita"}}, &registry).ok());
  // The exposition the export produces is lintable.
  EXPECT_TRUE(LintPrometheus(registry.ToPrometheus()).ok());
}

}  // namespace
}  // namespace ita::obs
