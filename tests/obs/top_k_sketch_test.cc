#include "obs/top_k_sketch.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace ita::obs {
namespace {

TEST(SpaceSavingSketchTest, ExactBelowCapacity) {
  SpaceSavingSketch sketch(8);
  sketch.Add(3, 10);
  sketch.Add(5, 2);
  sketch.Add(3, 1);
  EXPECT_EQ(sketch.size(), 2u);
  EXPECT_EQ(sketch.total_weight(), 13u);
  const auto top = sketch.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].term, 3u);
  EXPECT_EQ(top[0].count, 11u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].term, 5u);
  EXPECT_EQ(top[1].count, 2u);
  EXPECT_EQ(top[1].error, 0u);
}

TEST(SpaceSavingSketchTest, EvictionInheritsMinCountAsError) {
  SpaceSavingSketch sketch(2);
  sketch.Add(1, 10);
  sketch.Add(2, 3);
  sketch.Add(7, 5);  // evicts term 2 (min count 3)
  EXPECT_EQ(sketch.size(), 2u);
  const auto top = sketch.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].term, 1u);
  EXPECT_EQ(top[0].count, 10u);
  EXPECT_EQ(top[1].term, 7u);
  EXPECT_EQ(top[1].count, 8u);  // 3 inherited + 5 added
  EXPECT_EQ(top[1].error, 3u);
  EXPECT_EQ(sketch.total_weight(), 18u);
}

TEST(SpaceSavingSketchTest, TopKOrdersAndTruncates) {
  SpaceSavingSketch sketch(8);
  sketch.Add(4, 5);
  sketch.Add(9, 5);  // tie with 4: ascending term breaks it
  sketch.Add(1, 20);
  const auto top2 = sketch.TopK(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].term, 1u);
  EXPECT_EQ(top2[1].term, 4u);
  EXPECT_EQ(sketch.TopK(100).size(), 3u);
}

// The classic space-saving guarantees against an exact-counts oracle on
// a Zipf stream: every tracked count is a sound upper bound (true <=
// count, count - error <= true), and every term whose true weight beats
// the minimum tracked count is tracked.
TEST(SpaceSavingSketchTest, ZipfStreamObeysSketchGuarantees) {
  Rng rng(2026);
  const ZipfDistribution zipf(10'000, 1.1);
  SpaceSavingSketch sketch(64);
  std::map<TermId, std::uint64_t> exact;
  std::uint64_t total = 0;
  for (int i = 0; i < 100'000; ++i) {
    const auto term = static_cast<TermId>(zipf.Sample(&rng));
    const std::uint64_t weight = 1 + rng.Next() % 4;
    sketch.Add(term, weight);
    exact[term] += weight;
    total += weight;
  }
  EXPECT_EQ(sketch.total_weight(), total);

  const auto tracked = sketch.TopK();
  EXPECT_EQ(tracked.size(), sketch.capacity());
  std::uint64_t min_tracked = tracked.back().count;
  for (const auto& entry : tracked) {
    const std::uint64_t true_weight = exact[entry.term];
    EXPECT_LE(true_weight, entry.count) << "term " << entry.term;
    EXPECT_LE(entry.count - entry.error, true_weight)
        << "term " << entry.term;
    min_tracked = std::min(min_tracked, entry.count);
  }
  // Heavy-hitter guarantee: a true weight above the minimum tracked
  // count cannot have been evicted.
  for (const auto& [term, weight] : exact) {
    if (weight <= min_tracked) continue;
    bool found = false;
    for (const auto& entry : tracked) found = found || entry.term == term;
    EXPECT_TRUE(found) << "heavy term " << term << " (weight " << weight
                       << " > min tracked " << min_tracked << ") evicted";
  }
  // On a skewed stream the head is identified exactly: rank 0 dominates.
  EXPECT_EQ(tracked.front().term, 0u);
}

// Merging per-shard sketches must preserve the upper-bound soundness —
// this is how the sharded engine folds shards on read.
TEST(SpaceSavingSketchTest, MergeKeepsCountsSoundUpperBounds) {
  Rng rng(7);
  const ZipfDistribution zipf(2'000, 1.2);
  SpaceSavingSketch shard_a(32), shard_b(32);
  std::map<TermId, std::uint64_t> exact;
  for (int i = 0; i < 40'000; ++i) {
    const auto term = static_cast<TermId>(zipf.Sample(&rng));
    (i % 2 == 0 ? shard_a : shard_b).Add(term, 1);
    exact[term] += 1;
  }
  SpaceSavingSketch merged = shard_a;
  merged.MergeFrom(shard_b);
  EXPECT_EQ(merged.total_weight(),
            shard_a.total_weight() + shard_b.total_weight());
  EXPECT_LE(merged.size(), merged.capacity());
  for (const auto& entry : merged.TopK()) {
    EXPECT_LE(exact[entry.term], entry.count) << "term " << entry.term;
  }
  // The unquestionable head of the Zipf stream survives the merge.
  EXPECT_EQ(merged.TopK(1).front().term, 0u);
}

TEST(SpaceSavingSketchTest, MergeFromEmptyAndIntoEmpty) {
  SpaceSavingSketch filled(4), empty(4);
  filled.Add(5, 9);
  SpaceSavingSketch a = filled;
  a.MergeFrom(empty);
  EXPECT_EQ(a.TopK().front().count, 9u);
  SpaceSavingSketch b = empty;
  b.MergeFrom(filled);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.TopK().front().term, 5u);
  EXPECT_EQ(b.TopK().front().count, 9u);
  EXPECT_EQ(b.total_weight(), 9u);
}

TEST(SpaceSavingSketchTest, ResetForgetsEverything) {
  SpaceSavingSketch sketch(4);
  sketch.Add(1, 2);
  sketch.Reset();
  EXPECT_EQ(sketch.size(), 0u);
  EXPECT_EQ(sketch.total_weight(), 0u);
  EXPECT_TRUE(sketch.TopK().empty());
  EXPECT_EQ(sketch.capacity(), 4u);
}

}  // namespace
}  // namespace ita::obs
