// Sequential-driver tracing: ContinuousSearchServer brackets its epoch
// paths (Ingest, IngestBatch, AdvanceTime) with BeginEpoch/EndEpoch and
// the ITA strategy writes probe/roll-up/refill sub-spans through the
// recorder the driver hands it. These tests pin the epoch accounting,
// the span-sum-vs-wall consistency the metrics snapshots rely on, and
// the hot-term sketch wiring on the batch path.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/ita_server.h"
#include "obs/epoch_trace.h"
#include "obs/phase_recorder.h"
#include "stream/corpus.h"

namespace ita {
namespace {

ServerOptions SmallWindow(std::size_t window = 128) {
  ServerOptions options;
  options.window = WindowSpec::CountBased(window);
  return options;
}

/// `epochs` batches of `batch` synthetic docs with 32 hot queries.
void Drive(ItaServer& server, std::size_t epochs, std::size_t batch) {
  SyntheticCorpusOptions copts;
  copts.dictionary_size = 2'000;
  copts.seed = 5;
  SyntheticCorpusGenerator corpus(copts);
  QueryWorkloadOptions qopts;
  qopts.terms_per_query = 4;
  qopts.k = 5;
  qopts.max_term = 64;
  qopts.seed = 6;
  QueryWorkloadGenerator queries(copts.dictionary_size, qopts);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(server.RegisterQuery(queries.NextQuery()).ok());
  }
  Timestamp now = 0;
  for (std::size_t e = 0; e < epochs; ++e) {
    std::vector<Document> docs;
    for (std::size_t i = 0; i < batch; ++i) {
      docs.push_back(corpus.NextDocument(now += 1'000));
    }
    ASSERT_TRUE(server.IngestBatch(std::move(docs)).ok());
  }
}

TEST(ServerTracingTest, DisabledByDefault) {
  ItaServer server(SmallWindow());
  EXPECT_EQ(server.trace(), nullptr);
  EXPECT_EQ(server.hot_terms(), nullptr);
  Drive(server, /*epochs=*/2, /*batch=*/16);
  EXPECT_EQ(server.trace(), nullptr);
}

TEST(ServerTracingTest, BatchEpochsAreTracedWithSubSpans) {
  ItaServer server(SmallWindow(/*window=*/64));
  server.EnableTracing(/*capacity=*/8);
  server.EnableHotTermTracking(/*capacity=*/16);
#if !ITA_OBS_ENABLED
  EXPECT_EQ(server.trace(), nullptr);
  GTEST_SKIP() << "telemetry compiled out (ITA_OBS=OFF)";
#else
  const std::size_t kEpochs = 6;
  // 32 docs/epoch over a 64-doc window: expirations from epoch 3 on.
  Drive(server, kEpochs, /*batch=*/32);

  const obs::EpochTrace* trace = server.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->shards(), 1u);
  EXPECT_EQ(trace->epochs(), kEpochs);

  // Every epoch recorded its driver phases...
  EXPECT_EQ(trace->phase_hist(0, obs::Phase::kPlan).count(), kEpochs);
  EXPECT_EQ(trace->phase_hist(0, obs::Phase::kArrive).count(), kEpochs);
  EXPECT_EQ(trace->phase_hist(0, obs::Phase::kNotifyFlush).count(), kEpochs);
  EXPECT_GT(trace->cumulative_phase_nanos(0, obs::Phase::kArrive), 0u);
  // ...no barrier exists on the sequential driver...
  EXPECT_EQ(trace->cumulative_phase_nanos(0, obs::Phase::kBarrierWait), 0u);
  // ...and the ITA strategy's sub-spans came through the recorder:
  // probe + roll-up on every arrival epoch, refill once expiry begins.
  EXPECT_GT(trace->cumulative_sub_nanos(0, obs::SubSpan::kProbe), 0u);
  EXPECT_EQ(trace->sub_hist(0, obs::SubSpan::kRollUp).count(), kEpochs);
  EXPECT_GT(trace->sub_hist(0, obs::SubSpan::kRefill).count(), 0u);

  // Span-sum consistency: all spans nest inside the epoch, so their sum
  // is bounded by the driver's wall measurement (small clock slack).
  for (std::size_t i = 0; i < trace->size(); ++i) {
    const auto sample = trace->Sample(i);
    EXPECT_GT(sample.wall_nanos, 0u);
    std::uint64_t span_total = 0;
    for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
      span_total += sample.Phase(0, static_cast<obs::Phase>(p));
    }
    EXPECT_LE(span_total, sample.wall_nanos + 2'000u) << "sample " << i;
    // The epoch did real measured work.
    EXPECT_GT(sample.Phase(0, obs::Phase::kArrive), 0u);
  }

  // Hot-term tracking on the batch path saw the postings stream.
  ASSERT_NE(server.hot_terms(), nullptr);
  EXPECT_GT(server.hot_terms()->total_weight(), 0u);
  EXPECT_FALSE(server.hot_terms()->TopK(4).empty());
#endif
}

TEST(ServerTracingTest, PerEventIngestTracesOneEpochEach) {
  ItaServer server(SmallWindow());
  server.EnableTracing(/*capacity=*/4);
#if !ITA_OBS_ENABLED
  GTEST_SKIP() << "telemetry compiled out (ITA_OBS=OFF)";
#else
  SyntheticCorpusGenerator corpus{SyntheticCorpusOptions{}};
  ASSERT_TRUE(server.Ingest(corpus.NextDocument(1'000)).ok());
  ASSERT_TRUE(server.Ingest(corpus.NextDocument(2'000)).ok());
  ASSERT_NE(server.trace(), nullptr);
  EXPECT_EQ(server.trace()->epochs(), 2u);
  EXPECT_EQ(server.trace()->phase_hist(0, obs::Phase::kArrive).count(), 2u);
#endif
}

}  // namespace
}  // namespace ita
