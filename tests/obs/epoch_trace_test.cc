#include "obs/epoch_trace.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "obs/phase_recorder.h"

namespace ita::obs {
namespace {

TEST(PhaseRecorderTest, RecordsAndResets) {
  PhaseRecorder recorder;
  recorder.Record(Phase::kExpire, 100);
  recorder.Record(Phase::kExpire, 50);
  recorder.Record(Phase::kArrive, 7);
  recorder.RecordSub(SubSpan::kProbe, 3);
  EXPECT_EQ(recorder.phase_nanos(Phase::kExpire), 150u);
  EXPECT_EQ(recorder.phase_nanos(Phase::kArrive), 7u);
  EXPECT_EQ(recorder.phase_nanos(Phase::kPlan), 0u);
  EXPECT_EQ(recorder.sub_nanos(SubSpan::kProbe), 3u);
  recorder.Reset();
  EXPECT_EQ(recorder.phase_nanos(Phase::kExpire), 0u);
  EXPECT_EQ(recorder.sub_nanos(SubSpan::kProbe), 0u);
}

TEST(ScopedSpanTest, NullRecorderIsInert) {
  // The disabled-at-runtime path: a null recorder must not crash (and
  // must not read the clock, though that is invisible here).
  ScopedSpan span(nullptr, Phase::kExpire);
  ScopedSubSpan sub(nullptr, SubSpan::kProbe);
}

TEST(ScopedSpanTest, RecordsElapsedOnDestruction) {
  PhaseRecorder recorder;
  {
    ScopedSpan span(&recorder, Phase::kArrive);
  }
  // Non-negative and sane; a scope that does nothing still costs a
  // couple of clock reads.
  EXPECT_LT(recorder.phase_nanos(Phase::kArrive), 1'000'000'000u);
}

TEST(EpochTraceTest, SingleLaneEpochLifecycle) {
  EpochTrace trace(/*capacity=*/4, /*shards=*/1);
  EXPECT_EQ(trace.epochs(), 0u);
  EXPECT_EQ(trace.size(), 0u);

  trace.BeginEpoch(10);
  trace.RecordPhase(0, Phase::kPlan, 100);
  trace.RecordPhase(0, Phase::kExpire, 200);
  trace.RecordPhase(0, Phase::kArrive, 300);
  trace.shard_recorder(0)->RecordSub(SubSpan::kProbe, 40);
  trace.EndEpoch(/*wall_nanos=*/1'000);

  EXPECT_EQ(trace.epochs(), 1u);
  ASSERT_EQ(trace.size(), 1u);
  const auto sample = trace.Sample(0);
  EXPECT_EQ(sample.epoch, 10u);
  EXPECT_EQ(sample.wall_nanos, 1'000u);
  EXPECT_EQ(sample.Phase(0, Phase::kPlan), 100u);
  EXPECT_EQ(sample.Phase(0, Phase::kExpire), 200u);
  EXPECT_EQ(sample.Phase(0, Phase::kArrive), 300u);
  EXPECT_EQ(sample.Phase(0, Phase::kNotifyFlush), 0u);
  EXPECT_EQ(sample.Sub(0, SubSpan::kProbe), 40u);

  EXPECT_EQ(trace.wall_hist().count(), 1u);
  EXPECT_EQ(trace.wall_hist().max(), 1'000u);
  EXPECT_EQ(trace.phase_hist(0, Phase::kExpire).count(), 1u);
  EXPECT_EQ(trace.phase_hist(0, Phase::kExpire).max(), 200u);
  EXPECT_EQ(trace.cumulative_phase_nanos(0, Phase::kExpire), 200u);
  EXPECT_EQ(trace.cumulative_sub_nanos(0, SubSpan::kProbe), 40u);
  // One lane: trivially balanced.
  EXPECT_DOUBLE_EQ(trace.last_imbalance(), 1.0);
}

TEST(EpochTraceTest, BeginEpochZeroesRecorders) {
  EpochTrace trace(2, 1);
  trace.BeginEpoch(0);
  trace.RecordPhase(0, Phase::kExpire, 500);
  trace.EndEpoch(500);
  trace.BeginEpoch(1);
  trace.EndEpoch(100);  // no spans this epoch
  const auto sample = trace.Sample(1);
  EXPECT_EQ(sample.Phase(0, Phase::kExpire), 0u)
      << "stale span leaked across BeginEpoch";
  EXPECT_EQ(trace.cumulative_phase_nanos(0, Phase::kExpire), 500u);
}

TEST(EpochTraceTest, RingKeepsTheMostRecentEpochs) {
  EpochTrace trace(/*capacity=*/2, /*shards=*/1);
  for (std::uint64_t e = 0; e < 5; ++e) {
    trace.BeginEpoch(e);
    trace.RecordPhase(0, Phase::kArrive, 10 * (e + 1));
    trace.EndEpoch(100 * (e + 1));
  }
  EXPECT_EQ(trace.epochs(), 5u);
  ASSERT_EQ(trace.size(), 2u);
  // Oldest retained first: epochs 3 and 4.
  EXPECT_EQ(trace.Sample(0).epoch, 3u);
  EXPECT_EQ(trace.Sample(1).epoch, 4u);
  EXPECT_EQ(trace.Sample(1).Phase(0, Phase::kArrive), 50u);
  // Histograms and tallies still cover every epoch.
  EXPECT_EQ(trace.wall_hist().count(), 5u);
  EXPECT_EQ(trace.cumulative_phase_nanos(0, Phase::kArrive),
            10u + 20u + 30u + 40u + 50u);
}

TEST(EpochTraceTest, ImbalanceIsMaxOverMeanOfBarrieredWork) {
  EpochTrace trace(4, /*shards=*/2);
  trace.BeginEpoch(0);
  // Driver-only spans on lane 0 must NOT skew the gauge.
  trace.RecordPhase(0, Phase::kPlan, 1'000'000);
  trace.RecordPhase(0, Phase::kNotifyFlush, 1'000'000);
  trace.RecordPhase(0, Phase::kExpire, 100);
  trace.RecordPhase(0, Phase::kArrive, 200);  // shard 0 busy: 300
  trace.RecordPhase(1, Phase::kExpire, 300);
  trace.RecordPhase(1, Phase::kArrive, 600);  // shard 1 busy: 900
  trace.EndEpoch(2'000);
  // max = 900, mean = 600.
  EXPECT_DOUBLE_EQ(trace.last_imbalance(), 1.5);
  EXPECT_DOUBLE_EQ(trace.max_imbalance(), 1.5);

  trace.BeginEpoch(1);
  trace.RecordPhase(0, Phase::kExpire, 500);
  trace.RecordPhase(1, Phase::kExpire, 500);
  trace.EndEpoch(1'000);
  EXPECT_DOUBLE_EQ(trace.last_imbalance(), 1.0);
  EXPECT_DOUBLE_EQ(trace.max_imbalance(), 1.5);  // worst epoch sticks

  trace.BeginEpoch(2);
  trace.EndEpoch(10);  // no shard work at all
  EXPECT_DOUBLE_EQ(trace.last_imbalance(), 0.0);
}

TEST(EpochTraceTest, ResetForgetsEpochsButKeepsShape) {
  EpochTrace trace(2, 2);
  trace.BeginEpoch(0);
  trace.RecordPhase(1, Phase::kArrive, 7);
  trace.EndEpoch(10);
  trace.Reset();
  EXPECT_EQ(trace.epochs(), 0u);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.wall_hist().count(), 0u);
  EXPECT_EQ(trace.cumulative_phase_nanos(1, Phase::kArrive), 0u);
  EXPECT_DOUBLE_EQ(trace.last_imbalance(), 0.0);
  EXPECT_DOUBLE_EQ(trace.max_imbalance(), 0.0);
  EXPECT_EQ(trace.capacity(), 2u);
  EXPECT_EQ(trace.shards(), 2u);
  // Still usable after Reset.
  trace.BeginEpoch(5);
  trace.EndEpoch(10);
  EXPECT_EQ(trace.Sample(0).epoch, 5u);
}

TEST(EpochTraceTest, PhaseAndSubSpanNames) {
  EXPECT_STREQ(PhaseName(Phase::kPlan), "plan");
  EXPECT_STREQ(PhaseName(Phase::kExpire), "expire");
  EXPECT_STREQ(PhaseName(Phase::kArrive), "arrive");
  EXPECT_STREQ(PhaseName(Phase::kNotifyFlush), "notify_flush");
  EXPECT_STREQ(PhaseName(Phase::kBarrierWait), "barrier_wait");
  EXPECT_STREQ(PhaseName(Phase::kReshard), "reshard");
  EXPECT_STREQ(SubSpanName(SubSpan::kProbe), "probe");
  EXPECT_STREQ(SubSpanName(SubSpan::kRollUp), "rollup");
  EXPECT_STREQ(SubSpanName(SubSpan::kRefill), "refill");
}

}  // namespace
}  // namespace ita::obs
