#include "pipeline/ingest_pipeline.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ita {
namespace {

std::vector<RawDocument> SampleBatch() {
  std::vector<RawDocument> batch;
  batch.push_back({"The quick brown fox jumps over the lazy dog", 100});
  batch.push_back({"Streams of sensor data overwhelm the ingestion database", 200});
  batch.push_back({"Financial streams require low latency database writes", 300});
  batch.push_back({"", 400});  // analyzes to an empty composition
  batch.push_back({"fox fox fox database", 500});
  return batch;
}

// The core batch contract: AnalyzeBatch must produce exactly the documents
// AnalyzeDocument produces one at a time (same vocabulary interning order,
// same compositions, same corpus statistics).
TEST(IngestPipelineTest, BatchMatchesSequentialAnalysis) {
  for (const WeightingScheme scheme :
       {WeightingScheme::kCosine, WeightingScheme::kBm25,
        WeightingScheme::kRawTf}) {
    IngestPipelineOptions opts;
    opts.scheme = scheme;
    IngestPipeline sequential(opts);
    IngestPipeline batched(opts);

    const std::vector<RawDocument> batch = SampleBatch();
    std::vector<Document> want;
    for (const RawDocument& raw : batch) {
      want.push_back(sequential.AnalyzeDocument(raw.text, raw.arrival_time));
    }
    const std::vector<Document> got = batched.AnalyzeBatch(batch);

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].arrival_time, want[i].arrival_time);
      EXPECT_EQ(got[i].token_count, want[i].token_count);
      EXPECT_EQ(got[i].text, want[i].text);
      ASSERT_EQ(got[i].composition.size(), want[i].composition.size()) << i;
      for (std::size_t j = 0; j < got[i].composition.size(); ++j) {
        EXPECT_EQ(got[i].composition[j].term, want[i].composition[j].term);
        EXPECT_DOUBLE_EQ(got[i].composition[j].weight,
                         want[i].composition[j].weight);
      }
    }
    EXPECT_EQ(batched.corpus_stats().total_documents(),
              sequential.corpus_stats().total_documents());
    EXPECT_EQ(batched.vocabulary().size(), sequential.vocabulary().size());
  }
}

TEST(IngestPipelineTest, BatchSharesVocabularyWithQueries) {
  IngestPipeline pipeline;
  const std::vector<Document> docs =
      pipeline.AnalyzeBatch({{"nuclear proliferation report", 0}});
  const auto q = pipeline.AnalyzeQuery("nuclear report", 1);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_GT(ScoreDocument(docs[0].composition, q->terms), 0.0);
}

TEST(IngestPipelineTest, ScratchStateDoesNotLeakAcrossDocuments) {
  IngestPipeline pipeline;
  // Two very different documents back to back: the second must not inherit
  // term counts from the first.
  const std::vector<Document> docs = pipeline.AnalyzeBatch(
      {{"alpha beta gamma", 0}, {"delta epsilon", 0}});
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[0].composition.size(), 3u);
  EXPECT_EQ(docs[1].composition.size(), 2u);
}

TEST(IngestPipelineTest, EmptyBatch) {
  IngestPipeline pipeline;
  EXPECT_TRUE(pipeline.AnalyzeBatch({}).empty());
  EXPECT_EQ(pipeline.corpus_stats().total_documents(), 0u);
}

TEST(IngestPipelineTest, KeepTextOffDropsPayload) {
  IngestPipelineOptions opts;
  opts.keep_text = false;
  IngestPipeline pipeline(opts);
  const std::vector<Document> docs = pipeline.AnalyzeBatch({{"hello world", 0}});
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_TRUE(docs[0].text.empty());
}

TEST(IngestPipelineTest, StemmingAppliesAcrossBatch) {
  IngestPipelineOptions opts;
  opts.stem = true;
  IngestPipeline pipeline(opts);
  const std::vector<Document> docs = pipeline.AnalyzeBatch(
      {{"monitoring monitored", 0}, {"monitors", 0}});
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[0].composition.size(), 1u);
  // Same stem interned to the same term id.
  EXPECT_EQ(docs[1].composition[0].term, docs[0].composition[0].term);
}

}  // namespace
}  // namespace ita
