// Experiment D1 — the epoch-segmented document arena vs. the former
// per-shard deque-of-Document window store (DESIGN.md §8).
//
// BM_ArenaEpochCycle / BM_DequeStoreEpochCycle drive one steady-state
// window cycle per iteration — append a batch epoch, expire a batch,
// reclaim — over the WSJ-calibrated synthetic corpus. The deque baseline
// replicates what every shard used to pay: one Document copy (heap
// composition vector + heap text string) per document per shard, per-
// document push/pop. The arena pays one slab append for the whole epoch
// and a pointer-bump expiry. `document_bytes` counters report the
// steady-state window footprint of each layout; multiply the deque row by
// S for the old sharded engine's cost, while the arena figure is the
// engine's cost at ANY shard count.
//
// BM_ArenaGet measures the id → view path (segment-directory upper_bound
// + offset math) that ItaServer's threshold search rides.
//
// BM_ItaIngestWindowAxis is the stream harness's window axis: end-to-end
// batched ingest at growing window sizes N (the paper's Fig. 3b regime,
// now over the arena-backed store).
//
// To record a machine-readable baseline (bench/results/):
//   ./build/bench/bench_document_store --benchmark_format=json
//     --benchmark_min_time=0.5 > bench/results/document_store_baseline.json

#include <benchmark/benchmark.h>

#include <deque>
#include <vector>

#include "common/logging.h"
#include "harness/report.h"
#include "harness/stream_bench.h"
#include "stream/corpus.h"
#include "stream/document_arena.h"

namespace ita {
namespace bench {
namespace {

std::vector<Document> CorpusPool(std::size_t n) {
  SyntheticCorpusOptions copts;
  copts.dictionary_size = 50'000;
  copts.seed = 99;
  SyntheticCorpusGenerator corpus(copts);
  std::vector<Document> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pool.push_back(corpus.NextDocument());
  return pool;
}

/// One steady-state epoch cycle against the arena: plan, pop, append,
/// reclaim — the storage half of IngestBatch, isolated from indexing.
void BM_ArenaEpochCycle(benchmark::State& state) {
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  const std::size_t batch_size = static_cast<std::size_t>(state.range(1));
  const std::vector<Document> pool = CorpusPool(4'096);
  const WindowSpec spec = WindowSpec::CountBased(window);

  DocumentArena arena;
  Timestamp now = 0;
  std::size_t cursor = 0;
  std::vector<DocumentView> scratch;
  const auto run_epoch = [&] {
    std::vector<Document> batch;
    batch.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      Document doc = pool[cursor++ % pool.size()];
      doc.arrival_time = ++now;
      batch.push_back(std::move(doc));
    }
    const auto plan = arena.PlanEpoch(spec, now - batch_size, batch);
    ITA_CHECK(plan.ok());
    scratch.clear();
    arena.PopExpiredInto(plan->expiring, scratch);
    benchmark::DoNotOptimize(scratch.data());
    arena.AppendEpoch(std::move(batch), plan->first_survivor);
    arena.ReclaimExpired();
  };
  while (arena.size() < window) run_epoch();  // prefill to steady state

  for (auto _ : state) run_epoch();

  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
  state.counters["document_bytes"] =
      benchmark::Counter(static_cast<double>(arena.document_bytes()));
  state.counters["segments"] =
      benchmark::Counter(static_cast<double>(arena.segment_count()));
}
BENCHMARK(BM_ArenaEpochCycle)
    ->Args({1'000, 1})->Args({1'000, 64})->Args({1'000, 256})
    ->Args({10'000, 64})->Args({10'000, 1'024})
    ->Unit(benchmark::kMicrosecond);

/// The former layout: S deques of owning Documents — the sharded
/// engine's old broadcast, one Document copy (heap composition + heap
/// text) per document PER SHARD, per-document push/pop. The S = 1 rows
/// are the sequential server's former store; compare the S = 4 rows
/// against the (shard-count-independent) arena rows above to see what
/// the shared arena saves the engine.
void BM_DequeStoreEpochCycle(benchmark::State& state) {
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  const std::size_t batch_size = static_cast<std::size_t>(state.range(1));
  const std::size_t shards = static_cast<std::size_t>(state.range(2));
  const std::vector<Document> pool = CorpusPool(4'096);

  std::vector<std::deque<Document>> stores(shards);
  Timestamp now = 0;
  std::size_t cursor = 0;
  DocId next_id = 1;
  const auto run_epoch = [&] {
    for (std::size_t i = 0; i < batch_size; ++i) {
      const Document& src = pool[cursor++ % pool.size()];
      const Timestamp at = ++now;
      const DocId id = next_id++;
      for (std::deque<Document>& store : stores) {
        Document doc = src;  // the per-shard copy
        doc.arrival_time = at;
        doc.id = id;
        while (store.size() >= window) store.pop_front();
        store.push_back(std::move(doc));
      }
    }
    benchmark::DoNotOptimize(stores.data());
  };
  while (stores[0].size() < window) run_epoch();

  for (auto _ : state) run_epoch();

  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
  std::size_t bytes = 0;
  for (const std::deque<Document>& store : stores) {
    for (const Document& doc : store) {
      bytes += sizeof(Document) +
               doc.composition.capacity() * sizeof(TermWeight) +
               doc.text.capacity();
    }
  }
  state.counters["document_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
}
BENCHMARK(BM_DequeStoreEpochCycle)
    ->Args({1'000, 1, 1})->Args({1'000, 64, 1})->Args({1'000, 256, 1})
    ->Args({1'000, 64, 4})->Args({10'000, 64, 1})->Args({10'000, 1'024, 1})
    ->Args({10'000, 1'024, 4})
    ->Unit(benchmark::kMicrosecond);

/// id → view lookups over a steady window — the path ItaServer's
/// ExtendSearch/RollUp ride for every inverted-list entry they score.
void BM_ArenaGet(benchmark::State& state) {
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  const std::vector<Document> pool = CorpusPool(1'024);
  DocumentArena arena;
  std::size_t cursor = 0;
  Timestamp now = 0;
  while (arena.size() < window) {
    Document doc = pool[cursor++ % pool.size()];
    doc.arrival_time = ++now;
    arena.Append(std::move(doc));
  }
  DocId id = arena.next_id() - window;
  double sink = 0.0;
  for (auto _ : state) {
    const auto view = arena.Get(id);
    sink += static_cast<double>(view->composition.size());
    if (++id >= arena.next_id()) id = arena.next_id() - window;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArenaGet)->Arg(1'000)->Arg(100'000);

/// The stream harness's window axis: full batched ITA ingest (indexing,
/// probing, result maintenance — not just storage) at growing N.
void BM_ItaIngestWindowAxis(benchmark::State& state) {
  StreamWorkload workload;
  workload.window = static_cast<std::size_t>(state.range(0));
  workload.batch_size = 64;
  StreamBench& fixture = StreamBench::Cached(StreamBench::Strategy::kIta,
                                             workload);
  const ServerStats before = fixture.server().stats();
  for (auto _ : state) fixture.StepBatch();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.batch_size));
  state.counters["document_bytes"] = benchmark::Counter(
      static_cast<double>(fixture.server().stats().document_bytes));
  AttachCounters(state, before, fixture.server());
}
BENCHMARK(BM_ItaIngestWindowAxis)
    ->Arg(1'000)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace ita
