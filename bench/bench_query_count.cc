// Ablation A1 — scalability with the number of installed queries (one of
// the experiments the paper reports as "omitted due to lack of space").
//
// Setup: Figure 3 defaults (N = 1,000, n = 10, k = 10); query population
// swept over {100, 300, 1,000, 3,000, 10,000}. Naive's arrival cost is
// linear in the population (every query is scored on every arrival); ITA
// touches only the queries whose threshold trees flag the document.

#include <benchmark/benchmark.h>

#include "harness/report.h"
#include "harness/stream_bench.h"

namespace ita {
namespace bench {
namespace {

StreamWorkload QueryCountWorkload(std::size_t queries) {
  StreamWorkload w;
  w.window = 1'000;
  w.n_queries = queries;
  w.k = 10;
  w.terms_per_query = 10;
  return w;
}

void BM_QueryCount(benchmark::State& state, StreamBench::Strategy strategy) {
  StreamBench& fixture = StreamBench::Cached(
      strategy, QueryCountWorkload(static_cast<std::size_t>(state.range(0))));
  const ServerStats before = fixture.server().stats();
  for (auto _ : state) {
    fixture.Step();
  }
  AttachCounters(state, before, fixture.server());
}

void Ita(benchmark::State& state) {
  BM_QueryCount(state, StreamBench::Strategy::kIta);
}
void Naive(benchmark::State& state) {
  BM_QueryCount(state, StreamBench::Strategy::kNaive);
}

BENCHMARK(Ita)
    ->Name("BM_QueryCount/ita/q")
    ->Arg(100)->Arg(300)->Arg(1'000)->Arg(3'000)->Arg(10'000)
    ->MinTime(1.0)->Unit(benchmark::kMillisecond);

BENCHMARK(Naive)
    ->Name("BM_QueryCount/naive/q")
    ->Arg(100)->Arg(300)->Arg(1'000)->Arg(3'000)->Arg(10'000)
    ->MinTime(1.0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ita

BENCHMARK_MAIN();
