// Ablation A2 — sensitivity to the result size k (another experiment the
// paper reports as "omitted due to lack of space").
//
// Setup: Figure 3 defaults (N = 1,000, n = 10, 1,000 queries); k swept
// over {1, 10, 50, 100}. Larger k means deeper initial searches, lower
// local thresholds, and hence more maintained candidates for ITA; for
// Naive it mostly grows k_max and the refill targets.

#include <benchmark/benchmark.h>

#include "harness/report.h"
#include "harness/stream_bench.h"

namespace ita {
namespace bench {
namespace {

StreamWorkload KWorkload(int k) {
  StreamWorkload w;
  w.window = 1'000;
  w.n_queries = 1'000;
  w.k = k;
  w.terms_per_query = 10;
  return w;
}

void BM_ResultSizeK(benchmark::State& state, StreamBench::Strategy strategy) {
  StreamBench& fixture =
      StreamBench::Cached(strategy, KWorkload(static_cast<int>(state.range(0))));
  const ServerStats before = fixture.server().stats();
  for (auto _ : state) {
    fixture.Step();
  }
  AttachCounters(state, before, fixture.server());
}

void Ita(benchmark::State& state) {
  BM_ResultSizeK(state, StreamBench::Strategy::kIta);
}
void Naive(benchmark::State& state) {
  BM_ResultSizeK(state, StreamBench::Strategy::kNaive);
}

BENCHMARK(Ita)
    ->Name("BM_ResultSizeK/ita/k")
    ->Arg(1)->Arg(10)->Arg(50)->Arg(100)
    ->MinTime(1.0)->Unit(benchmark::kMillisecond);

BENCHMARK(Naive)
    ->Name("BM_ResultSizeK/naive/k")
    ->Arg(1)->Arg(10)->Arg(50)->Arg(100)
    ->MinTime(1.0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ita

BENCHMARK_MAIN();
