// Experiment P1 — persistence costs on the steady-state epoch path
// (DESIGN.md §13).
//
// Three questions, each with a direct acceptance criterion:
//
//   1. Log-append overhead: the write-ahead EpochLog records every
//      canonical SimEpoch before it is applied. BM_ZipfDriftEpoch times
//      the plain epoch critical path; BM_LogAppend times the append
//      alone on real epochs from the same preset (serialize + FNV-1a +
//      framed copy, with the snapshot-cadence truncation included). The
//      durability tax is the ratio of the two medians — the acceptance
//      bound is LogAppend_median / Epoch_median <= 0.05. (A two-arm A/B
//      on separate live fixtures cannot resolve a 5% bound: the epoch
//      path's own run-to-run spread exceeds it.)
//   2. Snapshot cost: BM_Checkpoint serializes the full engine state
//      (arena ring, query slab, threshold SoA, tier flags) at the epoch
//      barrier; BM_Restore rebuilds a fresh engine from those bytes.
//      Both report bytes/op, so cost scales are visible next to time.
//   3. Replay cost: BM_LogParse re-frames and checksums a log tail the
//      way recovery does (records/op reported) — the per-epoch price of
//      the log-tail half of "snapshot + tail replay".
//
// To record a machine-readable baseline (bench/results/):
//   ./build/bench/bench_persist --benchmark_format=json
//     --benchmark_repetitions=5 --benchmark_report_aggregates_only=true
//     > bench/results/persist_baseline.json

#include <benchmark/benchmark.h>

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"
#include "core/ita_server.h"
#include "exec/sharded_server.h"
#include "persist/epoch_log.h"
#include "persist/snapshot.h"
#include "sim/event_stream.h"
#include "sim/scenario.h"
#include "sim/sim_engine.h"

namespace ita {
namespace bench {
namespace {

/// Epochs between log truncations in the logged arm — the snapshot
/// cadence the recovery protocol pairs the log with (a real deployment
/// clears the tail whenever a snapshot lands).
constexpr std::size_t kLogTruncateEvery = 64;

/// Cached steady-state fixture over a catalog preset, with an optional
/// write-ahead log on the epoch path (the P1 A/B axis).
class PersistFixture {
 public:
  static PersistFixture& Cached(const std::string& preset, std::size_t queries,
                                std::size_t shards, bool logged) {
    static auto* cache =
        new std::map<std::string, std::unique_ptr<PersistFixture>>();
    const std::string key = preset + "/" + std::to_string(queries) + "/S" +
                            std::to_string(shards) + "/log" +
                            std::to_string(logged ? 1 : 0);
    auto it = cache->find(key);
    if (it == cache->end()) {
      it = cache->emplace(key, std::unique_ptr<PersistFixture>(new PersistFixture(
                                   preset, queries, shards, logged)))
               .first;
    }
    return *it->second;
  }

  /// One epoch through the production path; the logged arm appends the
  /// canonical record first, exactly as CrashRestoreRunner does.
  void StepEpoch() {
    auto epoch = stream_->NextEpoch();
    ITA_CHECK(epoch.has_value()) << "preset stream exhausted";
    if (logged_) {
      log_.Append(*epoch);
      if (++epochs_since_truncate_ >= kLogTruncateEvery) {
        log_.Clear();
        epochs_since_truncate_ = 0;
      }
    }
    const auto ids = sim::ApplyEpoch(*engine_, *std::move(epoch));
    ITA_CHECK(ids.ok()) << ids.status().ToString();
    benchmark::DoNotOptimize(ids);
  }

  /// Serializes the engine's full state into `out` (cleared first).
  void Checkpoint(std::string* out) {
    out->clear();
    if (exec::ShardedServer* sharded = engine_->sharded()) {
      const auto status = sharded->Checkpoint(out);
      ITA_CHECK(status.ok()) << status.ToString();
      return;
    }
    persist::SnapshotWriter writer(out);
    const auto status = engine_->sequential()->Checkpoint(writer);
    ITA_CHECK(status.ok()) << status.ToString();
  }

  const sim::ScenarioSpec& spec() const { return spec_; }
  bool sharded() const { return engine_->sharded() != nullptr; }
  std::size_t shard_count() const { return shards_; }

 private:
  PersistFixture(const std::string& preset, std::size_t queries,
                 std::size_t shards, bool logged)
      : logged_(logged), shards_(shards) {
    const sim::ScenarioFactory* factory = sim::FindScenario(preset);
    ITA_CHECK(factory != nullptr) << "unknown preset " << preset;
    spec_ = factory->make(/*seed=*/42);
    spec_.events = std::numeric_limits<std::size_t>::max() / 2;
    spec_.pool_documents = 4'096;
    if (queries > 0) spec_.queries.initial_queries = queries;

    if (shards > 0) {
      engine_ = sim::MakeShardedEngine(spec_.window, shards, /*threads=*/0);
    } else {
      engine_ = sim::MakeSequentialEngine(sim::SequentialStrategy::kIta,
                                          spec_.window);
    }
    stream_ = std::make_unique<sim::EventStreamGenerator>(spec_);
    // Prefill to steady state (full window, population installed) so
    // the measured snapshots describe a loaded engine, not a cold one.
    while (engine_->query_count() < spec_.queries.initial_queries ||
           stream_->events_generated() < spec_.window.count) {
      auto epoch = stream_->NextEpoch();
      ITA_CHECK(epoch.has_value()) << "stream exhausted during prefill";
      const auto ids = sim::ApplyEpoch(*engine_, *std::move(epoch));
      ITA_CHECK(ids.ok()) << ids.status().ToString();
    }
  }

  const bool logged_;
  const std::size_t shards_;
  sim::ScenarioSpec spec_;
  std::unique_ptr<sim::SimEngine> engine_;
  std::unique_ptr<sim::EventStreamGenerator> stream_;
  persist::EpochLog log_;
  std::size_t epochs_since_truncate_ = 0;
};

// P1.1a — the reference: the plain zipf_drift epoch critical path at a
// paper-sized population (the denominator of the durability-tax ratio).
void BM_ZipfDriftEpoch(benchmark::State& state) {
  PersistFixture& fixture = PersistFixture::Cached(
      "zipf_drift", /*queries=*/1'024, /*shards=*/0, /*logged=*/false);
  for (auto _ : state) fixture.StepEpoch();
}
BENCHMARK(BM_ZipfDriftEpoch)->Unit(benchmark::kMicrosecond);

// P1.1b — the numerator: one WAL append per iteration over a cycled
// pool of real zipf_drift epochs, truncation cadence included. Reports
// payload bytes/epoch so the cost scale is visible next to the time.
void BM_LogAppend(benchmark::State& state) {
  sim::ScenarioSpec spec = sim::FindScenario("zipf_drift")->make(/*seed=*/42);
  spec.events = std::numeric_limits<std::size_t>::max() / 2;
  spec.pool_documents = 4'096;
  spec.queries.initial_queries = 1'024;
  sim::EventStreamGenerator stream(spec);
  std::vector<sim::SimEpoch> pool;
  std::size_t payload_bytes = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    auto epoch = stream.NextEpoch();
    ITA_CHECK(epoch.has_value());
    std::string canonical;
    sim::SerializeEpoch(*epoch, &canonical);
    payload_bytes += canonical.size();
    pool.push_back(*std::move(epoch));
  }
  persist::EpochLog log;
  std::size_t at = 0;
  std::size_t since_truncate = 0;
  for (auto _ : state) {
    log.Append(pool[at]);
    if (++at == pool.size()) at = 0;
    if (++since_truncate >= kLogTruncateEvery) {
      log.Clear();
      since_truncate = 0;
    }
    benchmark::DoNotOptimize(log.records());
  }
  state.SetBytesProcessed(static_cast<int64_t>(
      state.iterations() * (payload_bytes / pool.size())));
  state.counters["payload_bytes/epoch"] =
      benchmark::Counter(static_cast<double>(payload_bytes / pool.size()));
}
BENCHMARK(BM_LogAppend)->Unit(benchmark::kMicrosecond);

// P1.2a — full-state snapshot at the epoch barrier. Sequential at a
// paper-sized population, and sharded S=4 (nested per-shard sections,
// placement map included).
void CheckpointBench(benchmark::State& state, std::size_t shards) {
  PersistFixture& fixture = PersistFixture::Cached(
      "zipf_drift", /*queries=*/1'024, shards, /*logged=*/false);
  std::string bytes;
  for (auto _ : state) {
    fixture.Checkpoint(&bytes);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
  state.counters["snapshot_bytes"] =
      benchmark::Counter(static_cast<double>(bytes.size()));
}
void BM_CheckpointSequential(benchmark::State& state) {
  CheckpointBench(state, /*shards=*/0);
}
void BM_CheckpointSharded4(benchmark::State& state) {
  CheckpointBench(state, /*shards=*/4);
}
BENCHMARK(BM_CheckpointSequential)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CheckpointSharded4)->Unit(benchmark::kMicrosecond);

// P1.2b — restore of the sequential snapshot into a fresh server: the
// container parse + arena/slab/threshold rebuild recovery pays once.
void BM_RestoreSequential(benchmark::State& state) {
  PersistFixture& fixture = PersistFixture::Cached(
      "zipf_drift", /*queries=*/1'024, /*shards=*/0, /*logged=*/false);
  std::string bytes;
  fixture.Checkpoint(&bytes);
  for (auto _ : state) {
    auto reader = persist::SnapshotReader::Open(bytes);
    ITA_CHECK(reader.ok()) << reader.status().ToString();
    ItaServer restored({.window = fixture.spec().window});
    const auto status = restored.Restore(*reader);
    ITA_CHECK(status.ok()) << status.ToString();
    benchmark::DoNotOptimize(restored.window_size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_RestoreSequential)->Unit(benchmark::kMicrosecond);

// P1.3 — log-tail parse, the recovery-side cost of the WAL: frame,
// checksum and decode a tail of representative epochs.
void BM_LogParse(benchmark::State& state) {
  const auto records = static_cast<std::size_t>(state.range(0));
  sim::ScenarioSpec spec = sim::FindScenario("zipf_drift")->make(/*seed=*/42);
  spec.events = std::numeric_limits<std::size_t>::max() / 2;
  spec.pool_documents = 1'024;
  sim::EventStreamGenerator stream(spec);
  persist::EpochLog log;
  for (std::size_t i = 0; i < records; ++i) {
    auto epoch = stream.NextEpoch();
    ITA_CHECK(epoch.has_value());
    log.Append(*epoch);
  }
  for (auto _ : state) {
    auto parsed =
        persist::ParseEpochLog(log.bytes(), persist::TornTailPolicy::kFail);
    ITA_CHECK(parsed.ok()) << parsed.status().ToString();
    benchmark::DoNotOptimize(parsed->size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log.bytes().size()));
  state.counters["records"] =
      benchmark::Counter(static_cast<double>(records));
}
BENCHMARK(BM_LogParse)->Arg(64)->Arg(512)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace ita
