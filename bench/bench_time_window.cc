// Ablation A5 — time-based versus count-based windows.
//
// Section IV: "We use a count-based window; the results for a time-based
// one are similar." This bench regenerates that claim: the Figure 3(a)
// setup (n = 10) with the count-based window replaced by a time-based one
// whose duration holds the same expected number of documents at the
// paper's 200 docs/s Poisson rate (1,000 docs ~ 5 seconds). Time windows
// expire 0..several documents per arrival instead of exactly one; mean
// event cost should match the count-based series for both methods.

#include <benchmark/benchmark.h>

#include "harness/report.h"
#include "harness/stream_bench.h"

namespace ita {
namespace bench {
namespace {

StreamWorkload TimeWorkload(bool time_based, std::size_t window) {
  StreamWorkload w;
  w.window = window;
  w.time_based = time_based;
  w.n_queries = 1'000;
  w.k = 10;
  w.terms_per_query = 10;
  return w;
}

void BM_Window(benchmark::State& state, StreamBench::Strategy strategy) {
  const bool time_based = state.range(0) == 1;
  StreamBench& fixture = StreamBench::Cached(
      strategy, TimeWorkload(time_based, static_cast<std::size_t>(state.range(1))));
  const ServerStats before = fixture.server().stats();
  for (auto _ : state) {
    fixture.Step();
  }
  AttachCounters(state, before, fixture.server());
  state.SetLabel(time_based ? "time-based" : "count-based");
}

void Ita(benchmark::State& state) { BM_Window(state, StreamBench::Strategy::kIta); }
void Naive(benchmark::State& state) { BM_Window(state, StreamBench::Strategy::kNaive); }

BENCHMARK(Ita)
    ->Name("BM_TimeWindow/ita/time_N")
    ->Args({0, 1'000})->Args({1, 1'000})->Args({0, 10'000})->Args({1, 10'000})
    ->MinTime(1.0)->Unit(benchmark::kMillisecond);

BENCHMARK(Naive)
    ->Name("BM_TimeWindow/naive/time_N")
    ->Args({0, 1'000})->Args({1, 1'000})
    ->MinTime(1.0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ita

BENCHMARK_MAIN();
