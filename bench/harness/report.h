// Benchmark reporting helpers: attach per-event operation counters to the
// Google Benchmark output so each experiment's table also exposes *why*
// the strategies differ (scores computed, rescans, roll-ups, probes).

#pragma once

#include <benchmark/benchmark.h>

#include "common/stats.h"
#include "core/server.h"

namespace ita {
namespace bench {

/// Snapshot server statistics before the timing loop, then call this after
/// it to publish per-event counters.
inline void AttachCounters(benchmark::State& state, const ServerStats& before,
                           const ContinuousSearchServer& server) {
  const ServerStats& after = server.stats();
  const double events = state.iterations() > 0
                            ? static_cast<double>(state.iterations())
                            : 1.0;
  state.counters["scores/ev"] = benchmark::Counter(
      static_cast<double>(after.scores_computed - before.scores_computed) / events);
  state.counters["probed/ev"] = benchmark::Counter(
      static_cast<double>(after.queries_probed - before.queries_probed) / events);
  state.counters["rescans/ev"] = benchmark::Counter(
      static_cast<double>(after.full_rescans - before.full_rescans) / events);
  state.counters["rollups/ev"] = benchmark::Counter(
      static_cast<double>(after.rollup_steps - before.rollup_steps) / events);
  state.counters["reads/ev"] = benchmark::Counter(
      static_cast<double>(after.list_entries_read - before.list_entries_read) /
      events);
}

}  // namespace bench
}  // namespace ita
