#include "harness/obs_report.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/histogram.h"
#include "obs/phase_recorder.h"

namespace ita {
namespace bench {

bool ObsTraceRequested() {
  const char* value = std::getenv("ITA_OBS_TRACE");
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

void ReportTraceCounters(benchmark::State& state,
                         const obs::EpochTrace* trace) {
  if (trace == nullptr || trace->epochs() == 0) return;

  const obs::Histogram& wall = trace->wall_hist();
  state.counters["wall_p50_ns"] =
      benchmark::Counter(wall.Quantile(0.50));
  state.counters["wall_p99_ns"] =
      benchmark::Counter(wall.Quantile(0.99));
  state.counters["wall_max_ns"] =
      benchmark::Counter(static_cast<double>(wall.max()));

  // The hardware-independent epoch-latency distribution: per-epoch max
  // shard busy time. On a core-pinned recorder this — not wall time —
  // is where load-aware rebalancing shows up (bench/results/README.md).
  const obs::Histogram& critical = trace->critical_hist();
  if (critical.count() > 0 && critical.max() > 0) {
    state.counters["critical_p50_ns"] =
        benchmark::Counter(critical.Quantile(0.50));
    state.counters["critical_p99_ns"] =
        benchmark::Counter(critical.Quantile(0.99));
    state.counters["critical_max_ns"] =
        benchmark::Counter(static_cast<double>(critical.max()));
  }

  for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
    const auto phase = static_cast<obs::Phase>(p);
    obs::Histogram merged;
    for (std::size_t s = 0; s < trace->shards(); ++s) {
      merged.Merge(trace->phase_hist(s, phase));
    }
    if (merged.count() == 0 || merged.max() == 0) continue;
    state.counters[std::string(obs::PhaseName(phase)) + "_p99_ns"] =
        benchmark::Counter(merged.Quantile(0.99));
  }
  if (trace->max_imbalance() > 0.0) {
    state.counters["imbalance_max"] =
        benchmark::Counter(trace->max_imbalance());
  }
}

}  // namespace bench
}  // namespace ita
