// Telemetry reporting for the benchmark binaries: when the fixture ran
// with epoch phase tracing enabled, attach the trace's latency
// percentiles as Google Benchmark counters so they land in the JSON
// output next to time/epoch (--benchmark_format=json, the format the
// recorded baselines under bench/results/ use).
//
// Tracing is opt-in per run via the environment (ITA_OBS_TRACE=1): the
// default bench configuration stays untraced and comparable with the
// recorded untraced baselines, and the traced run is the one the
// obs-overhead baseline (bench/results/obs_overhead_baseline.json)
// records against it.

#pragma once

#include <benchmark/benchmark.h>

#include "obs/epoch_trace.h"

namespace ita {
namespace bench {

/// True when the environment asks bench fixtures to trace
/// (ITA_OBS_TRACE set to anything but "" or "0"). Always false in an
/// ITA_OBS=OFF build, where EnableTracing would be a no-op anyway.
bool ObsTraceRequested();

/// Attaches the trace's percentiles to `state` as counters — epoch wall
/// p50/p99/max, per-epoch critical-path p50/p99/max (max shard busy
/// time: the epoch latency once every shard has its own core, the
/// metric load-aware rebalancing moves on a core-pinned recorder),
/// per-phase p99 (each phase's histograms merged across shards), and
/// the worst shard imbalance. No-op when `trace` is null or empty, so
/// callers can pass engine->trace() unconditionally.
void ReportTraceCounters(benchmark::State& state,
                         const obs::EpochTrace* trace);

}  // namespace bench
}  // namespace ita
