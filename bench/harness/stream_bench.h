// Shared benchmark fixture reproducing the paper's experimental setup
// (Section IV): a WSJ-calibrated synthetic document stream (see DESIGN.md
// §3), a population of random-dictionary-term queries with k = 10, a
// sliding window, and one of the competing servers. A benchmark iteration
// is one stream event: a document arrival plus the expirations it forces —
// exactly the paper's "processing time" metric.
//
// The stream comes from the scenario simulator (src/sim/): StreamWorkload
// compiles to a sim::ScenarioSpec in pooled mode (document bodies
// pre-synthesized and cycled with fresh Poisson arrival stamps, keeping
// steady-state generation out of the measured path) and the fixture pulls
// SimEpochs through the same sim::ApplyEpoch seam the soak tier drives —
// the bench harness no longer owns a private stream generator (DESIGN.md
// §9).
//
// Fixtures are cached per configuration: Google Benchmark re-enters the
// benchmark function several times (estimation + measurement), and window
// prefill at N = 10^5 is far too expensive to repeat. A cached fixture
// simply continues the stream — the steady state the paper measures.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/ita_server.h"
#include "core/naive_server.h"
#include "core/server.h"
#include "exec/sharded_server.h"
#include "sim/event_stream.h"
#include "sim/sim_engine.h"

namespace ita {
namespace bench {

struct StreamWorkload {
  // Corpus (defaults mirror WSJ's dictionary size and Zipfian skew; the
  // document-length median is reduced to ~100 distinct terms to keep the
  // N = 10^5 window within laptop memory — see EXPERIMENTS.md).
  std::size_t dictionary = 181'978;
  double zipf_exponent = 1.0;
  double doc_length_mu = 4.6;
  double doc_length_sigma = 0.5;
  std::size_t doc_length_min = 16;
  std::size_t doc_length_max = 1'000;
  std::size_t doc_pool = 4'096;  ///< pre-generated documents, cycled

  // Query population (paper: 1,000 queries, k = 10, random terms).
  std::size_t n_queries = 1'000;
  std::size_t terms_per_query = 10;
  int k = 10;
  /// 0 = the paper's uniform draw over the whole dictionary; otherwise
  /// restrict query terms to the `query_max_term` most frequent terms
  /// ("hot" queries — see sim::QueryProfile::hot_max_term).
  std::size_t query_max_term = 0;
  /// Query churn axis: per StepBatch() epoch, unregister this many of the
  /// oldest live queries and register as many fresh ones before the
  /// ingest (a sim churn storm every epoch) — the registration/
  /// unregistration storm workload that the slot-map query-state slab and
  /// flat threshold trees are built for. 0 = static population (the
  /// paper's setting).
  std::size_t churn_per_epoch = 0;

  // Stream & window (paper: Poisson at 200 docs/s, count-based window).
  double arrival_rate = 200.0;
  std::size_t window = 1'000;
  /// Documents per ingest epoch: 1 streams through the per-event Ingest
  /// path; > 1 groups arrivals into IngestBatch epochs (the batched ingest
  /// pipeline). StepBatch() consumes `batch_size` documents per call.
  std::size_t batch_size = 1;
  /// When true, use a time-based window sized to hold ~`window` documents
  /// at the configured arrival rate (duration = window / rate), instead of
  /// a count-based one — Section IV notes the results are similar.
  bool time_based = false;

  std::uint64_t seed = 42;

  /// Shard count for Strategy::kSharded (the sharded parallel engine);
  /// ignored by the sequential strategies.
  std::size_t shards = 1;
  /// Scheduler worker threads for Strategy::kSharded; 0 = one per shard
  /// (capped at hardware concurrency).
  std::size_t threads = 0;

  // Strategy tuning.
  bool rollup = true;                      // ITA
  double kmax_factor = 2.0;                // Naive
  bool skip_complete_rescans = false;      // Naive

  /// The sim scenario this workload compiles to (pooled mode, Poisson
  /// arrivals, delayed query install for the empty-window prefill).
  sim::ScenarioSpec ToScenarioSpec() const;

  /// Stable identity for fixture caching.
  std::string CacheKey(const std::string& strategy) const;
};

class StreamBench {
 public:
  enum class Strategy { kIta, kNaive, kSharded };

  /// Returns the cached fixture for this configuration, building it (and
  /// paying corpus generation, window prefill and query registration) on
  /// first use.
  static StreamBench& Cached(Strategy strategy, const StreamWorkload& workload);

  /// Processes one stream event through the per-event Ingest path: the
  /// next document arrival (and the expirations it forces). This is the
  /// timed region. Requires workload().batch_size == 1.
  void Step();

  /// Processes one ingest epoch: the next `workload().batch_size`
  /// arrivals as a single IngestBatch (plus the epoch's query churn, when
  /// the churn axis is on). The timed region for the batched-pipeline
  /// experiments.
  void StepBatch();

  /// The sequential server behind kIta/kNaive. CHECK-fails for a
  /// kSharded fixture — use sharded() there.
  ContinuousSearchServer& server() {
    ITA_CHECK(engine_->sequential() != nullptr)
        << "kSharded fixtures have no sequential server; use sharded()";
    return *engine_->sequential();
  }
  /// The sharded engine behind Strategy::kSharded (null otherwise) —
  /// exposes per-shard busy time for the critical-path counters.
  exec::ShardedServer* sharded() { return engine_->sharded(); }
  const StreamWorkload& workload() const { return workload_; }

  /// The fixture's epoch trace — non-null only when the fixture was
  /// built under ITA_OBS_TRACE=1 (harness/obs_report.h) in an
  /// ITA_OBS=ON build. Pass straight to ReportTraceCounters.
  const obs::EpochTrace* trace() const { return engine_->trace(); }

 private:
  StreamBench(Strategy strategy, const StreamWorkload& workload);

  StreamWorkload workload_;
  std::unique_ptr<sim::SimEngine> engine_;
  std::unique_ptr<sim::EventStreamGenerator> stream_;
};

}  // namespace bench
}  // namespace ita
