#include "harness/stream_bench.h"

#include <benchmark/benchmark.h>

#include <sstream>

#include "common/logging.h"

namespace ita {
namespace bench {

std::string StreamWorkload::CacheKey(const std::string& strategy) const {
  std::ostringstream os;
  os << strategy << "/dict:" << dictionary << "/zipf:" << zipf_exponent
     << "/mu:" << doc_length_mu << "/pool:" << doc_pool << "/q:" << n_queries
     << "/n:" << terms_per_query << "/k:" << k << "/N:" << window
     << "/time:" << time_based << "/hot:" << query_max_term
     << "/batch:" << batch_size << "/churn:" << churn_per_epoch
     << "/seed:" << seed
     << "/shards:" << shards << "/threads:" << threads
     << "/rollup:" << rollup << "/kmax:" << kmax_factor
     << "/skip:" << skip_complete_rescans;
  return os.str();
}

namespace {

const char* StrategyName(StreamBench::Strategy strategy) {
  switch (strategy) {
    case StreamBench::Strategy::kIta: return "ita";
    case StreamBench::Strategy::kNaive: return "naive";
    case StreamBench::Strategy::kSharded: return "sharded";
  }
  return "?";
}

}  // namespace

StreamBench& StreamBench::Cached(Strategy strategy, const StreamWorkload& workload) {
  static std::map<std::string, std::unique_ptr<StreamBench>>* cache =
      new std::map<std::string, std::unique_ptr<StreamBench>>();
  const std::string key = workload.CacheKey(StrategyName(strategy));
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, std::unique_ptr<StreamBench>(
                                 new StreamBench(strategy, workload)))
             .first;
  }
  return *it->second;
}

StreamBench::StreamBench(Strategy strategy, const StreamWorkload& workload)
    : workload_(workload), arrivals_(workload.arrival_rate, workload.seed ^ 0x9E37) {
  ServerOptions options;
  if (workload.time_based) {
    const double seconds =
        static_cast<double>(workload.window) / workload.arrival_rate;
    options.window = WindowSpec::TimeBased(SecondsToMicros(seconds));
  } else {
    options.window = WindowSpec::CountBased(workload.window);
  }
  if (strategy == Strategy::kIta) {
    ItaTuning tuning;
    tuning.enable_rollup = workload.rollup;
    server_ = std::make_unique<ItaServer>(options, tuning);
  } else if (strategy == Strategy::kSharded) {
    exec::ShardedServerOptions sharded_options;
    sharded_options.window = options.window;
    sharded_options.shards = workload.shards;
    sharded_options.threads = workload.threads;
    sharded_options.tuning.enable_rollup = workload.rollup;
    sharded_ = std::make_unique<exec::ShardedServer>(sharded_options);
  } else {
    NaiveTuning tuning;
    tuning.kmax_factor = workload.kmax_factor;
    tuning.skip_complete_rescans = workload.skip_complete_rescans;
    server_ = std::make_unique<NaiveServer>(options, tuning);
  }

  // Pre-generate the document pool (analysis happens upstream of the
  // server in the paper's model, so it is excluded from Step()).
  SyntheticCorpusOptions copts;
  copts.dictionary_size = workload.dictionary;
  copts.zipf_exponent = workload.zipf_exponent;
  copts.length_lognormal_mu = workload.doc_length_mu;
  copts.length_lognormal_sigma = workload.doc_length_sigma;
  copts.min_length = workload.doc_length_min;
  copts.max_length = workload.doc_length_max;
  copts.seed = workload.seed;
  SyntheticCorpusGenerator corpus(copts);
  pool_.reserve(workload.doc_pool);
  for (std::size_t i = 0; i < workload.doc_pool; ++i) {
    pool_.push_back(corpus.NextDocument());
  }

  // Fill the window before installing queries (installation order does not
  // change steady-state behaviour, and an empty-server prefill keeps
  // N = 10^5 setups affordable). The sharded engine prefils in epochs so
  // the broadcast overhead is paid per batch, not per document.
  if (sharded_ != nullptr) {
    constexpr std::size_t kPrefillEpoch = 512;
    for (std::size_t filled = 0; filled < workload.window;) {
      const std::size_t n = std::min(kPrefillEpoch, workload.window - filled);
      std::vector<Document> batch;
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        Document doc = pool_[cursor_++ % pool_.size()];
        doc.arrival_time = arrivals_.Next();
        batch.push_back(std::move(doc));
      }
      ITA_CHECK(sharded_->IngestBatch(std::move(batch)).ok());
      filled += n;
    }
  } else {
    for (std::size_t i = 0; i < workload.window; ++i) {
      Document doc = pool_[cursor_++ % pool_.size()];
      doc.arrival_time = arrivals_.Next();
      ITA_CHECK(server_->Ingest(std::move(doc)).ok());
    }
  }

  QueryWorkloadOptions qopts;
  qopts.terms_per_query = workload.terms_per_query;
  qopts.k = workload.k;
  qopts.seed = workload.seed + 0xABCD;
  qopts.max_term = workload.query_max_term;
  query_gen_ = std::make_unique<QueryWorkloadGenerator>(workload.dictionary, qopts);
  for (std::size_t i = 0; i < workload.n_queries; ++i) {
    StatusOr<QueryId> id = sharded_ != nullptr
                               ? sharded_->RegisterQuery(query_gen_->NextQuery())
                               : server_->RegisterQuery(query_gen_->NextQuery());
    ITA_CHECK(id.ok());
    live_queries_.push_back(*id);
  }
  if (sharded_ != nullptr) {
    sharded_->ResetStats();
  } else {
    server_->ResetStats();
  }
}

void StreamBench::Step() {
  Document doc = pool_[cursor_++ % pool_.size()];
  doc.arrival_time = arrivals_.Next();
  if (sharded_ != nullptr) {
    const auto id = sharded_->Ingest(std::move(doc));
    ITA_DCHECK(id.ok());
    benchmark::DoNotOptimize(id);
    return;
  }
  const auto id = server_->Ingest(std::move(doc));
  ITA_DCHECK(id.ok());
  benchmark::DoNotOptimize(id);
}

void StreamBench::StepBatch() {
  // Query churn axis: rotate the oldest live queries out and fresh ones
  // in before the epoch's ingest (part of the timed region — churn cost
  // is exactly what the axis measures). The cursor walks the whole
  // population FIFO across epochs, so every query eventually churns.
  if (workload_.churn_per_epoch > 0 && !live_queries_.empty()) {
    for (std::size_t c = 0; c < workload_.churn_per_epoch; ++c) {
      QueryId& slot = live_queries_[churn_cursor_];
      churn_cursor_ = (churn_cursor_ + 1) % live_queries_.size();
      if (sharded_ != nullptr) {
        ITA_CHECK(sharded_->UnregisterQuery(slot).ok());
        const auto fresh = sharded_->RegisterQuery(query_gen_->NextQuery());
        ITA_CHECK(fresh.ok());
        slot = *fresh;
      } else {
        ITA_CHECK(server_->UnregisterQuery(slot).ok());
        const auto fresh = server_->RegisterQuery(query_gen_->NextQuery());
        ITA_CHECK(fresh.ok());
        slot = *fresh;
      }
    }
  }

  std::vector<Document> batch;
  batch.reserve(workload_.batch_size);
  for (std::size_t i = 0; i < workload_.batch_size; ++i) {
    Document doc = pool_[cursor_++ % pool_.size()];
    doc.arrival_time = arrivals_.Next();
    batch.push_back(std::move(doc));
  }
  if (sharded_ != nullptr) {
    const auto ids = sharded_->IngestBatch(std::move(batch));
    ITA_DCHECK(ids.ok());
    benchmark::DoNotOptimize(ids);
    return;
  }
  const auto ids = server_->IngestBatch(std::move(batch));
  ITA_DCHECK(ids.ok());
  benchmark::DoNotOptimize(ids);
}

}  // namespace bench
}  // namespace ita
