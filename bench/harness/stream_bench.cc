#include "harness/stream_bench.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/clock.h"
#include "common/logging.h"
#include "harness/obs_report.h"

namespace ita {
namespace bench {

sim::ScenarioSpec StreamWorkload::ToScenarioSpec() const {
  sim::ScenarioSpec spec;
  spec.name = "stream_bench";
  spec.seed = seed;
  // The fixture streams for as long as Google Benchmark keeps iterating.
  spec.events = std::numeric_limits<std::size_t>::max() / 2;
  spec.batch_size = batch_size;
  spec.pool_documents = doc_pool;
  if (time_based) {
    const double seconds = static_cast<double>(window) / arrival_rate;
    spec.window = WindowSpec::TimeBased(SecondsToMicros(seconds));
  } else {
    spec.window = WindowSpec::CountBased(window);
  }

  spec.arrivals.shape = sim::ArrivalShape::kPoisson;
  spec.arrivals.rate_per_second = arrival_rate;

  spec.vocabulary.dictionary_size = dictionary;
  spec.vocabulary.zipf_exponent = zipf_exponent;
  spec.vocabulary.length_mu = doc_length_mu;
  spec.vocabulary.length_sigma = doc_length_sigma;
  spec.vocabulary.min_length = doc_length_min;
  spec.vocabulary.max_length = doc_length_max;

  spec.queries.initial_queries = n_queries;
  spec.queries.terms_per_query = terms_per_query;
  spec.queries.k = k;
  spec.queries.hot_max_term = query_max_term;
  // Fill the window before installing queries (installation order does
  // not change steady-state behaviour, and an empty-server prefill keeps
  // N = 10^5 setups affordable).
  spec.queries.install_after_events = window;
  if (churn_per_epoch > 0 && n_queries > 0) {
    // The churn axis is a storm every epoch: rotate the oldest live
    // queries out and fresh ones in before each ingest. A storm cannot
    // retire more queries than are live, so the axis saturates at the
    // whole population per epoch (the old hand-rolled loop re-churned
    // fresh registrations past that point — a regime indistinguishable
    // from full-population churn for what the axis measures).
    spec.queries.storm_period_epochs = 1;
    spec.queries.storm_size = std::min(churn_per_epoch, n_queries);
  }
  return spec;
}

std::string StreamWorkload::CacheKey(const std::string& strategy) const {
  std::ostringstream os;
  os << strategy << "/dict:" << dictionary << "/zipf:" << zipf_exponent
     << "/mu:" << doc_length_mu << "/pool:" << doc_pool << "/q:" << n_queries
     << "/n:" << terms_per_query << "/k:" << k << "/N:" << window
     << "/time:" << time_based << "/hot:" << query_max_term
     << "/batch:" << batch_size << "/churn:" << churn_per_epoch
     << "/seed:" << seed
     << "/shards:" << shards << "/threads:" << threads
     << "/rollup:" << rollup << "/kmax:" << kmax_factor
     << "/skip:" << skip_complete_rescans;
  return os.str();
}

namespace {

const char* StrategyName(StreamBench::Strategy strategy) {
  switch (strategy) {
    case StreamBench::Strategy::kIta: return "ita";
    case StreamBench::Strategy::kNaive: return "naive";
    case StreamBench::Strategy::kSharded: return "sharded";
  }
  return "?";
}

}  // namespace

StreamBench& StreamBench::Cached(Strategy strategy, const StreamWorkload& workload) {
  static std::map<std::string, std::unique_ptr<StreamBench>>* cache =
      new std::map<std::string, std::unique_ptr<StreamBench>>();
  const std::string key = workload.CacheKey(StrategyName(strategy));
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, std::unique_ptr<StreamBench>(
                                 new StreamBench(strategy, workload)))
             .first;
  }
  return *it->second;
}

StreamBench::StreamBench(Strategy strategy, const StreamWorkload& workload)
    : workload_(workload) {
  const sim::ScenarioSpec spec = workload.ToScenarioSpec();
  if (strategy == Strategy::kIta) {
    ItaTuning tuning;
    tuning.enable_rollup = workload.rollup;
    engine_ = sim::MakeSequentialEngine(sim::SequentialStrategy::kIta,
                                        spec.window, tuning);
  } else if (strategy == Strategy::kSharded) {
    ItaTuning tuning;
    tuning.enable_rollup = workload.rollup;
    engine_ = sim::MakeShardedEngine(spec.window, workload.shards,
                                     workload.threads, tuning);
  } else {
    NaiveTuning tuning;
    tuning.kmax_factor = workload.kmax_factor;
    tuning.skip_complete_rescans = workload.skip_complete_rescans;
    engine_ = sim::MakeSequentialEngine(sim::SequentialStrategy::kNaive,
                                        spec.window, ItaTuning{}, tuning);
  }
  if (ObsTraceRequested()) {
    engine_->EnableTracing(/*capacity=*/1'024);
    engine_->EnableHotTermTracking();
  }

  // Pool synthesis happens here, inside the generator (analysis is
  // upstream of the server in the paper's model, so it stays outside the
  // timed Step/StepBatch regions — pooled documents are only re-stamped).
  stream_ = std::make_unique<sim::EventStreamGenerator>(spec);

  // Prefill: stream epochs until the window has filled AND the delayed
  // initial query population has installed (install_after_events =
  // window; with n_queries == 0 the install epoch registers nothing, so
  // the query_count test is vacuously satisfied), then measure from a
  // warm steady state.
  while (engine_->query_count() < workload.n_queries ||
         stream_->events_generated() < workload.window) {
    auto epoch = stream_->NextEpoch();
    ITA_CHECK(epoch.has_value()) << "stream exhausted during prefill";
    const auto ids = sim::ApplyEpoch(*engine_, *std::move(epoch));
    ITA_CHECK(ids.ok()) << ids.status().ToString();
  }
  engine_->ResetStats();
}

// The guards below are hard CHECKs, not DCHECKs: a failed epoch (engine
// error, id-prediction mismatch, storm unregister failure) means the
// measured population silently diverged from the intended workload —
// wrong published numbers are worse than an abort, and the branch cost
// is noise next to an ingest.

void StreamBench::Step() {
  ITA_CHECK(workload_.batch_size == 1)
      << "Step() is the per-event path; use StepBatch() for epochs";
  auto epoch = stream_->NextEpoch();
  ITA_CHECK(epoch.has_value());
  const auto ids = sim::ApplyEpoch(*engine_, *std::move(epoch),
                                   sim::IngestMode::kPerEvent);
  ITA_CHECK(ids.ok()) << ids.status().ToString();
  benchmark::DoNotOptimize(ids);
}

void StreamBench::StepBatch() {
  auto epoch = stream_->NextEpoch();
  ITA_CHECK(epoch.has_value());
  const auto ids = sim::ApplyEpoch(*engine_, *std::move(epoch),
                                   sim::IngestMode::kBatch);
  ITA_CHECK(ids.ok()) << ids.status().ToString();
  benchmark::DoNotOptimize(ids);
}

}  // namespace bench
}  // namespace ita
