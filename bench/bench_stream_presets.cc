// Experiment S1 — scenario-preset epoch critical path through the
// sequential ITA engine (DESIGN.md §9, §10).
//
// Drives the sim catalog's named presets end-to-end exactly the way the
// soak tier does — EventStreamGenerator::NextEpoch() feeding
// sim::ApplyEpoch — so the measured region is one full epoch of the
// production path: query churn, IngestBatch (arrive + expire collection,
// scoring, roll-up/refill, bulk retheta) and window maintenance. For the
// sequential engine an epoch's wall time IS its critical path.
//
// Two presets bracket the pruning regimes the block-max/min-theta
// metadata targets: `hot_term_flood` concentrates traffic on a handful
// of term states (deep impact runs against dense trees — the WAND-style
// skip's best case) and `zipf_drift` keeps rotating the hot vocabulary
// (cold trees with high min_theta behind stale postings). The `queries`
// axis scales the registered population from the stock preset (16) into
// the >= 1k regime where threshold-tree traffic dominates.
//
// Attached counters turn the prune into something observable:
// probe_steps/doc and list_reads/doc are the paper's work metrics
// (ServerStats), and their values must be IDENTICAL across kernel
// variants and gating (a skipped probe is one that would have visited
// zero entries) — only time/epoch may move.
//
// To record a machine-readable baseline (bench/results/):
//   ./build/bench/bench_stream_presets --benchmark_format=json
//     --benchmark_repetitions=5 --benchmark_report_aggregates_only=true
//     > bench/results/stream_presets_baseline.json

#include <benchmark/benchmark.h>

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "common/logging.h"
#include "common/stats.h"
#include "harness/obs_report.h"
#include "sim/event_stream.h"
#include "sim/scenario.h"
#include "sim/sim_engine.h"

namespace ita {
namespace bench {
namespace {

/// Cached preset fixture (Google Benchmark re-enters the function for
/// estimation + measurement; prefill must not repeat): the preset spec
/// with a benchmark-sized query population, pooled document synthesis,
/// and an unbounded stream, applied through the soak tier's seam.
class PresetFixture {
 public:
  static PresetFixture& Cached(const std::string& preset,
                               std::size_t queries) {
    static auto* cache = new std::map<std::string, std::unique_ptr<PresetFixture>>();
    const std::string key = preset + "/" + std::to_string(queries);
    auto it = cache->find(key);
    if (it == cache->end()) {
      it = cache->emplace(key, std::unique_ptr<PresetFixture>(
                                   new PresetFixture(preset, queries)))
               .first;
    }
    return *it->second;
  }

  /// One epoch through the production path — the timed region.
  void StepEpoch() {
    auto epoch = stream_->NextEpoch();
    ITA_CHECK(epoch.has_value()) << "preset stream exhausted";
    const auto ids = sim::ApplyEpoch(*engine_, *std::move(epoch));
    ITA_CHECK(ids.ok()) << ids.status().ToString();
    benchmark::DoNotOptimize(ids);
  }

  ServerStats stats() const { return engine_->stats(); }

  /// The engine's trace — non-null only when the fixture was built
  /// under ITA_OBS_TRACE=1 in an ITA_OBS=ON build.
  const obs::EpochTrace* trace() const { return engine_->trace(); }

 private:
  PresetFixture(const std::string& preset, std::size_t queries) {
    const sim::ScenarioFactory* factory = sim::FindScenario(preset);
    ITA_CHECK(factory != nullptr) << "unknown preset " << preset;
    sim::ScenarioSpec spec = factory->make(/*seed=*/42);
    // Stream for as long as the benchmark keeps iterating, with pooled
    // bodies so synthesis stays off the measured path (drift and flood
    // composition are baked into the pool deterministically).
    spec.events = std::numeric_limits<std::size_t>::max() / 2;
    spec.pool_documents = 4'096;
    if (queries > 0) spec.queries.initial_queries = queries;

    engine_ = sim::MakeSequentialEngine(sim::SequentialStrategy::kIta,
                                        spec.window);
    if (ObsTraceRequested()) {
      engine_->EnableTracing(/*capacity=*/1'024);
      engine_->EnableHotTermTracking();
    }
    stream_ = std::make_unique<sim::EventStreamGenerator>(spec);

    // Prefill to steady state: full window, whole population installed.
    while (engine_->query_count() < spec.queries.initial_queries ||
           stream_->events_generated() < spec.window.count) {
      auto epoch = stream_->NextEpoch();
      ITA_CHECK(epoch.has_value()) << "stream exhausted during prefill";
      const auto ids = sim::ApplyEpoch(*engine_, *std::move(epoch));
      ITA_CHECK(ids.ok()) << ids.status().ToString();
    }
    engine_->ResetStats();
  }

  std::unique_ptr<sim::SimEngine> engine_;
  std::unique_ptr<sim::EventStreamGenerator> stream_;
};

void PresetEpochBench(benchmark::State& state, const std::string& preset) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  PresetFixture& fixture = PresetFixture::Cached(preset, queries);
  const ServerStats before = fixture.stats();
  for (auto _ : state) fixture.StepEpoch();
  const ServerStats after = fixture.stats();
  const auto docs = static_cast<double>(after.documents_ingested -
                                        before.documents_ingested);
  state.SetItemsProcessed(static_cast<int64_t>(docs));
  if (docs > 0) {
    // Work metrics, invariant across kernel variants and probe gating.
    state.counters["probe_steps/doc"] = benchmark::Counter(
        static_cast<double>(after.threshold_probe_steps -
                            before.threshold_probe_steps) /
        docs);
    state.counters["list_reads/doc"] = benchmark::Counter(
        static_cast<double>(after.list_entries_read -
                            before.list_entries_read) /
        docs);
  }
  // Phase-latency percentiles, present only in ITA_OBS_TRACE=1 runs.
  ReportTraceCounters(state, fixture.trace());
}

void BM_ZipfDriftEpoch(benchmark::State& state) {
  PresetEpochBench(state, "zipf_drift");
}
void BM_HotTermFloodEpoch(benchmark::State& state) {
  PresetEpochBench(state, "hot_term_flood");
}
// Arg = registered query population (0 = the stock preset's 16).
BENCHMARK(BM_ZipfDriftEpoch)
    ->Arg(0)->Arg(1'024)->Arg(10'240)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HotTermFloodEpoch)
    ->Arg(0)->Arg(1'024)->Arg(10'240)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace ita
