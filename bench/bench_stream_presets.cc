// Experiment S1 — scenario-preset epoch critical path through the
// sequential ITA engine (DESIGN.md §9, §10).
//
// Drives the sim catalog's named presets end-to-end exactly the way the
// soak tier does — EventStreamGenerator::NextEpoch() feeding
// sim::ApplyEpoch — so the measured region is one full epoch of the
// production path: query churn, IngestBatch (arrive + expire collection,
// scoring, roll-up/refill, bulk retheta) and window maintenance. For the
// sequential engine an epoch's wall time IS its critical path.
//
// Two presets bracket the pruning regimes the block-max/min-theta
// metadata targets: `hot_term_flood` concentrates traffic on a handful
// of term states (deep impact runs against dense trees — the WAND-style
// skip's best case) and `zipf_drift` keeps rotating the hot vocabulary
// (cold trees with high min_theta behind stale postings). The `queries`
// axis scales the registered population from the stock preset (16) into
// the >= 1k regime where threshold-tree traffic dominates.
//
// Attached counters turn the prune into something observable:
// probe_steps/doc and list_reads/doc are the paper's work metrics
// (ServerStats), and their values must be IDENTICAL across kernel
// variants and gating (a skipped probe is one that would have visited
// zero entries) — only time/epoch may move.
//
// To record a machine-readable baseline (bench/results/):
//   ./build/bench/bench_stream_presets --benchmark_format=json
//     --benchmark_repetitions=5 --benchmark_report_aggregates_only=true
//     > bench/results/stream_presets_baseline.json

#include <benchmark/benchmark.h>

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/stats.h"
#include "exec/sharded_server.h"
#include "harness/obs_report.h"
#include "sim/event_stream.h"
#include "sim/scenario.h"
#include "sim/sim_engine.h"

namespace ita {
namespace bench {
namespace {

/// Cached preset fixture (Google Benchmark re-enters the function for
/// estimation + measurement; prefill must not repeat): the preset spec
/// with a benchmark-sized query population, pooled document synthesis,
/// and an unbounded stream, applied through the soak tier's seam.
class PresetFixture {
 public:
  /// `shards` = 0 drives the sequential ItaServer; >= 1 drives the
  /// sharded engine at that S, with the load-aware rebalancer switched
  /// by `rebalance` (the adaptive-placement A/B axis).
  static PresetFixture& Cached(const std::string& preset, std::size_t queries,
                               std::size_t shards = 0, bool rebalance = false) {
    static auto* cache = new std::map<std::string, std::unique_ptr<PresetFixture>>();
    const std::string key = preset + "/" + std::to_string(queries) + "/S" +
                            std::to_string(shards) + "/rb" +
                            std::to_string(rebalance ? 1 : 0);
    auto it = cache->find(key);
    if (it == cache->end()) {
      it = cache->emplace(key, std::unique_ptr<PresetFixture>(new PresetFixture(
                                   preset, queries, shards, rebalance)))
               .first;
    }
    return *it->second;
  }

  /// One epoch through the production path — the timed region.
  void StepEpoch() {
    auto epoch = stream_->NextEpoch();
    ITA_CHECK(epoch.has_value()) << "preset stream exhausted";
    const auto ids = sim::ApplyEpoch(*engine_, *std::move(epoch));
    ITA_CHECK(ids.ok()) << ids.status().ToString();
    benchmark::DoNotOptimize(ids);
  }

  ServerStats stats() const { return engine_->stats(); }

  /// The engine's trace — non-null only when the fixture was built
  /// under ITA_OBS_TRACE=1 in an ITA_OBS=ON build.
  const obs::EpochTrace* trace() const { return engine_->trace(); }

  /// Queries the rebalancer has moved (0 for sequential fixtures).
  std::uint64_t queries_migrated() const {
    const exec::ShardedServer* sharded = std::as_const(*engine_).sharded();
    return sharded != nullptr ? sharded->rebalance_stats().queries_migrated
                              : 0;
  }

  /// Queries the rebalancer moved while the fixture prefilled to steady
  /// state — by the time the timed region starts, an enabled rebalancer
  /// has usually already converged the placement, so this (not the
  /// in-measurement delta) is the evidence it acted.
  std::uint64_t prefill_migrations() const { return prefill_migrations_; }

 private:
  PresetFixture(const std::string& preset, std::size_t queries,
                std::size_t shards, bool rebalance) {
    const sim::ScenarioFactory* factory = sim::FindScenario(preset);
    ITA_CHECK(factory != nullptr) << "unknown preset " << preset;
    sim::ScenarioSpec spec = factory->make(/*seed=*/42);
    // Stream for as long as the benchmark keeps iterating, with pooled
    // bodies so synthesis stays off the measured path (drift and flood
    // composition are baked into the pool deterministically).
    spec.events = std::numeric_limits<std::size_t>::max() / 2;
    spec.pool_documents = 4'096;
    if (queries > 0) spec.queries.initial_queries = queries;

    if (shards > 0) {
      // The A/B axis: static hash placement vs the aggressive rebalance
      // policy (the same knob CI's forced-rebalancing soak uses). The
      // default kOn trigger (1.20) is tuned for operational skew — a
      // uniformly random benchmark population sits just under it, so the
      // bench measures the policy's full effect, not its dead zone.
      exec::RebalanceOptions rb;
      rb.mode = rebalance ? exec::RebalanceMode::kAggressive
                          : exec::RebalanceMode::kOff;
      engine_ = sim::MakeShardedEngine(spec.window, shards, /*threads=*/0,
                                       /*tuning=*/{}, rb);
    } else {
      engine_ = sim::MakeSequentialEngine(sim::SequentialStrategy::kIta,
                                          spec.window);
    }
    if (ObsTraceRequested()) {
      engine_->EnableTracing(/*capacity=*/1'024);
      engine_->EnableHotTermTracking();
    }
    stream_ = std::make_unique<sim::EventStreamGenerator>(spec);

    // Prefill to steady state: full window, whole population installed.
    while (engine_->query_count() < spec.queries.initial_queries ||
           stream_->events_generated() < spec.window.count) {
      auto epoch = stream_->NextEpoch();
      ITA_CHECK(epoch.has_value()) << "stream exhausted during prefill";
      const auto ids = sim::ApplyEpoch(*engine_, *std::move(epoch));
      ITA_CHECK(ids.ok()) << ids.status().ToString();
    }
    // Let the adaptive layers converge before measurement begins: the
    // placement map needs a run of epochs for its load EMAs to settle
    // and its bounded migrations to drain (well inside ~128 epochs on
    // these presets), and the term-tier EMAs need the same. The timed
    // region then measures steady state for both sides of the A/B.
    for (int i = 0; i < 128; ++i) {
      auto epoch = stream_->NextEpoch();
      ITA_CHECK(epoch.has_value()) << "stream exhausted during settle";
      const auto ids = sim::ApplyEpoch(*engine_, *std::move(epoch));
      ITA_CHECK(ids.ok()) << ids.status().ToString();
    }
    prefill_migrations_ = queries_migrated();
    engine_->ResetStats();
    // Drop the prefill epochs from the telemetry too: the recorded
    // latency percentiles must describe steady state, not the sharded
    // engine's pre-convergence (still imbalanced) warm-up.
    if (obs::EpochTrace* trace = engine_->mutable_trace()) trace->Reset();
  }

  std::unique_ptr<sim::SimEngine> engine_;
  std::unique_ptr<sim::EventStreamGenerator> stream_;
  std::uint64_t prefill_migrations_ = 0;
};

void PresetEpochBench(benchmark::State& state, const std::string& preset) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  PresetFixture& fixture = PresetFixture::Cached(preset, queries);
  const ServerStats before = fixture.stats();
  for (auto _ : state) fixture.StepEpoch();
  const ServerStats after = fixture.stats();
  const auto docs = static_cast<double>(after.documents_ingested -
                                        before.documents_ingested);
  state.SetItemsProcessed(static_cast<int64_t>(docs));
  if (docs > 0) {
    // Work metrics, invariant across kernel variants and probe gating.
    state.counters["probe_steps/doc"] = benchmark::Counter(
        static_cast<double>(after.threshold_probe_steps -
                            before.threshold_probe_steps) /
        docs);
    state.counters["list_reads/doc"] = benchmark::Counter(
        static_cast<double>(after.list_entries_read -
                            before.list_entries_read) /
        docs);
  }
  // Phase-latency percentiles, present only in ITA_OBS_TRACE=1 runs.
  ReportTraceCounters(state, fixture.trace());
}

void BM_ZipfDriftEpoch(benchmark::State& state) {
  PresetEpochBench(state, "zipf_drift");
}
void BM_HotTermFloodEpoch(benchmark::State& state) {
  PresetEpochBench(state, "hot_term_flood");
}
// Arg = registered query population (0 = the stock preset's 16).
BENCHMARK(BM_ZipfDriftEpoch)
    ->Arg(0)->Arg(1'024)->Arg(10'240)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HotTermFloodEpoch)
    ->Arg(0)->Arg(1'024)->Arg(10'240)
    ->Unit(benchmark::kMicrosecond);

// Experiment S2 — the same epoch critical path through the sharded
// engine, A/B over the load-aware rebalancer (args: S, rebalance 0/1,
// population fixed at 1'024 so per-shard slices stay non-trivial at
// S = 8). Skewed presets only: hot_term_flood concentrates query work
// on the shards whose queries own the flooded terms, flash_crowd spikes
// arrival bursts — both are the placement-imbalance regimes the
// rebalancer targets. Under ITA_OBS_TRACE=1 the wall p50/p99/max
// counters (obs histograms) are the tail-latency evidence recorded in
// bench/results/adaptive_rebalance_baseline.json.
void PresetShardedEpochBench(benchmark::State& state,
                             const std::string& preset) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const bool rebalance = state.range(1) != 0;
  PresetFixture& fixture =
      PresetFixture::Cached(preset, /*queries=*/1'024, shards, rebalance);
  const std::uint64_t migrated_before = fixture.queries_migrated();
  for (auto _ : state) fixture.StepEpoch();
  state.counters["queries_migrated"] = benchmark::Counter(
      static_cast<double>(fixture.queries_migrated() - migrated_before));
  state.counters["prefill_migrations"] =
      benchmark::Counter(static_cast<double>(fixture.prefill_migrations()));
  ReportTraceCounters(state, fixture.trace());
}

void BM_HotTermFloodShardedEpoch(benchmark::State& state) {
  PresetShardedEpochBench(state, "hot_term_flood");
}
void BM_FlashCrowdShardedEpoch(benchmark::State& state) {
  PresetShardedEpochBench(state, "flash_crowd");
}
BENCHMARK(BM_HotTermFloodShardedEpoch)
    ->Args({1, 0})->Args({1, 1})
    ->Args({4, 0})->Args({4, 1})
    ->Args({8, 0})->Args({8, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FlashCrowdShardedEpoch)
    ->Args({1, 0})->Args({1, 1})
    ->Args({4, 0})->Args({4, 1})
    ->Args({8, 0})->Args({8, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace ita
