// Micro-benchmark M1 — the data-structure operations ITA's event handling
// is built from: skip-list-backed inverted-list insert/erase, boundary
// searches, threshold-tree probes, result-set maintenance and similarity
// scoring.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "core/query.h"
#include "core/result_set.h"
#include "core/threshold_tree.h"
#include "index/inverted_list.h"

namespace ita {
namespace {

void BM_InvertedListInsertErase(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  InvertedList list;
  Rng rng(1);
  std::vector<std::pair<DocId, double>> resident;
  resident.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    const double w = rng.NextDouble();
    list.Insert(i + 1, w);
    resident.emplace_back(i + 1, w);
  }
  DocId next = size + 1;
  std::size_t victim = 0;
  for (auto _ : state) {
    // Steady-state churn: one insert + one erase, like a sliding window.
    const double w = rng.NextDouble();
    benchmark::DoNotOptimize(list.Insert(next, w));
    auto& old = resident[victim];
    benchmark::DoNotOptimize(list.Erase(old.first, old.second));
    old = {next, w};
    ++next;
    victim = (victim + 1) % resident.size();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_InvertedListInsertErase)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_InvertedListBoundarySearch(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  InvertedList list;
  Rng rng(2);
  for (std::size_t i = 0; i < size; ++i) list.Insert(i + 1, rng.NextDouble());
  for (auto _ : state) {
    const double theta = rng.NextDouble();
    benchmark::DoNotOptimize(list.FirstBelow(theta));
    benchmark::DoNotOptimize(list.NextWeightAbove(theta));
  }
}
BENCHMARK(BM_InvertedListBoundarySearch)->Arg(1'000)->Arg(100'000);

// Batched vs single-posting index maintenance on a window-sized hot list:
// one epoch of `run` postings applied with InsertOrdered + EraseOrdered
// (one pass each) vs `run` independent Insert + Erase calls (one search
// and one tail shift each). items_per_second counts postings, so the two
// rows compare directly — the bulk path's advantage grows with run size.
void BM_InvertedListEpochOps(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const std::size_t run = static_cast<std::size_t>(state.range(1));
  const bool bulk = state.range(2) != 0;
  InvertedList list;
  Rng rng(7);
  for (DocId d = 1; d <= size; ++d) list.Insert(d, rng.NextDouble());
  DocId next = size + 1;
  std::vector<ImpactEntry> batch;
  for (auto _ : state) {
    batch.clear();
    for (std::size_t i = 0; i < run; ++i) {
      batch.push_back(ImpactEntry{rng.NextDouble(), next++});
    }
    std::sort(batch.begin(), batch.end(),
              [](const ImpactEntry& a, const ImpactEntry& b) {
                return ImpactOrder{}(a, b);
              });
    if (bulk) {
      benchmark::DoNotOptimize(list.InsertOrdered(batch.begin(), batch.end()));
      benchmark::DoNotOptimize(list.EraseOrdered(batch.begin(), batch.end()));
    } else {
      for (const ImpactEntry& e : batch) list.Insert(e.doc, e.weight);
      for (const ImpactEntry& e : batch) list.Erase(e.doc, e.weight);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * run));
}
BENCHMARK(BM_InvertedListEpochOps)
    ->Args({1'000, 64, 0})
    ->Args({1'000, 64, 1})
    ->Args({10'000, 64, 0})
    ->Args({10'000, 64, 1})
    ->Args({10'000, 256, 0})
    ->Args({10'000, 256, 1});

void BM_ThresholdTreeProbe(benchmark::State& state) {
  const std::size_t queries = static_cast<std::size_t>(state.range(0));
  const double hit_fraction = static_cast<double>(state.range(1)) / 100.0;
  ThresholdTree tree;
  Rng rng(3);
  for (QueryId q = 1; q <= queries; ++q) {
    tree.Insert(rng.NextDouble(), q);
  }
  std::size_t sink = 0;
  for (auto _ : state) {
    // Probe at the requested selectivity: w such that ~hit_fraction of
    // thetas fall below it.
    sink += tree.ProbeLessEqual(hit_fraction, [](QueryId) {});
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ThresholdTreeProbe)
    ->Args({1'000, 1})
    ->Args({1'000, 10})
    ->Args({10'000, 1})
    ->Args({10'000, 10});

void BM_ResultSetMaintenance(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  ResultSet result;
  Rng rng(4);
  for (DocId d = 1; d <= size; ++d) result.Insert(d, rng.NextDouble());
  DocId next = size + 1;
  DocId victim = 1;
  for (auto _ : state) {
    result.Insert(next, rng.NextDouble());
    result.Erase(victim);
    benchmark::DoNotOptimize(result.KthScore(10));
    ++next;
    ++victim;
  }
}
BENCHMARK(BM_ResultSetMaintenance)->Arg(100)->Arg(10'000);

void BM_ScoreDocument(benchmark::State& state) {
  const std::size_t doc_terms = static_cast<std::size_t>(state.range(0));
  const std::size_t query_terms = static_cast<std::size_t>(state.range(1));
  Composition comp;
  for (TermId t = 0; t < doc_terms; ++t) {
    comp.push_back({t * 3, 0.01});
  }
  std::vector<TermWeight> query;
  for (std::size_t i = 0; i < query_terms; ++i) {
    query.push_back({static_cast<TermId>(i * 17), 0.1});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScoreDocument(comp, query));
  }
}
BENCHMARK(BM_ScoreDocument)->Args({100, 4})->Args({100, 10})->Args({100, 40})->Args({1'000, 10});

}  // namespace
}  // namespace ita

BENCHMARK_MAIN();
