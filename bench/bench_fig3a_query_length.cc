// Figure 3(a) — "Sensitivity to query length".
//
// Paper setup: window N = 1,000 documents; 1,000 queries; k = 10; query
// length n swept from 4 to 40 terms; metric = average processing time per
// arrival event (ms, log scale). Paper result: both methods grow with n;
// ITA ~10x faster at n = 4, ~6x at n = 40.
//
// Each benchmark iteration is one stream event (arrival + forced expiry).
// Series: BM_Fig3a/{ita,naive}/n:{4,10,20,30,40}.

#include <benchmark/benchmark.h>

#include "harness/report.h"
#include "harness/stream_bench.h"

namespace ita {
namespace bench {
namespace {

StreamWorkload Fig3aWorkload(int n_terms) {
  StreamWorkload w;
  w.window = 1'000;
  w.n_queries = 1'000;
  w.k = 10;
  w.terms_per_query = static_cast<std::size_t>(n_terms);
  return w;
}

void BM_Fig3a(benchmark::State& state, StreamBench::Strategy strategy) {
  StreamBench& fixture =
      StreamBench::Cached(strategy, Fig3aWorkload(static_cast<int>(state.range(0))));
  const ServerStats before = fixture.server().stats();
  for (auto _ : state) {
    fixture.Step();
  }
  AttachCounters(state, before, fixture.server());
}

void Ita(benchmark::State& state) { BM_Fig3a(state, StreamBench::Strategy::kIta); }
void Naive(benchmark::State& state) { BM_Fig3a(state, StreamBench::Strategy::kNaive); }

BENCHMARK(Ita)
    ->Name("BM_Fig3a/ita/n")
    ->Arg(4)->Arg(10)->Arg(20)->Arg(30)->Arg(40)
    ->MinTime(1.0)->Unit(benchmark::kMillisecond);

BENCHMARK(Naive)
    ->Name("BM_Fig3a/naive/n")
    ->Arg(4)->Arg(10)->Arg(20)->Arg(30)->Arg(40)
    ->MinTime(1.0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ita

BENCHMARK_MAIN();
