// Ablation A3 — the threshold roll-up of Section III-B.
//
// Roll-up "shrinks the monitored region of the term frequency space in
// order to reduce the number of future updates that need to be handled".
// This bench runs ITA with and without it (Figure 3(a) setup, n = 10) and
// exposes the mechanism through the probed/ev and reads/ev counters: with
// roll-up disabled, local thresholds only ever descend, so ever more
// arrivals/expirations pass the threshold-tree probes.

#include <benchmark/benchmark.h>

#include "harness/report.h"
#include "harness/stream_bench.h"

namespace ita {
namespace bench {
namespace {

StreamWorkload RollupWorkload(bool rollup, bool hot) {
  StreamWorkload w;
  w.window = 1'000;
  w.n_queries = 1'000;
  w.k = 10;
  w.terms_per_query = 10;
  w.rollup = rollup;
  // "hot" restricts query terms to the 200 most frequent dictionary
  // entries: every arrival matches several queries, so the monitored
  // regions actually fill up and the roll-up has work to do. The paper's
  // uniform draw (hot=0) mostly yields rare-term queries.
  if (hot) w.query_max_term = 200;
  return w;
}

void BM_Rollup(benchmark::State& state) {
  const bool rollup = state.range(0) == 1;
  const bool hot = state.range(1) == 1;
  StreamBench& fixture = StreamBench::Cached(StreamBench::Strategy::kIta,
                                             RollupWorkload(rollup, hot));
  const ServerStats before = fixture.server().stats();
  for (auto _ : state) {
    fixture.Step();
  }
  AttachCounters(state, before, fixture.server());
  // Average candidate-set size |R| over a sample of queries (query ids are
  // assigned sequentially from 1): the roll-up's memory effect.
  auto& server = dynamic_cast<ItaServer&>(fixture.server());
  double total = 0.0;
  const std::size_t sample = 100;
  for (QueryId q = 1; q <= sample; ++q) {
    const auto candidates = server.Candidates(q);
    if (candidates.ok()) total += static_cast<double>(candidates->size());
  }
  state.counters["avg|R|"] = benchmark::Counter(total / sample);
  state.SetLabel(std::string(rollup ? "rollup:on" : "rollup:off") +
                 (hot ? " hot-queries" : " paper-queries"));
}

BENCHMARK(BM_Rollup)
    ->Name("BM_RollupAblation/rollup_hot")
    ->Args({1, 0})->Args({0, 0})->Args({1, 1})->Args({0, 1})
    ->MinTime(1.0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ita

BENCHMARK_MAIN();
