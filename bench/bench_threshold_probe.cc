// Experiment C1 — threshold-tree probe cost vs. registered-query count,
// flat layout vs. the seed's skip-list layout (DESIGN.md §7).
//
// The probe "find all queries with theta_{Q,t} <= w" runs once per
// (term, epoch); its cost is proportional to the number of affected
// queries. Both layouts scan exactly the affected prefix, so the
// comparison isolates pure memory behavior: the flat tree reads packed
// 16-byte {theta, query} pairs sequentially, the seed layout chases
// level-0 skip-list node pointers. The seed structure is reproduced
// locally (SkipListThresholdTree below) so the comparison survives the
// seed code's removal.
//
// Also measured: single Update relocation cost (binary search + rotate
// vs. skip-list erase + insert), the bulk per-epoch retheta pass vs.
// the same moves applied singly, and the end-to-end query-churn axis of
// the stream harness (registration storms on the slot-map slab).
//
// To record a machine-readable baseline (bench/results/):
//   ./build/bench/bench_threshold_probe --benchmark_format=json
//     > bench/results/threshold_probe_baseline.json

#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "container/skip_list.h"
#include "core/threshold_tree.h"
#include "harness/stream_bench.h"

namespace ita {
namespace bench {
namespace {

/// The seed's threshold-tree layout, verbatim: one skip-list entry per
/// (theta, query), probed by a front scan over the level-0 chain.
class SkipListThresholdTree {
 public:
  using Entry = FlatThresholdTree::Entry;
  struct Order {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.theta != b.theta) return a.theta < b.theta;
      return a.query < b.query;
    }
  };

  void Insert(double theta, QueryId query) {
    entries_.Insert(Entry{theta, query});
  }
  void Update(double old_theta, double new_theta, QueryId query) {
    entries_.Erase(Entry{old_theta, query});
    entries_.Insert(Entry{new_theta, query});
  }
  template <typename Fn>
  std::size_t ProbeLessEqual(double w, Fn&& fn) const {
    std::size_t steps = 0;
    for (auto it = entries_.begin(); it != entries_.end() && it->theta <= w;
         ++it) {
      ++steps;
      fn(it->query);
    }
    return steps;
  }

 private:
  SkipList<Entry, Order> entries_;
};

/// Thetas drawn uniformly from (0, 1): a probe at w hits ~w*n entries.
template <typename Tree>
Tree BuildTree(std::size_t queries, std::uint64_t seed) {
  Tree tree;
  Rng rng(seed);
  for (QueryId q = 1; q <= queries; ++q) {
    tree.Insert(rng.NextDoublePositive(), q);
  }
  return tree;
}

template <typename Tree>
void ProbeBench(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  const double selectivity = static_cast<double>(state.range(1)) / 100.0;
  const Tree tree = BuildTree<Tree>(queries, /*seed=*/17);
  std::size_t sink = 0;
  for (auto _ : state) {
    sink += tree.ProbeLessEqual(selectivity, [](QueryId) {});
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(sink));
  state.counters["hits/probe"] = benchmark::Counter(
      static_cast<double>(sink) /
      static_cast<double>(state.iterations() > 0 ? state.iterations() : 1));
}

void BM_FlatProbe(benchmark::State& state) {
  ProbeBench<FlatThresholdTree>(state);
}
void BM_SeedSkipListProbe(benchmark::State& state) {
  ProbeBench<SkipListThresholdTree>(state);
}
// (queries, selectivity %): the acceptance sweep is >= 10k queries.
BENCHMARK(BM_FlatProbe)
    ->Args({1'000, 1})->Args({1'000, 10})
    ->Args({10'000, 1})->Args({10'000, 10})
    ->Args({100'000, 1})->Args({100'000, 10});
BENCHMARK(BM_SeedSkipListProbe)
    ->Args({1'000, 1})->Args({1'000, 10})
    ->Args({10'000, 1})->Args({10'000, 10})
    ->Args({100'000, 1})->Args({100'000, 10});

/// Single-threshold relocation: the per-event SetTheta path.
template <typename Tree>
void UpdateBench(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  Tree tree = BuildTree<Tree>(queries, /*seed=*/23);
  Rng rng(29);
  // Replay a fixed move tape so both layouts do identical relocations.
  std::vector<double> position(queries + 1);
  {
    Rng build(23);
    for (QueryId q = 1; q <= queries; ++q) position[q] = build.NextDoublePositive();
  }
  for (auto _ : state) {
    const QueryId q = 1 + static_cast<QueryId>(rng.Next() % queries);
    const double target = rng.NextDoublePositive();
    tree.Update(position[q], target, q);
    position[q] = target;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FlatUpdate(benchmark::State& state) {
  UpdateBench<FlatThresholdTree>(state);
}
void BM_SeedSkipListUpdate(benchmark::State& state) {
  UpdateBench<SkipListThresholdTree>(state);
}
BENCHMARK(BM_FlatUpdate)->Arg(1'000)->Arg(10'000)->Arg(100'000);
BENCHMARK(BM_SeedSkipListUpdate)->Arg(1'000)->Arg(10'000)->Arg(100'000);

/// One epoch's theta moves on one tree: ApplyMoves (erase-compaction +
/// merge) vs. the same moves as sequential Updates.
void BM_BulkRetheta(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  const auto moves_per_epoch = static_cast<std::size_t>(state.range(1));
  const bool bulk = state.range(2) != 0;
  FlatThresholdTree tree = BuildTree<FlatThresholdTree>(queries, /*seed=*/31);
  std::vector<double> position(queries + 1);
  {
    Rng build(31);
    for (QueryId q = 1; q <= queries; ++q) position[q] = build.NextDoublePositive();
  }
  Rng rng(37);
  std::vector<FlatThresholdTree::ThetaMove> moves;
  for (auto _ : state) {
    state.PauseTiming();
    moves.clear();
    // Distinct queries per epoch (one move per query, the server's
    // contract); a stride walk avoids duplicate picks cheaply.
    const QueryId start = 1 + static_cast<QueryId>(rng.Next() % queries);
    for (std::size_t m = 0; m < moves_per_epoch; ++m) {
      const QueryId q =
          1 + static_cast<QueryId>((start + m * 7919) % queries);
      const double target = rng.NextDoublePositive();
      moves.push_back({position[q], target, q});
      position[q] = target;
    }
    state.ResumeTiming();
    if (bulk) {
      tree.ApplyMoves(moves);
    } else {
      for (const auto& m : moves) tree.Update(m.old_theta, m.new_theta, m.query);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(moves_per_epoch));
}
// (queries, moves/epoch, bulk?)
BENCHMARK(BM_BulkRetheta)
    ->Args({10'000, 16, 0})->Args({10'000, 16, 1})
    ->Args({10'000, 128, 0})->Args({10'000, 128, 1})
    ->Args({100'000, 128, 0})->Args({100'000, 128, 1})
    ->Unit(benchmark::kMicrosecond);

/// End-to-end churn axis: epochs with `churn` register/unregister pairs
/// rotating the live population through the slot-map slab before each
/// ingest (the harness's churn_per_epoch workload knob).
void BM_ItaQueryChurn(benchmark::State& state) {
  StreamWorkload workload;
  workload.n_queries = 1'000;
  workload.window = 1'000;
  workload.batch_size = 64;
  workload.churn_per_epoch = static_cast<std::size_t>(state.range(0));
  StreamBench& fixture =
      StreamBench::Cached(StreamBench::Strategy::kIta, workload);
  for (auto _ : state) fixture.StepBatch();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.batch_size));
  state.counters["churn/epoch"] = benchmark::Counter(
      static_cast<double>(workload.churn_per_epoch));
  state.counters["state_slots"] = benchmark::Counter(
      static_cast<double>(fixture.server().stats().query_state_slots));
}
BENCHMARK(BM_ItaQueryChurn)
    ->Arg(0)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace ita
