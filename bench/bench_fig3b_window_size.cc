// Figure 3(b) — "Sensitivity to window size".
//
// Paper setup: query length n = 10; 1,000 queries; k = 10; count-based
// window N swept over {10, 10^2, 10^3, 10^4, 10^5}. Paper result: ITA 13x
// faster at N = 10, 18x at N = 10^4; the Naive measurement at N = 10^5 is
// missing because "the CPU utilization approaches 100% and the system
// becomes unstable" — we reproduce that by capping Naive at 10^4 (running
// it is possible on modern hardware but tells the same story; flip
// kRunNaiveAtMaxWindow to measure it).
//
// Series: BM_Fig3b/{ita,naive}/N:{10,100,1000,10000[,100000]}.

#include <benchmark/benchmark.h>

#include "harness/report.h"
#include "harness/stream_bench.h"

namespace ita {
namespace bench {
namespace {

constexpr bool kRunNaiveAtMaxWindow = true;

StreamWorkload Fig3bWorkload(std::size_t window) {
  StreamWorkload w;
  w.window = window;
  w.n_queries = 1'000;
  w.k = 10;
  w.terms_per_query = 10;
  // Keep the pool large enough that a window never holds only duplicates.
  if (window > w.doc_pool) w.doc_pool = 8'192;
  return w;
}

void BM_Fig3b(benchmark::State& state, StreamBench::Strategy strategy) {
  StreamBench& fixture = StreamBench::Cached(
      strategy, Fig3bWorkload(static_cast<std::size_t>(state.range(0))));
  const ServerStats before = fixture.server().stats();
  for (auto _ : state) {
    fixture.Step();
  }
  AttachCounters(state, before, fixture.server());
}

void Ita(benchmark::State& state) { BM_Fig3b(state, StreamBench::Strategy::kIta); }
void Naive(benchmark::State& state) { BM_Fig3b(state, StreamBench::Strategy::kNaive); }

BENCHMARK(Ita)
    ->Name("BM_Fig3b/ita/N")
    ->Arg(10)->Arg(100)->Arg(1'000)->Arg(10'000)->Arg(100'000)
    ->MinTime(1.0)->Unit(benchmark::kMillisecond);

void RegisterNaive() {
  auto* b = ::benchmark::RegisterBenchmark("BM_Fig3b/naive/N", Naive);
  b->Arg(10)->Arg(100)->Arg(1'000)->Arg(10'000);
  if (kRunNaiveAtMaxWindow) b->Arg(100'000);
  b->MinTime(1.0)->Unit(benchmark::kMillisecond);
}
const int kRegistered = (RegisterNaive(), 0);

}  // namespace
}  // namespace bench
}  // namespace ita

BENCHMARK_MAIN();
