// Ablation A4 — the Naive baseline's k_max (Yi et al. [6]) and rescan
// policy.
//
// The paper enhances Naive with top-k_max views "to reduce the frequency
// of subsequent recomputations"; the analytically-derived k_max is not
// restated. This bench sweeps k_max/k over {1, 1.5, 2, 4} (1 = plain
// Naive of Section II) and also measures the variant that skips provably
// futile rescans (complete views) — demonstrating that no tuning of the
// baseline approaches ITA (compare with BM_Fig3a/ita/n:10).

#include <benchmark/benchmark.h>

#include "harness/report.h"
#include "harness/stream_bench.h"

namespace ita {
namespace bench {
namespace {

void BM_KMax(benchmark::State& state) {
  StreamWorkload w;
  w.window = 1'000;
  w.n_queries = 1'000;
  w.k = 10;
  w.terms_per_query = 10;
  w.kmax_factor = static_cast<double>(state.range(0)) / 100.0;
  w.skip_complete_rescans = state.range(1) == 1;

  StreamBench& fixture = StreamBench::Cached(StreamBench::Strategy::kNaive, w);
  const ServerStats before = fixture.server().stats();
  for (auto _ : state) {
    fixture.Step();
  }
  AttachCounters(state, before, fixture.server());
}

BENCHMARK(BM_KMax)
    ->Name("BM_KMaxAblation/naive/kmax_pct_skip")
    ->Args({100, 0})
    ->Args({150, 0})
    ->Args({200, 0})
    ->Args({400, 0})
    ->Args({200, 1})
    ->MinTime(1.0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ita

BENCHMARK_MAIN();
