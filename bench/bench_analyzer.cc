// Micro-benchmark M2 — text-analysis throughput (the stage upstream of
// the monitoring server: tokenization, stopword filtering, optional
// stemming, interning, weighting). Useful for sizing a deployment: the
// paper's 200 docs/s arrival rate must clear this stage first.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "text/analyzer.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace ita {
namespace {

// Builds a deterministic pseudo-English document of ~`words` words.
std::string SyntheticText(std::size_t words, Rng* rng) {
  static const char* kVocabulary[] = {
      "market",   "report",   "analyst",  "company", "quarter",  "earnings",
      "the",      "of",       "and",      "with",    "announce", "product",
      "security", "monitor",  "stream",   "query",   "index",    "threshold",
      "weapons",  "tracking", "industry", "news",    "price",    "energy",
      "develop",  "research", "system",   "data",    "growth",   "billion"};
  std::string text;
  text.reserve(words * 8);
  for (std::size_t i = 0; i < words; ++i) {
    text += kVocabulary[rng->UniformInt(0, 29)];
    text += (i % 12 == 11) ? ". " : " ";
  }
  return text;
}

void BM_Tokenize(benchmark::State& state) {
  Rng rng(1);
  const std::string text = SyntheticText(400, &rng);
  Tokenizer tokenizer;
  for (auto _ : state) {
    std::size_t tokens = 0;
    tokenizer.ForEachToken(text, [&](std::string_view) { ++tokens; });
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_Tokenize);

void BM_PorterStem(benchmark::State& state) {
  const std::vector<std::string> words = {
      "generalizations", "monitoring", "continuous", "queries",
      "relational",      "hopefulness", "destruction", "tracking"};
  std::size_t i = 0;
  for (auto _ : state) {
    std::string w = words[i++ % words.size()];
    PorterStemmer::StemInPlace(&w);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_PorterStem);

void BM_AnalyzeDocument(benchmark::State& state) {
  const bool stem = state.range(0) == 1;
  Rng rng(2);
  std::vector<std::string> texts;
  for (int i = 0; i < 64; ++i) texts.push_back(SyntheticText(400, &rng));
  AnalyzerOptions opts;
  opts.stem = stem;
  opts.keep_text = false;
  Analyzer analyzer(opts);
  std::size_t i = 0;
  Timestamp t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.MakeDocument(texts[i++ % texts.size()], ++t));
  }
  state.SetLabel(stem ? "stemming:on" : "stemming:off");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeDocument)->Arg(0)->Arg(1);

void BM_MakeQuery(benchmark::State& state) {
  Analyzer analyzer;
  for (auto _ : state) {
    auto q = analyzer.MakeQuery("weapons of mass destruction threat report", 10);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_MakeQuery);

}  // namespace
}  // namespace ita

BENCHMARK_MAIN();
