// Sharded execution engine scaling (DESIGN.md §6): epoch throughput of
// the query-heavy synthetic workload as the --shards / --threads axes
// grow. Every shard sees the whole stream but owns only 1/S of the
// queries, so per-epoch work per shard is (replicated index maintenance)
// + (per-query work)/S — on a query-heavy workload the second term
// dominates and the epoch critical path shrinks with S.
//
// Two metrics per configuration:
//   * items_per_second        — wall-clock document throughput, which only
//     scales when each shard actually has its own core;
//   * critical_us_per_epoch   — max over shards of measured per-shard busy
//     time per epoch: the epoch latency once every shard runs on its own
//     core. This is the hardware-independent scaling metric (recorded in
//     bench/results/sharded_baseline.json, whose measurement box pins the
//     process to a single CPU and therefore cannot show wall-clock
//     parallel speedup).
//   * busy_us_per_epoch       — summed shard busy time per epoch: the
//     total CPU an epoch costs, i.e. the price of replicating index
//     maintenance S times.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "harness/stream_bench.h"

namespace ita {
namespace bench {
namespace {

/// The query-heavy workload: a large population of hot queries drawn from
/// the Zipf head, so most arrivals affect many queries and per-query work
/// (scoring, result maintenance, roll-up) dwarfs index maintenance.
StreamWorkload QueryHeavyWorkload() {
  StreamWorkload workload;
  workload.n_queries = 2'000;
  workload.query_max_term = 200;  // hot: terms from the Zipf head
  workload.window = 4'096;
  workload.batch_size = 256;
  return workload;
}

void ReportShardCounters(benchmark::State& state, StreamBench& bench,
                         const std::vector<std::uint64_t>& busy_before,
                         std::uint64_t epochs_before) {
  exec::ShardedServer& server = *bench.sharded();
  const std::uint64_t epochs = server.epochs_processed() - epochs_before;
  if (epochs == 0) return;
  std::uint64_t critical = 0;
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    const std::uint64_t busy = server.shard_busy_micros(s) - busy_before[s];
    critical = std::max(critical, busy);
    total += busy;
  }
  state.counters["critical_us_per_epoch"] =
      static_cast<double>(critical) / static_cast<double>(epochs);
  state.counters["busy_us_per_epoch"] =
      static_cast<double>(total) / static_cast<double>(epochs);
  state.counters["epochs"] = static_cast<double>(epochs);
}

std::vector<std::uint64_t> BusySnapshot(StreamBench& bench) {
  exec::ShardedServer& server = *bench.sharded();
  std::vector<std::uint64_t> busy(server.shard_count());
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    busy[s] = server.shard_busy_micros(s);
  }
  return busy;
}

/// Epoch throughput vs shard count (threads auto: one per shard, capped
/// at hardware concurrency).
void BM_ShardedEpochThroughput(benchmark::State& state) {
  StreamWorkload workload = QueryHeavyWorkload();
  workload.shards = static_cast<std::size_t>(state.range(0));
  StreamBench& bench =
      StreamBench::Cached(StreamBench::Strategy::kSharded, workload);

  const std::vector<std::uint64_t> busy_before = BusySnapshot(bench);
  const std::uint64_t epochs_before = bench.sharded()->epochs_processed();
  for (auto _ : state) {
    bench.StepBatch();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.batch_size));
  ReportShardCounters(state, bench, busy_before, epochs_before);
}
// UseRealTime: the epoch runs on pool workers, so rates must come from
// wall time, not the (mostly blocked) main thread's CPU time.
// MeasureProcessCPUTime: the cpu column then reports all threads — the
// true CPU an epoch costs.
BENCHMARK(BM_ShardedEpochThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The --threads axis at a fixed shard count: fewer workers than shards
/// serialize shard tasks within each phase (the barrier still holds), so
/// wall time degrades gracefully toward the single-threaded cost.
void BM_ShardedThreadSweep(benchmark::State& state) {
  StreamWorkload workload = QueryHeavyWorkload();
  workload.shards = 4;
  workload.threads = static_cast<std::size_t>(state.range(0));
  StreamBench& bench =
      StreamBench::Cached(StreamBench::Strategy::kSharded, workload);

  const std::vector<std::uint64_t> busy_before = BusySnapshot(bench);
  const std::uint64_t epochs_before = bench.sharded()->epochs_processed();
  for (auto _ : state) {
    bench.StepBatch();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.batch_size));
  ReportShardCounters(state, bench, busy_before, epochs_before);
}
BENCHMARK(BM_ShardedThreadSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The sequential ITA server on the identical workload — the sharding
/// overhead baseline (broadcast copies, scheduler hops, S=1 equivalence).
void BM_SequentialEpochBaseline(benchmark::State& state) {
  const StreamWorkload workload = QueryHeavyWorkload();
  StreamBench& bench =
      StreamBench::Cached(StreamBench::Strategy::kIta, workload);
  for (auto _ : state) {
    bench.StepBatch();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.batch_size));
}
BENCHMARK(BM_SequentialEpochBaseline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ita
