// Experiment B1 — batched ingest throughput. Sweeps the epoch batch size
// on the default synthetic workload (Section IV setup: 1,000 queries,
// k = 10, count-based window of 1,000, WSJ-calibrated corpus) and reports
// documents/second for the batched pipeline vs. the per-event baseline.
//
// batch = 1 goes through the per-event Ingest path (the pre-pipeline
// baseline); batch > 1 goes through IngestBatch, which probes each
// affected term's threshold tree once per epoch and runs roll-up/refill
// once per affected query per epoch. items_per_second is documents/s in
// both cases, so the rows are directly comparable.
//
// To record a machine-readable baseline (bench/results/):
//   ./build/bench/bench_batch_ingest --benchmark_format=json
//     > bench/results/batch_ingest.json

#include <benchmark/benchmark.h>

#include "harness/report.h"
#include "harness/stream_bench.h"

namespace ita {
namespace bench {
namespace {

void RunBatchSweep(benchmark::State& state, StreamBench::Strategy strategy,
                   std::size_t hot_max_term) {
  StreamWorkload workload;
  workload.batch_size = static_cast<std::size_t>(state.range(0));
  workload.query_max_term = hot_max_term;
  StreamBench& fixture = StreamBench::Cached(strategy, workload);
  const ServerStats before = fixture.server().stats();
  if (workload.batch_size == 1) {
    for (auto _ : state) fixture.Step();
  } else {
    for (auto _ : state) fixture.StepBatch();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.batch_size));
  AttachCounters(state, before, fixture.server());
}

/// The paper's default setup: random queries over the full dictionary.
/// Query matches are sparse, so the epoch machinery only overtakes the
/// (heavily optimized) per-event path at larger batch sizes.
void BM_ItaBatchIngest(benchmark::State& state) {
  RunBatchSweep(state, StreamBench::Strategy::kIta, /*hot_max_term=*/0);
}
BENCHMARK(BM_ItaBatchIngest)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

/// Hot queries over the Zipf head: every arriving document matches many
/// queries, so the per-(term, batch) probe and per-(query, epoch)
/// roll-up/refill amortization dominates — the regime where batching
/// pays from small batch sizes on.
void BM_ItaBatchIngestHotQueries(benchmark::State& state) {
  RunBatchSweep(state, StreamBench::Strategy::kIta, /*hot_max_term=*/2000);
}
BENCHMARK(BM_ItaBatchIngestHotQueries)
    ->Arg(1)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_NaiveBatchIngest(benchmark::State& state) {
  RunBatchSweep(state, StreamBench::Strategy::kNaive, /*hot_max_term=*/0);
}
BENCHMARK(BM_NaiveBatchIngest)
    ->Arg(1)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace ita
