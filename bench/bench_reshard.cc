// Live resharding pause cost (DESIGN.md §14): wall time the stream is
// stalled while ShardedServer::Reshard rebuilds the fleet S→S′ over the
// paper's steady-state workload. Each iteration reshards away and back
// (S→S′→S), so the fixture returns to its cached shape; the reported
// pause is the engine's own reshard_stats() accounting — the cost a
// deployment pays at the barrier, dominated by re-registering every
// query (one exact top-k recomputation each over the N-document
// window). A checkpoint + cross-shape-restore round trip over the same
// engine is measured alongside: the persistence path pays serialization
// on top of the same remap, so the gap between the two is the price of
// going through bytes.
//
// Baselines: bench/results/reshard_baseline.json.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "exec/sharded_server.h"
#include "harness/stream_bench.h"

namespace ita {
namespace bench {
namespace {

/// The paper's query-heavy steady state, small enough that window
/// prefill doesn't dominate fixture setup across the shape axis.
StreamWorkload ReshardWorkload(std::size_t shards) {
  StreamWorkload workload;
  workload.n_queries = 1'000;
  workload.query_max_term = 200;
  workload.window = 4'096;
  workload.batch_size = 256;
  workload.shards = shards;
  return workload;
}

/// One S→S′→S round trip per iteration; the pause counter (engine
/// accounting, not iteration wall time) is the reported metric.
void BM_LiveReshardPause(benchmark::State& state) {
  const auto from = static_cast<std::size_t>(state.range(0));
  const auto to = static_cast<std::size_t>(state.range(1));
  StreamBench& bench =
      StreamBench::Cached(StreamBench::Strategy::kSharded, ReshardWorkload(from));
  exec::ShardedServer& server = *bench.sharded();

  const exec::ShardedServer::ReshardStats before = server.reshard_stats();
  for (auto _ : state) {
    ITA_CHECK(server.Reshard(to).ok());
    ITA_CHECK(server.Reshard(from).ok());
    // Stream an epoch so consecutive reshards never degenerate into
    // remapping an engine the previous iteration just built.
    bench.StepBatch();
  }
  const exec::ShardedServer::ReshardStats after = server.reshard_stats();
  const std::uint64_t reshards = after.reshards - before.reshards;
  if (reshards > 0) {
    state.counters["pause_us_per_reshard"] =
        static_cast<double>(after.total_pause_nanos - before.total_pause_nanos) /
        1e3 / static_cast<double>(reshards);
    state.counters["queries_remapped_per_reshard"] =
        static_cast<double>(after.queries_remapped - before.queries_remapped) /
        static_cast<double>(reshards);
  }
}
BENCHMARK(BM_LiveReshardPause)
    ->Args({4, 2})
    ->Args({2, 7})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond);

/// The persistence route to the same shape change: Checkpoint at S,
/// Restore the bytes into a fresh S′ engine (the cross-shape remap).
/// The fixture engine itself is never replaced — the fresh engines are
/// scratch — so the cached stream state stays intact.
void BM_CheckpointRestoreReshard(benchmark::State& state) {
  const auto from = static_cast<std::size_t>(state.range(0));
  const auto to = static_cast<std::size_t>(state.range(1));
  StreamBench& bench =
      StreamBench::Cached(StreamBench::Strategy::kSharded, ReshardWorkload(from));
  exec::ShardedServer& server = *bench.sharded();

  std::uint64_t snapshot_bytes = 0;
  for (auto _ : state) {
    std::string bytes;
    ITA_CHECK(server.Checkpoint(&bytes).ok());
    snapshot_bytes = bytes.size();
    exec::ShardedServerOptions options = server.options();
    options.shards = to;
    exec::ShardedServer resized(options);
    ITA_CHECK(resized.Restore(bytes).ok());
    benchmark::DoNotOptimize(resized.query_count());
  }
  state.counters["snapshot_bytes"] = static_cast<double>(snapshot_bytes);
}
BENCHMARK(BM_CheckpointRestoreReshard)
    ->Args({4, 2})
    ->Args({2, 7})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ita
