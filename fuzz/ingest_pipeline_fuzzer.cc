// libFuzzer target for the whole text-analysis front end: raw bytes ->
// Tokenizer -> stopword filter -> (optionally) Porter stemmer ->
// Vocabulary interning -> weighting -> pipeline/IngestPipeline document
// AND query analysis. The pipeline must never crash, overflow or trip
// sanitizers on arbitrary input — it sits directly on untrusted text.
//
// Input layout: byte 0 selects the pipeline configuration (stemming,
// stopword removal, weighting scheme, k); the rest is the document/query
// text, fed through both the single-document and the batch path (which
// must agree by contract).
//
// Build modes:
//   * Clang + -DITA_BUILD_FUZZERS=ON: a real libFuzzer binary
//     (-fsanitize=fuzzer,address) — CI runs a ~30 s smoke fuzz over the
//     checked-in corpus (fuzz/corpus/ingest_pipeline/).
//   * Any compiler, ITA_FUZZ_STANDALONE: a regression runner whose main()
//     replays files passed as arguments once each — the same CLI libFuzzer
//     exposes for corpus replay, registered as the `fuzz`-labeled ctest.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "pipeline/ingest_pipeline.h"

namespace {

using ita::Document;
using ita::IngestPipeline;
using ita::IngestPipelineOptions;
using ita::RawDocument;
using ita::WeightingScheme;

void DriveOnePipeline(const IngestPipelineOptions& options,
                      std::string_view text, int k) {
  IngestPipeline pipeline(options);

  // Single-document path.
  const Document doc = pipeline.AnalyzeDocument(text, /*arrival_time=*/1);
  // Composition-list contract: sorted by ascending TermId, one entry per
  // distinct term, strictly positive weights.
  for (std::size_t i = 0; i < doc.composition.size(); ++i) {
    ITA_CHECK(doc.composition[i].weight > 0.0);
    if (i > 0) {
      ITA_CHECK(doc.composition[i - 1].term < doc.composition[i].term);
    }
  }

  // Batch path must agree with the single-document path.
  std::vector<RawDocument> raw;
  raw.push_back(RawDocument{std::string(text), 2});
  raw.push_back(RawDocument{std::string(text), 3});
  const std::vector<Document> batch = pipeline.AnalyzeBatch(raw);
  ITA_CHECK(batch.size() == 2);
  ITA_CHECK(batch[0].composition.size() == batch[1].composition.size());

  // Query path: a failed analysis must be a clean Status, never a crash.
  const auto query = pipeline.AnalyzeQuery(text, k);
  if (query.ok()) {
    ITA_CHECK(query->k == k);
    ITA_CHECK(!query->terms.empty());
  }
}

int DriveBytes(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t selector = data[0];
  const std::string_view text(reinterpret_cast<const char*>(data + 1),
                              size - 1);

  IngestPipelineOptions options;
  options.stem = (selector & 0x1) != 0;
  options.remove_stopwords = (selector & 0x2) != 0;
  options.keep_text = (selector & 0x4) != 0;
  switch ((selector >> 3) & 0x3) {
    case 0: options.scheme = WeightingScheme::kCosine; break;
    case 1: options.scheme = WeightingScheme::kBm25; break;
    default: options.scheme = WeightingScheme::kRawTf; break;
  }
  const int k = 1 + (selector >> 5);  // 1..8

  DriveOnePipeline(options, text, k);
  return 0;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return DriveBytes(data, size);
}

#ifdef ITA_FUZZ_STANDALONE
// Corpus replay mode: run each file argument through the target once,
// mirroring libFuzzer's file-argument CLI.
#include <fstream>
#include <iostream>
#include <iterator>

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // ignore libFuzzer-style flags
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open corpus file: " << argv[i] << "\n";
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++ran;
  }
  std::cout << "replayed " << ran << " corpus inputs\n";
  return ran > 0 ? 0 : 1;
}
#endif  // ITA_FUZZ_STANDALONE
