/// \file
/// The SIMD kernel layer (DESIGN.md §10): vectorized scan primitives for
/// the two hottest contiguous loops of the engine — the threshold-tree
/// probe (a front scan over a dense, ascending theta array) and the
/// impact-array boundary searches of the inverted lists (strided weight
/// scans over 16-byte {weight, doc} entries).
///
/// Every kernel is a pure *counting* primitive with front-scan
/// semantics: it returns the index of the first element failing (or
/// satisfying) a weight predicate, scanning left to right. That contract
/// is exact for ANY input — sortedness only makes the result meaningful
/// to the callers — so a vector kernel and the scalar reference are
/// bit-identical by construction, which is what the equivalence suite
/// (tests/simd/) pins.
///
/// Variants are built with gcc vector extensions: a 2-lane SSE2 kernel
/// (baseline x86-64, no extra ISA needed) and a 4-lane AVX2 kernel
/// compiled via `__attribute__((target("avx2")))` so the library builds
/// with any -march and selects at runtime through
/// `__builtin_cpu_supports`. The scalar fallback is always built; a
/// `-DITA_SIMD=OFF` build (macro ITA_SIMD_FORCE_SCALAR) pins dispatch to
/// it, and the `ITA_SIMD_KERNEL` environment variable (scalar | sse2 |
/// avx2) overrides dispatch for A/B runs without rebuilding. On non-x86
/// targets only the scalar kernel exists.
///
/// Thread safety: dispatch resolves once behind a magic static; kernels
/// are stateless pure functions.

#pragma once

#include <cstddef>
#include <vector>

namespace ita::simd {

/// One kernel variant: the function table dispatch selects from.
/// `stride2` kernels read doubles at positions base[0], base[2],
/// base[4], ... — the weight lanes of a packed 16-byte
/// {double weight, uint64 doc} impact array (`base` = &entries[0].weight,
/// `count` = number of entries). The doc lanes are never interpreted:
/// vector variants load them but mask their comparison bits out, so
/// arbitrary bit patterns (including ones that read as NaN doubles) are
/// harmless.
struct Kernels {
  const char* name;  ///< "scalar", "sse2", "avx2"

  /// Number of leading elements with values[i] <= w — the index of the
  /// first element > w in a left-to-right scan (n when none fails).
  /// The threshold-tree probe over the ascending SoA theta array.
  std::size_t (*probe_prefix_less_equal)(const double* values, std::size_t n,
                                         double w);

  /// Index of the first entry whose weight lane is < w (count when
  /// none). Drives InvertedList::FirstBelow within a block.
  std::size_t (*first_stride2_less)(const double* base, std::size_t count,
                                    double w);

  /// Index of the first entry whose weight lane is <= w (count when
  /// none). Drives FirstAtOrBelow and the ordered-merge lower bounds.
  std::size_t (*first_stride2_less_equal)(const double* base,
                                          std::size_t count, double w);
};

/// The variant dispatch picked for this process: the widest kernel the
/// CPU supports, unless pinned by ITA_SIMD_FORCE_SCALAR (the
/// -DITA_SIMD=OFF build) or overridden by ITA_SIMD_KERNEL. Resolved once
/// on first use (thread-safe).
const Kernels& ActiveKernels();

/// Every variant runnable on this build + CPU, scalar first — the
/// equivalence suite cross-checks each against the scalar reference.
/// ITA_SIMD_FORCE_SCALAR builds return only the scalar entry.
const std::vector<const Kernels*>& AvailableKernels();

/// Convenience wrappers over ActiveKernels().
inline std::size_t ProbePrefixLessEqual(const double* values, std::size_t n,
                                        double w) {
  return ActiveKernels().probe_prefix_less_equal(values, n, w);
}
/// First strided entry with weight < w; see Kernels::first_stride2_less.
inline std::size_t FirstStride2Less(const double* base, std::size_t count,
                                    double w) {
  return ActiveKernels().first_stride2_less(base, count, w);
}
/// First strided entry with weight <= w.
inline std::size_t FirstStride2LessEqual(const double* base, std::size_t count,
                                         double w) {
  return ActiveKernels().first_stride2_less_equal(base, count, w);
}

}  // namespace ita::simd
