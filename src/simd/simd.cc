#include "simd/simd.h"

#include <bit>
#include <cstdlib>
#include <string_view>

#include "common/logging.h"

// The x86-64 vector kernels below are written with gcc vector extensions
// (clang implements the same dialect). SSE2 is part of the x86-64
// baseline, so its kernel compiles without any target attribute; the
// AVX2 kernel carries __attribute__((target("avx2"))) so it builds under
// any -march and is only *called* after __builtin_cpu_supports("avx2").
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ITA_SIMD_X86 1
#else
#define ITA_SIMD_X86 0
#endif

namespace ita::simd {
namespace {

// --- scalar reference kernels -------------------------------------------
// These define the exact semantics every vector variant must reproduce
// bit for bit; the equivalence suite (tests/simd/) diffs against them.

std::size_t ProbePrefixLessEqualScalar(const double* values, std::size_t n,
                                       double w) {
  std::size_t i = 0;
  while (i < n && values[i] <= w) ++i;
  return i;
}

std::size_t FirstStride2LessScalar(const double* base, std::size_t count,
                                   double w) {
  for (std::size_t i = 0; i < count; ++i) {
    if (base[2 * i] < w) return i;
  }
  return count;
}

std::size_t FirstStride2LessEqualScalar(const double* base, std::size_t count,
                                        double w) {
  for (std::size_t i = 0; i < count; ++i) {
    if (base[2 * i] <= w) return i;
  }
  return count;
}

#if ITA_SIMD_X86

typedef double v2df __attribute__((vector_size(16)));
typedef double v4df __attribute__((vector_size(32)));

/// Unaligned 16/32-byte loads (memcpy compiles to movupd/vmovupd and
/// sidesteps both alignment and strict-aliasing concerns — the impact
/// arrays interleave weight doubles with DocId bit patterns).
inline v2df Load2(const double* p) {
  v2df v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

// --- SSE2 (2 lanes, x86-64 baseline) ------------------------------------

/// Sign-bit mask of a 2-lane comparison result (1 bit per lane).
inline int MoveMask2(v2df m) { return __builtin_ia32_movmskpd(m); }

std::size_t ProbePrefixLessEqualSse2(const double* values, std::size_t n,
                                     double w) {
  const v2df wv = {w, w};
  std::size_t i = 0;
  // 8 doubles per iteration; each lane mask bit is 1 while theta <= w, so
  // the combined mask's trailing-one count IS the front-scan stop offset.
  while (i + 8 <= n) {
    const int m = MoveMask2((v2df)(Load2(values + i) <= wv)) |
                  (MoveMask2((v2df)(Load2(values + i + 2) <= wv)) << 2) |
                  (MoveMask2((v2df)(Load2(values + i + 4) <= wv)) << 4) |
                  (MoveMask2((v2df)(Load2(values + i + 6) <= wv)) << 6);
    if (m != 0xFF) return i + std::countr_one(static_cast<unsigned>(m));
    i += 8;
  }
  while (i + 2 <= n) {
    const int m = MoveMask2((v2df)(Load2(values + i) <= wv));
    if (m != 0x3) return i + std::countr_one(static_cast<unsigned>(m));
    i += 2;
  }
  while (i < n && values[i] <= w) ++i;
  return i;
}

/// Packs the weight lanes of entries i and i+1 (base[2i], base[2i+2])
/// into one 2-lane vector; the doc lanes are never compared.
inline v2df Weights2(const double* base, std::size_t i) {
  return __builtin_shufflevector(Load2(base + 2 * i), Load2(base + 2 * i + 2),
                                 0, 2);
}

template <bool kOrEqual>
std::size_t FirstStride2Sse2(const double* base, std::size_t count, double w) {
  const v2df wv = {w, w};
  std::size_t i = 0;
  while (i + 4 <= count) {
    const v2df a = Weights2(base, i);
    const v2df b = Weights2(base, i + 2);
    const int m = MoveMask2((v2df)(kOrEqual ? (a <= wv) : (a < wv))) |
                  (MoveMask2((v2df)(kOrEqual ? (b <= wv) : (b < wv))) << 2);
    if (m != 0) return i + std::countr_zero(static_cast<unsigned>(m));
    i += 4;
  }
  for (; i < count; ++i) {
    const double v = base[2 * i];
    if (kOrEqual ? (v <= w) : (v < w)) return i;
  }
  return count;
}

std::size_t FirstStride2LessSse2(const double* base, std::size_t count,
                                 double w) {
  return FirstStride2Sse2<false>(base, count, w);
}
std::size_t FirstStride2LessEqualSse2(const double* base, std::size_t count,
                                      double w) {
  return FirstStride2Sse2<true>(base, count, w);
}

// --- AVX2 (4 lanes, runtime-dispatched) ---------------------------------

__attribute__((target("avx2"))) inline v4df Load4(const double* p) {
  v4df v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

__attribute__((target("avx2"))) inline int MoveMask4(v4df m) {
  return __builtin_ia32_movmskpd256(m);
}

__attribute__((target("avx2"))) std::size_t ProbePrefixLessEqualAvx2(
    const double* values, std::size_t n, double w) {
  const v4df wv = {w, w, w, w};
  std::size_t i = 0;
  while (i + 8 <= n) {
    const int m = MoveMask4((v4df)(Load4(values + i) <= wv)) |
                  (MoveMask4((v4df)(Load4(values + i + 4) <= wv)) << 4);
    if (m != 0xFF) return i + std::countr_one(static_cast<unsigned>(m));
    i += 8;
  }
  while (i + 4 <= n) {
    const int m = MoveMask4((v4df)(Load4(values + i) <= wv));
    if (m != 0xF) return i + std::countr_one(static_cast<unsigned>(m));
    i += 4;
  }
  while (i < n && values[i] <= w) ++i;
  return i;
}

/// Weight lanes of entries i .. i+3 gathered into one 4-lane vector.
__attribute__((target("avx2"))) inline v4df Weights4(const double* base,
                                                     std::size_t i) {
  return __builtin_shufflevector(Load4(base + 2 * i), Load4(base + 2 * i + 4),
                                 0, 2, 4, 6);
}

template <bool kOrEqual>
__attribute__((target("avx2"))) std::size_t FirstStride2Avx2(
    const double* base, std::size_t count, double w) {
  const v4df wv = {w, w, w, w};
  std::size_t i = 0;
  while (i + 8 <= count) {
    const v4df a = Weights4(base, i);
    const v4df b = Weights4(base, i + 4);
    const int m = MoveMask4((v4df)(kOrEqual ? (a <= wv) : (a < wv))) |
                  (MoveMask4((v4df)(kOrEqual ? (b <= wv) : (b < wv))) << 4);
    if (m != 0) return i + std::countr_zero(static_cast<unsigned>(m));
    i += 8;
  }
  for (; i < count; ++i) {
    const double v = base[2 * i];
    if (kOrEqual ? (v <= w) : (v < w)) return i;
  }
  return count;
}

__attribute__((target("avx2"))) std::size_t FirstStride2LessAvx2(
    const double* base, std::size_t count, double w) {
  return FirstStride2Avx2<false>(base, count, w);
}
__attribute__((target("avx2"))) std::size_t FirstStride2LessEqualAvx2(
    const double* base, std::size_t count, double w) {
  return FirstStride2Avx2<true>(base, count, w);
}

#endif  // ITA_SIMD_X86

// --- variant tables and dispatch ----------------------------------------

constexpr Kernels kScalarKernels{"scalar", ProbePrefixLessEqualScalar,
                                 FirstStride2LessScalar,
                                 FirstStride2LessEqualScalar};
#if ITA_SIMD_X86
constexpr Kernels kSse2Kernels{"sse2", ProbePrefixLessEqualSse2,
                               FirstStride2LessSse2,
                               FirstStride2LessEqualSse2};
constexpr Kernels kAvx2Kernels{"avx2", ProbePrefixLessEqualAvx2,
                               FirstStride2LessAvx2,
                               FirstStride2LessEqualAvx2};
#endif

const Kernels* ResolveActive() {
  const std::vector<const Kernels*>& available = AvailableKernels();
#if !defined(ITA_SIMD_FORCE_SCALAR)
  // A/B hook: ITA_SIMD_KERNEL=scalar|sse2|avx2 pins the variant (when
  // this CPU can run it) without a rebuild.
  if (const char* env = std::getenv("ITA_SIMD_KERNEL")) {
    for (const Kernels* k : available) {
      if (std::string_view(k->name) == env) return k;
    }
    ITA_LOG(Warning) << "ITA_SIMD_KERNEL=" << env
                     << " names no runnable kernel variant; auto-dispatching";
  }
#endif
  return available.back();  // widest runnable variant (scalar first)
}

}  // namespace

const std::vector<const Kernels*>& AvailableKernels() {
  static const std::vector<const Kernels*> kAvailable = [] {
    std::vector<const Kernels*> v{&kScalarKernels};
#if ITA_SIMD_X86 && !defined(ITA_SIMD_FORCE_SCALAR)
    v.push_back(&kSse2Kernels);
    if (__builtin_cpu_supports("avx2")) v.push_back(&kAvx2Kernels);
#endif
    return v;
  }();
  return kAvailable;
}

const Kernels& ActiveKernels() {
  static const Kernels* const kActive = ResolveActive();
  return *kActive;
}

}  // namespace ita::simd
