// Arrival processes that timestamp the document stream. The paper streams
// the WSJ corpus "following a Poisson process with a mean arrival rate of
// 200 documents/second".

#pragma once

#include "common/clock.h"
#include "common/random.h"
#include "common/types.h"

namespace ita {

/// Homogeneous Poisson process: exponential inter-arrival times with the
/// given mean rate, on the virtual-time axis.
class PoissonProcess {
 public:
  /// `rate_per_second` must be positive.
  PoissonProcess(double rate_per_second, std::uint64_t seed);

  /// Timestamp of the next arrival (strictly increasing).
  Timestamp Next();

  /// The timestamp most recently returned by Next() (start time initially).
  Timestamp Now() const { return now_; }

  double rate_per_second() const { return rate_; }

 private:
  double rate_;
  Timestamp now_ = 0;
  Rng rng_;
};

/// Deterministic fixed-interval arrivals — useful in tests where exact
/// expiration timing matters.
class FixedIntervalProcess {
 public:
  explicit FixedIntervalProcess(Timestamp interval_micros, Timestamp start = 0)
      : interval_(interval_micros), now_(start) {}

  Timestamp Next() {
    now_ += interval_;
    return now_;
  }

  Timestamp Now() const { return now_; }

 private:
  Timestamp interval_;
  Timestamp now_;
};

}  // namespace ita
