#include "stream/corpus.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/logging.h"

namespace ita {

SyntheticCorpusGenerator::SyntheticCorpusGenerator(SyntheticCorpusOptions options)
    : options_(options),
      zipf_(options.dictionary_size, options.zipf_exponent),
      rng_(options.seed) {
  ITA_CHECK(options_.dictionary_size > 0);
  ITA_CHECK(options_.min_length >= 1 && options_.min_length <= options_.max_length);
  count_scratch_.assign(options_.dictionary_size, 0);
}

Document SyntheticCorpusGenerator::NextDocument(Timestamp arrival_time) {
  // Draw the document length, then that many Zipfian tokens.
  const double raw_len =
      rng_.LogNormal(options_.length_lognormal_mu, options_.length_lognormal_sigma);
  std::size_t length = static_cast<std::size_t>(std::llround(raw_len));
  length = std::clamp(length, options_.min_length, options_.max_length);

  touched_scratch_.clear();
  for (std::size_t i = 0; i < length; ++i) {
    const TermId term = static_cast<TermId>(zipf_.Sample(&rng_));
    if (count_scratch_[term] == 0) touched_scratch_.push_back(term);
    ++count_scratch_[term];
  }
  std::sort(touched_scratch_.begin(), touched_scratch_.end());

  TermCounts counts;
  counts.reserve(touched_scratch_.size());
  for (const TermId term : touched_scratch_) {
    counts.emplace_back(term, count_scratch_[term]);
    count_scratch_[term] = 0;  // reset for the next document
  }

  corpus_stats_.AddDocument(counts, length);

  Document doc;
  doc.arrival_time = arrival_time;
  doc.token_count = length;
  doc.composition = BuildComposition(counts, length, options_.scheme,
                                     &corpus_stats_, options_.bm25);
  return doc;
}

QueryWorkloadGenerator::QueryWorkloadGenerator(std::size_t dictionary_size,
                                               QueryWorkloadOptions options)
    : dictionary_size_(dictionary_size), options_(options), rng_(options.seed) {
  ITA_CHECK(dictionary_size_ > 0);
  ITA_CHECK(options_.terms_per_query >= 1);
  ITA_CHECK(options_.k >= 1);
}

Query QueryWorkloadGenerator::NextQuery() {
  std::size_t range = dictionary_size_;
  if (options_.max_term != 0 && options_.max_term < range) {
    range = options_.max_term;
  }
  std::vector<TermId> picks;
  picks.reserve(options_.terms_per_query);
  for (std::size_t i = 0; i < options_.terms_per_query; ++i) {
    picks.push_back(static_cast<TermId>(rng_.UniformInt(0, range - 1)));
  }
  std::sort(picks.begin(), picks.end());

  TermCounts counts;
  for (const TermId term : picks) {
    if (!counts.empty() && counts.back().first == term) {
      ++counts.back().second;
    } else {
      counts.emplace_back(term, 1);
    }
  }

  Query query;
  query.k = options_.k;
  query.terms = BuildQueryVector(counts, options_.scheme);
  return query;
}

std::vector<Query> QueryWorkloadGenerator::MakeQueries(std::size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) queries.push_back(NextQuery());
  return queries;
}

StatusOr<std::vector<Document>> TextFileCorpusReader::ReadAll(const std::string& path,
                                                              Analyzer* analyzer) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open corpus file: " + path);
  }
  std::vector<Document> documents;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Document doc = analyzer->MakeDocument(line);
    if (doc.composition.empty()) continue;  // nothing survived filtering
    documents.push_back(std::move(doc));
  }
  return documents;
}

}  // namespace ita
