#include "stream/corpus.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/logging.h"

namespace ita {

ZipfDocumentSampler::ZipfDocumentSampler(const Options& options)
    : options_(options), zipf_(options.dictionary_size, options.zipf_exponent) {
  ITA_CHECK(options_.dictionary_size > 0);
  ITA_CHECK(options_.min_length >= 1 && options_.min_length <= options_.max_length);
  count_scratch_.assign(options_.dictionary_size, 0);
}

std::size_t ZipfDocumentSampler::SampleBody(Rng* rng,
                                            std::size_t rank_rotation,
                                            TermCounts* counts) {
  // Draw the document length, then that many Zipfian tokens.
  const double raw_len = rng->LogNormal(options_.length_mu, options_.length_sigma);
  std::size_t length = static_cast<std::size_t>(std::llround(raw_len));
  length = std::clamp(length, options_.min_length, options_.max_length);

  touched_scratch_.clear();
  for (std::size_t i = 0; i < length; ++i) {
    const TermId term = static_cast<TermId>(
        (zipf_.Sample(rng) + rank_rotation) % options_.dictionary_size);
    if (count_scratch_[term] == 0) touched_scratch_.push_back(term);
    ++count_scratch_[term];
  }
  std::sort(touched_scratch_.begin(), touched_scratch_.end());

  counts->clear();
  counts->reserve(touched_scratch_.size());
  for (const TermId term : touched_scratch_) {
    counts->emplace_back(term, count_scratch_[term]);
    count_scratch_[term] = 0;  // reset for the next document
  }
  return length;
}

Document ComposeSyntheticDocument(const TermCounts& counts,
                                  std::size_t token_count,
                                  WeightingScheme scheme, CorpusStats* stats,
                                  const Bm25Params& bm25) {
  stats->AddDocument(counts, token_count);
  Document doc;
  doc.token_count = token_count;
  doc.composition = BuildComposition(counts, token_count, scheme, stats, bm25);
  return doc;
}

Query BuildTermQuery(std::vector<TermId> picks, int k, WeightingScheme scheme) {
  std::sort(picks.begin(), picks.end());
  TermCounts counts;
  for (const TermId term : picks) {
    if (!counts.empty() && counts.back().first == term) {
      ++counts.back().second;
    } else {
      counts.emplace_back(term, 1);
    }
  }
  Query query;
  query.k = k;
  query.terms = BuildQueryVector(counts, scheme);
  return query;
}

namespace {

ZipfDocumentSampler::Options SamplerOptions(const SyntheticCorpusOptions& o) {
  ZipfDocumentSampler::Options s;
  s.dictionary_size = o.dictionary_size;
  s.zipf_exponent = o.zipf_exponent;
  s.length_mu = o.length_lognormal_mu;
  s.length_sigma = o.length_lognormal_sigma;
  s.min_length = o.min_length;
  s.max_length = o.max_length;
  return s;
}

}  // namespace

SyntheticCorpusGenerator::SyntheticCorpusGenerator(SyntheticCorpusOptions options)
    : options_(options), sampler_(SamplerOptions(options)), rng_(options.seed) {}

Document SyntheticCorpusGenerator::NextDocument(Timestamp arrival_time) {
  TermCounts counts;
  const std::size_t length = sampler_.SampleBody(&rng_, /*rank_rotation=*/0,
                                                 &counts);
  Document doc = ComposeSyntheticDocument(counts, length, options_.scheme,
                                          &corpus_stats_, options_.bm25);
  doc.arrival_time = arrival_time;
  return doc;
}

QueryWorkloadGenerator::QueryWorkloadGenerator(std::size_t dictionary_size,
                                               QueryWorkloadOptions options)
    : dictionary_size_(dictionary_size), options_(options), rng_(options.seed) {
  ITA_CHECK(dictionary_size_ > 0);
  ITA_CHECK(options_.terms_per_query >= 1);
  ITA_CHECK(options_.k >= 1);
}

Query QueryWorkloadGenerator::NextQuery() {
  std::size_t range = dictionary_size_;
  if (options_.max_term != 0 && options_.max_term < range) {
    range = options_.max_term;
  }
  std::vector<TermId> picks;
  picks.reserve(options_.terms_per_query);
  for (std::size_t i = 0; i < options_.terms_per_query; ++i) {
    picks.push_back(static_cast<TermId>(rng_.UniformInt(0, range - 1)));
  }
  return BuildTermQuery(std::move(picks), options_.k, options_.scheme);
}

std::vector<Query> QueryWorkloadGenerator::MakeQueries(std::size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) queries.push_back(NextQuery());
  return queries;
}

StatusOr<std::vector<Document>> TextFileCorpusReader::ReadAll(const std::string& path,
                                                              Analyzer* analyzer) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open corpus file: " + path);
  }
  std::vector<Document> documents;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Document doc = analyzer->MakeDocument(line);
    if (doc.composition.empty()) continue;  // nothing survived filtering
    documents.push_back(std::move(doc));
  }
  return documents;
}

}  // namespace ita
