#include "stream/document_arena.h"

#include <algorithm>
#include <utility>

#include "persist/wire.h"

namespace ita {

// --- planning ---------------------------------------------------------

StatusOr<EpochPlan> DocumentArena::PlanEpoch(
    const WindowSpec& window, Timestamp last_arrival,
    const std::vector<Document>& batch) const {
  if (batch.empty()) {
    return Status::InvalidArgument("epoch batch may not be empty");
  }
  Timestamp prev = last_arrival;
  for (const Document& doc : batch) {
    if (doc.arrival_time < prev) {
      return Status::InvalidArgument(
          "document arrival times must be non-decreasing");
    }
    prev = doc.arrival_time;
  }

  EpochPlan plan;
  plan.epoch_end = batch.back().arrival_time;

  // Transient prefix: batch documents that would arrive *and* expire
  // within this epoch. They exist only when the batch alone overflows the
  // window — in which case every previously valid document expires too
  // (transients are newer than all of them), leaving the window empty
  // before the survivors are appended.
  if (window.kind == WindowSpec::Kind::kCountBased) {
    if (batch.size() > window.count) {
      plan.first_survivor = batch.size() - window.count;
    }
  } else {
    while (plan.first_survivor < batch.size() &&
           !window.ValidAt(batch[plan.first_survivor].arrival_time,
                           plan.epoch_end)) {
      ++plan.first_survivor;
    }
  }
  plan.arriving = batch.size() - plan.first_survivor;

  // Valid head documents the epoch pushes out: overflow for count-based
  // windows, age for time-based ones.
  if (window.kind == WindowSpec::Kind::kCountBased) {
    if (size() + plan.arriving > window.count) {
      plan.expiring = std::min(size(), size() + plan.arriving - window.count);
    }
  } else {
    const_iterator it = begin();
    while (plan.expiring < size() &&
           !window.ValidAt((*it).arrival_time, plan.epoch_end)) {
      ++plan.expiring;
      ++it;
    }
  }
  return plan;
}

EpochPlan DocumentArena::PlanAdvance(const WindowSpec& window,
                                     Timestamp now) const {
  EpochPlan plan;
  plan.epoch_end = now;
  if (window.kind == WindowSpec::Kind::kTimeBased) {
    const_iterator it = begin();
    while (plan.expiring < size() &&
           !window.ValidAt((*it).arrival_time, now)) {
      ++plan.expiring;
      ++it;
    }
  }
  return plan;
}

// --- mutation ---------------------------------------------------------

DocumentView DocumentArena::PopOldest() {
  ITA_DCHECK(!empty());
  const DocumentView view = ViewOf(head_id_);
  ++head_id_;
  return view;
}

void DocumentArena::PopExpiredInto(std::size_t n,
                                   std::vector<DocumentView>& out) {
  ITA_DCHECK(n <= size());
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(PopOldest());
}

DocumentArena::Segment& DocumentArena::TailSegmentFor(std::size_t incoming,
                                                      bool force_new) {
  if (!force_new && !segments_.empty() &&
      segments_.back().docs.size() < options_.min_segment_docs) {
    return segments_.back();
  }
  if (!free_.empty()) {
    // Already counted in bytes_; Clear() keeps the capacities.
    segments_.push_back(std::move(free_.back()));
    free_.pop_back();
    segments_.back().Clear();
  } else {
    segments_.emplace_back();
  }
  Segment& seg = segments_.back();
  seg.first_id = next_id_;
  const std::size_t before = SegmentBytes(seg);
  seg.docs.reserve(std::max(incoming, options_.min_segment_docs));
  bytes_ += SegmentBytes(seg) - before;
  seg_first_.push_back(seg.first_id);
  return seg;
}

void DocumentArena::Store(Segment& seg, DocId id, const Document& doc) {
  ITA_DCHECK(seg.end_id() == id) << "segment ids must stay gapless";
  (void)id;  // only consumed by the DCHECK above
  StoredDoc meta;
  meta.arrival_time = doc.arrival_time;
  meta.comp_offset = seg.comp.size();
  meta.text_offset = seg.text.size();
  meta.comp_len = static_cast<std::uint32_t>(doc.composition.size());
  meta.text_len = static_cast<std::uint32_t>(doc.text.size());
  meta.token_count = static_cast<std::uint32_t>(doc.token_count);
  seg.comp.insert(seg.comp.end(), doc.composition.begin(),
                  doc.composition.end());
  seg.text.append(doc.text);
  seg.docs.push_back(meta);
}

DocId DocumentArena::AppendEpoch(std::vector<Document>&& batch,
                                 std::size_t first_survivor) {
  ITA_DCHECK(first_survivor <= batch.size());
  const DocId first = next_id_;

  // Transients: ids only (keeping the sequence identical to sequential
  // ingestion). PlanEpoch guarantees every older document expired first,
  // so moving the head past the transient ids empties nothing valid.
  if (first_survivor > 0) {
    ITA_DCHECK(empty()) << "transients imply a fully-expired window";
    next_id_ += first_survivor;
    head_id_ = next_id_;
  }

  const std::size_t surviving = batch.size() - first_survivor;
  if (surviving == 0) return first;

  // A transient prefix introduces an id gap; gaps may not fall inside a
  // segment (id -> offset math), so force a fresh one.
  Segment& seg = TailSegmentFor(surviving, /*force_new=*/first_survivor > 0);

  // Reserve the epoch's exact slab increments up front: one sized growth
  // per slab per epoch, no geometric-doubling slack in steady state.
  std::size_t comp_total = 0;
  std::size_t text_total = 0;
  for (std::size_t i = first_survivor; i < batch.size(); ++i) {
    comp_total += batch[i].composition.size();
    text_total += batch[i].text.size();
  }
  const std::size_t before = SegmentBytes(seg);
  seg.docs.reserve(seg.docs.size() + surviving);
  seg.comp.reserve(seg.comp.size() + comp_total);
  seg.text.reserve(seg.text.size() + text_total);

  for (std::size_t i = first_survivor; i < batch.size(); ++i) {
    Store(seg, next_id_, batch[i]);
    ++next_id_;
  }
  bytes_ += SegmentBytes(seg) - before;
  return first;
}

DocId DocumentArena::Append(Document&& doc) {
  Segment& seg = TailSegmentFor(1, /*force_new=*/false);
  const DocId id = next_id_;
  const std::size_t before = SegmentBytes(seg);
  Store(seg, id, doc);
  bytes_ += SegmentBytes(seg) - before;
  ++next_id_;
  return id;
}

void DocumentArena::TailViewsInto(std::size_t n,
                                  std::vector<DocumentView>& out) const {
  ITA_DCHECK(n <= size());
  out.reserve(out.size() + n);
  for (const_iterator it(this, next_id_ - n); it != end(); ++it) {
    out.push_back(*it);
  }
}

void DocumentArena::ReclaimExpired() {
  // Park at most a couple of retired segments for reuse; release the
  // rest so a shrinking window returns memory instead of hoarding it.
  constexpr std::size_t kMaxFreeSegments = 2;
  while (!segments_.empty() && segments_.front().end_id() <= head_id_) {
    if (free_.size() < kMaxFreeSegments) {
      free_.push_back(std::move(segments_.front()));  // stays in bytes_
    } else {
      bytes_ -= SegmentBytes(segments_.front());      // released for real
    }
    segments_.pop_front();
    seg_first_.erase(seg_first_.begin());
  }
}

// --- read side --------------------------------------------------------

std::size_t DocumentArena::SegmentIndexOf(DocId id) const {
  ITA_DCHECK(!seg_first_.empty());
  const auto it =
      std::upper_bound(seg_first_.begin(), seg_first_.end(), id);
  ITA_DCHECK(it != seg_first_.begin());
  return static_cast<std::size_t>(it - seg_first_.begin()) - 1;
}

DocumentView DocumentArena::ViewInSegment(const Segment& seg,
                                          std::size_t offset) const {
  ITA_DCHECK(offset < seg.docs.size());
  const StoredDoc& meta = seg.docs[offset];
  DocumentView view;
  view.id = seg.first_id + offset;
  view.arrival_time = meta.arrival_time;
  view.token_count = meta.token_count;
  view.composition = std::span<const TermWeight>(
      seg.comp.data() + meta.comp_offset, meta.comp_len);
  view.text = std::string_view(seg.text.data() + meta.text_offset,
                               meta.text_len);
  return view;
}

DocumentView DocumentArena::ViewOf(DocId id) const {
  const Segment& seg = segments_[SegmentIndexOf(id)];
  ITA_DCHECK(id >= seg.first_id && id < seg.end_id());
  return ViewInSegment(seg, static_cast<std::size_t>(id - seg.first_id));
}

std::optional<DocumentView> DocumentArena::Get(DocId id) const {
  if (id < head_id_ || id >= next_id_) return std::nullopt;
  return ViewOf(id);
}


// --- persistence (DESIGN.md Â§13) -----------------------------------------

void DocumentArena::SerializeTo(std::string* out) const {
  persist::WireWriter w(out);
  w.PutU64(head_id_);
  w.PutU64(next_id_);
  w.PutU64(segments_.size());
  for (const Segment& seg : segments_) {
    w.PutU64(seg.first_id);
    w.PutU64(seg.docs.size());
    for (const StoredDoc& doc : seg.docs) {
      w.PutI64(doc.arrival_time);
      w.PutU64(doc.comp_offset);
      w.PutU64(doc.text_offset);
      w.PutU32(doc.comp_len);
      w.PutU32(doc.text_len);
      w.PutU32(doc.token_count);
    }
    w.PutU64(seg.comp.size());
    for (const TermWeight& tw : seg.comp) {
      w.PutU32(tw.term);
      w.PutDouble(tw.weight);
    }
    w.PutBytes(seg.text);
  }
}

Status DocumentArena::DeserializeFrom(std::string_view bytes) {
  if (!segments_.empty() || head_id_ != 1 || next_id_ != 1) {
    return Status::FailedPrecondition(
        "arena restore requires a freshly constructed arena");
  }
  persist::WireReader r(bytes);
  ITA_RETURN_NOT_OK(r.ReadU64(&head_id_));
  ITA_RETURN_NOT_OK(r.ReadU64(&next_id_));
  std::uint64_t n_segments = 0;
  ITA_RETURN_NOT_OK(r.ReadCount(&n_segments, 24));
  DocId prev_end = 0;
  for (std::uint64_t s = 0; s < n_segments; ++s) {
    Segment seg;
    ITA_RETURN_NOT_OK(r.ReadU64(&seg.first_id));
    if (s > 0 && seg.first_id < prev_end) {
      return Status::IoError("arena: segment first_id goes backwards");
    }
    std::uint64_t n_docs = 0;
    ITA_RETURN_NOT_OK(r.ReadCount(&n_docs, 36));
    seg.docs.reserve(n_docs);
    for (std::uint64_t i = 0; i < n_docs; ++i) {
      StoredDoc doc;
      ITA_RETURN_NOT_OK(r.ReadI64(&doc.arrival_time));
      ITA_RETURN_NOT_OK(r.ReadU64(&doc.comp_offset));
      ITA_RETURN_NOT_OK(r.ReadU64(&doc.text_offset));
      ITA_RETURN_NOT_OK(r.ReadU32(&doc.comp_len));
      ITA_RETURN_NOT_OK(r.ReadU32(&doc.text_len));
      ITA_RETURN_NOT_OK(r.ReadU32(&doc.token_count));
      seg.docs.push_back(doc);
    }
    std::uint64_t n_comp = 0;
    ITA_RETURN_NOT_OK(r.ReadCount(&n_comp, 12));
    seg.comp.reserve(n_comp);
    for (std::uint64_t i = 0; i < n_comp; ++i) {
      TermWeight tw;
      ITA_RETURN_NOT_OK(r.ReadU32(&tw.term));
      ITA_RETURN_NOT_OK(r.ReadDouble(&tw.weight));
      seg.comp.push_back(tw);
    }
    ITA_RETURN_NOT_OK(r.ReadString(&seg.text));
    for (const StoredDoc& doc : seg.docs) {
      if (doc.comp_offset + doc.comp_len > seg.comp.size() ||
          doc.text_offset + doc.text_len > seg.text.size()) {
        return Status::IoError("arena: document offsets exceed segment slabs");
      }
    }
    prev_end = seg.end_id();
    bytes_ += SegmentBytes(seg);
    seg_first_.push_back(seg.first_id);
    segments_.push_back(std::move(seg));
  }
  ITA_RETURN_NOT_OK(r.ExpectEnd());
  if (!segments_.empty() &&
      (head_id_ < segments_.front().first_id ||
       next_id_ != segments_.back().end_id())) {
    return Status::IoError("arena: id bounds disagree with segments");
  }
  if (segments_.empty() && head_id_ != next_id_) {
    return Status::IoError("arena: id bounds disagree with segments");
  }
  return Status::OK();
}

// --- iterator ---------------------------------------------------------

DocumentArena::const_iterator::const_iterator(const DocumentArena* arena,
                                              DocId id)
    : arena_(arena), id_(id) {
  if (arena_ != nullptr && id_ < arena_->next_id_) {
    seg_index_ = arena_->SegmentIndexOf(id_);
  }
}

DocumentView DocumentArena::const_iterator::operator*() const {
  const Segment& seg = arena_->segments_[seg_index_];
  return arena_->ViewInSegment(seg,
                               static_cast<std::size_t>(id_ - seg.first_id));
}

DocumentArena::const_iterator& DocumentArena::const_iterator::operator++() {
  ++id_;
  // Valid ids are gapless across segments (transient gaps always sit
  // below the head), so the next document is either the next offset of
  // this segment or offset 0 of the next.
  if (id_ < arena_->next_id_ &&
      id_ >= arena_->segments_[seg_index_].end_id()) {
    ++seg_index_;
  }
  return *this;
}

}  // namespace ita
