// Sliding-window specifications (Section II, citing Babcock et al., PODS
// 2002): count-based windows keep the N most recent documents; time-based
// windows keep the documents that arrived within the last W time units.

#pragma once

#include <cstddef>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace ita {

struct WindowSpec {
  enum class Kind { kCountBased, kTimeBased };

  Kind kind = Kind::kCountBased;
  /// Count-based: number of valid documents N (>= 1).
  std::size_t count = 1000;
  /// Time-based: window length in microseconds (>= 1).
  Timestamp duration = 0;

  static WindowSpec CountBased(std::size_t n) {
    WindowSpec spec;
    spec.kind = Kind::kCountBased;
    spec.count = n;
    return spec;
  }

  static WindowSpec TimeBased(Timestamp duration_micros) {
    WindowSpec spec;
    spec.kind = Kind::kTimeBased;
    spec.duration = duration_micros;
    return spec;
  }

  Status Validate() const;

  /// True if a document that arrived at `arrival` is still valid at `now`
  /// under a time-based window. (Count-based validity is positional.)
  ///
  /// The window is the half-open interval **(now - duration, now]**:
  /// a document is valid for exactly `duration` microseconds, expiring at
  /// the instant `now == arrival + duration` — so `arrival == now -
  /// duration` reads as expired, never as valid. Timestamps are signed,
  /// so `now < duration` (a window reaching past the virtual epoch) makes
  /// `now - duration` negative and every non-negative arrival valid —
  /// there is no unsigned wrap-around to guard. Both boundaries are
  /// pinned by tests/stream/window_test.cc (TimeBasedBoundary*).
  bool ValidAt(Timestamp arrival, Timestamp now) const {
    return arrival > now - duration;
  }

  std::string ToString() const;
};

}  // namespace ita
