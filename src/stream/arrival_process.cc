#include "stream/arrival_process.h"

#include "common/logging.h"

namespace ita {

PoissonProcess::PoissonProcess(double rate_per_second, std::uint64_t seed)
    : rate_(rate_per_second), rng_(seed) {
  ITA_CHECK(rate_per_second > 0.0) << "arrival rate must be positive";
}

Timestamp PoissonProcess::Next() {
  const double gap_seconds = rng_.Exponential(rate_);
  Timestamp gap = SecondsToMicros(gap_seconds);
  if (gap < 1) gap = 1;  // keep timestamps strictly increasing
  now_ += gap;
  return now_;
}

}  // namespace ita
