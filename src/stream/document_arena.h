// The epoch-segmented document arena (DESIGN.md §8): the single owner of
// the sliding window's document bytes, shared read-only by every consumer
// — the sequential server owns a private one, the sharded execution
// engine owns ONE for all of its shards (shards hold DocumentViews, so
// window memory is constant in the shard count instead of multiplied by
// it).
//
// Layout: a FIFO ring of segments, each holding a run of consecutively
// ingested documents with all of their compositions, texts and metadata
// in three contiguous slabs (one metadata vector, one TermWeight slab,
// one text slab). A batch epoch lands in one segment; tiny epochs (the
// per-event path) coalesce into the open tail segment until it reaches
// `min_segment_docs`. Appending a whole epoch therefore costs O(bytes
// copied) with a constant number of slab growths — not one heap
// allocation per document, as the former per-shard deque-of-Document
// stores paid.
//
// Ids are sequential with arrival order (the scheme of the former
// index/DocumentStore), so id → view lookup is positional: a range check
// against [head_id, next_id), an upper_bound over the segment directory
// (at most window / min_segment_docs entries — constant in the window
// size), then offset arithmetic inside the segment.
//
// Expiry is logical-first: popping the oldest documents bumps the head
// id (O(1) per document, no data movement); segment memory is reclaimed
// only when EVERY document in a head segment has left the window, and
// reclaimed segments park on a free list for reuse, so a steady-state
// window recycles a bounded ring of slabs.
//
// View validity (the aliasing contract every consumer relies on):
//   * a view of a VALID document stays valid until a later AppendEpoch/
//     Append call (which may grow the open tail segment's slabs) or until
//     its segment is reclaimed — within an epoch, arrive-phase views are
//     stable because the driver appends before fanning out and mutates
//     nothing until the phase barrier;
//   * a view of a popped (expired) document stays readable until the
//     next ReclaimExpired() call — the expire phase consumes its views
//     strictly before the driver reclaims at the epoch boundary.
//
// Thread safety: mutation (PopOldest/PopExpiredInto/Append/AppendEpoch/
// ReclaimExpired) is single-writer — only the epoch driver calls it,
// never inside a phase. Between mutations, any number of threads may
// read concurrently (Get, iteration, views); the sharded engine's phase
// barrier orders every mutation against every shard read
// (tests/exec/document_arena_parallel_test.cc runs this under
// ThreadSanitizer).

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/types.h"
#include "stream/document.h"
#include "stream/window.h"

namespace ita {

/// The split of one ingest epoch against the current window contents,
/// computed by DocumentArena::PlanEpoch (const — a failed plan mutates
/// nothing). The epoch driver executes the plan: pop `expiring` head
/// documents, run the expire phase, append the batch (`first_survivor`
/// transients receive ids only), run the arrive phase, reclaim. A
/// pure-expiry epoch (AdvanceTime) is a plan with only `epoch_end` and
/// `expiring` set.
struct EpochPlan {
  /// Arrival time of the epoch's last document (or the AdvanceTime target).
  Timestamp epoch_end = 0;
  /// Batch documents before this index are transient: they arrive *and*
  /// expire within the epoch (possible only when the batch alone
  /// overflows the window). They receive ids — keeping the id sequence
  /// identical to sequential ingestion — but are never stored and never
  /// reach the strategy hooks, since their net effect on every result is
  /// nil.
  std::size_t first_survivor = 0;
  /// Number of surviving arrivals (batch size minus the transients).
  std::size_t arriving = 0;
  /// Number of currently valid head documents the epoch pushes out of the
  /// window.
  std::size_t expiring = 0;
};

class DocumentArena {
 public:
  struct Options {
    /// Tail segments accept further epochs until they hold at least this
    /// many documents — the coalescing floor that keeps the per-event
    /// ingest path from creating one segment per document.
    std::size_t min_segment_docs = 256;
  };

  DocumentArena() = default;
  explicit DocumentArena(Options options) : options_(options) {
    ITA_CHECK(options_.min_segment_docs >= 1);
  }

  DocumentArena(const DocumentArena&) = delete;
  DocumentArena& operator=(const DocumentArena&) = delete;

  // --- Planning -------------------------------------------------------

  /// Validates `batch` (non-empty, arrival times non-decreasing and
  /// >= `last_arrival`) and computes the epoch split against the current
  /// window contents. Const: a failed plan leaves the arena — and every
  /// consumer sharing it — untouched.
  StatusOr<EpochPlan> PlanEpoch(const WindowSpec& window,
                                Timestamp last_arrival,
                                const std::vector<Document>& batch) const;

  /// The pure-expiry plan of an AdvanceTime(now) epoch: how many head
  /// documents fall out of a time-based window at `now`. Count-based
  /// windows expire nothing without arrivals.
  EpochPlan PlanAdvance(const WindowSpec& window, Timestamp now) const;

  // --- Mutation (epoch driver only — see the thread-safety contract) --

  /// Logically expires the oldest valid document and returns its view,
  /// readable until the next ReclaimExpired(). Requires !empty().
  DocumentView PopOldest();

  /// PopOldest() `n` times, appending the views to `out` (oldest first;
  /// `out` is not cleared — callers reuse scratch vectors).
  void PopExpiredInto(std::size_t n, std::vector<DocumentView>& out);

  /// Appends one epoch: assigns ids to all `batch` documents in order
  /// (returning the first — ids are sequential, so batch[i] received
  /// `first + i`) and stores the documents from `first_survivor` on. The
  /// transient prefix is id-only: PlanEpoch guarantees the window is
  /// empty by then, and the head id moves past the transients so they
  /// are never valid. Invalidates views into the open tail segment.
  DocId AppendEpoch(std::vector<Document>&& batch,
                    std::size_t first_survivor);

  /// Appends a single surviving document (an epoch of one, the per-event
  /// ingest path) and returns its id. Invalidates views into the open
  /// tail segment.
  DocId Append(Document&& doc);

  /// Views of the `n` newest valid documents, oldest first — the arrive
  /// phase's view span, taken right after AppendEpoch. Appends to `out`.
  void TailViewsInto(std::size_t n, std::vector<DocumentView>& out) const;

  /// Frees head segments whose every document has been popped, parking
  /// them on the free list for reuse. Views of popped documents die here;
  /// views of valid documents survive. Called once per epoch, after the
  /// arrive phase.
  void ReclaimExpired();

  // --- Read side (any thread between mutations) -----------------------

  /// Number of valid (in-window) documents.
  std::size_t size() const { return static_cast<std::size_t>(next_id_ - head_id_); }
  bool empty() const { return head_id_ == next_id_; }

  /// Id that will be assigned to the next appended document.
  DocId next_id() const { return next_id_; }

  /// View of the valid document with the given id, or nullopt if it never
  /// existed, has expired, or is not yet ingested.
  std::optional<DocumentView> Get(DocId id) const;

  bool Contains(DocId id) const { return Get(id).has_value(); }

  /// Oldest (next-to-expire) valid document. Requires !empty().
  DocumentView Oldest() const {
    ITA_DCHECK(!empty());
    return ViewOf(head_id_);
  }

  /// Forward iteration over the valid documents, oldest first, yielding
  /// DocumentViews by value. The iterator carries a segment cursor, so a
  /// full-window scan (Naive's refill, the oracle) costs O(1) per
  /// document — no per-step directory search. Invalidated, like views,
  /// by arena mutation.
  class const_iterator {
   public:
    using value_type = DocumentView;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    const_iterator(const DocumentArena* arena, DocId id);

    DocumentView operator*() const;
    const_iterator& operator++();
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++(*this);
      return copy;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.id_ == b.id_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.id_ != b.id_;
    }

   private:
    const DocumentArena* arena_ = nullptr;
    DocId id_ = 0;
    std::size_t seg_index_ = 0;  ///< segment holding id_ (unused at end())
  };

  const_iterator begin() const { return const_iterator(this, head_id_); }
  const_iterator end() const { return const_iterator(this, next_id_); }

  // --- Persistence (DESIGN.md §13) ------------------------------------

  /// Appends the arena's canonical serialization to `out`: the id
  /// bounds plus every live segment verbatim (metadata records,
  /// composition slab, text slab — including popped-but-unreclaimed head
  /// records, which positional lookup needs). The free list is a cache
  /// and is deliberately not persisted. Call only between epochs.
  void SerializeTo(std::string* out) const;

  /// Rebuilds the arena from SerializeTo bytes. Requires a freshly
  /// constructed arena (FailedPrecondition otherwise); typed IoError on
  /// truncated or malformed input. Byte gauges are recomputed from the
  /// restored slabs, so document_bytes() may legitimately differ from
  /// the serializing arena's figure (capacity history is not state).
  Status DeserializeFrom(std::string_view bytes);

  // --- Memory gauges (DESIGN.md §8) -----------------------------------

  /// Live segments currently backing the window (excluding the free list).
  std::size_t segment_count() const { return segments_.size(); }

  /// Reclaimed segments parked for reuse.
  std::size_t free_segment_count() const { return free_.size(); }

  /// Total bytes held by the arena: metadata, composition and text slab
  /// capacities of every live and parked segment, maintained
  /// incrementally (O(1) — safe to read on the per-event path). This is
  /// THE document-bytes figure of the engine — with a shared arena it is
  /// constant in the shard count.
  std::size_t document_bytes() const { return bytes_; }

 private:
  /// Fixed-size per-document metadata; compositions and texts live in the
  /// owning segment's slabs at the recorded offsets.
  struct StoredDoc {
    Timestamp arrival_time = 0;
    std::uint64_t comp_offset = 0;
    std::uint64_t text_offset = 0;
    std::uint32_t comp_len = 0;
    std::uint32_t text_len = 0;
    std::uint32_t token_count = 0;
  };

  /// One ring entry: a run of consecutively ingested documents (ids
  /// first_id .. first_id + docs.size() - 1, no gaps) with slab-backed
  /// payloads.
  struct Segment {
    DocId first_id = 0;
    std::vector<StoredDoc> docs;
    std::vector<TermWeight> comp;
    std::string text;

    DocId end_id() const { return first_id + docs.size(); }
    void Clear() {
      docs.clear();
      comp.clear();
      text.clear();
    }
  };

  /// The segment to append `incoming` documents into: the open tail if it
  /// exists and `force_new` is false, else a fresh segment (recycled from
  /// the free list when possible). Keeps bytes_ consistent.
  Segment& TailSegmentFor(std::size_t incoming, bool force_new);

  /// Current slab-capacity bytes of one segment (the unit bytes_ sums).
  static std::size_t SegmentBytes(const Segment& seg) {
    return seg.docs.capacity() * sizeof(StoredDoc) +
           seg.comp.capacity() * sizeof(TermWeight) + seg.text.capacity();
  }

  /// Copies one owning record into `seg`'s slabs under id `id`.
  void Store(Segment& seg, DocId id, const Document& doc);

  /// View of document `id`, which must be stored (head_id_ <= id is NOT
  /// required: popped-but-unreclaimed documents resolve too).
  DocumentView ViewOf(DocId id) const;

  /// View of the document at `offset` within `seg`.
  DocumentView ViewInSegment(const Segment& seg, std::size_t offset) const;

  /// Index into segments_ of the segment holding `id` (which must be
  /// stored): an upper_bound over the contiguous first-id directory.
  std::size_t SegmentIndexOf(DocId id) const;

  Options options_;
  std::deque<Segment> segments_;   ///< the ring, oldest first
  /// Contiguous mirror of segments_[i].first_id — the binary-searched
  /// id → segment directory (a few KB even at 10^5-document windows).
  std::vector<DocId> seg_first_;
  std::vector<Segment> free_;      ///< reclaimed segments kept for reuse
  DocId head_id_ = 1;              ///< oldest valid id
  DocId next_id_ = 1;              ///< id of the next arrival
  /// Sum of SegmentBytes over segments_ and free_, updated at every
  /// capacity change so document_bytes() is O(1).
  std::size_t bytes_ = 0;
};

}  // namespace ita
