#include "stream/document.h"

#include <algorithm>

namespace ita {

double CompositionWeight(std::span<const TermWeight> composition, TermId term) {
  const auto it = std::lower_bound(
      composition.begin(), composition.end(), term,
      [](const TermWeight& tw, TermId t) { return tw.term < t; });
  if (it != composition.end() && it->term == term) return it->weight;
  return 0.0;
}

}  // namespace ita
