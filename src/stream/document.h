// The stream element of Section II: a text document with its composition
// list (one <term, weight> pair per distinct term) and arrival timestamp.
//
// Two representations, split along the ownership boundary (DESIGN.md §8):
//
//   * Document      — the owning ingest-side record: producers and the
//     analysis pipeline build it, the window arena consumes it. Heap-
//     backed (vector composition, string text), moved along the ingest
//     path, never stored per shard.
//   * DocumentView  — the trivially copyable read-side handle every
//     consumer below the arena works with: a span over the composition
//     slab and a string_view over the text slab of the owning
//     stream::DocumentArena segment. Views are what the strategy hooks,
//     result maintenance and shards see; copying one copies 64 bytes,
//     not the document.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "common/types.h"

namespace ita {

/// A streamed document (the owning record). `id` is assigned by the server
/// at ingestion (strictly increasing with arrival order); producers leave
/// it at kInvalidDocId. `composition` is sorted by ascending TermId with
/// strictly positive weights — see ita::BuildComposition.
struct Document {
  DocId id = kInvalidDocId;
  Timestamp arrival_time = 0;
  Composition composition;
  std::string text;            ///< optional raw payload (kept for display)
  std::size_t token_count = 0; ///< post-filtering token count (BM25 length)
};

/// A non-owning, trivially copyable view of a stored document. The spans
/// alias the owning arena's segment slabs; see stream/document_arena.h
/// for the exact validity window. Pass by value — it is two
/// pointers-plus-lengths and a header, cheaper to copy than to indirect
/// through.
struct DocumentView {
  DocId id = kInvalidDocId;
  Timestamp arrival_time = 0;
  std::size_t token_count = 0;              ///< post-filtering token count
  std::span<const TermWeight> composition;  ///< sorted by ascending TermId
  std::string_view text;                    ///< optional raw payload
};

/// Binary-searches a composition list for `term`; returns the weight or
/// 0.0 when the document does not contain the term.
double CompositionWeight(std::span<const TermWeight> composition, TermId term);

}  // namespace ita
