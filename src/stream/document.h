// The stream element of Section II: a text document with its composition
// list (one <term, weight> pair per distinct term) and arrival timestamp.

#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"

namespace ita {

/// A streamed document. `id` is assigned by the server at ingestion
/// (strictly increasing with arrival order); producers leave it at
/// kInvalidDocId. `composition` is sorted by ascending TermId with
/// strictly positive weights — see ita::BuildComposition.
struct Document {
  DocId id = kInvalidDocId;
  Timestamp arrival_time = 0;
  Composition composition;
  std::string text;            ///< optional raw payload (kept for display)
  std::size_t token_count = 0; ///< post-filtering token count (BM25 length)
};

/// Binary-searches a composition list for `term`; returns the weight or
/// 0.0 when the document does not contain the term.
double CompositionWeight(const Composition& composition, TermId term);

}  // namespace ita
