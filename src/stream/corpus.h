// Workload sources.
//
// The paper streams the TREC WSJ corpus (172,961 Wall Street Journal
// articles, 181,978-term dictionary after stopword removal). That corpus
// is licensed and cannot ship with this repository, so the benchmark
// harness uses SyntheticCorpusGenerator: a Zipfian document source
// calibrated to WSJ's first-order statistics (dictionary size, term-
// frequency skew, document length distribution). DESIGN.md §3 records the
// substitution rationale. TextFileCorpusReader lets anyone with the real
// collection (or any text file) stream it instead.

#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/query.h"
#include "stream/document.h"
#include "text/analyzer.h"
#include "text/weighting.h"

namespace ita {

/// Reusable Zipfian document-body sampler — the one implementation of
/// "draw a log-normal token count, then that many Zipf-ranked terms"
/// shared by the WSJ-calibrated corpus generator below and the scenario
/// simulator (sim/event_stream.h). Not thread-safe (owns the counting
/// scratch).
class ZipfDocumentSampler {
 public:
  struct Options {
    /// Dictionary size; term ids are 0..dictionary_size-1 (must be > 0).
    std::size_t dictionary_size = 0;
    /// Zipf exponent of the term (unigram) distribution.
    double zipf_exponent = 1.0;
    /// Log-normal token-count parameters, clamped to the bounds below.
    double length_mu = 0.0;
    double length_sigma = 0.0;
    std::size_t min_length = 1;
    std::size_t max_length = 1;
  };

  explicit ZipfDocumentSampler(const Options& options);

  /// Samples one document body into `counts` (sorted by TermId, one
  /// entry per distinct term) and returns the token count. Sampled Zipf
  /// ranks become term ids via (rank + rank_rotation) % dictionary —
  /// identity at 0; the simulator rotates it for topic drift.
  std::size_t SampleBody(Rng* rng, std::size_t rank_rotation,
                         TermCounts* counts);

  const Options& options() const { return options_; }

 private:
  Options options_;
  ZipfDistribution zipf_;
  std::vector<std::uint32_t> count_scratch_;  // termid -> count, lazily cleared
  std::vector<TermId> touched_scratch_;
};

/// Shared tail of synthetic document generation: feeds `stats` with the
/// document and turns the counts into a weighted Document (arrival time
/// and id left for the caller). `token_count` is what BM25 length
/// normalization sees — callers that inject extra terms (the simulator's
/// hot-term floods) account them here explicitly.
Document ComposeSyntheticDocument(const TermCounts& counts,
                                  std::size_t token_count,
                                  WeightingScheme scheme, CorpusStats* stats,
                                  const Bm25Params& bm25 = {});

/// A query from raw term picks (drawn with replacement — duplicates
/// aggregate into term frequencies), weighted under `scheme`.
Query BuildTermQuery(std::vector<TermId> picks, int k, WeightingScheme scheme);

struct SyntheticCorpusOptions {
  /// Dictionary size; term ids are 0..dictionary_size-1 where id == Zipf
  /// rank (0 is the most frequent term). Default mirrors WSJ.
  std::size_t dictionary_size = 181'978;
  /// Zipf exponent of the term (unigram) distribution. English text is
  /// close to 1.0 (Zipf's law).
  double zipf_exponent = 1.0;
  /// Document token counts are log-normal; defaults give a median of ~260
  /// tokens, matching WSJ articles (~400 raw tokens) after stopword
  /// removal.
  double length_lognormal_mu = 5.56;
  double length_lognormal_sigma = 0.6;
  std::size_t min_length = 32;
  std::size_t max_length = 2'000;
  WeightingScheme scheme = WeightingScheme::kCosine;
  Bm25Params bm25;
  std::uint64_t seed = 42;
};

/// Deterministic stream of synthetic documents. Not thread-safe.
class SyntheticCorpusGenerator {
 public:
  explicit SyntheticCorpusGenerator(SyntheticCorpusOptions options);

  /// Produces the next document (composition list only, no text payload).
  /// `arrival_time` is stamped on the result; ids are left unassigned.
  Document NextDocument(Timestamp arrival_time = 0);

  const SyntheticCorpusOptions& options() const { return options_; }

  /// Corpus statistics accumulated over the generated documents (feeds
  /// BM25 weighting when options().scheme == kBm25).
  const CorpusStats& corpus_stats() const { return corpus_stats_; }

 private:
  SyntheticCorpusOptions options_;
  ZipfDocumentSampler sampler_;
  Rng rng_;
  CorpusStats corpus_stats_;
};

struct QueryWorkloadOptions {
  /// Terms per query, drawn uniformly at random from the dictionary with
  /// replacement (paper Section IV: "terms selected randomly from the
  /// dictionary"); duplicates aggregate into term frequencies.
  std::size_t terms_per_query = 10;
  int k = 10;
  WeightingScheme scheme = WeightingScheme::kCosine;
  std::uint64_t seed = 4242;
  /// When nonzero, draw terms only from the `max_term` most frequent
  /// dictionary entries (term id == Zipf rank). Models "hot" queries over
  /// popular vocabulary — every arriving document matches several queries,
  /// the regime where ITA's threshold roll-up pays off most.
  std::size_t max_term = 0;
};

/// Generates random queries over the same term-id space as a synthetic
/// corpus with the given dictionary size.
class QueryWorkloadGenerator {
 public:
  QueryWorkloadGenerator(std::size_t dictionary_size, QueryWorkloadOptions options);

  Query NextQuery();

  /// Convenience: a batch of `count` queries.
  std::vector<Query> MakeQueries(std::size_t count);

 private:
  std::size_t dictionary_size_;
  QueryWorkloadOptions options_;
  Rng rng_;
};

/// Reads a plain-text corpus: every non-empty line of the file becomes one
/// document, analyzed through `analyzer`. Suitable for newline-delimited
/// exports of TREC collections, news dumps, mail archives, etc.
class TextFileCorpusReader {
 public:
  /// Loads and analyzes the whole file. Arrival times are left at 0 for
  /// the caller (or an ArrivalProcess) to assign.
  static StatusOr<std::vector<Document>> ReadAll(const std::string& path,
                                                 Analyzer* analyzer);
};

}  // namespace ita
