#include "stream/window.h"

#include <sstream>

namespace ita {

Status WindowSpec::Validate() const {
  switch (kind) {
    case Kind::kCountBased:
      if (count < 1) {
        return Status::InvalidArgument("count-based window requires N >= 1");
      }
      return Status::OK();
    case Kind::kTimeBased:
      if (duration < 1) {
        return Status::InvalidArgument(
            "time-based window requires a positive duration");
      }
      return Status::OK();
  }
  return Status::Internal("unknown window kind");
}

std::string WindowSpec::ToString() const {
  std::ostringstream os;
  if (kind == Kind::kCountBased) {
    os << "count:" << count;
  } else {
    os << "time:" << duration << "us";
  }
  return os.str();
}

}  // namespace ita
