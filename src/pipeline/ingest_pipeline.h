// The staged ingest pipeline: raw text -> tokens -> stopword filtering ->
// optional stemming -> term interning -> weighting -> weighted term
// vectors (composition lists / query vectors).
//
// The paper's stream elements arrive at the monitoring server already
// carrying composition lists — analysis happens upstream. IngestPipeline
// is that upstream stage, factored out of the server layers so it can be
// scaled independently (sharded, run on dedicated threads) and so a whole
// epoch's worth of documents can be analyzed in one pass:
//
//   * AnalyzeDocument — one document, the classic path;
//   * AnalyzeBatch    — a batch of raw documents in one pass, reusing the
//     frequency-counting and stemming scratch buffers across documents
//     (no per-document allocation in steady state). The result feeds
//     ContinuousSearchServer::IngestBatch.
//
// One pipeline instance owns the Vocabulary and corpus statistics, so
// documents and queries that are matched against each other must go
// through the same pipeline. text/analyzer.h remains as a thin facade
// over this class.

#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/query.h"
#include "stream/document.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "text/weighting.h"

namespace ita {

/// A not-yet-analyzed stream element: the raw text plus the arrival
/// timestamp the producer observed.
struct RawDocument {
  std::string text;
  Timestamp arrival_time = 0;
};

/// The analysis → execution handoff: one epoch's worth of documents,
/// analyzed exactly once AND stored exactly once. The consuming epoch
/// driver — sequential ContinuousSearchServer or exec::ShardedServer —
/// moves the weighted vectors into its window arena
/// (stream::DocumentArena); under sharding every shard then reads
/// DocumentViews of that one copy, so neither analysis nor document
/// memory scales with the shard count (DESIGN.md §8).
struct AnalyzedBatch {
  std::vector<Document> documents;

  bool empty() const { return documents.empty(); }
  std::size_t size() const { return documents.size(); }
  /// Arrival time of the last document — the end of the epoch this batch
  /// forms. Requires !empty().
  Timestamp epoch_end() const { return documents.back().arrival_time; }
};

struct IngestPipelineOptions {
  TokenizerOptions tokenizer;
  /// Drop stopwords (the built-in English list unless `stopwords` is set).
  bool remove_stopwords = true;
  /// Apply the Porter stemmer after stopword removal. Off by default — the
  /// paper's WSJ dictionary (181,978 terms) is unstemmed.
  bool stem = false;
  /// How term frequencies become impact weights.
  WeightingScheme scheme = WeightingScheme::kCosine;
  Bm25Params bm25;
  /// Keep the raw text inside produced Documents (display convenience).
  bool keep_text = true;
  /// Custom stopword set; null selects StopwordSet::English().
  const StopwordSet* stopwords = nullptr;
};

class IngestPipeline {
 public:
  explicit IngestPipeline(IngestPipelineOptions options = {});

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Analyzes one document. The result's `id` is unset (the server assigns
  /// it at ingestion); `arrival_time` is passed through. Also feeds the
  /// running corpus statistics (used by BM25 weighting).
  Document AnalyzeDocument(std::string_view text, Timestamp arrival_time = 0);

  /// Analyzes a batch of raw documents in one pass, preserving order.
  /// Equivalent to calling AnalyzeDocument on each element in sequence
  /// (identical output documents and corpus-statistics updates) but with
  /// the analysis scratch state shared across the batch.
  std::vector<Document> AnalyzeBatch(const std::vector<RawDocument>& batch);

  /// AnalyzeBatch packaged as the epoch handoff consumed by the execution
  /// layer (sequential IngestBatch or the sharded engine's broadcast).
  AnalyzedBatch AnalyzeEpoch(const std::vector<RawDocument>& batch) {
    return AnalyzedBatch{AnalyzeBatch(batch)};
  }

  /// Analyzes a query string into a Query with result size `k`. Fails with
  /// InvalidArgument if no effective terms remain after filtering or k < 1.
  StatusOr<Query> AnalyzeQuery(std::string_view text, int k);

  const Vocabulary& vocabulary() const { return vocabulary_; }
  Vocabulary& vocabulary() { return vocabulary_; }
  const CorpusStats& corpus_stats() const { return corpus_stats_; }
  const IngestPipelineOptions& options() const { return options_; }

 private:
  /// Tokenize + filter + stem + intern into sorted term counts; returns the
  /// number of tokens that survived filtering. Uses the shared scratch
  /// buffers, so at most one call may be in flight.
  std::size_t CountTerms(std::string_view text, TermCounts* counts);

  IngestPipelineOptions options_;
  Tokenizer tokenizer_;
  Vocabulary vocabulary_;
  CorpusStats corpus_stats_;

  // Scratch reused across documents (and across a whole AnalyzeBatch):
  // term-frequency accumulator and stemmer buffer keep their capacity.
  std::unordered_map<TermId, std::uint32_t> freq_scratch_;
  std::string stem_scratch_;
};

}  // namespace ita
