#include "pipeline/ingest_pipeline.h"

#include <algorithm>

#include "text/porter_stemmer.h"

namespace ita {

IngestPipeline::IngestPipeline(IngestPipelineOptions options)
    : options_(options), tokenizer_(options.tokenizer) {}

std::size_t IngestPipeline::CountTerms(std::string_view text, TermCounts* counts) {
  const StopwordSet& stopwords =
      options_.stopwords != nullptr ? *options_.stopwords : StopwordSet::English();

  freq_scratch_.clear();
  std::size_t token_count = 0;
  tokenizer_.ForEachToken(text, [&](std::string_view token) {
    if (options_.remove_stopwords && stopwords.Contains(token)) return;
    TermId id;
    if (options_.stem) {
      stem_scratch_.assign(token);
      PorterStemmer::StemInPlace(&stem_scratch_);
      id = vocabulary_.Intern(stem_scratch_);
    } else {
      id = vocabulary_.Intern(token);
    }
    ++freq_scratch_[id];
    ++token_count;
  });

  counts->assign(freq_scratch_.begin(), freq_scratch_.end());
  std::sort(counts->begin(), counts->end());
  return token_count;
}

Document IngestPipeline::AnalyzeDocument(std::string_view text,
                                         Timestamp arrival_time) {
  Document doc;
  doc.arrival_time = arrival_time;
  TermCounts counts;
  doc.token_count = CountTerms(text, &counts);
  // BM25 weights use the statistics snapshot *including* this document, so
  // a term seen for the first time still gets a finite idf.
  corpus_stats_.AddDocument(counts, doc.token_count);
  doc.composition = BuildComposition(counts, doc.token_count, options_.scheme,
                                     &corpus_stats_, options_.bm25);
  if (options_.keep_text) doc.text.assign(text);
  return doc;
}

std::vector<Document> IngestPipeline::AnalyzeBatch(
    const std::vector<RawDocument>& batch) {
  std::vector<Document> out;
  out.reserve(batch.size());
  TermCounts counts;
  for (const RawDocument& raw : batch) {
    Document doc;
    doc.arrival_time = raw.arrival_time;
    doc.token_count = CountTerms(raw.text, &counts);
    corpus_stats_.AddDocument(counts, doc.token_count);
    doc.composition = BuildComposition(counts, doc.token_count, options_.scheme,
                                       &corpus_stats_, options_.bm25);
    if (options_.keep_text) doc.text = raw.text;
    out.push_back(std::move(doc));
  }
  return out;
}

StatusOr<Query> IngestPipeline::AnalyzeQuery(std::string_view text, int k) {
  if (k < 1) {
    return Status::InvalidArgument("query requires k >= 1");
  }
  Query query;
  query.k = k;
  query.text.assign(text);
  TermCounts counts;
  CountTerms(text, &counts);
  if (counts.empty()) {
    return Status::InvalidArgument(
        "query has no effective search terms after tokenization/stopword removal");
  }
  query.terms = BuildQueryVector(counts, options_.scheme);
  ITA_RETURN_NOT_OK(ValidateQuery(query));
  return query;
}

}  // namespace ita
