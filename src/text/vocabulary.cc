#include "text/vocabulary.h"

#include "common/logging.h"

namespace ita {

TermId Vocabulary::Intern(std::string_view token) {
  const auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  ITA_CHECK(terms_.size() < kInvalidTermId) << "vocabulary overflow";
  const TermId id = static_cast<TermId>(terms_.size());
  const auto [pos, inserted] = ids_.emplace(std::string(token), id);
  ITA_DCHECK(inserted);
  terms_.push_back(&pos->first);
  return id;
}

std::optional<TermId> Vocabulary::Lookup(std::string_view token) const {
  const auto it = ids_.find(token);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Vocabulary::TermText(TermId id) const {
  ITA_CHECK(id < terms_.size()) << "unknown TermId " << id;
  return *terms_[id];
}

}  // namespace ita
