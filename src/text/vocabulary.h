// The term dictionary of Figure 1: interns token strings to dense TermIds
// and maps them back. The TermId space indexes the inverted lists and the
// dimensions of the term-frequency space.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace ita {

class Vocabulary {
 public:
  Vocabulary() = default;

  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;

  /// Returns the id of `token`, interning it if new. Ids are dense,
  /// starting at 0, in first-seen order.
  TermId Intern(std::string_view token);

  /// Returns the id of `token` if already interned.
  std::optional<TermId> Lookup(std::string_view token) const;

  /// The token string of an interned id.
  const std::string& TermText(TermId id) const;

  /// Number of distinct interned terms.
  std::size_t size() const { return terms_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view sv) const {
      return std::hash<std::string_view>{}(sv);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };

  std::unordered_map<std::string, TermId, Hash, Eq> ids_;
  std::vector<const std::string*> terms_;  // id -> interned string
};

}  // namespace ita
