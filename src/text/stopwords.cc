#include "text/stopwords.h"

namespace ita {
namespace {

// Snowball English stopword list, extended with a handful of ubiquitous
// function words, contraction stems ("ll", "ve", ...) that the tokenizer
// produces from split contractions, and single letters.
constexpr std::string_view kEnglishStopwords[] = {
    "i", "me", "my", "myself", "we", "our", "ours", "ourselves", "you",
    "your", "yours", "yourself", "yourselves", "he", "him", "his", "himself",
    "she", "her", "hers", "herself", "it", "its", "itself", "they", "them",
    "their", "theirs", "themselves", "what", "which", "who", "whom", "this",
    "that", "these", "those", "am", "is", "are", "was", "were", "be", "been",
    "being", "have", "has", "had", "having", "do", "does", "did", "doing",
    "a", "an", "the", "and", "but", "if", "or", "because", "as", "until",
    "while", "of", "at", "by", "for", "with", "about", "against", "between",
    "into", "through", "during", "before", "after", "above", "below", "to",
    "from", "up", "down", "in", "out", "on", "off", "over", "under", "again",
    "further", "then", "once", "here", "there", "when", "where", "why",
    "how", "all", "any", "both", "each", "few", "more", "most", "other",
    "some", "such", "no", "nor", "not", "only", "own", "same", "so", "than",
    "too", "very", "can", "will", "just", "don", "should", "now",
    // Contraction fragments produced by the tokenizer ("don't" -> don, t).
    "d", "ll", "m", "o", "re", "ve", "t", "s",
    "ain", "aren", "couldn", "didn", "doesn", "hadn", "hasn", "haven",
    "isn", "ma", "mightn", "mustn", "needn", "shan", "shouldn", "wasn",
    "weren", "won", "wouldn",
    // Common additions beyond Snowball.
    "also", "could", "would", "may", "might", "must", "shall", "upon",
    "via", "whether", "within", "without", "since", "among", "amongst",
    "although", "though", "thus", "therefore", "however", "moreover",
    "meanwhile", "nevertheless", "onto", "per", "said", "says", "say",
    "mr", "mrs", "ms", "inc", "co", "corp",
    // Remaining single letters (initials, bullet labels).
    "b", "c", "e", "f", "g", "h", "j", "k", "l", "n", "p", "q", "r", "u",
    "v", "w", "x", "y", "z",
};

}  // namespace

const StopwordSet& StopwordSet::English() {
  static const StopwordSet* instance = [] {
    auto* set = new StopwordSet();
    for (std::string_view w : kEnglishStopwords) set->Add(w);
    return set;
  }();
  return *instance;
}

StopwordSet StopwordSet::FromWords(std::initializer_list<std::string_view> words) {
  StopwordSet set;
  for (std::string_view w : words) set.Add(w);
  return set;
}

}  // namespace ita
