#include "text/tokenizer.h"

namespace ita {

void Tokenizer::Tokenize(std::string_view text, std::vector<std::string>* out) const {
  ForEachToken(text, [out](std::string_view token) { out->emplace_back(token); });
}

}  // namespace ita
