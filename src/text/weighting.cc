#include "text/weighting.h"

#include <cmath>

#include "common/logging.h"

namespace ita {

const char* WeightingSchemeName(WeightingScheme scheme) {
  switch (scheme) {
    case WeightingScheme::kCosine: return "cosine";
    case WeightingScheme::kBm25: return "bm25";
    case WeightingScheme::kRawTf: return "raw_tf";
  }
  return "?";
}

void CorpusStats::AddDocument(const TermCounts& counts, std::size_t token_count) {
  for (const auto& [term, count] : counts) {
    (void)count;
    ++document_frequency_[term];
  }
  ++total_documents_;
  total_tokens_ += token_count;
}

std::uint64_t CorpusStats::DocumentFrequency(TermId term) const {
  const auto it = document_frequency_.find(term);
  return it == document_frequency_.end() ? 0 : it->second;
}

double CorpusStats::Idf(TermId term) const {
  const double n = static_cast<double>(total_documents_);
  const double df = static_cast<double>(DocumentFrequency(term));
  const double idf = std::log((n - df + 0.5) / (df + 0.5) + 1.0);
  return idf > 0.0 ? idf : 0.0;
}

Composition BuildComposition(const TermCounts& counts, std::size_t token_count,
                             WeightingScheme scheme, const CorpusStats* stats,
                             const Bm25Params& bm25) {
  Composition composition;
  composition.reserve(counts.size());
  switch (scheme) {
    case WeightingScheme::kCosine: {
      double sum_sq = 0.0;
      for (const auto& [term, count] : counts) {
        (void)term;
        sum_sq += static_cast<double>(count) * static_cast<double>(count);
      }
      const double norm = sum_sq > 0.0 ? 1.0 / std::sqrt(sum_sq) : 0.0;
      for (const auto& [term, count] : counts) {
        composition.push_back({term, static_cast<double>(count) * norm});
      }
      break;
    }
    case WeightingScheme::kBm25: {
      ITA_CHECK(stats != nullptr) << "BM25 weighting requires CorpusStats";
      const double avgdl = stats->average_length() > 0.0 ? stats->average_length() : 1.0;
      const double len_norm =
          bm25.k1 * (1.0 - bm25.b + bm25.b * static_cast<double>(token_count) / avgdl);
      for (const auto& [term, count] : counts) {
        const double f = static_cast<double>(count);
        const double tf = f * (bm25.k1 + 1.0) / (f + len_norm);
        const double w = stats->Idf(term) * tf;
        if (w > 0.0) composition.push_back({term, w});
      }
      break;
    }
    case WeightingScheme::kRawTf: {
      for (const auto& [term, count] : counts) {
        composition.push_back({term, static_cast<double>(count)});
      }
      break;
    }
  }
  return composition;
}

std::vector<TermWeight> BuildQueryVector(const TermCounts& counts,
                                         WeightingScheme scheme) {
  std::vector<TermWeight> terms;
  terms.reserve(counts.size());
  switch (scheme) {
    case WeightingScheme::kCosine: {
      double sum_sq = 0.0;
      for (const auto& [term, count] : counts) {
        (void)term;
        sum_sq += static_cast<double>(count) * static_cast<double>(count);
      }
      const double norm = sum_sq > 0.0 ? 1.0 / std::sqrt(sum_sq) : 0.0;
      for (const auto& [term, count] : counts) {
        terms.push_back({term, static_cast<double>(count) * norm});
      }
      break;
    }
    case WeightingScheme::kBm25:
    case WeightingScheme::kRawTf: {
      for (const auto& [term, count] : counts) {
        terms.push_back({term, static_cast<double>(count)});
      }
      break;
    }
  }
  return terms;
}

}  // namespace ita
