// Lexical analysis: splits raw text into lowercase word tokens.
//
// A token is a maximal run of ASCII letters and digits; every other byte
// (punctuation, whitespace, non-ASCII) separates tokens. This matches the
// preprocessing conventions of classic IR collections such as TREC WSJ
// (Baeza-Yates & Ribeiro-Neto, "Modern Information Retrieval").

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ita {

struct TokenizerOptions {
  /// Tokens shorter than this many bytes are dropped.
  std::size_t min_token_length = 1;
  /// Tokens longer than this many bytes are dropped (garbage/DNA strings).
  std::size_t max_token_length = 64;
  /// When false, tokens consisting solely of digits are dropped.
  bool keep_numbers = true;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  const TokenizerOptions& options() const { return options_; }

  /// Invokes `fn(std::string_view token)` for every token, in order. The
  /// view points into `scratch`, which holds the lowercased token bytes,
  /// and is invalidated by the next token.
  template <typename Fn>
  void ForEachToken(std::string_view text, Fn&& fn) const {
    std::string scratch;
    scratch.reserve(options_.max_token_length);
    std::size_t i = 0;
    const std::size_t n = text.size();
    while (i < n) {
      while (i < n && !IsTokenByte(text[i])) ++i;
      scratch.clear();
      bool all_digits = true;
      bool oversize = false;
      while (i < n && IsTokenByte(text[i])) {
        const char c = ToLowerAscii(text[i]);
        all_digits = all_digits && (c >= '0' && c <= '9');
        if (scratch.size() < options_.max_token_length) {
          scratch.push_back(c);
        } else {
          oversize = true;
        }
        ++i;
      }
      if (scratch.empty() || oversize) continue;
      if (scratch.size() < options_.min_token_length) continue;
      if (all_digits && !options_.keep_numbers) continue;
      fn(std::string_view(scratch));
    }
  }

  /// Appends all tokens of `text` to `out`.
  void Tokenize(std::string_view text, std::vector<std::string>* out) const;

  static bool IsTokenByte(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
  }

  static char ToLowerAscii(char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }

 private:
  TokenizerOptions options_;
};

}  // namespace ita
