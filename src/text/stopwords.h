// Standard English stopword removal (paper Section IV cites [7],
// Baeza-Yates & Ribeiro-Neto). The built-in list is the Snowball English
// stopword list extended with a few ubiquitous function words; callers can
// add domain-specific entries.

#pragma once

#include <string>
#include <string_view>
#include <unordered_set>

namespace ita {

class StopwordSet {
 public:
  /// An empty set (no filtering).
  StopwordSet() = default;

  /// The canonical English list (shared instance).
  static const StopwordSet& English();

  /// Builds a set from an explicit word list.
  static StopwordSet FromWords(std::initializer_list<std::string_view> words);

  bool Contains(std::string_view word) const {
    return words_.find(word) != words_.end();
  }

  void Add(std::string_view word) { words_.emplace(word); }

  std::size_t size() const { return words_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view sv) const {
      return std::hash<std::string_view>{}(sv);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };

  std::unordered_set<std::string, Hash, Eq> words_;
};

}  // namespace ita
