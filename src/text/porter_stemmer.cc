// Port of the reference implementation of the Porter stemming algorithm
// (https://tartarus.org/martin/PorterStemmer/, public domain). It includes
// the two departures of the official version relative to the 1980 paper,
// marked DEPARTURE below: step 2 maps "bli"->"ble" (paper: "abli"->"able")
// and adds "logi"->"log".

#include "text/porter_stemmer.h"

#include <cstring>

namespace ita {
namespace {

// Works on buffer b[0..k]; j marks the end of the candidate stem during
// suffix tests. All indices follow the reference implementation.
class Engine {
 public:
  explicit Engine(std::string* b) : b_(*b), k_(static_cast<int>(b->size()) - 1) {}

  void Run() {
    if (k_ <= 1) return;  // words of length <= 2 are left unchanged
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    b_.resize(static_cast<std::size_t>(k_) + 1);
  }

 private:
  // True when b[i] is a consonant ('y' is a consonant iff it does not
  // follow a consonant).
  bool Cons(int i) const {
    switch (b_[static_cast<std::size_t>(i)]) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !Cons(i - 1);
      default:
        return true;
    }
  }

  // Measure of b[0..j]: the number of VC sequences in [C](VC)^m[V].
  int Measure() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!Cons(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (Cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!Cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!Cons(i)) return true;
    }
    return false;
  }

  // b[i-1] == b[i] and both are consonants.
  bool DoubleC(int i) const {
    if (i < 1) return false;
    if (b_[static_cast<std::size_t>(i)] != b_[static_cast<std::size_t>(i - 1)]) return false;
    return Cons(i);
  }

  // consonant-vowel-consonant ending at i, where the final consonant is not
  // w, x or y ("cav(e)", "lov(e)" but not "snow", "box", "tray").
  bool Cvc(int i) const {
    if (i < 2 || !Cons(i) || Cons(i - 1) || !Cons(i - 2)) return false;
    const char ch = b_[static_cast<std::size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  // True when b[0..k] ends with `s`; sets j to the stem end on success.
  bool Ends(const char* s) {
    const int len = static_cast<int>(std::strlen(s));
    if (len > k_ + 1) return false;
    if (std::memcmp(b_.data() + k_ - len + 1, s, static_cast<std::size_t>(len)) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  // Replaces b[j+1..k] with `s`.
  void SetTo(const char* s) {
    const int len = static_cast<int>(std::strlen(s));
    b_.resize(static_cast<std::size_t>(j_) + 1);
    b_.append(s, static_cast<std::size_t>(len));
    k_ = j_ + len;
  }

  void R(const char* s) {
    if (Measure() > 0) SetTo(s);
  }

  // Plurals and -ed / -ing.
  void Step1ab() {
    if (b_[static_cast<std::size_t>(k_)] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (b_[static_cast<std::size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (Measure() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleC(k_)) {
        --k_;
        const char ch = b_[static_cast<std::size_t>(k_)];
        if (ch == 'l' || ch == 's' || ch == 'z') ++k_;
      } else if (Measure() == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  // Terminal y -> i when there is another vowel in the stem.
  void Step1c() {
    if (Ends("y") && VowelInStem()) b_[static_cast<std::size_t>(k_)] = 'i';
  }

  // Double suffices -> single ones ("-ization" -> "-ize").
  void Step2() {
    if (k_ < 1) return;
    switch (b_[static_cast<std::size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("ational")) { R("ate"); break; }
        if (Ends("tional")) { R("tion"); break; }
        break;
      case 'c':
        if (Ends("enci")) { R("ence"); break; }
        if (Ends("anci")) { R("ance"); break; }
        break;
      case 'e':
        if (Ends("izer")) { R("ize"); break; }
        break;
      case 'l':
        if (Ends("bli")) { R("ble"); break; }  // DEPARTURE (paper: abli->able)
        if (Ends("alli")) { R("al"); break; }
        if (Ends("entli")) { R("ent"); break; }
        if (Ends("eli")) { R("e"); break; }
        if (Ends("ousli")) { R("ous"); break; }
        break;
      case 'o':
        if (Ends("ization")) { R("ize"); break; }
        if (Ends("ation")) { R("ate"); break; }
        if (Ends("ator")) { R("ate"); break; }
        break;
      case 's':
        if (Ends("alism")) { R("al"); break; }
        if (Ends("iveness")) { R("ive"); break; }
        if (Ends("fulness")) { R("ful"); break; }
        if (Ends("ousness")) { R("ous"); break; }
        break;
      case 't':
        if (Ends("aliti")) { R("al"); break; }
        if (Ends("iviti")) { R("ive"); break; }
        if (Ends("biliti")) { R("ble"); break; }
        break;
      case 'g':
        if (Ends("logi")) { R("log"); break; }  // DEPARTURE (addition)
        break;
      default:
        break;
    }
  }

  // "-icate", "-ful", "-ness" etc.
  void Step3() {
    switch (b_[static_cast<std::size_t>(k_)]) {
      case 'e':
        if (Ends("icate")) { R("ic"); break; }
        if (Ends("ative")) { R(""); break; }
        if (Ends("alize")) { R("al"); break; }
        break;
      case 'i':
        if (Ends("iciti")) { R("ic"); break; }
        break;
      case 'l':
        if (Ends("ical")) { R("ic"); break; }
        if (Ends("ful")) { R(""); break; }
        break;
      case 's':
        if (Ends("ness")) { R(""); break; }
        break;
      default:
        break;
    }
  }

  // Drops "-ant", "-ence" etc. in context <c>vcvc<v>.
  void Step4() {
    if (k_ < 1) return;
    switch (b_[static_cast<std::size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance")) break;
        if (Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able")) break;
        if (Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant")) break;
        if (Ends("ement")) break;
        if (Ends("ment")) break;
        if (Ends("ent")) break;
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 &&
            (b_[static_cast<std::size_t>(j_)] == 's' ||
             b_[static_cast<std::size_t>(j_)] == 't')) {
          break;
        }
        if (Ends("ou")) break;  // takes care of -ous
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate")) break;
        if (Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (Measure() > 1) k_ = j_;
  }

  // Removes a final -e and changes -ll to -l in context m > 1.
  void Step5() {
    j_ = k_;
    if (b_[static_cast<std::size_t>(k_)] == 'e') {
      const int a = Measure();
      if (a > 1 || (a == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (b_[static_cast<std::size_t>(k_)] == 'l' && DoubleC(k_) && Measure() > 1) {
      --k_;
    }
  }

  std::string& b_;
  int k_;
  int j_ = 0;
};

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) {
  std::string w(word);
  StemInPlace(&w);
  return w;
}

void PorterStemmer::StemInPlace(std::string* word) {
  Engine engine(word);
  engine.Run();
}

}  // namespace ita
