#include "text/analyzer.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "text/porter_stemmer.h"

namespace ita {

Analyzer::Analyzer(AnalyzerOptions options)
    : options_(options), tokenizer_(options.tokenizer) {}

std::size_t Analyzer::CountTerms(std::string_view text, TermCounts* counts) {
  const StopwordSet& stopwords =
      options_.stopwords != nullptr ? *options_.stopwords : StopwordSet::English();

  std::unordered_map<TermId, std::uint32_t> freq;
  std::size_t token_count = 0;
  std::string stem_buffer;
  tokenizer_.ForEachToken(text, [&](std::string_view token) {
    if (options_.remove_stopwords && stopwords.Contains(token)) return;
    TermId id;
    if (options_.stem) {
      stem_buffer.assign(token);
      PorterStemmer::StemInPlace(&stem_buffer);
      id = vocabulary_.Intern(stem_buffer);
    } else {
      id = vocabulary_.Intern(token);
    }
    ++freq[id];
    ++token_count;
  });

  counts->assign(freq.begin(), freq.end());
  std::sort(counts->begin(), counts->end());
  return token_count;
}

Document Analyzer::MakeDocument(std::string_view text, Timestamp arrival_time) {
  Document doc;
  doc.arrival_time = arrival_time;
  TermCounts counts;
  doc.token_count = CountTerms(text, &counts);
  // BM25 weights use the statistics snapshot *including* this document, so
  // a term seen for the first time still gets a finite idf.
  corpus_stats_.AddDocument(counts, doc.token_count);
  doc.composition = BuildComposition(counts, doc.token_count, options_.scheme,
                                     &corpus_stats_, options_.bm25);
  if (options_.keep_text) doc.text.assign(text);
  return doc;
}

StatusOr<Query> Analyzer::MakeQuery(std::string_view text, int k) {
  if (k < 1) {
    return Status::InvalidArgument("query requires k >= 1");
  }
  Query query;
  query.k = k;
  query.text.assign(text);
  TermCounts counts;
  CountTerms(text, &counts);
  if (counts.empty()) {
    return Status::InvalidArgument(
        "query has no effective search terms after tokenization/stopword removal");
  }
  query.terms = BuildQueryVector(counts, options_.scheme);
  ITA_RETURN_NOT_OK(ValidateQuery(query));
  return query;
}

}  // namespace ita
