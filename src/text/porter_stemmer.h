// The Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980). Reduces inflected English words to a
// common stem ("relational" -> "relat", "ponies" -> "poni").
//
// Stemming is optional in the analyzer (off by default: the paper's
// 181,978-term WSJ dictionary is unstemmed), but is provided as part of
// the text substrate for applications that want recall over precision.

#pragma once

#include <string>
#include <string_view>

namespace ita {

class PorterStemmer {
 public:
  /// Stems a single lowercase word. Words of length <= 2 are returned
  /// unchanged, as in the original algorithm.
  static std::string Stem(std::string_view word);

  /// In-place variant: `word` must be lowercase ASCII.
  static void StemInPlace(std::string* word);
};

}  // namespace ita
