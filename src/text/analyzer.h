// Compatibility facade over pipeline/ingest_pipeline.h: the historical
// single-document analysis API (raw text -> tokens -> stopword filtering
// -> optional stemming -> term interning -> weighted composition list /
// query vector).
//
// The implementation lives in IngestPipeline — the staged, batch-capable
// front end the servers' IngestBatch path is built on. Analyzer keeps the
// original names (MakeDocument/MakeQuery) for existing call sites and
// exposes the underlying pipeline for code that wants the batch API.
//
// One Analyzer instance owns one pipeline (and thus one Vocabulary), so
// documents and queries that should be matched against each other must go
// through the same Analyzer.

#pragma once

#include <string_view>

#include "common/status.h"
#include "core/query.h"
#include "pipeline/ingest_pipeline.h"
#include "stream/document.h"

namespace ita {

/// Analyzer predates IngestPipeline; the options struct is shared.
using AnalyzerOptions = IngestPipelineOptions;

class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {}) : pipeline_(options) {}

  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  /// Analyzes one document. The result's `id` is unset (the server assigns
  /// it at ingestion); `arrival_time` is passed through. Also feeds the
  /// running corpus statistics (used by BM25 weighting).
  Document MakeDocument(std::string_view text, Timestamp arrival_time = 0) {
    return pipeline_.AnalyzeDocument(text, arrival_time);
  }

  /// Analyzes a query string into a Query with result size `k`. Fails with
  /// InvalidArgument if no effective terms remain after filtering or k < 1.
  StatusOr<Query> MakeQuery(std::string_view text, int k) {
    return pipeline_.AnalyzeQuery(text, k);
  }

  /// The underlying staged pipeline (batch analysis, shared scratch).
  IngestPipeline& pipeline() { return pipeline_; }
  const IngestPipeline& pipeline() const { return pipeline_; }

  const Vocabulary& vocabulary() const { return pipeline_.vocabulary(); }
  Vocabulary& vocabulary() { return pipeline_.vocabulary(); }
  const CorpusStats& corpus_stats() const { return pipeline_.corpus_stats(); }
  const AnalyzerOptions& options() const { return pipeline_.options(); }

 private:
  IngestPipeline pipeline_;
};

}  // namespace ita
