// The end-to-end text analysis pipeline: raw text -> tokens -> stopword
// filtering -> optional stemming -> term interning -> weighted composition
// list / query vector.
//
// The paper's stream elements already carry composition lists (analysis
// happens upstream of the monitoring server); Analyzer is that upstream
// stage. One Analyzer instance owns the Vocabulary, so documents and
// queries that should be matched against each other must go through the
// same Analyzer.

#pragma once

#include <memory>
#include <string_view>

#include "common/status.h"
#include "core/query.h"
#include "stream/document.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "text/weighting.h"

namespace ita {

struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  /// Drop stopwords (the built-in English list unless `stopwords` is set).
  bool remove_stopwords = true;
  /// Apply the Porter stemmer after stopword removal. Off by default — the
  /// paper's WSJ dictionary (181,978 terms) is unstemmed.
  bool stem = false;
  /// How term frequencies become impact weights.
  WeightingScheme scheme = WeightingScheme::kCosine;
  Bm25Params bm25;
  /// Keep the raw text inside produced Documents (display convenience).
  bool keep_text = true;
  /// Custom stopword set; null selects StopwordSet::English().
  const StopwordSet* stopwords = nullptr;
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {});

  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  /// Analyzes one document. The result's `id` is unset (the server assigns
  /// it at ingestion); `arrival_time` is passed through. Also feeds the
  /// running corpus statistics (used by BM25 weighting).
  Document MakeDocument(std::string_view text, Timestamp arrival_time = 0);

  /// Analyzes a query string into a Query with result size `k`. Fails with
  /// InvalidArgument if no effective terms remain after filtering or k < 1.
  StatusOr<Query> MakeQuery(std::string_view text, int k);

  const Vocabulary& vocabulary() const { return vocabulary_; }
  Vocabulary& vocabulary() { return vocabulary_; }
  const CorpusStats& corpus_stats() const { return corpus_stats_; }
  const AnalyzerOptions& options() const { return options_; }

 private:
  /// Tokenize + filter + stem + intern into sorted term counts; returns the
  /// number of tokens that survived filtering.
  std::size_t CountTerms(std::string_view text, TermCounts* counts);

  AnalyzerOptions options_;
  Tokenizer tokenizer_;
  Vocabulary vocabulary_;
  CorpusStats corpus_stats_;
};

}  // namespace ita
