// Term weighting schemes: how raw term frequencies become the impact
// weights w_{d,t} (composition lists) and w_{Q,t} (query vectors) that the
// similarity S(d|Q) = sum_t w_{Q,t} * w_{d,t} aggregates (paper Formula 1).
//
// The paper evaluates the cosine measure and notes the technique extends to
// any measure decomposable this way, naming Okapi; both are provided, plus
// raw term frequency for didactic examples.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace ita {

enum class WeightingScheme {
  /// w_{d,t} = f_{d,t} / sqrt(sum_t' f_{d,t'}^2); likewise for queries.
  /// S(d|Q) is then the cosine of the angle between the frequency vectors.
  kCosine,
  /// Okapi BM25: w_{d,t} = idf(t) * f(k1+1) / (f + k1(1-b+b*|d|/avgdl)),
  /// w_{Q,t} = f_{Q,t}. idf and avgdl are taken from a CorpusStats snapshot
  /// at analysis time (weights are immutable once a document is streamed).
  kBm25,
  /// w = f on both sides; useful for worked examples with round numbers.
  kRawTf,
};

/// Returns a stable display name ("cosine", "bm25", "raw_tf").
const char* WeightingSchemeName(WeightingScheme scheme);

struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// Raw term frequencies of one document or query: sorted by ascending
/// TermId, one entry per distinct term, counts >= 1.
using TermCounts = std::vector<std::pair<TermId, std::uint32_t>>;

/// Running corpus statistics consumed by BM25 weighting: document
/// frequencies, document count and average length. Callers decide what
/// population the statistics describe (the analyzer feeds every analyzed
/// document through).
class CorpusStats {
 public:
  /// Accounts one document with the given distinct terms and token count.
  void AddDocument(const TermCounts& counts, std::size_t token_count);

  std::uint64_t total_documents() const { return total_documents_; }
  double average_length() const {
    return total_documents_ == 0
               ? 0.0
               : static_cast<double>(total_tokens_) / static_cast<double>(total_documents_);
  }
  std::uint64_t DocumentFrequency(TermId term) const;

  /// Robertson-Sparck-Jones idf with the standard +0.5 smoothing,
  /// floored at 0.
  double Idf(TermId term) const;

 private:
  std::unordered_map<TermId, std::uint64_t> document_frequency_;
  std::uint64_t total_documents_ = 0;
  std::uint64_t total_tokens_ = 0;
};

/// Turns raw document term counts into a composition list under `scheme`.
/// `stats` may be null except for kBm25. Counts must be sorted by TermId.
Composition BuildComposition(const TermCounts& counts, std::size_t token_count,
                             WeightingScheme scheme, const CorpusStats* stats,
                             const Bm25Params& bm25 = {});

/// Turns raw query term counts into a query weight vector under `scheme`.
std::vector<TermWeight> BuildQueryVector(const TermCounts& counts,
                                         WeightingScheme scheme);

}  // namespace ita
