// Status / StatusOr: exception-free error propagation in the style of
// Arrow/RocksDB/Abseil. Library code returns Status (or StatusOr<T>) from
// any operation that can fail; callers either handle the error or bubble it
// up with ITA_RETURN_NOT_OK / ITA_ASSIGN_OR_RETURN.

#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

/// Marks a returned reference as bound to the lifetime of the object it was
/// obtained from, so `for (auto& e : *server.Result(id))` — dereferencing a
/// temporary StatusOr and keeping the reference past its destruction — is
/// diagnosed at compile time where the compiler supports it (Clang).
#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::lifetimebound)
#define ITA_LIFETIME_BOUND [[clang::lifetimebound]]
#endif
#endif
#ifndef ITA_LIFETIME_BOUND
#define ITA_LIFETIME_BOUND
#endif

namespace ita {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIoError = 8,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kIoError: return "IoError";
  }
  return "Unknown";
}

/// Outcome of an operation: either OK or an error code plus message.
/// Cheap to copy in the OK case (no allocation). [[nodiscard]]: silently
/// dropping a Status return hides failures; consume it or cast to void.
class [[nodiscard]] Status {
 public:
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Inspect with ok(); access
/// the value with value()/operator* only when ok().
///
/// The accessors return references INTO the StatusOr. Bind the StatusOr to
/// a named variable before holding such a reference:
///
///   const auto result = server.Result(id);   // named: references stay valid
///   for (const auto& e : *result) { ... }
///
///   for (const auto& e : *server.Result(id)) { ... }   // DANGLES: the
///   // temporary StatusOr dies before the loop body runs (C++23's P2718
///   // fixes the language trap; this library targets C++20). Clang builds
///   // reject it at compile time via ITA_LIFETIME_BOUND.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(const T& value) : value_(value) {}          // NOLINT(google-explicit-constructor)
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed with OK status but no value");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const ITA_LIFETIME_BOUND { return status_; }

  const T& value() const& ITA_LIFETIME_BOUND {
    CheckHasValue();
    return *value_;
  }
  T& value() & ITA_LIFETIME_BOUND {
    CheckHasValue();
    return *value_;
  }
  T&& value() && ITA_LIFETIME_BOUND {
    CheckHasValue();
    return std::move(*value_);
  }

  const T& operator*() const& ITA_LIFETIME_BOUND { return value(); }
  T& operator*() & ITA_LIFETIME_BOUND { return value(); }
  T&& operator*() && ITA_LIFETIME_BOUND { return std::move(*this).value(); }

  const T* operator->() const ITA_LIFETIME_BOUND { return &value(); }
  T* operator->() ITA_LIFETIME_BOUND { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      std::cerr << "FATAL: StatusOr accessed without value: "
                << status_.ToString() << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace ita

/// Propagates a non-OK Status to the caller.
#define ITA_RETURN_NOT_OK(expr)                   \
  do {                                            \
    ::ita::Status _ita_status = (expr);           \
    if (!_ita_status.ok()) return _ita_status;    \
  } while (false)

#define ITA_CONCAT_IMPL(a, b) a##b
#define ITA_CONCAT(a, b) ITA_CONCAT_IMPL(a, b)

/// Evaluates a StatusOr expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define ITA_ASSIGN_OR_RETURN(lhs, expr)                            \
  auto ITA_CONCAT(_ita_statusor_, __LINE__) = (expr);              \
  if (!ITA_CONCAT(_ita_statusor_, __LINE__).ok())                  \
    return ITA_CONCAT(_ita_statusor_, __LINE__).status();          \
  lhs = std::move(ITA_CONCAT(_ita_statusor_, __LINE__)).value()
