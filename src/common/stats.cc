#include "common/stats.h"

#include <sstream>

namespace ita {

void ServerStats::Add(const ServerStats& other) {
  documents_ingested += other.documents_ingested;
  documents_expired += other.documents_expired;
  batches_ingested += other.batches_ingested;
  index_entries_inserted += other.index_entries_inserted;
  index_entries_erased += other.index_entries_erased;
  scores_computed += other.scores_computed;
  queries_probed += other.queries_probed;
  membership_checks += other.membership_checks;
  result_insertions += other.result_insertions;
  result_removals += other.result_removals;
  threshold_probe_steps += other.threshold_probe_steps;
  list_entries_read += other.list_entries_read;
  rollup_steps += other.rollup_steps;
  rollup_evictions += other.rollup_evictions;
  refills += other.refills;
  full_rescans += other.full_rescans;
  tier_promotions += other.tier_promotions;
  tier_demotions += other.tier_demotions;
  catalog_slab_bytes += other.catalog_slab_bytes;
  postings_bytes += other.postings_bytes;
  threshold_entries += other.threshold_entries;
  query_state_slots += other.query_state_slots;
  hot_tier_terms += other.hot_tier_terms;
  registered_queries += other.registered_queries;
  arena_segments += other.arena_segments;
  document_bytes += other.document_bytes;
}

std::string ServerStats::ToString() const {
  std::ostringstream os;
  os << "documents_ingested     = " << documents_ingested << "\n"
     << "documents_expired      = " << documents_expired << "\n"
     << "batches_ingested       = " << batches_ingested << "\n"
     << "index_entries_inserted = " << index_entries_inserted << "\n"
     << "index_entries_erased   = " << index_entries_erased << "\n"
     << "scores_computed        = " << scores_computed << "\n"
     << "queries_probed         = " << queries_probed << "\n"
     << "membership_checks      = " << membership_checks << "\n"
     << "result_insertions      = " << result_insertions << "\n"
     << "result_removals        = " << result_removals << "\n"
     << "threshold_probe_steps  = " << threshold_probe_steps << "\n"
     << "list_entries_read      = " << list_entries_read << "\n"
     << "rollup_steps           = " << rollup_steps << "\n"
     << "rollup_evictions       = " << rollup_evictions << "\n"
     << "refills                = " << refills << "\n"
     << "full_rescans           = " << full_rescans << "\n"
     << "tier_promotions        = " << tier_promotions << "\n"
     << "tier_demotions         = " << tier_demotions << "\n"
     << "catalog_slab_bytes     = " << catalog_slab_bytes << "\n"
     << "postings_bytes         = " << postings_bytes << "\n"
     << "threshold_entries      = " << threshold_entries << "\n"
     << "query_state_slots      = " << query_state_slots << "\n"
     << "hot_tier_terms         = " << hot_tier_terms << "\n"
     << "registered_queries     = " << registered_queries << "\n"
     << "arena_segments         = " << arena_segments << "\n"
     << "document_bytes         = " << document_bytes << "\n";
  return os.str();
}

}  // namespace ita
