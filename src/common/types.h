// Core identifier and value types shared across the library.
//
// The system model follows Section II of Mouratidis & Pang (ICDE 2009):
// a stream of documents flows into a main-memory server; each stream
// element carries a unique document identifier, an arrival timestamp and a
// "composition list" of <term, weight> pairs; user queries are sets of
// weighted terms plus a result size k.

#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace ita {

/// Identifier of a document in the stream. Assigned by the server at
/// ingestion time; strictly increasing with arrival order, starting at 1.
using DocId = std::uint64_t;

/// Identifier of a dictionary term (a dimension of the term-frequency
/// space). Dense, starting at 0; interned by ita::Vocabulary.
using TermId = std::uint32_t;

/// Identifier of a registered continuous query.
using QueryId = std::uint32_t;

/// Microseconds since an arbitrary epoch (virtual time; see ita::VirtualClock).
using Timestamp = std::int64_t;

inline constexpr DocId kInvalidDocId = 0;
inline constexpr DocId kMaxDocId = std::numeric_limits<DocId>::max();
inline constexpr TermId kInvalidTermId = std::numeric_limits<TermId>::max();
inline constexpr QueryId kInvalidQueryId = std::numeric_limits<QueryId>::max();

/// One entry of a composition list: term t appears in the document with
/// (scheme-dependent, pre-normalized) impact weight w_{d,t} > 0.
struct TermWeight {
  TermId term = kInvalidTermId;
  double weight = 0.0;

  friend bool operator==(const TermWeight& a, const TermWeight& b) {
    return a.term == b.term && a.weight == b.weight;
  }
};

/// A document's composition list: sorted by ascending TermId, one entry per
/// distinct term, all weights strictly positive.
using Composition = std::vector<TermWeight>;

}  // namespace ita
