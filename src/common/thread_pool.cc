#include "common/thread_pool.h"

#include <utility>

#include "common/logging.h"

namespace ita {

ThreadPool::ThreadPool(std::size_t threads) {
  ITA_CHECK(threads >= 1) << "a thread pool needs at least one worker";
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ITA_CHECK(!shutting_down_) << "Submit() after Shutdown()";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;  // already shut down
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Drain-then-stop: tasks queued before Shutdown() still run.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task captures any exception into the future, so a throwing
    // task cannot terminate the worker.
    task();
  }
}

}  // namespace ita
