// Wall-clock stopwatch used only by the benchmark harness and execution
// drivers (the library itself runs on virtual time; see common/clock.h).
// A thin forwarding facade over obs::Timer — the single steady-clock
// utility — kept for the established seconds/millis call sites; new code
// that needs nanosecond readings should use obs::Timer directly.

#pragma once

#include "obs/timer.h"

namespace ita {

/// High-resolution elapsed-time measurement (forwards to obs::Timer).
class Stopwatch {
 public:
  void Restart() { timer_.Restart(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const { return timer_.ElapsedMillis(); }

 private:
  obs::Timer timer_;
};

}  // namespace ita
