// Wall-clock stopwatch used only by the benchmark harness (the library
// itself runs on virtual time; see common/clock.h).

#pragma once

#include <chrono>

namespace ita {

/// High-resolution elapsed-time measurement.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ita
