// Deterministic pseudo-random machinery for workload generation.
//
// Everything here is seeded explicitly and fully reproducible across
// platforms (no std::random_device, no libstdc++-version-dependent
// distributions). The generator is xoshiro256** (Blackman & Vigna), seeded
// via SplitMix64; distributions are implemented from first principles.

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace ita {

/// xoshiro256** pseudo-random generator. Satisfies the essentials of
/// UniformRandomBitGenerator but is deliberately used only through the
/// distribution helpers below to keep results platform-stable.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64, so that any
  /// seed (including 0) produces a well-mixed state.
  explicit Rng(std::uint64_t seed = 0xD1B54A32D192ED03ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& lane : state_) lane = SplitMix64(&x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return Next(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in (0, 1]; safe as an argument to log().
  double NextDoublePositive() {
    return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi) {
    ITA_DCHECK(lo <= hi);
    const std::uint64_t range = hi - lo + 1;  // 0 means the full 2^64 range
    if (range == 0) return Next();
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t v;
    do {
      v = Next();
    } while (v >= limit);
    return lo + v % range;
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double Exponential(double rate) {
    ITA_DCHECK(rate > 0.0);
    return -std::log(NextDoublePositive()) / rate;
  }

  /// Standard normal via Box-Muller (one value per call; no state carried).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    const double u1 = NextDoublePositive();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586476925286766559 * u2);
  }

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

 private:
  static std::uint64_t SplitMix64(std::uint64_t* x) {
    std::uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  static std::uint64_t Rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Zipf(s) distribution over ranks {0, 1, ..., n-1}: P(rank r) proportional
/// to 1 / (r+1)^s. Implemented with a precomputed CDF and binary search —
/// O(n) memory, O(log n) per sample, exact and deterministic. Suitable for
/// dictionary-sized n (a 181,978-term dictionary costs ~1.4 MB).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  std::size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

  /// Samples a rank in [0, n).
  std::size_t Sample(Rng* rng) const;

  /// Probability mass of a given rank.
  double Pmf(std::size_t rank) const;

 private:
  double s_ = 1.0;
  double norm_ = 1.0;
  std::vector<double> cdf_;
};

}  // namespace ita
