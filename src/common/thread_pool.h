// A fixed-size worker thread pool — the first concurrency primitive in the
// codebase, introduced for the sharded execution engine (exec/). Kept
// deliberately minimal: a bounded set of workers draining one FIFO task
// queue. No work stealing, no priorities, no growth — the epoch scheduler
// submits exactly one task per shard per phase, so fairness and locality
// tricks would buy nothing (see DESIGN.md §6).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ita {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Equivalent to Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on some worker. The returned future
  /// becomes ready when the task finishes; if the task threw, get()
  /// rethrows that exception (an exception never takes down a worker).
  /// Safe to call from any thread. Must not be called after Shutdown().
  std::future<void> Submit(std::function<void()> fn);

  /// Drains the queue — every task submitted before the call still runs —
  /// then joins the workers. Idempotent; called by the destructor.
  void Shutdown();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;  // guarded by mu_
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;  // guarded by mu_
};

}  // namespace ita
