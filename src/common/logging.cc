#include "common/logging.h"

namespace ita {
namespace internal {

LogLevel& MinLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

}  // namespace internal
}  // namespace ita
