// Operation statistics exported by every server implementation. The
// counters quantify exactly the work the paper reasons about (probes,
// score computations, roll-ups, refills) and power the ablation benches.
//
// Concurrency: counters are plain integers bumped on hot paths, so a
// single ServerStats instance must only ever be written by one thread at
// a time. The sharded execution engine therefore keeps one instance per
// shard — each written exclusively by whichever worker runs that shard's
// phase, with the scheduler's phase barrier ordering writes against the
// driver's reads — and aggregates them on read with Add(). This is the
// "per-shard counters aggregated on read" scheme: zero hot-path cost, no
// atomics, race-free by construction (tests/common/stats_concurrency_test
// exercises it under ThreadSanitizer).

#pragma once

#include <cstdint>
#include <string>

namespace ita {

/// Monotonic operation counters; reset with Reset(). All counts are since
/// construction or the last Reset().
struct ServerStats {
  // Stream plumbing. Replicated (not partitioned) across shards of the
  // sharded engine — a new counter here must join the take-once list in
  // exec::ShardedServer::stats().
  std::uint64_t documents_ingested = 0;
  std::uint64_t documents_expired = 0;
  std::uint64_t batches_ingested = 0;       ///< IngestBatch epochs processed
  std::uint64_t index_entries_inserted = 0;
  std::uint64_t index_entries_erased = 0;

  // Query evaluation work.
  std::uint64_t scores_computed = 0;        ///< full S(d|Q) evaluations
  std::uint64_t queries_probed = 0;         ///< query "may be affected" hits
  std::uint64_t membership_checks = 0;      ///< Naive: is d in R(Q)?
  std::uint64_t result_insertions = 0;      ///< documents added to some R
  std::uint64_t result_removals = 0;        ///< documents dropped from some R

  // ITA-specific machinery.
  std::uint64_t threshold_probe_steps = 0;  ///< threshold-tree entries visited
  std::uint64_t list_entries_read = 0;      ///< inverted-list entries consumed by TA
  std::uint64_t rollup_steps = 0;           ///< local-threshold lifts
  std::uint64_t rollup_evictions = 0;       ///< R evictions due to roll-up
  std::uint64_t refills = 0;                ///< post-expiration search resumptions

  // Naive-specific machinery.
  std::uint64_t full_rescans = 0;           ///< top-k_max recomputations over D

  // Frequency-adaptive tiering (DESIGN.md §12): per-shard counters of
  // epoch-boundary term migrations between the cold and hot
  // representations. Real per-shard work, so the cross-shard sum is the
  // engine total (not on the take-once list).
  std::uint64_t tier_promotions = 0;        ///< terms migrated cold → hot
  std::uint64_t tier_demotions = 0;         ///< terms migrated hot → cold

  // Memory-footprint gauges (DESIGN.md §7): refreshed by the owning
  // server at each event/epoch boundary, NOT accumulated — each field is
  // the structure's current size at the last refresh. Add() sums them
  // like every other field, which is the right aggregate across shards:
  // every shard's catalog and query-state slab is real, private memory
  // (the broadcast-document design replicates postings per shard on
  // purpose), so the sum is the engine's total footprint. They are
  // intentionally NOT on the sharded take-once list above.
  std::uint64_t catalog_slab_bytes = 0;     ///< TermState slab reservation
  std::uint64_t postings_bytes = 0;         ///< live inverted-list entries
  std::uint64_t threshold_entries = 0;      ///< (theta, query) pairs across trees
  std::uint64_t query_state_slots = 0;      ///< QueryState slab length (incl. free)
  std::uint64_t hot_tier_terms = 0;         ///< terms currently in the hot tier
  /// Live registered queries (maintained by the engine on every
  /// register/unregister, so per-shard instances track the LIVE placement
  /// after load-aware migrations, not the initial one).
  std::uint64_t registered_queries = 0;

  // Window-arena gauges (DESIGN.md §8): reported by whoever OWNS the
  // arena — a standalone sequential server, or the sharded engine for its
  // single shared arena. Embedded shared-arena servers report 0, so the
  // cross-shard sum equals the owner's figure and document bytes stay
  // constant in the shard count (the point of the shared arena).
  std::uint64_t arena_segments = 0;         ///< live window-arena segments
  std::uint64_t document_bytes = 0;         ///< bytes held by the window arena

  void Reset() { *this = ServerStats(); }

  /// Adds every counter of `other` into this instance — the per-shard
  /// aggregation primitive. Field-complete by construction: keep in sync
  /// with the member list (stats_concurrency_test guards it).
  void Add(const ServerStats& other);

  /// Multi-line human-readable dump (one "name = value" per line).
  std::string ToString() const;
};

}  // namespace ita
