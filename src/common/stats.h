// Operation statistics exported by every server implementation. The
// counters quantify exactly the work the paper reasons about (probes,
// score computations, roll-ups, refills) and power the ablation benches.

#pragma once

#include <cstdint>
#include <string>

namespace ita {

/// Monotonic operation counters; reset with Reset(). All counts are since
/// construction or the last Reset().
struct ServerStats {
  // Stream plumbing.
  std::uint64_t documents_ingested = 0;
  std::uint64_t documents_expired = 0;
  std::uint64_t batches_ingested = 0;       ///< IngestBatch epochs processed
  std::uint64_t index_entries_inserted = 0;
  std::uint64_t index_entries_erased = 0;

  // Query evaluation work.
  std::uint64_t scores_computed = 0;        ///< full S(d|Q) evaluations
  std::uint64_t queries_probed = 0;         ///< query "may be affected" hits
  std::uint64_t membership_checks = 0;      ///< Naive: is d in R(Q)?
  std::uint64_t result_insertions = 0;      ///< documents added to some R
  std::uint64_t result_removals = 0;        ///< documents dropped from some R

  // ITA-specific machinery.
  std::uint64_t threshold_probe_steps = 0;  ///< threshold-tree entries visited
  std::uint64_t list_entries_read = 0;      ///< inverted-list entries consumed by TA
  std::uint64_t rollup_steps = 0;           ///< local-threshold lifts
  std::uint64_t rollup_evictions = 0;       ///< R evictions due to roll-up
  std::uint64_t refills = 0;                ///< post-expiration search resumptions

  // Naive-specific machinery.
  std::uint64_t full_rescans = 0;           ///< top-k_max recomputations over D

  void Reset() { *this = ServerStats(); }

  /// Multi-line human-readable dump (one "name = value" per line).
  std::string ToString() const;
};

}  // namespace ita
