// Virtual time. The server and the stream machinery never consult the wall
// clock: all timestamps are microseconds of simulated time, which makes
// time-based sliding windows exactly reproducible in tests and benches.

#pragma once

#include <cstdint>

#include "common/logging.h"
#include "common/types.h"

namespace ita {

inline constexpr Timestamp kMicrosPerSecond = 1'000'000;
inline constexpr Timestamp kMicrosPerMinute = 60 * kMicrosPerSecond;

/// Converts seconds of simulated time to a Timestamp duration.
constexpr Timestamp SecondsToMicros(double seconds) {
  return static_cast<Timestamp>(seconds * static_cast<double>(kMicrosPerSecond));
}

/// A monotonically advancing virtual clock.
class VirtualClock {
 public:
  explicit VirtualClock(Timestamp start = 0) : now_(start) {}

  Timestamp Now() const { return now_; }

  /// Advances the clock by a non-negative duration and returns the new time.
  Timestamp Advance(Timestamp delta) {
    ITA_DCHECK(delta >= 0) << "clock may not move backwards";
    now_ += delta;
    return now_;
  }

  /// Jumps to an absolute time not earlier than the current one.
  void AdvanceTo(Timestamp t) {
    ITA_DCHECK(t >= now_) << "clock may not move backwards";
    now_ = t;
  }

 private:
  Timestamp now_;
};

}  // namespace ita
