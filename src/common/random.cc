#include "common/random.h"

#include <algorithm>

namespace ita {

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_(s) {
  ITA_CHECK(n > 0) << "Zipf distribution needs a non-empty support";
  ITA_CHECK(s >= 0.0) << "Zipf exponent must be non-negative";
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s_);
    cdf_[r] = acc;
  }
  norm_ = acc;
  for (std::size_t r = 0; r < n; ++r) cdf_[r] /= norm_;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(std::size_t rank) const {
  ITA_DCHECK(rank < cdf_.size());
  return 1.0 / std::pow(static_cast<double>(rank + 1), s_) / norm_;
}

}  // namespace ita
