// Minimal leveled logging and assertion macros.
//
// ITA_CHECK(cond) aborts on violation in all build types and is reserved
// for invariants whose violation would corrupt server state; ITA_DCHECK is
// compiled out of release builds and guards hot paths.

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ita {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal {

/// Process-wide minimum level actually emitted; default Info.
LogLevel& MinLogLevel();

inline const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}

/// Accumulates one log line and flushes it to stderr on destruction.
/// Fatal messages abort the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
  }

  ~LogMessage() {
    if (level_ >= MinLogLevel()) {
      stream_ << "\n";
      std::cerr << stream_.str() << std::flush;
    }
    if (level_ == LogLevel::kFatal) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

}  // namespace internal

/// Sets the process-wide minimum level emitted by ITA_LOG.
inline void SetMinLogLevel(LogLevel level) { internal::MinLogLevel() = level; }

}  // namespace ita

#define ITA_LOG(level)                                                     \
  ::ita::internal::LogMessage(::ita::LogLevel::k##level, __FILE__, __LINE__).stream()

#define ITA_CHECK(cond)                                                    \
  if (!(cond))                                                             \
  ::ita::internal::LogMessage(::ita::LogLevel::kFatal, __FILE__, __LINE__).stream() \
      << "Check failed: " #cond " "

#define ITA_CHECK_OK(expr)                                                 \
  if (::ita::Status _ita_check_status = (expr); !_ita_check_status.ok())   \
  ::ita::internal::LogMessage(::ita::LogLevel::kFatal, __FILE__, __LINE__).stream() \
      << "Status not OK: " << _ita_check_status.ToString() << " "

#ifdef NDEBUG
#define ITA_DCHECK(cond) \
  if (true) {            \
  } else                 \
    ::ita::internal::NullStream()
#else
#define ITA_DCHECK(cond) ITA_CHECK(cond)
#endif
