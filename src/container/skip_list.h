// An ordered skip list (Pugh 1990) with bidirectional level-0 links.
//
// This is the ordering backbone of the whole system:
//   * inverted lists keep <w_{d,t}, d> impact entries in decreasing-weight
//     order and are scanned downward by the threshold algorithm and the
//     incremental refill, and one-step-backward by the roll-up;
//   * threshold trees keep <theta_{Q,t}, Q> entries in increasing-theta
//     order and are range-scanned from the front on every probe;
//   * result sets keep <score, d> entries in decreasing-score order.
//
// Design notes (following the LevelDB/RocksDB memtable idiom):
//   * nodes are allocated in one block with a flexible forward-pointer
//     array sized to the node's tower height;
//   * elements are unique under the comparator (Insert reports duplicates);
//   * the level-0 chain is doubly linked so iterators are bidirectional,
//     which the threshold roll-up needs to find "the preceding entry";
//   * heights are drawn from a fixed-seed xoshiro generator, so structure
//     and performance are reproducible run to run.
//
// Not thread-safe; the server is single-threaded per the paper's model.

#pragma once

#include <cstdint>
#include <new>
#include <utility>

#include "common/logging.h"
#include "common/random.h"

namespace ita {

template <typename T, typename Compare>
class SkipList {
 public:
  static constexpr int kMaxHeight = 20;      // comfortable for ~1M entries
  static constexpr unsigned kBranching = 4;  // P(level up) = 1/4

  class Iterator;
  using value_type = T;
  using iterator = Iterator;
  using const_iterator = Iterator;

  explicit SkipList(Compare cmp = Compare())
      : cmp_(cmp), rng_(0x5EEDC0FFEE15D00DULL) {
    head_ = AllocateNode(kMaxHeight, /*construct_value=*/false);
    for (int i = 0; i < kMaxHeight; ++i) head_->next[i] = nullptr;
    head_->prev = nullptr;
    last_ = head_;
  }

  ~SkipList() {
    if (head_ != nullptr) Clear();  // headless = moved-from: nothing to walk
    for (int h = 1; h <= kMaxHeight; ++h) {
      Node* node = free_list_[h - 1];
      while (node != nullptr) {
        Node* next = node->next[0];
        ::operator delete(node);
        node = next;
      }
    }
    ::operator delete(head_);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Moves steal everything, including the head sentinel — no allocation
  /// (the slab-allocated query states of the slot map relocate their
  /// result sets on every growth, so a move must stay O(1) and truly
  /// noexcept). The moved-from list is left HEADLESS: it supports only
  /// destruction and assignment, not further element operations — the
  /// exact lifecycle a relocating container subjects it to. Iterators
  /// into `other` keep working; nodes do not move.
  SkipList(SkipList&& other) noexcept
      : cmp_(other.cmp_),
        rng_(other.rng_),
        head_(other.head_),
        last_(other.last_),
        size_(other.size_),
        height_(other.height_) {
    for (int h = 0; h < kMaxHeight; ++h) {
      free_list_[h] = other.free_list_[h];
      other.free_list_[h] = nullptr;
    }
    other.head_ = nullptr;
    other.last_ = nullptr;
    other.size_ = 0;
    other.height_ = 1;
  }
  SkipList& operator=(SkipList&& other) noexcept {
    if (this != &other) Swap(other);  // old contents die with `other`
    return *this;
  }

  /// Exchanges the entire contents (including recycled-node pools).
  void Swap(SkipList& other) noexcept {
    using std::swap;
    swap(cmp_, other.cmp_);
    swap(rng_, other.rng_);
    swap(head_, other.head_);
    swap(last_, other.last_);
    swap(size_, other.size_);
    swap(height_, other.height_);
    for (int h = 0; h < kMaxHeight; ++h) {
      swap(free_list_[h], other.free_list_[h]);
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Removes all elements.
  void Clear() {
    Node* n = head_->next[0];
    while (n != nullptr) {
      Node* next = n->next[0];
      FreeNode(n, /*destroy_value=*/true);
      n = next;
    }
    for (int i = 0; i < kMaxHeight; ++i) head_->next[i] = nullptr;
    last_ = head_;
    size_ = 0;
    height_ = 1;
  }

  /// Inserts `value` if no equivalent element exists. Returns the position
  /// of the (new or pre-existing) element and whether insertion happened.
  std::pair<Iterator, bool> Insert(const T& value) {
    Node* update[kMaxHeight];
    Node* succ = FindGreaterOrEqual(value, update);
    if (succ != nullptr && Equal(succ->value, value)) {
      return {Iterator(this, succ), false};
    }
    const int height = RandomHeight();
    if (height > height_) {
      // Searches only fill update up to the previously occupied height.
      for (int i = height_; i < height; ++i) update[i] = head_;
      height_ = height;
    }
    Node* node = AllocateNode(height, /*construct_value=*/false);
    new (&node->value) T(value);
    for (int i = 0; i < height; ++i) {
      node->next[i] = update[i]->next[i];
      update[i]->next[i] = node;
    }
    node->prev = update[0];
    if (node->next[0] != nullptr) {
      node->next[0]->prev = node;
    } else {
      last_ = node;
    }
    ++size_;
    return {Iterator(this, node), true};
  }

  /// Removes the element equivalent to `value`; returns false if absent.
  bool Erase(const T& value) {
    Node* update[kMaxHeight];
    Node* node = FindGreaterOrEqual(value, update);
    if (node == nullptr || !Equal(node->value, value)) return false;
    EraseNode(node, update);
    return true;
  }


  /// Removes the element at `pos` (which must be valid and dereferenceable)
  /// and returns the iterator following it.
  Iterator Erase(Iterator pos) {
    ITA_DCHECK(pos.node_ != nullptr && pos.node_ != head_);
    Node* next = pos.node_->next[0];
    const bool erased = Erase(pos.node_->value);
    ITA_DCHECK(erased);
    (void)erased;
    return Iterator(this, next);
  }

  /// Position of the element equivalent to `value`, or end().
  Iterator Find(const T& value) const {
    Node* node = FindGreaterOrEqual(value, nullptr);
    if (node != nullptr && Equal(node->value, value)) return Iterator(this, node);
    return end();
  }

  bool Contains(const T& value) const { return Find(value) != end(); }

  /// First element e with !(e < value), i.e. e >= value in list order.
  Iterator LowerBound(const T& value) const {
    return Iterator(this, FindGreaterOrEqual(value, nullptr));
  }

  /// First element e with value < e.
  Iterator UpperBound(const T& value) const {
    Node* x = head_;
    for (int level = height_ - 1; level >= 0; --level) {
      while (x->next[level] != nullptr && !cmp_(value, x->next[level]->value)) {
        x = x->next[level];
      }
    }
    return Iterator(this, x->next[0]);
  }

  Iterator begin() const { return Iterator(this, head_->next[0]); }
  Iterator end() const { return Iterator(this, nullptr); }

  /// Last element, or end() when empty.
  Iterator Back() const {
    return last_ == head_ ? end() : Iterator(this, last_);
  }

  /// Bidirectional iterator over the level-0 chain. Decrementing begin()
  /// or incrementing end() is undefined, as with standard containers.
  class Iterator {
   public:
    using value_type = T;

    Iterator() = default;

    const T& operator*() const { return node_->value; }
    const T* operator->() const { return &node_->value; }

    Iterator& operator++() {
      node_ = node_->next[0];
      return *this;
    }
    Iterator operator++(int) {
      Iterator tmp = *this;
      ++*this;
      return tmp;
    }

    Iterator& operator--() {
      if (node_ == nullptr) {
        node_ = list_->last_;
        ITA_DCHECK(node_ != list_->head_) << "--end() on empty skip list";
      } else {
        node_ = node_->prev;
        ITA_DCHECK(node_ != list_->head_) << "--begin()";
      }
      return *this;
    }
    Iterator operator--(int) {
      Iterator tmp = *this;
      --*this;
      return tmp;
    }

    /// True if a predecessor element exists (i.e. this is not begin() and
    /// the list is non-empty). Valid for end() as well.
    bool HasPrev() const {
      const auto* pred = node_ == nullptr ? list_->last_ : node_->prev;
      return pred != list_->head_;
    }

    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.node_ == b.node_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.node_ != b.node_;
    }

   private:
    friend class SkipList;
    Iterator(const SkipList* list, typename SkipList::Node* node)
        : list_(list), node_(node) {}

    const SkipList* list_ = nullptr;
    typename SkipList::Node* node_ = nullptr;
  };

 private:
  struct Node {
    T value;
    Node* prev;
    std::int32_t height;
    Node* next[1];  // flexible: `height` pointers are allocated
  };

  // Nodes are recycled through per-height free lists: sliding-window
  // workloads insert and erase at the same steady rate, so after warm-up
  // almost every allocation is served without touching the allocator.
  Node* AllocateNode(int height, bool construct_value) {
    Node* node = free_list_[height - 1];
    if (node != nullptr) {
      free_list_[height - 1] = node->next[0];
    } else {
      const std::size_t bytes =
          sizeof(Node) + sizeof(Node*) * static_cast<std::size_t>(height - 1);
      node = static_cast<Node*>(::operator new(bytes));
    }
    node->height = height;
    node->prev = nullptr;
    if (construct_value) new (&node->value) T();
    return node;
  }

  void FreeNode(Node* node, bool destroy_value) {
    if (destroy_value) node->value.~T();
    node->next[0] = free_list_[node->height - 1];
    free_list_[node->height - 1] = node;
  }

  bool Equal(const T& a, const T& b) const { return !cmp_(a, b) && !cmp_(b, a); }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && (rng_.Next() % kBranching) == 0) ++height;
    return height;
  }

  /// First node whose value is >= `value` in list order; fills `update`
  /// (when non-null) with the rightmost node < value at every level.
  Node* FindGreaterOrEqual(const T& value, Node** update) const {
    Node* x = head_;
    for (int level = height_ - 1; level >= 0; --level) {
      while (x->next[level] != nullptr && cmp_(x->next[level]->value, value)) {
        x = x->next[level];
      }
      if (update != nullptr) update[level] = x;
    }
    return x->next[0];
  }

  void EraseNode(Node* node, Node** update) {
    for (int i = 0; i < node->height; ++i) {
      ITA_DCHECK(update[i]->next[i] == node);
      update[i]->next[i] = node->next[i];
    }
    if (node->next[0] != nullptr) {
      node->next[0]->prev = node->prev;
    } else {
      last_ = node->prev;
    }
    FreeNode(node, /*destroy_value=*/true);
    --size_;
    while (height_ > 1 && head_->next[height_ - 1] == nullptr) --height_;
  }

  Compare cmp_;
  Rng rng_;
  Node* head_;          // sentinel; value never constructed
  Node* last_ = nullptr;  // last real node, or head_ when empty
  std::size_t size_ = 0;
  /// Levels currently occupied (LevelDB-style): searches start at
  /// height_ - 1 instead of kMaxHeight - 1, so operations on the many
  /// short lists of a Zipfian index skip the empty upper levels.
  int height_ = 1;
  Node* free_list_[kMaxHeight] = {};  // recycled nodes, bucketed by height
};

}  // namespace ita
