// A slab allocator for per-entity state: values live in one contiguous
// growable array of slots, Insert returns a dense std::uint32_t slot
// index that stays valid until Erase, and erased slots are recycled
// through a free list (LIFO, so churny workloads reuse the hottest
// cache lines instead of growing the slab).
//
// This is the query-state backbone of the unified per-term catalog
// (DESIGN.md §7): ItaServer keys every hot-path structure — threshold
// tree entries, batch-affected runs — by slot instead of QueryId, so a
// probe hit resolves with one indexed slab access instead of a hash
// lookup. The slot index is 32-bit on purpose: it packs beside a double
// in threshold-tree entries with no padding growth.
//
// Guarantees:
//   * slot stability — a slot index stays valid (and maps to the same
//     value) until Erase(slot); Insert never moves the mapping;
//   * NO pointer stability — Insert may grow the slab and move values;
//     hold slots across mutations, not pointers;
//   * dense iteration — ForEach visits occupied slots in slot order,
//     touching one contiguous array;
//   * O(1) Insert/Erase/lookup, no per-value heap allocation.
//
// Not thread-safe; the server is single-threaded per the paper's model.

#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace ita {

template <typename T>
class SlotMap {
 public:
  using SlotIndex = std::uint32_t;
  static constexpr SlotIndex kInvalidSlot = UINT32_C(0xFFFFFFFF);

  /// Takes ownership of `value` and returns its slot: the lowest-
  /// most-recently-freed slot if any is available, otherwise a fresh one
  /// at the end of the slab.
  SlotIndex Insert(T value) {
    if (!free_.empty()) {
      const SlotIndex slot = free_.back();
      free_.pop_back();
      ITA_DCHECK(!slots_[slot].has_value());
      slots_[slot].emplace(std::move(value));
      ++size_;
      return slot;
    }
    ITA_CHECK(slots_.size() < kInvalidSlot) << "slot map full";
    slots_.emplace_back(std::in_place, std::move(value));
    ++size_;
    return static_cast<SlotIndex>(slots_.size() - 1);
  }

  /// Destroys the value at `slot` and recycles the slot. Returns false if
  /// the slot is vacant or out of range.
  bool Erase(SlotIndex slot) {
    if (slot >= slots_.size() || !slots_[slot].has_value()) return false;
    slots_[slot].reset();
    free_.push_back(slot);
    --size_;
    return true;
  }

  /// The value at `slot`, or nullptr when vacant/out of range.
  T* Get(SlotIndex slot) {
    if (slot >= slots_.size() || !slots_[slot].has_value()) return nullptr;
    return &*slots_[slot];
  }
  const T* Get(SlotIndex slot) const {
    if (slot >= slots_.size() || !slots_[slot].has_value()) return nullptr;
    return &*slots_[slot];
  }

  /// Unchecked-in-release access; the slot must be occupied.
  T& operator[](SlotIndex slot) {
    ITA_DCHECK(slot < slots_.size() && slots_[slot].has_value());
    return *slots_[slot];
  }
  const T& operator[](SlotIndex slot) const {
    ITA_DCHECK(slot < slots_.size() && slots_[slot].has_value());
    return *slots_[slot];
  }

  bool Contains(SlotIndex slot) const {
    return slot < slots_.size() && slots_[slot].has_value();
  }

  /// Invokes fn(slot, value) for every occupied slot, ascending by slot —
  /// one linear pass over the slab.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (SlotIndex s = 0; s < slots_.size(); ++s) {
      if (slots_[s].has_value()) fn(s, *slots_[s]);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (SlotIndex s = 0; s < slots_.size(); ++s) {
      if (slots_[s].has_value()) fn(s, *slots_[s]);
    }
  }

  /// Occupied slots.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slab length: occupied + free slots (never shrinks; bounds every
  /// outstanding slot index).
  std::size_t slot_count() const { return slots_.size(); }
  std::size_t free_count() const { return free_.size(); }
  /// The vacant slots in recycling order: back() is reused first (LIFO).
  /// Persistence reads this to reproduce the exact slab layout — erasing
  /// a fresh map's slots in this order front-to-back rebuilds the stack.
  const std::vector<SlotIndex>& free_slots() const { return free_; }

  /// Bytes held by the slab and free list (capacity, not size) —
  /// introspection hook; the server's stats gauge reports slot_count().
  std::size_t slab_bytes() const {
    return slots_.capacity() * sizeof(std::optional<T>) +
           free_.capacity() * sizeof(SlotIndex);
  }

 private:
  std::vector<std::optional<T>> slots_;
  std::vector<SlotIndex> free_;  ///< vacant slots, reused LIFO
  std::size_t size_ = 0;
};

}  // namespace ita
