// A bounded "best k" accumulator.
//
// Used by the brute-force oracle and by the Naive baseline's full rescans:
// push every candidate, keep only the k best under a caller-supplied
// "ranks before" comparator, and extract them in rank order.

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace ita {

/// Keeps the `capacity` best elements seen so far. `RanksBefore(a, b)`
/// must be a strict weak ordering meaning "a belongs ahead of b in the
/// final output". Push is O(log k); TakeSorted is O(k log k).
template <typename T, typename RanksBefore>
class BoundedTopK {
 public:
  explicit BoundedTopK(std::size_t capacity, RanksBefore cmp = RanksBefore())
      : capacity_(capacity), cmp_(cmp) {
    heap_.reserve(capacity_ + 1);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Offers a candidate; keeps it only if it ranks among the best
  /// `capacity` seen so far. Returns true if the candidate was kept.
  bool Push(const T& value) {
    if (capacity_ == 0) return false;
    if (heap_.size() < capacity_) {
      heap_.push_back(value);
      std::push_heap(heap_.begin(), heap_.end(), cmp_);  // max-heap of worst-on-top
      return true;
    }
    // heap_.front() is the current worst kept element.
    if (cmp_(value, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), cmp_);
      heap_.back() = value;
      std::push_heap(heap_.begin(), heap_.end(), cmp_);
      return true;
    }
    return false;
  }

  /// The worst currently-kept element. Requires !empty().
  const T& Worst() const {
    ITA_DCHECK(!heap_.empty());
    return heap_.front();
  }

  /// Destructively extracts the kept elements in rank order (best first).
  std::vector<T> TakeSorted() {
    std::vector<T> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(), cmp_);
    return out;
  }

 private:
  std::size_t capacity_;
  RanksBefore cmp_;
  std::vector<T> heap_;
};

}  // namespace ita
