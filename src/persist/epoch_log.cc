#include "persist/epoch_log.h"

#include <algorithm>
#include <utility>

namespace ita::persist {

Status DeserializeEpoch(WireReader& r, sim::SimEpoch* epoch) {
  *epoch = sim::SimEpoch{};
  ITA_RETURN_NOT_OK(r.ReadU64(&epoch->index));

  std::uint64_t n_unregister = 0;
  ITA_RETURN_NOT_OK(r.ReadCount(&n_unregister, 4));
  epoch->unregister.reserve(n_unregister);
  for (std::uint64_t i = 0; i < n_unregister; ++i) {
    std::uint32_t id = 0;
    ITA_RETURN_NOT_OK(r.ReadU32(&id));
    epoch->unregister.push_back(static_cast<QueryId>(id));
  }

  std::uint64_t n_register = 0;
  ITA_RETURN_NOT_OK(r.ReadCount(&n_register, 16));
  epoch->register_ids.reserve(n_register);
  epoch->register_queries.reserve(n_register);
  for (std::uint64_t i = 0; i < n_register; ++i) {
    std::uint32_t id = 0;
    std::uint32_t k = 0;
    ITA_RETURN_NOT_OK(r.ReadU32(&id));
    ITA_RETURN_NOT_OK(r.ReadU32(&k));
    Query query;
    query.k = static_cast<int>(k);
    std::uint64_t n_terms = 0;
    ITA_RETURN_NOT_OK(r.ReadCount(&n_terms, 12));
    query.terms.reserve(n_terms);
    for (std::uint64_t t = 0; t < n_terms; ++t) {
      std::uint32_t term = 0;
      double weight = 0.0;
      ITA_RETURN_NOT_OK(r.ReadU32(&term));
      ITA_RETURN_NOT_OK(r.ReadDouble(&weight));
      query.terms.push_back({static_cast<TermId>(term), weight});
    }
    epoch->register_ids.push_back(static_cast<QueryId>(id));
    epoch->register_queries.push_back(std::move(query));
  }

  std::uint64_t n_docs = 0;
  ITA_RETURN_NOT_OK(r.ReadCount(&n_docs, 24));
  epoch->batch.reserve(n_docs);
  for (std::uint64_t i = 0; i < n_docs; ++i) {
    Document doc;
    std::uint64_t arrival = 0;
    std::uint64_t tokens = 0;
    ITA_RETURN_NOT_OK(r.ReadU64(&arrival));
    ITA_RETURN_NOT_OK(r.ReadU64(&tokens));
    doc.arrival_time = static_cast<Timestamp>(arrival);
    doc.token_count = static_cast<std::size_t>(tokens);
    std::uint64_t n_comp = 0;
    ITA_RETURN_NOT_OK(r.ReadCount(&n_comp, 12));
    doc.composition.reserve(n_comp);
    for (std::uint64_t c = 0; c < n_comp; ++c) {
      std::uint32_t term = 0;
      double weight = 0.0;
      ITA_RETURN_NOT_OK(r.ReadU32(&term));
      ITA_RETURN_NOT_OK(r.ReadDouble(&weight));
      doc.composition.push_back({static_cast<TermId>(term), weight});
    }
    epoch->batch.push_back(std::move(doc));
  }

  ITA_RETURN_NOT_OK(r.ReadBool(&epoch->has_advance));
  std::uint64_t advance_to = 0;
  ITA_RETURN_NOT_OK(r.ReadU64(&advance_to));
  epoch->advance_to = static_cast<Timestamp>(advance_to);
  return Status::OK();
}

void EpochLog::Append(const sim::SimEpoch& epoch) {
  scratch_.clear();
  sim::SerializeEpoch(epoch, &scratch_);
  WireWriter w(&buf_);
  w.PutU8(kEpochRecordType);
  w.PutU64(scratch_.size());
  w.PutU64(Fnv1a(scratch_));
  buf_.append(scratch_);
  ++records_;
}

void EpochLog::TearTail(std::size_t n) {
  buf_.resize(buf_.size() - std::min(n, buf_.size()));
}

StatusOr<std::vector<sim::SimEpoch>> ParseEpochLog(std::string_view bytes,
                                                   TornTailPolicy policy) {
  std::vector<sim::SimEpoch> epochs;
  WireReader r(bytes);
  while (!r.AtEnd()) {
    const std::size_t record_at = r.position();
    std::uint8_t type = 0;
    std::uint64_t payload_len = 0;
    std::uint64_t want_fnv = 0;
    std::string_view payload;
    // A record can be torn only if it reaches the end of the buffer —
    // anything that fails before the buffer runs out is interior
    // corruption and fails regardless of policy.
    Status frame = Status::OK();
    if (!(frame = r.ReadU8(&type)).ok() ||
        !(frame = r.ReadU64(&payload_len)).ok() ||
        !(frame = r.ReadU64(&want_fnv)).ok() ||
        payload_len > r.remaining()) {
      if (frame.ok()) {
        frame = Status::IoError("log: truncated payload of record " +
                                std::to_string(epochs.size()));
      }
      if (policy == TornTailPolicy::kTruncate) return epochs;
      return Status::IoError(
          "log: torn final log record at offset " + std::to_string(record_at) +
          " (" + frame.message() + ")");
    }
    if (type != kEpochRecordType) {
      return Status::InvalidArgument("log: unknown record type " +
                                     std::to_string(type) + " at offset " +
                                     std::to_string(record_at));
    }
    payload = bytes.substr(r.position(), payload_len);
    (void)r.Skip(payload_len, "record payload");
    if (Fnv1a(payload) != want_fnv) {
      // A checksum-failing FINAL record is indistinguishable from a
      // crash mid-payload-write; interior ones are corruption proper.
      if (r.AtEnd()) {
        if (policy == TornTailPolicy::kTruncate) return epochs;
        return Status::IoError("log: torn final log record at offset " +
                               std::to_string(record_at) +
                               " (checksum mismatch)");
      }
      return Status::Internal("log: checksum mismatch in record " +
                              std::to_string(epochs.size()) + " at offset " +
                              std::to_string(record_at));
    }
    sim::SimEpoch epoch;
    WireReader pr(payload);
    Status parsed = DeserializeEpoch(pr, &epoch);
    if (parsed.ok()) parsed = pr.ExpectEnd();
    if (!parsed.ok()) {
      return Status::Internal("log: malformed epoch payload in record " +
                              std::to_string(epochs.size()) + ": " +
                              parsed.message());
    }
    epochs.push_back(std::move(epoch));
  }
  return epochs;
}

}  // namespace ita::persist
