/// \file
/// The little-endian wire primitives every persisted artifact is built
/// from (DESIGN.md §13): a WireWriter appending fixed-width integers,
/// IEEE-754 double bit patterns and length-prefixed byte strings to a
/// caller-owned buffer, and a bounds-checked WireReader inverting it.
/// The byte layout deliberately matches the canonical SimEpoch
/// serialization (sim/event_stream.cc) — u32/u64 little-endian, doubles
/// as bit patterns — so "equal" always means bit-equal, and the same
/// FNV-1a 64 digest used by StreamFingerprint seals every snapshot
/// section and log record.
///
/// Error surface: every reader failure is a typed Status (IoError for
/// truncation — bytes the layout promises are missing), never a crash
/// and never a silent partial read; a failed read leaves the cursor
/// where the failure was detected.

#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ita::persist {

/// FNV-1a 64 offset basis — the same constant sim::StreamFingerprint
/// seeds with, so persisted digests and stream digests share one hash.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
/// FNV-1a 64 prime.
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Order-sensitive FNV-1a 64 over `bytes`, resumable via `seed`.
inline std::uint64_t Fnv1a(std::string_view bytes,
                           std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Appends wire-format fields to a caller-owned string. The writer never
/// fails: the buffer grows as needed and the caller decides where the
/// bytes go (a snapshot section, a log record, a test fixture).
class WireWriter {
 public:
  /// Binds the writer to `out` (not owned; appended to, never cleared).
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutU8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void PutU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  void PutU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  /// Signed 64-bit values (timestamps) travel as their two's-complement
  /// bit pattern.
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }

  /// Doubles travel as IEEE-754 bit patterns: equality is bit-equality.
  void PutDouble(double v) { PutU64(std::bit_cast<std::uint64_t>(v)); }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Length-prefixed (u64) byte string.
  void PutBytes(std::string_view bytes) {
    PutU64(bytes.size());
    out_->append(bytes.data(), bytes.size());
  }

  /// The bound buffer (for sealing a section once it is complete).
  const std::string& buffer() const { return *out_; }

 private:
  std::string* out_;
};

/// Bounds-checked reader over a wire-format byte range. Does not own the
/// bytes; they must outlive the reader and any string_view it hands out.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  Status ReadU8(std::uint8_t* v) {
    ITA_RETURN_NOT_OK(Need(1, "u8"));
    *v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return Status::OK();
  }

  Status ReadU32(std::uint32_t* v) {
    ITA_RETURN_NOT_OK(Need(4, "u32"));
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return Status::OK();
  }

  Status ReadU64(std::uint64_t* v) {
    ITA_RETURN_NOT_OK(Need(8, "u64"));
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return Status::OK();
  }

  Status ReadI64(std::int64_t* v) {
    std::uint64_t raw = 0;
    ITA_RETURN_NOT_OK(ReadU64(&raw));
    *v = static_cast<std::int64_t>(raw);
    return Status::OK();
  }

  Status ReadDouble(double* v) {
    std::uint64_t raw = 0;
    ITA_RETURN_NOT_OK(ReadU64(&raw));
    *v = std::bit_cast<double>(raw);
    return Status::OK();
  }

  Status ReadBool(bool* v) {
    std::uint8_t raw = 0;
    ITA_RETURN_NOT_OK(ReadU8(&raw));
    if (raw > 1) {
      return Status::IoError("wire: bool byte is " + std::to_string(raw));
    }
    *v = raw != 0;
    return Status::OK();
  }

  /// Length-prefixed byte string, returned as a view into the source.
  Status ReadBytes(std::string_view* v) {
    std::uint64_t len = 0;
    ITA_RETURN_NOT_OK(ReadU64(&len));
    ITA_RETURN_NOT_OK(Need(len, "bytes payload"));
    *v = bytes_.substr(pos_, len);
    pos_ += len;
    return Status::OK();
  }

  /// ReadBytes into an owning string.
  Status ReadString(std::string* v) {
    std::string_view view;
    ITA_RETURN_NOT_OK(ReadBytes(&view));
    v->assign(view);
    return Status::OK();
  }

  /// Reads an element count that the remaining bytes could plausibly
  /// hold (each element occupying at least `min_element_bytes`) — the
  /// guard that keeps a corrupted count from driving a multi-gigabyte
  /// reserve before the per-element reads would fail anyway.
  Status ReadCount(std::uint64_t* v, std::uint64_t min_element_bytes) {
    ITA_RETURN_NOT_OK(ReadU64(v));
    if (min_element_bytes > 0 && *v > remaining() / min_element_bytes) {
      return Status::IoError("wire: count " + std::to_string(*v) +
                             " exceeds remaining payload");
    }
    return Status::OK();
  }

  /// Advances the cursor over `n` bytes without materializing them.
  Status Skip(std::uint64_t n, const char* what) {
    ITA_RETURN_NOT_OK(Need(n, what));
    pos_ += n;
    return Status::OK();
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  /// IoError unless the reader stands exactly at the end — catches both
  /// truncation (earlier reads fail) and trailing garbage.
  Status ExpectEnd() const {
    if (!AtEnd()) {
      return Status::IoError("wire: " + std::to_string(remaining()) +
                             " unconsumed trailing bytes");
    }
    return Status::OK();
  }

 private:
  Status Need(std::uint64_t n, const char* what) const {
    if (n > remaining()) {
      return Status::IoError(std::string("wire: truncated ") + what +
                             " at offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace ita::persist
