#include "persist/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace ita::persist {

void ExportPersistStats(const PersistStats& stats,
                        obs::MetricsRegistry* registry) {
  const auto gauge = [&](const char* name, const char* help,
                         std::uint64_t value) {
    (void)registry->AddGauge(name, help, {}, static_cast<double>(value));
  };
  gauge("ita_persist_snapshots_written", "Snapshots written since start",
        stats.snapshots_written);
  gauge("ita_persist_snapshot_bytes", "Total snapshot bytes written",
        stats.snapshot_bytes);
  gauge("ita_persist_snapshot_write_nanos",
        "Total wall time spent writing snapshots, in nanoseconds",
        stats.snapshot_write_nanos);
  gauge("ita_persist_restores", "Snapshot restores since start",
        stats.restores);
  gauge("ita_persist_restore_nanos",
        "Total wall time spent restoring snapshots, in nanoseconds",
        stats.restore_nanos);
  gauge("ita_persist_log_records_appended",
        "Epoch records appended to the write-ahead log",
        stats.log_records_appended);
  gauge("ita_persist_log_bytes_appended",
        "Bytes appended to the write-ahead log", stats.log_bytes_appended);
  gauge("ita_persist_replayed_epochs",
        "Epochs re-applied from log tails during recovery",
        stats.replayed_epochs);
  gauge("ita_persist_replay_nanos",
        "Total wall time spent replaying log tails, in nanoseconds",
        stats.replay_nanos);
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("open '" + tmp + "': " + std::strerror(errno));
  }
  const bool wrote =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                           bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return Status::IoError("write '" + tmp + "': " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename '" + tmp + "' -> '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }
  out->clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::IoError("read '" + path + "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace ita::persist
