/// \file
/// The write-ahead epoch log (DESIGN.md §13): an append-only record
/// stream in which every canonical SimEpoch / ingest batch is durably
/// framed BEFORE it is applied to the server. Recovery is "load the
/// latest valid snapshot, replay the log tail": because the engines are
/// deterministic and every applied epoch was logged first, replaying the
/// tail reproduces the pre-crash state exactly, and epoch-indexed
/// consumers dedup re-deliveries (at-least-once delivery with
/// idempotent, epoch-indexed consumption — no commit records needed).
///
/// Record framing:
///   type u8 (kEpochRecordType) | payload_len u64 |
///   fnv1a(payload) u64 | payload = SerializeEpoch bytes
///
/// A crash can tear at most the FINAL record (appends are sequential),
/// so ParseEpochLog distinguishes the torn tail from interior
/// corruption: an interior bad record always fails (Internal /
/// InvalidArgument), while the policy decides the tail — kTruncate
/// (recovery: keep the valid prefix, drop the torn record; the unacked
/// source re-sends it) or kFail (a typed IoError, for the corruption
/// tests and for callers that expect a cleanly closed log).
///
/// DeserializeEpoch is the exact inverse of sim::SerializeEpoch — the
/// one place the canonical epoch byte layout is parsed. Document texts
/// are not part of the canonical layout (scoring and fingerprints never
/// read them), so replayed documents carry empty texts.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "persist/wire.h"
#include "sim/event_stream.h"

namespace ita::persist {

/// Record-type byte of an epoch record (the only type in format v1).
inline constexpr std::uint8_t kEpochRecordType = 1;

/// Parses one canonical epoch serialization (sim::SerializeEpoch) from
/// `reader` — the exact byte-level inverse, validated field by field.
Status DeserializeEpoch(WireReader& reader, sim::SimEpoch* epoch);

/// The append side of the write-ahead log: an in-memory byte buffer the
/// owner flushes to durable storage (or hands to the crash harness)
/// between Append and apply. Appends never fail; the buffer is the
/// record stream verbatim.
class EpochLog {
 public:
  /// Frames and appends one epoch record (serialize, length, checksum).
  void Append(const sim::SimEpoch& epoch);

  /// The record stream appended so far.
  const std::string& bytes() const { return buf_; }
  /// Records appended since construction or the last Clear().
  std::uint64_t records() const { return records_; }
  /// True when no record has been appended since the last Clear().
  bool empty() const { return buf_.empty(); }

  /// Drops every record — called right after a snapshot is cut, because
  /// the snapshot supersedes the log prefix it covers.
  void Clear() {
    buf_.clear();
    records_ = 0;
  }

  /// Simulates a torn final append: removes the last `n` bytes (clamped
  /// to the buffer) as if the crash hit mid-write. Test/harness hook.
  void TearTail(std::size_t n);

 private:
  std::string buf_;
  std::uint64_t records_ = 0;
  std::string scratch_;  ///< serialization scratch, reused across appends
};

/// How ParseEpochLog treats a torn (incomplete or checksum-failing)
/// final record; interior corruption always fails regardless.
enum class TornTailPolicy {
  kFail,      ///< typed IoError — the log must be cleanly closed
  kTruncate,  ///< keep the valid prefix, drop the torn record (recovery)
};

/// Decodes a log byte stream into its epochs; see the file comment for
/// the torn-tail semantics.
StatusOr<std::vector<sim::SimEpoch>> ParseEpochLog(std::string_view bytes,
                                                   TornTailPolicy policy);

}  // namespace ita::persist
