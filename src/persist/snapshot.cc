#include "persist/snapshot.h"

#include <cstring>

#include "common/logging.h"

namespace ita::persist {

SnapshotWriter::SnapshotWriter(std::string* out) : out_(out) {
  ITA_CHECK(out != nullptr);
  out_->append(kSnapshotMagic, sizeof(kSnapshotMagic));
  WireWriter w(out_);
  w.PutU32(kSnapshotVersion);
}

void SnapshotWriter::AddSection(std::string_view name,
                                std::string_view payload) {
  // An unnamed section could never be looked up again, and a name wider
  // than the u32 length field would silently truncate: both are writer
  // bugs, not data corruption.
  ITA_DCHECK(!name.empty());
  ITA_DCHECK(name.size() <= UINT32_MAX);
  WireWriter w(out_);
  w.PutU32(static_cast<std::uint32_t>(name.size()));
  out_->append(name.data(), name.size());
  w.PutU64(payload.size());
  w.PutU64(Fnv1a(payload));
  out_->append(payload.data(), payload.size());
}

StatusOr<SnapshotReader> SnapshotReader::Open(std::string_view bytes) {
  if (bytes.size() < sizeof(kSnapshotMagic)) {
    return Status::InvalidArgument("snapshot: shorter than the magic");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("snapshot: bad magic");
  }
  WireReader r(bytes.substr(sizeof(kSnapshotMagic)));
  std::uint32_t version = 0;
  if (!r.ReadU32(&version).ok()) {
    return Status::IoError("snapshot: truncated header");
  }
  if (version != kSnapshotVersion) {
    return Status::FailedPrecondition(
        "snapshot: format version " + std::to_string(version) +
        ", this build reads version " + std::to_string(kSnapshotVersion));
  }

  SnapshotReader reader;
  while (!r.AtEnd()) {
    std::uint32_t name_len = 0;
    if (!r.ReadU32(&name_len).ok()) {
      return Status::IoError("snapshot: truncated section header");
    }
    if (name_len > r.remaining()) {
      return Status::IoError("snapshot: truncated section name");
    }
    const std::size_t name_at = sizeof(kSnapshotMagic) + r.position();
    std::string name(bytes.substr(name_at, name_len));
    (void)r.Skip(name_len, "section name");
    std::uint64_t payload_len = 0;
    std::uint64_t want_fnv = 0;
    if (!r.ReadU64(&payload_len).ok() || !r.ReadU64(&want_fnv).ok()) {
      return Status::IoError("snapshot: truncated section header for '" +
                             name + "'");
    }
    if (payload_len > r.remaining()) {
      return Status::IoError("snapshot: truncated payload of section '" +
                             name + "'");
    }
    const std::size_t payload_at = sizeof(kSnapshotMagic) + r.position();
    const std::string_view payload = bytes.substr(payload_at, payload_len);
    (void)r.Skip(payload_len, "section payload");
    if (Fnv1a(payload) != want_fnv) {
      return Status::Internal("snapshot: checksum mismatch in section '" +
                              name + "'");
    }
    for (const auto& [existing, view] : reader.sections_) {
      (void)view;
      if (existing == name) {
        return Status::Internal("snapshot: duplicate section '" + name + "'");
      }
    }
    reader.sections_.emplace_back(std::move(name), payload);
  }
  return reader;
}

StatusOr<std::string_view> SnapshotReader::Section(
    std::string_view name) const {
  for (const auto& [existing, payload] : sections_) {
    if (existing == name) return payload;
  }
  return Status::NotFound("snapshot: no section '" + std::string(name) + "'");
}

bool SnapshotReader::Has(std::string_view name) const {
  for (const auto& [existing, payload] : sections_) {
    (void)payload;
    if (existing == name) return true;
  }
  return false;
}

std::vector<std::string> SnapshotReader::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, payload] : sections_) {
    (void)payload;
    names.push_back(name);
  }
  return names;
}

}  // namespace ita::persist
