/// \file
/// The versioned snapshot container (DESIGN.md §13): a fixed header
/// (magic "ITASNAP1", format version) followed by named sections, each
/// sealed with its own FNV-1a 64 checksum so corruption is localized to
/// the section it hit. Every persisted server state — a sequential
/// server, a sharded engine, one shard nested inside a sharded snapshot
/// — is one such container.
///
///   header : magic[8] | version u32
///   section: name_len u32 | name bytes | payload_len u64 |
///            fnv1a(payload) u64 | payload bytes
///
/// SnapshotReader::Open validates the whole container up front — magic,
/// version, framing, every checksum — and maps each failure mode to a
/// distinct typed Status (the corruption-detection tests pin them):
///   * wrong magic            -> InvalidArgument (not a snapshot at all)
///   * version mismatch       -> FailedPrecondition (needs a migration)
///   * truncated bytes        -> IoError (partial write / torn copy)
///   * checksum mismatch      -> Internal (bit rot inside a section)
/// A failed Open never yields a partially usable reader.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "persist/wire.h"

namespace ita::persist {

/// The 8-byte container magic.
inline constexpr char kSnapshotMagic[8] = {'I', 'T', 'A', 'S',
                                           'N', 'A', 'P', '1'};
/// Current container format version; Open rejects any other.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Appends a snapshot container to a caller-owned buffer: the header at
/// construction, one section per AddSection. Section names must be
/// unique within a container (checked by the reader).
class SnapshotWriter {
 public:
  /// Writes the container header into `out` (not owned, appended to).
  explicit SnapshotWriter(std::string* out);

  /// Appends one named, checksummed section.
  void AddSection(std::string_view name, std::string_view payload);

 private:
  std::string* out_;
};

/// Read side of the container; see the file comment for the validation
/// and error surface. Holds views into the caller's bytes — the source
/// buffer must outlive the reader and every section view it returns.
class SnapshotReader {
 public:
  /// Validates the whole container (header, framing, every section
  /// checksum) and indexes the sections.
  static StatusOr<SnapshotReader> Open(std::string_view bytes);

  /// The payload of section `name`; NotFound when absent.
  StatusOr<std::string_view> Section(std::string_view name) const;

  /// True when the container holds a section `name`.
  bool Has(std::string_view name) const;

  /// Section names in container order.
  std::vector<std::string> SectionNames() const;

 private:
  SnapshotReader() = default;

  std::vector<std::pair<std::string, std::string_view>> sections_;
};

}  // namespace ita::persist
