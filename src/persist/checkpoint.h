/// \file
/// Persistence bookkeeping shared by every checkpointing caller: the
/// PersistStats counter block (exported to obs/ as gauges), and the
/// atomic file helpers a durable deployment writes snapshots and logs
/// through. Kept separate from snapshot.h/epoch_log.h so the format
/// layers stay free of filesystem and metrics concerns.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ita::obs {
class MetricsRegistry;
}  // namespace ita::obs

namespace ita::persist {

/// Counters for the persistence path: how many snapshots/restores ran,
/// how long they took, and how many log bytes the WAL appended. Owned by
/// whoever drives checkpointing (the crash-restore runner, a serving
/// binary); exported via ExportPersistStats.
struct PersistStats {
  std::uint64_t snapshots_written = 0;
  std::uint64_t snapshot_bytes = 0;        ///< total bytes across snapshots
  std::uint64_t snapshot_write_nanos = 0;  ///< total Checkpoint() wall time
  std::uint64_t restores = 0;
  std::uint64_t restore_nanos = 0;  ///< total Restore() wall time
  std::uint64_t log_records_appended = 0;
  std::uint64_t log_bytes_appended = 0;
  std::uint64_t replayed_epochs = 0;  ///< epochs re-applied from log tails
  std::uint64_t replay_nanos = 0;     ///< total log-replay wall time
};

/// Registers one gauge per PersistStats field (prefix "ita_persist_")
/// reading through to `stats`, which must outlive the registry.
void ExportPersistStats(const PersistStats& stats,
                        obs::MetricsRegistry* registry);

/// Writes `bytes` to `path` atomically: a unique temp file in the same
/// directory, then rename over the target — a crashed writer can never
/// leave a half-written snapshot where a reader expects a whole one.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

/// Reads all of `path` into `*out`; IoError with the path on failure.
Status ReadFileToString(const std::string& path, std::string* out);

}  // namespace ita::persist
