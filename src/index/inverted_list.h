// An impact-ordered inverted list L_t (Figure 1): one <w_{d,t}, d> entry
// per valid document containing term t, sorted by decreasing weight (ties
// by decreasing document id, i.e. newest first).
//
// Storage is a sorted contiguous array rather than a linked structure:
// even the hottest lists of a Zipfian vocabulary (≈ window size entries)
// fit in L1/L2, so boundary searches are cache-resident binary searches,
// the threshold algorithm's downward scans are linear reads, and the
// batched ingest pipeline applies a whole epoch's postings for a term as
// ONE merge (insert) or compaction (erase) pass — the memory-traffic win
// that makes epoch batching pay (DESIGN.md §4). Single-posting insert and
// erase shift the tail with memmove, which at these sizes beats pointer-
// chasing node structures.
//
// Iterators are raw pointers into the array; any mutation invalidates
// them. The threshold machinery only holds iterators across read-only
// phases (searches and roll-up scans run strictly between index updates).

#pragma once

#include <algorithm>
#include <iterator>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace ita {

/// One inverted-list posting: document `doc` contains the list's term with
/// impact weight `weight` (> 0).
struct ImpactEntry {
  double weight = 0.0;
  DocId doc = kInvalidDocId;
};

/// Decreasing weight, then decreasing doc id (newest first).
struct ImpactOrder {
  bool operator()(const ImpactEntry& a, const ImpactEntry& b) const {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.doc > b.doc;
  }
};

/// Iterators that expose ImpactEntries living contiguously in memory
/// (pointers, vector iterators): bulk list operations can merge straight
/// from the caller's buffer. A concept (not a plain trait) so that
/// adapting iterators without iterator_traits plumbing — the batch
/// pipeline's posting views — cleanly evaluate to false instead of
/// failing to compile.
template <typename It>
concept ContiguousImpactRun =
    std::contiguous_iterator<It> &&
    std::same_as<std::remove_cv_t<std::iter_value_t<It>>, ImpactEntry>;

class InvertedList {
 public:
  using Iterator = const ImpactEntry*;

  /// Inserts the posting for (doc, weight). Returns false if an identical
  /// posting is already present (callers treat this as a logic error).
  bool Insert(DocId doc, double weight) {
    const ImpactEntry entry{weight, doc};
    const auto it =
        std::lower_bound(entries_.begin(), entries_.end(), entry, ImpactOrder{});
    if (it != entries_.end() && it->doc == doc && it->weight == weight) {
      return false;
    }
    entries_.insert(it, entry);
    return true;
  }

  /// Removes the posting for (doc, weight); the exact weight must be the
  /// one supplied at insertion (it comes from the composition list).
  bool Erase(DocId doc, double weight) {
    const ImpactEntry entry{weight, doc};
    const auto it =
        std::lower_bound(entries_.begin(), entries_.end(), entry, ImpactOrder{});
    if (it == entries_.end() || it->doc != doc || it->weight != weight) {
      return false;
    }
    entries_.erase(it);
    return true;
  }

  /// Inserts a run of postings already sorted by ImpactOrder (weight desc,
  /// doc desc) in one backward pass of binary-search jumps and block moves
  /// — the batched-ingest fast path. A run of k postings costs k searches
  /// plus at most one rewrite of the array, instead of k half-array
  /// shifts. The run must not contain postings already present. Returns
  /// the number inserted.
  ///
  /// Contiguous `ImpactEntry` input (pointers, vector iterators) is merged
  /// straight from the caller's buffer; only adapting iterators (the batch
  /// pipeline's posting views) pay a materialization into shared scratch.
  template <typename FwdIt>
  std::size_t InsertOrdered(FwdIt first, FwdIt last) {
    if constexpr (ContiguousImpactRun<FwdIt>) {
      return InsertOrderedRun(std::to_address(first),
                              static_cast<std::size_t>(last - first));
    } else {
      auto& run = RunScratch();
      run.clear();
      for (FwdIt it = first; it != last; ++it) run.push_back(*it);
      return InsertOrderedRun(run.data(), run.size());
    }
  }

  /// Removes a run of postings already sorted by ImpactOrder in one
  /// forward pass of binary-search jumps and block moves (targets absent
  /// from the list are skipped). The counterpart of InsertOrdered for the
  /// expiration side of an epoch. Returns the number erased.
  template <typename FwdIt>
  std::size_t EraseOrdered(FwdIt first, FwdIt last) {
    if (first == last) return 0;
    {
      FwdIt second = first;
      ++second;
      if (second == last) {
        const ImpactEntry target = *first;
        return Erase(target.doc, target.weight) ? 1 : 0;
      }
    }
    std::size_t erased = 0;
    auto write = entries_.begin();
    auto read = entries_.begin();
    for (FwdIt it = first; it != last; ++it) {
      const ImpactEntry target = *it;
      const auto pos =
          std::lower_bound(read, entries_.end(), target, ImpactOrder{});
      // The block [read, pos) survives: slide it down over the gap left by
      // prior erasures (no-op while nothing has been erased yet).
      write = (write == read) ? pos : std::move(read, pos, write);
      read = pos;
      if (read != entries_.end() && read->doc == target.doc &&
          read->weight == target.weight) {
        ++read;  // drop the matched posting
        ++erased;
      }
    }
    write = (write == read) ? entries_.end()
                            : std::move(read, entries_.end(), write);
    entries_.erase(write, entries_.end());
    return erased;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  Iterator begin() const { return entries_.data(); }
  Iterator end() const { return entries_.data() + entries_.size(); }

  /// First entry with weight strictly below `theta` — where a downward
  /// (initial or refill) scan resumes when the local threshold is `theta`.
  /// Returns end() when every entry weighs >= theta.
  Iterator FirstBelow(double theta) const {
    // Order is (weight desc, doc desc); kInvalidDocId (=0) sorts after all
    // real docs of equal weight, so this lands past the theta tie run.
    return LowerBound(ImpactEntry{theta, kInvalidDocId});
  }

  /// First entry with weight <= theta (start of the theta tie run, if any).
  Iterator FirstAtOrBelow(double theta) const {
    return LowerBound(ImpactEntry{theta, kMaxDocId});
  }

  /// The smallest distinct weight strictly above `theta` among current
  /// entries — the roll-up target "defined by the preceding entry"
  /// (Section III-B). Empty when no entry weighs more than theta.
  std::optional<double> NextWeightAbove(double theta) const {
    const Iterator it = FirstAtOrBelow(theta);
    if (it == begin()) return std::nullopt;
    return (it - 1)->weight;
  }

  /// Weight of the heaviest entry, or empty when the list is empty.
  std::optional<double> TopWeight() const {
    if (entries_.empty()) return std::nullopt;
    return entries_.front().weight;
  }

 private:
  /// The ordered-insert core over a materialized run (must not alias this
  /// list's own storage): backward pass of binary-search jumps and block
  /// moves, one array rewrite total.
  std::size_t InsertOrderedRun(const ImpactEntry* run, std::size_t n) {
    if (n == 0) return 0;
    if (n == 1) {
      // Singleton runs (the common case under a large vocabulary) take the
      // plain insert path: one search, one tail shift.
      const bool inserted = Insert(run[0].doc, run[0].weight);
      ITA_DCHECK(inserted);
      return inserted ? 1 : 0;
    }

    const std::size_t old_size = entries_.size();
    entries_.resize(old_size + n);
    auto read_end = entries_.begin() + static_cast<std::ptrdiff_t>(old_size);
    auto write_end = entries_.end();
    for (std::size_t j = n; j-- > 0;) {
      const ImpactEntry& value = run[j];
      const auto pos =
          std::lower_bound(entries_.begin(), read_end, value, ImpactOrder{});
      ITA_DCHECK(pos == read_end || pos->doc != value.doc ||
                 pos->weight != value.weight)
          << "duplicate posting in ordered insert: doc " << value.doc;
      // Everything in [pos, read_end) follows `value`: shift it into the
      // unsettled back block, then place the value in front of it.
      write_end = std::move_backward(pos, read_end, write_end);
      read_end = pos;
      *--write_end = value;
    }
    return n;
  }

  Iterator LowerBound(const ImpactEntry& probe) const {
    return std::lower_bound(entries_.data(), entries_.data() + entries_.size(),
                            probe, ImpactOrder{});
  }

  /// Shared scratch for materializing InsertOrdered runs (the server is
  /// single-threaded per the paper's model; thread_local keeps the class
  /// reusable from test threads).
  static std::vector<ImpactEntry>& RunScratch() {
    static thread_local std::vector<ImpactEntry> scratch;
    return scratch;
  }

  std::vector<ImpactEntry> entries_;
};

}  // namespace ita
