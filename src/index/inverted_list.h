// An impact-ordered inverted list L_t (Figure 1): one <w_{d,t}, d> entry
// per valid document containing term t, sorted by decreasing weight (ties
// by decreasing document id, i.e. newest first).
//
// Storage is a sorted contiguous array rather than a linked structure:
// even the hottest lists of a Zipfian vocabulary (≈ window size entries)
// fit in L1/L2, so boundary searches are cache-resident binary searches,
// the threshold algorithm's downward scans are linear reads, and the
// batched ingest pipeline applies a whole epoch's postings for a term as
// ONE merge (insert) or compaction (erase) pass — the memory-traffic win
// that makes epoch batching pay (DESIGN.md §4). Single-posting insert and
// erase shift the tail with memmove, which at these sizes beats pointer-
// chasing node structures.
//
// Block-max metadata (DESIGN.md §10): the array is covered by fixed
// 64-entry blocks; because entries descend by weight, a block's maximum
// is simply its first entry, so the metadata is the weight of every 64th
// entry, itself a descending array. The weight-boundary searches
// (FirstBelow / FirstAtOrBelow, the cursors of initial search, refill
// and roll-up) binary-search that 8-byte-dense sampled array — better
// cache behaviour than striding 16-byte entries — then finish with one
// SIMD scan (src/simd/) inside the one candidate block. The ordered
// merge passes narrow on the weight lanes the same way and resolve the
// doc tie-break scalar. Every search returns exactly the index
// std::lower_bound would: the kernels are counting primitives with
// scalar-identical semantics, so results are bit-identical (the
// equivalence suite in tests/simd/ pins this).
//
// The metadata is refreshed at the end of every mutating operation and
// is only consulted by the read-only API — never mid-merge, when the
// array is transiently incoherent. ValidateBlockMax() is the white-box
// hook the sim checker and the property tests assert between epochs.
//
// Iterators are raw pointers into the array; any mutation invalidates
// them. The threshold machinery only holds iterators across read-only
// phases (searches and roll-up scans run strictly between index updates).

#pragma once

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "simd/simd.h"

namespace ita {

/// One inverted-list posting: document `doc` contains the list's term with
/// impact weight `weight` (> 0).
struct ImpactEntry {
  double weight = 0.0;
  DocId doc = kInvalidDocId;
};

// The strided SIMD kernels read the weight lanes of the packed entry
// array at stride 2 doubles; the layout contract they rely on.
static_assert(sizeof(ImpactEntry) == 2 * sizeof(double) &&
                  offsetof(ImpactEntry, weight) == 0,
              "ImpactEntry must be a packed {double, 8-byte} pair");

/// Decreasing weight, then decreasing doc id (newest first).
struct ImpactOrder {
  bool operator()(const ImpactEntry& a, const ImpactEntry& b) const {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.doc > b.doc;
  }
};

/// Iterators that expose ImpactEntries living contiguously in memory
/// (pointers, vector iterators): bulk list operations can merge straight
/// from the caller's buffer. A concept (not a plain trait) so that
/// adapting iterators without iterator_traits plumbing — the batch
/// pipeline's posting views — cleanly evaluate to false instead of
/// failing to compile.
template <typename It>
concept ContiguousImpactRun =
    std::contiguous_iterator<It> &&
    std::same_as<std::remove_cv_t<std::iter_value_t<It>>, ImpactEntry>;

class InvertedList {
 public:
  using Iterator = const ImpactEntry*;

  /// Entries per block-max block (64 × 16 B = two blocks per memory
  /// page): coarse enough that the metadata stays tiny (one double per
  /// KiB of postings), fine enough that one SIMD scan settles a block.
  /// This is the cold-tier default; hot-tier lists densify the metadata
  /// at runtime via SetBlockBits (DESIGN.md §12).
  static constexpr std::size_t kBlockBits = 6;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;

  /// Current block-max granularity (log2 entries per block).
  std::size_t block_bits() const { return block_bits_; }
  /// Current entries per block-max block.
  std::size_t block_size() const { return std::size_t{1} << block_bits_; }

  /// Re-tiers the block-max metadata to 2^bits entries per block and
  /// rebuilds it. Pure representation change: every boundary search still
  /// returns exactly the index std::lower_bound would, so results are
  /// bit-identical across granularities — only the metadata density (and
  /// the in-block scan length it leaves) moves. Called by the catalog's
  /// tier migrations, strictly at epoch boundaries.
  void SetBlockBits(std::size_t bits) {
    ITA_DCHECK(bits > 0 && bits <= kBlockBits + 8);
    if (bits == block_bits_) return;
    block_bits_ = bits;
    RefreshBlockMaxFrom(0);
  }

  /// Inserts the posting for (doc, weight). Returns false if an identical
  /// posting is already present (callers treat this as a logic error).
  bool Insert(DocId doc, double weight) {
    const ImpactEntry entry{weight, doc};
    const std::size_t pos = ImpactLowerBound(0, entries_.size(), entry);
    if (pos != entries_.size() && entries_[pos].doc == doc &&
        entries_[pos].weight == weight) {
      return false;
    }
    entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(pos),
                    entry);
    RefreshBlockMaxFrom(pos >> block_bits_);
    return true;
  }

  /// Removes the posting for (doc, weight); the exact weight must be the
  /// one supplied at insertion (it comes from the composition list).
  bool Erase(DocId doc, double weight) {
    const ImpactEntry entry{weight, doc};
    const std::size_t pos = ImpactLowerBound(0, entries_.size(), entry);
    if (pos == entries_.size() || entries_[pos].doc != doc ||
        entries_[pos].weight != weight) {
      return false;
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(pos));
    RefreshBlockMaxFrom(pos >> block_bits_);
    return true;
  }

  /// Inserts a run of postings already sorted by ImpactOrder (weight desc,
  /// doc desc) in one backward pass of binary-search jumps and block moves
  /// — the batched-ingest fast path. A run of k postings costs k searches
  /// plus at most one rewrite of the array, instead of k half-array
  /// shifts. The run must not contain postings already present. Returns
  /// the number inserted.
  ///
  /// Contiguous `ImpactEntry` input (pointers, vector iterators) is merged
  /// straight from the caller's buffer; only adapting iterators (the batch
  /// pipeline's posting views) pay a materialization into shared scratch.
  template <typename FwdIt>
  std::size_t InsertOrdered(FwdIt first, FwdIt last) {
    if constexpr (ContiguousImpactRun<FwdIt>) {
      return InsertOrderedRun(std::to_address(first),
                              static_cast<std::size_t>(last - first));
    } else {
      auto& run = RunScratch();
      run.clear();
      for (FwdIt it = first; it != last; ++it) run.push_back(*it);
      return InsertOrderedRun(run.data(), run.size());
    }
  }

  /// Removes a run of postings already sorted by ImpactOrder in one
  /// forward pass of binary-search jumps and block moves (targets absent
  /// from the list are skipped). The counterpart of InsertOrdered for the
  /// expiration side of an epoch. Returns the number erased.
  template <typename FwdIt>
  std::size_t EraseOrdered(FwdIt first, FwdIt last) {
    if (first == last) return 0;
    {
      FwdIt second = first;
      ++second;
      if (second == last) {
        const ImpactEntry target = *first;
        return Erase(target.doc, target.weight) ? 1 : 0;
      }
    }
    const std::size_t n = entries_.size();
    std::size_t erased = 0;
    std::size_t write = 0;
    std::size_t read = 0;
    for (FwdIt it = first; it != last; ++it) {
      const ImpactEntry target = *it;
      const std::size_t pos = ImpactLowerBound(read, n, target);
      // The block [read, pos) survives: slide it down over the gap left by
      // prior erasures (no-op while nothing has been erased yet).
      if (write != read) {
        std::move(entries_.begin() + static_cast<std::ptrdiff_t>(read),
                  entries_.begin() + static_cast<std::ptrdiff_t>(pos),
                  entries_.begin() + static_cast<std::ptrdiff_t>(write));
      }
      write += pos - read;
      read = pos;
      if (read != n && entries_[read].doc == target.doc &&
          entries_[read].weight == target.weight) {
        ++read;  // drop the matched posting
        ++erased;
      }
    }
    if (write != read) {
      std::move(entries_.begin() + static_cast<std::ptrdiff_t>(read),
                entries_.end(),
                entries_.begin() + static_cast<std::ptrdiff_t>(write));
    }
    write += n - read;
    entries_.resize(write);
    RefreshBlockMaxFrom(0);
    return erased;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  Iterator begin() const { return entries_.data(); }
  Iterator end() const { return entries_.data() + entries_.size(); }

  /// First entry with weight strictly below `theta` — where a downward
  /// (initial or refill) scan resumes when the local threshold is `theta`.
  /// Returns end() when every entry weighs >= theta. (The full-order
  /// probe with the kInvalidDocId sentinel reduces to a pure weight
  /// predicate: no stored doc id is 0, so it lands past the theta tie
  /// run — exactly "first weight < theta".)
  Iterator FirstBelow(double theta) const {
    return begin() + WeightBoundIndex</*kOrEqual=*/false>(theta);
  }

  /// First entry with weight <= theta (start of the theta tie run, if
  /// any); the kMaxDocId-sentinel probe is "first weight <= theta".
  Iterator FirstAtOrBelow(double theta) const {
    return begin() + WeightBoundIndex</*kOrEqual=*/true>(theta);
  }

  /// The smallest distinct weight strictly above `theta` among current
  /// entries — the roll-up target "defined by the preceding entry"
  /// (Section III-B). Empty when no entry weighs more than theta.
  std::optional<double> NextWeightAbove(double theta) const {
    const Iterator it = FirstAtOrBelow(theta);
    if (it == begin()) return std::nullopt;
    return (it - 1)->weight;
  }

  /// Weight of the heaviest entry, or empty when the list is empty.
  std::optional<double> TopWeight() const {
    if (entries_.empty()) return std::nullopt;
    return entries_.front().weight;
  }

  /// White-box coherence check of the block-max metadata (the sim
  /// checker and property tests run it between epochs): one block per
  /// started block_size() entries — at the list's CURRENT granularity,
  /// so it covers both tiers — each recording its block's first (==
  /// maximum, by descending order) weight.
  bool ValidateBlockMax() const {
    const std::size_t blocks =
        (entries_.size() + block_size() - 1) >> block_bits_;
    if (block_max_.size() != blocks) return false;
    for (std::size_t b = 0; b < blocks; ++b) {
      if (block_max_[b] != entries_[b << block_bits_].weight) return false;
    }
    return true;
  }

  /// The recorded maximum of block `b` — test/debug hook.
  double BlockMaxAt(std::size_t b) const {
    ITA_DCHECK(b < block_max_.size());
    return block_max_[b];
  }
  /// Number of block-max blocks (== ceil(size() / block_size())).
  std::size_t BlockCount() const { return block_max_.size(); }

 private:
  /// The ordered-insert core over a materialized run (must not alias this
  /// list's own storage): backward pass of binary-search jumps and block
  /// moves, one array rewrite total.
  std::size_t InsertOrderedRun(const ImpactEntry* run, std::size_t n) {
    if (n == 0) return 0;
    if (n == 1) {
      // Singleton runs (the common case under a large vocabulary) take the
      // plain insert path: one search, one tail shift.
      const bool inserted = Insert(run[0].doc, run[0].weight);
      ITA_DCHECK(inserted);
      return inserted ? 1 : 0;
    }

    const std::size_t old_size = entries_.size();
    entries_.resize(old_size + n);
    std::size_t read_end = old_size;
    std::size_t write_end = entries_.size();
    for (std::size_t j = n; j-- > 0;) {
      const ImpactEntry& value = run[j];
      const std::size_t pos = ImpactLowerBound(0, read_end, value);
      ITA_DCHECK(pos == read_end || entries_[pos].doc != value.doc ||
                 entries_[pos].weight != value.weight)
          << "duplicate posting in ordered insert: doc " << value.doc;
      // Everything in [pos, read_end) follows `value`: shift it into the
      // unsettled back block, then place the value in front of it.
      std::move_backward(
          entries_.begin() + static_cast<std::ptrdiff_t>(pos),
          entries_.begin() + static_cast<std::ptrdiff_t>(read_end),
          entries_.begin() + static_cast<std::ptrdiff_t>(write_end));
      write_end -= read_end - pos;
      read_end = pos;
      entries_[--write_end] = value;
    }
    RefreshBlockMaxFrom(0);
    return n;
  }

  /// Index of std::lower_bound(entries + lo, entries + hi, target,
  /// ImpactOrder{}) — the merge passes' search primitive, valid on any
  /// coherent subrange (it never consults the block metadata, so it is
  /// safe mid-merge). Hybrid: binary-narrow on the weight lanes to one
  /// block, one SIMD scan for the first weight <= target.weight, then a
  /// bounded scalar walk through the equal-weight run for the doc
  /// tie-break (falling back to one std::lower_bound on adversarially
  /// long tie runs, keeping the worst case O(log n)).
  std::size_t ImpactLowerBound(std::size_t lo, std::size_t hi,
                               const ImpactEntry& target) const {
    std::size_t wlo = lo;
    std::size_t whi = hi;
    while (whi - wlo > kBlockSize) {
      const std::size_t mid = wlo + (whi - wlo) / 2;
      if (entries_[mid].weight <= target.weight) {
        whi = mid;
      } else {
        wlo = mid + 1;
      }
    }
    std::size_t i =
        wlo + (wlo == whi
                   ? 0
                   : simd::FirstStride2LessEqual(&entries_[wlo].weight,
                                                 whi - wlo, target.weight));
    std::size_t tie_steps = 0;
    while (i < hi && entries_[i].weight == target.weight &&
           entries_[i].doc > target.doc) {
      ++i;
      if (++tie_steps == kBlockSize) {
        return static_cast<std::size_t>(
            std::lower_bound(entries_.data() + i, entries_.data() + hi,
                             target, ImpactOrder{}) -
            entries_.data());
      }
    }
    return i;
  }

  /// First index whose weight satisfies "< theta" (or "<= theta"): the
  /// block-max descent behind FirstBelow / FirstAtOrBelow. Binary search
  /// over the sampled block heads finds the first block already past the
  /// boundary; the boundary itself then lies inside the preceding block,
  /// settled by one SIMD scan. Requires coherent metadata (read-only
  /// API; never called mid-merge).
  template <bool kOrEqual>
  std::size_t WeightBoundIndex(double theta) const {
    const std::size_t n = entries_.size();
    if (n == 0) return 0;
    std::size_t lo = 0;
    std::size_t hi = block_max_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const bool past = kOrEqual ? block_max_[mid] <= theta
                                 : block_max_[mid] < theta;
      if (past) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    // Block `lo` is the first whose head is past the boundary (every
    // earlier block was skipped wholesale: its head — its maximum — is
    // still at or above it). The boundary entry is its head or inside
    // the block before it.
    if (lo == 0) return 0;
    const std::size_t start = (lo - 1) << block_bits_;
    const std::size_t count = std::min(n, lo << block_bits_) - start;
    const double* base = &entries_[start].weight;
    const std::size_t off =
        kOrEqual ? simd::FirstStride2LessEqual(base, count, theta)
                 : simd::FirstStride2Less(base, count, theta);
    return start + off;
  }

  /// Recomputes the block maxima for blocks >= `first_block` (a mutation
  /// at index i leaves blocks below i >> block_bits_ untouched).
  void RefreshBlockMaxFrom(std::size_t first_block) {
    const std::size_t blocks =
        (entries_.size() + block_size() - 1) >> block_bits_;
    block_max_.resize(blocks);
    for (std::size_t b = first_block; b < blocks; ++b) {
      block_max_[b] = entries_[b << block_bits_].weight;
    }
  }

  /// Shared scratch for materializing InsertOrdered runs (the server is
  /// single-threaded per the paper's model; thread_local keeps the class
  /// reusable from test threads).
  static std::vector<ImpactEntry>& RunScratch() {
    static thread_local std::vector<ImpactEntry> scratch;
    return scratch;
  }

  std::vector<ImpactEntry> entries_;
  /// entries_[b << block_bits_].weight for every started block b — the
  /// descending sampled-weight array the boundary searches descend.
  std::vector<double> block_max_;
  /// log2 entries per block-max block: kBlockBits cold, denser when the
  /// catalog promotes this term's list to the hot tier.
  std::size_t block_bits_ = kBlockBits;
};

}  // namespace ita
