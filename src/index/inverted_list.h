// An impact-ordered inverted list L_t (Figure 1): one <w_{d,t}, d> entry
// per valid document containing term t, sorted by decreasing weight (ties
// by decreasing document id, i.e. newest first). Built on the skip list so
// that document arrival/expiration are O(log n) and the threshold
// algorithm can scan downward from any weight boundary — and the roll-up
// can step upward to the preceding entry.

#pragma once

#include <optional>

#include "common/types.h"
#include "container/skip_list.h"

namespace ita {

/// One inverted-list posting: document `doc` contains the list's term with
/// impact weight `weight` (> 0).
struct ImpactEntry {
  double weight = 0.0;
  DocId doc = kInvalidDocId;
};

/// Decreasing weight, then decreasing doc id (newest first).
struct ImpactOrder {
  bool operator()(const ImpactEntry& a, const ImpactEntry& b) const {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.doc > b.doc;
  }
};

class InvertedList {
 public:
  using List = SkipList<ImpactEntry, ImpactOrder>;
  using Iterator = List::Iterator;

  /// Inserts the posting for (doc, weight). Returns false if an identical
  /// posting is already present (callers treat this as a logic error).
  bool Insert(DocId doc, double weight) {
    return entries_.Insert(ImpactEntry{weight, doc}).second;
  }

  /// Removes the posting for (doc, weight); the exact weight must be the
  /// one supplied at insertion (it comes from the composition list).
  bool Erase(DocId doc, double weight) {
    return entries_.Erase(ImpactEntry{weight, doc});
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  Iterator begin() const { return entries_.begin(); }
  Iterator end() const { return entries_.end(); }

  /// First entry with weight strictly below `theta` — where a downward
  /// (initial or refill) scan resumes when the local threshold is `theta`.
  /// Returns end() when every entry weighs >= theta.
  Iterator FirstBelow(double theta) const {
    // Order is (weight desc, doc desc); kInvalidDocId (=0) sorts after all
    // real docs of equal weight, so this lands past the theta tie run.
    return entries_.LowerBound(ImpactEntry{theta, kInvalidDocId});
  }

  /// First entry with weight <= theta (start of the theta tie run, if any).
  Iterator FirstAtOrBelow(double theta) const {
    return entries_.LowerBound(ImpactEntry{theta, kMaxDocId});
  }

  /// The smallest distinct weight strictly above `theta` among current
  /// entries — the roll-up target "defined by the preceding entry"
  /// (Section III-B). Empty when no entry weighs more than theta.
  std::optional<double> NextWeightAbove(double theta) const {
    Iterator it = FirstAtOrBelow(theta);
    if (!it.HasPrev()) return std::nullopt;
    --it;
    return it->weight;
  }

  /// Weight of the heaviest entry, or empty when the list is empty.
  std::optional<double> TopWeight() const {
    if (entries_.empty()) return std::nullopt;
    return entries_.begin()->weight;
  }

 private:
  List entries_;
};

}  // namespace ita
