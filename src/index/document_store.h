// The list of valid documents (Figure 1): a FIFO of the documents inside
// the sliding window. Arrivals append at the tail; expirations pop the
// head. Ids are assigned here, strictly sequential with arrival order,
// which makes id -> document lookup O(1) (deque index = id - head id).

#pragma once

#include <deque>

#include "common/logging.h"
#include "common/types.h"
#include "stream/document.h"

namespace ita {

class DocumentStore {
 public:
  /// Takes ownership of `doc`, assigns the next sequential id (starting at
  /// 1) and returns it.
  DocId Append(Document doc) {
    doc.id = next_id_++;
    documents_.push_back(std::move(doc));
    return documents_.back().id;
  }

  std::size_t size() const { return documents_.size(); }
  bool empty() const { return documents_.empty(); }

  /// Oldest (next-to-expire) valid document. Requires !empty().
  const Document& Oldest() const {
    ITA_DCHECK(!documents_.empty());
    return documents_.front();
  }

  /// Removes and returns the oldest document.
  Document PopOldest() {
    ITA_DCHECK(!documents_.empty());
    Document doc = std::move(documents_.front());
    documents_.pop_front();
    return doc;
  }

  /// Valid document with the given id, or nullptr if it never existed or
  /// has expired.
  const Document* Get(DocId id) const {
    if (documents_.empty()) return nullptr;
    const DocId first = documents_.front().id;
    if (id < first || id >= next_id_) return nullptr;
    return &documents_[static_cast<std::size_t>(id - first)];
  }

  bool Contains(DocId id) const { return Get(id) != nullptr; }

  /// Iteration over valid documents, oldest first.
  std::deque<Document>::const_iterator begin() const { return documents_.begin(); }
  std::deque<Document>::const_iterator end() const { return documents_.end(); }

  /// Id that will be assigned to the next appended document.
  DocId next_id() const { return next_id_; }

 private:
  std::deque<Document> documents_;
  DocId next_id_ = 1;
};

}  // namespace ita
