#include "index/inverted_list.h"

// InvertedList is header-only; this translation unit anchors the header in
// the build so it is compiled (and its warnings surfaced) on its own.

namespace ita {}  // namespace ita
