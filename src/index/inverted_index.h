// The inverted index over the valid documents (Figure 1): term dictionary
// entries point to impact-ordered inverted lists. Lists are materialized
// lazily, on the first posting for a term, and are indexed densely by
// TermId.

#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "index/inverted_list.h"
#include "stream/document.h"

namespace ita {

class InvertedIndex {
 public:
  /// Inserts one posting per composition entry. Returns the number of
  /// postings inserted. The document id must be set.
  std::size_t AddDocument(const Document& doc);

  /// Removes the document's postings (exact inverse of AddDocument).
  /// Returns the number of postings removed.
  std::size_t RemoveDocument(const Document& doc);

  /// Batch (epoch) maintenance: inserts the postings of all documents,
  /// grouped per term and applied to each inverted list as one ordered
  /// run. Exactly equivalent to AddDocument on each document, but a term
  /// appearing in many batch documents costs one list pass instead of one
  /// top-down search per posting. Returns the number of postings inserted.
  std::size_t AddBatch(const std::vector<const Document*>& docs);

  /// Exact inverse of AddBatch (documents passed by value because the
  /// expiration path owns them by then). Returns postings removed.
  std::size_t RemoveBatch(const std::vector<Document>& docs);

  /// Lower-level run primitives for callers that already hold the batch's
  /// postings grouped per term (ItaServer flattens and sorts once per
  /// epoch and shares the runs between index maintenance and threshold
  /// probing). `FwdIt` dereferences to an ImpactEntry (by value or
  /// reference); the run must follow ImpactOrder. Return postings
  /// inserted/erased.
  template <typename FwdIt>
  std::size_t InsertRun(TermId term, FwdIt first, FwdIt last) {
    const std::size_t n = MutableList(term)->InsertOrdered(first, last);
    total_postings_ += n;
    return n;
  }
  template <typename FwdIt>
  std::size_t EraseRun(TermId term, FwdIt first, FwdIt last) {
    if (term >= lists_.size() || lists_[term] == nullptr) return 0;
    const std::size_t n = lists_[term]->EraseOrdered(first, last);
    total_postings_ -= n;
    return n;
  }

  /// The list for `term`, or nullptr if no posting was ever inserted for
  /// it. The pointer stays valid for the index's lifetime.
  const InvertedList* List(TermId term) const {
    if (term >= lists_.size()) return nullptr;
    return lists_[term].get();
  }

  /// Number of terms with a materialized list (counting emptied ones).
  std::size_t materialized_lists() const { return materialized_; }

  /// Total postings across all lists.
  std::size_t total_postings() const { return total_postings_; }

 private:
  InvertedList* MutableList(TermId term);

  /// One flattened posting of a batch, sortable into per-term ImpactOrder
  /// runs for InsertOrdered/EraseOrdered.
  struct FlatPosting {
    TermId term = kInvalidTermId;
    ImpactEntry entry;
  };
  /// Forward iterator exposing the ImpactEntry of a FlatPosting run.
  struct EntryIterator {
    const FlatPosting* p = nullptr;
    const ImpactEntry& operator*() const { return p->entry; }
    EntryIterator& operator++() {
      ++p;
      return *this;
    }
    friend bool operator==(EntryIterator a, EntryIterator b) { return a.p == b.p; }
    friend bool operator!=(EntryIterator a, EntryIterator b) { return a.p != b.p; }
  };
  /// Flattens, sorts and applies the scratch postings via `apply(list,
  /// run_begin, run_end)` once per term group.
  template <typename Apply>
  std::size_t ForEachTermRun(Apply&& apply);

  std::vector<std::unique_ptr<InvertedList>> lists_;
  std::size_t materialized_ = 0;
  std::size_t total_postings_ = 0;
  std::vector<FlatPosting> batch_scratch_;
};

}  // namespace ita
