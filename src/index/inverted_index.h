// The inverted index over the valid documents (Figure 1): term dictionary
// entries point to impact-ordered inverted lists. Lists are materialized
// lazily, on the first posting for a term, and are indexed densely by
// TermId.

#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "index/inverted_list.h"
#include "stream/document.h"

namespace ita {

class InvertedIndex {
 public:
  /// Inserts one posting per composition entry. Returns the number of
  /// postings inserted. The document id must be set.
  std::size_t AddDocument(const Document& doc);

  /// Removes the document's postings (exact inverse of AddDocument).
  /// Returns the number of postings removed.
  std::size_t RemoveDocument(const Document& doc);

  /// The list for `term`, or nullptr if no posting was ever inserted for
  /// it. The pointer stays valid for the index's lifetime.
  const InvertedList* List(TermId term) const {
    if (term >= lists_.size()) return nullptr;
    return lists_[term].get();
  }

  /// Number of terms with a materialized list (counting emptied ones).
  std::size_t materialized_lists() const { return materialized_; }

  /// Total postings across all lists.
  std::size_t total_postings() const { return total_postings_; }

 private:
  InvertedList* MutableList(TermId term);

  std::vector<std::unique_ptr<InvertedList>> lists_;
  std::size_t materialized_ = 0;
  std::size_t total_postings_ = 0;
};

}  // namespace ita
