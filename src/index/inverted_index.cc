#include "index/inverted_index.h"

#include "common/logging.h"

namespace ita {

InvertedList* InvertedIndex::MutableList(TermId term) {
  if (term >= lists_.size()) {
    lists_.resize(static_cast<std::size_t>(term) + 1);
  }
  if (lists_[term] == nullptr) {
    lists_[term] = std::make_unique<InvertedList>();
    ++materialized_;
  }
  return lists_[term].get();
}

std::size_t InvertedIndex::AddDocument(const Document& doc) {
  ITA_DCHECK(doc.id != kInvalidDocId) << "document must have an id before indexing";
  for (const TermWeight& tw : doc.composition) {
    const bool inserted = MutableList(tw.term)->Insert(doc.id, tw.weight);
    ITA_CHECK(inserted) << "duplicate posting for doc " << doc.id << " term " << tw.term;
  }
  total_postings_ += doc.composition.size();
  return doc.composition.size();
}

std::size_t InvertedIndex::RemoveDocument(const Document& doc) {
  std::size_t removed = 0;
  for (const TermWeight& tw : doc.composition) {
    InvertedList* list = MutableList(tw.term);
    ITA_CHECK(list != nullptr) << "no list for term " << tw.term;
    const bool erased = list->Erase(doc.id, tw.weight);
    ITA_CHECK(erased) << "missing posting for doc " << doc.id << " term " << tw.term;
    ++removed;
  }
  total_postings_ -= removed;
  return removed;
}

}  // namespace ita
