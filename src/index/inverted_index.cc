#include "index/inverted_index.h"

#include <algorithm>

#include "common/logging.h"

namespace ita {

InvertedList* InvertedIndex::MutableList(TermId term) {
  if (term >= lists_.size()) {
    lists_.resize(static_cast<std::size_t>(term) + 1);
  }
  if (lists_[term] == nullptr) {
    lists_[term] = std::make_unique<InvertedList>();
    ++materialized_;
  }
  return lists_[term].get();
}

std::size_t InvertedIndex::AddDocument(const Document& doc) {
  ITA_DCHECK(doc.id != kInvalidDocId) << "document must have an id before indexing";
  for (const TermWeight& tw : doc.composition) {
    const bool inserted = MutableList(tw.term)->Insert(doc.id, tw.weight);
    ITA_CHECK(inserted) << "duplicate posting for doc " << doc.id << " term " << tw.term;
  }
  total_postings_ += doc.composition.size();
  return doc.composition.size();
}

std::size_t InvertedIndex::RemoveDocument(const Document& doc) {
  std::size_t removed = 0;
  for (const TermWeight& tw : doc.composition) {
    InvertedList* list = MutableList(tw.term);
    ITA_CHECK(list != nullptr) << "no list for term " << tw.term;
    const bool erased = list->Erase(doc.id, tw.weight);
    ITA_CHECK(erased) << "missing posting for doc " << doc.id << " term " << tw.term;
    ++removed;
  }
  total_postings_ -= removed;
  return removed;
}

template <typename Apply>
std::size_t InvertedIndex::ForEachTermRun(Apply&& apply) {
  // Group per term; within a term the entries must follow ImpactOrder
  // (weight desc, doc desc) so each group is a valid ordered run.
  std::sort(batch_scratch_.begin(), batch_scratch_.end(),
            [](const FlatPosting& a, const FlatPosting& b) {
              if (a.term != b.term) return a.term < b.term;
              return ImpactOrder{}(a.entry, b.entry);
            });
  std::size_t applied = 0;
  for (std::size_t lo = 0; lo < batch_scratch_.size();) {
    const TermId term = batch_scratch_[lo].term;
    std::size_t hi = lo;
    while (hi < batch_scratch_.size() && batch_scratch_[hi].term == term) ++hi;
    applied += apply(MutableList(term), lo, hi);
    lo = hi;
  }
  return applied;
}

std::size_t InvertedIndex::AddBatch(const std::vector<const Document*>& docs) {
  batch_scratch_.clear();
  for (const Document* doc : docs) {
    ITA_DCHECK(doc->id != kInvalidDocId)
        << "document must have an id before indexing";
    for (const TermWeight& tw : doc->composition) {
      batch_scratch_.push_back(
          FlatPosting{tw.term, ImpactEntry{tw.weight, doc->id}});
    }
  }
  const std::size_t inserted =
      ForEachTermRun([this](InvertedList* list, std::size_t lo, std::size_t hi) {
        const std::size_t n =
            list->InsertOrdered(EntryIterator{batch_scratch_.data() + lo},
                                EntryIterator{batch_scratch_.data() + hi});
        ITA_CHECK(n == hi - lo) << "duplicate posting in batch insert";
        return n;
      });
  total_postings_ += inserted;
  return inserted;
}

std::size_t InvertedIndex::RemoveBatch(const std::vector<Document>& docs) {
  batch_scratch_.clear();
  for (const Document& doc : docs) {
    for (const TermWeight& tw : doc.composition) {
      batch_scratch_.push_back(
          FlatPosting{tw.term, ImpactEntry{tw.weight, doc.id}});
    }
  }
  const std::size_t erased =
      ForEachTermRun([this](InvertedList* list, std::size_t lo, std::size_t hi) {
        const std::size_t n =
            list->EraseOrdered(EntryIterator{batch_scratch_.data() + lo},
                               EntryIterator{batch_scratch_.data() + hi});
        ITA_CHECK(n == hi - lo) << "missing posting in batch erase";
        return n;
      });
  total_postings_ -= erased;
  return erased;
}

}  // namespace ita
