#include "index/document_store.h"

// DocumentStore is header-only; this translation unit anchors the header.

namespace ita {}  // namespace ita
