/// \file
/// Epoch phase tracing (DESIGN.md §11): a preallocated ring buffer of
/// per-epoch, per-shard span records plus aggregate-on-write histograms.
/// The owning epoch driver (ContinuousSearchServer for the sequential
/// path, exec::ShardedServer for the sharded one) brackets every epoch
/// with BeginEpoch/EndEpoch; in between, each shard's strategy writes its
/// spans into its private PhaseRecorder (single writer, ordered against
/// the driver by the phase barrier) and the driver records its own spans
/// (plan, notify-flush, per-shard barrier-wait) directly.
///
/// EndEpoch drains the recorders into the ring — raw rows for the live
/// per-shard phase table — and feeds the per-(shard, phase) and
/// per-(shard, sub-span) histograms, the epoch wall-time histogram, and
/// the shard-imbalance gauge (max/mean shard busy nanos of the epoch;
/// 1.0 = perfectly balanced, S = one shard did all the work). Nothing
/// allocates after construction, so tracing cost per epoch is a handful
/// of array writes.
///
/// Threading: BeginEpoch/RecordPhase/EndEpoch and every read-side
/// accessor belong to the driver thread; shard_recorder(s) may be
/// written by whichever worker runs shard s's phase, with the barrier
/// ordering those writes against the driver's EndEpoch drain
/// (tests/exec/phase_trace_parallel_test.cc runs this under
/// ThreadSanitizer).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/histogram.h"
#include "obs/phase_recorder.h"

namespace ita::obs {

/// Ring buffer + histograms of per-epoch phase spans; see the file
/// comment for ownership and threading.
class EpochTrace {
 public:
  /// A trace over `shards` lanes keeping the most recent `capacity`
  /// epochs raw (histograms and cumulative tallies cover every epoch
  /// since construction or Reset). Lane 0 doubles as the driver lane:
  /// epoch-level spans (plan, notify-flush) are recorded there.
  EpochTrace(std::size_t capacity, std::size_t shards);

  // --- Write side (the epoch protocol) -------------------------------

  /// Starts an epoch: zeroes every lane's recorder and stamps the index.
  void BeginEpoch(std::uint64_t epoch_index);

  /// The per-shard recorder handed to shard `shard`'s strategy (stable
  /// address for the lifetime of the trace).
  PhaseRecorder* shard_recorder(std::size_t shard);

  /// Driver-side span record (plan and notify-flush on lane 0, per-shard
  /// barrier-wait on the shard's own lane).
  void RecordPhase(std::size_t shard, Phase phase, std::uint64_t nanos) {
    shard_recorder(shard)->Record(phase, nanos);
  }

  /// Ends the epoch: drains every lane's recorder into the ring row and
  /// the aggregate histograms/tallies. `wall_nanos` is the driver's wall
  /// measurement of the whole epoch.
  void EndEpoch(std::uint64_t wall_nanos);

  // --- Read side (driver thread) -------------------------------------

  /// Lanes (shards) the trace records.
  std::size_t shards() const { return shards_; }
  /// Ring capacity in epochs.
  std::size_t capacity() const { return capacity_; }
  /// Epochs currently held raw in the ring (<= capacity()).
  std::size_t size() const { return size_; }
  /// Epochs traced since construction or Reset().
  std::uint64_t epochs() const { return epochs_; }

  /// Read-only view of one ring row; index 0 is the OLDEST retained
  /// epoch, size() - 1 the newest.
  struct SampleView {
    /// The driver's epoch index stamp.
    std::uint64_t epoch = 0;
    /// Wall nanos of the whole epoch.
    std::uint64_t wall_nanos = 0;
    /// Phase nanos for (shard, phase), laid out shard-major.
    const std::uint64_t* phase_nanos = nullptr;
    /// Sub-span nanos for (shard, sub-span), laid out shard-major.
    const std::uint64_t* sub_nanos = nullptr;

    /// Phase nanos of one (shard, phase) cell.
    std::uint64_t Phase(std::size_t shard, obs::Phase phase) const {
      return phase_nanos[shard * kPhaseCount + static_cast<std::size_t>(phase)];
    }
    /// Sub-span nanos of one (shard, sub-span) cell.
    std::uint64_t Sub(std::size_t shard, obs::SubSpan span) const {
      return sub_nanos[shard * kSubSpanCount + static_cast<std::size_t>(span)];
    }
  };
  /// The `index`-th oldest retained epoch (index < size()).
  SampleView Sample(std::size_t index) const;

  /// Distribution of one (shard, phase)'s per-epoch nanos over every
  /// traced epoch.
  const Histogram& phase_hist(std::size_t shard, Phase phase) const {
    return phase_hists_[shard * kPhaseCount + static_cast<std::size_t>(phase)];
  }
  /// Distribution of one (shard, sub-span)'s per-epoch nanos.
  const Histogram& sub_hist(std::size_t shard, SubSpan span) const {
    return sub_hists_[shard * kSubSpanCount + static_cast<std::size_t>(span)];
  }
  /// Distribution of whole-epoch wall nanos.
  const Histogram& wall_hist() const { return wall_hist_; }
  /// Distribution of per-epoch critical-path nanos: max over shards of
  /// the barriered phase work (expire + arrive — the same spans the
  /// imbalance gauge uses), i.e. the epoch latency once every shard runs
  /// on its own core. This is the hardware-independent tail metric the
  /// load-aware rebalancer targets (bench/results/README.md).
  const Histogram& critical_hist() const { return critical_hist_; }

  /// Cumulative nanos of one (shard, phase) over every traced epoch.
  std::uint64_t cumulative_phase_nanos(std::size_t shard, Phase phase) const;
  /// Cumulative nanos of one (shard, sub-span) over every traced epoch.
  std::uint64_t cumulative_sub_nanos(std::size_t shard, SubSpan span) const;

  /// The most recent epoch's shard-imbalance gauge: max over shards of
  /// barriered phase work (expire + arrive nanos; driver-only spans are
  /// excluded so lane 0's double duty doesn't bias it) divided by the
  /// mean (1.0 = balanced; 0 before any epoch or when no shard did
  /// measurable work).
  double last_imbalance() const { return last_imbalance_; }
  /// The largest imbalance any traced epoch showed.
  double max_imbalance() const { return max_imbalance_; }

  /// Forgets every epoch (ring, histograms, tallies); capacity and lane
  /// count are fixed at construction.
  void Reset();

 private:
  std::size_t capacity_;
  std::size_t shards_;
  std::vector<PhaseRecorder> recorders_;  ///< one lane per shard

  // Ring storage, preallocated flat: row r spans
  // [r * shards_ * kPhaseCount, ...) in ring_phase_ (same shape for subs).
  std::vector<std::uint64_t> ring_epoch_;
  std::vector<std::uint64_t> ring_wall_;
  std::vector<std::uint64_t> ring_phase_;
  std::vector<std::uint64_t> ring_sub_;
  std::size_t head_ = 0;  ///< next row to write
  std::size_t size_ = 0;  ///< rows filled (<= capacity_)

  std::vector<Histogram> phase_hists_;  ///< (shard, phase), shard-major
  std::vector<Histogram> sub_hists_;    ///< (shard, sub-span), shard-major
  Histogram wall_hist_;
  Histogram critical_hist_;  ///< per-epoch max shard busy (expire+arrive)
  std::vector<std::uint64_t> cum_phase_;  ///< same shape as a ring row
  std::vector<std::uint64_t> cum_sub_;

  std::uint64_t epochs_ = 0;
  std::uint64_t current_epoch_ = 0;
  double last_imbalance_ = 0.0;
  double max_imbalance_ = 0.0;
};

}  // namespace ita::obs
