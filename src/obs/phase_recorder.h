/// \file
/// Per-shard telemetry recorders and the ITA_OBS span macros (DESIGN.md
/// §11). A PhaseRecorder is the write side of epoch phase tracing: plain
/// non-atomic accumulators for the five epoch phases (plan, expire,
/// arrive, notify-flush, barrier-wait) plus the ITA sub-spans (probe
/// collection, roll-up, refill), written by exactly one thread at a time
/// — the worker running that shard's phase — and drained by the epoch
/// driver after the arrive barrier, which orders writes against reads
/// exactly like ServerStats' per-shard counters.
///
/// Cost model: with the ITA_OBS build option OFF every span macro expands
/// to nothing — the epoch path carries zero telemetry instructions. With
/// it ON (the default), an un-enabled server pays one null-pointer branch
/// per span; an enabled one adds two steady_clock reads per span (begin +
/// end), a few nanoseconds against epoch phases that run micro- to
/// milliseconds.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "obs/timer.h"

namespace ita::obs {

/// The spans an epoch driver records, one per epoch protocol step
/// (core/server_strategy.h). kBarrierWait only exists under a sharded
/// driver: the time a shard's lane sat idle between finishing its phase
/// task and the phase barrier releasing (wall - busy for that phase).
enum class Phase : std::uint8_t {
  kPlan = 0,      ///< PlanEpoch: batch validation + epoch split
  kExpire,        ///< RunExpirePhase: the epoch's expirations
  kArrive,        ///< RunArrivePhase: the epoch's arrivals
  kNotifyFlush,   ///< notification merge + listener callbacks
  kBarrierWait,   ///< idle lane time behind the phase barrier (sharded)
  kReshard,       ///< live S→S′ shard-count change at the epoch barrier
};
/// Number of traced phases.
inline constexpr std::size_t kPhaseCount = 6;

/// Lower-case display/export name of a phase ("plan", "expire", ...).
const char* PhaseName(Phase phase);

/// Strategy-internal sub-spans recorded inside the phase spans; today all
/// three belong to ItaServer's epoch hooks.
enum class SubSpan : std::uint8_t {
  kProbe = 0,  ///< batch collection: bulk index maintenance + tree probes
  kRollUp,     ///< per-query arrival processing incl. threshold roll-up
  kRefill,     ///< per-query expiry processing incl. ExtendSearch refills
};
/// Number of traced sub-spans.
inline constexpr std::size_t kSubSpanCount = 3;

/// Lower-case display/export name of a sub-span ("probe", "rollup",
/// "refill").
const char* SubSpanName(SubSpan span);

/// One shard's span accumulators for the current epoch; see the file
/// comment for the single-writer discipline. Zeroed by the driver at
/// epoch start (EpochTrace::BeginEpoch), drained at epoch end.
class PhaseRecorder {
 public:
  /// Adds `nanos` to the phase accumulator.
  void Record(Phase phase, std::uint64_t nanos) {
    phase_nanos_[static_cast<std::size_t>(phase)] += nanos;
  }

  /// Adds `nanos` to the sub-span accumulator.
  void RecordSub(SubSpan span, std::uint64_t nanos) {
    sub_nanos_[static_cast<std::size_t>(span)] += nanos;
  }

  /// Accumulated nanos of one phase this epoch.
  std::uint64_t phase_nanos(Phase phase) const {
    return phase_nanos_[static_cast<std::size_t>(phase)];
  }

  /// Accumulated nanos of one sub-span this epoch.
  std::uint64_t sub_nanos(SubSpan span) const {
    return sub_nanos_[static_cast<std::size_t>(span)];
  }

  /// Sum of every phase accumulator except barrier-wait — the shard's
  /// busy time this epoch.
  std::uint64_t busy_nanos() const {
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      if (p != static_cast<std::size_t>(Phase::kBarrierWait)) {
        total += phase_nanos_[p];
      }
    }
    return total;
  }

  /// Zeroes every accumulator (the driver's epoch-start reset).
  void Reset() {
    phase_nanos_.fill(0);
    sub_nanos_.fill(0);
  }

 private:
  std::array<std::uint64_t, kPhaseCount> phase_nanos_{};
  std::array<std::uint64_t, kSubSpanCount> sub_nanos_{};
};

/// RAII span: starts a Timer when the recorder is non-null and adds the
/// elapsed nanos to the recorder's phase accumulator on destruction. Use
/// through the ITA_OBS_SPAN macro so a disabled build compiles the span
/// out entirely.
class ScopedSpan {
 public:
  /// Begins the span (no clock read when `recorder` is null).
  ScopedSpan(PhaseRecorder* recorder, Phase phase)
      : recorder_(recorder), phase_(phase) {
    if (recorder_ != nullptr) timer_.Restart();
  }
  /// Ends the span.
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->Record(phase_, timer_.ElapsedNanos());
  }

  ScopedSpan(const ScopedSpan&) = delete;             ///< non-copyable
  ScopedSpan& operator=(const ScopedSpan&) = delete;  ///< non-copyable

 private:
  PhaseRecorder* recorder_;
  Phase phase_;
  Timer timer_;
};

/// ScopedSpan for a strategy-internal sub-span; same null discipline.
class ScopedSubSpan {
 public:
  /// Begins the sub-span (no clock read when `recorder` is null).
  ScopedSubSpan(PhaseRecorder* recorder, SubSpan span)
      : recorder_(recorder), span_(span) {
    if (recorder_ != nullptr) timer_.Restart();
  }
  /// Ends the sub-span.
  ~ScopedSubSpan() {
    if (recorder_ != nullptr) {
      recorder_->RecordSub(span_, timer_.ElapsedNanos());
    }
  }

  ScopedSubSpan(const ScopedSubSpan&) = delete;             ///< non-copyable
  ScopedSubSpan& operator=(const ScopedSubSpan&) = delete;  ///< non-copyable

 private:
  PhaseRecorder* recorder_;
  SubSpan span_;
  Timer timer_;
};

}  // namespace ita::obs

// The build-time gate: -DITA_OBS=OFF defines ITA_OBS_DISABLED and every
// span macro expands to nothing, so the epoch path is bit-for-bit the
// untraced code. The helper indirection produces unique variable names
// per expansion site.
#if defined(ITA_OBS_DISABLED)
#define ITA_OBS_ENABLED 0
#define ITA_OBS_SPAN(recorder, phase) ((void)0)
#define ITA_OBS_SUB_SPAN(recorder, span) ((void)0)
#else
#define ITA_OBS_ENABLED 1
#define ITA_OBS_CONCAT_INNER(a, b) a##b
#define ITA_OBS_CONCAT(a, b) ITA_OBS_CONCAT_INNER(a, b)
#define ITA_OBS_SPAN(recorder, phase)                             \
  ::ita::obs::ScopedSpan ITA_OBS_CONCAT(ita_obs_span_, __LINE__) { \
    (recorder), (phase)                                            \
  }
#define ITA_OBS_SUB_SPAN(recorder, span)                              \
  ::ita::obs::ScopedSubSpan ITA_OBS_CONCAT(ita_obs_subspan_, __LINE__) { \
    (recorder), (span)                                                 \
  }
#endif
