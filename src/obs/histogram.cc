#include "obs/histogram.h"

#include <algorithm>
#include <bit>

namespace ita::obs {

std::size_t Histogram::BucketIndex(std::uint64_t value) {
  if (value < 2) return 0;
  // bit_width(v) - 1 == floor(log2(v)); values >= 2^63 share the overflow
  // bucket, which makes the cap redundant (bit_width <= 64) but explicit.
  return std::min<std::size_t>(kBucketCount - 1, std::bit_width(value) - 1);
}

std::uint64_t Histogram::BucketLowerBound(std::size_t index) {
  return index == 0 ? 0 : std::uint64_t{1} << index;
}

std::uint64_t Histogram::BucketUpperBound(std::size_t index) {
  if (index >= kBucketCount - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << (index + 1)) - 1;
}

void Histogram::Record(std::uint64_t value) {
  ++buckets_[BucketIndex(value)];
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

std::uint64_t Histogram::Quantile(double p) const {
  if (count_ == 0) return 0;
  // Not std::clamp: a NaN p compares false both ways and would survive the
  // clamp, then poison the rank cast below (UB). Treat NaN as p = 0.
  if (!(p >= 0.0)) {
    p = 0.0;
  } else if (p > 1.0) {
    p = 1.0;
  }
  // The rank of the p-quantile in the sorted sample sequence, 1-based:
  // ceil(p * count), at least 1 (the nearest-rank definition).
  const double scaled = p * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(scaled);
  if (static_cast<double>(rank) < scaled) ++rank;
  rank = std::max<std::uint64_t>(rank, 1);
  // The extreme ranks are the observed extremes — exact by definition.
  if (rank <= 1) return min();
  if (rank >= count_) return max_;

  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] < rank) {
      cumulative += buckets_[i];
      continue;
    }
    // The true quantile sits in bucket i. Interpolate linearly by rank
    // between the bucket bounds, tightened by the observed extremes.
    const std::uint64_t lo = std::max(BucketLowerBound(i), min());
    const std::uint64_t hi = std::min(BucketUpperBound(i), max_);
    if (hi <= lo || buckets_[i] == 1) return lo;
    const double frac = static_cast<double>(rank - cumulative - 1) /
                        static_cast<double>(buckets_[i] - 1);
    const std::uint64_t span = hi - lo;
    // Clamp the offset: double rounding must not push past `hi` (in the
    // overflow bucket that would wrap the uint64 arithmetic).
    const auto offset =
        static_cast<std::uint64_t>(static_cast<double>(span) * frac);
    return lo + std::min(offset, span);
  }
  return max_;  // unreachable while the bucket counts match count_
}

}  // namespace ita::obs
