/// \file
/// Hot-term load tracking (DESIGN.md §11): a space-saving top-K sketch
/// (Metwally, Agrawal, El Abbadi 2005) over per-epoch postings/probe work
/// keyed by TermId. The sketch keeps at most `capacity` counters; a hit
/// bumps its counter, a miss evicts the current minimum and inherits its
/// count as the new entry's error bound. The classic guarantees follow:
/// every tracked count overestimates the true weight by at most its
/// recorded error, and any term whose true weight exceeds the minimum
/// tracked count is guaranteed to be tracked — so the heavy hitters of a
/// skewed (Zipf) stream are found with O(capacity) memory
/// (tests/obs/top_k_sketch_test.cc checks both against an exact-counts
/// oracle).
///
/// Add() is called once per term-run in ItaServer's batch collection, not
/// per posting. A hit costs one O(1) expected open-addressing lookup; the
/// O(capacity) min-scan + index rebuild only runs on a miss that evicts,
/// at most once per distinct untracked term per epoch. Plain fields,
/// single writer —
/// the sharded engine keeps one sketch per shard and merges on read via
/// MergeFrom(), which is sound (never under-counts an upper bound) though
/// merged error bounds are looser than a single sketch's.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ita::obs {

/// Space-saving heavy-hitter sketch over TermId weights; see the file
/// comment for guarantees and threading.
class SpaceSavingSketch {
 public:
  /// One tracked term.
  struct Entry {
    /// The tracked term.
    TermId term = 0;
    /// Upper bound on the term's accumulated weight.
    std::uint64_t count = 0;
    /// Maximum overestimation in `count` (0 means the count is exact).
    std::uint64_t error = 0;
  };

  /// A sketch tracking at most `capacity` terms (at least 1).
  explicit SpaceSavingSketch(std::size_t capacity);

  /// Adds `weight` to `term`'s counter, evicting the minimum-count entry
  /// when the term is untracked and the sketch is full.
  void Add(TermId term, std::uint64_t weight);

  /// Folds `other` into this sketch. Counts of terms tracked by both are
  /// summed; a term only `other` tracks enters with its count. Terms this
  /// sketch tracks but `other` does not get `other`'s minimum count added
  /// to both count and error (the weight they *might* have accumulated in
  /// `other` before eviction), keeping every count a sound upper bound.
  /// The union is then truncated back to capacity, keeping the largest.
  void MergeFrom(const SpaceSavingSketch& other);

  /// The tracked entries sorted by descending count (ties by ascending
  /// term id for determinism), at most `k` of them (0 = all).
  std::vector<Entry> TopK(std::size_t k = 0) const;

  /// Total weight Add() has seen (exact, unaffected by eviction).
  std::uint64_t total_weight() const { return total_weight_; }

  /// Number of terms currently tracked (<= capacity()).
  std::size_t size() const { return entries_.size(); }

  /// Maximum number of tracked terms.
  std::size_t capacity() const { return capacity_; }

  /// Forgets every entry and the total weight.
  void Reset();

 private:
  /// Marks a free slot in slots_.
  static constexpr std::uint32_t kEmptySlot = ~std::uint32_t{0};

  /// Index of `term` in entries_, or entries_.size() when untracked.
  /// O(1) expected: an open-addressing probe of slots_.
  std::size_t Find(TermId term) const;

  /// The smallest tracked count (0 while not full — an incoming term
  /// never pays an error bound before the sketch fills).
  std::uint64_t MinTrackedCount() const;

  /// The slots_ probe start for `term` (Fibonacci multiplicative hash).
  std::size_t HashSlot(TermId term) const;

  /// Walks `term`'s probe sequence to its first empty slot and stores
  /// `index` there (entries_[index].term must already be `term`).
  void InsertSlot(TermId term, std::size_t index);

  /// Removes `term`'s slot with linear-probing backshift deletion —
  /// O(cluster length), O(1) expected at load <= 1/2 — so an eviction
  /// costs one delete + one insert, not a table rebuild.
  void EraseSlot(TermId term);

  /// Rebuilds slots_ from entries_ wholesale; only the MergeFrom path
  /// (already O(capacity^2) in the entry merge) uses it.
  void RebuildSlots();

  /// The index of a minimum-count entry, amortized O(1): one O(capacity)
  /// scan collects EVERY entry at the minimum into victim_candidates_,
  /// then evictions drain the list. Counts only grow, so a candidate
  /// still at cached_min_count_ is still a true minimum; ones that took
  /// hits are skipped. Zipf tails cluster many entries at the same
  /// count, so one scan typically serves many evictions.
  std::size_t PopVictim();

  std::size_t capacity_;
  std::vector<Entry> entries_;  ///< unordered; TopK sorts a copy
  /// Open-addressing hash index into entries_ (kEmptySlot = free), sized
  /// to a power of two >= 2 * capacity at construction so the load factor
  /// stays <= 1/2 and linear probing terminates. Makes the per-term-run
  /// Add() hit path O(1) instead of an O(capacity) scan — the difference
  /// between noise-level and double-digit tracing overhead on small
  /// epochs (bench/results/obs_overhead_baseline.json).
  std::vector<std::uint32_t> slots_;
  /// Entry indices whose count equaled cached_min_count_ at the last
  /// min-scan (see PopVictim); reserved to capacity at construction.
  std::vector<std::uint32_t> victim_candidates_;
  /// The minimum count as of the last min-scan; a floor on every count
  /// until the candidates drain (counts never decrease).
  std::uint64_t cached_min_count_ = 0;
  std::uint64_t total_weight_ = 0;
};

}  // namespace ita::obs
