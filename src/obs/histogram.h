/// \file
/// Mergeable log2-bucket latency histogram (DESIGN.md §11). A fixed
/// 64-bucket power-of-two layout over uint64 samples (nanoseconds, bytes,
/// counts — any non-negative magnitude): bucket 0 holds [0, 2), bucket i
/// (1 <= i <= 62) holds [2^i, 2^(i+1)), and bucket 63 is the overflow
/// bucket [2^63, 2^64). Recording is a bit-scan plus one increment;
/// merging is element-wise addition, so Merge is associative and
/// commutative and a fleet of per-shard histograms aggregates on read
/// with no atomics — the same discipline as ServerStats.
///
/// Quantile(p) returns a value inside the bucket that contains the true
/// p-quantile of the recorded samples (linear interpolation by rank
/// within the bucket, clamped to the observed [min, max]), so the
/// relative error is bounded by the bucket width: at most 2x, and exact
/// at p = 0 and p = 1. No allocation ever — the whole state is a few
/// fixed arrays — so a Histogram can live on hot paths and in
/// preallocated rings.
///
/// Thread-compatibility: plain fields, single writer at a time; the
/// sharded engine keeps one instance per shard and merges after the
/// phase barrier (tests/exec/phase_trace_parallel_test.cc runs that
/// aggregation under ThreadSanitizer).

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ita::obs {

/// Fixed-layout power-of-two histogram; see the file comment.
class Histogram {
 public:
  /// Number of buckets in the fixed layout.
  static constexpr std::size_t kBucketCount = 64;

  /// The bucket a sample lands in: 0 for values below 2, otherwise
  /// floor(log2(value)) capped at the overflow bucket (kBucketCount - 1).
  static std::size_t BucketIndex(std::uint64_t value);

  /// Inclusive lower bound of bucket `index` (0 for bucket 0, else 2^index).
  static std::uint64_t BucketLowerBound(std::size_t index);

  /// Inclusive upper bound of bucket `index` (2^(index+1) - 1; the
  /// overflow bucket's bound is the maximum uint64).
  static std::uint64_t BucketUpperBound(std::size_t index);

  /// Records one sample.
  void Record(std::uint64_t value);

  /// Adds every bucket count (and count/sum/min/max) of `other` into this
  /// instance — associative and commutative, the per-shard aggregation
  /// primitive.
  void Merge(const Histogram& other);

  /// A value inside the bucket holding the true p-quantile (p clamped to
  /// [0, 1]; NaN reads as 0), interpolated by rank and clamped to
  /// [min(), max()]. Returns 0 when empty — defined for every p even on
  /// empty and single-bucket histograms (sharded_monitor prints these on
  /// idle servers). Quantile(0) == min(), Quantile(1) == max().
  std::uint64_t Quantile(double p) const;

  /// Number of recorded samples.
  std::uint64_t count() const { return count_; }
  /// Sum of all recorded samples (wraps on overflow like any uint64).
  std::uint64_t sum() const { return sum_; }
  /// Smallest recorded sample (0 when empty).
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  /// Largest recorded sample (0 when empty).
  std::uint64_t max() const { return max_; }
  /// Mean of the recorded samples (0 when empty).
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// The per-bucket sample counts, bucket 0 first.
  const std::array<std::uint64_t, kBucketCount>& buckets() const {
    return buckets_;
  }

  /// Zeroes every bucket and summary field.
  void Reset() { *this = Histogram(); }

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;  ///< valid only while count_ > 0
  std::uint64_t max_ = 0;
};

}  // namespace ita::obs
