/// \file
/// Metrics export (DESIGN.md §11): a MetricsRegistry collects named
/// counters, gauges, and histograms — each with an optional label set —
/// and renders one snapshot as JSON (machine-readable, versioned) or
/// Prometheus text exposition format. The registry is a snapshot
/// container, not a live aggregation point: callers (SimEngine wrappers,
/// examples, benches) build one from current server state at export time,
/// so the hot path never touches it.
///
/// Names must match the Prometheus metric-name grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]* and label keys [a-zA-Z_][a-zA-Z0-9_]*;
/// registering an invalid or duplicate (name, labels) series returns an
/// error Status rather than producing an unscrapable exposition. The
/// companion LintPrometheus() validates a rendered exposition the same
/// way CI's metrics-smoke job does.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/histogram.h"

namespace ita {
struct ServerStats;
}  // namespace ita

namespace ita::obs {

/// One key=value metric label.
struct Label {
  std::string key;    ///< label key ([a-zA-Z_][a-zA-Z0-9_]*)
  std::string value;  ///< label value (any UTF-8; escaped on render)
};

/// Snapshot container rendering to JSON / Prometheus; see the file
/// comment for naming rules.
class MetricsRegistry {
 public:
  /// A registered counter series (monotonic total).
  struct Counter {
    std::string name;           ///< metric family name
    std::string help;           ///< HELP text of the family
    std::vector<Label> labels;  ///< the series' label set
    std::uint64_t value = 0;    ///< the sampled total
  };
  /// A registered gauge series (point-in-time level).
  struct Gauge {
    std::string name;           ///< metric family name
    std::string help;           ///< HELP text of the family
    std::vector<Label> labels;  ///< the series' label set
    double value = 0.0;         ///< the sampled level
  };
  /// A registered histogram series (a Histogram snapshot copy).
  struct HistogramEntry {
    std::string name;           ///< metric family name
    std::string help;           ///< HELP text of the family
    std::vector<Label> labels;  ///< the series' label set
    Histogram histogram;        ///< the sampled distribution
  };

  /// Registers a counter sample. Fails with InvalidArgument on a bad name
  /// or label key, AlreadyExists on a duplicate (name, labels) series.
  Status AddCounter(std::string name, std::string help,
                    std::vector<Label> labels, std::uint64_t value);

  /// Registers a gauge sample; same failure modes as AddCounter.
  Status AddGauge(std::string name, std::string help, std::vector<Label> labels,
                  double value);

  /// Registers a histogram snapshot; same failure modes as AddCounter.
  Status AddHistogram(std::string name, std::string help,
                      std::vector<Label> labels, const Histogram& histogram);

  /// Registered counters in registration order.
  const std::vector<Counter>& counters() const { return counters_; }
  /// Registered gauges in registration order.
  const std::vector<Gauge>& gauges() const { return gauges_; }
  /// Registered histograms in registration order.
  const std::vector<HistogramEntry>& histograms() const { return histograms_; }

  /// The snapshot as a JSON object: {"version": 1, "counters": [...],
  /// "gauges": [...], "histograms": [...]}; each histogram carries count,
  /// sum, min, max, mean, p50/p90/p99, and its non-empty buckets.
  std::string ToJson() const;

  /// The snapshot in Prometheus text exposition format: one HELP/TYPE
  /// header per metric name, histogram series expanded to cumulative
  /// `_bucket{le="..."}` samples (non-empty buckets plus "+Inf"), `_sum`,
  /// and `_count`.
  std::string ToPrometheus() const;

  /// Drops every registered series.
  void Clear();

 private:
  /// InvalidArgument / AlreadyExists checks shared by the Add* methods.
  Status Validate(const std::string& name, const std::vector<Label>& labels,
                  std::string_view kind) const;

  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<HistogramEntry> histograms_;
};

/// True iff `name` matches the Prometheus metric-name grammar.
bool IsValidMetricName(std::string_view name);

/// True iff `key` matches the Prometheus label-key grammar.
bool IsValidLabelKey(std::string_view key);

/// Validates a rendered Prometheus text exposition: every sample line
/// must parse (name, optional labels, numeric value), metric names and
/// label keys must match the grammar, and no two samples may repeat the
/// same (name, labels) series. Mirrors CI's metrics-smoke lint.
Status LintPrometheus(std::string_view exposition);

/// Registers every ServerStats counter and gauge under its canonical
/// export name (ita_documents_ingested_total, ita_postings_bytes, ...)
/// with `labels` attached to each series.
Status ExportServerStats(const ServerStats& stats, std::vector<Label> labels,
                         MetricsRegistry* registry);

}  // namespace ita::obs
