#include "obs/epoch_trace.h"

#include <algorithm>

#include "common/logging.h"

namespace ita::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kPlan: return "plan";
    case Phase::kExpire: return "expire";
    case Phase::kArrive: return "arrive";
    case Phase::kNotifyFlush: return "notify_flush";
    case Phase::kBarrierWait: return "barrier_wait";
    case Phase::kReshard: return "reshard";
  }
  return "?";
}

const char* SubSpanName(SubSpan span) {
  switch (span) {
    case SubSpan::kProbe: return "probe";
    case SubSpan::kRollUp: return "rollup";
    case SubSpan::kRefill: return "refill";
  }
  return "?";
}

EpochTrace::EpochTrace(std::size_t capacity, std::size_t shards)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      shards_(std::max<std::size_t>(shards, 1)),
      recorders_(shards_),
      ring_epoch_(capacity_, 0),
      ring_wall_(capacity_, 0),
      ring_phase_(capacity_ * shards_ * kPhaseCount, 0),
      ring_sub_(capacity_ * shards_ * kSubSpanCount, 0),
      phase_hists_(shards_ * kPhaseCount),
      sub_hists_(shards_ * kSubSpanCount),
      cum_phase_(shards_ * kPhaseCount, 0),
      cum_sub_(shards_ * kSubSpanCount, 0) {}

void EpochTrace::BeginEpoch(std::uint64_t epoch_index) {
  current_epoch_ = epoch_index;
  for (PhaseRecorder& recorder : recorders_) recorder.Reset();
}

PhaseRecorder* EpochTrace::shard_recorder(std::size_t shard) {
  ITA_DCHECK(shard < shards_);
  return &recorders_[shard];
}

void EpochTrace::EndEpoch(std::uint64_t wall_nanos) {
  const std::size_t row = head_;
  head_ = (head_ + 1) % capacity_;
  size_ = std::min(size_ + 1, capacity_);
  ++epochs_;

  ring_epoch_[row] = current_epoch_;
  ring_wall_[row] = wall_nanos;
  wall_hist_.Record(wall_nanos);

  std::uint64_t* phase_row = &ring_phase_[row * shards_ * kPhaseCount];
  std::uint64_t* sub_row = &ring_sub_[row * shards_ * kSubSpanCount];
  std::uint64_t busy_max = 0;
  std::uint64_t busy_sum = 0;
  for (std::size_t s = 0; s < shards_; ++s) {
    const PhaseRecorder& recorder = recorders_[s];
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      const std::uint64_t nanos = recorder.phase_nanos(static_cast<Phase>(p));
      phase_row[s * kPhaseCount + p] = nanos;
      phase_hists_[s * kPhaseCount + p].Record(nanos);
      cum_phase_[s * kPhaseCount + p] += nanos;
    }
    for (std::size_t q = 0; q < kSubSpanCount; ++q) {
      const std::uint64_t nanos = recorder.sub_nanos(static_cast<SubSpan>(q));
      sub_row[s * kSubSpanCount + q] = nanos;
      sub_hists_[s * kSubSpanCount + q].Record(nanos);
      cum_sub_[s * kSubSpanCount + q] += nanos;
    }
    // Imbalance looks at the barriered phase work only (expire + arrive):
    // lane 0 doubles as the driver lane, and including the driver-only
    // spans (plan, notify-flush) would bias it against shard 0.
    const std::uint64_t busy = recorder.phase_nanos(Phase::kExpire) +
                               recorder.phase_nanos(Phase::kArrive);
    busy_max = std::max(busy_max, busy);
    busy_sum += busy;
  }

  critical_hist_.Record(busy_max);
  if (busy_sum > 0) {
    const double mean =
        static_cast<double>(busy_sum) / static_cast<double>(shards_);
    last_imbalance_ = static_cast<double>(busy_max) / mean;
    max_imbalance_ = std::max(max_imbalance_, last_imbalance_);
  } else {
    last_imbalance_ = 0.0;
  }
}

EpochTrace::SampleView EpochTrace::Sample(std::size_t index) const {
  ITA_CHECK(index < size_) << "trace holds " << size_ << " epochs";
  // Row of the index-th oldest retained epoch: the ring's oldest row is
  // head_ when full, 0 otherwise.
  const std::size_t oldest = size_ == capacity_ ? head_ : 0;
  const std::size_t row = (oldest + index) % capacity_;
  SampleView view;
  view.epoch = ring_epoch_[row];
  view.wall_nanos = ring_wall_[row];
  view.phase_nanos = &ring_phase_[row * shards_ * kPhaseCount];
  view.sub_nanos = &ring_sub_[row * shards_ * kSubSpanCount];
  return view;
}

std::uint64_t EpochTrace::cumulative_phase_nanos(std::size_t shard,
                                                 Phase phase) const {
  return cum_phase_[shard * kPhaseCount + static_cast<std::size_t>(phase)];
}

std::uint64_t EpochTrace::cumulative_sub_nanos(std::size_t shard,
                                               SubSpan span) const {
  return cum_sub_[shard * kSubSpanCount + static_cast<std::size_t>(span)];
}

void EpochTrace::Reset() {
  for (PhaseRecorder& recorder : recorders_) recorder.Reset();
  std::fill(ring_epoch_.begin(), ring_epoch_.end(), 0);
  std::fill(ring_wall_.begin(), ring_wall_.end(), 0);
  std::fill(ring_phase_.begin(), ring_phase_.end(), 0);
  std::fill(ring_sub_.begin(), ring_sub_.end(), 0);
  head_ = 0;
  size_ = 0;
  for (Histogram& hist : phase_hists_) hist.Reset();
  for (Histogram& hist : sub_hists_) hist.Reset();
  wall_hist_.Reset();
  critical_hist_.Reset();
  std::fill(cum_phase_.begin(), cum_phase_.end(), 0);
  std::fill(cum_sub_.begin(), cum_sub_.end(), 0);
  epochs_ = 0;
  current_epoch_ = 0;
  last_imbalance_ = 0.0;
  max_imbalance_ = 0.0;
}

}  // namespace ita::obs
