#include "obs/top_k_sketch.h"

#include <algorithm>
#include <bit>

namespace ita::obs {

SpaceSavingSketch::SpaceSavingSketch(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  entries_.reserve(capacity_);
  slots_.assign(std::bit_ceil(capacity_ * 2), kEmptySlot);
  victim_candidates_.reserve(capacity_);
}

std::size_t SpaceSavingSketch::HashSlot(TermId term) const {
  // Fibonacci multiplicative hash; the high bits carry the mixing, so
  // shift them down before masking to the (power-of-two) table size.
  const std::uint64_t mixed =
      static_cast<std::uint64_t>(term) * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(mixed >> 32) & (slots_.size() - 1);
}

std::size_t SpaceSavingSketch::Find(TermId term) const {
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t slot = HashSlot(term);; slot = (slot + 1) & mask) {
    const std::uint32_t index = slots_[slot];
    if (index == kEmptySlot) return entries_.size();
    if (entries_[index].term == term) return index;
  }
}

void SpaceSavingSketch::InsertSlot(TermId term, std::size_t index) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t slot = HashSlot(term);
  while (slots_[slot] != kEmptySlot) slot = (slot + 1) & mask;
  slots_[slot] = static_cast<std::uint32_t>(index);
}

void SpaceSavingSketch::RebuildSlots() {
  std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    InsertSlot(entries_[i].term, i);
  }
}

void SpaceSavingSketch::EraseSlot(TermId term) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t hole = HashSlot(term);
  while (entries_[slots_[hole]].term != term) hole = (hole + 1) & mask;
  slots_[hole] = kEmptySlot;
  // Backshift deletion (Knuth 6.4 R): walk the rest of the probe cluster
  // and pull back any entry whose home slot lies at or before the hole,
  // so no later Find() probe stops early at the gap.
  for (std::size_t cur = (hole + 1) & mask; slots_[cur] != kEmptySlot;
       cur = (cur + 1) & mask) {
    const std::size_t home = HashSlot(entries_[slots_[cur]].term);
    if (((cur - home) & mask) >= ((cur - hole) & mask)) {
      slots_[hole] = slots_[cur];
      slots_[cur] = kEmptySlot;
      hole = cur;
    }
  }
}

std::size_t SpaceSavingSketch::PopVictim() {
  while (!victim_candidates_.empty()) {
    const std::uint32_t index = victim_candidates_.back();
    victim_candidates_.pop_back();
    if (entries_[index].count == cached_min_count_) return index;
  }
  cached_min_count_ = entries_.front().count;
  victim_candidates_.push_back(0);
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count < cached_min_count_) {
      cached_min_count_ = entries_[i].count;
      victim_candidates_.clear();
      victim_candidates_.push_back(static_cast<std::uint32_t>(i));
    } else if (entries_[i].count == cached_min_count_) {
      victim_candidates_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  const std::size_t victim = victim_candidates_.back();
  victim_candidates_.pop_back();
  return victim;
}

std::uint64_t SpaceSavingSketch::MinTrackedCount() const {
  if (entries_.size() < capacity_) return 0;
  std::uint64_t min_count = entries_.front().count;
  for (const Entry& entry : entries_) {
    min_count = std::min(min_count, entry.count);
  }
  return min_count;
}

void SpaceSavingSketch::Add(TermId term, std::uint64_t weight) {
  total_weight_ += weight;
  const std::size_t index = Find(term);
  if (index < entries_.size()) {
    entries_[index].count += weight;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.push_back(Entry{term, weight, 0});
    InsertSlot(term, entries_.size() - 1);
    return;
  }
  // Space-saving eviction: the new term replaces the minimum-count entry
  // and inherits its count as the error bound — the weight the new term
  // could at most have accumulated while untracked.
  const std::size_t victim = PopVictim();
  const std::uint64_t inherited = entries_[victim].count;
  EraseSlot(entries_[victim].term);
  entries_[victim] = Entry{term, inherited + weight, inherited};
  InsertSlot(term, victim);
}

void SpaceSavingSketch::MergeFrom(const SpaceSavingSketch& other) {
  total_weight_ += other.total_weight_;
  // Weight a term absent from `other` might have accumulated there before
  // eviction: other's minimum tracked count (0 if other never filled).
  const std::uint64_t other_floor = other.MinTrackedCount();

  std::vector<Entry> merged = entries_;
  std::vector<bool> seen_in_other(merged.size(), false);
  for (const Entry& theirs : other.entries_) {
    bool found = false;
    for (std::size_t i = 0; i < merged.size(); ++i) {
      if (merged[i].term == theirs.term) {
        merged[i].count += theirs.count;
        merged[i].error += theirs.error;
        seen_in_other[i] = true;
        found = true;
        break;
      }
    }
    if (!found) merged.push_back(theirs);
  }
  for (std::size_t i = 0; i < seen_in_other.size(); ++i) {
    if (!seen_in_other[i]) {
      merged[i].count += other_floor;
      merged[i].error += other_floor;
    }
  }

  if (merged.size() > capacity_) {
    std::nth_element(merged.begin(), merged.begin() + capacity_, merged.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.count != b.count ? a.count > b.count
                                                 : a.term < b.term;
                     });
    merged.resize(capacity_);
  }
  entries_ = std::move(merged);
  RebuildSlots();
  // Indices into entries_ changed wholesale; the candidate cache is
  // stale. The next eviction rescans.
  victim_candidates_.clear();
  cached_min_count_ = 0;
}

std::vector<SpaceSavingSketch::Entry> SpaceSavingSketch::TopK(
    std::size_t k) const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry& a, const Entry& b) {
              return a.count != b.count ? a.count > b.count : a.term < b.term;
            });
  if (k != 0 && sorted.size() > k) sorted.resize(k);
  return sorted;
}

void SpaceSavingSketch::Reset() {
  entries_.clear();
  std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  victim_candidates_.clear();
  cached_min_count_ = 0;
  total_weight_ = 0;
}

}  // namespace ita::obs
