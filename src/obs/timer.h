/// \file
/// The one steady-clock timing utility of the library (DESIGN.md §11).
/// Every wall-clock measurement — the benchmark harness' Stopwatch, the
/// sharded engine's busy-time tallies, the telemetry spans of the obs
/// layer — reads time through obs::Timer, so "what clock do we trust"
/// has exactly one answer (std::chrono::steady_clock) and exactly one
/// conversion site. The library core itself still runs on virtual time
/// (common/clock.h); obs::Timer only ever measures *our own* processing
/// cost, never stream semantics.

#pragma once

#include <chrono>
#include <cstdint>

namespace ita::obs {

/// Monotonic elapsed-time measurement: construction (or Restart) pins the
/// start point, the Elapsed* accessors read the clock once and convert.
/// Trivially copyable, no allocation, safe to keep per shard.
class Timer {
 public:
  /// The clock every wall measurement in this library uses.
  using Clock = std::chrono::steady_clock;

  /// Starts timing at construction.
  Timer() : start_(Clock::now()) {}

  /// Re-pins the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed nanoseconds since construction or the last Restart() — the
  /// unit the telemetry histograms record.
  std::uint64_t ElapsedNanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  /// Elapsed microseconds since construction or the last Restart().
  std::uint64_t ElapsedMicros() const { return ElapsedNanos() / 1'000; }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  Clock::time_point start_;
};

}  // namespace ita::obs
