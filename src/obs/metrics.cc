#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/stats.h"

namespace ita::obs {

namespace {

// Canonical double formatting for both export formats: shortest
// round-trippable representation, no locale dependence.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    if (std::stod(candidate) == value) return candidate;
  }
  return buf;
}

// JSON string escaping (quotes, backslash, control characters).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Prometheus label-value escaping (backslash, quote, newline).
std::string PromEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string LabelsJson(const std::vector<Label>& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(labels[i].key) + "\":\"" +
           JsonEscape(labels[i].value) + "\"";
  }
  out += "}";
  return out;
}

// Renders {k1="v1",k2="v2"} (empty string for no labels); `extra` appends
// one more pair, used for histogram `le` labels.
std::string LabelsProm(const std::vector<Label>& labels,
                       const Label* extra = nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const Label& label : labels) {
    if (!first) out += ",";
    first = false;
    out += label.key + "=\"" + PromEscape(label.value) + "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ",";
    out += extra->key + "=\"" + PromEscape(extra->value) + "\"";
  }
  out += "}";
  return out;
}

// Canonical series key for duplicate detection: name + sorted labels.
std::string SeriesKey(const std::string& name,
                      const std::vector<Label>& labels) {
  std::vector<Label> sorted = labels;
  std::sort(sorted.begin(), sorted.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string key = name;
  for (const Label& label : sorted) {
    key += '\x1f';
    key += label.key;
    key += '\x1e';
    key += label.value;
  }
  return key;
}

}  // namespace

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name[0])) return false;
  return std::all_of(name.begin() + 1, name.end(), tail);
}

bool IsValidLabelKey(std::string_view key) {
  if (key.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(key[0])) return false;
  return std::all_of(key.begin() + 1, key.end(), tail);
}

Status MetricsRegistry::Validate(const std::string& name,
                                 const std::vector<Label>& labels,
                                 std::string_view kind) const {
  if (!IsValidMetricName(name)) {
    return Status::InvalidArgument("invalid metric name: '" + name + "'");
  }
  for (const Label& label : labels) {
    if (!IsValidLabelKey(label.key)) {
      return Status::InvalidArgument("invalid label key '" + label.key +
                                     "' on metric '" + name + "'");
    }
  }
  const std::string key = SeriesKey(name, labels);
  for (const Counter& c : counters_) {
    if (SeriesKey(c.name, c.labels) == key) {
      return Status::AlreadyExists("duplicate series: " + name);
    }
  }
  for (const Gauge& g : gauges_) {
    if (SeriesKey(g.name, g.labels) == key) {
      return Status::AlreadyExists("duplicate series: " + name);
    }
  }
  for (const HistogramEntry& h : histograms_) {
    if (SeriesKey(h.name, h.labels) == key) {
      return Status::AlreadyExists("duplicate series: " + name);
    }
  }
  // A histogram renders <name>_bucket/_sum/_count samples, so a
  // histogram and a scalar cannot share a base name either; the
  // same-name-different-labels case is allowed for all kinds and the
  // cross-kind clash surfaces through LintPrometheus in tests.
  (void)kind;
  return Status::OK();
}

Status MetricsRegistry::AddCounter(std::string name, std::string help,
                                   std::vector<Label> labels,
                                   std::uint64_t value) {
  ITA_RETURN_NOT_OK(Validate(name, labels, "counter"));
  counters_.push_back(
      Counter{std::move(name), std::move(help), std::move(labels), value});
  return Status::OK();
}

Status MetricsRegistry::AddGauge(std::string name, std::string help,
                                 std::vector<Label> labels, double value) {
  ITA_RETURN_NOT_OK(Validate(name, labels, "gauge"));
  gauges_.push_back(
      Gauge{std::move(name), std::move(help), std::move(labels), value});
  return Status::OK();
}

Status MetricsRegistry::AddHistogram(std::string name, std::string help,
                                     std::vector<Label> labels,
                                     const Histogram& histogram) {
  ITA_RETURN_NOT_OK(Validate(name, labels, "histogram"));
  histograms_.push_back(HistogramEntry{std::move(name), std::move(help),
                                       std::move(labels), histogram});
  return Status::OK();
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"version\":1,\"counters\":[";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    const Counter& c = counters_[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(c.name) + "\",\"help\":\"" +
           JsonEscape(c.help) + "\",\"labels\":" + LabelsJson(c.labels) +
           ",\"value\":" + std::to_string(c.value) + "}";
  }
  out += "],\"gauges\":[";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    const Gauge& g = gauges_[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(g.name) + "\",\"help\":\"" +
           JsonEscape(g.help) + "\",\"labels\":" + LabelsJson(g.labels) +
           ",\"value\":" + FormatDouble(g.value) + "}";
  }
  out += "],\"histograms\":[";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const HistogramEntry& h = histograms_[i];
    const Histogram& hist = h.histogram;
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(h.name) + "\",\"help\":\"" +
           JsonEscape(h.help) + "\",\"labels\":" + LabelsJson(h.labels) +
           ",\"count\":" + std::to_string(hist.count()) +
           ",\"sum\":" + std::to_string(hist.sum()) +
           ",\"min\":" + std::to_string(hist.min()) +
           ",\"max\":" + std::to_string(hist.max()) +
           ",\"mean\":" + FormatDouble(hist.Mean()) +
           ",\"p50\":" + std::to_string(hist.Quantile(0.50)) +
           ",\"p90\":" + std::to_string(hist.Quantile(0.90)) +
           ",\"p99\":" + std::to_string(hist.Quantile(0.99)) + ",\"buckets\":[";
    bool first = true;
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
      if (hist.buckets()[b] == 0) continue;
      if (!first) out += ",";
      first = false;
      out += "{\"le\":" + std::to_string(Histogram::BucketUpperBound(b)) +
             ",\"count\":" + std::to_string(hist.buckets()[b]) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::ToPrometheus() const {
  std::ostringstream out;
  // Group samples by metric name so each name gets exactly one HELP/TYPE
  // header even when several label sets share it. map keeps the output
  // deterministically ordered by name.
  struct Family {
    std::string help;
    std::string type;
    std::vector<std::string> samples;
  };
  std::map<std::string, Family> families;

  for (const Counter& c : counters_) {
    Family& family = families[c.name];
    if (family.type.empty()) {
      family.type = "counter";
      family.help = c.help;
    }
    family.samples.push_back(c.name + LabelsProm(c.labels) + " " +
                             std::to_string(c.value));
  }
  for (const Gauge& g : gauges_) {
    Family& family = families[g.name];
    if (family.type.empty()) {
      family.type = "gauge";
      family.help = g.help;
    }
    family.samples.push_back(g.name + LabelsProm(g.labels) + " " +
                             FormatDouble(g.value));
  }
  for (const HistogramEntry& h : histograms_) {
    Family& family = families[h.name];
    if (family.type.empty()) {
      family.type = "histogram";
      family.help = h.help;
    }
    const Histogram& hist = h.histogram;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
      if (hist.buckets()[b] == 0) continue;
      cumulative += hist.buckets()[b];
      Label le{"le", std::to_string(Histogram::BucketUpperBound(b))};
      family.samples.push_back(h.name + "_bucket" + LabelsProm(h.labels, &le) +
                               " " + std::to_string(cumulative));
    }
    Label le_inf{"le", "+Inf"};
    family.samples.push_back(h.name + "_bucket" + LabelsProm(h.labels, &le_inf) +
                             " " + std::to_string(hist.count()));
    family.samples.push_back(h.name + "_sum" + LabelsProm(h.labels) + " " +
                             std::to_string(hist.sum()));
    family.samples.push_back(h.name + "_count" + LabelsProm(h.labels) + " " +
                             std::to_string(hist.count()));
  }

  for (const auto& [name, family] : families) {
    if (!family.help.empty()) {
      out << "# HELP " << name << " " << family.help << "\n";
    }
    out << "# TYPE " << name << " " << family.type << "\n";
    for (const std::string& sample : family.samples) out << sample << "\n";
  }
  return out.str();
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Status LintPrometheus(std::string_view exposition) {
  std::set<std::string> seen_series;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos <= exposition.size()) {
    const std::size_t eol = exposition.find('\n', pos);
    const std::string_view line = exposition.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? exposition.size() + 1 : eol + 1;
    ++line_number;
    if (line.empty() || line[0] == '#') continue;

    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("prometheus lint: line " +
                                     std::to_string(line_number) + ": " + why);
    };

    // <name>[{labels}] <value>
    std::size_t name_end = 0;
    while (name_end < line.size() && line[name_end] != '{' &&
           line[name_end] != ' ') {
      ++name_end;
    }
    const std::string_view name = line.substr(0, name_end);
    if (!IsValidMetricName(name)) {
      return fail("invalid metric name '" + std::string(name) + "'");
    }

    std::string series_key(name);
    std::size_t cursor = name_end;
    if (cursor < line.size() && line[cursor] == '{') {
      // Parse label pairs: key="value" with \\, \", \n escapes in values.
      std::vector<Label> labels;
      ++cursor;
      while (cursor < line.size() && line[cursor] != '}') {
        std::size_t key_end = cursor;
        while (key_end < line.size() && line[key_end] != '=') ++key_end;
        if (key_end >= line.size()) return fail("unterminated label");
        const std::string_view key = line.substr(cursor, key_end - cursor);
        if (!IsValidLabelKey(key)) {
          return fail("invalid label key '" + std::string(key) + "'");
        }
        cursor = key_end + 1;
        if (cursor >= line.size() || line[cursor] != '"') {
          return fail("label value must be quoted");
        }
        ++cursor;
        std::string value;
        while (cursor < line.size() && line[cursor] != '"') {
          if (line[cursor] == '\\' && cursor + 1 < line.size()) ++cursor;
          value += line[cursor];
          ++cursor;
        }
        if (cursor >= line.size()) return fail("unterminated label value");
        ++cursor;  // closing quote
        labels.push_back(Label{std::string(key), std::move(value)});
        if (cursor < line.size() && line[cursor] == ',') ++cursor;
      }
      if (cursor >= line.size()) return fail("unterminated label set");
      ++cursor;  // closing brace
      std::sort(labels.begin(), labels.end(),
                [](const Label& a, const Label& b) { return a.key < b.key; });
      for (const Label& label : labels) {
        series_key += '\x1f';
        series_key += label.key;
        series_key += '\x1e';
        series_key += label.value;
      }
    }

    if (cursor >= line.size() || line[cursor] != ' ') {
      return fail("expected ' ' before sample value");
    }
    const std::string value_text(line.substr(cursor + 1));
    if (value_text.empty()) return fail("missing sample value");
    if (value_text != "+Inf" && value_text != "-Inf" && value_text != "NaN") {
      std::size_t consumed = 0;
      try {
        (void)std::stod(value_text, &consumed);
      } catch (...) {
        return fail("unparsable sample value '" + value_text + "'");
      }
      if (consumed != value_text.size()) {
        return fail("trailing garbage after sample value");
      }
    }

    if (!seen_series.insert(series_key).second) {
      return fail("duplicate series for metric '" + std::string(name) + "'");
    }
  }
  return Status::OK();
}

Status ExportServerStats(const ServerStats& stats, std::vector<Label> labels,
                         MetricsRegistry* registry) {
  struct CounterSpec {
    const char* name;
    const char* help;
    std::uint64_t value;
  };
  const CounterSpec counters[] = {
      {"ita_documents_ingested_total", "Documents ingested",
       stats.documents_ingested},
      {"ita_documents_expired_total", "Documents expired",
       stats.documents_expired},
      {"ita_batches_ingested_total", "IngestBatch epochs processed",
       stats.batches_ingested},
      {"ita_index_entries_inserted_total", "Inverted-list entries inserted",
       stats.index_entries_inserted},
      {"ita_index_entries_erased_total", "Inverted-list entries erased",
       stats.index_entries_erased},
      {"ita_scores_computed_total", "Full document scores computed",
       stats.scores_computed},
      {"ita_queries_probed_total", "Query may-be-affected probe hits",
       stats.queries_probed},
      {"ita_membership_checks_total", "Result membership checks",
       stats.membership_checks},
      {"ita_result_insertions_total", "Documents added to some result",
       stats.result_insertions},
      {"ita_result_removals_total", "Documents dropped from some result",
       stats.result_removals},
      {"ita_threshold_probe_steps_total", "Threshold-tree entries visited",
       stats.threshold_probe_steps},
      {"ita_list_entries_read_total", "Inverted-list entries consumed by TA",
       stats.list_entries_read},
      {"ita_rollup_steps_total", "Local-threshold roll-up lifts",
       stats.rollup_steps},
      {"ita_rollup_evictions_total", "Result evictions due to roll-up",
       stats.rollup_evictions},
      {"ita_refills_total", "Post-expiration search resumptions",
       stats.refills},
      {"ita_full_rescans_total", "Naive top-k_max recomputations",
       stats.full_rescans},
      {"ita_tier_promotions_total", "Terms promoted to the hot storage tier",
       stats.tier_promotions},
      {"ita_tier_demotions_total", "Terms demoted back to the cold tier",
       stats.tier_demotions},
  };
  for (const CounterSpec& spec : counters) {
    ITA_RETURN_NOT_OK(
        registry->AddCounter(spec.name, spec.help, labels, spec.value));
  }

  struct GaugeSpec {
    const char* name;
    const char* help;
    std::uint64_t value;
  };
  const GaugeSpec gauges[] = {
      {"ita_catalog_slab_bytes", "TermState slab reservation bytes",
       stats.catalog_slab_bytes},
      {"ita_postings_bytes", "Live inverted-list entry bytes",
       stats.postings_bytes},
      {"ita_threshold_entries", "(theta, query) pairs across threshold trees",
       stats.threshold_entries},
      {"ita_query_state_slots", "QueryState slab length incl. free slots",
       stats.query_state_slots},
      {"ita_hot_tier_terms", "Terms currently on the hot storage tier",
       stats.hot_tier_terms},
      {"ita_registered_queries", "Live registered continuous queries",
       stats.registered_queries},
      {"ita_arena_segments", "Live window-arena segments",
       stats.arena_segments},
      {"ita_document_bytes", "Bytes held by the window arena",
       stats.document_bytes},
  };
  for (const GaugeSpec& spec : gauges) {
    ITA_RETURN_NOT_OK(registry->AddGauge(spec.name, spec.help, labels,
                                         static_cast<double>(spec.value)));
  }
  return Status::OK();
}

}  // namespace ita::obs
