#include "sim/reshard_runner.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/query.h"
#include "core/result_set.h"
#include "obs/timer.h"
#include "sim/event_stream.h"
#include "sim/notification_consumer.h"
#include "sim/sim_engine.h"

namespace ita::sim {

const char* ReshardModeName(ReshardMode mode) {
  switch (mode) {
    case ReshardMode::kLive:
      return "live";
    case ReshardMode::kCheckpointRestore:
      return "checkpoint-restore";
  }
  return "unknown";
}

ReshardRunner::ReshardRunner(ScenarioSpec spec, ReshardOptions options)
    : spec_(std::move(spec)), options_(options) {}

std::string ReshardRunner::ReproLine(const ScenarioSpec& spec,
                                     const ReshardOptions& options) {
  return "--scenario=" + spec.name + " --seed=" + std::to_string(spec.seed) +
         " --events=" + std::to_string(spec.events) +
         " --shards=" + std::to_string(options.initial_shards) +
         " --new-shards=" + std::to_string(options.new_shards) +
         " --reshard-epoch=" + std::to_string(options.reshard_epoch) +
         " --mode=" + ReshardModeName(options.mode);
}

StatusOr<ReshardReport> ReshardRunner::Run() {
  ITA_RETURN_NOT_OK(spec_.Validate());
  if (options_.initial_shards == 0 || options_.new_shards == 0) {
    return Status::InvalidArgument("shard counts must be >= 1");
  }

  const auto fail = [this](std::string what) {
    return Status::Internal(what + "; reproduce with " +
                            ReproLine(spec_, options_));
  };

  // --- Materialize the canonical stream --------------------------------
  // Subject and twin consume the identical pre-generated epochs (the
  // twin must not see a stream perturbed by the subject's switch).
  EventStreamGenerator generator(spec_);
  std::vector<SimEpoch> epochs;
  StreamFingerprint stream_fp;
  std::unordered_map<QueryId, Query> live_map;
  while (std::optional<SimEpoch> epoch = generator.NextEpoch()) {
    stream_fp.Absorb(*epoch);
    for (const QueryId id : epoch->unregister) live_map.erase(id);
    for (std::size_t i = 0; i < epoch->register_ids.size(); ++i) {
      live_map.insert_or_assign(epoch->register_ids[i],
                                epoch->register_queries[i]);
    }
    epochs.push_back(std::move(*epoch));
  }
  if (epochs.empty()) {
    return Status::InvalidArgument("scenario '" + spec_.name +
                                   "' produced no epochs");
  }
  if (options_.reshard_epoch >= epochs.size()) {
    return Status::InvalidArgument(
        "reshard_epoch " + std::to_string(options_.reshard_epoch) +
        " out of range: scenario '" + spec_.name + "' has " +
        std::to_string(epochs.size()) + " epochs");
  }

  // --- The fixed-S′ twin (and the oracle) -------------------------------
  NotificationConsumer twin_consumer;
  std::unique_ptr<SimEngine> twin =
      MakeShardedEngine(spec_.window, options_.new_shards, options_.threads,
                        options_.tuning, options_.rebalance);
  twin->SetResultListener(
      [&twin_consumer](QueryId id, const std::vector<ResultEntry>& entries) {
        twin_consumer.Deliver(id, entries);
      });
  std::unique_ptr<SimEngine> oracle;
  if (options_.check_oracle) {
    oracle = MakeSequentialEngine(SequentialStrategy::kOracle, spec_.window);
  }
  for (const SimEpoch& epoch : epochs) {
    twin_consumer.BeginEpoch(epoch.index);
    ITA_ASSIGN_OR_RETURN(std::vector<DocId> ids, ApplyEpoch(*twin, epoch));
    (void)ids;
    if (oracle != nullptr) {
      ITA_ASSIGN_OR_RETURN(ids, ApplyEpoch(*oracle, epoch));
      (void)ids;
    }
  }

  // --- The subject: S until the barrier, S′ after -----------------------
  NotificationConsumer subject_consumer;
  const ResultListener subject_listener =
      [&subject_consumer](QueryId id, const std::vector<ResultEntry>& entries) {
        subject_consumer.Deliver(id, entries);
      };
  std::unique_ptr<SimEngine> subject =
      MakeShardedEngine(spec_.window, options_.initial_shards, options_.threads,
                        options_.tuning, options_.rebalance);
  subject->SetResultListener(subject_listener);

  std::uint64_t switch_nanos = 0;
  for (std::size_t pos = 0; pos < epochs.size(); ++pos) {
    const SimEpoch& epoch = epochs[pos];
    subject_consumer.BeginEpoch(epoch.index);
    ITA_ASSIGN_OR_RETURN(std::vector<DocId> ids, ApplyEpoch(*subject, epoch));
    (void)ids;
    if (pos != options_.reshard_epoch) continue;

    // The switch, at this epoch's trailing barrier. No notification may
    // fire from it — the next delivery the consumer sees belongs to the
    // next epoch.
    obs::Timer timer;
    if (options_.mode == ReshardMode::kLive) {
      ITA_RETURN_NOT_OK(subject->sharded()->Reshard(options_.new_shards));
    } else {
      std::string snapshot;
      ITA_RETURN_NOT_OK(subject->sharded()->Checkpoint(&snapshot));
      std::unique_ptr<SimEngine> resized = MakeShardedEngine(
          spec_.window, options_.new_shards, options_.threads, options_.tuning,
          options_.rebalance);
      ITA_RETURN_NOT_OK(resized->sharded()->Restore(snapshot));
      subject = std::move(resized);
      subject->SetResultListener(subject_listener);
    }
    switch_nanos = timer.ElapsedNanos();
    if (subject->sharded()->shard_count() != options_.new_shards) {
      return fail("subject runs " +
                  std::to_string(subject->sharded()->shard_count()) +
                  " shards after the switch, want " +
                  std::to_string(options_.new_shards));
    }
  }

  // --- Equivalence -----------------------------------------------------
  if (subject_consumer.digest() != twin_consumer.digest()) {
    return fail(
        "notification fingerprints diverge across the reshard: subject=" +
        std::to_string(subject_consumer.digest()) +
        " (deliveries=" + std::to_string(subject_consumer.deliveries()) +
        "), twin=" + std::to_string(twin_consumer.digest()) +
        " (deliveries=" + std::to_string(twin_consumer.deliveries()) + ")");
  }

  std::vector<LiveQuery> live;
  live.reserve(live_map.size());
  for (const auto& [id, query] : live_map) live.push_back({id, &query});
  std::sort(live.begin(), live.end(),
            [](const LiveQuery& a, const LiveQuery& b) { return a.id < b.id; });

  if (subject->sharded()->placement_size() != live.size()) {
    return fail("placement holds " +
                std::to_string(subject->sharded()->placement_size()) +
                " entries at end of stream, want " +
                std::to_string(live.size()) + " (one per live query)");
  }
  for (const LiveQuery& lq : live) {
    ITA_ASSIGN_OR_RETURN(std::vector<ResultEntry> got, subject->Result(lq.id));
    ITA_ASSIGN_OR_RETURN(std::vector<ResultEntry> want, twin->Result(lq.id));
    if (!(got == want)) {
      return fail("resharded engine's result for query " +
                  std::to_string(lq.id) + " diverges from the fixed-S' twin (" +
                  std::to_string(got.size()) + " vs " +
                  std::to_string(want.size()) + " entries)");
    }
  }

  DifferentialChecker checker(options_.checker, oracle.get());
  const Status check = checker.CheckEpoch({subject.get(), twin.get()}, live,
                                          epochs.back().index, /*force=*/true);
  if (!check.ok()) return fail(check.message());

  ReshardReport report;
  report.epochs = epochs.size();
  report.events = generator.events_generated();
  report.stream_fingerprint = stream_fp.digest();
  report.notification_fingerprint = subject_consumer.digest();
  report.live_queries = live.size();
  report.switch_nanos = switch_nanos;
  report.reshard = subject->sharded()->reshard_stats();
  return report;
}

}  // namespace ita::sim
