#include "sim/metrics_export.h"

#include <string>
#include <utility>

namespace ita::sim {

namespace {

/// `base` plus one extra label (the registry copies, so reuse is fine).
std::vector<obs::Label> With(const std::vector<obs::Label>& base,
                             std::string key, std::string value) {
  std::vector<obs::Label> labels = base;
  labels.push_back(obs::Label{std::move(key), std::move(value)});
  return labels;
}

std::vector<obs::Label> With2(const std::vector<obs::Label>& base,
                              std::string key1, std::string value1,
                              std::string key2, std::string value2) {
  std::vector<obs::Label> labels = base;
  labels.push_back(obs::Label{std::move(key1), std::move(value1)});
  labels.push_back(obs::Label{std::move(key2), std::move(value2)});
  return labels;
}

}  // namespace

Status ExportEngineMetrics(const SimEngine& engine,
                           std::vector<obs::Label> base_labels,
                           obs::MetricsRegistry* registry) {
  ITA_RETURN_NOT_OK(
      obs::ExportServerStats(engine.stats(), base_labels, registry));

  if (const obs::EpochTrace* trace = engine.trace(); trace != nullptr) {
    ITA_RETURN_NOT_OK(registry->AddCounter("ita_epochs_traced",
                                           "Epochs the trace has recorded",
                                           base_labels, trace->epochs()));
    ITA_RETURN_NOT_OK(registry->AddGauge(
        "ita_shard_imbalance",
        "Last epoch's max/mean shard phase work (1 = balanced)", base_labels,
        trace->last_imbalance()));
    ITA_RETURN_NOT_OK(registry->AddGauge(
        "ita_shard_imbalance_max", "Largest imbalance any traced epoch showed",
        base_labels, trace->max_imbalance()));
    if (trace->wall_hist().count() > 0) {
      ITA_RETURN_NOT_OK(registry->AddHistogram(
          "ita_epoch_wall_nanos", "Whole-epoch wall time", base_labels,
          trace->wall_hist()));
    }
    for (std::size_t s = 0; s < trace->shards(); ++s) {
      const std::string shard = std::to_string(s);
      for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
        const auto phase = static_cast<obs::Phase>(p);
        const obs::Histogram& hist = trace->phase_hist(s, phase);
        if (hist.count() == 0 || hist.max() == 0) continue;
        ITA_RETURN_NOT_OK(registry->AddHistogram(
            "ita_epoch_phase_nanos", "Per-epoch phase time",
            With2(base_labels, "shard", shard, "phase", obs::PhaseName(phase)),
            hist));
      }
      for (std::size_t q = 0; q < obs::kSubSpanCount; ++q) {
        const auto span = static_cast<obs::SubSpan>(q);
        const obs::Histogram& hist = trace->sub_hist(s, span);
        if (hist.count() == 0 || hist.max() == 0) continue;
        ITA_RETURN_NOT_OK(registry->AddHistogram(
            "ita_epoch_subspan_nanos", "Per-epoch strategy sub-span time",
            With2(base_labels, "shard", shard, "span", obs::SubSpanName(span)),
            hist));
      }
    }
  }

  if (const exec::ShardedServer* sharded = engine.sharded();
      sharded != nullptr) {
    const auto& rb = sharded->rebalance_stats();
    ITA_RETURN_NOT_OK(registry->AddCounter(
        "ita_queries_migrated_total",
        "Queries moved between shards by the load-aware rebalancer",
        base_labels, rb.queries_migrated));
    ITA_RETURN_NOT_OK(registry->AddCounter(
        "ita_rebalance_events_total",
        "Epochs in which at least one query migrated", base_labels,
        rb.rebalance_events));
    // The reshard series export unconditionally (zeros included) so the
    // schema is stable whether or not a run ever resharded — the CI
    // metrics-smoke asserts their presence by name.
    const auto& rs = sharded->reshard_stats();
    ITA_RETURN_NOT_OK(registry->AddCounter(
        "ita_reshard_events_total",
        "Completed live shard-count changes (S to S')", base_labels,
        rs.reshards));
    ITA_RETURN_NOT_OK(registry->AddCounter(
        "ita_reshard_queries_remapped_total",
        "Queries re-registered across all reshards", base_labels,
        rs.queries_remapped));
    ITA_RETURN_NOT_OK(registry->AddGauge(
        "ita_reshard_last_pause_nanos",
        "Stream stall of the most recent reshard", base_labels,
        static_cast<double>(rs.last_pause_nanos)));
    ITA_RETURN_NOT_OK(registry->AddCounter(
        "ita_reshard_pause_nanos_total",
        "Cumulative stream stall across all reshards", base_labels,
        rs.total_pause_nanos));
  }

  const obs::SpaceSavingSketch hot = engine.HotTerms();
  for (const obs::SpaceSavingSketch::Entry& entry : hot.TopK()) {
    ITA_RETURN_NOT_OK(registry->AddCounter(
        "ita_hot_term_load",
        "Postings + probe steps attributed to the term (upper bound)",
        With(base_labels, "term", std::to_string(entry.term)), entry.count));
  }
  return Status::OK();
}

}  // namespace ita::sim
