#include "sim/scenario.h"

#include <algorithm>

namespace ita::sim {

const char* ArrivalShapeName(ArrivalShape shape) {
  switch (shape) {
    case ArrivalShape::kUniform: return "uniform";
    case ArrivalShape::kPoisson: return "poisson";
    case ArrivalShape::kFlashCrowd: return "flash_crowd";
    case ArrivalShape::kDiurnal: return "diurnal";
  }
  return "?";
}

Status ScenarioSpec::Validate() const {
  ITA_RETURN_NOT_OK(window.Validate());
  if (events == 0) return Status::InvalidArgument("events must be >= 1");
  if (batch_size == 0) return Status::InvalidArgument("batch_size must be >= 1");
  if (arrivals.rate_per_second <= 0.0) {
    return Status::InvalidArgument("arrival rate must be positive");
  }
  if (arrivals.shape == ArrivalShape::kFlashCrowd &&
      (arrivals.burst_factor < 1.0 || arrivals.burst_period_seconds <= 0.0 ||
       arrivals.burst_duration_seconds <= 0.0 ||
       arrivals.burst_duration_seconds > arrivals.burst_period_seconds)) {
    return Status::InvalidArgument("malformed flash-crowd burst parameters");
  }
  if (arrivals.shape == ArrivalShape::kDiurnal &&
      (arrivals.diurnal_amplitude < 0.0 || arrivals.diurnal_amplitude >= 1.0 ||
       arrivals.diurnal_period_seconds <= 0.0)) {
    return Status::InvalidArgument("malformed diurnal parameters");
  }
  if (vocabulary.dictionary_size == 0) {
    return Status::InvalidArgument("dictionary must be non-empty");
  }
  if (vocabulary.min_length < 1 ||
      vocabulary.min_length > vocabulary.max_length) {
    return Status::InvalidArgument("malformed document length bounds");
  }
  if (vocabulary.flood_terms > vocabulary.dictionary_size) {
    return Status::InvalidArgument("flood_terms exceeds the dictionary");
  }
  if (vocabulary.flood_period_events != 0 &&
      vocabulary.flood_duration_events > vocabulary.flood_period_events) {
    return Status::InvalidArgument("flood window longer than its period");
  }
  if (queries.terms_per_query == 0) {
    return Status::InvalidArgument("queries need at least one term");
  }
  if (queries.k < 1 || (queries.heavy_tailed_k && queries.k_max < 1)) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (queries.storm_period_epochs != 0 && queries.storm_size == 0) {
    return Status::InvalidArgument("churn storms need storm_size >= 1");
  }
  if (queries.storm_period_epochs != 0 &&
      queries.storm_size > queries.initial_queries) {
    return Status::InvalidArgument(
        "storm_size exceeds the query population");
  }
  return Status::OK();
}

ScenarioSpec ZipfDriftScenario(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "zipf_drift";
  spec.seed = seed;
  spec.window = WindowSpec::CountBased(200);
  spec.batch_size = 64;
  spec.vocabulary.dictionary_size = 1'200;
  spec.vocabulary.drift_interval_events = 500;
  spec.vocabulary.drift_stride = 37;
  spec.queries.initial_queries = 16;
  spec.queries.terms_per_query = 4;
  spec.queries.hot_max_term = 80;  // hot queries feel the drift directly
  return spec;
}

ScenarioSpec FlashCrowdScenario(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "flash_crowd";
  spec.seed = seed;
  spec.window = WindowSpec::CountBased(150);
  spec.batch_size = 48;
  spec.jitter_batch_size = true;
  spec.arrivals.shape = ArrivalShape::kFlashCrowd;
  spec.arrivals.rate_per_second = 100.0;
  spec.arrivals.burst_factor = 10.0;
  spec.arrivals.burst_period_seconds = 20.0;
  spec.arrivals.burst_duration_seconds = 2.5;
  spec.vocabulary.dictionary_size = 800;
  spec.queries.initial_queries = 14;
  spec.queries.terms_per_query = 5;
  return spec;
}

ScenarioSpec ChurnStormScenario(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "churn_storm";
  spec.seed = seed;
  // Time-based window with periodic advances: expiration-only epochs
  // interleave with the churn storms.
  spec.window = WindowSpec::TimeBased(1'500'000);  // 1.5 virtual seconds
  spec.advance_time = true;
  spec.advance_period_epochs = 5;
  spec.batch_size = 40;
  spec.vocabulary.dictionary_size = 600;
  spec.queries.initial_queries = 24;
  spec.queries.terms_per_query = 4;
  spec.queries.storm_period_epochs = 3;
  spec.queries.storm_size = 6;
  return spec;
}

ScenarioSpec DiurnalScenario(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "diurnal";
  spec.seed = seed;
  spec.window = WindowSpec::CountBased(180);
  spec.batch_size = 32;
  spec.arrivals.shape = ArrivalShape::kDiurnal;
  spec.arrivals.rate_per_second = 150.0;
  spec.arrivals.diurnal_amplitude = 0.85;
  spec.arrivals.diurnal_period_seconds = 40.0;
  spec.vocabulary.dictionary_size = 1'000;
  spec.queries.initial_queries = 12;
  spec.queries.heavy_tailed_k = true;
  spec.queries.k_max = 48;
  return spec;
}

ScenarioSpec HotTermFloodScenario(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "hot_term_flood";
  spec.seed = seed;
  spec.window = WindowSpec::CountBased(120);
  spec.batch_size = 36;
  spec.vocabulary.dictionary_size = 700;
  spec.vocabulary.flood_terms = 5;
  spec.vocabulary.flood_period_events = 400;
  spec.vocabulary.flood_duration_events = 120;
  spec.queries.initial_queries = 16;
  spec.queries.terms_per_query = 3;
  spec.queries.hot_max_term = 30;  // queries sit right on the flooded terms
  return spec;
}

ScenarioSpec MixedStressScenario(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "mixed_stress";
  spec.seed = seed;
  spec.window = WindowSpec::CountBased(160);
  spec.batch_size = 44;
  spec.jitter_batch_size = true;
  spec.arrivals.shape = ArrivalShape::kFlashCrowd;
  spec.arrivals.rate_per_second = 120.0;
  spec.arrivals.burst_factor = 6.0;
  spec.arrivals.burst_period_seconds = 15.0;
  spec.arrivals.burst_duration_seconds = 2.0;
  spec.vocabulary.dictionary_size = 900;
  spec.vocabulary.drift_interval_events = 700;
  spec.vocabulary.drift_stride = 53;
  spec.vocabulary.flood_terms = 4;
  spec.vocabulary.flood_period_events = 600;
  spec.vocabulary.flood_duration_events = 150;
  spec.queries.initial_queries = 20;
  spec.queries.terms_per_query = 4;
  spec.queries.heavy_tailed_k = true;
  spec.queries.k_max = 32;
  spec.queries.hot_max_term = 60;
  spec.queries.storm_period_epochs = 4;
  spec.queries.storm_size = 5;
  return spec;
}

const std::vector<ScenarioFactory>& ScenarioCatalog() {
  static const std::vector<ScenarioFactory>* catalog =
      new std::vector<ScenarioFactory>{
          {"zipf_drift", &ZipfDriftScenario},
          {"flash_crowd", &FlashCrowdScenario},
          {"churn_storm", &ChurnStormScenario},
          {"diurnal", &DiurnalScenario},
          {"hot_term_flood", &HotTermFloodScenario},
          {"mixed_stress", &MixedStressScenario},
      };
  return *catalog;
}

const ScenarioFactory* FindScenario(const std::string& name) {
  const auto& catalog = ScenarioCatalog();
  const auto it = std::find_if(
      catalog.begin(), catalog.end(),
      [&name](const ScenarioFactory& f) { return name == f.name; });
  return it == catalog.end() ? nullptr : &*it;
}

}  // namespace ita::sim
