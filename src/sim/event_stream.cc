#include "sim/event_stream.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace ita::sim {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;
/// Repeat count of each flooded hot term — heavy enough that the flood
/// dominates the document's impact weights.
constexpr std::uint32_t kFloodRepeat = 4;

void AppendU32(std::uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void AppendU64(std::uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void AppendDouble(double v, std::string* out) {
  AppendU64(std::bit_cast<std::uint64_t>(v), out);
}

}  // namespace

void SerializeEpoch(const SimEpoch& epoch, std::string* out) {
  AppendU64(epoch.index, out);
  AppendU64(epoch.unregister.size(), out);
  for (const QueryId id : epoch.unregister) AppendU32(id, out);
  AppendU64(epoch.register_queries.size(), out);
  for (std::size_t i = 0; i < epoch.register_queries.size(); ++i) {
    const Query& q = epoch.register_queries[i];
    AppendU32(epoch.register_ids[i], out);
    AppendU32(static_cast<std::uint32_t>(q.k), out);
    AppendU64(q.terms.size(), out);
    for (const TermWeight& tw : q.terms) {
      AppendU32(tw.term, out);
      AppendDouble(tw.weight, out);
    }
  }
  AppendU64(epoch.batch.size(), out);
  for (const Document& doc : epoch.batch) {
    AppendU64(static_cast<std::uint64_t>(doc.arrival_time), out);
    AppendU64(doc.token_count, out);
    AppendU64(doc.composition.size(), out);
    for (const TermWeight& tw : doc.composition) {
      AppendU32(tw.term, out);
      AppendDouble(tw.weight, out);
    }
  }
  out->push_back(epoch.has_advance ? '\1' : '\0');
  AppendU64(static_cast<std::uint64_t>(epoch.advance_to), out);
}

void StreamFingerprint::Absorb(const SimEpoch& epoch) {
  scratch_.clear();
  SerializeEpoch(epoch, &scratch_);
  for (const char c : scratch_) {
    hash_ ^= static_cast<unsigned char>(c);
    hash_ *= 0x100000001b3ULL;  // FNV-1a prime
  }
}

namespace {

ZipfDocumentSampler::Options BodySamplerOptions(const ScenarioSpec& spec) {
  ZipfDocumentSampler::Options o;
  o.dictionary_size = spec.vocabulary.dictionary_size;
  o.zipf_exponent = spec.vocabulary.zipf_exponent;
  o.length_mu = spec.vocabulary.length_mu;
  o.length_sigma = spec.vocabulary.length_sigma;
  o.min_length = spec.vocabulary.min_length;
  o.max_length = spec.vocabulary.max_length;
  return o;
}

}  // namespace

EventStreamGenerator::EventStreamGenerator(ScenarioSpec spec)
    : spec_(std::move(spec)),
      // Distinct SplitMix-style offsets keep the per-concern streams
      // statistically independent while deriving from the one seed.
      arrival_rng_(spec_.seed * 0x9E3779B97F4A7C15ULL + 1),
      doc_rng_(spec_.seed * 0x9E3779B97F4A7C15ULL + 2),
      query_rng_(spec_.seed * 0x9E3779B97F4A7C15ULL + 3),
      batch_rng_(spec_.seed * 0x9E3779B97F4A7C15ULL + 4),
      body_sampler_(BodySamplerOptions(spec_)),
      // Heavy-tailed k distribution; built unconditionally (cheap) and
      // sampled only when the profile enables it. Invalid specs are
      // caught by Validate() below; the max() keeps this member safe to
      // build first.
      k_zipf_(static_cast<std::size_t>(std::max(spec_.queries.k_max, 1)), 1.2) {
  ITA_CHECK_OK(spec_.Validate());
  if (spec_.pool_documents > 0) {
    // Pooled mode: synthesize the content templates once, up front
    // (drift/floods are positional and would be frozen into the pool
    // anyway, so pooled scenarios are meant for steady-state benching).
    pool_.reserve(spec_.pool_documents);
    for (std::size_t i = 0; i < spec_.pool_documents; ++i) {
      pool_.push_back(SynthesizeDocument());
    }
  }
}

double EventStreamGenerator::RateAt(double seconds) const {
  const ArrivalProfile& a = spec_.arrivals;
  switch (a.shape) {
    case ArrivalShape::kUniform:
    case ArrivalShape::kPoisson:
      return a.rate_per_second;
    case ArrivalShape::kFlashCrowd: {
      const double phase = std::fmod(seconds, a.burst_period_seconds);
      return phase < a.burst_duration_seconds
                 ? a.rate_per_second * a.burst_factor
                 : a.rate_per_second;
    }
    case ArrivalShape::kDiurnal:
      return a.rate_per_second *
             (1.0 + a.diurnal_amplitude *
                        std::sin(kTwoPi * seconds / a.diurnal_period_seconds));
  }
  return a.rate_per_second;
}

TermId EventStreamGenerator::RankToTerm(std::size_t rank) const {
  return static_cast<TermId>((rank + drift_offset_) %
                             spec_.vocabulary.dictionary_size);
}

Document EventStreamGenerator::SynthesizeDocument() {
  const VocabularyProfile& v = spec_.vocabulary;
  // The shared Zipfian body sampler (stream/corpus.h); topic drift is
  // its rank rotation.
  std::size_t token_count =
      body_sampler_.SampleBody(&doc_rng_, drift_offset_, &counts_scratch_);

  // Adversarial hot-term flood: while the flood window is open, spike
  // the currently hottest ranks into every document. Flood tokens count
  // toward the document length BM25 sees.
  const bool flooding =
      v.flood_terms > 0 && v.flood_period_events > 0 &&
      (events_generated_ % v.flood_period_events) < v.flood_duration_events;
  if (flooding) {
    for (std::size_t r = 0; r < v.flood_terms; ++r) {
      const TermId term = RankToTerm(r);
      const auto it = std::lower_bound(
          counts_scratch_.begin(), counts_scratch_.end(), term,
          [](const auto& entry, TermId t) { return entry.first < t; });
      if (it != counts_scratch_.end() && it->first == term) {
        it->second += kFloodRepeat;
      } else {
        counts_scratch_.insert(it, {term, kFloodRepeat});
      }
      token_count += kFloodRepeat;
    }
  }

  return ComposeSyntheticDocument(counts_scratch_, token_count, spec_.scheme,
                                  &corpus_stats_);
}

Document EventStreamGenerator::NextDocument() {
  Document doc = pool_.empty() ? SynthesizeDocument()
                               : pool_[pool_cursor_++ % pool_.size()];

  // Arrival stamp from the (possibly modulated) arrival process.
  const double rate = RateAt(static_cast<double>(now_) * 1e-6);
  const double gap_seconds = spec_.arrivals.shape == ArrivalShape::kUniform
                                 ? 1.0 / rate
                                 : arrival_rng_.Exponential(rate);
  now_ += std::max<Timestamp>(1, static_cast<Timestamp>(std::llround(gap_seconds * 1e6)));
  doc.arrival_time = now_;

  ++events_generated_;
  const VocabularyProfile& v = spec_.vocabulary;
  if (v.drift_interval_events > 0 &&
      events_generated_ % v.drift_interval_events == 0) {
    drift_offset_ = (drift_offset_ + v.drift_stride) % v.dictionary_size;
  }
  return doc;
}

Query EventStreamGenerator::NextQuery() {
  const QueryProfile& q = spec_.queries;
  std::size_t range = spec_.vocabulary.dictionary_size;
  if (q.hot_max_term != 0 && q.hot_max_term < range) range = q.hot_max_term;

  // Ranks, not raw ids: a query registered mid-stream targets the hot
  // vocabulary of its registration instant (drift-aware).
  std::vector<TermId> picks;
  picks.reserve(q.terms_per_query);
  for (std::size_t i = 0; i < q.terms_per_query; ++i) {
    picks.push_back(RankToTerm(query_rng_.UniformInt(0, range - 1)));
  }
  const int k = q.heavy_tailed_k
                    ? 1 + static_cast<int>(k_zipf_.Sample(&query_rng_))
                    : q.k;
  return BuildTermQuery(std::move(picks), k, spec_.scheme);
}

std::optional<SimEpoch> EventStreamGenerator::NextEpoch() {
  if (events_generated_ >= spec_.events) return std::nullopt;

  SimEpoch epoch;
  epoch.index = epoch_index_;

  const QueryProfile& q = spec_.queries;
  if (!installed_initial_ &&
      events_generated_ >= q.install_after_events) {
    // Initial population, ids 1..n in registration order.
    for (std::size_t i = 0; i < q.initial_queries; ++i) {
      epoch.register_ids.push_back(next_query_id_);
      live_.push_back(next_query_id_++);
      epoch.register_queries.push_back(NextQuery());
    }
    installed_initial_ = true;
  } else if (installed_initial_ && q.storm_period_epochs > 0 &&
             epoch_index_ > 0 && epoch_index_ % q.storm_period_epochs == 0) {
    // Churn storm: retire the oldest queries, install replacements.
    const std::size_t n = std::min<std::size_t>(q.storm_size, live_.size());
    for (std::size_t i = 0; i < n; ++i) {
      epoch.unregister.push_back(live_.front());
      live_.pop_front();
    }
    for (std::size_t i = 0; i < n; ++i) {
      epoch.register_ids.push_back(next_query_id_);
      live_.push_back(next_query_id_++);
      epoch.register_queries.push_back(NextQuery());
    }
  }

  std::size_t n = spec_.batch_size;
  if (spec_.jitter_batch_size && spec_.batch_size > 1) {
    n = 1 + static_cast<std::size_t>(
                batch_rng_.UniformInt(0, 2 * spec_.batch_size - 2));
  }
  n = std::min<std::size_t>(n, spec_.events - events_generated_);
  epoch.batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) epoch.batch.push_back(NextDocument());

  if (spec_.advance_time &&
      spec_.window.kind == WindowSpec::Kind::kTimeBased &&
      spec_.advance_period_epochs > 0 &&
      (epoch_index_ + 1) % spec_.advance_period_epochs == 0) {
    epoch.has_advance = true;
    epoch.advance_to = now_ + spec_.window.duration / 2;
    now_ = epoch.advance_to;  // the stream clock never moves backwards
  }

  ++epoch_index_;
  return epoch;
}

}  // namespace ita::sim
