/// \file
/// The deterministic event stream a ScenarioSpec compiles to: a sequence
/// of SimEpochs, each carrying the epoch's query churn, its document
/// batch and an optional clock advance, in application order. The
/// generator is pull-based and byte-reproducible: two generators built
/// from equal specs produce identical epochs — identical down to the
/// canonical serialization — regardless of which engine (if any)
/// consumes them. SerializeEpoch/StreamFingerprint pin that contract.
///
/// Query ids are predicted by the generator (both the sequential servers
/// and the sharded engine assign 1, 2, 3, ... in registration order), so
/// an epoch is fully self-contained: the consumer asserts the engine
/// really assigned the predicted ids (sim/sim_engine.h does).

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "core/query.h"
#include "sim/scenario.h"
#include "stream/corpus.h"
#include "stream/document.h"
#include "text/weighting.h"

namespace ita::sim {

/// One epoch of simulated workload. Application order: `unregister`
/// (oldest first), then `register_queries` (the engine must hand back
/// `register_ids[i]` for the i-th registration), then `batch` as ONE
/// ingest epoch, then — when `has_advance` — AdvanceTime(advance_to).
struct SimEpoch {
  /// Zero-based epoch sequence number.
  std::uint64_t index = 0;
  /// Queries terminated this epoch, in termination order.
  std::vector<QueryId> unregister;
  /// Predicted engine-assigned ids, parallel to `register_queries`.
  std::vector<QueryId> register_ids;
  /// Queries installed this epoch, in registration order.
  std::vector<Query> register_queries;
  /// The epoch's document arrivals (ids unassigned, arrival times
  /// non-decreasing). May be empty for advance-only epochs.
  std::vector<Document> batch;
  /// When true, the consumer advances the clock to `advance_to` after
  /// ingesting `batch` (time-based windows only).
  bool has_advance = false;
  Timestamp advance_to = 0;
};

/// Appends the canonical little-endian serialization of `epoch` to
/// `out` — the byte layout behind the determinism contract (doubles are
/// serialized as IEEE-754 bit patterns, so "equal" means bit-equal).
void SerializeEpoch(const SimEpoch& epoch, std::string* out);

/// Order-sensitive FNV-1a 64 digest over the canonical serialization of
/// a stream's epochs — a cheap whole-stream identity for reproducibility
/// assertions and repro lines.
class StreamFingerprint {
 public:
  /// Mixes `epoch`'s canonical bytes into the digest.
  void Absorb(const SimEpoch& epoch);
  /// The digest over everything absorbed so far.
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  ///< FNV-1a offset basis
  std::string scratch_;
};

/// Compiles a ScenarioSpec into its epoch sequence. Pull-based,
/// deterministic, engine-independent; not thread-safe. Construction
/// CHECK-fails on an invalid spec (validate first to handle errors).
class EventStreamGenerator {
 public:
  explicit EventStreamGenerator(ScenarioSpec spec);

  /// The validated spec this stream was compiled from.
  const ScenarioSpec& spec() const { return spec_; }

  /// Produces the next epoch, or nullopt once `spec().events` document
  /// arrivals have been emitted.
  std::optional<SimEpoch> NextEpoch();

  /// Document arrivals emitted so far.
  std::uint64_t events_generated() const { return events_generated_; }
  /// Epochs emitted so far.
  std::uint64_t epochs_generated() const { return epoch_index_; }
  /// Ids of the queries live after the last emitted epoch, oldest first.
  const std::deque<QueryId>& live_queries() const { return live_; }
  /// The stream clock: arrival time of the newest document (or the last
  /// advance target).
  Timestamp now() const { return now_; }

 private:
  /// Synthesizes the next document and stamps the next arrival time.
  Document NextDocument();
  /// One freshly synthesized document body (composition + token count),
  /// honoring drift and floods at the current stream position.
  Document SynthesizeDocument();
  /// Draws one fresh query against the current (drifted) hot set.
  Query NextQuery();
  /// The arrival profile's instantaneous rate at virtual time `seconds`.
  double RateAt(double seconds) const;
  /// Zipf rank -> term id under the current drift rotation.
  TermId RankToTerm(std::size_t rank) const;

  ScenarioSpec spec_;
  // Independent per-concern generators (all derived from spec_.seed), so
  // e.g. arrival draws never perturb document contents.
  Rng arrival_rng_;
  Rng doc_rng_;
  Rng query_rng_;
  Rng batch_rng_;
  /// The shared Zipfian body sampler (stream/corpus.h); drift enters as
  /// its rank rotation.
  ZipfDocumentSampler body_sampler_;
  ZipfDistribution k_zipf_;  ///< heavy-tailed k (sampled only when enabled)
  CorpusStats corpus_stats_;                ///< feeds BM25 weighting

  std::uint64_t events_generated_ = 0;
  std::uint64_t epoch_index_ = 0;
  std::size_t drift_offset_ = 0;
  Timestamp now_ = 0;
  bool installed_initial_ = false;
  QueryId next_query_id_ = 1;
  std::deque<QueryId> live_;

  /// Pooled mode (spec.pool_documents > 0): pre-synthesized document
  /// bodies, cycled with fresh arrival stamps.
  std::vector<Document> pool_;
  std::size_t pool_cursor_ = 0;

  TermCounts counts_scratch_;  ///< synthesis scratch, reused across docs
};

}  // namespace ita::sim
