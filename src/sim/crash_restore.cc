#include "sim/crash_restore.h"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/query.h"
#include "core/result_set.h"
#include "obs/timer.h"
#include "persist/epoch_log.h"
#include "persist/snapshot.h"
#include "persist/wire.h"
#include "sim/event_stream.h"
#include "sim/notification_consumer.h"
#include "sim/sim_engine.h"

namespace ita::sim {
namespace {

/// Checkpoints `engine` into `*out` as one snapshot container — the
/// sharded engine writes its own multi-section container, a sequential
/// server gets wrapped in a fresh SnapshotWriter.
Status CheckpointEngine(SimEngine& engine, std::string* out) {
  out->clear();
  if (exec::ShardedServer* sharded = engine.sharded()) {
    return sharded->Checkpoint(out);
  }
  persist::SnapshotWriter writer(out);
  return engine.sequential()->Checkpoint(writer);
}

/// Restores a freshly constructed `engine` from snapshot `bytes`.
Status RestoreEngine(SimEngine& engine, std::string_view bytes) {
  if (exec::ShardedServer* sharded = engine.sharded()) {
    return sharded->Restore(bytes);
  }
  ITA_ASSIGN_OR_RETURN(persist::SnapshotReader reader,
                       persist::SnapshotReader::Open(bytes));
  return engine.sequential()->Restore(reader);
}

}  // namespace

const char* CrashPhaseName(CrashPhase phase) {
  switch (phase) {
    case CrashPhase::kBeforeLogAppend:
      return "before-log-append";
    case CrashPhase::kTornLogAppend:
      return "torn-log-append";
    case CrashPhase::kAfterLogAppend:
      return "after-log-append";
    case CrashPhase::kAfterApply:
      return "after-apply";
  }
  return "unknown";
}

CrashRestoreRunner::CrashRestoreRunner(ScenarioSpec spec,
                                       CrashRestoreOptions options)
    : spec_(std::move(spec)), options_(options) {}

std::string CrashRestoreRunner::ReproLine(const ScenarioSpec& spec,
                                          const CrashRestoreOptions& options) {
  std::string line = "--scenario=" + spec.name +
                     " --seed=" + std::to_string(spec.seed) +
                     " --events=" + std::to_string(spec.events) +
                     " --shards=" + std::to_string(options.shards) +
                     " --snapshot-every=" +
                     std::to_string(options.snapshot_every_epochs) +
                     " --crash-epoch=" + std::to_string(options.crash_epoch) +
                     " --phase=" + CrashPhaseName(options.crash_phase);
  if (options.crash_phase == CrashPhase::kTornLogAppend) {
    line += " --torn-cut=" + std::to_string(options.torn_cut_bytes);
  }
  return line;
}

StatusOr<CrashRestoreReport> CrashRestoreRunner::Run() {
  ITA_RETURN_NOT_OK(spec_.Validate());
  if (options_.snapshot_every_epochs == 0) {
    return Status::InvalidArgument("snapshot_every_epochs must be >= 1");
  }

  const auto fail = [this](std::string what) {
    return Status::Internal(what + "; reproduce with " +
                            ReproLine(spec_, options_));
  };

  // --- Materialize the canonical stream --------------------------------
  // Both runs consume the identical pre-generated epochs, and the subject
  // needs random access to resume after the kill.
  EventStreamGenerator generator(spec_);
  std::vector<SimEpoch> epochs;
  StreamFingerprint stream_fp;
  std::unordered_map<QueryId, Query> live_map;
  while (std::optional<SimEpoch> epoch = generator.NextEpoch()) {
    stream_fp.Absorb(*epoch);
    for (const QueryId id : epoch->unregister) live_map.erase(id);
    for (std::size_t i = 0; i < epoch->register_ids.size(); ++i) {
      live_map.insert_or_assign(epoch->register_ids[i],
                                epoch->register_queries[i]);
    }
    epochs.push_back(std::move(*epoch));
  }
  if (epochs.empty()) {
    return Status::InvalidArgument("scenario '" + spec_.name +
                                   "' produced no epochs");
  }
  if (options_.crash_epoch >= epochs.size()) {
    return Status::InvalidArgument(
        "crash_epoch " + std::to_string(options_.crash_epoch) +
        " out of range: scenario '" + spec_.name + "' has " +
        std::to_string(epochs.size()) + " epochs");
  }

  const auto make_engine = [this]() -> std::unique_ptr<SimEngine> {
    if (options_.shards == 0) {
      return MakeSequentialEngine(SequentialStrategy::kIta, spec_.window,
                                  options_.tuning);
    }
    return MakeShardedEngine(spec_.window, options_.shards, options_.threads,
                             options_.tuning, options_.rebalance);
  };

  const auto apply = [](SimEngine& engine, NotificationConsumer& consumer,
                        const SimEpoch& epoch) -> Status {
    consumer.BeginEpoch(epoch.index);
    ITA_ASSIGN_OR_RETURN(std::vector<DocId> ids, ApplyEpoch(engine, epoch));
    (void)ids;
    return Status::OK();
  };

  // --- The uninterrupted twin (and the oracle) --------------------------
  NotificationConsumer twin_consumer;
  std::unique_ptr<SimEngine> twin = make_engine();
  twin->SetResultListener(
      [&twin_consumer](QueryId id, const std::vector<ResultEntry>& entries) {
        twin_consumer.Deliver(id, entries);
      });
  std::unique_ptr<SimEngine> oracle;
  if (options_.check_oracle) {
    oracle = MakeSequentialEngine(SequentialStrategy::kOracle, spec_.window);
  }
  for (const SimEpoch& epoch : epochs) {
    ITA_RETURN_NOT_OK(apply(*twin, twin_consumer, epoch));
    if (oracle != nullptr) {
      ITA_ASSIGN_OR_RETURN(std::vector<DocId> ids, ApplyEpoch(*oracle, epoch));
      (void)ids;
    }
  }

  // --- The subject: snapshot cadence, WAL, kill, recovery ---------------
  persist::PersistStats stats;
  NotificationConsumer subject_consumer;
  const ResultListener subject_listener =
      [&subject_consumer](QueryId id, const std::vector<ResultEntry>& entries) {
        subject_consumer.Deliver(id, entries);
      };
  std::unique_ptr<SimEngine> subject = make_engine();
  subject->SetResultListener(subject_listener);

  persist::EpochLog log;
  std::string snapshot_bytes;      // latest durable snapshot ("" = none)
  std::size_t snapshot_covers = 0;  // epochs the snapshot captured

  const auto append_to_log = [&log, &stats](const SimEpoch& epoch) {
    const std::size_t before = log.bytes().size();
    log.Append(epoch);
    ++stats.log_records_appended;
    stats.log_bytes_appended += log.bytes().size() - before;
  };

  // Kill + recovery: discard the engine, construct a fresh one, restore
  // the latest snapshot, replay the log tail (torn tails truncate), and
  // report the stream position the resumed run continues from.
  const auto recover = [&]() -> StatusOr<std::size_t> {
    subject = make_engine();
    subject->SetResultListener(subject_listener);
    ITA_ASSIGN_OR_RETURN(
        std::vector<SimEpoch> tail,
        persist::ParseEpochLog(log.bytes(), persist::TornTailPolicy::kTruncate));
    log.Clear();
    if (!snapshot_bytes.empty()) {
      obs::Timer timer;
      ITA_RETURN_NOT_OK(RestoreEngine(*subject, snapshot_bytes));
      ++stats.restores;
      stats.restore_nanos += timer.ElapsedNanos();
    }
    obs::Timer replay_timer;
    for (SimEpoch& epoch : tail) {
      const std::uint64_t expected = snapshot_covers + stats.replayed_epochs;
      if (epoch.index != expected) {
        return Status::Internal("log replay out of order: expected epoch " +
                                std::to_string(expected) + ", log holds " +
                                std::to_string(epoch.index));
      }
      append_to_log(epoch);  // the recovered process's own WAL
      subject_consumer.BeginEpoch(epoch.index);
      ITA_ASSIGN_OR_RETURN(std::vector<DocId> ids,
                           ApplyEpoch(*subject, std::move(epoch)));
      (void)ids;
      ++stats.replayed_epochs;
    }
    stats.replay_nanos += replay_timer.ElapsedNanos();
    return snapshot_covers + stats.replayed_epochs;
  };

  bool crashed = false;
  std::size_t pos = 0;
  while (pos < epochs.size()) {
    const SimEpoch& epoch = epochs[pos];
    const bool crash_here = !crashed && pos == options_.crash_epoch;
    if (crash_here && options_.crash_phase == CrashPhase::kBeforeLogAppend) {
      crashed = true;
      ITA_ASSIGN_OR_RETURN(pos, recover());
      continue;
    }
    append_to_log(epoch);
    if (crash_here && options_.crash_phase == CrashPhase::kTornLogAppend) {
      crashed = true;
      log.TearTail(options_.torn_cut_bytes == 0 ? 1 : options_.torn_cut_bytes);
      ITA_ASSIGN_OR_RETURN(pos, recover());
      continue;
    }
    if (crash_here && options_.crash_phase == CrashPhase::kAfterLogAppend) {
      crashed = true;
      ITA_ASSIGN_OR_RETURN(pos, recover());
      continue;
    }
    ITA_RETURN_NOT_OK(apply(*subject, subject_consumer, epoch));
    if (crash_here && options_.crash_phase == CrashPhase::kAfterApply) {
      crashed = true;
      ITA_ASSIGN_OR_RETURN(pos, recover());
      continue;
    }
    ++pos;
    if (pos % options_.snapshot_every_epochs == 0) {
      obs::Timer timer;
      ITA_RETURN_NOT_OK(CheckpointEngine(*subject, &snapshot_bytes));
      ++stats.snapshots_written;
      stats.snapshot_bytes += snapshot_bytes.size();
      stats.snapshot_write_nanos += timer.ElapsedNanos();
      snapshot_covers = pos;
      log.Clear();
    }
  }

  // --- Equivalence -----------------------------------------------------
  if (subject_consumer.digest() != twin_consumer.digest()) {
    return fail("notification fingerprints diverge after kill/restore: "
                "subject=" +
                std::to_string(subject_consumer.digest()) +
                " (deliveries=" + std::to_string(subject_consumer.deliveries()) +
                "), twin=" + std::to_string(twin_consumer.digest()) +
                " (deliveries=" + std::to_string(twin_consumer.deliveries()) +
                ")");
  }

  std::vector<LiveQuery> live;
  live.reserve(live_map.size());
  for (const auto& [id, query] : live_map) live.push_back({id, &query});
  std::sort(live.begin(), live.end(),
            [](const LiveQuery& a, const LiveQuery& b) { return a.id < b.id; });

  for (const LiveQuery& lq : live) {
    ITA_ASSIGN_OR_RETURN(std::vector<ResultEntry> got, subject->Result(lq.id));
    ITA_ASSIGN_OR_RETURN(std::vector<ResultEntry> want, twin->Result(lq.id));
    if (!(got == want)) {
      return fail("restored engine's result for query " +
                  std::to_string(lq.id) + " diverges from the twin (" +
                  std::to_string(got.size()) + " vs " +
                  std::to_string(want.size()) + " entries)");
    }
  }

  DifferentialChecker checker(options_.checker, oracle.get());
  const Status check = checker.CheckEpoch({subject.get(), twin.get()}, live,
                                          epochs.back().index, /*force=*/true);
  if (!check.ok()) return fail(check.message());

  CrashRestoreReport report;
  report.epochs = epochs.size();
  report.events = generator.events_generated();
  report.stream_fingerprint = stream_fp.digest();
  report.notification_fingerprint = subject_consumer.digest();
  report.live_queries = live.size();
  report.persist = stats;
  return report;
}

}  // namespace ita::sim
