/// \file
/// The elasticity harness behind live resharding (DESIGN.md §14): drives
/// a sharded engine ("subject") through a scenario's epoch stream at an
/// initial width S, switches it to S′ at a configurable epoch barrier —
/// either in place (exec::ShardedServer::Reshard) or through the
/// cross-shape persistence path (Checkpoint at S, Restore into a fresh
/// S′ engine) — and resumes the stream. An uninterrupted twin
/// constructed at S′ from the start consumes the identical stream;
/// equivalence is judged by
///   * byte-identical notification fingerprints (order-sensitive FNV-1a
///     over every delivered (epoch, query, result) triple — a reshard
///     must not fire, drop, or reorder a single notification),
///   * per-query Result() equality at end of stream, and
///   * a forced oracle differential over subject and twin together.
///
/// The correctness argument is the engine's placement independence: a
/// remapped query's top-k is recomputed exactly over the same shared
/// window, so the post-switch subject IS an engine that ran at S′ all
/// along, and any fingerprint divergence is a real bug.

#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/ita_server.h"
#include "exec/sharded_server.h"
#include "sim/checker.h"
#include "sim/scenario.h"

namespace ita::sim {

/// Which S→S′ mechanism the run exercises.
enum class ReshardMode {
  kLive,               ///< exec::ShardedServer::Reshard at the barrier
  kCheckpointRestore,  ///< Checkpoint at S, Restore into a fresh S′ engine
};

/// Stable display name ("live", "checkpoint-restore").
const char* ReshardModeName(ReshardMode mode);

/// Knobs for one reshard run.
struct ReshardOptions {
  /// Width the subject starts at. Must be >= 1.
  std::size_t initial_shards = 4;
  /// Width the subject switches to (and the twin runs at). Must be >= 1;
  /// equal to initial_shards degenerates to a no-op switch.
  std::size_t new_shards = 2;
  /// Worker threads for every engine (0 = one per shard).
  std::size_t threads = 0;
  /// Tuning shared by subject and twin.
  ItaTuning tuning;
  /// Load-aware placement policy for subject and twin — aggressive modes
  /// make the pre-switch placement maximally unlike the id-hash layout,
  /// which is exactly what the remap must absorb.
  exec::RebalanceOptions rebalance;
  /// Zero-based epoch index at whose trailing barrier the switch runs.
  /// Must be < the stream's epoch count (InvalidArgument otherwise).
  std::uint64_t reshard_epoch = 0;
  ReshardMode mode = ReshardMode::kLive;
  /// Run the forced oracle differential over subject and twin at end of
  /// stream (an OracleServer consumes the whole stream alongside).
  bool check_oracle = true;
  /// Tolerances for the differential layer.
  CheckerOptions checker;
};

/// What one reshard run observed. All equivalence checks have already
/// passed when Run() returns OK.
struct ReshardReport {
  std::uint64_t epochs = 0;  ///< epochs in the stream
  std::uint64_t events = 0;  ///< document arrivals in the stream
  std::uint64_t stream_fingerprint = 0;        ///< canonical stream digest
  std::uint64_t notification_fingerprint = 0;  ///< subject == twin digest
  std::uint64_t live_queries = 0;              ///< live at end of stream
  /// Wall nanos the stream was stalled by the switch: the reshard pause
  /// (kLive) or the checkpoint+restore round trip (kCheckpointRestore).
  std::uint64_t switch_nanos = 0;
  /// The subject engine's resharding counters (zeros in
  /// kCheckpointRestore mode — the switch there replaces the engine).
  exec::ShardedServer::ReshardStats reshard;
};

/// Runs one S→S′ switch for `spec` under `options`; see the file
/// comment for the protocol. Any divergence comes back as a non-OK
/// Status whose message ends with ReproLine(...).
class ReshardRunner {
 public:
  ReshardRunner(ScenarioSpec spec, ReshardOptions options);

  StatusOr<ReshardReport> Run();

  /// "--scenario=<name> --seed=<seed> --shards=<S> --new-shards=<S'>
  /// --reshard-epoch=<e> --mode=<m>" — everything needed to replay this
  /// exact run.
  static std::string ReproLine(const ScenarioSpec& spec,
                               const ReshardOptions& options);

 private:
  ScenarioSpec spec_;
  ReshardOptions options_;
};

}  // namespace ita::sim
