/// \file
/// The scenario runner: compiles a ScenarioSpec into its event stream
/// and drives every epoch through a fleet of engines — the sequential
/// ItaServer, the sharded engine at any set of shard counts, optionally
/// Naive — side by side with the brute-force oracle, with the online
/// DifferentialChecker (sim/checker.h) validating results mid-run and
/// the runner itself cross-checking engine-assigned document ids and the
/// per-epoch notification streams across engines.
///
/// This is the one stream-driving loop the soak tier, the regression-
/// seed replayer and the examples share. Failures come back as a
/// detailed Status whose message ends with the `--seed=` reproduction
/// line, so any soak failure is one command away from a deterministic
/// replay.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/ita_server.h"
#include "sim/checker.h"
#include "sim/event_stream.h"
#include "sim/scenario.h"
#include "sim/sim_engine.h"

namespace ita::sim {

/// Which engines a run drives and how hard it checks them.
struct RunOptions {
  /// Drive the sequential ItaServer (also the reference for cross-engine
  /// document-id and notification comparisons).
  bool include_sequential_ita = true;
  /// Drive the sequential NaiveServer as well (slower; differential runs
  /// then also validate the comparator implementation).
  bool include_naive = false;
  /// Shard counts of the sharded engines to drive (may be empty).
  std::vector<std::size_t> shard_counts;
  /// Scheduler threads per sharded engine; 0 = one per shard.
  std::size_t threads_per_sharded = 0;
  /// Load-aware placement policy for every sharded engine in the fleet
  /// (exec/sharded_server.h; ITA_REBALANCE still overrides the mode).
  exec::RebalanceOptions rebalance;
  /// Tuning for every ITA instance (sequential and per-shard).
  ItaTuning tuning;
  /// Feed the oracle and run the differential layer. Disable only for
  /// pure throughput drives (the checker then covers invariants only).
  bool check_oracle = true;
  /// Cadences and tolerances of the online checker.
  CheckerOptions checker;
  /// Cross-check the per-epoch result-notification streams (ascending
  /// QueryId order, identical sequences across engines).
  bool verify_notifications = true;
  /// Log one progress line every this many epochs (0 = silent).
  std::size_t progress_every_epochs = 0;
  /// Enable epoch phase tracing and hot-term load tracking on every
  /// engine in the fleet (obs/epoch_trace.h; no-op in ITA_OBS=OFF
  /// builds). Implied by a non-empty metrics_path.
  bool enable_tracing = false;
  /// When non-empty, a successful run writes the fleet's metrics
  /// snapshot here as JSON (sim/metrics_export.h schema, one label set
  /// per engine) plus the Prometheus text rendition next to it (a .json
  /// suffix becomes .prom; any other path gains a .prom suffix).
  std::string metrics_path;
};

/// What a completed run did — counters for assertions and reporting.
struct RunReport {
  std::uint64_t epochs = 0;                ///< epochs driven
  std::uint64_t events = 0;                ///< document arrivals streamed
  std::uint64_t fingerprint = 0;           ///< stream digest (engine-independent)
  std::uint64_t notifications = 0;         ///< listener firings (reference engine)
  std::uint64_t differential_checks = 0;   ///< oracle passes run
  std::uint64_t invariant_checks = 0;      ///< invariant passes run
  std::size_t final_window_size = 0;       ///< window size after the last epoch
  std::size_t final_query_count = 0;       ///< live queries after the last epoch
  /// Placement migrations summed over the fleet's sharded engines — lets
  /// rebalancing tests assert migrations actually happened while every
  /// result/notification check above stayed green.
  std::uint64_t queries_migrated = 0;
};

/// Drives one scenario through one fleet; see the file comment. Build,
/// Run() once, read the report. Not thread-safe, not reusable.
class ScenarioRunner {
 public:
  /// Validates nothing yet — Run() compiles and validates the spec.
  ScenarioRunner(ScenarioSpec spec, RunOptions options);

  /// Streams the whole scenario. Any engine error, id-prediction
  /// mismatch, checker violation or notification divergence aborts the
  /// run with a Status whose message ends with ReproLine(spec()).
  StatusOr<RunReport> Run();

  /// The scenario under test.
  const ScenarioSpec& spec() const { return spec_; }

  /// The deterministic reproduction line every failure carries:
  /// "--seed=<seed> --events=<events> (scenario '<name>')".
  static std::string ReproLine(const ScenarioSpec& spec);

 private:
  ScenarioSpec spec_;
  RunOptions options_;
};

}  // namespace ita::sim
