/// \file
/// The online oracle-differential and invariant checker: validated WHILE
/// a scenario streams, not after it finishes, so a violation surfaces at
/// the epoch that introduced it (with ~one epoch of context) instead of
/// 10^6 events later.
///
/// Three layers of checking, each on its own cadence:
///   * structural result invariants — every engine, every checked epoch:
///     |result| <= k, scores strictly positive and non-increasing,
///     document ids unique;
///   * ITA threshold invariants (engines wrapping an ItaServer): tau and
///     every local threshold finite and non-negative, tau consistent
///     with the thresholds, the reported top-k the exact prefix of the
///     candidate set R, and tau <= S_k once R holds k documents
///     (DESIGN.md §2, I2);
///   * oracle differential — every engine against the brute-force
///     OracleServer fed the same stream: equal window sizes and, per
///     live query, equal result sizes and positionally equal scores
///     (ties permute only equal scores).

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/query.h"
#include "sim/sim_engine.h"

namespace ita::sim {

/// Cadences and tolerances for the online checker.
struct CheckerOptions {
  /// Run the oracle differential every this many epochs (1 = every
  /// epoch; 0 disables). The final epoch is always checked.
  std::size_t differential_interval_epochs = 1;
  /// Run the structural/threshold invariants every this many epochs
  /// (1 = every epoch; 0 disables). The final epoch is always checked.
  std::size_t invariant_interval_epochs = 1;
  /// Absolute-plus-relative score comparison tolerance:
  /// |got - want| <= tol * (1 + |want|).
  double score_tolerance = 1e-9;
};

/// A query currently live in every engine under test. `query` must
/// outlive the check call (the runner owns the live map).
struct LiveQuery {
  QueryId id = kInvalidQueryId;
  const Query* query = nullptr;
};

/// The online checker; see the file comment for the three layers. One
/// instance per scenario run. Not thread-safe.
class DifferentialChecker {
 public:
  /// `oracle` may be null (disables the differential layer). The pointer
  /// must outlive the checker.
  DifferentialChecker(CheckerOptions options, SimEngine* oracle)
      : options_(options), oracle_(oracle) {}

  /// Validates `engines` after epoch `epoch_index`, honoring the
  /// configured cadences (`force` runs every layer regardless — used for
  /// the final epoch). Returns the first violation, annotated with the
  /// engine, query and epoch.
  Status CheckEpoch(const std::vector<SimEngine*>& engines,
                    const std::vector<LiveQuery>& live,
                    std::uint64_t epoch_index, bool force = false);

  /// Oracle differentials run so far.
  std::uint64_t differential_checks() const { return differential_checks_; }
  /// Invariant passes run so far.
  std::uint64_t invariant_checks() const { return invariant_checks_; }

 private:
  /// Structural + ITA threshold invariants for one engine.
  Status CheckInvariants(SimEngine& engine, const std::vector<LiveQuery>& live,
                         std::uint64_t epoch_index);
  /// Oracle equivalence for one engine.
  Status CheckDifferential(SimEngine& engine,
                           const std::vector<LiveQuery>& live,
                           std::uint64_t epoch_index);

  CheckerOptions options_;
  SimEngine* oracle_;
  std::uint64_t differential_checks_ = 0;
  std::uint64_t invariant_checks_ = 0;
};

}  // namespace ita::sim
