#include "sim/checker.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

namespace ita::sim {

namespace {

/// Formats "engine <name>, query <id>, epoch <e>: <what>".
Status Violation(const SimEngine& engine, QueryId id, std::uint64_t epoch,
                 const std::string& what) {
  std::ostringstream os;
  os << "engine " << engine.name() << ", query " << id << ", epoch " << epoch
     << ": " << what;
  return Status::Internal(os.str());
}

bool ScoreClose(double got, double want, double tol) {
  return std::abs(got - want) <= tol * (1.0 + std::abs(want));
}

}  // namespace

Status DifferentialChecker::CheckEpoch(const std::vector<SimEngine*>& engines,
                                       const std::vector<LiveQuery>& live,
                                       std::uint64_t epoch_index, bool force) {
  const auto due = [epoch_index, force](std::size_t interval) {
    if (interval == 0) return force;
    return force || epoch_index % interval == 0;
  };
  if (due(options_.invariant_interval_epochs)) {
    ++invariant_checks_;
    for (SimEngine* engine : engines) {
      ITA_RETURN_NOT_OK(CheckInvariants(*engine, live, epoch_index));
    }
  }
  if (oracle_ != nullptr && due(options_.differential_interval_epochs)) {
    ++differential_checks_;
    for (SimEngine* engine : engines) {
      ITA_RETURN_NOT_OK(CheckDifferential(*engine, live, epoch_index));
    }
  }
  return Status::OK();
}

Status DifferentialChecker::CheckInvariants(SimEngine& engine,
                                            const std::vector<LiveQuery>& live,
                                            std::uint64_t epoch_index) {
  const ItaServer* ita = engine.ita();
  if (ita != nullptr) {
    // Pruning-metadata coherence (DESIGN.md §10): the cached per-tree
    // MinTheta() probe gates and the per-list block-max arrays must
    // mirror the structures they summarize — the event path trusts them
    // to skip probes and postings, so drift would silently drop results.
    const Status pruning = ita->ValidatePruningMetadata();
    if (!pruning.ok()) {
      return Violation(engine, kInvalidQueryId, epoch_index,
                       "pruning metadata: " + pruning.ToString());
    }
  }
  if (exec::ShardedServer* sharded = engine.sharded(); sharded != nullptr) {
    // Same audit across every ITA shard — also covers the storage-tier
    // tags and survives tier/placement migrations at epoch barriers.
    const Status pruning = sharded->ValidatePruningMetadata();
    if (!pruning.ok()) {
      return Violation(engine, kInvalidQueryId, epoch_index,
                       "sharded pruning metadata: " + pruning.ToString());
    }
  }
  for (const LiveQuery& lq : live) {
    const auto result = engine.Result(lq.id);
    if (!result.ok()) {
      return Violation(engine, lq.id, epoch_index,
                       "Result failed: " + result.status().ToString());
    }
    if (result->size() > static_cast<std::size_t>(lq.query->k)) {
      return Violation(engine, lq.id, epoch_index,
                       "result larger than k=" + std::to_string(lq.query->k));
    }
    std::unordered_set<DocId> seen;
    double prev = std::numeric_limits<double>::infinity();
    for (const ResultEntry& e : *result) {
      if (!(e.score > 0.0) || !std::isfinite(e.score)) {
        return Violation(engine, lq.id, epoch_index,
                         "non-positive or non-finite score");
      }
      if (e.score > prev) {
        return Violation(engine, lq.id, epoch_index,
                         "scores not non-increasing");
      }
      prev = e.score;
      if (!seen.insert(e.doc).second) {
        return Violation(engine, lq.id, epoch_index,
                         "duplicate document id " + std::to_string(e.doc));
      }
    }

    if (ita == nullptr) continue;

    // ITA threshold invariants (DESIGN.md §2). These read the server's
    // white-box hooks, so they run only on sequential ITA wrappers — the
    // sharded engine's per-shard servers are validated transitively by
    // the oracle differential.
    const auto tau_or = ita->InfluenceThreshold(lq.id);
    if (!tau_or.ok()) {
      return Violation(engine, lq.id, epoch_index,
                       "InfluenceThreshold failed: " +
                           tau_or.status().ToString());
    }
    const double tau = *tau_or;
    if (!std::isfinite(tau) || tau < 0.0) {
      return Violation(engine, lq.id, epoch_index, "tau not finite/>=0");
    }
    double tau_check = 0.0;
    for (const TermWeight& tw : lq.query->terms) {
      const auto theta = ita->LocalThreshold(lq.id, tw.term);
      if (!theta.ok()) {
        return Violation(engine, lq.id, epoch_index,
                         "LocalThreshold failed: " + theta.status().ToString());
      }
      if (!std::isfinite(*theta) || *theta < 0.0) {
        return Violation(engine, lq.id, epoch_index, "theta not finite/>=0");
      }
      tau_check += tw.weight * *theta;
    }
    if (!ScoreClose(tau, tau_check, options_.score_tolerance)) {
      return Violation(engine, lq.id, epoch_index,
                       "tau cache inconsistent with local thresholds");
    }
    const auto candidates = ita->Candidates(lq.id);
    if (!candidates.ok()) {
      return Violation(engine, lq.id, epoch_index,
                       "Candidates failed: " + candidates.status().ToString());
    }
    // The reported top-k must be the exact prefix of R.
    if (result->size() >
        std::min<std::size_t>(candidates->size(),
                              static_cast<std::size_t>(lq.query->k))) {
      return Violation(engine, lq.id, epoch_index,
                       "result larger than the candidate prefix");
    }
    for (std::size_t i = 0; i < result->size(); ++i) {
      if ((*result)[i].doc != (*candidates)[i].doc ||
          !ScoreClose((*result)[i].score, (*candidates)[i].score,
                      options_.score_tolerance)) {
        return Violation(engine, lq.id, epoch_index,
                         "top-k is not the prefix of R at rank " +
                             std::to_string(i));
      }
    }
    // I2: once R holds k documents, tau never exceeds S_k.
    if (candidates->size() >= static_cast<std::size_t>(lq.query->k)) {
      const double sk = (*candidates)[lq.query->k - 1].score;
      if (tau > sk + options_.score_tolerance * (1.0 + std::abs(sk))) {
        return Violation(engine, lq.id, epoch_index,
                         "tau exceeds S_k (I2 violated)");
      }
    }
  }
  return Status::OK();
}

Status DifferentialChecker::CheckDifferential(SimEngine& engine,
                                              const std::vector<LiveQuery>& live,
                                              std::uint64_t epoch_index) {
  if (engine.window_size() != oracle_->window_size()) {
    return Violation(engine, kInvalidQueryId, epoch_index,
                     "window size " + std::to_string(engine.window_size()) +
                         " != oracle " + std::to_string(oracle_->window_size()));
  }
  for (const LiveQuery& lq : live) {
    const auto want = oracle_->Result(lq.id);
    if (!want.ok()) {
      return Violation(engine, lq.id, epoch_index,
                       "oracle Result failed: " + want.status().ToString());
    }
    const auto got = engine.Result(lq.id);
    if (!got.ok()) {
      return Violation(engine, lq.id, epoch_index,
                       "Result failed: " + got.status().ToString());
    }
    if (got->size() != want->size()) {
      return Violation(engine, lq.id, epoch_index,
                       "result size " + std::to_string(got->size()) +
                           " != oracle " + std::to_string(want->size()));
    }
    for (std::size_t i = 0; i < got->size(); ++i) {
      // Ties permute only equal scores, so the score sequences must
      // match positionally even when ids differ.
      if (!ScoreClose((*got)[i].score, (*want)[i].score,
                      options_.score_tolerance)) {
        std::ostringstream os;
        os << "score diverges from oracle at rank " << i << " (got "
           << (*got)[i].score << ", want " << (*want)[i].score << ")";
        return Violation(engine, lq.id, epoch_index, os.str());
      }
    }
  }
  return Status::OK();
}

}  // namespace ita::sim
